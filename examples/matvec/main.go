// Dense matrix–vector product on the simulated PRAM.
//
// One processor per matrix row; each column iteration reads one matrix
// entry (exclusive) and the vector entry (concurrent — combined by the
// backend). The memory footprint (A, x and y) exercises a larger HMOS
// instance: a 27×27 mesh with M = 1080 variables.
//
// Run with: go run ./examples/matvec
package main

import (
	"fmt"
	"log"
	"math/rand"

	"meshpram/internal/pram"
	"meshpram/internal/sim"
)

func main() {
	const r, c = 24, 24
	rng := rand.New(rand.NewSource(3))
	A := make([][]pram.Word, r)
	for i := range A {
		A[i] = make([]pram.Word, c)
		for j := range A[i] {
			A[i][j] = pram.Word(rng.Intn(9) - 4)
		}
	}
	x := make([]pram.Word, c)
	for j := range x {
		x[j] = pram.Word(rng.Intn(9) - 4)
	}

	prog := &pram.MatVec{A: A, X: x, ABase: 0, XBase: r * c, YBase: r*c + c}
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}

	// M = f(3,4) = 1080 ≥ r·c + c + r = 624 cells.
	scfg, err := sim.New(sim.Side(27), sim.Q(3), sim.D(4), sim.K(2))
	if err != nil {
		log.Fatal(err)
	}
	b, err := pram.NewBackend(pram.BackendMesh, scfg)
	if err != nil {
		log.Fatal(err)
	}
	mb := b.(*pram.Mesh)
	steps, err := pram.Run(prog, mb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matvec %dx%d: %d PRAM steps on a %d-processor mesh (%d mesh steps)\n",
		r, c, steps, mb.Sim.Mesh().N, mb.Steps())

	// Verify y against the sequential product.
	for i := 0; i < r; i++ {
		var want pram.Word
		for j := 0; j < c; j++ {
			want += A[i][j] * x[j]
		}
		res, err := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: r*c + c + i}})
		if err != nil {
			log.Fatal(err)
		}
		if res[0] != want {
			log.Fatalf("y[%d] = %d, want %d", i, res[0], want)
		}
	}
	fmt.Println("verified: y = A·x matches the sequential reference")
}
