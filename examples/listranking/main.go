// List ranking with concurrent reads.
//
// Pointer jumping makes many processors read the same rank cell in the
// same step — a CRCW access pattern. The mesh backend combines
// concurrent requests at the source (one representative request per
// variable, results fanned out), so the paper's distinct-variables
// protocol serves the step; this example exercises that machinery on a
// 60-node linked list.
//
// Run with: go run ./examples/listranking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"meshpram/internal/pram"
	"meshpram/internal/sim"
)

func main() {
	const n = 50
	rng := rand.New(rand.NewSource(7))

	// Build a random list over nodes 0..n-1: order[0] -> order[1] -> ...
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i+1 < n; i++ {
		next[order[i]] = order[i+1]
	}
	terminal := order[n-1]
	next[terminal] = terminal

	prog := &pram.ListRank{Succ: next, NextBase: 0, RankBase: n}
	scfg, err := sim.New(sim.Side(9), sim.Q(3), sim.D(3), sim.K(2))
	if err != nil {
		log.Fatal(err)
	}
	mb, err := pram.NewBackend(pram.BackendMesh, scfg)
	if err != nil {
		log.Fatal(err)
	}
	steps, err := pram.Run(prog, mb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pointer jumping: %d PRAM steps (≈5·log2(n) + init) on %d nodes\n", steps, n)
	fmt.Printf("mesh cost:       %d steps on an 81-processor mesh\n", mb.Steps())

	// Verify against a sequential walk.
	for i := 0; i < n; i++ {
		d, j := 0, i
		for next[j] != j {
			j = next[j]
			d++
		}
		res, err := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: n + i}})
		if err != nil {
			log.Fatal(err)
		}
		if res[0] != pram.Word(d) {
			log.Fatalf("rank[%d] = %d, want %d", i, res[0], d)
		}
	}
	fmt.Printf("verified:        all %d ranks correct (head %d has rank %d)\n",
		n, order[0], n-1)
}
