// Quickstart: simulate one PRAM step on a mesh-connected computer.
//
// This example builds the paper's simulation for an 81-processor mesh
// (9×9) with a shared memory of 117 variables organized by a 2-level
// HMOS with q = 3 (so every variable has 9 copies and any access
// touches a minimal target set of 4 of them), performs a full batch of
// writes followed by a batch of reads, and prints where the machine
// spent its steps.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/sim"
)

func main() {
	scfg, err := sim.New(
		sim.Side(9), // 9×9 mesh, n = 81 processors
		sim.Q(3),    // each module replicated into q = 3 copies per level
		sim.D(3),    // shared memory M = f(3,3) = 117 variables
		sim.K(2),    // two levels of logical modules
	)
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := scfg.NewSimulator()
	if err != nil {
		log.Fatal(err)
	}
	params := scfg.Params
	s := simulator.Scheme()
	fmt.Printf("mesh: %d processors; memory: %d variables (alpha = %.2f)\n",
		simulator.Mesh().N, s.Vars(), s.Alpha())
	fmt.Printf("redundancy: %d copies/variable, %d accessed per operation\n\n",
		s.CopiesPerVar(), hmos.MinTargetSetSize(params.Q, params.K, params.K))

	// One PRAM step: every processor writes a distinct variable.
	n := simulator.Mesh().N
	writes := make([]core.Op, n)
	for i := range writes {
		writes[i] = core.Op{Origin: i, Var: i, IsWrite: true, Value: core.Word(i * i)}
	}
	_, wst := simulator.Step(writes)
	fmt.Printf("write step: %d packets in %d mesh steps\n", wst.Packets, wst.Total())
	fmt.Printf("  culling %d | sort %d | rank %d | route %d | access %d | return %d\n\n",
		wst.Culling, wst.Sort, wst.Rank, wst.Forward, wst.Access, wst.Return)

	// Another PRAM step: every processor reads its neighbor's variable.
	reads := make([]core.Op, n)
	for i := range reads {
		reads[i] = core.Op{Origin: i, Var: (i + 1) % n}
	}
	vals, rst := simulator.Step(reads)
	fmt.Printf("read step: %d mesh steps; spot check: var 8 = %d (want 64)\n",
		rst.Total(), vals[7])
	if vals[7] != 64 {
		log.Fatal("consistency violated!")
	}

	// Theorem 3 diagnostics: page congestion vs the culling bound.
	for lvl := 1; lvl <= params.K; lvl++ {
		fmt.Printf("level-%d pages: max load %d (Theorem 3 bound %d)\n",
			lvl, rst.PageLoadMax[lvl], rst.PageLoadBound[lvl])
	}
	fmt.Printf("\ntotal mesh steps this session: %d (the PRAM did 2 steps)\n", simulator.Mesh().Steps())
}
