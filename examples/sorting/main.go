// Parallel sorting on the simulated PRAM.
//
// Odd-even transposition sort — the textbook O(n)-round PRAM sorting
// network — runs on the mesh simulation. Every round alternates
// exclusive reads and conditional compare-exchange writes, a
// write-heavy access pattern that exercises the full write path of the
// simulation (all-copy target sets, timestamps, return routing).
//
// Run with: go run ./examples/sorting
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"meshpram/internal/pram"
	"meshpram/internal/sim"
)

func main() {
	const n = 64
	rng := rand.New(rand.NewSource(11))
	in := make([]pram.Word, n)
	for i := range in {
		in[i] = pram.Word(rng.Intn(1000))
	}
	want := append([]pram.Word(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	scfg, err := sim.New(sim.Side(9), sim.Q(3), sim.D(3), sim.K(2))
	if err != nil {
		log.Fatal(err)
	}
	mb, err := pram.NewBackend(pram.BackendMesh, scfg)
	if err != nil {
		log.Fatal(err)
	}
	steps, err := pram.Run(&pram.OddEvenSort{In: in}, mb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("odd-even transposition sort of %d keys: %d PRAM steps (2n+1 = %d)\n",
		n, steps, 2*n+1)
	fmt.Printf("mesh cost: %d steps on an 81-processor mesh\n", mb.Steps())

	for i, w := range want {
		res, err := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: i}})
		if err != nil {
			log.Fatal(err)
		}
		if res[0] != w {
			log.Fatalf("sorted[%d] = %d, want %d", i, res[0], w)
		}
	}
	fmt.Println("verified: output ascending and a permutation of the input")
}
