// Prefix sums on a simulated PRAM.
//
// The classic O(log n) PRAM prefix-sum algorithm (recursive doubling)
// runs unchanged on two backends: the ideal PRAM it was designed for,
// and the paper's deterministic mesh simulation. The example verifies
// both produce the same result and reports the measured slowdown —
// the quantity Theorem 1 bounds.
//
// Run with: go run ./examples/prefixsum
package main

import (
	"fmt"
	"log"
	"math/rand"

	"meshpram/internal/pram"
	"meshpram/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	in := make([]pram.Word, 81)
	for i := range in {
		in[i] = pram.Word(rng.Intn(1000))
	}

	// Reference result.
	want := make([]pram.Word, len(in))
	var run pram.Word
	for i, v := range in {
		run += v
		want[i] = run
	}

	// Ideal PRAM.
	ideal, err := pram.NewBackend(pram.BackendIdeal, sim.MustNew(sim.IdealMemory(256)))
	if err != nil {
		log.Fatal(err)
	}
	idealPRAMSteps, err := pram.Run(&pram.PrefixSum{In: in}, ideal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal PRAM: %d steps for %d elements (2·log2(n)+1 doubling rounds)\n",
		idealPRAMSteps, len(in))

	// Mesh simulation: 81 processors, memory f(3,3)=117 ≥ 81 cells.
	scfg, err := sim.New(sim.Side(9), sim.Q(3), sim.D(3), sim.K(2))
	if err != nil {
		log.Fatal(err)
	}
	mb, err := pram.NewBackend(pram.BackendMesh, scfg)
	if err != nil {
		log.Fatal(err)
	}
	meshPRAMSteps, err := pram.Run(&pram.PrefixSum{In: in}, mb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh:       same %d PRAM steps executed in %d mesh steps\n",
		meshPRAMSteps, mb.Steps())
	fmt.Printf("slowdown:   %.0f mesh steps per PRAM step\n",
		float64(mb.Steps())/float64(meshPRAMSteps))

	// Verify every output cell through the simulated memory.
	for i, w := range want {
		res, err := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: i}})
		if err != nil {
			log.Fatal(err)
		}
		if res[0] != w {
			log.Fatalf("prefix[%d] = %d, want %d", i, res[0], w)
		}
	}
	fmt.Printf("verified:   all %d prefix sums match the sequential reference\n", len(want))
}
