package culling

import (
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/hmos"
)

// Culling is deterministic: identical inputs yield identical selections
// and identical charged steps.
func TestCullingDeterministic(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 27, Q: 3, D: 4, K: 2})
	rng := rand.New(rand.NewSource(6))
	reqs := randomRequests(s, m.N, 400, rng)
	a := Run(s, m, reqs)
	b := Run(s, m, append([]Request(nil), reqs...))
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatal("selections differ between identical runs")
	}
}

// Partial batches (fewer requests than processors) must work and
// respect the same bounds.
func TestCullingPartialBatches(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 27, Q: 3, D: 5, K: 2})
	for _, count := range []int{1, 2, 17, 100, 729} {
		rng := rand.New(rand.NewSource(int64(count)))
		reqs := randomRequests(s, m.N, count, rng)
		res := Run(s, m, reqs)
		if len(res.Selected) != count {
			t.Fatalf("count %d: %d selections", count, len(res.Selected))
		}
		for i := 1; i <= s.K; i++ {
			load, bound := res.MaxLoad(i)
			if load > bound {
				t.Fatalf("count %d level %d: load %d > bound %d", count, i, load, bound)
			}
		}
	}
}

// A K=3 scheme under the module-hot adversary.
func TestCullingK3ModuleHot(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 27, Q: 3, D: 4, K: 3})
	// All requests share level-1 module 0 (the module-hot adversary).
	g := s.Graphs[0]
	count := g.Degree(0)
	if count > m.N {
		count = m.N
	}
	reqs := make([]Request, count)
	for r := 0; r < count; r++ {
		reqs[r] = Request{Origin: r, Var: g.InputAtRank(0, r)}
	}
	res := Run(s, m, reqs)
	for i := 1; i <= 3; i++ {
		load, bound := res.MaxLoad(i)
		if load > bound {
			t.Fatalf("level %d: load %d > bound %d", i, load, bound)
		}
	}
	minSize := hmos.MinTargetSetSize(3, 3, 3)
	for r, sel := range res.Selected {
		if len(sel) != minSize {
			t.Fatalf("request %d: %d copies selected, want %d", r, len(sel), minSize)
		}
	}
}

// The culled selection must be a subset of the variable's copy tree at
// valid locations even under q = 4 and q = 5 schemes (even/odd majority
// arithmetic).
func TestCullingOtherFieldOrders(t *testing.T) {
	for _, p := range []hmos.Params{{Side: 16, Q: 4, D: 3, K: 2}, {Side: 25, Q: 5, D: 3, K: 2}} {
		s, m := scheme(t, p)
		rng := rand.New(rand.NewSource(2))
		reqs := randomRequests(s, m.N, m.N/2, rng)
		res := Run(s, m, reqs)
		for r, sel := range res.Selected {
			mask := make([]bool, s.Redundant)
			for _, c := range sel {
				mask[c.Leaf] = true
			}
			if !s.AccessedRoot(mask) {
				t.Fatalf("q=%d request %d: selection does not access root", p.Q, r)
			}
			if len(sel) != hmos.MinTargetSetSize(p.Q, p.K, p.K) {
				t.Fatalf("q=%d request %d: size %d", p.Q, r, len(sel))
			}
		}
	}
}
