// Package culling implements the CULLING copy-selection procedure of
// §3.2: k iterations that progressively shrink, for every requested
// variable v, an initial minimal level-0 target set C_v^0 down to a
// plain (level-k) target set C_v, while capping the number of selected
// copies that fall into any level-i page at 2q^k·n^{1−1/2^i} marked
// copies — which yields the Theorem 3 invariant that no level-i page is
// addressed by more than 4q^k·n^{1−1/2^i} copies of ∪C_v^i.
//
// The procedure is executed by the n mesh processors via sorting and
// ranking of the ≤ n·q^k copy descriptors; its step cost is
// O(k·q^k·√n) (equation (2)), charged here as k iterations of one
// snake sort with block length q^k plus one prefix-sum pass.
package culling

import (
	"fmt"
	"math"
	"sort"

	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
)

// Request is one PRAM memory request: the mesh processor Origin wants
// to access variable Var.
type Request struct {
	Origin int
	Var    int
}

// SelectedCopy is a copy chosen by culling for the access protocol.
type SelectedCopy struct {
	Leaf int // leaf index in T_v
	Proc int // destination processor
}

// Result carries the culling output and diagnostics.
type Result struct {
	// Selected[r] lists the copies of request r to access (a minimal
	// plain target set, C_v of the paper). nil for unservable requests
	// (see Unservable).
	Selected [][]SelectedCopy

	// PageLoad[i] (1 ≤ i ≤ K) maps level-i page index → number of
	// copies of ∪_v C_v^i in that page after iteration i.
	PageLoad [][]int

	// Bound[i] = ⌈4·q^k·n^{1−1/2^i}⌉, the Theorem 3 bound at level i.
	Bound []int

	// Steps is the charged mesh step cost (equation (2) shape).
	Steps int64

	// Unservable lists requests whose available copies (see RunAvail)
	// contain no plain target set: under the majority rule their
	// variable is unrecoverable and no packets are produced for them.
	Unservable []int
}

// MaxLoad returns the maximum level-i page load and its bound.
func (r *Result) MaxLoad(i int) (load, bound int) {
	for _, l := range r.PageLoad[i] {
		if l > load {
			load = l
		}
	}
	return load, r.Bound[i]
}

// copyRef identifies one candidate copy during the procedure.
type copyRef struct {
	req  int32 // request index
	leaf int32 // leaf in T_{v_req}
	page int32 // destination page at the current level
}

// Run executes CULLING for the given request set. Variables must be
// distinct across requests (the PRAM step semantics of the paper; use
// combining upstream for concurrent access). It panics on duplicate
// variables or out-of-range requests.
func Run(s *hmos.Scheme, m *mesh.Machine, reqs []Request) *Result {
	return RunAvail(s, m, reqs, nil)
}

// RunAvail is Run restricted to the available copies of each request:
// avail[r] masks request r's live leaves (a nil avail, or a nil mask
// for a request, means all q^k copies are available, making RunAvail
// with nil avail bit-identical to Run). Requests whose live leaves no
// longer contain a minimal level-0 target set fall back to a minimal
// plain target set among the live leaves — they skip the per-level
// shrink (their set is already minimal) but still count toward page
// loads and the congestion marking. Requests with no plain target set
// at all are reported in Result.Unservable with a nil selection.
func RunAvail(s *hmos.Scheme, m *mesh.Machine, reqs []Request, avail [][]bool) *Result {
	n := m.N
	qk := s.Redundant
	seen := make(map[int]bool, len(reqs))
	for _, r := range reqs {
		if r.Var < 0 || r.Var >= s.Vars() {
			panic(fmt.Sprintf("culling: variable %d out of range", r.Var))
		}
		if r.Origin < 0 || r.Origin >= n {
			panic(fmt.Sprintf("culling: origin %d out of range", r.Origin))
		}
		if seen[r.Var] {
			panic(fmt.Sprintf("culling: duplicate variable %d in request set", r.Var))
		}
		seen[r.Var] = true
	}

	// Precompute copy locations and page indexes per level.
	copies := make([][]hmos.Copy, len(reqs))
	pageAt := make([][][]int32, s.K+1) // pageAt[i][r][leaf]
	for i := 1; i <= s.K; i++ {
		pageAt[i] = make([][]int32, len(reqs))
	}
	for r, rq := range reqs {
		copies[r] = s.Copies(rq.Var, nil)
		for i := 1; i <= s.K; i++ {
			pageAt[i][r] = make([]int32, qk)
			for leaf, c := range copies[r] {
				pageAt[i][r][leaf] = int32(s.PageIndex(i, c.Path))
			}
		}
	}

	res := &Result{
		Selected: make([][]SelectedCopy, len(reqs)),
		PageLoad: make([][]int, s.K+1),
		Bound:    make([]int, s.K+1),
		Steps:    0,
	}

	// C^0: minimal level-0 target sets over the available leaves.
	// frozen[r]: the request's live leaves hold no level-0 set, only a
	// plain one — its mask is already minimal and skips the shrink.
	masks := make([][]bool, len(reqs))
	frozen := make([]bool, len(reqs))
	fullAvail := make([]bool, qk)
	for i := range fullAvail {
		fullAvail[i] = true
	}
	for r := range reqs {
		av := fullAvail
		if avail != nil && avail[r] != nil {
			av = avail[r]
		}
		sel, ok := s.SelectTargetSet(0, av, nil)
		if !ok {
			if sel, ok = s.SelectTargetSet(s.K, av, nil); !ok {
				res.Unservable = append(res.Unservable, r)
				masks[r] = make([]bool, qk) // empty: contributes nothing
				frozen[r] = true
				continue
			}
			frozen[r] = true
		}
		masks[r] = sel
	}

	full := m.Full()
	for i := 1; i <= s.K; i++ {
		cap2 := capAtLevel(2, qk, n, i)
		res.Bound[i] = capAtLevel(4, qk, n, i)

		// Gather all currently selected copies, grouped by level-i page
		// ("sort by destination page and rank"): deterministic order by
		// (page, request, leaf).
		var refs []copyRef
		for r := range reqs {
			for leaf, on := range masks[r] {
				if on {
					refs = append(refs, copyRef{req: int32(r), leaf: int32(leaf), page: pageAt[i][r][leaf]})
				}
			}
		}
		sort.Slice(refs, func(a, b int) bool {
			if refs[a].page != refs[b].page {
				return refs[a].page < refs[b].page
			}
			if refs[a].req != refs[b].req {
				return refs[a].req < refs[b].req
			}
			return refs[a].leaf < refs[b].leaf
		})

		// Mark the first cap2 copies of every page.
		marked := make([][]bool, len(reqs))
		for r := range reqs {
			marked[r] = make([]bool, qk)
		}
		for j := 0; j < len(refs); {
			e := j
			for e < len(refs) && refs[e].page == refs[j].page {
				e++
			}
			lim := j + cap2
			if lim > e {
				lim = e
			}
			for t := j; t < lim; t++ {
				marked[refs[t].req][refs[t].leaf] = true
			}
			j = e
		}

		// Shrink each request's mask to a minimal level-i target set,
		// preferring marked copies (the M_v^i / S_v^i split). Frozen
		// requests are already minimal plain sets and keep their mask.
		for r := range reqs {
			if frozen[r] {
				continue
			}
			sel, ok := s.SelectTargetSet(i, masks[r], marked[r])
			if !ok {
				// Cannot happen: masks[r] is a minimal level-(i-1)
				// target set, which always contains a level-i set.
				panic(fmt.Sprintf("culling: request %d lost its target set at level %d", r, i))
			}
			masks[r] = sel
		}

		// Record loads of ∪C^i per level-i page.
		loads := make([]int, s.PageCount(i))
		for r := range reqs {
			for leaf, on := range masks[r] {
				if on {
					loads[pageAt[i][r][leaf]]++
				}
			}
		}
		res.PageLoad[i] = loads

		// Charge the iteration: sort + rank + O(q^k) local extraction.
		res.Steps += route.SortCost(full, qk)
		res.Steps += 3*int64(full.W-1) + int64(full.H-1)
		res.Steps += int64(qk)
	}

	for r := range reqs {
		for leaf, on := range masks[r] {
			if on {
				res.Selected[r] = append(res.Selected[r], SelectedCopy{Leaf: leaf, Proc: copies[r][leaf].Proc})
			}
		}
	}
	return res
}

// SelectWithoutCulling returns, for each request, a minimal plain
// target set chosen without congestion control — the ablation baseline
// for experiments E2/E12. Its step cost is zero (purely local choice).
func SelectWithoutCulling(s *hmos.Scheme, m *mesh.Machine, reqs []Request) *Result {
	return SelectWithoutCullingAvail(s, m, reqs, nil)
}

// SelectWithoutCullingAvail is SelectWithoutCulling restricted to the
// available copies (see RunAvail for the avail convention and the
// Unservable reporting).
func SelectWithoutCullingAvail(s *hmos.Scheme, m *mesh.Machine, reqs []Request, avail [][]bool) *Result {
	qk := s.Redundant
	res := &Result{
		Selected: make([][]SelectedCopy, len(reqs)),
		PageLoad: make([][]int, s.K+1),
		Bound:    make([]int, s.K+1),
	}
	fullAvail := make([]bool, qk)
	for i := range fullAvail {
		fullAvail[i] = true
	}
	for i := 1; i <= s.K; i++ {
		res.PageLoad[i] = make([]int, s.PageCount(i))
		res.Bound[i] = capAtLevel(4, qk, m.N, i)
	}
	for r, rq := range reqs {
		av := fullAvail
		if avail != nil && avail[r] != nil {
			av = avail[r]
		}
		sel, ok := s.SelectTargetSet(s.K, av, nil)
		if !ok {
			res.Unservable = append(res.Unservable, r)
			continue
		}
		copies := s.Copies(rq.Var, nil)
		for leaf, on := range sel {
			if on {
				res.Selected[r] = append(res.Selected[r], SelectedCopy{Leaf: leaf, Proc: copies[leaf].Proc})
				for i := 1; i <= s.K; i++ {
					res.PageLoad[i][s.PageIndex(i, copies[leaf].Path)]++
				}
			}
		}
	}
	return res
}

// SelectHardenedAvail selects, for each request, a minimal *level-0*
// target set among the available copies: extensive quorums at every
// tree level, so the returned copy set keeps certifying root access
// even when isolated packets are lost on the round trip. This is the
// recovery path's selection — the pram retry layer re-executes a
// rolled-back step with it after an eager repair. Requests whose live
// leaves hold no level-0 set fall back to a minimal plain set (the
// same degraded fallback as RunAvail); requests with no plain set are
// Unservable. Like SelectWithoutCulling the choice is purely local and
// charges zero steps — the extra cost of a hardened step is its larger
// packet count, which the routing phases charge naturally.
func SelectHardenedAvail(s *hmos.Scheme, m *mesh.Machine, reqs []Request, avail [][]bool) *Result {
	qk := s.Redundant
	res := &Result{
		Selected: make([][]SelectedCopy, len(reqs)),
		PageLoad: make([][]int, s.K+1),
		Bound:    make([]int, s.K+1),
	}
	fullAvail := make([]bool, qk)
	for i := range fullAvail {
		fullAvail[i] = true
	}
	for i := 1; i <= s.K; i++ {
		res.PageLoad[i] = make([]int, s.PageCount(i))
		res.Bound[i] = capAtLevel(4, qk, m.N, i)
	}
	for r, rq := range reqs {
		av := fullAvail
		if avail != nil && avail[r] != nil {
			av = avail[r]
		}
		sel, ok := s.SelectTargetSet(0, av, nil)
		if !ok {
			if sel, ok = s.SelectTargetSet(s.K, av, nil); !ok {
				res.Unservable = append(res.Unservable, r)
				continue
			}
		}
		copies := s.Copies(rq.Var, nil)
		for leaf, on := range sel {
			if on {
				res.Selected[r] = append(res.Selected[r], SelectedCopy{Leaf: leaf, Proc: copies[leaf].Proc})
				for i := 1; i <= s.K; i++ {
					res.PageLoad[i][s.PageIndex(i, copies[leaf].Path)]++
				}
			}
		}
	}
	return res
}

// capAtLevel returns ⌈c·q^k·n^{1−1/2^i}⌉.
func capAtLevel(c, qk, n, i int) int {
	exp := 1.0 - 1.0/math.Pow(2, float64(i))
	return int(math.Ceil(float64(c) * float64(qk) * math.Pow(float64(n), exp)))
}
