package culling

import (
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
)

func scheme(t testing.TB, p hmos.Params) (*hmos.Scheme, *mesh.Machine) {
	t.Helper()
	s, err := hmos.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, mesh.MustNew(p.Side)
}

func randomRequests(s *hmos.Scheme, n int, count int, rng *rand.Rand) []Request {
	perm := rng.Perm(s.Vars())
	if count > len(perm) {
		count = len(perm)
	}
	reqs := make([]Request, count)
	for i := 0; i < count; i++ {
		reqs[i] = Request{Origin: i % n, Var: perm[i]}
	}
	return reqs
}

func TestRunProducesTargetSets(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 9, Q: 3, D: 3, K: 2})
	rng := rand.New(rand.NewSource(1))
	reqs := randomRequests(s, m.N, m.N, rng)
	res := Run(s, m, reqs)
	if len(res.Selected) != len(reqs) {
		t.Fatalf("selected %d, want %d", len(res.Selected), len(reqs))
	}
	minSize := hmos.MinTargetSetSize(s.Q, s.K, s.K)
	for r, sel := range res.Selected {
		if len(sel) != minSize {
			t.Fatalf("request %d selected %d copies, want minimal plain target set of %d", r, len(sel), minSize)
		}
		mask := make([]bool, s.Redundant)
		for _, c := range sel {
			mask[c.Leaf] = true
		}
		if !s.AccessedRoot(mask) {
			t.Fatalf("request %d: selected copies do not access the root", r)
		}
		// Every selected copy must live where the scheme says.
		for _, c := range sel {
			want := s.CopyAt(reqs[r].Var, c.Leaf)
			if c.Proc != want.Proc {
				t.Fatalf("request %d leaf %d: proc %d, want %d", r, c.Leaf, c.Proc, want.Proc)
			}
		}
	}
	if res.Steps <= 0 {
		t.Fatal("culling charged no steps")
	}
}

// Theorem 3: after iteration i no level-i page holds more than
// 4q^k·n^{1−1/2^i} selected copies — for random and adversarial sets.
func TestTheorem3Bound(t *testing.T) {
	params := []hmos.Params{
		{Side: 9, Q: 3, D: 3, K: 2},
		{Side: 27, Q: 3, D: 4, K: 2},
		{Side: 27, Q: 3, D: 5, K: 2},
		{Side: 16, Q: 4, D: 3, K: 2},
		{Side: 27, Q: 3, D: 4, K: 3},
	}
	for _, p := range params {
		s, m := scheme(t, p)
		rng := rand.New(rand.NewSource(42))
		sets := map[string][]Request{
			"random": randomRequests(s, m.N, m.N, rng),
			"dense":  denseRequests(s, m.N),
		}
		for name, reqs := range sets {
			res := Run(s, m, reqs)
			for i := 1; i <= s.K; i++ {
				load, bound := res.MaxLoad(i)
				if load > bound {
					t.Errorf("%+v %s: level-%d max page load %d exceeds Theorem 3 bound %d",
						p, name, i, load, bound)
				}
			}
		}
	}
}

// denseRequests targets variables that share level-1 modules as much as
// the BIBD allows: consecutive variable indexes (same h-block) collide
// heavily in early modules.
func denseRequests(s *hmos.Scheme, n int) []Request {
	count := n
	if count > s.Vars() {
		count = s.Vars()
	}
	reqs := make([]Request, count)
	for i := 0; i < count; i++ {
		reqs[i] = Request{Origin: i % n, Var: i}
	}
	return reqs
}

func TestRunValidation(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 9, Q: 3, D: 3, K: 2})
	mustPanic := func(name string, reqs []Request) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Run(s, m, reqs)
	}
	mustPanic("duplicate var", []Request{{0, 5}, {1, 5}})
	mustPanic("bad var", []Request{{0, s.Vars()}})
	mustPanic("bad origin", []Request{{-1, 0}})
}

func TestEmptyAndSingleton(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 9, Q: 3, D: 3, K: 2})
	res := Run(s, m, nil)
	if len(res.Selected) != 0 {
		t.Fatal("nonempty selection for empty request set")
	}
	res = Run(s, m, []Request{{Origin: 3, Var: 7}})
	if len(res.Selected) != 1 {
		t.Fatal("singleton selection missing")
	}
	if got, want := len(res.Selected[0]), hmos.MinTargetSetSize(3, 2, 2); got != want {
		t.Fatalf("singleton selected %d copies, want %d", got, want)
	}
}

// Culling must never select copies outside the variable's copy tree and
// must stay within the initial level-0 target set chain (C^i ⊆ C^{i-1}
// ⊆ ... ⊆ full tree) — verified here by the weaker observable property
// that selected leaves are valid and distinct.
func TestSelectedLeavesDistinct(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 27, Q: 3, D: 4, K: 2})
	rng := rand.New(rand.NewSource(3))
	reqs := randomRequests(s, m.N, 300, rng)
	res := Run(s, m, reqs)
	for r, sel := range res.Selected {
		seen := map[int]bool{}
		for _, c := range sel {
			if c.Leaf < 0 || c.Leaf >= s.Redundant {
				t.Fatalf("request %d: leaf %d out of range", r, c.Leaf)
			}
			if seen[c.Leaf] {
				t.Fatalf("request %d: leaf %d selected twice", r, c.Leaf)
			}
			seen[c.Leaf] = true
		}
	}
}

// The ablation baseline must produce valid target sets too (it only
// skips congestion control).
func TestSelectWithoutCulling(t *testing.T) {
	s, m := scheme(t, hmos.Params{Side: 9, Q: 3, D: 3, K: 2})
	rng := rand.New(rand.NewSource(8))
	reqs := randomRequests(s, m.N, m.N, rng)
	res := SelectWithoutCulling(s, m, reqs)
	if res.Steps != 0 {
		t.Fatal("baseline charged steps")
	}
	for r, sel := range res.Selected {
		mask := make([]bool, s.Redundant)
		for _, c := range sel {
			mask[c.Leaf] = true
		}
		if !s.AccessedRoot(mask) {
			t.Fatalf("baseline request %d: not a target set", r)
		}
	}
}

// Culling's charged cost must scale like k·q^k·√n (equation 2): doubling
// k roughly doubles it on the same machine.
func TestCostShape(t *testing.T) {
	s2, m := scheme(t, hmos.Params{Side: 27, Q: 3, D: 4, K: 2})
	s3, _ := scheme(t, hmos.Params{Side: 27, Q: 3, D: 4, K: 3})
	rng := rand.New(rand.NewSource(4))
	reqs2 := randomRequests(s2, m.N, 500, rng)
	reqs3 := make([]Request, len(reqs2))
	copy(reqs3, reqs2)
	c2 := Run(s2, m, reqs2).Steps
	c3 := Run(s3, m, reqs3).Steps
	if c3 <= c2 {
		t.Fatalf("k=3 culling (%d) not more expensive than k=2 (%d)", c3, c2)
	}
	// Ratio should be near (3·27)/(2·9) = 4.5; allow a broad envelope.
	ratio := float64(c3) / float64(c2)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("cost ratio %f outside [2,8]", ratio)
	}
}

func BenchmarkCullingFullMachine(b *testing.B) {
	s, _ := hmos.New(hmos.Params{Side: 27, Q: 3, D: 4, K: 2})
	m := mesh.MustNew(27)
	rng := rand.New(rand.NewSource(1))
	reqs := randomRequests(s, m.N, m.N, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s, m, reqs)
	}
}
