package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanOrder flags channel constructs in deterministic packages whose
// observable effect depends on arrival (completion) order rather than
// program order:
//
//   - a select with two or more communication cases commits whichever
//     operation is ready first — scheduler order, not program order;
//     a single case plus default (the non-blocking poll the actor
//     router uses) is deterministic and allowed;
//   - ranging over a channel consumes values in completion order;
//   - merging worker results in completion order inside a loop — an
//     append whose element is received from a channel, directly or via
//     a receive-bound local — bakes arrival order into a slice. The
//     sanctioned merge receives into an indexed slot (`out[r.shard] =
//     r.v`) or drains per-shard buffers in shard-index order.
//
// Suppress deliberate service-level waits (a transport timeout racing
// a result that is itself deterministic) with //detlint:ignore
// chanorder <reason>.
var ChanOrder = &Analyzer{
	Name:     "chanorder",
	Doc:      "no multi-case selects, channel ranges, or completion-order result merges in deterministic packages",
	Packages: DetPackages,
	Run:      runChanOrder,
}

func runChanOrder(p *Pass) {
	// nested loops revisit inner appends; report each site once
	seen := map[token.Pos]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.SelectStmt:
				comm := 0
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.Reportf(st.Pos(),
						"select with %d communication cases commits in arrival order; wait on one channel at a time, or annotate why every interleaving yields identical observable state", comm)
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(st.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Reportf(st.Pos(),
							"range over channel %s consumes results in completion order; receive into per-shard slots and merge by shard index, or annotate why order is immaterial", types.ExprString(st.X))
					}
				}
				checkCompletionMerge(p, st.Body, st.Body.Pos(), seen)
			case *ast.ForStmt:
				checkCompletionMerge(p, st.Body, st.Body.Pos(), seen)
			}
			return true
		})
	}
}

// checkCompletionMerge flags appends inside a loop body whose appended
// element is a channel receive — directly (`x = append(x, <-ch)`) or
// through a local bound from one (`v := <-ch; …; x = append(x, v.f)`)
// — when the destination slice outlives the loop. Receives inside
// select clauses are excluded: the select rule owns those, and the
// sanctioned single-case+default poll must stay clean.
func checkCompletionMerge(p *Pass, body *ast.BlockStmt, bodyPos token.Pos, seen map[token.Pos]bool) {
	recvLocals := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.SelectStmt); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// v := <-ch binds a completion-ordered value to a local
		if len(as.Lhs) >= 1 && len(as.Rhs) == 1 && isRecvExpr(as.Rhs[0]) {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := p.Info.Defs[id]; obj != nil {
						recvLocals[obj] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.SelectStmt); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		dstObj := p.Info.Uses[dst]
		if dstObj == nil {
			dstObj = p.Info.Defs[dst]
		}
		if dstObj == nil || dstObj.Pos() >= bodyPos {
			return true // loop-local scratch, dies with the iteration
		}
		for _, arg := range call.Args[1:] {
			fromRecv := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if isRecvExpr(m) {
					fromRecv = true
				}
				if id, ok := m.(*ast.Ident); ok && recvLocals[p.Info.Uses[id]] {
					fromRecv = true
				}
				return true
			})
			if fromRecv {
				if seen[as.Pos()] {
					return true
				}
				seen[as.Pos()] = true
				p.Reportf(as.Pos(),
					"%s merges worker results in channel completion order; receive into a per-shard slot and merge by shard index instead, or annotate why arrival order is immaterial",
					dst.Name)
				return true
			}
		}
		return true
	})
}

func isRecvExpr(n ast.Node) bool {
	ue, ok := n.(*ast.UnaryExpr)
	return ok && ue.Op == token.ARROW
}
