package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckedErr flags silently discarded results of the repository's own
// fault-aware entry points: a call whose error (StepChecked, snapshot
// Save/Load, RepairNow, …) or lost-packet count (GreedyRouteFaultInto
// and friends name that result "lost") is dropped — either by calling
// in statement position or by assigning the result to the blank
// identifier. A lost packet or failed step that nobody observes turns a
// detectable degradation into silent data corruption, so the discard
// must be deliberate and annotated. Standard-library callees are not
// checked; the invariant is about this module's own error contracts.
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc:  "module-internal error and lost-count results must not be silently discarded",
	Run:  runCheckedErr,
}

func runCheckedErr(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, res := moduleCallee(p, call)
				if fn == nil {
					return true
				}
				for i := 0; i < res.Len(); i++ {
					if why := watchedResult(res.At(i)); why != "" {
						p.Reportf(call.Pos(), "%s of %s discarded; assign and check it", why, fn.Name())
					}
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, res := moduleCallee(p, call)
				if fn == nil || len(st.Lhs) != res.Len() {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if why := watchedResult(res.At(i)); why != "" {
						p.Reportf(id.Pos(), "%s of %s assigned to _; capture and check it", why, fn.Name())
					}
				}
			}
			return true
		})
	}
}

// moduleCallee resolves call's static callee when it is a function or
// method of the analyzed module, returning it with its result tuple.
func moduleCallee(p *Pass, call *ast.CallExpr) (*types.Func, *types.Tuple) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, nil
	}
	path := fn.Pkg().Path()
	if path != p.Module && !strings.HasPrefix(path, p.Module+"/") {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, nil
	}
	return fn, sig.Results()
}

// watchedResult classifies one result variable: an error, or an
// explicitly named lost-item count. Empty string means unwatched.
func watchedResult(v *types.Var) string {
	if named, ok := v.Type().(*types.Named); ok &&
		named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return "error result"
	}
	if v.Name() == "lost" {
		return "lost-count result"
	}
	return ""
}
