// Package fix is a directive-hygiene fixture: unknown check names and
// malformed detlint:ignore comments are findings in their own right.
package fix

//detlint:ignore nosuchcheck bogus check name // want detlint
func unknown() {}

//detlint:ignore // want detlint
func malformed() {}

//detlint:ignore wallclock suppresses nothing; the audit catches it // want ignoreaudit
func unused() {}
