// Package fix is a ledgerphase fixture: every Begin/BeginPar must have
// a matching End on all return paths of the opening function.
package fix

import "meshpram/internal/trace"

func deferred(ld *trace.Ledger) {
	sp := ld.Begin("a", trace.PhaseOther)
	defer sp.End()
	work()
}

func inline(ld *trace.Ledger) {
	sp := ld.Begin("b", trace.PhaseSort)
	work()
	sp.End()
}

func deferredClosure(ld *trace.Ledger) {
	sp := ld.BeginPar("c", trace.PhaseOther)
	defer func() {
		work()
		sp.End()
	}()
}

func discarded(ld *trace.Ledger) {
	ld.Begin("d", trace.PhaseOther) // want ledgerphase
	work()
}

func escapes(ld *trace.Ledger, bad bool) {
	sp := ld.Begin("e", trace.PhaseOther) // want ledgerphase
	if bad {
		return
	}
	sp.End()
}

func reopened(ld *trace.Ledger) {
	sp := ld.Begin("f", trace.PhaseOther) // want ledgerphase
	sp = ld.Begin("g", trace.PhaseOther)
	sp.End()
}

func suppressed(ld *trace.Ledger, xs []int) {
	//detlint:ignore ledgerphase End is called on both branches below
	sp := ld.Begin("h", trace.PhaseOther)
	if len(xs) > 0 {
		sp.End()
		return
	}
	sp.End()
}

func work() {}
