// Package fix is a goroutineshare fixture: goroutine bodies must not
// write captured shared variables. The sanctioned shape is the
// per-shard arena — each goroutine writes only slots addressed by a
// goroutine-local shard id, and the caller merges in index order after
// the barrier. Handing values over a channel is the other sanctioned
// alternative; sends are not writes.
package fix

import "sync"

// sweep is the sanctioned idiom: arena[w] is addressed by the
// goroutine's own parameter, so distinct goroutines touch distinct
// slots and the merge below reads them in index order.
func sweep(n int) int {
	arena := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena[w] = w * w
		}(w)
	}
	wg.Wait()
	total := 0
	for _, v := range arena {
		total += v
	}
	return total
}

// badCounter races every goroutine on one captured counter.
func badCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want goroutineshare
		}()
	}
	wg.Wait()
	return total
}

// badAppend commits results in scheduler order (and races the slice
// header).
func badAppend(n int) []int {
	var out []int
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out = append(out, w) // want goroutineshare
		}(w)
	}
	wg.Wait()
	return out
}

// badFixedSlot writes one shared slot from every goroutine: the index
// is captured, not goroutine-local, so the last scheduled write wins.
func badFixedSlot(n int) int {
	slot := make([]int, 1)
	i := 0
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot[i] = w // want goroutineshare
		}(w)
	}
	wg.Wait()
	return slot[0]
}

// sendResults hands values over a channel instead of writing shared
// state: sends are the sanctioned alternative, not writes.
func sendResults(n int) int {
	ch := make(chan int, n)
	for w := 0; w < n; w++ {
		go func(w int) { ch <- w * w }(w)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch // commutative fold; arrival order immaterial
	}
	return total
}

// annotated keeps a vetted barrier-ordered single writer.
func annotated(n int) int {
	cycles := 0
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			if first {
				//detlint:ignore goroutineshare fixture: only the first goroutine writes, and the WaitGroup orders the write against the read below
				cycles++
			}
		}(w == 0)
	}
	wg.Wait()
	return cycles
}
