// Package fix is a snapshotfields fixture: every Simulator field must
// be referenced by both Save and Load unless annotated.
package fix

import "io"

type Simulator struct {
	covered  int
	saveOnly int // want snapshotfields
	loadOnly int // want snapshotfields
	orphan   int // want snapshotfields
	//detlint:ignore snapshotfields fixture: derived cache, rebuilt on demand
	cache map[int]int
}

func (sim *Simulator) Save(w io.Writer) error {
	_ = sim.covered
	_ = sim.saveOnly
	return nil
}

func (sim *Simulator) Load(r io.Reader) error {
	sim.covered = 1
	sim.loadOnly = 2
	return nil
}

// Other is not named Simulator, so its fields are out of scope.
type Other struct {
	ignored int
}
