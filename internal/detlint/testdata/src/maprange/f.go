// Package fix is a maprange fixture: marked lines must produce exactly
// one finding each; everything else must be clean.
package fix

import "sort"

func plain(m map[int]int) int {
	s := 0
	for _, v := range m { // want maprange
		s += v
	}
	return s
}

func collectSort(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectConverted(m map[int32]bool) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, int64(k))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	return keys
}

func copyMap(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v + 1
	}
	return dst
}

func copyIntoSelf(m map[int]int) {
	for k := range m { // want maprange
		m[k] = 0
	}
}

func suppressedCount(m map[int]int) int {
	n := 0
	//detlint:ignore maprange counting elements is order-insensitive
	for range m {
		n++
	}
	return n
}

func suppressedSameLine(m map[int]int) int {
	s := 0
	for _, v := range m { //detlint:ignore maprange summing is order-insensitive
		s += v
	}
	return s
}

func overSlice(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
