// Package fix is a determtaint fixture: values derived from map
// iteration order, the wall clock, or unseeded randomness must not
// flow — even through a chain of package-internal helpers — into
// ledger charges, stdlib wire encoders, or the returns of
// wire/canonical-named functions. The syntactic checks (maprange,
// wallclock) flag the sources; determtaint flags the laundered flow at
// the sink.
package fix

import (
	"encoding/gob"
	"math/rand"
	"sort"
	"time"

	"meshpram/internal/trace"
)

// anyKey returns whichever key the randomized iteration visits first:
// an iteration-order-dependent selection, laundered behind a helper.
func anyKey(m map[int]int) int {
	for k := range m { // want maprange
		return k
	}
	return 0
}

// passthru is the innocent-looking middle link of the laundering chain.
func passthru(v int) int { return v }

func chargeAnyKey(ld *trace.Ledger, m map[int]int) {
	v := passthru(anyKey(m))
	ld.Charge(int64(v)) // want determtaint
}

// nowNs launders a wall-clock read through a helper return.
func nowNs() int64 { return time.Now().UnixNano() } // want wallclock

func chargeElapsed(ld *trace.Ledger) {
	ld.Charge(nowNs()) // want determtaint
}

// jitter launders unseeded randomness the same way.
func jitter() int64 { return rand.Int63() } // want wallclock

func observeJitter(sp *trace.Span) {
	sp.Observe(jitter()) // want determtaint
}

// keysBad streams map keys to a gob encoder in iteration order.
func keysBad(enc *gob.Encoder, m map[string]int) {
	var keys []string
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	enc.Encode(keys) // want determtaint
}

// keysGood sorts first: the sort canonicalizes order, clearing the
// taint, and the collect+sort idiom satisfies maprange too.
func keysGood(enc *gob.Encoder, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Encode(keys)
}

// Packet's String is a wire rendering (wire-named): folding over the
// map in iteration order bakes that order into the returned bytes.
type Packet struct{ Loads map[int]int }

func (p Packet) String() string {
	s := ""
	for _, v := range p.Loads { // want maprange
		s += string(rune('a' + v%26))
	}
	return s // want determtaint
}

// countOnly charges the map's size: len() of an order-tainted
// container is itself order-insensitive.
func countOnly(ld *trace.Ledger, m map[int]int) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	ld.Charge(int64(len(keys)))
}

// chargeSuppressed demonstrates the escape hatch for a vetted flow.
func chargeSuppressed(ld *trace.Ledger, m map[int]int) {
	v := anyKey(m)
	//detlint:ignore determtaint fixture: flow vetted by hand; the charged value is order-insensitive downstream
	ld.Charge(int64(v))
}
