// Package fix is a wallclock fixture.
package fix

import (
	"math/rand"
	"time"
)

func now() int64 {
	return time.Now().UnixNano() // want wallclock
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}

func globalSource() int {
	return rand.Intn(10) // want wallclock
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on a seeded *rand.Rand are fine
}

func annotated() int64 {
	//detlint:ignore wallclock diagnostics only; never enters simulation state
	return time.Now().UnixNano()
}

func typesOnly(d time.Duration) time.Duration {
	return d + time.Second // referencing time types/constants is fine
}
