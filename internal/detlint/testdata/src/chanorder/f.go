// Package fix is a chanorder fixture: multi-case selects, channel
// ranges, and completion-order result merges make scheduler arrival
// order observable. The sanctioned shapes are the single-case+default
// non-blocking poll and the per-shard-slot merge indexed by data
// carried in the result, not by arrival position.
package fix

// selectTwo commits whichever channel is ready first.
func selectTwo(a, b chan int) int {
	select { // want chanorder
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// nonBlocking is the sanctioned single-case + default poll.
func nonBlocking(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// drain consumes values in completion order.
func drain(a chan int) int {
	n := 0
	for range a { // want chanorder
		n++
	}
	return n
}

// completionMerge bakes arrival order into the slice.
func completionMerge(results chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, <-results) // want chanorder
	}
	return out
}

// localMerge binds the receive to a local first; the destination still
// outlives the loop, so the order still leaks.
func localMerge(results chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		v := <-results
		out = append(out, v*v) // want chanorder
	}
	return out
}

// shardResult carries its own slot index, so arrival order cannot
// matter.
type shardResult struct {
	shard int
	v     int
}

// indexMerge is the sanctioned merge: each result lands in the slot
// its payload names, and scratch appended inside the loop dies with
// the iteration.
func indexMerge(results chan shardResult, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		r := <-results
		var scratch []int
		scratch = append(scratch, r.v)
		out[r.shard] = scratch[0]
	}
	return out
}

// annotated keeps a deliberate transport-level race.
func annotated(done, timeout chan struct{}) bool {
	//detlint:ignore chanorder fixture: transport-level wait; the observable result is identical on either arm
	select {
	case <-done:
		return true
	case <-timeout:
		return false
	}
}
