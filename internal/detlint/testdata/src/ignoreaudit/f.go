// Package fix is an ignoreaudit fixture: a //detlint:ignore directive
// that no longer suppresses any finding is itself a finding, so the
// suppression inventory cannot rot. A directive that must outlive a
// quiet spell is shielded with an adjacent ignoreaudit directive.
package fix

import "sort"

// sortedKeys once ranged the map bare; the body was later rewritten to
// the collect+sort idiom but the directive survived the rewrite — it
// is dead weight now.
func sortedKeys(m map[int]int) []int {
	var keys []int
	//detlint:ignore maprange stale: the body was rewritten to collect+sort // want ignoreaudit
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// anyOrder still needs its suppression: maprange flags the fold, and
// the directive is what keeps it quiet — load-bearing, not audited.
func anyOrder(m map[int]int) int {
	best := 0
	//detlint:ignore maprange max over values is order-insensitive
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// shielded demonstrates the escape hatch: the maprange directive is
// currently unused (the body satisfies collect+sort), but it is kept
// deliberately, and the adjacent ignoreaudit directive says why.
func shielded(m map[int]int) []int {
	var keys []int
	//detlint:ignore ignoreaudit fixture: directive kept deliberately through a quiet spell
	//detlint:ignore maprange the body flips to an unsorted fold under a build tag
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
