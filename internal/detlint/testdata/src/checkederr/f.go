// Package fix is a checkederr fixture: discarding error or lost-count
// results from module-internal calls must be flagged; stdlib discards
// and captured results must not.
package fix

import (
	"bytes"
	"fmt"

	"meshpram/internal/core"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
)

func discardAll(sim *core.Simulator, ops []core.Op) {
	sim.StepChecked(ops) // want checkederr
}

func blankError(sim *core.Simulator, ops []core.Op) []core.Word {
	res, _, _ := sim.StepChecked(ops) // want checkederr
	return res
}

func blankLost(m *mesh.Machine, items [][]int) int64 {
	_, steps, _ := route.GreedyRouteFaultInto(make([][]int, m.N), m, m.Full(), items, func(x int) int { return x }) // want checkederr
	return steps
}

func captured(sim *core.Simulator, ops []core.Op) error {
	_, _, err := sim.StepChecked(ops)
	return err
}

func stdlibDiscard(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "stdlib errors are outside detlint's remit")
}

func suppressedDiscard(sim *core.Simulator, buf *bytes.Buffer) {
	//detlint:ignore checkederr fixture demonstrates a deliberate best-effort save
	sim.Save(buf)
}
