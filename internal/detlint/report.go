package detlint

// Machine-readable reporting: findings rendered as a stable JSON
// document with per-finding fingerprints, plus an allowlist baseline so
// CI can gate on *new* findings while a known debt burns down. The
// repository's committed baseline (detlint.baseline.json) is empty and
// a test keeps it that way — the mechanism exists for downstream forks
// and for staging large check rollouts, not for parking violations.
//
// Fingerprints hash the module-relative path, check name, message and
// the occurrence index of that triple within the file — deliberately
// NOT the line number, so a finding keeps its identity when unrelated
// edits shift it down the file. Identical trees therefore produce
// byte-identical reports (pinned by the golden in json_test.go).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ReportFinding is one finding in wire form.
type ReportFinding struct {
	File        string `json:"file"` // module-root-relative, slash-separated
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Check       string `json:"check"`
	Msg         string `json:"msg"`
	Fingerprint string `json:"fingerprint"`
	Baselined   bool   `json:"baselined,omitempty"`
}

// Report is the -format json document.
type Report struct {
	Version  int             `json:"version"`
	Findings []ReportFinding `json:"findings"`
}

// Fingerprint derives the stable identity of one finding occurrence.
func Fingerprint(file, check, msg string, occurrence int) string {
	h := sha256.Sum256([]byte(file + "\x00" + check + "\x00" + msg + "\x00" + strconv.Itoa(occurrence)))
	return hex.EncodeToString(h[:8])
}

// NewReport converts findings (in Run's sorted order) to wire form,
// relativizing paths against modRoot and marking baselined entries.
func NewReport(modRoot string, findings []Finding, baseline map[string]bool) Report {
	r := Report{Version: 1, Findings: []ReportFinding{}}
	occ := map[string]int{}
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		key := file + "\x00" + f.Check + "\x00" + f.Msg
		fp := Fingerprint(file, f.Check, f.Msg, occ[key])
		occ[key]++
		r.Findings = append(r.Findings, ReportFinding{
			File: file, Line: f.Pos.Line, Col: f.Pos.Column,
			Check: f.Check, Msg: f.Msg,
			Fingerprint: fp, Baselined: baseline[fp],
		})
	}
	return r
}

// NewCount is the number of findings not covered by the baseline — the
// CI gate's exit criterion.
func (r Report) NewCount() int {
	n := 0
	for _, f := range r.Findings {
		if !f.Baselined {
			n++
		}
	}
	return n
}

// Encode writes the report as indented JSON. Identical findings encode
// to identical bytes.
func (r Report) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// baselineFile is the committed allowlist format.
type baselineFile struct {
	Version      int      `json:"version"`
	Fingerprints []string `json:"fingerprints"`
}

// LoadBaseline reads a baseline file into a fingerprint set. An empty
// path yields an empty set.
func LoadBaseline(path string) (map[string]bool, error) {
	set := map[string]bool{}
	if path == "" {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("detlint: baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("detlint: baseline %s: unsupported version %d", path, bf.Version)
	}
	for _, fp := range bf.Fingerprints {
		set[fp] = true
	}
	return set, nil
}
