package detlint

import (
	"go/ast"
)

// SnapshotFields cross-checks the Simulator struct against the snapshot
// code: every field must be referenced by BOTH the Save and the Load
// method (i.e. carried through the wire image, or at least consulted on
// both sides), or carry a //detlint:ignore snapshotfields annotation
// saying why it is deliberately outside the image. This turns "added a
// field, forgot the snapshot" — which silently resurrects stale state
// after a checkpointed-retry rollback — into a lint failure at the
// field's declaration.
//
// The analyzer is structural: it runs on any package declaring a struct
// type named Simulator with Save and Load methods, and is silent
// elsewhere.
var SnapshotFields = &Analyzer{
	Name: "snapshotfields",
	Doc:  "every Simulator field must be snapshotted (referenced in Save and Load) or annotated why not",
	Run:  runSnapshotFields,
}

func runSnapshotFields(p *Pass) {
	var simStruct *ast.StructType
	var simPos = make(map[string]ast.Expr) // field name → position anchor
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Simulator" {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				simStruct = st
			}
			return true
		})
	}
	if simStruct == nil {
		return
	}

	saveRefs := methodFieldRefs(p, "Save")
	loadRefs := methodFieldRefs(p, "Load")
	if saveRefs == nil || loadRefs == nil {
		return // no snapshot methods; nothing to cross-check
	}

	for _, fld := range simStruct.Fields.List {
		for _, name := range fld.Names {
			simPos[name.Name] = name
			if saveRefs[name.Name] && loadRefs[name.Name] {
				continue
			}
			missing := "Save and Load"
			switch {
			case saveRefs[name.Name]:
				missing = "Load"
			case loadRefs[name.Name]:
				missing = "Save"
			}
			p.Reportf(name.Pos(),
				"Simulator field %s is not referenced by snapshot %s; carry it in the image or annotate why it is deliberately outside it",
				name.Name, missing)
		}
	}
}

// methodFieldRefs returns the set of receiver fields selected (recv.f)
// anywhere in the Simulator method with the given name, or nil when the
// method does not exist.
func methodFieldRefs(p *Pass, method string) map[string]bool {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			rt := fd.Recv.List[0].Type
			if se, ok := rt.(*ast.StarExpr); ok {
				rt = se.X
			}
			if id, ok := rt.(*ast.Ident); !ok || id.Name != "Simulator" {
				continue
			}
			if len(fd.Recv.List[0].Names) != 1 || fd.Body == nil {
				continue
			}
			recv := p.Info.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			refs := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == recv {
					refs[sel.Sel.Name] = true
				}
				return true
			})
			return refs
		}
	}
	return nil
}
