package detlint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// wantRe marks an expected finding: a comment ending in "want <check>"
// expects exactly one finding of that check on its line. The marker is
// anchored at the end so prose mentioning the syntax never counts.
var wantRe = regexp.MustCompile(`// want ([a-z]+)$`)

// TestAnalyzersOnFixtures loads every package under testdata/src with a
// deterministic-package import path ("fixture/core", so the det-only
// analyzers apply), runs the full suite, and diffs the findings against
// the fixtures' want markers. Each fixture carries both triggering code
// and a //detlint:ignore-suppressed variant of the same pattern, so
// this pins the analyzers AND the suppression machinery.
func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join("testdata", "src")
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		ran++
		t.Run(name, func(t *testing.T) {
			pkg, err := loader.LoadAs(filepath.Join(root, name), "fixture/core")
			if err != nil {
				t.Fatalf("fixture does not typecheck: %v", err)
			}
			if pkg == nil {
				t.Fatal("fixture directory holds no Go files")
			}

			got := map[string]int{}
			for _, f := range Run([]*Package{pkg}, All()) {
				got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)]++
			}
			want := map[string]int{}
			for _, file := range pkg.Files {
				for _, cg := range file.Comments {
					for _, c := range cg.List {
						m := wantRe.FindStringSubmatch(c.Text)
						if m == nil {
							continue
						}
						pos := pkg.Fset.Position(c.Pos())
						want[fmt.Sprintf("%s:%d %s", filepath.Base(pos.Filename), pos.Line, m[1])]++
					}
				}
			}

			keys := map[string]bool{}
			for k := range got {
				keys[k] = true
			}
			for k := range want {
				keys[k] = true
			}
			ordered := make([]string, 0, len(keys))
			for k := range keys {
				ordered = append(ordered, k)
			}
			sort.Strings(ordered)
			for _, k := range ordered {
				if got[k] != want[k] {
					t.Errorf("%s: got %d finding(s), want %d", k, got[k], want[k])
				}
			}
			if len(want) == 0 {
				t.Error("fixture has no want markers; it tests nothing")
			}
		})
	}
	if ran < len(All()) {
		t.Fatalf("only %d fixture packages for %d analyzers", ran, len(All()))
	}
}
