package detlint

// IgnoreAudit keeps the suppression inventory honest: a
// //detlint:ignore directive that no longer suppresses any finding is
// itself a finding. Suppressions are written against specific code; when
// that code is rewritten or deleted, a surviving directive is dead
// weight at best and, at worst, silently swallows the next genuine
// finding that happens to land on its line. Auditing them means every
// surviving //detlint:ignore in the tree is load-bearing.
//
// The audit only considers checks that actually ran on the package in
// this invocation (a -checks subset must not condemn suppressions of
// the checks it skipped), and never audits directives for ignoreaudit
// itself. A directive that must outlive a temporarily-quiet finding can
// be kept with an adjacent //detlint:ignore ignoreaudit <reason>.
//
// The check has no Run of its own: it is evaluated by Run after the
// selected analyzers, from the suppression-usage ledger they leave
// behind.
var IgnoreAudit = &Analyzer{
	Name: "ignoreaudit",
	Doc:  "a //detlint:ignore directive that suppresses nothing is itself a finding",
}
