package detlint

// DetermTaint is the interprocedural determinism-taint check: values
// derived from map iteration order, wall-clock reads, or unseeded
// randomness must not flow — through any chain of this package's own
// helpers — into the surfaces that replay fixtures diff byte-for-byte:
// ledger charges (Ledger.Charge, Span.Observe, Span.AddPackets),
// gob/json wire encoders, or the results of wire/canonical encoding
// functions (Canonical, Key, String, MarshalBinary, MarshalText,
// AppendWire).
//
// The per-expression maprange and wallclock checks flag the source
// sites; this check closes the laundering hole they cannot see: a
// helper that returns the first key a map range yields (or a max fold,
// or a time-stamped value) looks clean at every individual expression,
// yet its caller feeding the result into a snapshot or a charge makes
// replay diverge. The taint engine (taint.go) summarizes every
// function's source→result flows to fixpoint, so the chain length does
// not matter.
//
// Sorting is the sanitizer: sort.*/slices.Sort* canonicalize order and
// clear map-order taint. Wall-clock and randomness taint have no
// sanitizer — such values must simply never reach a sink; annotate the
// sink line with //detlint:ignore determtaint <reason> for the rare
// deliberate diagnostic.
var DetermTaint = &Analyzer{
	Name:     "determtaint",
	Doc:      "order/time/randomness-derived values must not flow (even via helpers) into wire encodings, canonical keys, or ledger charges",
	Packages: DetPackages,
	Run:      runDetermTaint,
}

func runDetermTaint(p *Pass) {
	newTaintEngine(p).run()
}
