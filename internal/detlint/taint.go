package detlint

// The shared call-graph + taint-propagation layer under determtaint
// (and available to future interprocedural checks). It computes, per
// package, a summary for every declared function — which taint kinds
// its results carry intrinsically, and which parameters flow into its
// results — by fixpoint iteration, then replays every function body
// once more with reporting enabled so tainted values are flagged at
// the sinks they reach (ledger charges, gob/json encoders, returns of
// wire/canonical encoders).
//
// The analysis is deliberately modest and documented by its limits:
//
//   - flow is tracked per variable (types.Object), field-insensitively:
//     a write to x.f taints x as a whole, a read of x.f carries x's
//     taint;
//   - interprocedural propagation covers the analyzed package's own
//     functions (where helper laundering lives); calls into other
//     packages conservatively return the union of their argument and
//     receiver taints;
//   - dynamic dispatch (interface methods, function values) is opaque
//     and treated like a cross-package call.
//
// Taint kinds form a flat lattice: a value is tainted by map iteration
// order, by a wall-clock read, or by unseeded randomness. Sorting a
// value (sort.* / slices.Sort*) is the one sanitizer: it canonicalizes
// order, so it clears the map-order kind (and only that kind).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

type taintKind uint8

const (
	taintMapOrder taintKind = iota
	taintWallClock
	taintRand
	numTaintKinds
)

var taintKindDesc = [numTaintKinds]string{
	"map iteration order",
	"a wall-clock read",
	"unseeded randomness",
}

// taint is one value's taint state: the set of kinds it carries (each
// with a representative source position) and the set of enclosing
// function parameters whose values reach it.
type taint struct {
	kinds  uint8
	params uint32
	src    [numTaintKinds]token.Pos
}

func (t taint) has(k taintKind) bool { return t.kinds&(1<<k) != 0 }

func (t taint) tainted() bool { return t.kinds != 0 }

func (t *taint) add(k taintKind, pos token.Pos) bool {
	if t.has(k) {
		return false
	}
	t.kinds |= 1 << k
	t.src[k] = pos
	return true
}

// union merges o into t, keeping t's existing source positions, and
// reports whether t grew.
func (t *taint) union(o taint) bool {
	grew := false
	for k := taintKind(0); k < numTaintKinds; k++ {
		if o.has(k) && t.add(k, o.src[k]) {
			grew = true
		}
	}
	if o.params&^t.params != 0 {
		t.params |= o.params
		grew = true
	}
	return grew
}

func (t *taint) clear(k taintKind) {
	t.kinds &^= 1 << k
	t.src[k] = token.NoPos
}

// funcInfo is the interprocedural summary of one declared function:
// the intrinsic taint its results carry and (via taint.params bits)
// which of its parameters — receiver first — flow into a result.
type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	params  []types.Object // receiver (if any) first, then parameters
	hasRecv bool
	result  taint
}

// taintEngine runs the analysis for one package.
type taintEngine struct {
	p        *Pass
	funcs    map[*types.Func]*funcInfo
	order    []*funcInfo // declaration order, for deterministic findings
	reported map[string]bool
}

func newTaintEngine(p *Pass) *taintEngine {
	e := &taintEngine{p: p, funcs: map[*types.Func]*funcInfo{}, reported: map[string]bool{}}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				fi.hasRecv = true
				if names := fd.Recv.List[0].Names; len(names) == 1 {
					fi.params = append(fi.params, p.Info.Defs[names[0]])
				} else {
					fi.params = append(fi.params, nil)
				}
			}
			if fd.Type.Params != nil {
				for _, fld := range fd.Type.Params.List {
					if len(fld.Names) == 0 {
						fi.params = append(fi.params, nil)
						continue
					}
					for _, nm := range fld.Names {
						fi.params = append(fi.params, p.Info.Defs[nm])
					}
				}
			}
			e.funcs[fn] = fi
			e.order = append(e.order, fi)
		}
	}
	return e
}

// run computes summaries to fixpoint, then replays with reporting on.
func (e *taintEngine) run() {
	for iter := 0; iter < 2+int(numTaintKinds); iter++ {
		changed := false
		for _, fi := range e.order {
			if e.analyze(fi, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fi := range e.order {
		e.analyze(fi, true)
	}
}

// analyze walks one function body, updating its summary; it reports
// whether the summary grew. With report set, sink violations are
// emitted (exactly once, deduplicated across the replay).
func (e *taintEngine) analyze(fi *funcInfo, report bool) bool {
	w := &taintWalker{
		e:      e,
		fi:     fi,
		env:    map[types.Object]taint{},
		report: report,
	}
	for i, obj := range fi.params {
		if obj != nil && i < 32 {
			w.env[obj] = taint{params: 1 << i}
		}
	}
	w.walkStmt(fi.decl.Body)
	return fi.result.union(w.result)
}

// taintWalker carries the per-function abstract state. Statements are
// interpreted in syntactic order with a single shared environment;
// loop bodies are walked twice so loop-carried taint propagates.
type taintWalker struct {
	e      *taintEngine
	fi     *funcInfo
	env    map[types.Object]taint
	report bool
	result taint // taint reaching any non-error result

	// mapRangeBody is the position of the innermost enclosing
	// map-range body; values accumulated across its iterations into
	// variables declared before it become map-order tainted.
	mapRangeBody token.Pos
}

func (w *taintWalker) pass() *Pass { return w.e.p }

// outerOf reports whether obj was declared before the current
// map-range body (so a write to it accumulates across iterations).
func (w *taintWalker) outerOf(obj types.Object) bool {
	return w.mapRangeBody.IsValid() && obj != nil && obj.Pos() < w.mapRangeBody
}

func (w *taintWalker) lookup(obj types.Object) taint {
	if obj == nil {
		return taint{}
	}
	return w.env[obj]
}

// obj resolves an identifier to its object (definition or use).
func (w *taintWalker) obj(id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	if o := w.pass().Info.Defs[id]; o != nil {
		return o
	}
	return w.pass().Info.Uses[id]
}

// rootObj walks x down to the variable that owns the written or read
// storage: sel/index/slice/star/paren chains and single-argument type
// conversions are unwrapped.
func (w *taintWalker) rootObj(x ast.Expr) types.Object {
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return w.obj(v)
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.SelectorExpr:
			// package-qualified names have no storage root
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := w.pass().Info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		case *ast.TypeAssertExpr:
			x = v.X
		case *ast.CallExpr:
			if tv, ok := w.pass().Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				x = v.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, c := range st.List {
			w.walkStmt(c)
		}
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.IncDecStmt:
		// counting is commutative; no order taint, no propagation
	case *ast.ExprStmt:
		w.eval(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					var t taint
					if i < len(vs.Values) {
						t = w.eval(vs.Values[i])
					}
					if obj := w.obj(nm); obj != nil {
						w.env[obj] = t
					}
				}
			}
		}
	case *ast.ReturnStmt:
		w.walkReturn(st)
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		w.eval(st.Cond)
		w.walkStmt(st.Body)
		w.walkStmt(st.Else)
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		if st.Cond != nil {
			w.eval(st.Cond)
		}
		// two passes so loop-carried taint reaches every use
		for i := 0; i < 2; i++ {
			w.walkStmt(st.Body)
			w.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		w.walkRange(st)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		if st.Tag != nil {
			w.eval(st.Tag)
		}
		w.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		w.walkStmt(st.Body)
	case *ast.SelectStmt:
		w.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, x := range st.List {
			w.eval(x)
		}
		for _, c := range st.Body {
			w.walkStmt(c)
		}
	case *ast.CommClause:
		w.walkStmt(st.Comm)
		for _, c := range st.Body {
			w.walkStmt(c)
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.GoStmt:
		w.eval(st.Call)
	case *ast.DeferStmt:
		w.eval(st.Call)
	case *ast.SendStmt:
		w.eval(st.Chan)
		w.eval(st.Value)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *taintWalker) walkReturn(st *ast.ReturnStmt) {
	record := func(t taint, typ types.Type) {
		if isErrorType(typ) {
			return // error plumbing is checkederr's domain, not a wire value
		}
		if w.mapRangeBody.IsValid() {
			// returning from inside a map-range body selects an
			// iteration-order-dependent element
			t.add(taintMapOrder, st.Pos())
		}
		if w.report && t.tainted() && wireNames[w.fi.decl.Name.Name] {
			for k := taintKind(0); k < numTaintKinds; k++ {
				if t.has(k) {
					w.e.reportf(w.pass(), st.Pos(),
						"wire/canonical encoder %s returns a value derived from %s (%s)",
						w.fi.decl.Name.Name, taintKindDesc[k], w.e.srcPos(t.src[k]))
				}
			}
		}
		w.result.union(t)
	}
	if len(st.Results) == 0 {
		// naked return: named results carry whatever they hold
		if res := w.fi.decl.Type.Results; res != nil {
			for _, fld := range res.List {
				for _, nm := range fld.Names {
					obj := w.obj(nm)
					if obj != nil {
						record(w.lookup(obj), obj.Type())
					}
				}
			}
		}
		return
	}
	for _, x := range st.Results {
		t := w.eval(x)
		var typ types.Type
		if tv, ok := w.pass().Info.Types[x]; ok {
			typ = tv.Type
		}
		record(t, typ)
	}
}

func (w *taintWalker) walkRange(st *ast.RangeStmt) {
	src := w.eval(st.X)
	t := w.pass().Info.TypeOf(st.X)
	_, overMap := t.Underlying().(*types.Map)

	// range variables inherit the container's taint (its contents),
	// but not map-order taint from merely being iterated
	bind := func(x ast.Expr) {
		id, ok := x.(*ast.Ident)
		if !ok {
			return
		}
		if obj := w.obj(id); obj != nil {
			w.env[obj] = src
		}
	}
	bind(st.Key)
	bind(st.Value)

	if !overMap {
		for i := 0; i < 2; i++ {
			w.walkStmt(st.Body)
		}
		return
	}
	saved := w.mapRangeBody
	w.mapRangeBody = st.Body.Pos()
	for i := 0; i < 2; i++ {
		w.walkStmt(st.Body)
	}
	w.mapRangeBody = saved
}

// commutativeCompound reports whether `lhs op= rhs` accumulates
// order-insensitively: integer add/sub/mul and the bitwise ops commute
// and associate exactly; string concatenation and float arithmetic do
// not.
func commutativeCompound(tok token.Token, typ types.Type) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if typ == nil {
		return false
	}
	b, ok := typ.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// indexUsesRangeScope reports whether any index along the lvalue chain
// references a variable declared inside the current map-range body
// (the per-key-slot store idiom: distinct iterations address distinct
// slots, so the store commutes).
func (w *taintWalker) indexUsesRangeScope(x ast.Expr) bool {
	found := false
	for {
		switch v := x.(type) {
		case *ast.IndexExpr:
			ast.Inspect(v.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := w.obj(id); obj != nil && !w.outerOf(obj) {
						found = true
					}
				}
				return true
			})
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return found
		}
	}
}

func (w *taintWalker) assign(as *ast.AssignStmt) {
	// compound assignment: lhs op= rhs
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		t := w.eval(as.Rhs[0])
		obj := w.rootObj(as.Lhs[0])
		if obj == nil {
			return
		}
		cur := w.lookup(obj)
		cur.union(t)
		if w.outerOf(obj) && !commutativeCompound(as.Tok, obj.Type()) {
			cur.add(taintMapOrder, as.Pos())
		}
		w.env[obj] = cur
		return
	}

	// plain = / := ; evaluate RHS first
	var rhs []taint
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		t := w.eval(as.Rhs[0]) // tuple: every lhs gets the call's taint
		for range as.Lhs {
			rhs = append(rhs, t)
		}
	} else {
		for _, r := range as.Rhs {
			rhs = append(rhs, w.eval(r))
		}
	}
	for i, lhs := range as.Lhs {
		if i >= len(rhs) {
			break
		}
		t := rhs[i]
		switch lv := lhs.(type) {
		case *ast.Ident:
			obj := w.obj(lv)
			if obj == nil {
				continue
			}
			if w.outerOf(obj) {
				// accumulation or selection across map iterations
				t.add(taintMapOrder, as.Pos())
				cur := w.lookup(obj)
				cur.union(t)
				w.env[obj] = cur
			} else {
				w.env[obj] = t // strong update
			}
		case *ast.IndexExpr:
			obj := w.rootObj(lv)
			if obj == nil {
				continue
			}
			t.union(w.eval(lv.Index))
			_, intoMap := w.pass().Info.TypeOf(lv.X).Underlying().(*types.Map)
			if w.outerOf(obj) && !intoMap && !w.indexUsesRangeScope(lv) {
				// a fixed slot rewritten every iteration keeps the
				// last-iterated value; per-key slots and map stores
				// commute and stay clean
				t.add(taintMapOrder, as.Pos())
			}
			cur := w.lookup(obj)
			cur.union(t)
			w.env[obj] = cur
		default:
			obj := w.rootObj(lhs)
			if obj == nil {
				continue
			}
			if w.outerOf(obj) {
				t.add(taintMapOrder, as.Pos())
			}
			cur := w.lookup(obj)
			cur.union(t)
			w.env[obj] = cur
		}
	}
}

func (w *taintWalker) eval(x ast.Expr) taint {
	switch v := x.(type) {
	case nil:
		return taint{}
	case *ast.Ident:
		return w.lookup(w.obj(v))
	case *ast.BasicLit:
		return taint{}
	case *ast.FuncLit:
		// walk the body inline: captured variables keep their taint and
		// sink calls inside the literal are still checked; returns stay
		// local to the literal
		savedRes, savedMR := w.result, w.mapRangeBody
		w.mapRangeBody = token.NoPos
		w.walkStmt(v.Body)
		w.result, w.mapRangeBody = savedRes, savedMR
		return taint{}
	case *ast.ParenExpr:
		return w.eval(v.X)
	case *ast.StarExpr:
		return w.eval(v.X)
	case *ast.UnaryExpr:
		return w.eval(v.X)
	case *ast.BinaryExpr:
		t := w.eval(v.X)
		t.union(w.eval(v.Y))
		return t
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := w.pass().Info.Uses[id].(*types.PkgName); isPkg {
				return taint{}
			}
		}
		return w.eval(v.X)
	case *ast.IndexExpr:
		// generic instantiation f[T] has no value taint of its own
		if tv, ok := w.pass().Info.Types[v.X]; ok && tv.IsType() {
			return taint{}
		}
		t := w.eval(v.X)
		t.union(w.eval(v.Index))
		return t
	case *ast.IndexListExpr:
		return taint{}
	case *ast.SliceExpr:
		return w.eval(v.X)
	case *ast.TypeAssertExpr:
		return w.eval(v.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t.union(w.eval(el))
		}
		return t
	case *ast.CallExpr:
		return w.evalCall(v)
	case *ast.KeyValueExpr:
		t := w.eval(v.Key)
		t.union(w.eval(v.Value))
		return t
	}
	return taint{}
}

func (w *taintWalker) evalCall(call *ast.CallExpr) taint {
	p := w.pass()

	// type conversion
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		var t taint
		for _, a := range call.Args {
			t.union(w.eval(a))
		}
		return t
	}

	// builtins
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t taint
				for _, a := range call.Args {
					t.union(w.eval(a))
				}
				return t
			case "len", "cap":
				// the size of an order-tainted container is itself
				// order-insensitive
				t := w.eval(call.Args[0])
				t.clear(taintMapOrder)
				return t
			case "copy":
				if len(call.Args) == 2 {
					t := w.eval(call.Args[1])
					if obj := w.rootObj(call.Args[0]); obj != nil {
						cur := w.lookup(obj)
						cur.union(t)
						w.env[obj] = cur
					}
				}
				return taint{}
			case "min", "max":
				var t taint
				for _, a := range call.Args {
					t.union(w.eval(a))
				}
				return t
			default:
				for _, a := range call.Args {
					w.eval(a)
				}
				return taint{}
			}
		}
	}

	fn := calleeFunc(p, call)

	// taint sources and the sort sanitizer, by callee package
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				var t taint
				t.add(taintWallClock, call.Pos())
				return t
			}
		case "math/rand", "math/rand/v2":
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randSeeded[fn.Name()] {
				var t taint
				t.add(taintRand, call.Pos())
				return t
			}
		case "crypto/rand":
			var t taint
			t.add(taintRand, call.Pos())
			return t
		case "maps":
			switch fn.Name() {
			case "Keys", "Values", "All":
				t := w.argUnion(call)
				t.add(taintMapOrder, call.Pos())
				return t
			}
		case "slices":
			switch fn.Name() {
			case "Sorted", "SortedFunc", "SortedStableFunc":
				t := w.argUnion(call)
				t.clear(taintMapOrder)
				return t
			case "Sort", "SortFunc", "SortStableFunc":
				w.sanitize(call)
				return taint{}
			}
		case "sort":
			switch fn.Name() {
			case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				w.sanitize(call)
				return taint{}
			}
		}
	}

	// sinks: ledger charges and stdlib wire encoders
	if w.report && fn != nil {
		if why := sinkKind(fn); why != "" {
			for _, a := range call.Args {
				t := w.eval(a)
				for k := taintKind(0); k < numTaintKinds; k++ {
					if t.has(k) {
						w.e.reportf(p, a.Pos(),
							"value derived from %s (%s) flows into %s",
							taintKindDesc[k], w.e.srcPos(t.src[k]), why)
					}
				}
			}
		}
	}

	// same-package callee: apply its summary
	if fi := w.e.funcs[fn]; fi != nil {
		t := taint{kinds: fi.result.kinds, src: fi.result.src}
		if fi.result.params != 0 {
			args := w.callArgs(call, fi)
			for i := range fi.params {
				if i < 32 && fi.result.params&(1<<i) != 0 && i < len(args) && args[i] != nil {
					at := w.eval(args[i])
					t.union(at)
				}
			}
		}
		// arguments not flowing to results still need walking for
		// nested sink calls / literals
		for _, a := range call.Args {
			w.eval(a)
		}
		return t
	}

	// cross-package / dynamic callee: conservative — results carry the
	// union of receiver and argument taints
	var t taint
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		t.union(w.eval(sel.X))
	}
	for _, a := range call.Args {
		t.union(w.eval(a))
	}
	return t
}

// callArgs aligns a call's receiver and arguments with fi.params.
func (w *taintWalker) callArgs(call *ast.CallExpr, fi *funcInfo) []ast.Expr {
	var args []ast.Expr
	if fi.hasRecv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil)
		}
	}
	args = append(args, call.Args...)
	return args
}

func (w *taintWalker) argUnion(call *ast.CallExpr) taint {
	var t taint
	for _, a := range call.Args {
		t.union(w.eval(a))
	}
	return t
}

// sanitize clears map-order taint from the storage roots of an
// in-place sort call's arguments.
func (w *taintWalker) sanitize(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.eval(a) // function-literal comparators etc.
		if obj := w.rootObj(a); obj != nil {
			cur := w.lookup(obj)
			cur.clear(taintMapOrder)
			w.env[obj] = cur
		}
	}
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](…)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(x ast.Expr) ast.Expr {
	for {
		pe, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = pe.X
	}
}

// wireNames are the function names whose returned bytes/strings are a
// wire, snapshot, or canonical-key encoding: order/time/randomness
// taint in their results breaks byte-identical replay directly.
var wireNames = map[string]bool{
	"Canonical":     true,
	"Key":           true,
	"String":        true,
	"MarshalBinary": true,
	"MarshalText":   true,
	"AppendWire":    true,
}

// sinkKind classifies fn as a taint sink and returns its description,
// or "" when it is not one.
func sinkKind(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	switch fn.Name() {
	case "Charge":
		if namedTypeIs(recv, "Ledger", "trace") {
			return "ledger charging (Ledger.Charge)"
		}
	case "Observe", "AddPackets":
		if namedTypeIs(recv, "Span", "trace") {
			return "ledger charging (Span." + fn.Name() + ")"
		}
	case "Encode":
		if named, ok := derefNamed(recv); ok {
			pkg := named.Obj().Pkg()
			if named.Obj().Name() == "Encoder" && pkg != nil &&
				(pkg.Path() == "encoding/gob" || pkg.Path() == "encoding/json") {
				return pkg.Path() + " encoding"
			}
		}
	}
	return ""
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// srcPos renders a taint source position as "file.go:NN" for messages
// (basename only, so findings and fingerprints are machine-independent).
func (e *taintEngine) srcPos(pos token.Pos) string {
	if !pos.IsValid() {
		return "unknown origin"
	}
	p := e.p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// reportf emits one deduplicated finding.
func (e *taintEngine) reportf(p *Pass, pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d|%s", pos, msg)
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	p.Reportf(pos, "%s", msg)
}
