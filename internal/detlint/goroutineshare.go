package detlint

import (
	"go/ast"
	"go/types"
)

// GoroutineShare flags writes from goroutine bodies to captured shared
// variables in deterministic packages. The one sanctioned shape is the
// parallel sweep's per-shard-arena idiom: each goroutine writes only
// `arena[w] = …` slots addressed by a goroutine-local shard id passed
// into (or derived inside) the literal, and the caller merges the
// slots in shard-index order after the WaitGroup barrier. Everything
// else — a captured counter, an append to a shared slice, a fixed slot
// every worker hits — races or commits in scheduler order, and either
// way two runs of the same seeded timeline can diverge.
//
// The check is structural and local to `go func(…) { … }` literals:
//
//   - a write (assignment, ++/--, or range-clause assignment) whose
//     target's storage root is declared outside the literal is a
//     finding, unless the lvalue is an index chain where some index
//     references a variable declared inside the literal (the shard-id
//     arena slot);
//   - channel sends and method calls (sync.WaitGroup.Done, mutex ops,
//     atomics) are not writes in this sense — handing work over a
//     channel is the sanctioned alternative;
//   - `go namedWorker(ch)` launches are out of scope: the pool-worker
//     idiom shares nothing but the job channel, and the worker body is
//     analyzed as an ordinary function.
//
// Deliberate exceptions (a barrier-ordered single writer, say) take
// //detlint:ignore goroutineshare <reason> on the write.
var GoroutineShare = &Analyzer{
	Name:     "goroutineshare",
	Doc:      "goroutine bodies must not write captured shared variables outside the per-shard-arena + index-ordered-merge idiom",
	Packages: DetPackages,
	Run:      runGoroutineShare,
}

func runGoroutineShare(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(p, fl)
			return true
		})
	}
}

func checkGoroutineBody(p *Pass, fl *ast.FuncLit) {
	inside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= fl.Pos() && obj.Pos() < fl.End()
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkGoroutineWrite(p, fl, lhs, inside)
			}
		case *ast.IncDecStmt:
			checkGoroutineWrite(p, fl, st.X, inside)
		case *ast.RangeStmt:
			if st.Tok.String() == "=" {
				checkGoroutineWrite(p, fl, st.Key, inside)
				checkGoroutineWrite(p, fl, st.Value, inside)
			}
		}
		return true
	})
}

// checkGoroutineWrite reports a write through lhs whose storage root is
// captured from outside the goroutine literal, unless an index on the
// lvalue chain is goroutine-local (the per-shard arena slot).
func checkGoroutineWrite(p *Pass, fl *ast.FuncLit, lhs ast.Expr, inside func(types.Object) bool) {
	if lhs == nil {
		return
	}
	localIndex := false
	x := lhs
walk:
	for {
		switch v := x.(type) {
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.SelectorExpr:
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					return
				}
			}
			x = v.X
		case *ast.IndexExpr:
			ast.Inspect(v.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; inside(obj) {
						localIndex = true
					}
				}
				return true
			})
			x = v.X
		default:
			break walk
		}
	}
	id, ok := x.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if _, isVar := obj.(*types.Var); !isVar || inside(obj) {
		return
	}
	if localIndex {
		return // per-shard arena slot: goroutine-local index into a shared arena
	}
	p.Reportf(lhs.Pos(),
		"goroutine writes captured variable %s: scheduler order becomes data; write a per-shard arena slot indexed by a goroutine-local shard id and merge in index order, or annotate why the write is ordered",
		id.Name)
}
