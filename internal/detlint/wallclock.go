package detlint

import (
	"go/ast"
	"go/types"
)

// WallClock bans wall-clock reads and unseeded randomness in the
// deterministic packages. time.Now/time.Since values differ every run;
// the global math/rand source (and every math/rand/v2 generator
// constructor's default seed) is randomly seeded; crypto/rand is
// nondeterministic by design. Simulation state derived from any of them
// breaks bit-identity. Explicitly seeded generators
// (rand.New(rand.NewSource(seed))) are fine.
var WallClock = &Analyzer{
	Name:     "wallclock",
	Doc:      "no wall-clock reads or unseeded randomness in deterministic packages",
	Packages: DetPackages,
	Run:      runWallClock,
}

// randSeeded are the math/rand(/v2) names that only construct
// explicitly-seeded state and are therefore allowed.
var randSeeded = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" || obj.Name() == "Since" {
					p.Reportf(sel.Pos(), "wall-clock read time.%s: values differ every run; use the step clock or annotate a diagnostics-only use", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				// Methods on a *rand.Rand draw from the explicitly seeded
				// source the caller built; only the package-level functions
				// (and Seed-less v2 constructors) hit the global source.
				fn, isFunc := obj.(*types.Func)
				if !isFunc || randSeeded[obj.Name()] {
					break
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					p.Reportf(sel.Pos(), "unseeded randomness rand.%s: the global source is randomly seeded; use rand.New(rand.NewSource(seed))", obj.Name())
				}
			case "crypto/rand":
				p.Reportf(sel.Pos(), "crypto/rand.%s is nondeterministic by design; deterministic packages must use a seeded source", obj.Name())
			}
			return true
		})
	}
}
