package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LedgerPhase verifies that every ledger span opened with Begin or
// BeginPar is closed on all return paths of the function that opened
// it. An unclosed span corrupts the cost tree: the ledger's active
// chain never pops, every later charge lands under the leaked span, and
// the root tree the accounting fixtures pin never completes.
//
// Accepted closing shapes:
//
//   - `defer sp.End()` (or a deferred func literal calling sp.End())
//     anywhere in the opening function;
//   - a plain `sp.End()` later in the same statement list, with no way
//     to leave the function (return, goto, labeled branch, or a
//     break/continue escaping the list) between the two.
//
// Calling Begin in statement position (discarding the span) is always a
// finding. Shapes the analyzer cannot prove — e.g. an End inside a
// conditional — need a //detlint:ignore ledgerphase annotation.
var LedgerPhase = &Analyzer{
	Name: "ledgerphase",
	Doc:  "every ledger span Begin must have a matching End on all return paths",
	Run:  runLedgerPhase,
}

func runLedgerPhase(p *Pass) {
	for _, file := range p.Files {
		// Each function literal is its own scope: its returns do not exit
		// the enclosing function, and its spans must close within it.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanScope(p, fn.Body)
				}
			case *ast.FuncLit:
				checkSpanScope(p, fn.Body)
			}
			return true
		})
	}
}

// checkSpanScope analyzes one function body (excluding nested function
// literals, which are visited separately).
func checkSpanScope(p *Pass, body *ast.BlockStmt) {
	deferred := map[types.Object]bool{}
	inspectOwn(body, func(n ast.Node) {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		if obj := endCallReceiver(p, ds.Call); obj != nil {
			deferred[obj] = true
		}
		// defer func() { …; sp.End() }() closes over the span; the End
		// still runs at function exit.
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if obj := endCallReceiver(p, call); obj != nil {
						deferred[obj] = true
					}
				}
				return true
			})
		}
	})

	forEachOwnStmtList(body, func(list []ast.Stmt) {
		for i, st := range list {
			if ls, ok := st.(*ast.LabeledStmt); ok {
				st = ls.Stmt
			}
			// Begin in statement position: the span is unreachable.
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isBeginCall(p, call) {
					p.Reportf(call.Pos(), "ledger span discarded: capture the result of %s and End it", beginName(call))
				}
				continue
			}
			obj, call := spanAssign(p, st)
			if obj == nil {
				continue
			}
			if deferred[obj] {
				continue
			}
			if !closedInList(p, list[i+1:], obj) {
				p.Reportf(call.Pos(), "ledger span %s opened here may not be closed on every return path; add `defer %s.End()` or End it before leaving the list", beginName(call), obj.Name())
			}
		}
	})
}

// spanAssign matches `sp := l.Begin(…)` / `sp = l.Begin(…)` and returns
// the span variable's object and the Begin call.
func spanAssign(p *Pass, st ast.Stmt) (types.Object, *ast.CallExpr) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBeginCall(p, call) {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	return obj, call
}

// closedInList scans the statements after a span assignment for the
// matching End, rejecting any path that can leave the function first.
func closedInList(p *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, st := range rest {
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if recv := endCallReceiver(p, call); recv == obj {
					return true
				}
			}
		}
		if ds, ok := st.(*ast.DeferStmt); ok {
			if endCallReceiver(p, ds.Call) == obj {
				return true
			}
		}
		if reassignsObj(p, st, obj) {
			return false // span handle overwritten before End
		}
		if canEscape(st, false, false) {
			return false
		}
	}
	return false
}

func reassignsObj(p *Pass, st ast.Stmt, obj types.Object) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && (p.Info.Uses[id] == obj || p.Info.Defs[id] == obj) {
			return true
		}
	}
	return false
}

// canEscape reports whether executing st can leave the enclosing
// statement list other than by falling through: a return, a goto or
// labeled branch, or an unlabeled break/continue not absorbed by a
// loop/switch contained in st. Function literals are opaque — their
// returns stay inside them.
func canEscape(st ast.Stmt, inLoop, inSwitch bool) bool {
	switch s := st.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.GOTO || s.Label != nil {
			return true
		}
		if s.Tok == token.BREAK {
			return !inLoop && !inSwitch
		}
		if s.Tok == token.CONTINUE {
			return !inLoop
		}
		return false // fallthrough stays within the switch
	case *ast.LabeledStmt:
		return canEscape(s.Stmt, inLoop, inSwitch)
	case *ast.BlockStmt:
		for _, c := range s.List {
			if canEscape(c, inLoop, inSwitch) {
				return true
			}
		}
	case *ast.IfStmt:
		return canEscape(s.Body, inLoop, inSwitch) || canEscape(s.Else, inLoop, inSwitch)
	case *ast.ForStmt:
		return canEscape(s.Body, true, false)
	case *ast.RangeStmt:
		return canEscape(s.Body, true, false)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					if canEscape(b, inLoop, true) {
						return true
					}
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					if canEscape(b, inLoop, true) {
						return true
					}
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, b := range cc.Body {
					if canEscape(b, inLoop, true) {
						return true
					}
				}
			}
		}
	}
	return false
}

// beginName renders a Begin call for messages, preferring the span's
// string-literal name ("Begin(\"step\")").
func beginName(call *ast.CallExpr) string {
	method := "Begin"
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		method = sel.Sel.Name
	}
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			return method + "(" + lit.Value + ")"
		}
	}
	return method
}

// isBeginCall reports whether call is trace.Ledger.Begin or BeginPar.
func isBeginCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || (fn.Name() != "Begin" && fn.Name() != "BeginPar") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeIs(sig.Recv().Type(), "Ledger", "trace")
}

// endCallReceiver returns the object of x when call is `x.End()` on a
// trace.Span, nil otherwise.
func endCallReceiver(p *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !namedTypeIs(sig.Recv().Type(), "Span", "trace") {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.Uses[id]
}

// namedTypeIs reports whether t (possibly a pointer) is the named type
// name from a package whose path's last element is pkgBase.
func namedTypeIs(t types.Type, name, pkgBase string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:] == pkgBase
		}
	}
	return path == pkgBase
}

// inspectOwn visits n's statements without descending into nested
// function literals.
func inspectOwn(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}

// forEachOwnStmtList is forEachStmtList restricted to the current
// function scope (function literals are analyzed separately).
func forEachOwnStmtList(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}
