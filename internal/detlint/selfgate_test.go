package detlint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRepoClean is the self-gate: the full suite over the repository's
// own tree must report nothing. Disabling any analyzer cannot make this
// pass more easily, and a change that introduces a finding (or orphans
// a suppression — ignoreaudit runs too) fails here before CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded; pattern expansion is broken", len(pkgs))
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("%s", f)
	}
}

// TestBaselineEmpty keeps the committed baseline honest: it exists so
// CI has a stable gate file, and it must stay empty — new findings are
// fixed or suppressed with a reason, never parked.
func TestBaselineEmpty(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(loader.ModRoot, "detlint.baseline.json")
	set, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Errorf("committed baseline carries %d fingerprint(s); fix or suppress findings instead of parking them", len(set))
	}
	// and it must stay canonically formatted so diffs are reviewable
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &v); err != nil || v.Version != 1 {
		t.Errorf("baseline version = %d, err = %v; want version 1", v.Version, err)
	}
}

// TestSuiteComposition pins the suite: every analyzer is registered
// exactly once and the v2 checks are present, so a refactor cannot
// silently drop one from All().
func TestSuiteComposition(t *testing.T) {
	want := []string{"maprange", "wallclock", "checkederr", "snapshotfields",
		"ledgerphase", "determtaint", "goroutineshare", "chanorder", "ignoreaudit"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
