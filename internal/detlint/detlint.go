// Package detlint is a from-scratch static-analysis framework (stdlib
// go/parser + go/ast + go/types only, no x/tools) enforcing the
// repository's determinism, accounting and snapshot invariants.
//
// The paper's guarantees are deterministic worst-case bounds, and the
// whole verification story — invariance fixtures, engine equivalence,
// fault-free bit-identity, schedule replay — rests on the simulation
// being bit-identical run to run. detlint machine-checks the coding
// rules that keep it so (DESIGN.md §9):
//
//   - maprange: no nondeterministic map iteration in deterministic
//     packages (sorted keys or a recognized order-insensitive idiom);
//   - wallclock: no wall-clock reads or unseeded randomness in
//     deterministic packages;
//   - checkederr: no silently discarded step errors or lost-packet
//     counts from the fault-aware entry points;
//   - snapshotfields: every Simulator field is either carried by the
//     snapshot (Save and Load) or explicitly annotated why not;
//   - ledgerphase: every ledger span Begin has a matching End on all
//     return paths, so cost trees always close.
//
// Four v2 checks build on a shared call-graph + taint layer (taint.go,
// DESIGN.md §14):
//
//   - determtaint: interprocedural — values derived from map iteration
//     order, wall clocks, or unseeded randomness must not flow, through
//     any chain of package-internal helpers, into wire encodings,
//     canonical keys, or ledger charges;
//   - goroutineshare: goroutine bodies must not write captured shared
//     variables outside the per-shard-arena + index-ordered-merge idiom
//     of the parallel sweep;
//   - chanorder: no multi-case selects, channel ranges, or
//     completion-order result merges in deterministic packages;
//   - ignoreaudit: a //detlint:ignore directive that suppresses nothing
//     is itself a finding, so the suppression inventory cannot rot.
//
// A finding can be suppressed with a trailing (or immediately
// preceding) comment:
//
//	//detlint:ignore <check>[,<check>...] <reason>
//
// The reason is free text; write why the flagged code is safe.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string
	// Packages restricts the analyzer to packages whose import path
	// ends in one of these elements (the repository's deterministic
	// packages). Empty means the analyzer runs everywhere.
	Packages []string
	// Run performs the check. A nil Run marks a synthetic analyzer
	// evaluated by the framework itself (ignoreaudit, which consumes
	// the suppression-usage ledger the real analyzers leave behind).
	Run func(*Pass)
}

func (a *Analyzer) applies(pkg *Package) bool {
	if len(a.Packages) == 0 {
		return true
	}
	base := pkg.Path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	for _, want := range a.Packages {
		if base == want {
			return true
		}
	}
	return false
}

// Pass is one analyzer run over one package.
type Pass struct {
	*Package
	Check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:   p.Fset.Position(pos),
		Check: p.Check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, CheckedErr, SnapshotFields, LedgerPhase,
		DetermTaint, GoroutineShare, ChanOrder, IgnoreAudit}
}

// DetPackages is the one canonical list of packages whose execution
// must be bit-identical run to run: the protocol core and everything
// it charges through, the scenario API, the gossip fault-view layer
// and its wire format, the seeded workload generators, and the
// service's execution/encoding layer (serve's admission and transport
// layers carry explicit wallclock/chanorder suppressions — they never
// feed charged costs or response bodies). Every package-restricted
// analyzer references this list; per-check copies are not allowed.
var DetPackages = []string{
	"core", "route", "culling", "mesh", "hmos", "fault", "trace",
	"sim", "serve", "faultview", "workload",
}

// Run applies the analyzers to the packages, drops suppressed findings,
// and returns the rest sorted by position. Malformed or unknown-check
// ignore directives are themselves reported (check "detlint").
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	// Directives are validated against every registered check, not just
	// the ones selected for this run: a -checks subset must not turn
	// suppressions of the other checks into "unknown check" findings.
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Finding
	for _, pkg := range pkgs {
		ig, bad := collectIgnores(pkg, known)
		all = append(all, bad...)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.Run == nil || !a.applies(pkg) {
				continue
			}
			ran[a.Name] = true
			var fs []Finding
			a.Run(&Pass{Package: pkg, Check: a.Name, findings: &fs})
			for _, f := range fs {
				if !ig.suppressed(f) {
					all = append(all, f)
				}
			}
		}
		for _, a := range analyzers {
			if a.Name == IgnoreAudit.Name && a.applies(pkg) {
				for _, f := range auditIgnores(ig, ran) {
					if !ig.suppressed(f) {
						all = append(all, f)
					}
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return all
}

// ignoreKey locates one suppression directive.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoreEntry is one parsed directive occurrence plus its usage state —
// whether it actually suppressed a finding in this run (ignoreaudit's
// input).
type ignoreEntry struct {
	pos  token.Position
	used bool
}

type ignoreIndex map[ignoreKey]*ignoreEntry

// suppressed reports whether a directive for the finding's check sits
// on the finding's line or the line directly above it, marking the
// matching directive as load-bearing.
func (ig ignoreIndex) suppressed(f Finding) bool {
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if ent := ig[ignoreKey{f.Pos.Filename, line, f.Check}]; ent != nil {
			ent.used = true
			return true
		}
	}
	return false
}

// auditIgnores returns one ignoreaudit finding per directive that
// suppressed nothing, restricted to checks that ran on the package.
func auditIgnores(ig ignoreIndex, ran map[string]bool) []Finding {
	keys := make([]ignoreKey, 0, len(ig))
	for k := range ig {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.check < b.check
	})
	var out []Finding
	for _, k := range keys {
		ent := ig[k]
		if ent.used || k.check == IgnoreAudit.Name || !ran[k.check] {
			continue
		}
		out = append(out, Finding{Pos: ent.pos, Check: IgnoreAudit.Name,
			Msg: fmt.Sprintf("suppression of %s no longer matches any finding; delete the stale directive (or annotate it with ignoreaudit if it must outlive a quiet spell)", k.check)})
	}
	return out
}

var ignoreRe = regexp.MustCompile(`^//\s*detlint:ignore\s+([A-Za-z0-9_,-]+)(\s+\S.*)?$`)

// collectIgnores scans every comment of the package for
// //detlint:ignore directives. Directives naming an unknown check are
// reported as findings so a typo cannot silently disable a rule.
func collectIgnores(pkg *Package, known map[string]bool) (ignoreIndex, []Finding) {
	ig := ignoreIndex{}
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//") {
					continue
				}
				// Only comments that START with the directive count (and
				// must then parse); prose mentioning the syntax is not one.
				if !strings.HasPrefix(strings.TrimSpace(text[2:]), "detlint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Finding{Pos: pos, Check: "detlint",
						Msg: "malformed directive; want //detlint:ignore <check>[,<check>] <reason>"})
					continue
				}
				for _, check := range strings.Split(m[1], ",") {
					if !known[check] {
						bad = append(bad, Finding{Pos: pos, Check: "detlint",
							Msg: fmt.Sprintf("ignore directive names unknown check %q", check)})
						continue
					}
					ig[ignoreKey{pos.Filename, pos.Line, check}] = &ignoreEntry{pos: pos}
				}
			}
		}
	}
	return ig, bad
}

// forEachStmtList visits every statement list of the file (block
// bodies, switch/select clause bodies). Analyzers that need a
// statement's successor (idiom checks) hook in here.
func forEachStmtList(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}
