package detlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	Dir    string
	Path   string // import path (module path + relative dir)
	Module string // module path of the repository under analysis
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader parses and typechecks packages from source. Dependencies —
// both module-internal and standard library — are resolved by the
// stdlib source importer, so the tool needs nothing beyond the go
// toolchain already required to build the repository.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string
	imp     types.ImporterFrom
}

// NewLoader creates a loader rooted at the module containing dir.
// go/build resolves module-aware import paths through the go command
// relative to build.Default.Dir, so the loader pins it to the module
// root; this makes the tool independent of the process working
// directory.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	build.Default.Dir = root
	fset := token.NewFileSet()
	imp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("detlint: source importer does not implement ImporterFrom")
	}
	return &Loader{Fset: fset, ModRoot: root, ModPath: modpath, imp: imp}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("detlint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("detlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and typechecks the non-test files of the package in dir.
// It returns (nil, nil) when the directory holds no non-test Go files.
func (l *Loader) Load(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadAs(dir, path)
}

// LoadAs is Load with an explicit import path (used by fixture tests).
func (l *Loader) LoadAs(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("detlint: typecheck %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Module: l.ModPath, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// ExpandPatterns resolves command-line package patterns to directories.
// A pattern ending in "/..." walks the tree; other patterns name one
// directory. testdata, vendor and hidden directories are skipped.
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(base, rest)
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(base, pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}
