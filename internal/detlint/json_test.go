package detlint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// loadFixture loads one testdata package under a det import path.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadAs(filepath.Join("testdata", "src", name), "fixture/core")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", name)
	}
	return pkg
}

func encodeFixtureReport(t *testing.T, pkg *Package, baseline map[string]bool) ([]byte, Report) {
	t.Helper()
	rep := NewReport(".", Run([]*Package{pkg}, All()), baseline)
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestJSONReportGolden pins the -format json wire format byte for byte,
// fingerprints included: a fingerprint is an identity clients key
// baselines on, so it must never drift silently. Refresh with
// DETLINT_UPDATE_GOLDEN=1 after a deliberate format change.
func TestJSONReportGolden(t *testing.T) {
	pkg := loadFixture(t, "determtaint")
	got, rep := encodeFixtureReport(t, pkg, nil)
	if len(rep.Findings) == 0 {
		t.Fatal("determtaint fixture produced no findings; the golden would pin nothing")
	}

	// two runs over the same tree must be byte-identical
	again, _ := encodeFixtureReport(t, pkg, nil)
	if !bytes.Equal(got, again) {
		t.Fatal("two encodings of the same tree differ")
	}

	golden := filepath.Join("testdata", "golden", "report.json")
	if os.Getenv("DETLINT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with DETLINT_UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from golden (DETLINT_UPDATE_GOLDEN=1 refreshes after a deliberate change)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestBaseline checks the allowlist semantics: a baselined finding is
// still reported (marked) but no longer counts as new.
func TestBaseline(t *testing.T) {
	pkg := loadFixture(t, "determtaint")
	_, rep := encodeFixtureReport(t, pkg, nil)
	if rep.NewCount() != len(rep.Findings) {
		t.Fatalf("no baseline: NewCount %d != %d findings", rep.NewCount(), len(rep.Findings))
	}

	first := rep.Findings[0].Fingerprint
	_, rebased := encodeFixtureReport(t, pkg, map[string]bool{first: true})
	if !rebased.Findings[0].Baselined {
		t.Error("baselined finding not marked")
	}
	if got, want := rebased.NewCount(), len(rep.Findings)-1; got != want {
		t.Errorf("NewCount with one baselined finding = %d, want %d", got, want)
	}
}

// TestFingerprintLineIndependent: unrelated edits shift findings down a
// file; their identity must not churn.
func TestFingerprintLineIndependent(t *testing.T) {
	if Fingerprint("a/b.go", "maprange", "msg", 0) != Fingerprint("a/b.go", "maprange", "msg", 0) {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("a/b.go", "maprange", "msg", 0) == Fingerprint("a/b.go", "maprange", "msg", 1) {
		t.Error("occurrence index not separating repeated findings")
	}
	if Fingerprint("a/b.go", "maprange", "msg", 0) == Fingerprint("a/b.go", "wallclock", "msg", 0) {
		t.Error("check name not part of the identity")
	}
}
