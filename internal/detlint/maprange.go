package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range` over a map in a deterministic package.
// Go randomizes map iteration order, so any map range whose body is
// order-sensitive makes the simulation differ run to run — exactly what
// the bit-identity fixtures forbid. Two idioms are recognized as safe:
//
//  1. collect+sort: the body only appends the key to a slice, and the
//     statement immediately following the loop sorts that slice;
//  2. map copy: every body statement stores into another map at exactly
//     the key, from an expression built only from the key, the value
//     and literals (set/map construction is order-insensitive).
//
// Anything else needs a //detlint:ignore maprange comment stating why
// the body is order-insensitive.
var MapRange = &Analyzer{
	Name:     "maprange",
	Doc:      "map iteration order is randomized; deterministic packages must sort keys or prove order-insensitivity",
	Packages: DetPackages,
	Run:      runMapRange,
}

func runMapRange(p *Pass) {
	for _, file := range p.Files {
		forEachStmtList(file, func(list []ast.Stmt) {
			for i, st := range list {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				if collectAndSort(p, rs, next) || mapCopyBody(p, rs) {
					continue
				}
				p.Reportf(rs.Pos(),
					"range over map %s: iteration order is randomized; collect+sort the keys, or annotate an order-insensitive body",
					types.ExprString(rs.X))
			}
		})
	}
}

// rangeVarObj resolves a range clause variable (defined by := or
// assigned by =) to its object; nil for absent or blank variables.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// collectAndSort recognizes the collect+sort idiom: the loop body is a
// single `s = append(s, …key…)` and the very next statement is a
// sort/slices call over s.
func collectAndSort(p *Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	key := rangeVarObj(p, rs.Key)
	if key == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	dst := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != dst {
		return false
	}
	usesKey := false
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == key {
				usesKey = true
			}
			return true
		})
	}
	return usesKey && isSortCallOn(p, next, dst)
}

// isSortCallOn reports whether st is a call into package sort or slices
// with dst among its arguments.
func isSortCallOn(p *Pass, st ast.Stmt, dst string) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[base].(*types.PkgName)
	if !ok {
		return false
	}
	if path := pn.Imported().Path(); path != "sort" && path != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if types.ExprString(arg) == dst {
			return true
		}
	}
	return false
}

// mapCopyBody recognizes the order-insensitive map-copy idiom: every
// body statement is `dst[key] = expr` where dst is not the ranged map
// and expr is built only from the range variables and literals.
func mapCopyBody(p *Pass, rs *ast.RangeStmt) bool {
	key := rangeVarObj(p, rs.Key)
	if key == nil || len(rs.Body.List) == 0 {
		return false
	}
	val := rangeVarObj(p, rs.Value)
	src := types.ExprString(rs.X)
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		ix, ok := as.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		if id, ok := ix.Index.(*ast.Ident); !ok || p.Info.Uses[id] != key {
			return false
		}
		if types.ExprString(ix.X) == src {
			return false // writing into the map being ranged
		}
		if !simpleRangeExpr(p, as.Rhs[0], key, val) {
			return false
		}
	}
	return true
}

// simpleRangeExpr reports whether e is built only from the range
// variables, constants and literals (so its value cannot depend on how
// far the iteration has progressed).
func simpleRangeExpr(p *Pass, e ast.Expr, key, val types.Object) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == key || obj == val {
			return true
		}
		_, isConst := obj.(*types.Const)
		return isConst || obj == types.Universe.Lookup("nil")
	case *ast.ParenExpr:
		return simpleRangeExpr(p, x.X, key, val)
	case *ast.UnaryExpr:
		return simpleRangeExpr(p, x.X, key, val)
	case *ast.BinaryExpr:
		return simpleRangeExpr(p, x.X, key, val) && simpleRangeExpr(p, x.Y, key, val)
	case *ast.SelectorExpr:
		// v.Field chains rooted at a range variable.
		root := x.X
		for {
			if inner, ok := root.(*ast.SelectorExpr); ok {
				root = inner.X
				continue
			}
			break
		}
		if id, ok := root.(*ast.Ident); ok {
			obj := p.Info.Uses[id]
			return obj == key || obj == val
		}
		return false
	case *ast.CallExpr:
		// Type conversions of allowed operands (int64(k), …).
		if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return simpleRangeExpr(p, x.Args[0], key, val)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if !simpleRangeExpr(p, el, key, val) {
				return false
			}
		}
		return true
	}
	return false
}
