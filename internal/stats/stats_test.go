package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPowerFitExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	exp, coef := PowerFit(xs, ys)
	if math.Abs(exp-1.5) > 1e-9 || math.Abs(coef-3) > 1e-9 {
		t.Fatalf("exp=%f coef=%f", exp, coef)
	}
}

func TestPowerFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 10.0; x < 1e5; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 7*math.Pow(x, 0.5)*(1+0.05*rng.Float64()))
	}
	exp, _ := PowerFit(xs, ys)
	if exp < 0.45 || exp > 0.55 {
		t.Fatalf("noisy exponent %f", exp)
	}
}

func TestPowerFitPanics(t *testing.T) {
	for _, c := range []struct{ xs, ys []float64 }{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{1}},
		{[]float64{1, -2}, []float64{1, 2}},
		{[]float64{1, 2}, []float64{0, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v %v", c.xs, c.ys)
				}
			}()
			PowerFit(c.xs, c.ys)
		}()
	}
}

func TestQuickPowerFitRecovers(t *testing.T) {
	prop := func(e8, c8 uint8) bool {
		exp := 0.25 + float64(e8)/256.0*2 // in [0.25, 2.25)
		coef := 0.5 + float64(c8)/64.0    // in [0.5, 4.5)
		xs := []float64{2, 4, 8, 16, 32, 64}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = coef * math.Pow(x, exp)
		}
		ge, gc := PowerFit(xs, ys)
		return math.Abs(ge-exp) < 1e-6 && math.Abs(gc-coef) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	var tb Table
	tb.Add("n", "steps", "ratio")
	tb.Add(729, 12345, 1.2345678)
	tb.Add(6561, 99999, 0.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "729") || !strings.Contains(out, "1.235") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestTableEmpty(t *testing.T) {
	var tb Table
	var sb strings.Builder
	tb.Render(&sb)
	if sb.Len() != 0 {
		t.Fatal("empty table rendered output")
	}
}

func TestPlot(t *testing.T) {
	var sb strings.Builder
	Plot(&sb, 40, 10,
		Series{Name: "a", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 2, 4, 8}},
		Series{Name: "b", X: []float64{1, 10, 100, 1000}, Y: []float64{8, 4, 2, 1}},
	)
	out := sb.String()
	if !strings.Contains(out, "[o] a") || !strings.Contains(out, "[x] b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "log") {
		t.Fatalf("x axis should be log-scaled:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	Plot(&sb, 10, 5)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty plot not flagged")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive GeoMean did not panic")
		}
	}()
	GeoMean([]float64{1, -1})
}
