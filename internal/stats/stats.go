// Package stats provides the small measurement toolkit the experiment
// harness uses: power-law fits on log-log data (to compare measured
// slowdown exponents against the theorem exponents), aligned table
// rendering, and ASCII series plots for the "figures".
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PowerFit fits y = coef · x^exp by least squares on (log x, log y).
// All inputs must be positive; it panics otherwise or on length
// mismatch or fewer than two points.
func PowerFit(xs, ys []float64) (exp, coef float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: PowerFit needs ≥ 2 aligned points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	exp = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	coef = math.Exp((sy - exp*sx) / n)
	return exp, coef
}

// Table renders rows with aligned columns. The first row is treated as
// the header and underlined.
type Table struct {
	rows [][]string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	if len(t.rows) == 0 {
		return
	}
	width := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(r []string) {
		parts := make([]string, len(r))
		for i, c := range r {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.rows[0])
	total := len(width) - 1
	for _, wd := range width {
		total += wd + 2
	}
	fmt.Fprintln(w, "  "+strings.Repeat("-", total))
	for _, r := range t.rows[1:] {
		line(r)
	}
}

// Series is a named (x, y) sequence for plotting.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders series as a crude ASCII scatter with log-scaled axes
// when the data spans more than a decade. Height and width are in
// character cells.
func Plot(w io.Writer, width, height int, series ...Series) {
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if first {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	logX := minX > 0 && maxX/math.Max(minX, 1e-300) > 10
	logY := minY > 0 && maxY/math.Max(minY, 1e-300) > 10
	tx := func(v float64) float64 {
		if logX {
			return math.Log(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if logY {
			return math.Log(v)
		}
		return v
	}
	x0, x1, y0, y1 := tx(minX), tx(maxX), ty(minY), ty(maxY)
	if x1 == x0 {
		x1 = x0 + 1
	}
	if y1 == y0 {
		y1 = y0 + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			c := int((tx(s.X[i]) - x0) / (x1 - x0) * float64(width-1))
			r := height - 1 - int((ty(s.Y[i])-y0)/(y1-y0)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}
	scale := func(b bool) string {
		if b {
			return "log"
		}
		return "lin"
	}
	fmt.Fprintf(w, "  y: %.4g..%.4g (%s)\n", minY, maxY, scale(logY))
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "  x: %.4g..%.4g (%s)   ", minX, maxX, scale(logX))
	for si, s := range series {
		fmt.Fprintf(w, "[%c] %s  ", marks[si%len(marks)], s.Name)
	}
	fmt.Fprintln(w)
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
