package stats

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"meshpram/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTable(t *testing.T) {
	var tb Table
	tb.Add("n", "side", "T(n)", "T/sqrt(n)", "note")
	tb.Add(81, 9, int64(2399), 266.5555, "seed fixture")
	tb.Add(729, 27, int64(21042), 779.3333, "mid")
	tb.Add(6561, 81, int64(190000), 2345.679, "large")
	var buf bytes.Buffer
	tb.Render(&buf)
	checkGolden(t, "table.golden", buf.Bytes())
}

func TestGoldenPlot(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, 40, 8,
		Series{Name: "T/sqrt(n)", X: []float64{81, 729, 6561}, Y: []float64{26.5, 77.9, 234.5}},
		Series{Name: "diameter", X: []float64{81, 729, 6561}, Y: []float64{18, 54, 162}},
	)
	checkGolden(t, "plot.golden", buf.Bytes())
}

// TestGoldenTrace renders a hand-built ledger tree shaped like a small
// core step (charged leaves, observed route detail, a parallel stage,
// attrs) through the real Ledger machinery, so the golden file pins
// both the formatter and the export schema.
func TestGoldenTrace(t *testing.T) {
	ld := trace.New()
	step := ld.Begin("step", trace.PhaseOther)
	step.AddPackets(324)

	cull := ld.Begin("culling", trace.PhaseCulling)
	cull.Charge(1864)
	cull.SetAttr("pageload-max-1", 12)
	cull.SetAttr("pageload-bound-1", 324)
	cull.End()

	stage := ld.BeginPar("stage-3", trace.PhaseOther)
	stage.SetAttr("stage", 3)
	stage.SetAttr("delta", 9)
	net := ld.Begin("sortsnake", trace.PhaseSort)
	net.Observe(423)
	net.End()
	lf := ld.Begin("sort", trace.PhaseSort)
	lf.Charge(423)
	lf.End()
	lf = ld.Begin("forward", trace.PhaseForward)
	lf.Charge(38)
	lf.End()
	stage.End()

	acc := ld.Begin("access", trace.PhaseAccess)
	acc.Charge(16)
	acc.End()
	step.End()

	var buf bytes.Buffer
	RenderTrace(&buf, trace.Export(ld.Last()))
	checkGolden(t, "trace.golden", buf.Bytes())
}

func TestRenderTraceNil(t *testing.T) {
	var buf bytes.Buffer
	RenderTrace(&buf, nil)
	if buf.String() != "  (no trace)\n" {
		t.Errorf("nil trace rendering = %q", buf.String())
	}
}
