package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"meshpram/internal/trace"
)

// RenderTrace writes a cost-ledger span tree (as exported by
// trace.Export) in the same indented ASCII style as Table: one row per
// span with its phase, charged and observed steps, subtree total and
// packet count, then the span's attributes. Wall-clock time and alloc
// counts are deliberately omitted — the rendering shows the
// deterministic cost model only, so two runs with the same seed
// produce identical output (golden tests rely on this).
func RenderTrace(w io.Writer, root *trace.Node) {
	if root == nil {
		fmt.Fprintln(w, "  (no trace)")
		return
	}
	width := len("span")
	var scan func(n *trace.Node, depth int)
	scan = func(n *trace.Node, depth int) {
		if l := 2*depth + len(spanLabel(n)); l > width {
			width = l
		}
		for _, c := range n.Children {
			scan(c, depth+1)
		}
	}
	scan(root, 0)
	fmt.Fprintf(w, "  %-*s  %-8s %9s %9s %9s %8s\n",
		width, "span", "phase", "charged", "observed", "total", "packets")
	fmt.Fprintf(w, "  %s  %s %s %s %s %s\n",
		strings.Repeat("-", width), strings.Repeat("-", 8),
		strings.Repeat("-", 9), strings.Repeat("-", 9),
		strings.Repeat("-", 9), strings.Repeat("-", 8))
	var emit func(n *trace.Node, depth int)
	emit = func(n *trace.Node, depth int) {
		fmt.Fprintf(w, "  %-*s  %-8s %9d %9d %9d %8d%s\n",
			width, strings.Repeat(". ", depth)+spanLabel(n), n.Phase,
			n.Charged, n.Observed, nodeTotal(n), n.Packets, attrSuffix(n))
		for _, c := range n.Children {
			emit(c, depth+1)
		}
	}
	emit(root, 0)
}

// spanLabel marks parallel spans the way the cost model treats them:
// the charge is the max over the group, not the sum.
func spanLabel(n *trace.Node) string {
	if n.Parallel {
		return n.Name + " (par)"
	}
	return n.Name
}

// nodeTotal mirrors Span.Total on the exported snapshot: charged steps
// of the span plus its whole subtree (observed steps excluded).
func nodeTotal(n *trace.Node) int64 {
	t := n.Charged
	for _, c := range n.Children {
		t += nodeTotal(c)
	}
	return t
}

func attrSuffix(n *trace.Node) string {
	if len(n.Attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%d", k, n.Attrs[k])
	}
	return b.String()
}
