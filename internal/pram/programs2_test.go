package pram

import (
	"math/rand"
	"sort"
	"testing"
)

func TestReduceIdealAndMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := make([]Word, 50)
	var want Word
	for i := range in {
		in[i] = Word(rng.Intn(1000) - 500)
		want += in[i]
	}
	id := NewIdeal(64, nil)
	if _, err := Run(&Reduce{In: in}, id); err != nil {
		t.Fatal(err)
	}
	if id.Mem()[0] != want {
		t.Fatalf("ideal reduce = %d, want %d", id.Mem()[0], want)
	}
	mb := newMesh(t, nil)
	if _, err := Run(&Reduce{In: in}, mb); err != nil {
		t.Fatal(err)
	}
	res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: 0}})
	if res[0] != want {
		t.Fatalf("mesh reduce = %d, want %d", res[0], want)
	}
}

func TestReduceSizes(t *testing.T) {
	// Powers of two and odd sizes, including degenerate n=1.
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		in := make([]Word, n)
		var want Word
		for i := range in {
			in[i] = Word(i*i - 3)
			want += in[i]
		}
		id := NewIdeal(64, nil)
		if _, err := Run(&Reduce{In: in}, id); err != nil {
			t.Fatal(err)
		}
		if id.Mem()[0] != want {
			t.Fatalf("n=%d: reduce = %d, want %d", n, id.Mem()[0], want)
		}
	}
}

func TestOddEvenSortIdealAndMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := make([]Word, 40)
	for i := range in {
		in[i] = Word(rng.Intn(100))
	}
	want := append([]Word(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	id := NewIdeal(64, nil)
	if _, err := Run(&OddEvenSort{In: in}, id); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if id.Mem()[i] != w {
			t.Fatalf("ideal sort[%d] = %d, want %d", i, id.Mem()[i], w)
		}
	}

	mb := newMesh(t, nil)
	if _, err := Run(&OddEvenSort{In: in}, mb); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: i}})
		if res[0] != w {
			t.Fatalf("mesh sort[%d] = %d, want %d", i, res[0], w)
		}
	}
}

func TestOddEvenSortAdversarialInputs(t *testing.T) {
	cases := [][]Word{
		{5, 4, 3, 2, 1},            // reversed
		{1, 1, 1, 1},               // constant
		{2, 1},                     // pair
		{7},                        // singleton
		{3, -1, 3, -1, 0, 0, 9, 2}, // duplicates and negatives
	}
	for ci, in := range cases {
		want := append([]Word(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		id := NewIdeal(32, nil)
		if _, err := Run(&OddEvenSort{In: append([]Word(nil), in...)}, id); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if id.Mem()[i] != w {
				t.Fatalf("case %d: sort[%d] = %d, want %d", ci, i, id.Mem()[i], w)
			}
		}
	}
}

func TestCompactIdealAndMesh(t *testing.T) {
	in := []Word{0, 5, 0, 0, 7, 1, 0, 9, 0, 2}
	wantOut := []Word{5, 7, 1, 9, 2}
	n := len(in)
	prog := func() *Compact {
		return &Compact{In: in, FlagBase: 0, OutBase: n, CountAddr: 2 * n}
	}
	id := NewIdeal(32, nil)
	if _, err := Run(prog(), id); err != nil {
		t.Fatal(err)
	}
	if id.Mem()[2*n] != Word(len(wantOut)) {
		t.Fatalf("ideal count = %d, want %d", id.Mem()[2*n], len(wantOut))
	}
	for i, w := range wantOut {
		if id.Mem()[n+i] != w {
			t.Fatalf("ideal out[%d] = %d, want %d", i, id.Mem()[n+i], w)
		}
	}

	mb := newMesh(t, nil)
	if _, err := Run(prog(), mb); err != nil {
		t.Fatal(err)
	}
	res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: 2 * n}})
	if res[0] != Word(len(wantOut)) {
		t.Fatalf("mesh count = %d", res[0])
	}
	for i, w := range wantOut {
		res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: n + i}})
		if res[0] != w {
			t.Fatalf("mesh out[%d] = %d, want %d", i, res[0], w)
		}
	}
}

func TestCompactEdgeCases(t *testing.T) {
	// All zero: count 0. Trailing nonzero exercises the deferred count
	// write. All nonzero: identity.
	cases := []struct {
		in   []Word
		want []Word
	}{
		{[]Word{0, 0, 0}, nil},
		{[]Word{0, 0, 4}, []Word{4}},
		{[]Word{1, 2, 3}, []Word{1, 2, 3}},
	}
	for ci, c := range cases {
		n := len(c.in)
		id := NewIdeal(32, nil)
		if _, err := Run(&Compact{In: c.in, FlagBase: 0, OutBase: n, CountAddr: 2 * n}, id); err != nil {
			t.Fatal(err)
		}
		if id.Mem()[2*n] != Word(len(c.want)) {
			t.Fatalf("case %d: count = %d, want %d", ci, id.Mem()[2*n], len(c.want))
		}
		for i, w := range c.want {
			if id.Mem()[n+i] != w {
				t.Fatalf("case %d: out[%d] = %d, want %d", ci, i, id.Mem()[n+i], w)
			}
		}
	}
}
