package pram

import (
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/fault"
)

// isolateModule kills every mesh link incident to p, so packets
// addressed to (or staged through) p are lost while the module itself
// stays alive and keeps its data.
func isolateModule(f *fault.Map, side, p int) {
	r, c := p/side, p%side
	if r > 0 {
		f.KillLink(p, p-side)
	}
	if r < side-1 {
		f.KillLink(p, p+side)
	}
	if c > 0 {
		f.KillLink(p, p-1)
	}
	if c < side-1 {
		f.KillLink(p, p+1)
	}
}

// TestRetryRecoversLostPackets drives the checkpointed-retry loop end
// to end: module 9 (a host of variable 0) is link-isolated, so the
// minimal target set loses a packet and the first attempt of each step
// ends unrecoverable. The retry rolls the memory image back and
// re-executes hardened — all copies, extensive quorums — which
// tolerates the isolated copy, so both the write and the read recover.
func TestRetryRecoversLostPackets(t *testing.T) {
	f := fault.NewMap(meshParams.Side)
	isolateModule(f, meshParams.Side, 9)
	mb, err := NewMesh(meshParams, core.Config{Workers: 1, Faults: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb.SetRetryBudget(3)

	if _, err := mb.ExecStep([]Op{{Kind: Write, Addr: 0, Value: 4242}}); err != nil {
		t.Fatal(err)
	}
	if rep := mb.LastReport(); len(rep.Unrecoverable) != 0 {
		t.Fatalf("write did not recover: %v", rep)
	}
	res, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep := mb.LastReport(); len(rep.Unrecoverable) != 0 {
		t.Fatalf("read did not recover: %v", rep)
	}
	if res[0] != 4242 {
		t.Fatalf("recovered read = %d, want 4242", res[0])
	}

	rec := mb.Recovery()
	if rec.Retries == 0 || rec.Recovered != 2 || rec.Exhausted != 0 {
		t.Fatalf("recovery stats = %+v, want both steps recovered via retries", rec)
	}
	if rec.Backoff <= 0 {
		t.Fatalf("retries charged no backoff steps: %+v", rec)
	}
	// A recovered step counts as clean in the run total.
	if tot := mb.TotalReport(); tot != nil && len(tot.Unrecoverable) != 0 {
		t.Fatalf("recovered steps leaked into the total: %v", tot)
	}
}

// TestRetryExhaustsOnUnhealableLoss pins the other outcome: when the
// surviving copies genuinely no longer grant root access (five of
// variable 0's host modules dead, no spare data to rebuild from),
// rollback plus eager repair cannot help, the budget runs out, and the
// step is reported unrecoverable with the attempts accounted.
func TestRetryExhaustsOnUnhealableLoss(t *testing.T) {
	probe := newMesh(t, nil)
	hosts := moduleHostsOf(t, probe, 0)
	f := fault.NewMap(meshParams.Side)
	for _, h := range hosts[:5] {
		f.KillModule(h)
	}
	mb, err := NewMesh(meshParams, core.Config{Workers: 1, Faults: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb.SetRetryBudget(2)

	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}}); err != nil {
		t.Fatal(err)
	}
	if rep := mb.LastReport(); len(rep.Unrecoverable) != 1 || rep.Unrecoverable[0] != 0 {
		t.Fatalf("unhealable read = %v, want unrecoverable [0]", rep)
	}
	rec := mb.Recovery()
	if rec.Retries != 2 || rec.Exhausted != 1 || rec.Recovered != 0 {
		t.Fatalf("recovery stats = %+v, want 2 retries, 1 exhausted", rec)
	}
	// Backoff doubles per attempt: 1 + 2.
	if rec.Backoff != 3 {
		t.Fatalf("backoff = %d steps, want 3", rec.Backoff)
	}
}

// TestRollbackCapStopsLivelock pins the run-wide rollback cap: with an
// unhealable loss every step would burn its full per-step budget
// forever (a livelocked schedule hiding behind backoff). The cap cuts
// the run off after 3 total rollbacks — the first step exhausts its
// budget of 2, the second gets one rollback then hits the cap, the
// third is denied any rollback — and RecoveryStats reports the capped
// steps distinctly from budget-exhausted ones.
func TestRollbackCapStopsLivelock(t *testing.T) {
	probe := newMesh(t, nil)
	hosts := moduleHostsOf(t, probe, 0)
	f := fault.NewMap(meshParams.Side)
	for _, h := range hosts[:5] {
		f.KillModule(h)
	}
	mb, err := NewMesh(meshParams, core.Config{Workers: 1, Faults: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb.SetRetryBudget(2)
	mb.SetRollbackCap(3)

	for i := 0; i < 3; i++ {
		if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}}); err != nil {
			t.Fatal(err)
		}
		if rep := mb.LastReport(); len(rep.Unrecoverable) != 1 {
			t.Fatalf("step %d: report %v, want unrecoverable [0]", i, rep)
		}
	}

	rec := mb.Recovery()
	if rec.Retries != 3 {
		t.Errorf("retries = %d, want the cap of 3", rec.Retries)
	}
	if rec.Exhausted != 1 || rec.Capped != 2 {
		t.Errorf("recovery stats = %+v, want 1 exhausted, 2 capped", rec)
	}
	if rec.Recovered != 0 {
		t.Errorf("recovered = %d on an unhealable loss", rec.Recovered)
	}
	// Backoff stops accumulating once the cap bites: 1+2 from step one,
	// 1 from step two's single attempt, none from step three.
	if rec.Backoff != 4 {
		t.Errorf("backoff = %d steps, want 4", rec.Backoff)
	}

	// Capped steps still run once and report honest degradation.
	if tot := mb.TotalReport(); tot == nil || len(tot.Unrecoverable) != 3 {
		t.Errorf("total report %v, want 3 unrecoverable step entries", tot)
	}

	// The default cap follows the budget; an explicit override sticks
	// until the next SetRetryBudget.
	mb2, err := NewMesh(meshParams, core.Config{Workers: 1, Faults: fault.NewMap(meshParams.Side)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb2.SetRetryBudget(2)
	if mb2.rollbackCap != 2*rollbackCapFactor {
		t.Errorf("default cap = %d, want %d", mb2.rollbackCap, 2*rollbackCapFactor)
	}
	mb2.SetRollbackCap(0)
	if mb2.rollbackCap != 0 {
		t.Error("explicit cap override ignored")
	}
}

// TestRetryBudgetZeroNeverSnapshots is the degenerate case: without a
// budget the wrapper must not checkpoint, retry, or touch the
// recovery counters even when a step fails.
func TestRetryBudgetZeroNeverSnapshots(t *testing.T) {
	probe := newMesh(t, nil)
	hosts := moduleHostsOf(t, probe, 0)
	f := fault.NewMap(meshParams.Side)
	for _, h := range hosts[:5] {
		f.KillModule(h)
	}
	mb, err := NewMesh(meshParams, core.Config{Workers: 1, Faults: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}}); err != nil {
		t.Fatal(err)
	}
	if rep := mb.LastReport(); len(rep.Unrecoverable) != 1 {
		t.Fatalf("expected the plain unrecoverable verdict, got %v", rep)
	}
	if rec := mb.Recovery(); rec != (RecoveryStats{}) {
		t.Fatalf("recovery stats moved without a budget: %+v", rec)
	}
}

// moduleHostsOf lists the distinct modules hosting copies of variable
// v, in leaf order (the pram-layer twin of the core test helper).
func moduleHostsOf(t testing.TB, mb *Mesh, v int) []int {
	t.Helper()
	s := mb.Sim.Scheme()
	seen := map[int]bool{}
	var hosts []int
	for _, c := range s.Copies(v, nil) {
		if !seen[c.Proc] {
			seen[c.Proc] = true
			hosts = append(hosts, c.Proc)
		}
	}
	return hosts
}
