package pram

import (
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
)

func TestMeshBackendIdleStep(t *testing.T) {
	mb := newMesh(t, nil)
	before := mb.Steps()
	res, err := mb.ExecStep(make([]Op, 10)) // all Kind None
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res {
		if v != 0 {
			t.Fatal("idle step produced values")
		}
	}
	if mb.Steps() != before {
		t.Fatal("idle step charged mesh steps")
	}
}

func TestMeshBackendUnknownKind(t *testing.T) {
	mb := newMesh(t, nil)
	if _, err := mb.ExecStep([]Op{{Kind: Kind(99), Addr: 1}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMeshBackendAddressValidation(t *testing.T) {
	mb := newMesh(t, nil)
	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: mb.Vars()}}); err == nil {
		t.Fatal("read out of range accepted")
	}
	if _, err := mb.ExecStep([]Op{{Kind: Write, Addr: -1, Value: 1}}); err == nil {
		t.Fatal("write out of range accepted")
	}
}

func TestMeshBackendMaxWriteCombine(t *testing.T) {
	mb := newMesh(t, MaxWrite)
	mb.ExecStep([]Op{
		{Kind: Write, Addr: 4, Value: 30},
		{Kind: Write, Addr: 4, Value: 90},
		{Kind: Write, Addr: 4, Value: 60},
	})
	res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: 4}})
	if res[0] != 90 {
		t.Fatalf("max combine = %d", res[0])
	}
}

func TestMeshBackendManyDistinctSingleRound(t *testing.T) {
	// Distinct reads and writes without overlap must execute as ONE
	// protocol round: compare against the two-round cost of an
	// overlapping step.
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	mkOps := func(overlap bool) []Op {
		ops := make([]Op, 20)
		for i := 0; i < 10; i++ {
			ops[i] = Op{Kind: Read, Addr: i}
		}
		for i := 10; i < 20; i++ {
			addr := i
			if overlap && i == 10 {
				addr = 0 // collides with a read
			}
			ops[i] = Op{Kind: Write, Addr: addr, Value: Word(i)}
		}
		return ops
	}
	mb1, _ := NewMesh(p, core.Config{}, nil)
	mb1.ExecStep(mkOps(false))
	single := mb1.Steps()
	mb2, _ := NewMesh(p, core.Config{}, nil)
	mb2.ExecStep(mkOps(true))
	double := mb2.Steps()
	if double <= single {
		t.Fatalf("overlapping step (%d) not costlier than disjoint (%d)", double, single)
	}
}

func TestRunStepLimitGuard(t *testing.T) {
	id := NewIdeal(4, nil)
	if _, err := Run(&foreverProgram{}, id); err == nil {
		t.Fatal("runaway program not stopped")
	}
}

type foreverProgram struct{}

func (f *foreverProgram) Procs() int { return 1 }
func (f *foreverProgram) Next(t int, prev []Word) ([]Op, bool) {
	return []Op{{Kind: Read, Addr: 0}}, false
}
