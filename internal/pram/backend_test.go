package pram

import (
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/sim"
)

func TestMeshBackendIdleStep(t *testing.T) {
	mb := newMesh(t, nil)
	before := mb.Steps()
	res, err := mb.ExecStep(make([]Op, 10)) // all Kind None
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res {
		if v != 0 {
			t.Fatal("idle step produced values")
		}
	}
	if mb.Steps() != before {
		t.Fatal("idle step charged mesh steps")
	}
}

func TestMeshBackendUnknownKind(t *testing.T) {
	mb := newMesh(t, nil)
	if _, err := mb.ExecStep([]Op{{Kind: Kind(99), Addr: 1}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMeshBackendAddressValidation(t *testing.T) {
	mb := newMesh(t, nil)
	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: mb.Vars()}}); err == nil {
		t.Fatal("read out of range accepted")
	}
	if _, err := mb.ExecStep([]Op{{Kind: Write, Addr: -1, Value: 1}}); err == nil {
		t.Fatal("write out of range accepted")
	}
}

func TestMeshBackendMaxWriteCombine(t *testing.T) {
	mb := newMesh(t, MaxWrite)
	mb.ExecStep([]Op{
		{Kind: Write, Addr: 4, Value: 30},
		{Kind: Write, Addr: 4, Value: 90},
		{Kind: Write, Addr: 4, Value: 60},
	})
	res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: 4}})
	if res[0] != 90 {
		t.Fatalf("max combine = %d", res[0])
	}
}

func TestMeshBackendManyDistinctSingleRound(t *testing.T) {
	// Distinct reads and writes without overlap must execute as ONE
	// protocol round: compare against the two-round cost of an
	// overlapping step.
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	mkOps := func(overlap bool) []Op {
		ops := make([]Op, 20)
		for i := 0; i < 10; i++ {
			ops[i] = Op{Kind: Read, Addr: i}
		}
		for i := 10; i < 20; i++ {
			addr := i
			if overlap && i == 10 {
				addr = 0 // collides with a read
			}
			ops[i] = Op{Kind: Write, Addr: addr, Value: Word(i)}
		}
		return ops
	}
	mb1, _ := NewMesh(p, core.Config{}, nil)
	mb1.ExecStep(mkOps(false))
	single := mb1.Steps()
	mb2, _ := NewMesh(p, core.Config{}, nil)
	mb2.ExecStep(mkOps(true))
	double := mb2.Steps()
	if double <= single {
		t.Fatalf("overlapping step (%d) not costlier than disjoint (%d)", double, single)
	}
}

func TestNewBackendKinds(t *testing.T) {
	cfg := sim.MustNew(sim.Workers(1))
	ideal, err := NewBackend(BackendIdeal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := cfg.Vars()
	if got := ideal.Vars(); got != v {
		t.Errorf("ideal memory defaulted to %d words, want the scheme's M = %d", got, v)
	}
	if b, err := NewBackend(BackendIdeal, sim.MustNew(sim.IdealMemory(123))); err != nil || b.Vars() != 123 {
		t.Errorf("IdealMemory override: Vars=%d err=%v", b.Vars(), err)
	}
	mb, err := NewBackend(BackendMesh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mb.(*Mesh); !ok {
		t.Fatalf("mesh backend has type %T", mb)
	}
	if _, err := NewBackend(BackendKind("quantum"), cfg); err == nil {
		t.Error("unknown backend kind accepted")
	}
	if _, err := NewBackend(BackendMesh, sim.Config{}); err == nil {
		t.Error("zero-value config accepted (params must not construct)")
	}
}

func TestNewBackendCombine(t *testing.T) {
	// The sim.Config carries the policy as a plain func; NewBackend must
	// hand it through to both backends. Exercised with SumWrite on the
	// mesh — three concurrent writes combine additively.
	for _, kind := range []BackendKind{BackendIdeal, BackendMesh} {
		b, err := NewBackend(kind, sim.MustNew(sim.Workers(1), sim.Combine(SumWrite)))
		if err != nil {
			t.Fatal(err)
		}
		b.ExecStep([]Op{
			{Kind: Write, Addr: 7, Value: 3},
			{Kind: Write, Addr: 7, Value: 11},
			{Kind: Write, Addr: 7, Value: 20},
		})
		res, err := b.ExecStep([]Op{{Kind: Read, Addr: 7}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 34 {
			t.Errorf("%s backend: sum combine = %d, want 34", kind, res[0])
		}
	}
}

func TestMeshBackendDegradationReports(t *testing.T) {
	// Kill every module hosting a copy of variable 0: reads of it are
	// unrecoverable and surface through LastReport (per step, with batch
	// indexes translated back to variable addresses) and TotalReport
	// (run-cumulative).
	cfg := sim.MustNew(sim.Workers(1))
	scheme, _ := cfg.Scheme()
	f := fault.NewMap(cfg.Params.Side)
	for _, c := range scheme.Copies(0, nil) {
		f.KillModule(c.Proc)
	}
	cfg2 := sim.MustNew(sim.Workers(1), sim.Faults(f))
	b, err := NewBackend(BackendMesh, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	mb := b.(*Mesh)
	if mb.LastReport() != nil || mb.TotalReport() != nil {
		t.Fatal("reports must be nil before the first step")
	}
	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}, {Kind: Read, Addr: 1}}); err != nil {
		t.Fatal(err)
	}
	r := mb.LastReport()
	if r == nil || !r.Degraded() {
		t.Fatalf("step against dead modules reported %v", r)
	}
	if len(r.Unrecoverable) != 1 || r.Unrecoverable[0] != 0 {
		t.Fatalf("unrecoverable = %v, want [0] (variable address, not batch index)", r.Unrecoverable)
	}
	if _, err := mb.ExecStep([]Op{{Kind: Read, Addr: 0}}); err != nil {
		t.Fatal(err)
	}
	total := mb.TotalReport()
	if len(total.Unrecoverable) != 2 {
		t.Errorf("cumulative unrecoverable = %v, want two entries", total.Unrecoverable)
	}

	// A healthy mesh stays clean: LastReport non-nil but undegraded
	// whenever a fault map is installed, nil without one.
	clean := newMesh(t, nil)
	clean.ExecStep([]Op{{Kind: Read, Addr: 0}})
	if clean.LastReport() != nil {
		t.Error("faultless mesh produced a degradation report")
	}
}

func TestRunStepLimitGuard(t *testing.T) {
	id := NewIdeal(4, nil)
	if _, err := Run(&foreverProgram{}, id); err == nil {
		t.Fatal("runaway program not stopped")
	}
}

type foreverProgram struct{}

func (f *foreverProgram) Procs() int { return 1 }
func (f *foreverProgram) Next(t int, prev []Word) ([]Op, bool) {
	return []Op{{Kind: Read, Addr: 0}}, false
}
