package pram

import (
	"reflect"
	"testing"

	"meshpram/internal/sim"
)

// TestScenarioProgramsBuildable pins sim.Programs against BuildProgram:
// every name a Scenario may carry constructs, with a sane output range.
func TestScenarioProgramsBuildable(t *testing.T) {
	for _, name := range sim.Programs {
		prog, err := BuildProgram(name, 8, 1)
		if err != nil {
			t.Errorf("BuildProgram(%q): %v", name, err)
			continue
		}
		out, ok := prog.(Outputs)
		if !ok {
			t.Errorf("program %q does not implement Outputs", name)
			continue
		}
		base, n := out.OutputRange()
		if base < 0 || n < 1 {
			t.Errorf("program %q output range (%d, %d) is degenerate", name, base, n)
		}
	}
	if _, err := BuildProgram("quicksort", 8, 1); err == nil {
		t.Error("BuildProgram accepted an unknown program name")
	}
	if _, err := BuildProgram("prefixsum", 0, 1); err == nil {
		t.Error("BuildProgram accepted size 0")
	}
}

// TestBuildProgramSeeded checks the same (name, size, seed) always
// yields the same program, and different seeds differ.
func TestBuildProgramSeeded(t *testing.T) {
	for _, name := range sim.Programs {
		a, err := BuildProgram(name, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildProgram(name, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("program %q not deterministic for equal seeds", name)
		}
	}
}
