package pram

import (
	"math/rand"
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
)

var meshParams = hmos.Params{Side: 9, Q: 3, D: 3, K: 2} // n=81, M=117

func newMesh(t testing.TB, combine CombinePolicy) *Mesh {
	t.Helper()
	mb, err := NewMesh(meshParams, core.Config{}, combine)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

func TestIdealSemantics(t *testing.T) {
	id := NewIdeal(10, nil)
	// Write then read in separate steps.
	if _, err := id.ExecStep([]Op{{Kind: Write, Addr: 3, Value: 7}}); err != nil {
		t.Fatal(err)
	}
	res, err := id.ExecStep([]Op{{Kind: Read, Addr: 3}})
	if err != nil || res[0] != 7 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// Read sees pre-step value when the same step writes.
	res, _ = id.ExecStep([]Op{{Kind: Read, Addr: 3}, {Kind: Write, Addr: 3, Value: 9}})
	if res[0] != 7 {
		t.Fatalf("read saw post-step value: %d", res[0])
	}
	res, _ = id.ExecStep([]Op{{Kind: Read, Addr: 3}})
	if res[0] != 9 {
		t.Fatalf("write lost: %d", res[0])
	}
	if id.Steps() != 4 {
		t.Fatalf("ideal steps = %d", id.Steps())
	}
}

func TestIdealCombinePolicies(t *testing.T) {
	cases := []struct {
		policy CombinePolicy
		want   Word
	}{
		{ArbitraryWrite, 5}, {MaxWrite, 9}, {SumWrite, 21},
	}
	for i, c := range cases {
		id := NewIdeal(4, c.policy)
		id.ExecStep([]Op{
			{Kind: Write, Addr: 0, Value: 5},
			{Kind: Write, Addr: 0, Value: 9},
			{Kind: Write, Addr: 0, Value: 7},
		})
		res, _ := id.ExecStep([]Op{{Kind: Read, Addr: 0}})
		if res[0] != c.want {
			t.Errorf("case %d: got %d want %d", i, res[0], c.want)
		}
	}
}

func TestIdealAddressValidation(t *testing.T) {
	id := NewIdeal(4, nil)
	if _, err := id.ExecStep([]Op{{Kind: Read, Addr: 4}}); err == nil {
		t.Error("read out of range accepted")
	}
	if _, err := id.ExecStep([]Op{{Kind: Write, Addr: -1}}); err == nil {
		t.Error("write out of range accepted")
	}
}

func TestMeshBackendBasic(t *testing.T) {
	mb := newMesh(t, nil)
	if _, err := mb.ExecStep([]Op{{Kind: Write, Addr: 5, Value: 123}}); err != nil {
		t.Fatal(err)
	}
	res, err := mb.ExecStep([]Op{{Kind: Read, Addr: 5}})
	if err != nil || res[0] != 123 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if mb.Steps() <= 0 {
		t.Fatal("mesh backend charged nothing")
	}
}

func TestMeshConcurrentReads(t *testing.T) {
	mb := newMesh(t, nil)
	mb.ExecStep([]Op{{Kind: Write, Addr: 7, Value: 55}})
	ops := make([]Op, 20)
	for i := range ops {
		ops[i] = Op{Kind: Read, Addr: 7}
	}
	res, err := mb.ExecStep(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 55 {
			t.Fatalf("reader %d got %d", i, v)
		}
	}
}

func TestMeshConcurrentWritesCombine(t *testing.T) {
	mb := newMesh(t, SumWrite)
	mb.ExecStep([]Op{
		{Kind: Write, Addr: 2, Value: 10},
		{Kind: Write, Addr: 2, Value: 20},
		{Kind: Write, Addr: 2, Value: 30},
	})
	res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: 2}})
	if res[0] != 60 {
		t.Fatalf("combined write = %d, want 60", res[0])
	}
}

func TestMeshReadWriteOverlapSplits(t *testing.T) {
	mb := newMesh(t, nil)
	mb.ExecStep([]Op{{Kind: Write, Addr: 9, Value: 1}})
	// Same step reads and writes addr 9: read must see the old value.
	res, err := mb.ExecStep([]Op{
		{Kind: Read, Addr: 9},
		{Kind: Write, Addr: 9, Value: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 1 {
		t.Fatalf("overlapping read saw %d, want pre-step 1", res[0])
	}
	res, _ = mb.ExecStep([]Op{{Kind: Read, Addr: 9}})
	if res[0] != 2 {
		t.Fatalf("write lost: %d", res[0])
	}
}

func refPrefix(in []Word) []Word {
	out := make([]Word, len(in))
	var run Word
	for i, v := range in {
		run += v
		out[i] = run
	}
	return out
}

func TestPrefixSumIdealAndMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]Word, 64)
	for i := range in {
		in[i] = Word(rng.Intn(100))
	}
	want := refPrefix(in)

	id := NewIdeal(128, nil)
	if _, err := Run(&PrefixSum{In: in}, id); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if id.Mem()[i] != w {
			t.Fatalf("ideal prefix[%d]=%d want %d", i, id.Mem()[i], w)
		}
	}

	mb := newMesh(t, nil)
	if _, err := Run(&PrefixSum{In: in}, mb); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: i}})
		if res[0] != w {
			t.Fatalf("mesh prefix[%d]=%d want %d", i, res[0], w)
		}
	}
	if mb.Steps() <= id.Steps() {
		t.Fatalf("mesh (%d) not slower than ideal (%d)?", mb.Steps(), id.Steps())
	}
}

func refListRank(next []int) []Word {
	out := make([]Word, len(next))
	for i := range next {
		d, j := 0, i
		for next[j] != j {
			j = next[j]
			d++
		}
		out[i] = Word(d)
	}
	return out
}

func TestListRankIdealAndMesh(t *testing.T) {
	// A random list: permutation chain ending at a self-loop.
	n := 40
	rng := rand.New(rand.NewSource(2))
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i+1 < n; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[n-1]] = order[n-1]
	want := refListRank(next)

	id := NewIdeal(2*n, nil)
	if _, err := Run(&ListRank{Succ: next, NextBase: 0, RankBase: n}, id); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if id.Mem()[n+i] != w {
			t.Fatalf("ideal rank[%d]=%d want %d", i, id.Mem()[n+i], w)
		}
	}

	mb := newMesh(t, nil)
	if _, err := Run(&ListRank{Succ: next, NextBase: 0, RankBase: n}, mb); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: n + i}})
		if res[0] != w {
			t.Fatalf("mesh rank[%d]=%d want %d", i, res[0], w)
		}
	}
}

func TestMatVecIdealAndMesh(t *testing.T) {
	r, c := 8, 8
	rng := rand.New(rand.NewSource(3))
	A := make([][]Word, r)
	for i := range A {
		A[i] = make([]Word, c)
		for j := range A[i] {
			A[i][j] = Word(rng.Intn(10))
		}
	}
	x := make([]Word, c)
	for j := range x {
		x[j] = Word(rng.Intn(10))
	}
	want := make([]Word, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			want[i] += A[i][j] * x[j]
		}
	}
	prog := &MatVec{A: A, X: x, ABase: 0, XBase: r * c, YBase: r*c + c}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	id := NewIdeal(r*c+c+r, nil)
	if _, err := Run(prog, id); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if id.Mem()[r*c+c+i] != w {
			t.Fatalf("ideal y[%d]=%d want %d", i, id.Mem()[r*c+c+i], w)
		}
	}

	mb := newMesh(t, nil)
	prog2 := &MatVec{A: A, X: x, ABase: 0, XBase: r * c, YBase: r*c + c}
	if _, err := Run(prog2, mb); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		res, _ := mb.ExecStep([]Op{{Kind: Read, Addr: r*c + c + i}})
		if res[0] != w {
			t.Fatalf("mesh y[%d]=%d want %d", i, res[0], w)
		}
	}
}

func TestMatVecValidate(t *testing.T) {
	bad := &MatVec{A: [][]Word{{1, 2}, {3}}, X: []Word{1, 1}}
	if bad.Validate() == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestRunOpsLengthMismatch(t *testing.T) {
	id := NewIdeal(4, nil)
	bad := &badProgram{}
	if _, err := Run(bad, id); err == nil {
		t.Fatal("mismatched ops length accepted")
	}
}

type badProgram struct{}

func (b *badProgram) Procs() int { return 3 }
func (b *badProgram) Next(t int, prev []Word) ([]Op, bool) {
	return make([]Op, 1), false
}

func BenchmarkPrefixSumMesh(b *testing.B) {
	in := make([]Word, 64)
	for i := range in {
		in[i] = Word(i)
	}
	for i := 0; i < b.N; i++ {
		mb, _ := NewMesh(meshParams, core.Config{}, nil)
		Run(&PrefixSum{In: in}, mb)
	}
}
