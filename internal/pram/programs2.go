package pram

// Additional classic PRAM programs: tree reduction, odd-even
// transposition sort, and prefix-sum-based stream compaction. Together
// with programs.go they exercise every access shape the simulation
// serves: exclusive reads/writes, concurrent reads, and data-dependent
// (value-driven) addressing.

// Reduce computes the sum of its input with a binary fan-in tree:
// ⌈log₂ n⌉ rounds, result in memory cell Base.
type Reduce struct {
	In   []Word
	Base int

	acc   []Word
	d     int
	phase int
}

// Procs implements Program.
func (p *Reduce) Procs() int { return len(p.In) }

// Next implements Program.
func (p *Reduce) Next(t int, prev []Word) ([]Op, bool) {
	n := len(p.In)
	ops := make([]Op, n)
	switch {
	case p.phase == 0: // write x[i] = in[i]
		p.acc = append([]Word(nil), p.In...)
		p.d = 1
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.acc[i]}
		}
		p.phase = 1
		return ops, false
	case p.d >= n:
		return nil, true
	case p.phase == 1: // processor i (i+d < n, i ≡ 0 mod 2d) reads x[i+d]
		for i := 0; i+p.d < n; i += 2 * p.d {
			ops[i] = Op{Kind: Read, Addr: p.Base + i + p.d}
		}
		p.phase = 2
		return ops, false
	default: // fold and write
		for i := 0; i+p.d < n; i += 2 * p.d {
			p.acc[i] += prev[i]
			ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.acc[i]}
		}
		p.d *= 2
		p.phase = 1
		return ops, false
	}
}

// OddEvenSort sorts its input ascending with the PRAM odd-even
// transposition network: n rounds of compare-exchange between
// neighbors, one processor per element. Sorted result in
// Base..Base+n−1.
type OddEvenSort struct {
	In   []Word
	Base int

	vals  []Word
	round int
	phase int
}

// Procs implements Program.
func (p *OddEvenSort) Procs() int { return len(p.In) }

// Next implements Program.
func (p *OddEvenSort) Next(t int, prev []Word) ([]Op, bool) {
	n := len(p.In)
	ops := make([]Op, n)
	switch p.phase {
	case 0: // write initial values
		p.vals = append([]Word(nil), p.In...)
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.vals[i]}
		}
		p.phase = 1
		return ops, false
	case 1: // left partner of each active pair reads the right value
		if p.round >= n {
			return nil, true
		}
		start := p.round % 2
		for i := start; i+1 < n; i += 2 {
			ops[i] = Op{Kind: Read, Addr: p.Base + i + 1}
		}
		p.phase = 2
		return ops, false
	default: // compare-exchange and write both cells
		start := p.round % 2
		for i := start; i+1 < n; i += 2 {
			right := prev[i]
			if p.vals[i] > right {
				p.vals[i], p.vals[i+1] = right, p.vals[i]
				ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.vals[i]}
				ops[i+1] = Op{Kind: Write, Addr: p.Base + i + 1, Value: p.vals[i+1]}
			} else {
				p.vals[i+1] = right
			}
		}
		p.round++
		p.phase = 1
		return ops, false
	}
}

// Compact moves the nonzero elements of its input, order-preserving, to
// the front of the output segment at OutBase, using a prefix-sum of
// indicator bits to compute data-dependent destinations; the count
// lands at CountAddr. It composes PrefixSum as a sub-program.
type Compact struct {
	In        []Word
	FlagBase  int // scratch: n cells for the indicator prefix sums
	OutBase   int // n output cells
	CountAddr int

	inner      *PrefixSum
	phase      int
	stashCount Word
}

// Procs implements Program.
func (p *Compact) Procs() int { return len(p.In) }

// Next implements Program.
func (p *Compact) Next(t int, prev []Word) ([]Op, bool) {
	n := len(p.In)
	switch p.phase {
	case 0: // run prefix sums over the indicator bits
		flags := make([]Word, n)
		for i, v := range p.In {
			if v != 0 {
				flags[i] = 1
			}
		}
		p.inner = &PrefixSum{In: flags, Base: p.FlagBase}
		p.phase = 1
		fallthrough
	case 1:
		ops, done := p.inner.Next(t, prev)
		if !done {
			return ops, false
		}
		p.phase = 2
		fallthrough
	case 2: // read own inclusive prefix (gives destination + 1)
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Read, Addr: p.FlagBase + i}
		}
		p.phase = 3
		return ops, false
	case 3: // scatter the survivors; processor n−1 also writes the count
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			if p.In[i] != 0 {
				ops[i] = Op{Kind: Write, Addr: p.OutBase + int(prev[i]) - 1, Value: p.In[i]}
			} else if i == n-1 {
				ops[i] = Op{Kind: Write, Addr: p.CountAddr, Value: prev[i]}
			}
		}
		// If the last element is nonzero its processor must write both
		// its value and the count; split over two steps via phase 4.
		if p.In[n-1] != 0 {
			p.phase = 4
			p.stashCount = prev[n-1]
		} else {
			p.phase = 5
		}
		return ops, false
	case 4: // deferred count write
		ops := make([]Op, n)
		ops[n-1] = Op{Kind: Write, Addr: p.CountAddr, Value: p.stashCount}
		p.phase = 5
		return ops, false
	default:
		return nil, true
	}
}
