package pram

// Scenario-driven program construction: one named, seeded builder per
// program in sim.Programs, shared by the pramsim CLI and the pramserve
// service so both spell workloads identically. The input generators are
// explicitly seeded (math/rand.NewSource) — the same (name, size, seed)
// always yields the same program, which is what makes scenario results
// cacheable end to end.

import (
	"fmt"
	"math/rand"
)

// BuildProgram constructs the named PRAM program with a seeded random
// input. The names are exactly sim.Programs (pinned by test). Memory
// layouts start at address 0 and are disjoint per program; OutputRange
// on the returned program locates the result words.
func BuildProgram(name string, size int, seed int64) (Program, error) {
	if size < 1 {
		return nil, fmt.Errorf("pram: program size %d must be ≥ 1", size)
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "prefixsum":
		in := make([]Word, size)
		for i := range in {
			in[i] = Word(rng.Intn(100))
		}
		return &PrefixSum{In: in}, nil
	case "listrank":
		order := rng.Perm(size)
		next := make([]int, size)
		for i := 0; i+1 < size; i++ {
			next[order[i]] = order[i+1]
		}
		next[order[size-1]] = order[size-1]
		return &ListRank{Succ: next, NextBase: 0, RankBase: size}, nil
	case "matvec":
		A := make([][]Word, size)
		for i := range A {
			A[i] = make([]Word, size)
			for j := range A[i] {
				A[i][j] = Word(rng.Intn(10))
			}
		}
		x := make([]Word, size)
		for j := range x {
			x[j] = Word(rng.Intn(10))
		}
		return &MatVec{A: A, X: x, ABase: 0, XBase: size * size, YBase: size*size + size}, nil
	case "reduce":
		in := make([]Word, size)
		for i := range in {
			in[i] = Word(rng.Intn(100))
		}
		return &Reduce{In: in}, nil
	case "oddevensort":
		in := make([]Word, size)
		for i := range in {
			in[i] = Word(rng.Intn(1000))
		}
		return &OddEvenSort{In: in}, nil
	case "compact":
		in := make([]Word, size)
		for i := range in {
			// ~40% zeros so compaction actually moves elements.
			if v := rng.Intn(10); v >= 4 {
				in[i] = Word(v)
			}
		}
		return &Compact{In: in, FlagBase: 0, OutBase: size, CountAddr: 2 * size}, nil
	}
	return nil, fmt.Errorf("pram: unknown program %q", name)
}

// Outputs is implemented by programs that leave their result in a
// known contiguous region of shared memory.
type Outputs interface {
	// OutputRange returns the base address and length of the result.
	OutputRange() (base, n int)
}

// OutputRange implements Outputs: prefix sums land over the input.
func (p *PrefixSum) OutputRange() (int, int) { return p.Base, len(p.In) }

// OutputRange implements Outputs: ranks at RankBase.
func (p *ListRank) OutputRange() (int, int) { return p.RankBase, len(p.Succ) }

// OutputRange implements Outputs: y at YBase, one word per row.
func (p *MatVec) OutputRange() (int, int) { return p.YBase, len(p.A) }

// OutputRange implements Outputs: the sum in cell Base.
func (p *Reduce) OutputRange() (int, int) { return p.Base, 1 }

// OutputRange implements Outputs: the sorted sequence at Base.
func (p *OddEvenSort) OutputRange() (int, int) { return p.Base, len(p.In) }

// OutputRange implements Outputs: the compacted elements at OutBase.
func (p *Compact) OutputRange() (int, int) { return p.OutBase, len(p.In) }

// ReadWords fetches n consecutive shared-memory words starting at base
// by executing one extra read step (one processor per word) on the
// backend. The step is charged like any other — callers that report
// costs should record Steps() before fetching.
func ReadWords(b Backend, base, n int) ([]Word, error) {
	if n <= 0 {
		return nil, nil
	}
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: Read, Addr: base + i}
	}
	res, err := b.ExecStep(ops)
	if err != nil {
		return nil, err
	}
	return res[:n:n], nil
}
