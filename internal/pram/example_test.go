package pram_test

import (
	"fmt"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/pram"
)

// ExampleRun executes the recursive-doubling prefix-sum program on the
// ideal PRAM and reads back the total.
func ExampleRun() {
	id := pram.NewIdeal(16, nil)
	in := []pram.Word{1, 2, 3, 4, 5, 6, 7, 8}
	steps, err := pram.Run(&pram.PrefixSum{In: in}, id)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("PRAM steps:", steps)
	fmt.Println("prefix total:", id.Mem()[7])
	// Output:
	// PRAM steps: 7
	// prefix total: 36
}

// ExampleNewMesh runs the same program through the paper's mesh
// simulation: identical results, mesh-step cost reported.
func ExampleNewMesh() {
	mb, err := pram.NewMesh(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	in := []pram.Word{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := pram.Run(&pram.PrefixSum{In: in}, mb); err != nil {
		fmt.Println(err)
		return
	}
	res, _ := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: 7}})
	fmt.Println("prefix total:", res[0])
	fmt.Println("simulation was charged mesh steps:", mb.Steps() > 0)
	// Output:
	// prefix total: 36
	// simulation was charged mesh steps: true
}
