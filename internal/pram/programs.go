package pram

import "fmt"

// This file provides classic PRAM programs used by the examples and the
// integration tests. Each is a lockstep state machine issuing one
// shared-memory request per processor per step, exactly the access
// pattern the paper's simulation serves.

// PrefixSum computes inclusive prefix sums of its input by recursive
// doubling: after ⌈log₂ n⌉ rounds, memory cell i holds in[0]+…+in[i].
// Layout: x[i] at address Base+i.
type PrefixSum struct {
	In   []Word
	Base int

	acc   []Word
	d     int
	phase int // 0 init-write, then alternating read (1) / write (2)
}

// Procs implements Program.
func (p *PrefixSum) Procs() int { return len(p.In) }

// Next implements Program.
func (p *PrefixSum) Next(t int, prev []Word) ([]Op, bool) {
	n := len(p.In)
	ops := make([]Op, n)
	switch {
	case p.phase == 0:
		p.acc = append([]Word(nil), p.In...)
		p.d = 1
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.acc[i]}
		}
		p.phase = 1
		return ops, false
	case p.d >= n:
		return nil, true
	case p.phase == 1: // read x[i-d]
		for i := p.d; i < n; i++ {
			ops[i] = Op{Kind: Read, Addr: p.Base + i - p.d}
		}
		p.phase = 2
		return ops, false
	default: // phase 2: fold and write x[i]
		for i := p.d; i < n; i++ {
			p.acc[i] += prev[i]
			ops[i] = Op{Kind: Write, Addr: p.Base + i, Value: p.acc[i]}
		}
		p.d *= 2
		p.phase = 1
		return ops, false
	}
}

// ListRank computes, by pointer jumping, the distance of every node of
// a linked list to its terminal (a node with Next[i] == i). Layout:
// next[i] at NextBase+i, rank[i] at RankBase+i. After the program
// completes, rank[i] holds the distance.
type ListRank struct {
	Succ     []int
	NextBase int
	RankBase int

	next  []int
	rank  []Word
	round int
	phase int
}

// Procs implements Program.
func (p *ListRank) Procs() int { return len(p.Succ) }

// Next implements Program.
func (p *ListRank) Next(t int, prev []Word) ([]Op, bool) {
	n := len(p.Succ)
	ops := make([]Op, n)
	switch p.phase {
	case 0: // init local state, write next[]
		p.next = append([]int(nil), p.Succ...)
		p.rank = make([]Word, n)
		for i := 0; i < n; i++ {
			if p.next[i] != i {
				p.rank[i] = 1
			}
			ops[i] = Op{Kind: Write, Addr: p.NextBase + i, Value: Word(p.next[i])}
		}
		p.phase = 1
		return ops, false
	case 1: // write rank[]
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Write, Addr: p.RankBase + i, Value: p.rank[i]}
		}
		p.round = 0
		p.phase = 2
		return ops, false
	case 2: // read rank[next[i]] (concurrent reads combined by backend)
		if 1<<p.round >= n {
			return nil, true
		}
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Read, Addr: p.RankBase + p.next[i]}
		}
		p.phase = 3
		return ops, false
	case 3: // read next[next[i]], fold rank
		for i := 0; i < n; i++ {
			if p.next[i] != i {
				p.rank[i] += prev[i]
			}
			ops[i] = Op{Kind: Read, Addr: p.NextBase + p.next[i]}
		}
		p.phase = 4
		return ops, false
	case 4: // jump pointers, write rank
		for i := 0; i < n; i++ {
			if p.next[i] != i {
				p.next[i] = int(prev[i])
			}
			ops[i] = Op{Kind: Write, Addr: p.RankBase + i, Value: p.rank[i]}
		}
		p.phase = 5
		return ops, false
	default: // write next
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: Write, Addr: p.NextBase + i, Value: Word(p.next[i])}
		}
		p.round++
		p.phase = 2
		return ops, false
	}
}

// MatVec computes y = A·x for a dense R×C matrix with one processor
// per row, reading one matrix entry and one vector entry per column
// iteration (the vector reads are concurrent and combined by the
// backend). Layout: A row-major at ABase, x at XBase, y at YBase.
type MatVec struct {
	A                   [][]Word // R rows × C cols
	X                   []Word   // length C
	ABase, XBase, YBase int

	acc   []Word
	stash []Word
	col   int
	xoff  int
	phase int
}

// Procs implements Program.
func (p *MatVec) Procs() int { return len(p.A) }

// Validate checks layout consistency.
func (p *MatVec) Validate() error {
	for i, row := range p.A {
		if len(row) != len(p.X) {
			return fmt.Errorf("pram: row %d has %d entries, want %d", i, len(row), len(p.X))
		}
	}
	return nil
}

// Next implements Program.
func (p *MatVec) Next(t int, prev []Word) ([]Op, bool) {
	r := len(p.A)
	c := len(p.X)
	ops := make([]Op, r)
	switch p.phase {
	case 0: // write x, r entries per step
		if p.acc == nil {
			p.acc = make([]Word, r)
			p.stash = make([]Word, r)
		}
		if p.xoff < c {
			for i := 0; i < r && p.xoff+i < c; i++ {
				ops[i] = Op{Kind: Write, Addr: p.XBase + p.xoff + i, Value: p.X[p.xoff+i]}
			}
			p.xoff += r
			return ops, false
		}
		p.col = 0
		p.phase = 1
		fallthrough
	case 1: // write A column by column
		if p.col < c {
			for i := 0; i < r; i++ {
				ops[i] = Op{Kind: Write, Addr: p.ABase + i*c + p.col, Value: p.A[i][p.col]}
			}
			p.col++
			return ops, false
		}
		p.col = 0
		p.phase = 2
		fallthrough
	case 2: // read A[i][col], or finish by writing y
		if p.col >= c {
			for i := 0; i < r; i++ {
				ops[i] = Op{Kind: Write, Addr: p.YBase + i, Value: p.acc[i]}
			}
			p.phase = 5
			return ops, false
		}
		for i := 0; i < r; i++ {
			ops[i] = Op{Kind: Read, Addr: p.ABase + i*c + p.col}
		}
		p.phase = 3
		return ops, false
	case 3: // stash A entries, read x[col] concurrently
		copy(p.stash, prev)
		for i := 0; i < r; i++ {
			ops[i] = Op{Kind: Read, Addr: p.XBase + p.col}
		}
		p.phase = 4
		return ops, false
	case 4: // fold a·x and loop
		for i := 0; i < r; i++ {
			p.acc[i] += p.stash[i] * prev[i]
		}
		p.col++
		p.phase = 2
		return p.Next(t, prev)
	default:
		return nil, true
	}
}
