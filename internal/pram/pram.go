// Package pram provides the programming front-end of the simulation: a
// lockstep PRAM programming model with pluggable execution backends —
// an ideal shared memory (the machine being simulated) and the mesh
// simulation of the paper (internal/core). The same Program runs on
// both; comparing their step counts yields the simulation slowdown.
//
// Concurrent access: the paper's protocol serves one *distinct*
// variable per processor per step. The mesh backend therefore combines
// concurrent requests at the source, Ranade-style: concurrent reads of
// a variable are served by one representative request and fanned out,
// concurrent writes are reduced by a combining policy before a single
// winner is routed. A step whose read set and write set overlap is
// split into a read round followed by a write round so that all reads
// observe the pre-step memory (the usual CRCW convention).
package pram

import (
	"bytes"
	"fmt"
	"sort"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/sim"
	"meshpram/internal/trace"
)

// Word is the PRAM machine word.
type Word = int64

// Kind classifies a processor's request in a step.
type Kind uint8

const (
	None  Kind = iota // no shared-memory access this step
	Read              // read Addr
	Write             // write Value to Addr
)

// Op is one processor's request for a PRAM step.
type Op struct {
	Kind  Kind
	Addr  int
	Value Word
}

// Program is a lockstep PRAM program. Next is called once per PRAM
// step with the step index and, aligned by processor id, the results of
// the previous step's reads (zero for non-reads). It returns this
// step's ops (length Procs(); use Kind None for idle processors) and
// whether the program has terminated (when done is true the returned
// ops are not executed).
type Program interface {
	Procs() int
	Next(t int, prev []Word) (ops []Op, done bool)
}

// CombinePolicy reduces concurrent writes to one value.
type CombinePolicy func(vals []Word) Word

// ArbitraryWrite takes the first (lowest-pid) value — the Arbitrary
// CRCW convention.
func ArbitraryWrite(vals []Word) Word { return vals[0] }

// MaxWrite combines by maximum.
func MaxWrite(vals []Word) Word {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// SumWrite combines by addition.
func SumWrite(vals []Word) Word {
	var s Word
	for _, v := range vals {
		s += v
	}
	return s
}

// Backend executes PRAM steps.
type Backend interface {
	// Vars returns the shared-memory size.
	Vars() int
	// ExecStep executes one step of ops (indexed by pid; Kind None
	// entries are idle) and returns the read results aligned by pid.
	ExecStep(ops []Op) ([]Word, error)
	// Steps returns the cumulative cost in backend steps.
	Steps() int64
}

// BackendKind names a PRAM execution backend for NewBackend.
type BackendKind string

const (
	// BackendIdeal is the machine being simulated: unit-cost shared
	// memory.
	BackendIdeal BackendKind = "ideal"
	// BackendMesh is the paper's mesh simulation (internal/core).
	BackendMesh BackendKind = "mesh"
)

// NewBackend constructs a PRAM backend from a sim.Config — the single
// construction path both CLIs use. The ideal backend takes its memory
// size from cfg.IdealMemory (the scheme's M when zero); the mesh
// backend gets the full configuration, including the fault map, and
// the config's trace sinks are wired onto its ledger.
func NewBackend(kind BackendKind, cfg sim.Config) (Backend, error) {
	var combine CombinePolicy
	if cfg.Combine != nil {
		combine = CombinePolicy(cfg.Combine)
	}
	switch kind {
	case BackendIdeal:
		words := cfg.IdealMemory
		if words == 0 {
			v, err := cfg.Vars()
			if err != nil {
				return nil, err
			}
			words = v
		}
		return NewIdeal(words, combine), nil
	case BackendMesh:
		// Build through cfg.NewSimulator so the scheme constructed (or
		// installed via sim.UseScheme) during sim.New is reused and the
		// config's trace sinks are wired exactly once.
		s, err := cfg.NewSimulator()
		if err != nil {
			return nil, err
		}
		if combine == nil {
			combine = ArbitraryWrite
		}
		mb := &Mesh{Sim: s, combine: combine, m: s.Mesh()}
		if cfg.Retry > 0 {
			mb.SetRetryBudget(cfg.Retry)
		}
		return mb, nil
	default:
		return nil, fmt.Errorf("pram: unknown backend kind %q (want %q or %q)",
			kind, BackendIdeal, BackendMesh)
	}
}

// Run executes the program to completion on the backend and returns
// the number of PRAM steps taken.
func Run(p Program, b Backend) (pramSteps int, err error) {
	n := p.Procs()
	prev := make([]Word, n)
	for t := 0; ; t++ {
		ops, done := p.Next(t, prev)
		if done {
			return t, nil
		}
		if len(ops) != n {
			return t, fmt.Errorf("pram: program returned %d ops for %d processors", len(ops), n)
		}
		res, err := b.ExecStep(ops)
		if err != nil {
			return t, err
		}
		copy(prev, res)
		if t > 1<<20 {
			return t, fmt.Errorf("pram: program exceeded the %d-step limit", 1<<20)
		}
	}
}

// --- Ideal backend -----------------------------------------------------

// Ideal is the machine being simulated: a unit-cost shared memory.
type Ideal struct {
	mem     []Word
	steps   int64
	combine CombinePolicy
}

// NewIdeal creates an ideal PRAM with the given memory size.
//
// Deprecated: construct backends through NewBackend(BackendIdeal, cfg)
// with a sim.Config built by sim.New, so every entry point shares one
// validated configuration surface. NewIdeal remains for tests and
// internal use.
func NewIdeal(vars int, combine CombinePolicy) *Ideal {
	if combine == nil {
		combine = ArbitraryWrite
	}
	return &Ideal{mem: make([]Word, vars), combine: combine}
}

// Vars implements Backend.
func (id *Ideal) Vars() int { return len(id.mem) }

// Steps implements Backend: every PRAM step costs one unit.
func (id *Ideal) Steps() int64 { return id.steps }

// ExecStep implements Backend.
func (id *Ideal) ExecStep(ops []Op) ([]Word, error) {
	res := make([]Word, len(ops))
	// Reads see pre-step memory.
	for i, op := range ops {
		if op.Kind == Read {
			if op.Addr < 0 || op.Addr >= len(id.mem) {
				return nil, fmt.Errorf("pram: read address %d out of range", op.Addr)
			}
			res[i] = id.mem[op.Addr]
		}
	}
	writes := map[int][]Word{}
	var addrs []int
	for _, op := range ops {
		if op.Kind == Write {
			if op.Addr < 0 || op.Addr >= len(id.mem) {
				return nil, fmt.Errorf("pram: write address %d out of range", op.Addr)
			}
			if _, ok := writes[op.Addr]; !ok {
				addrs = append(addrs, op.Addr)
			}
			writes[op.Addr] = append(writes[op.Addr], op.Value)
		}
	}
	for _, a := range addrs {
		id.mem[a] = id.combine(writes[a])
	}
	id.steps++
	return res, nil
}

// Mem exposes the ideal memory for verification in tests and examples.
func (id *Ideal) Mem() []Word { return id.mem }

// --- Mesh backend -------------------------------------------------------

// Mesh executes PRAM steps on the paper's mesh simulation.
type Mesh struct {
	Sim     *core.Simulator
	combine CombinePolicy
	m       *mesh.Machine

	lastRep  *fault.StepReport // degradation of the most recent ExecStep
	totalRep *fault.StepReport // accumulated degradation across the run

	retryBudget int // max re-executions per PRAM step (0 = no retry)
	rollbackCap int // max re-executions across the whole run (0 = per-step budget only)
	rec         RecoveryStats
}

// RecoveryStats counts what the checkpointed-retry layer did.
type RecoveryStats struct {
	Retries   int   // step re-executions performed
	Backoff   int64 // mesh steps spent waiting between attempts
	Recovered int   // steps that ended clean only thanks to a retry
	Exhausted int   // steps still degraded after the full per-step budget
	Capped    int   // steps denied (further) retries by the run-wide rollback cap
}

// NewMesh wraps a core simulator as a PRAM backend.
//
// Deprecated: construct backends through NewBackend(BackendMesh, cfg)
// with a sim.Config built by sim.New, so every entry point shares one
// validated configuration surface. NewMesh remains for tests and
// internal use.
func NewMesh(p hmos.Params, cfg core.Config, combine CombinePolicy) (*Mesh, error) {
	sim, err := core.New(p, cfg)
	if err != nil {
		return nil, err
	}
	if combine == nil {
		combine = ArbitraryWrite
	}
	return &Mesh{Sim: sim, combine: combine, m: sim.Mesh()}, nil
}

// Vars implements Backend.
func (mb *Mesh) Vars() int { return mb.Sim.Scheme().Vars() }

// Steps implements Backend: cumulative charged mesh steps.
func (mb *Mesh) Steps() int64 { return mb.m.Steps() }

// SetRetryBudget configures checkpointed step retry: before each PRAM
// step a memory snapshot is taken, and a step that ends with
// unrecoverable variables is rolled back and re-executed up to n times.
// Each attempt is preceded by an unconditional repair pass
// (core.Simulator.RepairNow), an exponential backoff of 2^(attempt−1)
// mesh steps charged to the repair phase (the window in which a real
// system would wait out transient churn), and runs with hardened
// (level-0) target sets that tolerate isolated packet loss on the
// round trip. Only effective on fault-aware simulators.
func (mb *Mesh) SetRetryBudget(n int) {
	if n < 0 {
		n = 0
	}
	mb.retryBudget = n
	mb.rollbackCap = rollbackCapFactor * n
}

// rollbackCapFactor sizes the default run-wide rollback cap as a
// multiple of the per-step budget. The per-step budget alone cannot
// detect a livelocked fault schedule: every step can burn its full
// budget, the exponential backoff keeps charging, and the run grinds on
// forever-degraded while looking merely slow. The run-wide cap bounds
// the total rollback work; steps past it execute once and report their
// degradation honestly (RecoveryStats.Capped).
const rollbackCapFactor = 16

// SetRollbackCap overrides the run-wide rollback cap (total step
// re-executions across all PRAM steps). Zero disables the cap, leaving
// only the per-step budget. SetRetryBudget resets the cap to its
// default (rollbackCapFactor × budget), so call SetRollbackCap after.
func (mb *Mesh) SetRollbackCap(n int) {
	if n < 0 {
		n = 0
	}
	mb.rollbackCap = n
}

// Recovery returns the accumulated checkpointed-retry counters.
func (mb *Mesh) Recovery() RecoveryStats { return mb.rec }

// RepairStats returns the core simulator's self-healing counters.
func (mb *Mesh) RepairStats() core.RepairStats { return mb.Sim.RepairStats() }

// ExecStep implements Backend: one attempt through execStep, wrapped in
// the checkpointed-retry loop when a budget is configured. The
// degradation report of the final attempt (only) is folded into the
// run's total, so a recovered step counts as clean.
func (mb *Mesh) ExecStep(ops []Op) ([]Word, error) {
	defer func() {
		if mb.lastRep != nil {
			if mb.totalRep == nil {
				mb.totalRep = &fault.StepReport{}
			}
			mb.totalRep.Merge(mb.lastRep)
		}
	}()

	var snap *bytes.Buffer
	if mb.retryBudget > 0 && mb.Sim.FaultAware() {
		snap = &bytes.Buffer{}
		if err := mb.Sim.Save(snap); err != nil {
			return nil, fmt.Errorf("pram: checkpoint: %w", err)
		}
	}
	res, err := mb.execStep(ops)
	if err != nil || snap == nil {
		return res, err
	}
	retried, capped := false, false
	for attempt := 1; attempt <= mb.retryBudget && mb.lastRep != nil && len(mb.lastRep.Unrecoverable) > 0; attempt++ {
		if mb.rollbackCap > 0 && mb.rec.Retries >= mb.rollbackCap {
			capped = true
			break
		}
		retried = true
		mb.rec.Retries++
		if err := mb.Sim.Load(bytes.NewReader(snap.Bytes())); err != nil {
			return nil, fmt.Errorf("pram: rollback: %w", err)
		}
		if err := mb.Sim.RepairNow(); err != nil {
			return nil, fmt.Errorf("pram: repair before retry %d: %w", attempt, err)
		}
		backoff := int64(1) << (attempt - 1)
		sp := mb.Sim.Ledger().Begin("retry-backoff", trace.PhaseRepair)
		mb.m.AddSteps(backoff)
		sp.End()
		mb.rec.Backoff += backoff
		mb.Sim.SetHardened(true)
		res, err = mb.execStep(ops)
		mb.Sim.SetHardened(false)
		if err != nil {
			return nil, err
		}
	}
	switch {
	case capped:
		// The run-wide cap cut this step off (possibly before its first
		// rollback) while it was still degraded — distinct from spending
		// the full per-step budget.
		mb.rec.Capped++
	case retried && mb.lastRep != nil && len(mb.lastRep.Unrecoverable) > 0:
		mb.rec.Exhausted++
	case retried:
		mb.rec.Recovered++
	}
	return res, nil
}

// execStep runs one attempt: concurrent requests are combined at the
// origins (charged as one mesh sort + prefix pass when any combining or
// fan-out happens), then executed as one core step — or two, when the
// step both reads and writes the same variable.
func (mb *Mesh) execStep(ops []Op) ([]Word, error) {
	res := make([]Word, len(ops))
	n := mb.m.N
	mb.lastRep = nil

	readers := map[int][]int{} // addr -> pids
	writers := map[int][]int{}
	var readAddrs, writeAddrs []int
	for pid, op := range ops {
		switch op.Kind {
		case None:
		case Read:
			if op.Addr < 0 || op.Addr >= mb.Vars() {
				return nil, fmt.Errorf("pram: read address %d out of range", op.Addr)
			}
			if _, ok := readers[op.Addr]; !ok {
				readAddrs = append(readAddrs, op.Addr)
			}
			readers[op.Addr] = append(readers[op.Addr], pid)
		case Write:
			if op.Addr < 0 || op.Addr >= mb.Vars() {
				return nil, fmt.Errorf("pram: write address %d out of range", op.Addr)
			}
			if _, ok := writers[op.Addr]; !ok {
				writeAddrs = append(writeAddrs, op.Addr)
			}
			writers[op.Addr] = append(writers[op.Addr], pid)
		default:
			return nil, fmt.Errorf("pram: unknown op kind %d", op.Kind)
		}
	}
	if len(readAddrs) == 0 && len(writeAddrs) == 0 {
		return res, nil
	}
	// One ledger tree per PRAM step: the core simulator's "step" spans
	// (one or two protocol rounds) nest under this root together with
	// the source-combining charge.
	ld := mb.Sim.Ledger()
	es := ld.Begin("exec-step", trace.PhaseOther)
	defer es.End()
	sort.Ints(readAddrs)
	sort.Ints(writeAddrs)

	// Charge source combining when any variable has multiple requests
	// or a read/write conflict: one sort + prefix pass over the mesh.
	needCombine := false
	for _, a := range readAddrs {
		if len(readers[a]) > 1 || writers[a] != nil {
			needCombine = true
		}
	}
	for _, a := range writeAddrs {
		if len(writers[a]) > 1 {
			needCombine = true
		}
	}
	if needCombine {
		full := mb.m.Full()
		sp := ld.Begin("source-combine", trace.PhaseSort)
		mb.m.AddSteps(route.SortCost(full, 1) + 3*int64(full.W-1) + int64(full.H-1))
		sp.End()
	}

	if len(readAddrs) > n || len(writeAddrs) > n {
		return nil, fmt.Errorf("pram: %d distinct addresses exceed %d mesh processors",
			max(len(readAddrs), len(writeAddrs)), n)
	}

	// A read and a write to the same variable in one step force a read
	// round before the write round so reads see pre-step memory;
	// otherwise everything goes in a single protocol round.
	overlap := false
	for _, a := range readAddrs {
		if writers[a] != nil {
			overlap = true
			break
		}
	}

	readBatch := make([]core.Op, 0, len(readAddrs))
	for _, a := range readAddrs {
		readBatch = append(readBatch, core.Op{Origin: readers[a][0] % n, Var: a})
	}
	writeBatch := make([]core.Op, 0, len(writeAddrs))
	for _, a := range writeAddrs {
		vals := make([]Word, 0, len(writers[a]))
		for _, pid := range writers[a] {
			vals = append(vals, ops[pid].Value)
		}
		writeBatch = append(writeBatch, core.Op{Origin: writers[a][0] % n, Var: a, IsWrite: true, Value: mb.combine(vals)})
	}

	fanOut := func(vals []Word) {
		for i, a := range readAddrs {
			for _, pid := range readers[a] {
				res[pid] = vals[i]
			}
		}
	}
	if overlap || len(readBatch)+len(writeBatch) > n {
		if len(readBatch) > 0 {
			vals, err := mb.step(readBatch)
			if err != nil {
				return nil, err
			}
			fanOut(vals)
		}
		if len(writeBatch) > 0 {
			if _, err := mb.step(writeBatch); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	merged := append(readBatch, writeBatch...)
	vals, err := mb.step(merged)
	if err != nil {
		return nil, err
	}
	fanOut(vals[:len(readBatch)])
	return res, nil
}

// step runs one core protocol round, propagating validation errors and
// folding the round's degradation report — with unrecoverable ops
// translated from batch indexes to variable addresses — into the PRAM
// step's report.
func (mb *Mesh) step(batch []core.Op) ([]Word, error) {
	vals, _, err := mb.Sim.StepChecked(batch)
	if err != nil {
		return nil, fmt.Errorf("pram: %w", err)
	}
	if r := mb.Sim.LastReport(); r != nil {
		rep := &fault.StepReport{Ops: r.Ops, DeadOrigins: r.DeadOrigins, LostPackets: r.LostPackets}
		for _, i := range r.Unrecoverable {
			rep.Unrecoverable = append(rep.Unrecoverable, batch[i].Var)
		}
		if mb.lastRep == nil {
			mb.lastRep = &fault.StepReport{}
		}
		mb.lastRep.Merge(rep)
	}
	return vals, nil
}

// LastReport returns the degradation report of the most recent
// ExecStep (its protocol rounds merged; Unrecoverable holds variable
// addresses). nil on a fault-free configuration.
func (mb *Mesh) LastReport() *fault.StepReport { return mb.lastRep }

// TotalReport returns the degradation accumulated across every
// ExecStep since construction. nil on a fault-free configuration.
func (mb *Mesh) TotalReport() *fault.StepReport { return mb.totalRep }
