package serve

// Admission control: a token bucket gating scenario computation. This
// is the service-level layer — it reads the wall clock, so it lives
// strictly outside the deterministic boundary (run.go): admission
// decides *whether* a computation starts, never anything about its
// result, and no charged-cost accounting flows through here.

import (
	"math"
	"sync"
	"time"
)

// bucket is a standard token bucket: burst capacity, rate tokens per
// second. A nil bucket (or rate ≤ 0) admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// newBucket returns a full bucket, or nil when rate ≤ 0 (admission
// disabled).
func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		//detlint:ignore wallclock admission timing is service-level; it never feeds charged-cost accounting or response bodies
		last: time.Now(),
	}
}

// take consumes one token. On refusal it returns the duration after
// which one token will be available (the Retry-After hint).
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	//detlint:ignore wallclock admission timing is service-level; it never feeds charged-cost accounting or response bodies
	now := time.Now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
