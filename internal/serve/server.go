package serve

// The HTTP/JSON transport: scenario submission (sync and async),
// result retrieval, health and stats. Endpoints:
//
//	POST /v1/simulate     run a scenario, wait for the body (sync)
//	POST /v1/jobs         enqueue a scenario, return a job id (async)
//	GET  /v1/jobs/{id}    poll an async job
//	GET  /v1/healthz      liveness and drain state
//	GET  /v1/stats        queue, cache, pool and per-scenario totals
//
// A submission flows: decode → Normalized/Validate (400) → cache
// (hit: bytes served verbatim) → in-flight coalescing (identical
// concurrent submissions share one computation) → token-bucket
// admission and bounded queue (429 + Retry-After) → worker pool.
// Overload never degrades results, only availability — a computed
// body is byte-identical no matter how it was scheduled.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"meshpram/internal/sim"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the pool width (default 2): persistent goroutines,
	// each with its own warm scheme cache.
	Workers int
	// QueueDepth bounds the job queue (default 64). A full queue
	// rejects with 429 + Retry-After.
	QueueDepth int
	// Rate is the token-bucket refill in submissions/second; ≤ 0
	// disables admission control. Burst is the bucket capacity
	// (default: max(Workers, 1)).
	Rate  float64
	Burst int
	// CacheEntries bounds the result cache (default 1024; negative
	// disables caching). CacheBytes optionally bounds the cached body
	// bytes (0 = unbounded).
	CacheEntries int
	CacheBytes   int64
	// RequestTimeout caps how long a sync request waits for its result
	// (default 60s). The computation continues; the body remains
	// retrievable via the async job endpoint and the cache.
	RequestTimeout time.Duration
	// MaxJobs bounds retained async job records (default 1024).
	MaxJobs int
	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Burst <= 0 {
		c.Burst = c.Workers
	}
	switch {
	case c.CacheEntries < 0:
		c.CacheEntries = 0 // disabled
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// scenarioTotals accumulates per-scenario counters for /v1/stats.
type scenarioTotals struct {
	runs      int64
	cacheHits int64
	meshSteps int64 // charged mesh steps summed over computed runs
}

// Server is the simulation service. Construct with New, mount
// Handler, and Drain on shutdown.
type Server struct {
	cfg   Config
	pool  *pool
	cache *lruCache
	adm   *bucket
	mux   *http.ServeMux

	draining atomic.Bool
	jobSeq   atomic.Int64

	mu        sync.Mutex
	inflight  map[string]*job // cache key → running computation
	jobs      map[string]*job // job id → record (bounded by MaxJobs)
	jobAge    *list.List      // job ids, oldest at back
	evicted   map[string]bool // ids evicted by retention (bounded FIFO)
	evictFIFO []string        // eviction order of evicted ids
	scen      map[string]*scenarioTotals
	admitted  int64
	rejected  int64
	done      int64
	failed    int64
}

// New builds and starts a Server (its worker pool runs immediately).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newCache(cfg.CacheEntries, cfg.CacheBytes),
		adm:      newBucket(cfg.Rate, cfg.Burst),
		inflight: make(map[string]*job),
		jobs:     make(map[string]*job),
		jobAge:   list.New(),
		evicted:  make(map[string]bool),
		scen:     make(map[string]*scenarioTotals),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.jobDone)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler of the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting work, runs every already-queued job to
// completion, and returns when the pool is idle — the SIGTERM path.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pool.drain()
}

// jobDone is the pool's completion callback: fill the cache, account
// the scenario, release the in-flight slot.
func (s *Server) jobDone(j *job) {
	_, body, err := j.state()
	if err == nil {
		s.cache.put(j.key, body)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if err != nil {
		s.failed++
		return
	}
	s.done++
	s.totalsFor(j.key).runs++
	s.totalsFor(j.key).meshSteps += j.meshSteps
}

// totalsFor returns (creating on demand) the per-scenario counters.
// Callers hold s.mu.
func (s *Server) totalsFor(key string) *scenarioTotals {
	t, ok := s.scen[key]
	if !ok {
		t = &scenarioTotals{}
		s.scen[key] = t
	}
	return t
}

// submitError is an admission/validation refusal with an HTTP shape.
type submitError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 = no header
}

func (e *submitError) Error() string { return e.msg }

// submit runs the full admission pipeline and returns either a job
// (possibly already completed, on cache hit or coalesced join) or a
// submitError.
func (s *Server) submit(sc sim.Scenario) (*job, *submitError) {
	if s.draining.Load() {
		return nil, &submitError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	key := sc.Key()
	if body, ok := s.cache.get(key); ok {
		id := s.nextJobID()
		j := completedJob(id, sc, body)
		s.mu.Lock()
		s.totalsFor(key).cacheHits++
		s.rememberJob(j)
		s.mu.Unlock()
		return j, nil
	}
	s.mu.Lock()
	if j, ok := s.inflight[key]; ok {
		// Identical submission already computing: join it. No token
		// consumed — coalesced work is free by determinism.
		s.mu.Unlock()
		return j, nil
	}
	ok, wait := s.adm.take()
	if !ok {
		s.rejected++
		s.mu.Unlock()
		return nil, &submitError{
			status:     http.StatusTooManyRequests,
			msg:        "admission rate exceeded",
			retryAfter: retryAfterSeconds(wait),
		}
	}
	j := newJob(s.nextJobID(), sc)
	s.inflight[key] = j
	s.rememberJob(j)
	s.admitted++
	s.mu.Unlock()

	if !s.pool.trySubmit(j) {
		s.mu.Lock()
		if s.inflight[key] == j {
			delete(s.inflight, key)
		}
		s.forgetJob(j.id)
		s.admitted--
		s.rejected++
		s.mu.Unlock()
		return nil, &submitError{
			status:     http.StatusTooManyRequests,
			msg:        "job queue is full",
			retryAfter: 1,
		}
	}
	return j, nil
}

func (s *Server) nextJobID() string {
	return fmt.Sprintf("j-%d", s.jobSeq.Add(1))
}

// evictedMemory sizes the evicted-id memory in multiples of MaxJobs:
// the ids of the last evictedMemory×MaxJobs evictions are retained so
// GET of an evicted job can explain itself instead of claiming the id
// never existed. Purely count-based — eviction never consults a clock,
// so a replayed request sequence always evicts the same ids.
const evictedMemory = 4

// rememberJob records j for async retrieval, evicting the oldest
// completed records beyond the MaxJobs retention threshold. Records
// still live (queued or running) are skipped, never dropped — the map
// can transiently exceed MaxJobs only by the number of live jobs,
// which the queue already bounds. Callers hold s.mu.
func (s *Server) rememberJob(j *job) {
	s.jobs[j.id] = j
	s.jobAge.PushFront(j.id)
	el := s.jobAge.Back()
	for len(s.jobs) > s.cfg.MaxJobs && el != nil {
		prev := el.Prev()
		id := el.Value.(string)
		if old, ok := s.jobs[id]; ok {
			if st := old.currentStatus(); st == statusDone || st == statusFailed {
				delete(s.jobs, id)
				s.jobAge.Remove(el)
				s.rememberEvicted(id)
			}
		} else {
			s.jobAge.Remove(el) // stale entry of a forgotten job
		}
		el = prev
	}
}

// rememberEvicted records an evicted job id, keeping the memory itself
// bounded by dropping the oldest recorded evictions first. Callers
// hold s.mu.
func (s *Server) rememberEvicted(id string) {
	if s.evicted[id] {
		return
	}
	s.evicted[id] = true
	s.evictFIFO = append(s.evictFIFO, id)
	if len(s.evictFIFO) > evictedMemory*s.cfg.MaxJobs {
		drop := s.evictFIFO[0]
		s.evictFIFO = s.evictFIFO[1:]
		delete(s.evicted, drop)
	}
}

// forgetJob removes a job record (failed enqueue). Callers hold s.mu.
func (s *Server) forgetJob(id string) {
	delete(s.jobs, id)
	for el := s.jobAge.Front(); el != nil; el = el.Next() {
		if el.Value.(string) == id {
			s.jobAge.Remove(el)
			break
		}
	}
}

// --- HTTP handlers ------------------------------------------------------

func (s *Server) decodeScenario(w http.ResponseWriter, r *http.Request) (sim.Scenario, bool) {
	defer r.Body.Close() // close error is unactionable here; net/http drains the body
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	var sc sim.Scenario
	if err := dec.Decode(&sc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode scenario: %v", err))
		return sim.Scenario{}, false
	}
	sc = sc.Normalized()
	if err := sc.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return sim.Scenario{}, false
	}
	return sc, true
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.decodeScenario(w, r)
	if !ok {
		return
	}
	j, serr := s.submit(sc)
	if serr != nil {
		writeSubmitError(w, serr)
		return
	}
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	//detlint:ignore chanorder transport-level wait: the job result is deterministic either way; the race only picks sync reply vs 504-with-poll-URL
	select {
	case <-j.done:
	case <-timer.C:
		w.Header().Set("X-Job-Id", j.id)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("computation still running; poll /v1/jobs/%s", j.id))
		return
	case <-r.Context().Done():
		return
	}
	st, body, err := j.state()
	if st == statusFailed {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Scenario-Key", j.key)
	if j.fromCache {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body) // client write failure is the client's problem; nothing to roll back
}

// jobView is the async job representation.
type jobView struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Status string          `json:"status"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func viewOf(j *job) jobView {
	st, body, err := j.state()
	v := jobView{ID: j.id, Key: j.key, Status: string(st), Cached: j.fromCache}
	if st == statusDone {
		v.Result = json.RawMessage(body)
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.decodeScenario(w, r)
	if !ok {
		return
	}
	j, serr := s.submit(sc)
	if serr != nil {
		writeSubmitError(w, serr)
		return
	}
	writeJSON(w, http.StatusAccepted, jobView{
		ID: j.id, Key: j.key, Status: string(j.currentStatus()), Cached: j.fromCache,
	})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	wasEvicted := !ok && s.evicted[id]
	s.mu.Unlock()
	switch {
	case ok:
		writeJSON(w, http.StatusOK, viewOf(j))
	case wasEvicted:
		writeError(w, http.StatusNotFound, fmt.Sprintf(
			"job %q was evicted after completion (retention keeps the last %d jobs); re-POST the scenario — the deterministic result is served from cache", id, s.cfg.MaxJobs))
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}{status, s.cfg.Workers})
}

// ScenarioStat is one per-scenario row of /v1/stats.
type ScenarioStat struct {
	Key       string `json:"key"`
	Runs      int64  `json:"runs"`
	CacheHits int64  `json:"cache_hits"`
	MeshSteps int64  `json:"mesh_steps"` // charged cycles summed over computed runs
}

// Stats is the /v1/stats document.
type Stats struct {
	Workers    int  `json:"workers"`
	Busy       int  `json:"busy"`
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Draining   bool `json:"draining,omitempty"`

	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	JobsDone   int64 `json:"jobs_done"`
	JobsFailed int64 `json:"jobs_failed"`

	Cache cacheStats `json:"cache"`

	Scenarios []ScenarioStat `json:"scenarios"`
}

// StatsSnapshot assembles the current service counters (also used by
// tests, bypassing HTTP).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Workers:    s.cfg.Workers,
		Busy:       s.pool.busyCount(),
		QueueDepth: s.pool.depth(),
		QueueCap:   s.pool.capacity(),
		Draining:   s.draining.Load(),
		Cache:      s.cache.snapshot(),
	}
	s.mu.Lock()
	st.Admitted, st.Rejected = s.admitted, s.rejected
	st.JobsDone, st.JobsFailed = s.done, s.failed
	keys := make([]string, 0, len(s.scen))
	for k := range s.scen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := s.scen[k]
		st.Scenarios = append(st.Scenarios, ScenarioStat{
			Key: k, Runs: t.runs, CacheHits: t.cacheHits, MeshSteps: t.meshSteps,
		})
	}
	s.mu.Unlock()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// --- response helpers ---------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // client write failure is the client's problem; nothing to roll back
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}

func writeSubmitError(w http.ResponseWriter, e *submitError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeError(w, e.status, e.msg)
}
