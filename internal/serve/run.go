// Package serve turns the deterministic simulation into a long-lived
// service: a warm pool of workers executes sim.Scenario submissions
// behind token-bucket admission control and a bounded queue, and a
// size-bounded LRU caches the encoded result bodies keyed by the
// scenario's canonical encoding. Because the simulation is fully
// deterministic — identical (scenario, seed) always yields identical
// delivered words, cycle counts, verdicts and ledger spans — a cache
// hit returns bytes identical to recomputation, which is what makes
// the service scale: the expensive path runs once per distinct
// scenario, no matter how many clients ask.
//
// Determinism boundary: everything in this file — scenario execution
// and result encoding — is deterministic and wall-clock free (detlint
// gates the package). Wall-clock time exists only in the admission
// and transport layers (admission.go, server.go), which never feed
// charged-cost accounting or response bodies.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/pram"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
)

// Result is the service's response to one scenario: everything the
// pramsim CLI reports, as one flat JSON document. All fields are value
// types or slices — no maps — so encoding/json output is
// byte-deterministic for a given Result.
type Result struct {
	// Key is the scenario's canonical cache key (sim.Scenario.Key).
	Key string `json:"key"`
	// Scenario echoes the normalized scenario that was executed.
	Scenario sim.Scenario `json:"scenario"`

	Ideal *IdealResult `json:"ideal,omitempty"`
	Mesh  *MeshResult  `json:"mesh,omitempty"`

	// Slowdown is mesh steps per PRAM step (backend "both" only).
	Slowdown float64 `json:"slowdown,omitempty"`
}

// IdealResult reports the run on the unit-cost shared-memory machine.
type IdealResult struct {
	PRAMSteps int `json:"pram_steps"`
	// Cost is the backend step count at program completion (the output
	// fetch is excluded).
	Cost  int64       `json:"cost"`
	Words []pram.Word `json:"words"`
}

// SchemeInfo describes the constructed HMOS instance.
type SchemeInfo struct {
	N          int     `json:"n"`          // processors (side²)
	Vars       int     `json:"vars"`       // shared variables M
	Alpha      float64 `json:"alpha"`      // M / n
	Redundancy int     `json:"redundancy"` // q^k copies per variable
}

// PhaseTotals is the charged-cycle breakdown accumulated over every
// root span of the run's cost ledger (the program's PRAM steps; the
// output fetch is excluded).
type PhaseTotals struct {
	Other   int64 `json:"other"`
	Culling int64 `json:"culling"`
	Sort    int64 `json:"sort"`
	Rank    int64 `json:"rank"`
	Forward int64 `json:"forward"`
	Access  int64 `json:"access"`
	Return  int64 `json:"return"`
	Repair  int64 `json:"repair"`
}

// Verdict classifies how the run ended.
type Verdict string

const (
	// VerdictOK: no degradation was observed.
	VerdictOK Verdict = "ok"
	// VerdictDegraded: packets or origins were lost but every access
	// still reached a majority — results are trustworthy.
	VerdictDegraded Verdict = "degraded"
	// VerdictUnrecoverable: at least one variable lost its majority;
	// results for those variables cannot be trusted.
	VerdictUnrecoverable Verdict = "unrecoverable"
)

// Degradation is the accumulated fault.StepReport of the run.
type Degradation struct {
	Ops           int   `json:"ops"`
	DeadOrigins   int   `json:"dead_origins"`
	LostPackets   int   `json:"lost_packets"`
	Unrecoverable []int `json:"unrecoverable,omitempty"`
}

// RepairReport mirrors core.RepairStats.
type RepairReport struct {
	ModuleDeaths int   `json:"module_deaths"`
	Scrubs       int   `json:"scrubs"`
	Repaired     int   `json:"repaired"`
	Residual     int   `json:"residual"`
	Remapped     int   `json:"remapped"`
	Lost         int   `json:"lost"`
	Steps        int64 `json:"steps"`
	// Local fault view only (fault_view=local): deaths whose gossip
	// notice reached the scrub coordinator, and the summed steps from
	// each death to its discovery. Zero under the omniscient default.
	Discovered     int   `json:"discovered,omitempty"`
	DiscoverySteps int64 `json:"discovery_steps,omitempty"`
}

// RecoveryReport mirrors pram.RecoveryStats.
type RecoveryReport struct {
	Retries   int   `json:"retries"`
	Backoff   int64 `json:"backoff"`
	Recovered int   `json:"recovered"`
	Exhausted int   `json:"exhausted"`
	Capped    int   `json:"capped"` // steps cut off by the run-wide rollback cap
}

// MeshResult reports the run on the paper's mesh simulation.
type MeshResult struct {
	PRAMSteps int   `json:"pram_steps"`
	MeshSteps int64 `json:"mesh_steps"` // charged steps at program completion

	Scheme SchemeInfo  `json:"scheme"`
	Phases PhaseTotals `json:"phases"`

	Verdict     Verdict         `json:"verdict"`
	Degradation *Degradation    `json:"degradation,omitempty"`
	Repair      *RepairReport   `json:"repair,omitempty"`
	Recovery    *RecoveryReport `json:"recovery,omitempty"`

	Words []pram.Word `json:"words"`

	// Trace is the rendered cost-ledger tree of the last PRAM step
	// (scenario.trace only). The rendering is wall-clock free, so it is
	// byte-deterministic like everything else here.
	Trace string `json:"trace,omitempty"`
}

// phaseSink accumulates per-phase charged totals from every completed
// root span of a ledger. One sink per run, owned by one worker — no
// locking needed.
type phaseSink struct {
	totals [trace.NumPhases]int64
}

// Emit implements trace.Sink.
func (s *phaseSink) Emit(root *trace.Span) {
	t := root.PhaseTotals()
	for i, v := range t {
		s.totals[i] += v
	}
}

func (s *phaseSink) view() PhaseTotals {
	return PhaseTotals{
		Other:   s.totals[trace.PhaseOther],
		Culling: s.totals[trace.PhaseCulling],
		Sort:    s.totals[trace.PhaseSort],
		Rank:    s.totals[trace.PhaseRank],
		Forward: s.totals[trace.PhaseForward],
		Access:  s.totals[trace.PhaseAccess],
		Return:  s.totals[trace.PhaseReturn],
		Repair:  s.totals[trace.PhaseRepair],
	}
}

// schemeEntry is one warm HMOS scheme in a Runner's cache.
type schemeEntry struct {
	params hmos.Params
	scheme *hmos.Scheme
}

// maxWarmSchemes bounds a Runner's scheme cache (move-to-front slice,
// not a map, so eviction order is deterministic and detlint-clean).
const maxWarmSchemes = 8

// Runner executes scenarios for one worker goroutine, keeping the
// constructed HMOS schemes warm across runs: schemes are immutable and
// expensive (GF tables, BIBD graphs, tessellations), while the mesh
// machine, engines and memory state are rebuilt per run so no state
// leaks between scenarios — a warm rerun is bit-identical to a cold
// one by construction.
type Runner struct {
	schemes []schemeEntry
}

// NewRunner returns an empty (cold) runner.
func NewRunner() *Runner { return &Runner{} }

// scheme returns the warm scheme for p, constructing and caching it on
// miss (move-to-front, bounded).
func (r *Runner) scheme(p hmos.Params) (*hmos.Scheme, error) {
	for i, e := range r.schemes {
		if e.params == p {
			copy(r.schemes[1:i+1], r.schemes[:i])
			r.schemes[0] = e
			return e.scheme, nil
		}
	}
	s, err := hmos.New(p)
	if err != nil {
		return nil, err
	}
	if len(r.schemes) >= maxWarmSchemes {
		r.schemes = r.schemes[:maxWarmSchemes-1]
	}
	r.schemes = append([]schemeEntry{{params: p, scheme: s}}, r.schemes...)
	return s, nil
}

// Run executes one scenario to completion and returns its Result.
// Errors are deterministic properties of the scenario (validation,
// construction, program/machine mismatch), never of server state.
func (r *Runner) Run(scenario sim.Scenario) (*Result, error) {
	sc := scenario.Normalized()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Key: sc.Key(), Scenario: sc}

	if sc.Backend == sim.BackendBoth || sc.Backend == sim.BackendIdeal {
		ideal, err := r.runIdeal(sc)
		if err != nil {
			return nil, err
		}
		res.Ideal = ideal
	}
	if sc.Backend == sim.BackendBoth || sc.Backend == sim.BackendMesh {
		mesh, err := r.runMesh(sc)
		if err != nil {
			return nil, err
		}
		res.Mesh = mesh
	}
	if res.Ideal != nil && res.Mesh != nil && res.Mesh.PRAMSteps > 0 {
		res.Slowdown = float64(res.Mesh.MeshSteps) / float64(res.Mesh.PRAMSteps)
	}
	return res, nil
}

// RunBody executes the scenario and returns the encoded response body
// — the exact bytes the server caches and every transport returns.
func (r *Runner) RunBody(scenario sim.Scenario) ([]byte, error) {
	res, err := r.Run(scenario)
	if err != nil {
		return nil, err
	}
	return EncodeResult(res)
}

// EncodeResult renders a Result as the service's canonical response
// body: indented JSON plus a trailing newline. The encoding is
// byte-deterministic (flat structs, no maps), pinned by the
// cache-identity test.
func EncodeResult(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return nil, fmt.Errorf("serve: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

func (r *Runner) runIdeal(sc sim.Scenario) (*IdealResult, error) {
	cfg, err := sim.FromScenario(sc)
	if err != nil {
		return nil, err
	}
	b, err := pram.NewBackend(pram.BackendIdeal, cfg)
	if err != nil {
		return nil, err
	}
	prog, err := pram.BuildProgram(sc.Program, sc.Size, sc.Seed)
	if err != nil {
		return nil, err
	}
	steps, err := pram.Run(prog, b)
	if err != nil {
		return nil, fmt.Errorf("serve: ideal run: %w", err)
	}
	out := &IdealResult{PRAMSteps: steps, Cost: b.Steps()}
	out.Words, err = fetchOutputs(b, prog)
	if err != nil {
		return nil, fmt.Errorf("serve: ideal output fetch: %w", err)
	}
	return out, nil
}

func (r *Runner) runMesh(sc sim.Scenario) (*MeshResult, error) {
	scheme, err := r.scheme(sc.Params())
	if err != nil {
		return nil, err
	}
	var phases phaseSink
	cfg, err := sim.FromScenario(sc, sim.UseScheme(scheme), sim.TraceSink(&phases))
	if err != nil {
		return nil, err
	}
	b, err := pram.NewBackend(pram.BackendMesh, cfg)
	if err != nil {
		return nil, err
	}
	mb := b.(*pram.Mesh)
	prog, err := pram.BuildProgram(sc.Program, sc.Size, sc.Seed)
	if err != nil {
		return nil, err
	}
	steps, err := pram.Run(prog, mb)
	if err != nil {
		return nil, fmt.Errorf("serve: mesh run: %w", err)
	}

	// Snapshot every observable before the output fetch: the fetch is
	// one more charged step and must not leak into the reported costs,
	// verdicts or the rendered trace.
	s := mb.Sim.Scheme()
	out := &MeshResult{
		PRAMSteps: steps,
		MeshSteps: mb.Steps(),
		Scheme: SchemeInfo{
			N:          s.N,
			Vars:       s.Vars(),
			Alpha:      s.Alpha(),
			Redundancy: s.CopiesPerVar(),
		},
		Phases:  phases.view(),
		Verdict: verdictOf(mb.TotalReport()),
	}
	if rep := mb.TotalReport(); rep != nil {
		unrec := append([]int(nil), rep.Unrecoverable...)
		out.Degradation = &Degradation{
			Ops:           rep.Ops,
			DeadOrigins:   rep.DeadOrigins,
			LostPackets:   rep.LostPackets,
			Unrecoverable: unrec,
		}
	}
	if rs := mb.RepairStats(); rs != (core.RepairStats{}) {
		out.Repair = &RepairReport{
			ModuleDeaths:   rs.ModuleDeaths,
			Scrubs:         rs.Scrubs,
			Repaired:       rs.Repaired,
			Residual:       rs.Residual,
			Remapped:       rs.Remapped,
			Lost:           rs.Lost,
			Steps:          rs.Steps,
			Discovered:     rs.Discovered,
			DiscoverySteps: rs.DiscoverySteps,
		}
	}
	if rec := mb.Recovery(); rec != (pram.RecoveryStats{}) {
		out.Recovery = &RecoveryReport{
			Retries:   rec.Retries,
			Backoff:   rec.Backoff,
			Recovered: rec.Recovered,
			Exhausted: rec.Exhausted,
			Capped:    rec.Capped,
		}
	}
	if sc.Trace {
		var buf bytes.Buffer
		stats.RenderTrace(&buf, trace.Export(mb.Sim.Ledger().Last()))
		out.Trace = buf.String()
	}
	out.Words, err = fetchOutputs(mb, prog)
	if err != nil {
		return nil, fmt.Errorf("serve: mesh output fetch: %w", err)
	}
	return out, nil
}

func verdictOf(rep *fault.StepReport) Verdict {
	switch {
	case rep == nil || !rep.Degraded():
		return VerdictOK
	case len(rep.Unrecoverable) > 0:
		return VerdictUnrecoverable
	default:
		return VerdictDegraded
	}
}

// fetchOutputs reads the program's result region with one extra read
// step. Programs without a known output region yield no words.
func fetchOutputs(b pram.Backend, prog pram.Program) ([]pram.Word, error) {
	o, ok := prog.(pram.Outputs)
	if !ok {
		return nil, nil
	}
	base, n := o.OutputRange()
	return pram.ReadWords(b, base, n)
}
