package serve

// The warm engine pool: N persistent worker goroutines, each owning
// one Runner (and therefore its own warm HMOS scheme cache — no
// cross-worker sharing, no locks on the execution path). Jobs flow
// through one bounded channel; the channel's free capacity is the
// queue the admission layer protects.

import (
	"sync"
	"sync/atomic"

	"meshpram/internal/sim"
)

// jobStatus is the lifecycle of one submission.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one scenario submission. Sync and async requests share the
// type: a sync request waits on done, an async one polls by id.
type job struct {
	id       string
	key      string
	scenario sim.Scenario

	done chan struct{} // closed exactly once, after body/err are set

	mu        sync.Mutex
	status    jobStatus
	body      []byte
	err       error
	fromCache bool
	meshSteps int64 // charged mesh steps of the computed run (stats)
}

func newJob(id string, sc sim.Scenario) *job {
	return &job{
		id:       id,
		key:      sc.Key(),
		scenario: sc,
		done:     make(chan struct{}),
		status:   statusQueued,
	}
}

// completedJob returns an already-finished job (cache hits).
func completedJob(id string, sc sim.Scenario, body []byte) *job {
	j := newJob(id, sc)
	j.status = statusDone
	j.body = body
	j.fromCache = true
	close(j.done)
	return j
}

func (j *job) markRunning() {
	j.mu.Lock()
	j.status = statusRunning
	j.mu.Unlock()
}

func (j *job) finish(body []byte, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = statusFailed
		j.err = err
	} else {
		j.status = statusDone
		j.body = body
	}
	j.mu.Unlock()
	close(j.done)
}

// state returns a consistent (status, body, err) snapshot.
func (j *job) state() (jobStatus, []byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.body, j.err
}

// currentStatus returns just the lifecycle status.
func (j *job) currentStatus() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// pool runs jobs on persistent workers.
type pool struct {
	queue   chan *job
	workers int
	busy    atomic.Int64
	onDone  func(*job) // invoked after finish, outside the job lock
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// newPool starts `workers` goroutines behind a queue of depth slots.
// workers may be 0 (tests exercising queue backpressure only).
func newPool(workers, depth int, onDone func(*job)) *pool {
	if depth < 1 {
		depth = 1
	}
	p := &pool{
		queue:   make(chan *job, depth),
		workers: workers,
		onDone:  onDone,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.work()
	}
	return p
}

func (p *pool) work() {
	defer p.wg.Done()
	runner := NewRunner() // warm scheme cache, private to this worker
	//detlint:ignore chanorder job intake only: each job is self-contained, keyed by its id, and publishes through its own done channel
	for j := range p.queue {
		p.busy.Add(1)
		j.markRunning()
		var body []byte
		res, err := runner.Run(j.scenario)
		if err == nil {
			if res.Mesh != nil {
				j.meshSteps = res.Mesh.MeshSteps
			}
			body, err = EncodeResult(res)
		}
		j.finish(body, err)
		if p.onDone != nil {
			p.onDone(j)
		}
		p.busy.Add(-1)
	}
}

// trySubmit enqueues without blocking. False means the queue is full
// or the pool is draining.
func (p *pool) trySubmit(j *job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// drain stops accepting jobs, lets the workers finish everything
// already queued, and returns when the pool is idle.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *pool) depth() int     { return len(p.queue) }
func (p *pool) capacity() int  { return cap(p.queue) }
func (p *pool) busyCount() int { return int(p.busy.Load()) }
