package serve

// The deterministic result cache: an LRU over encoded response bodies
// keyed by the scenario's canonical cache key. Determinism is what
// makes this sound — a hit returns bytes identical to recomputation
// (pinned by TestCacheIdentity), so eviction and capacity tuning are
// pure performance knobs, never correctness ones.

import (
	"container/list"
	"sync"
)

type cacheEntry struct {
	key  string
	body []byte
}

// lruCache is a size-bounded (entries and bytes) LRU of response
// bodies. The zero limits disable the respective bound; a nil cache
// stores nothing.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	hits, misses int64
}

// newCache returns an LRU bounded by maxEntries (> 0 required) and
// optionally maxBytes (0 = unbounded bytes). maxEntries ≤ 0 disables
// caching entirely (returns nil).
func newCache(maxEntries int, maxBytes int64) *lruCache {
	if maxEntries <= 0 {
		return nil
	}
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting least-recently-used entries
// until both bounds hold. Bodies larger than maxBytes are not stored.
func (c *lruCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.index, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// cacheStats is a point-in-time snapshot for /v1/stats.
type cacheStats struct {
	Entries int     `json:"entries"`
	Bytes   int64   `json:"bytes"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func (c *lruCache) snapshot() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := cacheStats{
		Entries: c.ll.Len(),
		Bytes:   c.bytes,
		Hits:    c.hits,
		Misses:  c.misses,
	}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	return st
}
