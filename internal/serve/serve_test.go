package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"meshpram/internal/sim"
)

// testScenario is a small, fast scenario exercising both backends.
func testScenario() sim.Scenario {
	sc := sim.DefaultScenario()
	sc.Size = 16
	return sc
}

func postScenario(t *testing.T, url string, sc sim.Scenario) *http.Response {
	t.Helper()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRunnerWarmColdIdentical pins the warm-pool determinism claim: a
// cold runner and a runner whose scheme cache is already warm (and was
// used for other scenarios in between) produce byte-identical bodies.
func TestRunnerWarmColdIdentical(t *testing.T) {
	sc := testScenario()
	sc.Trace = true

	cold, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatal(err)
	}

	warm := NewRunner()
	other := testScenario()
	other.Program = "matvec"
	other.Size = 4
	if _, err := warm.RunBody(other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		body, err := warm.RunBody(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, body) {
			t.Fatalf("warm rerun %d differs from cold run:\n%s\nvs\n%s", i, cold, body)
		}
	}
}

// TestRunnerMeshMatchesIdeal checks the mesh simulation delivers the
// same output words as the ideal PRAM for every program.
func TestRunnerMeshMatchesIdeal(t *testing.T) {
	r := NewRunner()
	for _, prog := range sim.Programs {
		sc := testScenario()
		sc.Program = prog
		if prog == "matvec" {
			sc.Size = 4
		}
		res, err := r.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		if res.Ideal == nil || res.Mesh == nil {
			t.Fatalf("%s: missing backend result", prog)
		}
		if len(res.Mesh.Words) == 0 {
			t.Errorf("%s: no output words", prog)
		}
		if fmt.Sprint(res.Ideal.Words) != fmt.Sprint(res.Mesh.Words) {
			t.Errorf("%s: mesh words %v != ideal words %v", prog, res.Mesh.Words, res.Ideal.Words)
		}
		if res.Mesh.Verdict != VerdictOK {
			t.Errorf("%s: verdict %s on a fault-free run", prog, res.Mesh.Verdict)
		}
		if res.Mesh.MeshSteps <= 0 {
			t.Errorf("%s: no charged mesh steps", prog)
		}
	}
}

// TestRunnerFaultReports checks fault, repair and retry reporting
// surfaces in the Result.
func TestRunnerFaultReports(t *testing.T) {
	sc := testScenario()
	sc.FaultSchedule = "@3 module:40"
	sc.Repair = "eager"
	sc.Retry = 2
	res, err := NewRunner().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.Repair == nil {
		t.Fatal("no repair report despite repair=eager and a module death")
	}
	if res.Mesh.Repair.ModuleDeaths != 1 {
		t.Errorf("module deaths = %d, want 1", res.Mesh.Repair.ModuleDeaths)
	}
	if res.Mesh.Degradation == nil {
		t.Error("no degradation report despite a fault schedule")
	}
	if res.Mesh.Verdict == VerdictUnrecoverable {
		t.Errorf("verdict %s; eager repair should keep majorities alive", res.Mesh.Verdict)
	}
}

// TestServerColdWarmCacheIdentical is the ISSUE's acceptance triple: a
// cold run, a warm-pool rerun (cache disabled), and a cache hit all
// return byte-identical bodies.
func TestServerColdWarmCacheIdentical(t *testing.T) {
	sc := testScenario()

	// Cache disabled: every POST recomputes, second run is warm-pool.
	nocache := New(Config{Workers: 1, CacheEntries: -1})
	defer nocache.Drain()
	ts := httptest.NewServer(nocache.Handler())
	defer ts.Close()

	resp := postScenario(t, ts.URL+"/v1/simulate", sc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold run X-Cache = %q, want miss", got)
	}
	if got := resp.Header.Get("X-Scenario-Key"); got != sc.Key() {
		t.Errorf("X-Scenario-Key = %q, want %q", got, sc.Key())
	}
	cold := readBody(t, resp)

	resp = postScenario(t, ts.URL+"/v1/simulate", sc)
	warm := readBody(t, resp)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Error("cache-disabled server reported a cache hit")
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm-pool rerun differs from cold run:\n%s\nvs\n%s", cold, warm)
	}

	// Caching server: miss then hit, both identical to the no-cache body.
	cached := New(Config{Workers: 1})
	defer cached.Drain()
	ts2 := httptest.NewServer(cached.Handler())
	defer ts2.Close()

	resp = postScenario(t, ts2.URL+"/v1/simulate", sc)
	miss := readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first POST X-Cache = %q, want miss", got)
	}
	resp = postScenario(t, ts2.URL+"/v1/simulate", sc)
	hit := readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cache hit differs from cold miss:\n%s\nvs\n%s", miss, hit)
	}
	if !bytes.Equal(cold, hit) {
		t.Fatalf("cached body differs from cache-disabled body")
	}
}

// TestServerConcurrentIdentical runs the same scenario concurrently
// (under -race in CI) and requires every response body byte-identical.
func TestServerConcurrentIdentical(t *testing.T) {
	srv := New(Config{Workers: 4})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := testScenario()
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(sc)
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestAsyncJobLifecycle drives POST /v1/jobs + GET /v1/jobs/{id} and
// checks the async result equals the sync body.
func TestAsyncJobLifecycle(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := testScenario()
	sc.Program = "reduce"
	resp := postScenario(t, ts.URL+"/v1/jobs", sc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var v struct {
		ID     string          `json:"id"`
		Key    string          `json:"key"`
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(readBody(t, resp), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Key != sc.Key() {
		t.Fatalf("bad submit view: %+v", v)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var poll struct {
			Status string          `json:"status"`
			Result json.RawMessage `json:"result"`
			Error  string          `json:"error"`
		}
		if err := json.Unmarshal(readBody(t, r), &poll); err != nil {
			t.Fatal(err)
		}
		if poll.Status == "done" {
			want, err := NewRunner().RunBody(sc)
			if err != nil {
				t.Fatal(err)
			}
			// The job view re-indents the embedded result; compare the
			// compacted JSON (strict byte identity is pinned on the sync
			// endpoint, which serves the cached bytes verbatim).
			var gotC, wantC bytes.Buffer
			if err := json.Compact(&gotC, poll.Result); err != nil {
				t.Fatal(err)
			}
			if err := json.Compact(&wantC, want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
				t.Fatalf("async result differs from direct run")
			}
			break
		}
		if poll.Status == "failed" {
			t.Fatalf("job failed: %s", poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %q", poll.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown job id → 404.
	r, err := http.Get(ts.URL + "/v1/jobs/j-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	readBody(t, r)
}

// TestRejectionsSurfaceFieldNames checks 400 bodies name the offending
// scenario field.
func TestRejectionsSurfaceFieldNames(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"bad q", `{"side":9,"q":2,"d":3,"k":2,"program":"prefixsum","size":16,"seed":1}`, "q"},
		{"malformed fault schedule", `{"side":9,"q":3,"d":3,"k":2,"program":"prefixsum","size":16,"seed":1,"fault_schedule":"@x module:40"}`, "fault_schedule"},
		{"unknown field", `{"side":9,"q":3,"d":3,"k":2,"program":"prefixsum","size":16,"seed":1,"warp_drive":true}`, "warp_drive"},
		{"unknown program", `{"side":9,"q":3,"d":3,"k":2,"program":"quicksort","size":16,"seed":1}`, "program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.field) {
				t.Errorf("error body %s does not name field %q", body, tc.field)
			}
		})
	}
}

// TestAdmissionControl checks the token bucket rejects with 429 and a
// Retry-After header once the burst is spent.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{Workers: 1, Rate: 0.0001, Burst: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postScenario(t, ts.URL+"/v1/jobs", testScenario())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	// A different scenario (no cache hit, no coalescing) must be refused.
	other := testScenario()
	other.Seed = 99
	resp = postScenario(t, ts.URL+"/v1/jobs", other)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// An identical, already-computed scenario still serves from the
	// cache without a token.
	srv.pool.drain() // let the first job finish and fill the cache
	resp = postScenario(t, ts.URL+"/v1/simulate", testScenario())
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cache hit refused by admission: status %d: %s", resp.StatusCode, readBody(t, resp))
	} else {
		if resp.Header.Get("X-Cache") != "hit" {
			t.Error("expected a cache hit")
		}
		readBody(t, resp)
	}
}

// TestQueueFull checks a saturated queue rejects with 429.
func TestQueueFull(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	// Stop the workers so the queue cannot drain, without marking the
	// server as draining (trySubmit then fails on the closed pool).
	srv.pool.drain()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postScenario(t, ts.URL+"/v1/jobs", testScenario())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue") {
		t.Errorf("429 body %s does not mention the queue", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestDrainRefuses checks a draining server refuses new work with 503.
func TestDrainRefuses(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.Drain()
	resp := postScenario(t, ts.URL+"/v1/simulate", testScenario())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}

	r, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readBody(t, r)
	if !strings.Contains(string(hb), "draining") {
		t.Errorf("healthz %s does not report draining", hb)
	}
}

// TestStats checks /v1/stats accounting: runs, cache hits, hit rate,
// per-scenario mesh-step totals.
func TestStats(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := testScenario()
	for i := 0; i < 3; i++ {
		resp := postScenario(t, ts.URL+"/v1/simulate", sc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
		readBody(t, resp)
	}

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(readBody(t, r), &st); err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 1 {
		t.Errorf("jobs done = %d, want 1 (two of three were cache hits)", st.JobsDone)
	}
	if st.Cache.Hits != 2 {
		t.Errorf("cache hits = %d, want 2", st.Cache.Hits)
	}
	if st.Cache.HitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", st.Cache.HitRate)
	}
	if len(st.Scenarios) != 1 {
		t.Fatalf("scenario rows = %d, want 1", len(st.Scenarios))
	}
	row := st.Scenarios[0]
	if row.Key != sc.Key() {
		t.Errorf("scenario key %s, want %s", row.Key, sc.Key())
	}
	if row.Runs != 1 || row.CacheHits != 2 {
		t.Errorf("scenario totals runs=%d hits=%d, want 1/2", row.Runs, row.CacheHits)
	}
	if row.MeshSteps <= 0 {
		t.Errorf("scenario mesh steps = %d, want > 0", row.MeshSteps)
	}
}

// TestJobRetentionEviction pins the async job map bound: completed
// records beyond MaxJobs are evicted oldest-first, evicted ids answer
// 404 with a retention reason (distinct from never-known ids), and
// live jobs are never dropped by retention pressure.
func TestJobRetentionEviction(t *testing.T) {
	srv := New(Config{Workers: 1, MaxJobs: 2})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill the result cache so every async submission below completes
	// instantly (completedJob) — eviction order then depends only on
	// submission order, never on worker timing.
	sc := testScenario()
	resp := postScenario(t, ts.URL+"/v1/simulate", sc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up run: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	const n = 5
	ids := make([]string, n)
	for i := range ids {
		resp := postScenario(t, ts.URL+"/v1/jobs", sc)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, readBody(t, resp))
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(readBody(t, resp), &v); err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}

	srv.mu.Lock()
	retained := len(srv.jobs)
	srv.mu.Unlock()
	if retained > 2 {
		t.Errorf("job map holds %d records, want ≤ MaxJobs=2", retained)
	}

	// Newest two ids survive; everything older is evicted.
	for i, id := range ids {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, r)
		if i >= n-2 {
			if r.StatusCode != http.StatusOK {
				t.Errorf("retained job %s: status %d, want 200: %s", id, r.StatusCode, body)
			}
			continue
		}
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s: status %d, want 404: %s", id, r.StatusCode, body)
		}
		if !strings.Contains(string(body), "evicted") || !strings.Contains(string(body), "retention") {
			t.Errorf("evicted job %s: 404 body %s does not explain the retention eviction", id, body)
		}
	}

	// A never-known id still gets the plain unknown-job 404.
	r, err := http.Get(ts.URL + "/v1/jobs/j-never-submitted")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, r)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	if !strings.Contains(string(body), "unknown job") || strings.Contains(string(body), "evicted") {
		t.Errorf("unknown job body %s should be the plain unknown-job reason", body)
	}
}

// TestJobRetentionSkipsLiveJobs checks retention pressure walks past
// queued/running records instead of dropping them or stalling: live
// jobs survive, completed ones behind them are still evicted.
func TestJobRetentionSkipsLiveJobs(t *testing.T) {
	srv := New(Config{Workers: 1, MaxJobs: 1})
	// No HTTP, no workers: drive rememberJob directly under the lock.
	live := newJob("j-live", testScenario())

	other := testScenario()
	other.Seed = 2
	doneA := completedJob("j-done-a", other, []byte("{}"))
	doneB := completedJob("j-done-b", other, []byte("{}"))

	srv.mu.Lock()
	srv.rememberJob(doneA) // oldest
	srv.rememberJob(live)
	srv.rememberJob(doneB) // over bound: must evict doneA, then live blocks... skip to keep doneB
	if _, ok := srv.jobs["j-done-a"]; ok {
		t.Error("oldest completed job not evicted")
	}
	if !srv.evicted["j-done-a"] {
		t.Error("evicted id not remembered")
	}
	if _, ok := srv.jobs["j-live"]; !ok {
		t.Error("live job dropped by retention")
	}
	srv.mu.Unlock()

	// The evicted-id memory is itself bounded (count-based, no clock).
	srv.mu.Lock()
	for i := 0; i < 3*evictedMemory; i++ {
		srv.rememberEvicted(fmt.Sprintf("j-x-%d", i))
	}
	if got, want := len(srv.evictFIFO), evictedMemory*srv.cfg.MaxJobs; got > want {
		t.Errorf("evicted-id memory holds %d ids, want ≤ %d", got, want)
	}
	if len(srv.evicted) != len(srv.evictFIFO) {
		t.Errorf("evicted map (%d) and FIFO (%d) diverged", len(srv.evicted), len(srv.evictFIFO))
	}
	srv.mu.Unlock()
}

// TestLRUCache unit-tests the result cache bounds and counters.
func TestLRUCache(t *testing.T) {
	c := newCache(2, 0)
	c.put("a", []byte("aaa"))
	c.put("b", []byte("bbb"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("ccc")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	st := c.snapshot()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}

	// Byte bound: oversized bodies are skipped, small ones evict to fit.
	cb := newCache(10, 4)
	cb.put("big", []byte("12345"))
	if _, ok := cb.get("big"); ok {
		t.Error("oversized body cached")
	}
	cb.put("x", []byte("12"))
	cb.put("y", []byte("34"))
	cb.put("z", []byte("56")) // must evict x
	if _, ok := cb.get("x"); ok {
		t.Error("byte bound not enforced")
	}
	if st := cb.snapshot(); st.Bytes > 4 {
		t.Errorf("cached bytes = %d, want ≤ 4", st.Bytes)
	}

	// Disabled cache.
	var nc *lruCache = newCache(0, 0)
	nc.put("k", []byte("v"))
	if _, ok := nc.get("k"); ok {
		t.Error("disabled cache stored a body")
	}
}
