package core

import (
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
	"meshpram/internal/route"
)

// Consistency must hold across every supported scheme shape: deeper
// hierarchies, other field orders, and the torus extension.
func TestConsistencyAcrossSchemes(t *testing.T) {
	cases := []struct {
		name string
		p    hmos.Params
		cfg  Config
	}{
		{"k3", hmos.Params{Side: 27, Q: 3, D: 4, K: 3}, Config{}},
		{"q4", hmos.Params{Side: 16, Q: 4, D: 3, K: 2}, Config{}},
		{"q5", hmos.Params{Side: 25, Q: 5, D: 3, K: 2}, Config{}},
		{"k1", hmos.Params{Side: 27, Q: 3, D: 5, K: 1}, Config{}},
		{"torus", hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Torus: true}},
		{"rotatesort", hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Sort: route.RotateSort}},
		{"torus-mv84", hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Torus: true, Policy: ReadOneWriteAllPolicy}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sim := MustNew(c.p, c.cfg)
			rng := rand.New(rand.NewSource(33))
			ideal := map[int]Word{}
			batch := sim.M.N / 4
			if batch > sim.S.Vars() {
				batch = sim.S.Vars()
			}
			for step := 0; step < 8; step++ {
				vars := rng.Perm(sim.S.Vars())[:batch]
				ops := make([]Op, batch)
				expect := make([]Word, batch)
				for i, v := range vars {
					if rng.Intn(2) == 0 {
						val := Word(rng.Intn(1 << 20))
						ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: val}
						expect[i] = val
					} else {
						ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v}
						expect[i] = ideal[v]
					}
				}
				res, st := sim.Step(ops)
				for i := range ops {
					if res[i] != expect[i] {
						t.Fatalf("step %d op %d: got %d want %d", step, i, res[i], expect[i])
					}
					if ops[i].IsWrite {
						ideal[ops[i].Var] = ops[i].Value
					}
				}
				// Theorem 3 must hold whenever culling ran.
				if c.cfg.Policy == MajorityPolicy && !c.cfg.DisableCulling {
					for lvl := 1; lvl <= sim.S.K; lvl++ {
						if st.PageLoadMax[lvl] > st.PageLoadBound[lvl] {
							t.Fatalf("level %d: load %d > bound %d", lvl, st.PageLoadMax[lvl], st.PageLoadBound[lvl])
						}
					}
				}
			}
		})
	}
}

// Torus routing must never be slower than the plain mesh on the same
// request sequence (wrap links only add options).
func TestTorusNeverSlower(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	run := func(torus bool) int64 {
		sim := MustNew(p, Config{Torus: torus})
		rng := rand.New(rand.NewSource(8))
		for step := 0; step < 5; step++ {
			vars := rng.Perm(sim.S.Vars())[:sim.M.N/2]
			ops := make([]Op, len(vars))
			for i, v := range vars {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: i%2 == 0, Value: Word(i)}
			}
			sim.Step(ops)
		}
		return sim.M.Steps()
	}
	meshSteps := run(false)
	torusSteps := run(true)
	if torusSteps > meshSteps {
		t.Fatalf("torus (%d) slower than mesh (%d)", torusSteps, meshSteps)
	}
}

// The historical 2^16 processor cap is gone: packet sort keys size
// their fields to the instance, so large meshes construct (the SCALE
// experiment runs side 1458 = n 2,125,764).
func TestNewAcceptsLargeMesh(t *testing.T) {
	sim, err := New(hmos.Params{Side: 729, Q: 3, D: 4, K: 2}, Config{})
	if err != nil {
		t.Fatalf("side 729 (n = 2^19) rejected: %v", err)
	}
	if sim.destBits < 19 {
		t.Fatalf("destBits %d cannot carry %d processors", sim.destBits, sim.M.N)
	}
}

// The per-stage delta diagnostics must be internally consistent: stage
// K+1 starts with at most q^k packets per origin.
func TestDeltaDiagnostics(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	ops := make([]Op, sim.M.N)
	for i := range ops {
		ops[i] = Op{Origin: i, Var: i}
	}
	_, st := sim.Step(ops)
	if st.Delta[sim.S.K+1] > sim.S.Redundant {
		t.Fatalf("initial delta %d exceeds q^k = %d", st.Delta[sim.S.K+1], sim.S.Redundant)
	}
	for s := 1; s <= sim.S.K+1; s++ {
		if st.Delta[s] < 1 {
			t.Fatalf("stage %d delta missing", s)
		}
	}
}
