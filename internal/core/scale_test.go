package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
)

// Large-n acceptance tests for the compact-state layer: the slab store,
// the streaming snapshot format and the width-invariance contract must
// hold at n ≥ 10^5, not just on the side-9 fixtures. Side 324 gives
// n = 104,976 with the SCALE scheme (q=3, d=4, k=2, M=1080) — the
// smallest valid side (multiple of 27) above 10^5 processors, chosen
// because the local fault view's gossip makes churn steps cost minutes
// at side 486.

func largeParams() hmos.Params { return hmos.Params{Side: 324, Q: 3, D: 4, K: 2} }

// largeChurnSchedule kills two host modules of variable 0 mid-run and
// degrades a link, so the snapshot under test carries quarantine bits,
// a remap-free fault map and a populated local view log.
func largeChurnSchedule(t *testing.T, s *hmos.Scheme) *fault.Schedule {
	t.Helper()
	hosts := s.Copies(0, nil)
	if len(hosts) < 2 {
		t.Fatalf("variable 0 has %d copies", len(hosts))
	}
	return fault.NewSchedule(324).
		At(1, fault.EvKillModule, hosts[0].Proc).
		At(2, fault.EvSlowLink, 0, 1, 3).
		At(2, fault.EvKillModule, hosts[1].Proc)
}

// largeWorkload writes every variable (step 0), then runs mixed steps.
func largeWorkload(t *testing.T, sim *Simulator, steps int, seed int64) [][]Word {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nv := sim.S.Vars()
	var out [][]Word
	for step := 0; step < steps; step++ {
		ops := make([]Op, nv)
		for i, v := range rng.Perm(nv) {
			ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v}
			if step == 0 || rng.Intn(2) == 0 {
				ops[i].IsWrite = true
				ops[i].Value = Word(v*1000 + step)
			}
		}
		words, _, err := sim.StepChecked(ops)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		out = append(out, append([]Word(nil), words...))
	}
	return out
}

// TestLargeMeshSnapshotChurnRoundtrip runs a 100k-processor simulation
// through module churn under the local fault view, snapshots mid-state,
// and requires: byte-deterministic re-save after load, equal clocks,
// and bit-identical behavior of the restored simulator on the
// continuation workload.
func TestLargeMeshSnapshotChurnRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-processor mesh")
	}
	if raceEnabled {
		// Workers=1 throughout: nothing for the detector to watch, and
		// the ~20× slowdown breaks the package timeout (see race_on_test.go).
		t.Skip("sequential capacity test; race covered by the identity matrices")
	}
	p := largeParams()
	mk := func(sch *fault.Schedule) *Simulator {
		sim, err := New(p, Config{
			Workers:       1,
			Schedule:      sch,
			Repair:        RepairLazy,
			FaultView:     faultview.Local,
			FaultViewSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	probe, err := hmos.New(p)
	if err != nil {
		t.Fatal(err)
	}
	sch := largeChurnSchedule(t, probe)
	sim := mk(sch)
	if sim.M.N < 100_000 {
		t.Fatalf("n = %d, want ≥ 10^5", sim.M.N)
	}
	largeWorkload(t, sim, 3, 21)

	var img bytes.Buffer
	if err := sim.Save(&img); err != nil {
		t.Fatal(err)
	}
	restored := mk(sch)
	if err := restored.Load(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Now() != sim.Now() {
		t.Fatalf("clock %d after load, want %d", restored.Now(), sim.Now())
	}
	var again bytes.Buffer
	if err := restored.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Bytes(), again.Bytes()) {
		t.Fatalf("save → load → save changed the image (%d vs %d bytes)",
			img.Len(), again.Len())
	}

	// The restored simulator must be indistinguishable on continuation.
	a := largeWorkload(t, sim, 2, 22)
	b := largeWorkload(t, restored, 2, 22)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored simulator diverged on the continuation workload")
	}
}

// TestLargeMeshCrossWidthIdentity pins the width-invariance contract at
// a large-n point: worker widths 1 and 8 must produce identical read
// results, charged steps and snapshot bytes on the same churn timeline.
func TestLargeMeshCrossWidthIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-processor mesh")
	}
	p := largeParams()
	probe, err := hmos.New(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([][]Word, []int64, []byte) {
		sim, err := New(p, Config{
			Workers:  workers,
			Schedule: largeChurnSchedule(t, probe),
			Repair:   RepairLazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		var words [][]Word
		var charged []int64
		for step := 0; step < 3; step++ {
			ops := make([]Op, sim.S.Vars())
			for i, v := range rng.Perm(sim.S.Vars()) {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: step == 0, Value: Word(v)}
			}
			res, st, err := sim.StepChecked(ops)
			if err != nil {
				t.Fatalf("workers=%d step %d: %v", workers, step, err)
			}
			words = append(words, append([]Word(nil), res...))
			charged = append(charged, st.Total())
		}
		var img bytes.Buffer
		if err := sim.Save(&img); err != nil {
			t.Fatal(err)
		}
		return words, charged, img.Bytes()
	}
	w1, c1, s1 := run(1)
	w8, c8, s8 := run(8)
	if !reflect.DeepEqual(w1, w8) {
		t.Error("read results differ between worker widths 1 and 8")
	}
	if !reflect.DeepEqual(c1, c8) {
		t.Errorf("charged steps differ between widths: %v vs %v", c1, c8)
	}
	if !bytes.Equal(s1, s8) {
		t.Errorf("snapshot bytes differ between widths (%d vs %d)", len(s1), len(s8))
	}
	// Sanity that the timeline actually degraded something (the churn
	// schedule kills two hosts of variable 0).
	if fmt.Sprint(c1) == "[0 0 0]" {
		t.Fatal("no cycles charged; workload did not run")
	}
}
