package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
)

// Snapshot support: serialize the simulated shared memory (the copy
// cells of every processor, with timestamps) so long experiments can
// checkpoint and resume, and so memory images can be moved between a
// sequential and a parallel-engine simulator.
//
// The wire format is a stream of gob values: one header, then one
// record per touched level-1 page, then the foreign-cell record, then
// (local fault view only) the gossip state. Save never buffers more
// than one record, so checkpointing a million-node mesh needs memory
// proportional to the resident cells of one page, not the mesh.
//
// The encoding is deterministic: identical simulator state yields
// byte-identical images. That is why the remap table travels as two
// sorted parallel slices (gob encodes Go maps in randomized iteration
// order), the quarantine set and the page records are emitted in
// ascending order, and zero cells are skipped (a cell with ts == 0 is
// logically absent, so images depend only on the logical state, never
// on which slabs happen to be allocated). The multi-run bit-identity
// fixtures diff raw snapshot bytes, so any nondeterminism here is a
// test failure.
//
// Version history. Version 2 (current) is the streaming page format.
// Version 1 images — written before the slab store, as a single gob
// value holding every processor's cells — carry no Version field (gob
// leaves it 0) and deliver their payload through the header's legacy
// Procs field; Load accepts both.

// snapshotVersion is the wire format written by Save.
const snapshotVersion = 2

// snapHeader is the leading gob value of an image.
type snapHeader struct {
	Version int // 0 = legacy single-value image
	Params  hmos.Params
	Now     int64

	// Self-healing state (repair.go). Without it a restored image could
	// serve a quarantined (lost) copy as fresh, or look for relocated
	// copies at their original homes. The schedule replay cursor is
	// deliberately absent: events already applied live on in the fault
	// map, and a rollback must not replay them. RemapFrom/RemapTo are
	// the remap table as parallel slices sorted by RemapFrom.
	RemapFrom []int
	RemapTo   []int
	Quar      []int64
	Pending   []int

	// Pages counts the pageImage records that follow the header;
	// Foreign is 1 when a foreignImage record follows them.
	Pages   int
	Foreign int

	// Procs is the legacy (version ≤ 1) in-header payload: per-processor
	// slot/value/timestamp arrays. Version-2 images leave it empty.
	Procs []procImage
}

// procImage is one processor's cells in the legacy format.
type procImage struct {
	Proc  int
	Slots []int64
	Vals  []Word
	TSs   []int64
}

// pageImage is one level-1 page's nonzero cells: parallel arrays
// indexed by ascending copy rank r1.
type pageImage struct {
	Page  int
	Ranks []int32
	Vals  []Word
	TSs   []int64
}

// foreignImage carries the remap-relocated cells, sorted by
// (processor, slot).
type foreignImage struct {
	Procs []int32
	Slots []int64
	Vals  []Word
	TSs   []int64
}

// viewSnapshot is the trailing gob value of a local-fault-view image:
// the gossip state (notice log, per-node knowledge bitsets, round and
// dissemination counters) plus the coordinator's notified queue as
// parallel slices. Global-mode images do not carry it, so their byte
// stream is unchanged by the faultview feature.
type viewSnapshot struct {
	View           faultview.Image
	NotifiedHost   []int
	NotifiedNotice []int
	NotifiedStep   []int64
}

// pageTouched reports whether a page slab holds any nonzero cell.
func pageTouched(sl []cell) bool {
	for _, c := range sl {
		if c.ts != 0 {
			return true
		}
	}
	return false
}

// Save writes the simulator's memory state (copies, timestamps, and the
// step clock) to w as a stream of bounded records. Step accounting is
// not part of the image. Identical state encodes to identical bytes
// (see the package comment above).
func (sim *Simulator) Save(w io.Writer) error {
	hdr := snapHeader{Version: snapshotVersion, Params: sim.S.Params, Now: sim.now}
	if len(sim.remap) > 0 {
		hdr.RemapFrom = make([]int, 0, len(sim.remap))
		for k := range sim.remap {
			hdr.RemapFrom = append(hdr.RemapFrom, k)
		}
		sort.Ints(hdr.RemapFrom)
		hdr.RemapTo = make([]int, len(hdr.RemapFrom))
		for i, k := range hdr.RemapFrom {
			hdr.RemapTo[i] = sim.remap[k]
		}
	}
	if sim.quar != nil {
		sim.quar.ForEach(func(i int) { hdr.Quar = append(hdr.Quar, int64(i)) })
	}
	hdr.Pending = append(hdr.Pending, sim.pending...)
	for _, sl := range sim.st.slabs {
		if pageTouched(sl) {
			hdr.Pages++
		}
	}
	for i := range sim.st.foreign {
		if sim.st.foreign[i].ts != 0 {
			hdr.Foreign = 1
			break
		}
	}

	enc := gob.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		return err
	}
	var pi pageImage
	for pg, sl := range sim.st.slabs {
		if !pageTouched(sl) {
			continue
		}
		pi.Page = pg
		pi.Ranks, pi.Vals, pi.TSs = pi.Ranks[:0], pi.Vals[:0], pi.TSs[:0]
		for r1, c := range sl {
			if c.ts == 0 {
				continue
			}
			pi.Ranks = append(pi.Ranks, int32(r1))
			pi.Vals = append(pi.Vals, c.val)
			pi.TSs = append(pi.TSs, c.ts)
		}
		if err := enc.Encode(&pi); err != nil {
			return err
		}
	}
	if hdr.Foreign != 0 {
		var fi foreignImage
		for i := range sim.st.foreign {
			fc := &sim.st.foreign[i]
			if fc.ts == 0 {
				continue
			}
			fi.Procs = append(fi.Procs, fc.proc)
			fi.Slots = append(fi.Slots, fc.slot)
			fi.Vals = append(fi.Vals, fc.val)
			fi.TSs = append(fi.TSs, fc.ts)
		}
		if err := enc.Encode(&fi); err != nil {
			return err
		}
	}
	if sim.view == nil {
		return nil
	}
	vi := viewSnapshot{View: sim.view.Image()}
	for _, nd := range sim.notified {
		vi.NotifiedHost = append(vi.NotifiedHost, nd.host)
		vi.NotifiedNotice = append(vi.NotifiedNotice, nd.notice)
		vi.NotifiedStep = append(vi.NotifiedStep, nd.diedStep)
	}
	return enc.Encode(&vi)
}

// Load restores a memory image previously written by Save into this
// simulator — either the current streaming format or a legacy
// version-1 single-value image. The HMOS parameters must match exactly
// (the copy layout is parameter-dependent); the current memory content
// is replaced. A local-fault-view simulator additionally restores the
// gossip state (the image must come from a local-view Save); the live
// fault map is never part of the image — events already applied stay
// applied, and the restored beliefs are re-validated against the
// current truth.
func (sim *Simulator) Load(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var hdr snapHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if hdr.Version != 0 && hdr.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", hdr.Version)
	}
	if hdr.Params != sim.S.Params {
		return fmt.Errorf("core: snapshot params %+v do not match simulator %+v", hdr.Params, sim.S.Params)
	}
	if len(hdr.RemapFrom) != len(hdr.RemapTo) {
		return fmt.Errorf("core: snapshot remap table is ragged (%d from, %d to)", len(hdr.RemapFrom), len(hdr.RemapTo))
	}
	st := newSlabStore(sim.S)
	if hdr.Version == 0 {
		if err := loadLegacyProcs(st, hdr.Procs, sim.M.N); err != nil {
			return err
		}
	} else {
		if err := loadPages(st, dec, hdr.Pages, hdr.Foreign != 0); err != nil {
			return err
		}
	}
	sim.st = st
	sim.now = hdr.Now
	sim.remap = nil
	if len(hdr.RemapFrom) > 0 {
		sim.remap = make(map[int]int, len(hdr.RemapFrom))
		for i, from := range hdr.RemapFrom {
			sim.remap[from] = hdr.RemapTo[i]
		}
	}
	sim.quar = nil
	if len(hdr.Quar) > 0 {
		sim.ensureQuar()
		for _, slot := range hdr.Quar {
			if slot < 0 || slot >= int64(sim.quar.Len()) {
				return fmt.Errorf("core: snapshot quarantine slot %d out of range", slot)
			}
			sim.quar.Set(int(slot), true)
		}
	}
	sim.pending = append(sim.pending[:0], hdr.Pending...)
	if sim.view == nil {
		return nil
	}
	var vi viewSnapshot
	if err := dec.Decode(&vi); err != nil {
		return fmt.Errorf("core: decoding fault-view snapshot: %w", err)
	}
	if len(vi.NotifiedHost) != len(vi.NotifiedNotice) || len(vi.NotifiedHost) != len(vi.NotifiedStep) {
		return fmt.Errorf("core: snapshot notified queue is ragged")
	}
	if err := sim.view.Restore(vi.View, sim.faults); err != nil {
		return fmt.Errorf("core: restoring fault view: %w", err)
	}
	sim.notified = sim.notified[:0]
	for i, h := range vi.NotifiedHost {
		sim.notified = append(sim.notified, notifiedDeath{
			host: h, notice: vi.NotifiedNotice[i], diedStep: vi.NotifiedStep[i],
		})
	}
	return nil
}

// loadPages reads the streamed page and foreign records of a version-2
// image into a fresh store.
func loadPages(st *slabStore, dec *gob.Decoder, pages int, foreign bool) error {
	nPages := st.sch.PageCount(1)
	perPage := st.sch.PagesPer[1]
	for i := 0; i < pages; i++ {
		var pi pageImage
		if err := dec.Decode(&pi); err != nil {
			return fmt.Errorf("core: decoding snapshot page record %d/%d: %w", i, pages, err)
		}
		if pi.Page < 0 || pi.Page >= nPages {
			return fmt.Errorf("core: snapshot page %d out of range [0,%d)", pi.Page, nPages)
		}
		if len(pi.Ranks) != len(pi.Vals) || len(pi.Ranks) != len(pi.TSs) {
			return fmt.Errorf("core: snapshot page %d has ragged cell arrays", pi.Page)
		}
		st.allocPage(pi.Page)
		sl := st.slabs[pi.Page]
		for j, r1 := range pi.Ranks {
			if r1 < 0 || int(r1) >= perPage {
				return fmt.Errorf("core: snapshot page %d rank %d out of range [0,%d)", pi.Page, r1, perPage)
			}
			sl[r1] = cell{val: pi.Vals[j], ts: pi.TSs[j]}
		}
	}
	if !foreign {
		return nil
	}
	var fi foreignImage
	if err := dec.Decode(&fi); err != nil {
		return fmt.Errorf("core: decoding snapshot foreign record: %w", err)
	}
	if len(fi.Procs) != len(fi.Slots) || len(fi.Procs) != len(fi.Vals) || len(fi.Procs) != len(fi.TSs) {
		return fmt.Errorf("core: snapshot foreign record has ragged arrays")
	}
	n := st.sch.Mesh().N
	for i, p := range fi.Procs {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("core: snapshot foreign processor %d out of range", p)
		}
		st.foreignSet(int(p), fi.Slots[i], cell{val: fi.Vals[i], ts: fi.TSs[i]})
	}
	return nil
}

// loadLegacyProcs converts a version-1 per-processor payload into the
// slab store.
func loadLegacyProcs(st *slabStore, procs []procImage, n int) error {
	for _, pi := range procs {
		if pi.Proc < 0 || pi.Proc >= n {
			return fmt.Errorf("core: snapshot processor %d out of range", pi.Proc)
		}
		if len(pi.Slots) != len(pi.Vals) || len(pi.Slots) != len(pi.TSs) {
			return fmt.Errorf("core: snapshot processor %d has ragged slot arrays", pi.Proc)
		}
		for i, slot := range pi.Slots {
			if slot < 0 || slot >= int64(st.sch.Vars())*int64(st.sch.Redundant) {
				return fmt.Errorf("core: snapshot slot %d out of range", slot)
			}
			st.set(pi.Proc, slot, cell{val: pi.Vals[i], ts: pi.TSs[i]})
		}
	}
	return nil
}
