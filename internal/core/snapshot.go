package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
)

// Snapshot support: serialize the simulated shared memory (the copy
// cells of every processor, with timestamps) so long experiments can
// checkpoint and resume, and so memory images can be moved between a
// sequential and a parallel-engine simulator.
//
// The encoding is deterministic: identical simulator state yields
// byte-identical images. That is why the remap table travels as two
// sorted parallel slices (gob encodes Go maps in randomized iteration
// order) and why the quarantine set and every module's slot list are
// sorted before encoding. The multi-run bit-identity fixtures diff raw
// snapshot bytes, so any nondeterminism here is a test failure.

// snapshot is the gob wire format.
type snapshot struct {
	Params hmos.Params
	Now    int64
	Procs  []procImage

	// Self-healing state (repair.go). Without it a restored image could
	// serve a quarantined (lost) copy as fresh, or look for relocated
	// copies at their original homes. The schedule replay cursor is
	// deliberately absent: events already applied live on in the fault
	// map, and a rollback must not replay them. RemapFrom/RemapTo are
	// the remap table as parallel slices sorted by RemapFrom.
	RemapFrom []int
	RemapTo   []int
	Quar      []int64
	Pending   []int
}

type procImage struct {
	Proc  int
	Slots []int64
	Vals  []Word
	TSs   []int64
}

// viewSnapshot is the second gob value of a local-fault-view image:
// the gossip state (notice log, per-node knowledge bitsets, round and
// dissemination counters) plus the coordinator's notified queue as
// parallel slices. Global-mode images do not carry it, so their byte
// stream is unchanged by the faultview feature.
type viewSnapshot struct {
	View           faultview.Image
	NotifiedHost   []int
	NotifiedNotice []int
	NotifiedStep   []int64
}

// Save writes the simulator's memory state (copies, timestamps, and the
// step clock) to w. Step accounting is not part of the image. Identical
// state encodes to identical bytes (see the package comment above).
func (sim *Simulator) Save(w io.Writer) error {
	img := snapshot{Params: sim.S.Params, Now: sim.now}
	if len(sim.remap) > 0 {
		img.RemapFrom = make([]int, 0, len(sim.remap))
		for k := range sim.remap {
			img.RemapFrom = append(img.RemapFrom, k)
		}
		sort.Ints(img.RemapFrom)
		img.RemapTo = make([]int, len(img.RemapFrom))
		for i, k := range img.RemapFrom {
			img.RemapTo[i] = sim.remap[k]
		}
	}
	for slot := range sim.quar {
		img.Quar = append(img.Quar, slot)
	}
	sort.Slice(img.Quar, func(i, j int) bool { return img.Quar[i] < img.Quar[j] })
	img.Pending = append(img.Pending, sim.pending...)
	for p, mem := range sim.store {
		if len(mem) == 0 {
			continue
		}
		pi := procImage{Proc: p, Slots: make([]int64, 0, len(mem))}
		for slot := range mem {
			pi.Slots = append(pi.Slots, slot)
		}
		sort.Slice(pi.Slots, func(i, j int) bool { return pi.Slots[i] < pi.Slots[j] })
		for _, slot := range pi.Slots {
			c := mem[slot]
			pi.Vals = append(pi.Vals, c.val)
			pi.TSs = append(pi.TSs, c.ts)
		}
		img.Procs = append(img.Procs, pi)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&img); err != nil {
		return err
	}
	if sim.view == nil {
		return nil
	}
	vi := viewSnapshot{View: sim.view.Image()}
	for _, nd := range sim.notified {
		vi.NotifiedHost = append(vi.NotifiedHost, nd.host)
		vi.NotifiedNotice = append(vi.NotifiedNotice, nd.notice)
		vi.NotifiedStep = append(vi.NotifiedStep, nd.diedStep)
	}
	return enc.Encode(&vi)
}

// Load restores a memory image previously written by Save into this
// simulator. The HMOS parameters must match exactly (the copy layout is
// parameter-dependent); the current memory content is replaced. A
// local-fault-view simulator additionally restores the gossip state
// (the image must come from a local-view Save); the live fault map is
// never part of the image — events already applied stay applied, and
// the restored beliefs are re-validated against the current truth.
func (sim *Simulator) Load(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var img snapshot
	if err := dec.Decode(&img); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if img.Params != sim.S.Params {
		return fmt.Errorf("core: snapshot params %+v do not match simulator %+v", img.Params, sim.S.Params)
	}
	if len(img.RemapFrom) != len(img.RemapTo) {
		return fmt.Errorf("core: snapshot remap table is ragged (%d from, %d to)", len(img.RemapFrom), len(img.RemapTo))
	}
	store := make([]map[int64]cell, sim.M.N)
	for _, pi := range img.Procs {
		if pi.Proc < 0 || pi.Proc >= sim.M.N {
			return fmt.Errorf("core: snapshot processor %d out of range", pi.Proc)
		}
		if len(pi.Slots) != len(pi.Vals) || len(pi.Slots) != len(pi.TSs) {
			return fmt.Errorf("core: snapshot processor %d has ragged slot arrays", pi.Proc)
		}
		mem := make(map[int64]cell, len(pi.Slots))
		for i, slot := range pi.Slots {
			mem[slot] = cell{val: pi.Vals[i], ts: pi.TSs[i]}
		}
		store[pi.Proc] = mem
	}
	sim.store = store
	sim.now = img.Now
	sim.remap = nil
	if len(img.RemapFrom) > 0 {
		sim.remap = make(map[int]int, len(img.RemapFrom))
		for i, from := range img.RemapFrom {
			sim.remap[from] = img.RemapTo[i]
		}
	}
	sim.quar = nil
	if len(img.Quar) > 0 {
		sim.quar = make(map[int64]bool, len(img.Quar))
		for _, slot := range img.Quar {
			sim.quar[slot] = true
		}
	}
	sim.pending = append(sim.pending[:0], img.Pending...)
	if sim.view == nil {
		return nil
	}
	var vi viewSnapshot
	if err := dec.Decode(&vi); err != nil {
		return fmt.Errorf("core: decoding fault-view snapshot: %w", err)
	}
	if len(vi.NotifiedHost) != len(vi.NotifiedNotice) || len(vi.NotifiedHost) != len(vi.NotifiedStep) {
		return fmt.Errorf("core: snapshot notified queue is ragged")
	}
	if err := sim.view.Restore(vi.View, sim.faults); err != nil {
		return fmt.Errorf("core: restoring fault view: %w", err)
	}
	sim.notified = sim.notified[:0]
	for i, h := range vi.NotifiedHost {
		sim.notified = append(sim.notified, notifiedDeath{
			host: h, notice: vi.NotifiedNotice[i], diedStep: vi.NotifiedStep[i],
		})
	}
	return nil
}
