package core

// pktArena recycles the per-processor packet buffers ([][]pkt of length
// m.N) that every routing leg of a PRAM step needs: the simulator keeps
// a free list so steady-state simulation stops reallocating them (and
// their per-processor slices regrow to capacity once and stay).
//
// Contract: put takes back a buffer whose entries have all been
// truncated to length 0 by the consumer (mergeBack and the stage merge
// loops do this as they drain), so get can hand it out as-is.
type pktArena struct {
	free [][][]pkt
	n    int
}

func newPktArena(n int) *pktArena { return &pktArena{n: n} }

func (a *pktArena) get() [][]pkt {
	if len(a.free) == 0 {
		return make([][]pkt, a.n)
	}
	buf := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return buf
}

func (a *pktArena) put(buf [][]pkt) {
	if buf == nil {
		return
	}
	a.free = append(a.free, buf)
}
