//go:build race

package core

// raceEnabled reports whether this test binary runs under the race
// detector. The large-mesh capacity tests consult it: the sequential
// (Workers=1) churn round-trip has no goroutines for the detector to
// watch, and its ~20× race slowdown on a 10^5-processor mesh blows the
// per-package test timeout, so it runs only in the non-race suite. The
// concurrent code paths it covers are race-tested at small n by the
// identity matrices and at large n by TestLargeMeshCrossWidthIdentity.
const raceEnabled = true
