package core_test

import (
	"fmt"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
)

// ExampleSimulator_Step simulates one PRAM write step followed by a
// read step on a 9×9 mesh.
func ExampleSimulator_Step() {
	sim := core.MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{})

	sim.Step([]core.Op{{Origin: 0, Var: 42, IsWrite: true, Value: 7}})
	vals, st := sim.Step([]core.Op{{Origin: 80, Var: 42}})

	fmt.Println("read:", vals[0])
	fmt.Println("packets routed:", st.Packets)
	// Output:
	// read: 7
	// packets routed: 4
}

// ExampleSimulator_Step_batch shows a full-machine step: every
// processor writes a distinct variable in one PRAM step.
func ExampleSimulator_Step_batch() {
	sim := core.MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{})
	n := sim.Mesh().N

	ops := make([]core.Op, n)
	for i := range ops {
		ops[i] = core.Op{Origin: i, Var: i, IsWrite: true, Value: core.Word(i)}
	}
	_, st := sim.Step(ops)

	fmt.Println("ops:", n)
	fmt.Println("copies per variable accessed:", st.Packets/n)
	fmt.Println("level-1 page load within Theorem 3 bound:",
		st.PageLoadMax[1] <= st.PageLoadBound[1])
	// Output:
	// ops: 81
	// copies per variable accessed: 4
	// level-1 page load within Theorem 3 bound: true
}
