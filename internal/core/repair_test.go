package core

import (
	"bytes"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/hmos"
)

// schedSim builds the standard fault-test machine (side 9, q=3, d=3,
// k=2) driven by a dynamic schedule and the given repair policy.
func schedSim(t testing.TB, sch *fault.Schedule, pol RepairPolicy) *Simulator {
	t.Helper()
	s, err := New(hmos.Params{Side: 9, Q: 3, D: 3, K: 2},
		Config{Workers: 1, Schedule: sch, Repair: pol})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// killHostsSchedule kills the first n host modules of variable v, one
// per step starting at step 1, so the write at step 1 lands on a
// healthy machine and each later read sees one more death.
func killHostsSchedule(t testing.TB, v, n int) *fault.Schedule {
	t.Helper()
	probe := faultSim(t, nil)
	hosts := moduleHosts(probe, v)
	if len(hosts) < n {
		t.Fatalf("variable %d spans only %d modules, need %d", v, len(hosts), n)
	}
	sch := fault.NewSchedule(9)
	for i := 0; i < n; i++ {
		sch.At(int64(i+1), fault.EvKillModule, hosts[i])
	}
	return sch
}

// TestEagerRepairHealsSequentialDeaths is the acceptance scenario: the
// five modules hosting variable 0 die one per step. Under RepairEager
// every lost copy is rebuilt from the surviving majority before the
// next read, so all reads return the written value with zero
// unrecoverable ops. The identical timeline under RepairOff provably
// degrades once the fifth death breaks the majority.
func TestEagerRepairHealsSequentialDeaths(t *testing.T) {
	const val = 4242

	run := func(pol RepairPolicy) (*Simulator, []*fault.StepReport, []Word) {
		s := schedSim(t, killHostsSchedule(t, 0, 5), pol)
		if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: val}}); err != nil {
			t.Fatal(err)
		}
		if rep := s.LastReport(); rep.Degraded() {
			t.Fatalf("%v: write step before any death degraded: %v", pol, rep)
		}
		var reps []*fault.StepReport
		var vals []Word
		for step := 0; step < 6; step++ {
			res, _, err := s.StepChecked([]Op{{Origin: step, Var: 0}})
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, s.LastReport())
			vals = append(vals, res[0])
		}
		return s, reps, vals
	}

	// Eager: every read is correct and clean, even with all five
	// original hosts dead by the last two reads.
	s, reps, vals := run(RepairEager)
	for i, rep := range reps {
		if len(rep.Unrecoverable) != 0 {
			t.Errorf("eager read %d unrecoverable: %v", i, rep)
		}
		if vals[i] != val {
			t.Errorf("eager read %d = %d, want %d", i, vals[i], val)
		}
	}
	rs := s.RepairStats()
	if rs.ModuleDeaths != 5 {
		t.Errorf("eager ModuleDeaths = %d, want 5", rs.ModuleDeaths)
	}
	if rs.Scrubs == 0 || rs.Repaired == 0 {
		t.Errorf("eager repair never ran: %+v", rs)
	}
	if rs.Residual != 0 {
		t.Errorf("eager left %d residual copies with no link faults", rs.Residual)
	}
	if rs.Remapped == 0 {
		t.Errorf("eager never remapped a dead module: %+v", rs)
	}
	if rs.Steps <= 0 {
		t.Errorf("repair charged %d steps, want > 0", rs.Steps)
	}

	// Off: the same timeline degrades. The first four deaths are within
	// the majority margin (cf. TestMajorityToleratesDeadCopies); the
	// fifth breaks it and the read becomes unrecoverable.
	s, reps, vals = run(RepairOff)
	for i := 0; i < 4; i++ {
		if len(reps[i].Unrecoverable) != 0 {
			t.Errorf("off read %d (%d deaths) unrecoverable: %v", i, i+1, reps[i])
		}
		if vals[i] != val {
			t.Errorf("off read %d = %d, want %d", i, vals[i], val)
		}
	}
	for i := 4; i < 6; i++ {
		if got := reps[i].Unrecoverable; len(got) != 1 || got[0] != 0 {
			t.Errorf("off read %d (5 deaths) Unrecoverable = %v, want [0]", i, got)
		}
	}
	rs = s.RepairStats()
	if rs.ModuleDeaths != 5 || rs.Scrubs != 0 || rs.Repaired != 0 {
		t.Errorf("off must count deaths but never scrub: %+v", rs)
	}
}

// TestLazyRepairWaitsForTouch pins the Lazy policy contract: a death
// is recorded immediately, but the scrub runs only when a later step
// touches the degraded world — idle steps never repair.
func TestLazyRepairWaitsForTouch(t *testing.T) {
	const val = 99
	s := schedSim(t, killHostsSchedule(t, 0, 1), RepairLazy)
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: val}}); err != nil {
		t.Fatal(err)
	}
	// Idle step: the step-1 kill applies, but Lazy must not scrub yet.
	if _, _, err := s.StepChecked(nil); err != nil {
		t.Fatal(err)
	}
	rs := s.RepairStats()
	if rs.ModuleDeaths != 1 {
		t.Fatalf("death not applied on the idle step: %+v", rs)
	}
	if rs.Scrubs != 0 {
		t.Fatalf("lazy policy scrubbed on an idle step: %+v", rs)
	}
	// First touch triggers the scrub and the read is already healed.
	res, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s.LastReport(); len(rep.Unrecoverable) != 0 {
		t.Fatalf("lazy read after scrub unrecoverable: %v", rep)
	}
	if res[0] != val {
		t.Fatalf("lazy read = %d, want %d", res[0], val)
	}
	if rs = s.RepairStats(); rs.Scrubs != 1 {
		t.Fatalf("touch did not trigger exactly one scrub: %+v", rs)
	}
}

// TestSnapshotRoundTripUnderRepair checks that Save/Load carries the
// self-healing state: quarantined slots and the pending-death list
// before a scrub, and the spare-module remap after one. A restored
// image must neither serve a lost copy as fresh nor look for relocated
// copies at their original homes.
func TestSnapshotRoundTripUnderRepair(t *testing.T) {
	const val = 314
	s := schedSim(t, killHostsSchedule(t, 0, 1), RepairLazy)
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: val}}); err != nil {
		t.Fatal(err)
	}
	// Idle step applies the kill: quarantine and pending are live,
	// no scrub has run yet.
	if _, _, err := s.StepChecked(nil); err != nil {
		t.Fatal(err)
	}

	var preScrub bytes.Buffer
	if err := s.Save(&preScrub); err != nil {
		t.Fatal(err)
	}

	// Touch: the lazy scrub runs and relocates the dead module's copies.
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}}); err != nil {
		t.Fatal(err)
	}
	if s.RepairStats().Scrubs != 1 {
		t.Fatalf("expected one scrub, got %+v", s.RepairStats())
	}

	var postScrub bytes.Buffer
	if err := s.Save(&postScrub); err != nil {
		t.Fatal(err)
	}

	// Overwrite the variable, then roll back to the post-scrub image:
	// the read must resolve the relocated copies and see the old value.
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: 777}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(bytes.NewReader(postScrub.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != val || len(s.LastReport().Unrecoverable) != 0 {
		t.Fatalf("post-scrub restore: read = %d (%v), want %d clean",
			res[0], s.LastReport(), val)
	}

	// Roll back further, to before the scrub: quarantine and pending
	// must come back with the image, so the next touch re-heals from
	// scratch instead of trusting blank relocated copies.
	if err := s.Load(bytes.NewReader(preScrub.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, _, err = s.StepChecked([]Op{{Origin: 0, Var: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != val || len(s.LastReport().Unrecoverable) != 0 {
		t.Fatalf("pre-scrub restore: read = %d (%v), want %d clean",
			res[0], s.LastReport(), val)
	}
	if rs := s.RepairStats(); rs.Scrubs < 2 {
		t.Fatalf("restored pre-scrub image did not re-trigger the scrub: %+v", rs)
	}
}

// TestRepairNowRederivesPendingWork pins the rollback entry point used
// by the pram retry loop: RepairNow must find every dead module from
// the live fault map alone — not trust whatever pending list the
// current image happens to hold — and heal eagerly, without
// double-counting deaths that were already recorded.
func TestRepairNowRederivesPendingWork(t *testing.T) {
	const val = 2718
	s := schedSim(t, killHostsSchedule(t, 0, 2), RepairOff)
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: val}}); err != nil {
		t.Fatal(err)
	}
	// Three idle steps apply both kills; Off never scrubs.
	for i := 0; i < 3; i++ {
		if _, _, err := s.StepChecked(nil); err != nil {
			t.Fatal(err)
		}
	}
	rs := s.RepairStats()
	if rs.ModuleDeaths != 2 || rs.Scrubs != 0 {
		t.Fatalf("setup: %+v", rs)
	}
	if err := s.RepairNow(); err != nil {
		t.Fatal(err)
	}
	rs = s.RepairStats()
	if rs.Scrubs != 1 || rs.Repaired == 0 {
		t.Fatalf("RepairNow did not heal: %+v", rs)
	}
	if rs.ModuleDeaths != 2 {
		t.Fatalf("RepairNow double-counted deaths: %+v", rs)
	}
	res, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != val || len(s.LastReport().Unrecoverable) != 0 {
		t.Fatalf("read after RepairNow = %d (%v), want %d clean",
			res[0], s.LastReport(), val)
	}
}
