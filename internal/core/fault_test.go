package core

import (
	"math/rand"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/hmos"
)

// faultSim builds the small instance with the given fault map.
func faultSim(t testing.TB, f *fault.Map) *Simulator {
	t.Helper()
	s, err := New(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Workers: 1, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// moduleHosts returns the distinct modules holding copies of v.
func moduleHosts(s *Simulator, v int) []int {
	seen := map[int]bool{}
	var hosts []int
	for _, c := range s.Scheme().Copies(v, nil) {
		if !seen[c.Proc] {
			seen[c.Proc] = true
			hosts = append(hosts, c.Proc)
		}
	}
	return hosts
}

// TestMajorityToleratesDeadCopies is the paper's fault-tolerance claim
// at protocol level: with fewer dead copies than the majority threshold
// allows, every write remains readable with the correct value, and no
// step reports an unrecoverable variable. On the small instance killing
// the first 4 of variable 0's 9 host modules (one full level-1 subtree
// plus one leaf) stays under the threshold; companion variables are
// chosen with no copy on a dead module so they must stay clean too.
func TestMajorityToleratesDeadCopies(t *testing.T) {
	probe := faultSim(t, nil)
	dead := map[int]bool{}
	f := fault.NewMap(9)
	for _, h := range moduleHosts(probe, 0)[:4] {
		dead[h] = true
		f.KillModule(h)
	}
	vars := []int{0}
	for v := 1; len(vars) < 4 && v < probe.Scheme().Vars(); v++ {
		clean := true
		for _, h := range moduleHosts(probe, v) {
			if dead[h] {
				clean = false
				break
			}
		}
		if clean {
			vars = append(vars, v)
		}
	}
	s := faultSim(t, f)

	rng := rand.New(rand.NewSource(11))
	want := map[int]Word{}
	for round := 0; round < 4; round++ {
		ops := make([]Op, len(vars))
		for i, v := range vars {
			val := Word(rng.Int63n(1 << 30))
			ops[i] = Op{Origin: i * 3, Var: v, IsWrite: true, Value: val}
			want[v] = val
		}
		if _, _, err := s.StepChecked(ops); err != nil {
			t.Fatal(err)
		}
		if r := s.LastReport(); r.Degraded() {
			t.Fatalf("write round %d degraded: %s", round, r)
		}
		for i, v := range vars {
			ops[i] = Op{Origin: i*5 + 1, Var: v}
		}
		res, _, err := s.StepChecked(ops)
		if err != nil {
			t.Fatal(err)
		}
		if r := s.LastReport(); r.Degraded() {
			t.Fatalf("read round %d degraded: %s", round, r)
		}
		for i, v := range vars {
			if res[i] != want[v] {
				t.Fatalf("round %d: var %d = %d, want %d (dead copies corrupted the majority)",
					round, v, res[i], want[v])
			}
		}
	}
}

// TestMajorityThresholdBreaks pins the boundary: one more module death
// pushes the same variable over the threshold, and the step flags it
// unrecoverable instead of returning a wrong value silently.
func TestMajorityThresholdBreaks(t *testing.T) {
	probe := faultSim(t, nil)
	hosts := moduleHosts(probe, 0)
	if len(hosts) < 5 {
		t.Skipf("variable 0 spread over %d modules only", len(hosts))
	}
	f := fault.NewMap(9)
	for _, h := range hosts[:5] {
		f.KillModule(h)
	}
	s := faultSim(t, f)
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}}); err != nil {
		t.Fatal(err)
	}
	r := s.LastReport()
	if len(r.Unrecoverable) != 1 || r.Unrecoverable[0] != 0 {
		t.Fatalf("unrecoverable = %v, want [0]", r.Unrecoverable)
	}
}

// TestStepCheckedValidation: malformed steps come back as errors before
// any cost is charged; the Step wrapper keeps the historical panic.
func TestStepCheckedValidation(t *testing.T) {
	s := faultSim(t, nil)
	m := s.Scheme().Vars()
	cases := []struct {
		name string
		ops  []Op
	}{
		{"var out of range", []Op{{Origin: 0, Var: m}}},
		{"var negative", []Op{{Origin: 0, Var: -1, IsWrite: true}}},
		{"origin out of range", []Op{{Origin: s.Mesh().N, Var: 0}}},
		{"duplicate variable", []Op{{Origin: 0, Var: 3}, {Origin: 1, Var: 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := s.Now()
			if _, _, err := s.StepChecked(tc.ops); err == nil {
				t.Fatal("accepted")
			}
			if s.Now() != before {
				t.Error("rejected step still charged machine time")
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("Step did not panic on an invalid op")
		}
	}()
	s.Step([]Op{{Origin: 0, Var: -1}})
}
