// Package core implements the paper's primary contribution: the
// deterministic simulation of one n-processor PRAM step on an n-node
// mesh (§3). A step takes a batch of read/write requests for distinct
// shared variables, selects a minimal target set of copies per variable
// with CULLING, routes one request packet per selected copy through the
// nested submesh tessellations (stages k+1 … 1 of the access protocol),
// performs the timestamped accesses, routes the packets back along
// their recorded waypoints, and — for reads — returns the value with
// the most recent timestamp, which the hierarchical majority rule
// guarantees is the last value written.
//
// All step costs follow the machine model of DESIGN.md §6: sorting and
// ranking are charged their exact data-oblivious round counts, packet
// routing is simulated cycle by cycle, and phases that run in disjoint
// submeshes in parallel are charged the maximum over the submeshes.
//
// Accounting runs through the unified cost ledger (internal/trace):
// Step builds one span tree per PRAM step — culling, the protocol
// stages (each with charged sort/rank/forward leaves and observe-only
// per-submesh detail from internal/route), access, the return legs and
// the result combination — and charges every phase to the machine while
// the phase's span is active. StepStats is a typed view computed from
// that tree (StatsFromSpan); the machine's step counter and the tree's
// Total agree by construction.
package core

import (
	"fmt"
	"math/bits"
	"sort"

	"meshpram/internal/bitset"
	"meshpram/internal/culling"
	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/trace"
)

// Word is the PRAM machine word.
type Word = int64

// Op is one processor's shared-memory request in a PRAM step.
type Op struct {
	Origin  int  // requesting mesh processor
	Var     int  // shared variable index
	IsWrite bool // write (true) or read (false)
	Value   Word // value to write (ignored for reads)
}

// AccessPolicy selects how many copies an operation must reach.
type AccessPolicy int

const (
	// MajorityPolicy is the paper's scheme: culling selects a minimal
	// hierarchical target set per operation; timestamps arbitrate.
	MajorityPolicy AccessPolicy = iota
	// ReadOneWriteAllPolicy is the Mehlhorn–Vishkin [MV84] discipline:
	// a read touches a single copy, a write updates all q^k copies.
	// Reads are cheap but a write step degenerates to Θ(c·n) when the
	// adversary concentrates the copies — the weakness the majority
	// approach removes (experiment E13).
	ReadOneWriteAllPolicy
)

// Config selects simulator variants; the zero value is the paper's
// scheme.
type Config struct {
	// Policy selects the copy-access discipline (default Majority).
	Policy AccessPolicy
	// DisableCulling selects minimal target sets without congestion
	// control (ablation E2/E12).
	DisableCulling bool
	// DirectRouting bypasses the staged protocol and routes every copy
	// packet in one global (l1,l2)-routing (ablation E12).
	DirectRouting bool
	// UseNetworkSort runs the shearsort merge-split network round by
	// round instead of the result-equivalent fast path. Much slower in
	// wall-clock, identical in results and charged steps (validated by
	// TestNetworkSortEquivalence); useful when auditing the cost model.
	UseNetworkSort bool
	// Torus adds wrap-around links: routing phases that span the whole
	// machine (stage k+1 and the final return leg) take the shorter way
	// around each axis. Submesh-confined stages are unchanged — wrap
	// paths cannot stay inside a submesh (extension; experiment E16).
	Torus bool
	// Sort selects the sorting network: route.ShearSort (default, the
	// documented substitution) or route.RotateSort (O(√n), applies to
	// square regions with integer √side, falls back elsewhere;
	// experiment E17).
	Sort route.SortAlgo
	// Workers configures the mesh engine parallelism (0 = GOMAXPROCS,
	// ≤1 sequential).
	Workers int
	// EngineMode selects the routing engine's execution strategy
	// (route.ModeEvent by default): the discrete-event engine
	// fast-forwards contention-free stretches, bit-identical to the
	// cycle-stepped reference on every observable output — delivered
	// contents, charged cycles, lost counts, ledger spans, snapshots.
	// route.ModeCycle forces the reference loop (diagnostics,
	// equivalence tests).
	EngineMode route.EngineMode
	// Faults installs a static fault map (internal/fault): dead or slow
	// nodes, links and memory modules. Copy selection then avoids dead
	// modules, routing detours around dead links with a bounded retry
	// budget (extra cycles are charged to the ledger like any routing
	// cost), and Step reports per-op degradation through LastReport.
	// nil (the default) is a healthy machine on the unchanged fast
	// path; the map must be built for the same mesh side and is frozen
	// on installation (fault.Map.Freeze) — static faults stay static.
	Faults *fault.Map
	// Schedule drives dynamic faults: a deterministic, time-indexed
	// event list (internal/fault) applied to the simulator's live map
	// as the step clock advances. The simulator owns a private clone of
	// Faults (or a fresh empty map) as the evolving state, so the
	// caller's map is never mutated. An event at step t takes effect
	// before the (t+1)-th step; step-0 events are in effect from the
	// first step, making a step-0-only schedule equivalent to the same
	// static map. nil or empty keeps the static behavior bit-identical.
	Schedule *fault.Schedule
	// Repair selects the self-healing policy (see RepairPolicy): when
	// and whether the scrub pass rebuilds copies lost to module deaths
	// from the surviving majority. Default RepairOff.
	Repair RepairPolicy
	// FaultView selects how routers and the repair trigger learn about
	// faults. faultview.Global (default) is the omniscient model: every
	// hop consults the live fault map instantly — bit-identical to the
	// pre-faultview simulator. faultview.Local gives every node a
	// private view updated only by deterministic hop-neighbor gossip
	// (internal/faultview): schedule events are witnessed at the fault
	// site, propagate one hop per routing cycle (plus one round per step
	// boundary), routers detour on their possibly-stale beliefs with
	// bounded probe/backoff rediscovery, and a module death triggers a
	// scrub only once its death notice has reached the coordinator
	// (node 0). Ignored on fault-free configurations.
	FaultView faultview.Mode
	// FaultViewSeed seeds the local view's witness tie-breaks (see
	// faultview.New). Only meaningful with FaultView == faultview.Local.
	FaultViewSeed int64
}

// StepStats is the per-PRAM-step cost breakdown and diagnostics.
type StepStats struct {
	Packets int // copy request packets routed

	Culling int64 // copy selection (equation 2 shape)
	Sort    int64 // destination sorting, all stages
	Rank    int64 // ranking passes, all stages
	Forward int64 // origin→copy routing cycles, all stages
	Access  int64 // local memory accesses (max per processor)
	Return  int64 // copy→origin routing cycles, all stages
	Repair  int64 // self-healing scrub traffic charged inside the step

	// StageForward[s] is the forward routing cost charged for protocol
	// stage s (index K+1 … 1; index 0 unused).
	StageForward []int64

	// Delta[i] is the measured max packets per processor at the start
	// of stage i (the paper's δ_i), index K+1 … 1.
	Delta []int

	// PageLoadMax[i] / PageLoadBound[i]: Theorem 3 diagnostics per
	// level (1 … K) from culling.
	PageLoadMax   []int
	PageLoadBound []int
}

// Total returns the charged steps of the PRAM step.
func (st *StepStats) Total() int64 {
	return st.Culling + st.Sort + st.Rank + st.Forward + st.Access + st.Return + st.Repair
}

// StatsFromSpan computes the StepStats view from one PRAM-step span
// tree as built by Simulator.Step (K = the scheme's hierarchy depth).
// Phase fields come from the tree's charged phase totals; the per-stage
// arrays and Theorem-3 diagnostics come from span attributes. A nil
// span yields zeroed (but allocated) stats.
func StatsFromSpan(step *trace.Span, K int) *StepStats {
	st := &StepStats{
		StageForward:  make([]int64, K+2),
		Delta:         make([]int, K+2),
		PageLoadMax:   make([]int, K+1),
		PageLoadBound: make([]int, K+1),
	}
	if step == nil {
		return st
	}
	pt := step.PhaseTotals()
	st.Culling = pt[trace.PhaseCulling]
	st.Sort = pt[trace.PhaseSort]
	st.Rank = pt[trace.PhaseRank]
	st.Forward = pt[trace.PhaseForward]
	st.Access = pt[trace.PhaseAccess]
	st.Return = pt[trace.PhaseReturn]
	st.Repair = pt[trace.PhaseRepair]
	st.Packets = int(step.Packets())
	for _, c := range step.Children() {
		if s, ok := c.Attr("stage"); ok && int(s) < len(st.StageForward) {
			st.StageForward[s] = c.Total()
		}
		if di, ok := c.Attr("delta-index"); ok && int(di) < len(st.Delta) {
			if d, ok2 := c.Attr("delta"); ok2 {
				st.Delta[di] = int(d)
			}
		}
		if c.Name() == "culling" {
			for i := 1; i <= K; i++ {
				if v, ok := c.Attr(fmt.Sprintf("pageload-max-%d", i)); ok {
					st.PageLoadMax[i] = int(v)
				}
				if v, ok := c.Attr(fmt.Sprintf("pageload-bound-%d", i)); ok {
					st.PageLoadBound[i] = int(v)
				}
			}
		}
	}
	return st
}

// Simulator is a PRAM shared memory of hmos-organized replicated
// variables living on a mesh.
type Simulator struct {
	// Fields outside the snapshot image carry a detlint annotation: the
	// snapshotfields check requires every field to be either carried by
	// Save+Load or explicitly excused here, so forgetting to snapshot a
	// new mutable field fails the lint.
	S *hmos.Scheme
	//detlint:ignore snapshotfields static topology; Load validates against it, Save derives Params from S
	M *mesh.Machine
	//detlint:ignore snapshotfields immutable configuration, fixed at construction
	cfg Config

	//detlint:ignore snapshotfields accounting spine, deliberately outside the memory image
	ld *trace.Ledger // the step ledger, attached to M
	//detlint:ignore snapshotfields recycled scratch buffers; content-free between steps
	arena *pktArena // recycled per-processor packet buffers
	//detlint:ignore snapshotfields persistent router; queues empty between calls
	eng *route.Engine[pkt] // reused by every routeIn call
	//detlint:ignore snapshotfields persistent router for repair scrubs; queues empty between calls
	reng *route.Engine[rpkt]
	//detlint:ignore snapshotfields recycled scrub delivery buffer; truncated between scrubs
	rbuf [][]rpkt

	// st is the simulated shared memory: per-page cell slabs plus the
	// sorted foreign overflow for remap-relocated cells (store.go).
	// Lazily populated; an absent cell reads as (0, 0).
	st *slabStore

	now int64 // PRAM step counter (timestamp source)

	//detlint:ignore snapshotfields per-step degradation collector, reset every step
	rep *fault.StepReport // degradation collector of the running step
	//detlint:ignore snapshotfields diagnostic view of the last step only
	lastRep *fault.StepReport // report of the most recent step (nil = healthy cfg)

	// Dynamic faults and self-healing (repair.go). faults is the live
	// map: cfg.Faults itself in the static case, a private clone of it
	// when a schedule evolves the fault world. schedAt is the schedule
	// replay cursor (monotone; deliberately not part of snapshots).
	//detlint:ignore snapshotfields live fault world; rollback must not resurrect pre-fault hardware
	faults *fault.Map
	//detlint:ignore snapshotfields monotone replay cursor; a rollback must not replay applied events
	schedAt int
	//detlint:ignore snapshotfields per-retry toggle owned by the caller around each step
	hardened bool // select level-0 target sets (the retry path)

	remap   map[int]int // dead module → spare holding its relocated copies
	quar    *bitset.Set // copy slots with lost data; excluded until rebuilt (nil = empty)
	pending []int       // dead modules awaiting a scrub

	//detlint:ignore snapshotfields immutable sort-key geometry, derived from scheme and mesh at construction
	destBits, seqBits uint // packet sort-key field widths (see NewWithScheme)

	// Local fault knowledge (FaultView == faultview.Local only; nil in
	// global mode). view is the gossip state shared by both routing
	// engines; notified holds module deaths whose notice has not yet
	// reached the scrub coordinator. Both travel in snapshots (Local
	// images append a second gob value; see snapshot.go).
	view     *faultview.View
	notified []notifiedDeath
	//detlint:ignore snapshotfields lazily derived from the static scheme
	hostIdx [][]hostRef // original home proc → copies stored there (lazy)
	//detlint:ignore snapshotfields accumulated diagnostics; counters intentionally survive rollbacks
	rstats RepairStats
}

type cell struct {
	val Word
	ts  int64
}

// New creates a simulator for the given HMOS parameters.
func New(p hmos.Params, cfg Config) (*Simulator, error) {
	s, err := hmos.New(p)
	if err != nil {
		return nil, err
	}
	return NewWithScheme(s, cfg)
}

// NewWithScheme creates a simulator onto a pre-constructed HMOS
// scheme. Schemes are immutable after hmos.New and expensive to build
// (GF tables, BIBD graphs, tessellations), so warm pools construct one
// per parameter set and reuse it across simulators; the simulator gets
// its own mesh machine, ledger and engines, so no mutable state is
// shared between simulators built over one scheme.
func NewWithScheme(s *hmos.Scheme, cfg Config) (*Simulator, error) {
	p := s.Params
	m, err := mesh.New(p.Side)
	if err != nil {
		return nil, err
	}
	// Packet sort keys pack (child submesh, destination, sequence) into
	// one uint64 with widths sized to this instance; the historical
	// fixed layout capped meshes at 2^16 processors.
	destBits := uint(bits.Len64(uint64(m.N - 1)))
	maxSeq := int64(min(m.N, s.M)) * int64(s.Redundant) // ops hold distinct variables
	seqBits := uint(bits.Len64(uint64(maxSeq)))
	childMax := s.ModCount[p.K]
	for _, pp := range s.PagesPer[1:] {
		if pp > childMax {
			childMax = pp
		}
	}
	childBits := uint(bits.Len64(uint64(childMax - 1)))
	if childBits+destBits+seqBits > 63 { // keys must stay < route.MaxKey
		return nil, fmt.Errorf("core: mesh with %d processors needs %d sort-key bits (max 63)",
			m.N, childBits+destBits+seqBits)
	}
	if cfg.Faults != nil && cfg.Faults.Side() != p.Side {
		return nil, fmt.Errorf("core: fault map side %d does not match mesh side %d", cfg.Faults.Side(), p.Side)
	}
	if cfg.Repair < RepairOff || cfg.Repair > RepairLazy {
		return nil, fmt.Errorf("core: invalid repair policy %d", cfg.Repair)
	}
	if cfg.FaultView > faultview.Local {
		return nil, fmt.Errorf("core: invalid fault view %d", cfg.FaultView)
	}
	live := cfg.Faults
	if !cfg.Schedule.Empty() {
		if cfg.Schedule.Side() != p.Side {
			return nil, fmt.Errorf("core: fault schedule side %d does not match mesh side %d", cfg.Schedule.Side(), p.Side)
		}
		// The schedule evolves a private clone, so the caller's (frozen)
		// base map stays a faithful record of the initial epoch.
		if live == nil {
			live = fault.NewMap(p.Side)
		} else {
			live = live.Clone()
		}
	}
	m.SetFaults(live)
	if cfg.Workers != 1 {
		m.SetParallel(cfg.Workers)
	}
	ld := trace.New()
	m.AttachLedger(ld)
	sim := &Simulator{
		S:        s,
		M:        m,
		cfg:      cfg,
		ld:       ld,
		arena:    newPktArena(m.N),
		eng:      route.NewEngine[pkt](m),
		st:       newSlabStore(s),
		faults:   live,
		destBits: destBits,
		seqBits:  seqBits,
	}
	sim.eng.SetMode(cfg.EngineMode)
	if !cfg.Schedule.Empty() {
		sim.eng.SetHorizonSource(scheduleHorizon{sim})
	}
	if cfg.FaultView == faultview.Local && live != nil {
		// Beliefs boot knowing the static fault map (cfg.Faults); only
		// schedule events must be witnessed and disseminated. The view is
		// shared by the protocol and repair engines — they never route
		// concurrently, and gossip rounds advance with whichever is
		// running, so propagation latency tracks total routing cycles.
		sim.view = faultview.New(p.Side, cfg.Torus, cfg.Faults, cfg.FaultViewSeed)
		sim.eng.SetFaultView(sim.view)
	}
	return sim, nil
}

// FaultView returns the simulator's local fault view, or nil when the
// configuration runs the global (omniscient) model.
func (sim *Simulator) FaultView() *faultview.View { return sim.view }

// quarantined reports whether a copy slot's data is lost (awaiting a
// scrub rebuild). The quarantine bitset is lazily allocated by the
// first module death, so healthy runs never pay for it.
func (sim *Simulator) quarantined(slot int64) bool {
	return sim.quar != nil && sim.quar.Get(int(slot))
}

// quarCount returns the number of quarantined copy slots.
func (sim *Simulator) quarCount() int {
	if sim.quar == nil {
		return 0
	}
	return sim.quar.Count()
}

// ensureQuar allocates the quarantine bitset over the copy-slot space.
func (sim *Simulator) ensureQuar() {
	if sim.quar == nil {
		sim.quar = bitset.New(sim.S.Vars() * sim.S.Redundant)
	}
}

// MustNew is New but panics on error.
func MustNew(p hmos.Params, cfg Config) *Simulator {
	sim, err := New(p, cfg)
	if err != nil {
		panic(err)
	}
	return sim
}

// Scheme returns the underlying memory organization scheme.
func (sim *Simulator) Scheme() *hmos.Scheme { return sim.S }

// Mesh returns the machine; its step counter accumulates across Steps.
func (sim *Simulator) Mesh() *mesh.Machine { return sim.M }

// Ledger returns the simulator's cost ledger; Ledger().Last() is the
// span tree of the most recent Step.
func (sim *Simulator) Ledger() *trace.Ledger { return sim.ld }

// Now returns the PRAM step counter.
func (sim *Simulator) Now() int64 { return sim.now }

// pkt is a copy-request packet traveling through the protocol.
type pkt struct {
	op  int32 // index into the step's op slice
	seq int32 // unique per-step id; disambiguates sort keys so the
	// sorting network and its fast path order packets identically
	dest   int // processor storing the copy
	origin int
	slot   int64 // copy id in the destination module
	isW    bool
	val    Word  // write payload / read result
	ts     int64 // read result timestamp

	// wp are recorded waypoints: wp[0] = origin, wp[j] = position after
	// forward stage K+1−j+1 … ; used for the return journey.
	wp []int32
}

// Step simulates one PRAM step. Variables must be pairwise distinct
// across ops (combine concurrent requests upstream; see internal/pram).
// It returns, aligned with ops, the read results (writes yield their
// written value) and the cost breakdown. All charged steps are also
// added to the machine's counter. It panics on malformed requests;
// StepChecked is the error-returning variant new code should use.
func (sim *Simulator) Step(ops []Op) ([]Word, *StepStats) {
	res, st, err := sim.StepChecked(ops)
	if err != nil {
		panic("core: " + err.Error())
	}
	return res, st
}

// LastReport returns the degradation report of the most recent
// StepChecked/Step: what the step could not serve at full fidelity
// because of faults. nil when the simulator has no fault map (healthy
// configurations pay zero reporting overhead); a non-degraded report
// (Degraded() == false) when faults are configured but the step ran
// clean.
func (sim *Simulator) LastReport() *fault.StepReport { return sim.lastRep }

// StepChecked is Step with request validation: an out-of-range origin
// or variable, a duplicate variable, or an oversized batch yields an
// error (before any cost is charged) instead of a panic.
func (sim *Simulator) StepChecked(ops []Op) ([]Word, *StepStats, error) {
	s, m, ld := sim.S, sim.M, sim.ld
	K := s.K

	if len(ops) > m.N {
		return nil, nil, fmt.Errorf("%d ops exceed %d processors", len(ops), m.N)
	}
	seen := make(map[int]bool, len(ops))
	for i, op := range ops {
		if op.Origin < 0 || op.Origin >= m.N {
			return nil, nil, fmt.Errorf("op %d: origin %d out of range [0,%d)", i, op.Origin, m.N)
		}
		if op.Var < 0 || op.Var >= s.Vars() {
			return nil, nil, fmt.Errorf("op %d: variable %d out of range [0,%d)", i, op.Var, s.Vars())
		}
		if seen[op.Var] {
			return nil, nil, fmt.Errorf("op %d: duplicate variable %d in step", i, op.Var)
		}
		seen[op.Var] = true
	}

	sim.now++
	f := sim.faults
	if f != nil {
		sim.rep = &fault.StepReport{Ops: len(ops)}
	}
	defer func() {
		sim.lastRep = sim.rep
		sim.rep = nil
	}()

	if len(ops) == 0 {
		// Time still passes: due events apply (and an eager scrub runs
		// under its own root span) even on an empty step.
		if err := sim.advanceSchedule(); err != nil {
			return nil, nil, err
		}
		return nil, StatsFromSpan(nil, K), nil
	}

	step := ld.Begin("step", trace.PhaseOther)
	defer step.End()

	// Dynamic faults: apply the events due before this step. Under the
	// eager policy the scrub runs here, inside the step span, so its
	// repair traffic lands in this step's cost tree — and the masks
	// below already see the healed world.
	if err := sim.advanceSchedule(); err != nil {
		return nil, nil, err
	}

	// Availability masks: which copies of each op are on live modules.
	// A copy relocated by repair counts as live at its spare; a
	// quarantined copy (data lost, not yet rebuilt) counts as dead even
	// when its module is back up. Ops originating at dead processors
	// cannot issue at all — their mask is empty, which makes selection
	// report them unservable.
	var avail [][]bool
	if f != nil {
		avail = make([][]bool, len(ops))
		buildAvail := func() (bool, error) {
			degraded := false
			sim.rep.DeadOrigins = 0
			var cbuf []hmos.Copy
			for i, op := range ops {
				mask := make([]bool, s.Redundant)
				avail[i] = mask
				if f.NodeDead(op.Origin) {
					sim.rep.DeadOrigins++
					degraded = true
					continue
				}
				cbuf = s.Copies(op.Var, cbuf[:0])
				for leaf, c := range cbuf {
					host, err := sim.resolveProc(c.Proc)
					if err != nil {
						return false, err
					}
					mask[leaf] = !f.ModuleDead(host) && !sim.quarantined(c.Slot)
					if !mask[leaf] {
						degraded = true
					}
				}
			}
			return degraded, nil
		}
		// Lazy repair: the first step that touches a degraded variable
		// triggers the scrub, then re-reads the healed world.
		degraded, err := buildAvail()
		if err != nil {
			return nil, nil, err
		}
		if degraded && sim.cfg.Repair == RepairLazy && (len(sim.pending) > 0 || sim.quarCount() > 0) {
			if err := sim.scrub(); err != nil {
				return nil, nil, err
			}
			if _, err := buildAvail(); err != nil {
				return nil, nil, err
			}
		}
	}

	// 1. Copy selection.
	csp := ld.Begin("culling", trace.PhaseCulling)
	reqs := make([]culling.Request, len(ops))
	for i, op := range ops {
		reqs[i] = culling.Request{Origin: op.Origin, Var: op.Var}
	}
	var sel *culling.Result
	switch {
	case sim.cfg.Policy == ReadOneWriteAllPolicy:
		sel = sim.selectReadOneWriteAll(ops, avail)
	case sim.hardened:
		sel = culling.SelectHardenedAvail(s, m, reqs, avail)
	case sim.cfg.DisableCulling:
		sel = culling.SelectWithoutCullingAvail(s, m, reqs, avail)
	default:
		sel = culling.RunAvail(s, m, reqs, avail)
	}
	m.AddSteps(sel.Steps)
	for i := 1; i <= K; i++ {
		mx, bd := sel.MaxLoad(i)
		csp.SetAttr(fmt.Sprintf("pageload-max-%d", i), int64(mx))
		csp.SetAttr(fmt.Sprintf("pageload-bound-%d", i), int64(bd))
	}
	csp.End()

	// 2. Build packets at their origins.
	pkts := sim.arena.get()
	var seq int32
	for i, op := range ops {
		for _, c := range sel.Selected[i] {
			dest, err := sim.resolveProc(c.Proc)
			if err != nil {
				for p := range pkts {
					pkts[p] = pkts[p][:0] // honor the arena's truncated-entries contract
				}
				sim.arena.put(pkts)
				return nil, nil, err
			}
			pkts[op.Origin] = append(pkts[op.Origin], pkt{
				op:     int32(i),
				seq:    seq,
				dest:   dest,
				origin: op.Origin,
				slot:   int64(op.Var)*int64(s.Redundant) + int64(c.Leaf),
				isW:    op.IsWrite,
				val:    op.Value,
				wp:     []int32{int32(op.Origin)},
			})
			seq++
		}
	}
	step.AddPackets(int64(seq))

	// 3. Forward journey.
	if sim.cfg.DirectRouting {
		sim.routeDirect(pkts)
	} else {
		sim.routeStagedForward(pkts)
	}

	// 4. Access the copies.
	sim.access(pkts)

	// 5. Return journey along recorded waypoints.
	sim.routeReturn(pkts)

	// 6. Collect read results: most recent timestamp wins. Under faults,
	// also record which leaves made the round trip per op.
	results := make([]Word, len(ops))
	best := make([]int64, len(ops))
	for i := range best {
		best[i] = -1
	}
	var retMask [][]bool
	if f != nil {
		retMask = make([][]bool, len(ops))
	}
	maxHome := 0
	for _, op := range ops {
		home := pkts[op.Origin]
		if len(home) > maxHome {
			maxHome = len(home)
		}
	}
	for p := range pkts {
		for _, pk := range pkts[p] {
			if pk.origin != p {
				panic("core: packet did not return home")
			}
			if pk.ts > best[pk.op] {
				best[pk.op] = pk.ts
				results[pk.op] = pk.val
			}
			if retMask != nil {
				if retMask[pk.op] == nil {
					retMask[pk.op] = make([]bool, s.Redundant)
				}
				retMask[pk.op][int(pk.slot%int64(s.Redundant))] = true
			}
		}
		pkts[p] = pkts[p][:0]
	}
	sim.arena.put(pkts)
	for i, op := range ops {
		if op.IsWrite {
			results[i] = op.Value
		}
	}
	// Local result combination: one step per returned packet.
	combine := ld.Begin("combine", trace.PhaseAccess)
	m.AddSteps(int64(maxHome))
	combine.End()

	// 7. Degradation verdict per op (faulty configurations only). An op
	// is unrecoverable when its live copies held no target set at
	// selection time, or the copies that completed the round trip no
	// longer certify the access: under the majority rule the returned
	// leaves must still access the root of T_v; under ROWA a read needs
	// any returned copy but a write must have updated every selected
	// copy (a partial ROWA write would silently break later reads). The
	// round-trip criterion is conservative — a write whose packet
	// updated its copy but was lost on the way home counts as failed.
	if f != nil {
		bad := make(map[int]bool, len(sel.Unservable))
		for _, r := range sel.Unservable {
			bad[r] = true
		}
		for i := range ops {
			if bad[i] {
				continue
			}
			ok := false
			if mask := retMask[i]; mask != nil {
				if sim.cfg.Policy == ReadOneWriteAllPolicy {
					if ops[i].IsWrite {
						got := 0
						for _, on := range mask {
							if on {
								got++
							}
						}
						ok = got == len(sel.Selected[i])
					} else {
						ok = true
					}
				} else {
					ok = s.AccessedRoot(mask)
				}
			}
			if !ok {
				bad[i] = true
			}
		}
		for i := range ops {
			if bad[i] {
				sim.rep.Unrecoverable = append(sim.rep.Unrecoverable, i)
			}
		}
		sort.Ints(sim.rep.Unrecoverable)
		if sim.rep.Degraded() {
			step.SetAttr("dead-origins", int64(sim.rep.DeadOrigins))
			step.SetAttr("lost-packets", int64(sim.rep.LostPackets))
			step.SetAttr("unrecoverable", int64(len(sim.rep.Unrecoverable)))
		}
	}

	return results, StatsFromSpan(step, K), nil
}

// routeStagedForward runs protocol stages K+1 … 1 (§3.3): at stage
// s ≥ 2, within every level-s submesh (the full mesh for s = K+1),
// packets are sorted by destination child submesh, ranked, and routed
// to balanced positions inside the child; stage 1 delivers each packet
// to its final processor inside its level-1 submesh.
func (sim *Simulator) routeStagedForward(pkts [][]pkt) {
	s, m, ld := sim.S, sim.M, sim.ld
	K := s.K
	q := s.Q
	for stage := K + 1; stage >= 2; stage-- {
		pageN := sim.stagePages(stage)
		childParts := sim.childParts(stage)

		ssp := ld.BeginPar(fmt.Sprintf("stage-%d", stage), trace.PhaseOther)
		ssp.SetAttr("stage", int64(stage))
		ssp.SetAttr("delta-index", int64(stage))
		ssp.SetAttr("delta", int64(maxLoadAll(m, pkts)))

		var maxSort, maxRank, maxRoute int64
		for pi := 0; pi < pageN; pi++ {
			parent := sim.stageRegion(stage, pi)
			if regionEmpty(m, parent, pkts) {
				continue
			}
			// Sort by (child submesh, destination); seq makes the key
			// unique so network and fast sorts agree exactly.
			sorted, _, sortSteps := sim.sortSnake(parent, pkts, func(p pkt) uint64 {
				child := parent.SubRegionIndex(m, q, childParts, p.dest)
				return uint64(child)<<(sim.destBits+sim.seqBits) |
					uint64(p.dest)<<sim.seqBits | uint64(uint32(p.seq))
			})
			if sortSteps > maxSort {
				maxSort = sortSteps
			}
			// Rank within child groups; balanced intermediate position.
			rankSteps := 3*int64(parent.W-1) + int64(parent.H-1)
			if rankSteps > maxRank {
				maxRank = rankSteps
			}
			rsp := ld.Begin("rank", trace.PhaseRank)
			rsp.Observe(rankSteps)
			groupSeen := make(map[int]int, childParts)
			for i := 0; i < parent.Size(); i++ {
				p := parent.ProcAtSnake(m, i)
				for j := range sorted[p] {
					pk := &sorted[p][j]
					child := parent.SubRegionIndex(m, q, childParts, pk.dest)
					rank := groupSeen[child]
					groupSeen[child] = rank + 1
					reg := sim.childRegion(stage, pi, child)
					pk.ts = int64(reg.ProcAtSnake(m, rank%reg.Size())) // stash intermediate in ts
				}
			}
			rsp.End()
			routed, cycles := sim.routeIn(parent, stage == K+1, sorted, func(p pkt) int { return int(p.ts) })
			if cycles > maxRoute {
				maxRoute = cycles
			}
			// Record waypoints and merge back.
			for i := 0; i < parent.Size(); i++ {
				p := parent.ProcAtSnake(m, i)
				for _, pk := range routed[p] {
					pk.ts = 0
					pk.wp = append(pk.wp, int32(p))
					pkts[p] = append(pkts[p], pk)
				}
				routed[p] = routed[p][:0]
			}
			sim.arena.put(routed)
		}
		// The stage's charge: each phase pays the max over parents, since
		// all parent submeshes operate in parallel.
		lf := ld.Begin("sort", trace.PhaseSort)
		m.AddSteps(maxSort)
		lf.End()
		lf = ld.Begin("rank", trace.PhaseRank)
		m.AddSteps(maxRank)
		lf.End()
		lf = ld.Begin("forward", trace.PhaseForward)
		m.AddSteps(maxRoute)
		lf.End()
		ssp.End()
	}

	// Stage 1: deliver within level-1 submeshes.
	ssp := ld.BeginPar("stage-1", trace.PhaseOther)
	ssp.SetAttr("stage", 1)
	ssp.SetAttr("delta-index", 1)
	ssp.SetAttr("delta", int64(maxLoadAll(m, pkts)))
	var maxRoute int64
	for pg := 0; pg < sim.S.PageCount(1); pg++ {
		reg := sim.S.PageRegion(1, pg)
		if regionEmpty(m, reg, pkts) {
			continue
		}
		delivered, cycles := sim.routeIn(reg, false, pkts, func(p pkt) int { return p.dest })
		if cycles > maxRoute {
			maxRoute = cycles
		}
		mergeBack(m, reg, pkts, delivered)
		sim.arena.put(delivered)
	}
	lf := ld.Begin("forward", trace.PhaseForward)
	m.AddSteps(maxRoute)
	lf.End()
	ssp.End()
}

// routeDirect is the E12 ablation: one global sorted greedy routing.
func (sim *Simulator) routeDirect(pkts [][]pkt) {
	m, ld := sim.M, sim.ld
	full := m.Full()
	dsp := ld.BeginPar("direct", trace.PhaseOther)
	dsp.SetAttr("stage", 1)
	dsp.SetAttr("delta-index", int64(sim.S.K+1))
	dsp.SetAttr("delta", int64(maxLoadAll(m, pkts)))
	sorted, _, sortSteps := sim.sortSnake(full, pkts, func(p pkt) uint64 {
		return uint64(p.dest)<<sim.seqBits | uint64(uint32(p.seq))
	})
	lf := ld.Begin("sort", trace.PhaseSort)
	m.AddSteps(sortSteps)
	lf.End()
	delivered, cycles := sim.routeIn(full, true, sorted, func(p pkt) int { return p.dest })
	lf = ld.Begin("forward", trace.PhaseForward)
	m.AddSteps(cycles)
	lf.End()
	for p := range delivered {
		for _, pk := range delivered[p] {
			pk.wp = append(pk.wp, int32(pk.origin)) // direct return
			pkts[p] = append(pkts[p], pk)
		}
		delivered[p] = delivered[p][:0]
	}
	sim.arena.put(delivered)
	dsp.End()
}

// access performs the local read/write of every delivered packet. A
// sequential prepass allocates the slabs the writes will land in (and
// applies the rare foreign writes, which would shift the shared
// overflow); the parallel loop then only writes preallocated slab
// entries of distinct ranks — per-processor work touches disjoint
// state, so it runs through the machine's execution engine (parallel
// when Workers > 1). No slot is both read and written in one step
// (variables are pairwise distinct per step), so the reordering is
// unobservable.
func (sim *Simulator) access(pkts [][]pkt) {
	maxPer := 0
	for p := range pkts {
		if len(pkts[p]) > maxPer {
			maxPer = len(pkts[p])
		}
		for j := range pkts[p] {
			pk := &pkts[p][j]
			if !pk.isW {
				continue
			}
			page, _, home := sim.S.SlotPlace(pk.slot)
			if home == p {
				sim.st.allocPage(page)
			} else {
				sim.st.foreignSet(p, pk.slot, cell{val: pk.val, ts: sim.now})
			}
		}
	}
	asp := sim.ld.Begin("access", trace.PhaseAccess)
	asp.SetAttr("delta-index", 0)
	asp.SetAttr("delta", int64(maxPer))
	sim.M.ForEach(func(p int) {
		for j := range pkts[p] {
			pk := &pkts[p][j]
			if pk.dest != p {
				panic("core: packet accessed at wrong processor")
			}
			page, r1, home := sim.S.SlotPlace(pk.slot)
			if pk.isW {
				if home == p {
					sim.st.slabs[page][r1] = cell{val: pk.val, ts: sim.now}
				} // foreign writes were applied by the prepass
				pk.ts = sim.now
			} else {
				var c cell
				if home == p {
					if sl := sim.st.slabs[page]; sl != nil {
						c = sl[r1]
					}
				} else {
					c = sim.st.foreignGet(p, pk.slot)
				}
				pk.val, pk.ts = c.val, c.ts
			}
		}
	})
	sim.M.AddSteps(int64(maxPer))
	asp.End()
}

// routeReturn retraces the waypoints in reverse: leg ℓ (0-based) routes
// within the level-(ℓ+1) submeshes (full mesh on the last leg) from the
// current position to waypoint wp[len−1−ℓ].
func (sim *Simulator) routeReturn(pkts [][]pkt) {
	s, m, ld := sim.S, sim.M, sim.ld
	if sim.cfg.DirectRouting {
		lsp := ld.Begin("return-leg-0", trace.PhaseOther)
		delivered, cycles := sim.routeIn(m.Full(), true, pkts, func(p pkt) int { return p.origin })
		lf := ld.Begin("return", trace.PhaseReturn)
		m.AddSteps(cycles)
		lf.End()
		for p := range delivered {
			pkts[p] = append(pkts[p], delivered[p]...)
			delivered[p] = delivered[p][:0]
		}
		sim.arena.put(delivered)
		lsp.End()
		return
	}
	K := s.K
	for leg := 0; leg <= K; leg++ {
		pages := 1
		if leg < K {
			pages = s.PageCount(leg + 1)
		}
		lsp := ld.BeginPar(fmt.Sprintf("return-leg-%d", leg), trace.PhaseOther)
		target := func(p pkt) int { return int(p.wp[len(p.wp)-1-leg]) }
		var maxCycles int64
		for pg := 0; pg < pages; pg++ {
			reg := m.Full()
			if leg < K {
				reg = s.PageRegion(leg+1, pg)
			}
			if regionEmpty(m, reg, pkts) {
				continue
			}
			delivered, cycles := sim.routeIn(reg, leg == K, pkts, target)
			if cycles > maxCycles {
				maxCycles = cycles
			}
			mergeBack(m, reg, pkts, delivered)
			sim.arena.put(delivered)
		}
		lf := ld.Begin("return", trace.PhaseReturn)
		m.AddSteps(maxCycles)
		lf.End()
		lsp.End()
	}
}

// selectReadOneWriteAll implements the [MV84] discipline: writes select
// every copy, reads select the single copy indexed by Var mod q^k (a
// fixed load-spreading choice). No culling runs, so no congestion
// control applies — that is the point of the comparison. With an avail
// mask (faults), reads take the first live copy scanning from the fixed
// index and writes select the live copies; an op with no live copy is
// reported Unservable. A read served by any live copy is correct only
// because ROWA writes update every copy — a fact that itself breaks
// once a write skips dead copies, which is why ROWA writes that lose
// any copy are marked unrecoverable downstream.
func (sim *Simulator) selectReadOneWriteAll(ops []Op, avail [][]bool) *culling.Result {
	s := sim.S
	res := &culling.Result{
		Selected: make([][]culling.SelectedCopy, len(ops)),
		PageLoad: make([][]int, s.K+1),
		Bound:    make([]int, s.K+1),
	}
	for i := 1; i <= s.K; i++ {
		res.PageLoad[i] = make([]int, s.PageCount(i))
	}
	var buf []hmos.Copy
	for i, op := range ops {
		buf = s.Copies(op.Var, buf[:0])
		live := func(leaf int) bool {
			return avail == nil || avail[i] == nil || avail[i][leaf]
		}
		record := func(c hmos.Copy) {
			res.Selected[i] = append(res.Selected[i], culling.SelectedCopy{Leaf: c.Leaf, Proc: c.Proc})
			for lvl := 1; lvl <= s.K; lvl++ {
				res.PageLoad[lvl][s.PageIndex(lvl, c.Path)]++
			}
		}
		if op.IsWrite {
			any := false
			for leaf, c := range buf {
				if live(leaf) {
					record(c)
					any = true
				}
			}
			if !any {
				res.Unservable = append(res.Unservable, i)
			}
		} else {
			n := len(buf)
			found := false
			for j := 0; j < n; j++ {
				leaf := (op.Var + j) % n
				if live(leaf) {
					record(buf[leaf])
					found = true
					break
				}
			}
			if !found {
				res.Unservable = append(res.Unservable, i)
			}
		}
	}
	return res
}

// routeIn routes packets within a region, using torus links when the
// configuration enables them and the region spans the whole machine.
// All calls go through the simulator's persistent route.Engine, so
// queue and arrival storage is reused from step to step; the delivery
// buffer comes from the simulator's arena; the caller must return it
// via arena.put once its entries are drained and truncated.
func (sim *Simulator) routeIn(r mesh.Region, fullMachine bool, items [][]pkt, dest func(pkt) int) ([][]pkt, int64) {
	buf := sim.arena.get()
	torus := sim.cfg.Torus && fullMachine
	if sim.faults != nil {
		var delivered [][]pkt
		var cycles int64
		var lost int
		if torus {
			delivered, cycles, lost = sim.eng.RouteTorusFault(buf, items, dest)
		} else {
			delivered, cycles, lost = sim.eng.RouteFault(buf, r, items, dest)
		}
		if lost > 0 && sim.rep != nil {
			sim.rep.LostPackets += lost
		}
		return delivered, cycles
	}
	if torus {
		return sim.eng.RouteTorus(buf, items, dest)
	}
	return sim.eng.Route(buf, r, items, dest)
}

// sortSnake dispatches to the simulated sorting network or its
// result-equivalent fast path per configuration.
func (sim *Simulator) sortSnake(r mesh.Region, items [][]pkt, key func(pkt) uint64) ([][]pkt, int, int64) {
	if sim.cfg.Sort == route.RotateSort && route.CanRotateSort(r) {
		return route.SortSnakeWith(route.RotateSort, sim.M, r, items, key)
	}
	if sim.cfg.UseNetworkSort {
		return route.SortSnake(sim.M, r, items, key)
	}
	return route.SortSnakeFast(sim.M, r, items, key)
}

// stagePages returns the number of level-s submeshes (1 for s = K+1).
func (sim *Simulator) stagePages(stage int) int {
	if stage == sim.S.K+1 {
		return 1
	}
	return sim.S.PageCount(stage)
}

// stageRegion returns the pi-th level-s submesh (the full mesh for
// s = K+1), recomputed arithmetically — no tessellation is stored.
func (sim *Simulator) stageRegion(stage, pi int) mesh.Region {
	if stage == sim.S.K+1 {
		return sim.M.Full()
	}
	return sim.S.PageRegion(stage, pi)
}

// childParts returns the number of level-(s−1) submeshes inside a
// level-s submesh.
func (sim *Simulator) childParts(stage int) int {
	if stage == sim.S.K+1 {
		return sim.S.ModCount[sim.S.K]
	}
	return sim.S.PagesPer[stage]
}

// childRegion returns the c-th level-(s−1) submesh of the pi-th level-s
// parent, using the global tessellation nesting (child c of parent j is
// page j·parts + c of level s−1).
func (sim *Simulator) childRegion(stage, pi, c int) mesh.Region {
	return sim.S.PageRegion(stage-1, pi*sim.childParts(stage)+c)
}

func maxLoadAll(m *mesh.Machine, pkts [][]pkt) int {
	mx := 0
	for p := range pkts {
		if len(pkts[p]) > mx {
			mx = len(pkts[p])
		}
	}
	return mx
}

func regionEmpty(m *mesh.Machine, r mesh.Region, pkts [][]pkt) bool {
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			if len(pkts[m.IDOf(row, col)]) > 0 {
				return false
			}
		}
	}
	return true
}

// mergeBack drains delivered packets into pkts, truncating each drained
// entry so the delivery buffer can go straight back to the arena.
func mergeBack(m *mesh.Machine, r mesh.Region, pkts, delivered [][]pkt) {
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			pkts[p] = append(pkts[p], delivered[p]...)
			delivered[p] = delivered[p][:0]
		}
	}
}
