package core

// The compact shared-memory representation. The historical store was
// []map[int64]cell — one map header per processor, O(n) in the mesh
// size even when the memory held nothing, and ~100 bytes per resident
// cell. The HMOS memory is O(M·q^k) cells regardless of n, laid out by
// the scheme: every copy slot maps to (level-1 page, rank r1 among the
// page's p_1 copies, home processor) by O(k) arithmetic (SlotPlace).
// The slab store exploits that: cells live in flat per-page arrays
// indexed by r1, allocated lazily when a write first touches the page,
// so the resident footprint tracks the touched memory, not the mesh.
//
// Repair can relocate a dead module's copies to a spare processor; a
// cell hosted away from its scheme-computed home no longer has a slab
// position keyed by its physical location, so those (rare) cells live
// in a single sorted overflow list keyed by (processor, slot).
//
// The zero cell (ts == 0) means "never written": timestamps are the
// PRAM step clock, which starts at 1, so no written cell is zero.
// Explicitly storing a zero cell is therefore a logical no-op, which
// keeps snapshots canonical — they serialize nonzero cells only.

import (
	"sort"
	"unsafe"

	"meshpram/internal/hmos"
)

// fcell is one cell living away from its home processor (a copy
// relocated to a remap spare), in the sorted foreign overflow.
type fcell struct {
	proc int32
	slot int64
	val  Word
	ts   int64
}

// slabStore holds the simulated shared memory. Not safe for concurrent
// mutation; the parallel access path in access() only writes
// preallocated slab entries of distinct ranks (see the prepass there).
type slabStore struct {
	sch *hmos.Scheme
	// slabs[pg] holds the cells of level-1 page pg, indexed by copy
	// rank r1 ∈ [0, p_1); nil until a write touches the page.
	slabs [][]cell
	// foreign holds remap-relocated cells, sorted by (proc, slot).
	foreign []fcell
}

func newSlabStore(sch *hmos.Scheme) *slabStore {
	return &slabStore{sch: sch, slabs: make([][]cell, sch.PageCount(1))}
}

// allocPage materializes the slab of one level-1 page.
func (st *slabStore) allocPage(page int) {
	if st.slabs[page] == nil {
		st.slabs[page] = make([]cell, st.sch.PagesPer[1])
	}
}

// get returns the cell stored at processor p under the given slot id,
// or the zero cell when absent. Safe for concurrent readers.
func (st *slabStore) get(p int, slot int64) cell {
	page, r1, home := st.sch.SlotPlace(slot)
	if home == p {
		if sl := st.slabs[page]; sl != nil {
			return sl[r1]
		}
		return cell{}
	}
	return st.foreignGet(p, slot)
}

// set stores c at processor p under the given slot id. Sequential use
// only (it may allocate a slab or shift the foreign overflow).
func (st *slabStore) set(p int, slot int64, c cell) {
	page, r1, home := st.sch.SlotPlace(slot)
	if home == p {
		st.allocPage(page)
		st.slabs[page][r1] = c
		return
	}
	st.foreignSet(p, slot, c)
}

// foreignIdx locates (p, slot) in the foreign overflow: its index when
// present, else the insertion point.
func (st *slabStore) foreignIdx(p int, slot int64) (int, bool) {
	i := sort.Search(len(st.foreign), func(i int) bool {
		f := &st.foreign[i]
		return int(f.proc) > p || (int(f.proc) == p && f.slot >= slot)
	})
	if i < len(st.foreign) && int(st.foreign[i].proc) == p && st.foreign[i].slot == slot {
		return i, true
	}
	return i, false
}

func (st *slabStore) foreignGet(p int, slot int64) cell {
	if i, ok := st.foreignIdx(p, slot); ok {
		return cell{val: st.foreign[i].val, ts: st.foreign[i].ts}
	}
	return cell{}
}

func (st *slabStore) foreignSet(p int, slot int64, c cell) {
	i, ok := st.foreignIdx(p, slot)
	if ok {
		st.foreign[i].val, st.foreign[i].ts = c.val, c.ts
		return
	}
	st.foreign = append(st.foreign, fcell{})
	copy(st.foreign[i+1:], st.foreign[i:])
	st.foreign[i] = fcell{proc: int32(p), slot: slot, val: c.val, ts: c.ts}
}

// clearProc erases every cell physically resident on processor p (the
// data-loss fiction of a module death): p's share of its home page's
// slab plus any relocated cells parked at p.
func (st *slabStore) clearProc(p int) {
	m := st.sch.Mesh()
	pg := m.Full().SubRegionIndex(m, st.sch.Q, st.sch.PageCount(1), p)
	if sl := st.slabs[pg]; sl != nil {
		reg := st.sch.PageRegion(1, pg)
		t := st.sch.T[1]
		// Copies are placed at snake position r1 mod t_1, so p holds the
		// ranks congruent to its snake index (none if it is beyond t_1).
		if i := reg.SnakeIndex(m, p); i < t {
			for r1 := i; r1 < len(sl); r1 += t {
				sl[r1] = cell{}
			}
		}
	}
	if len(st.foreign) > 0 {
		kept := st.foreign[:0]
		for _, fc := range st.foreign {
			if int(fc.proc) != p {
				kept = append(kept, fc)
			}
		}
		st.foreign = kept
	}
}

// reset drops every cell (Load rebuilds from an image).
func (st *slabStore) reset() {
	st.slabs = make([][]cell, st.sch.PageCount(1))
	st.foreign = nil
}

// memBytes returns the resident heap bytes of the store.
func (st *slabStore) memBytes() int64 {
	b := int64(cap(st.slabs)) * 24
	for _, sl := range st.slabs {
		b += int64(cap(sl)) * int64(unsafe.Sizeof(cell{}))
	}
	b += int64(cap(st.foreign)) * int64(unsafe.Sizeof(fcell{}))
	return b
}
