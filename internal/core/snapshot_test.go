package core

import (
	"bytes"
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
)

func TestSnapshotRoundtrip(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim := MustNew(p, Config{})
	rng := rand.New(rand.NewSource(4))

	// Populate with a few write steps.
	written := map[int]Word{}
	for step := 0; step < 5; step++ {
		vars := rng.Perm(sim.S.Vars())[:30]
		ops := make([]Op, len(vars))
		for i, v := range vars {
			ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: Word(v*100 + step)}
			written[v] = ops[i].Value
		}
		sim.Step(ops)
	}

	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh simulator and verify every written variable.
	sim2 := MustNew(p, Config{})
	if err := sim2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if sim2.Now() != sim.Now() {
		t.Fatalf("clock %d, want %d", sim2.Now(), sim.Now())
	}
	for v, want := range written {
		res, _ := sim2.Step([]Op{{Origin: 0, Var: v}})
		if res[0] != want {
			t.Fatalf("restored var %d = %d, want %d", v, res[0], want)
		}
	}
}

func TestSnapshotContinuesConsistently(t *testing.T) {
	// Writes after a restore must still dominate pre-snapshot writes.
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim := MustNew(p, Config{})
	sim.Step([]Op{{Origin: 0, Var: 7, IsWrite: true, Value: 100}})
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sim2 := MustNew(p, Config{})
	if err := sim2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sim2.Step([]Op{{Origin: 1, Var: 7, IsWrite: true, Value: 200}})
	res, _ := sim2.Step([]Op{{Origin: 2, Var: 7}})
	if res[0] != 200 {
		t.Fatalf("post-restore write lost: read %d", res[0])
	}
}

func TestSnapshotParamMismatch(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustNew(hmos.Params{Side: 9, Q: 3, D: 4, K: 1}, Config{})
	if err := other.Load(&buf); err == nil {
		t.Fatal("mismatched params accepted")
	}
}

func TestSnapshotGarbage(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	if err := sim.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
