package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sort"
	"testing"

	"meshpram/internal/hmos"
)

func TestSnapshotRoundtrip(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim := MustNew(p, Config{})
	rng := rand.New(rand.NewSource(4))

	// Populate with a few write steps.
	written := map[int]Word{}
	for step := 0; step < 5; step++ {
		vars := rng.Perm(sim.S.Vars())[:30]
		ops := make([]Op, len(vars))
		for i, v := range vars {
			ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: Word(v*100 + step)}
			written[v] = ops[i].Value
		}
		sim.Step(ops)
	}

	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh simulator and verify every written variable.
	sim2 := MustNew(p, Config{})
	if err := sim2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if sim2.Now() != sim.Now() {
		t.Fatalf("clock %d, want %d", sim2.Now(), sim.Now())
	}
	for v, want := range written {
		res, _ := sim2.Step([]Op{{Origin: 0, Var: v}})
		if res[0] != want {
			t.Fatalf("restored var %d = %d, want %d", v, res[0], want)
		}
	}
}

func TestSnapshotContinuesConsistently(t *testing.T) {
	// Writes after a restore must still dominate pre-snapshot writes.
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim := MustNew(p, Config{})
	sim.Step([]Op{{Origin: 0, Var: 7, IsWrite: true, Value: 100}})
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sim2 := MustNew(p, Config{})
	if err := sim2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sim2.Step([]Op{{Origin: 1, Var: 7, IsWrite: true, Value: 200}})
	res, _ := sim2.Step([]Op{{Origin: 2, Var: 7}})
	if res[0] != 200 {
		t.Fatalf("post-restore write lost: read %d", res[0])
	}
}

func TestSnapshotParamMismatch(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustNew(hmos.Params{Side: 9, Q: 3, D: 4, K: 1}, Config{})
	if err := other.Load(&buf); err == nil {
		t.Fatal("mismatched params accepted")
	}
}

func TestSnapshotGarbage(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	if err := sim.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// legacySnapshot is the version-1 wire format (one gob value holding
// every processor's cells), kept here to pin backward compatibility:
// Load must keep accepting images written before the streaming format.
type legacySnapshot struct {
	Params    hmos.Params
	Now       int64
	Procs     []procImage
	RemapFrom []int
	RemapTo   []int
	Quar      []int64
	Pending   []int
}

func TestSnapshotLegacyV1Load(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim := MustNew(p, Config{})
	rng := rand.New(rand.NewSource(11))
	written := map[int]Word{}
	for step := 0; step < 3; step++ {
		vars := rng.Perm(sim.S.Vars())[:20]
		ops := make([]Op, len(vars))
		for i, v := range vars {
			ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: Word(v*10 + step)}
			written[v] = ops[i].Value
		}
		sim.Step(ops)
	}

	// Reconstruct the populated state in the legacy per-processor
	// layout, exactly as the old Save emitted it: processors ascending,
	// slots sorted within each.
	perProc := make(map[int]map[int64]cell)
	for pg, sl := range sim.st.slabs {
		for r1, c := range sl {
			if c.ts == 0 {
				continue
			}
			slot := sim.S.SlotOfPageRank(pg, r1)
			_, _, proc := sim.S.SlotPlace(slot)
			if perProc[proc] == nil {
				perProc[proc] = make(map[int64]cell)
			}
			perProc[proc][slot] = c
		}
	}
	img := legacySnapshot{Params: p, Now: sim.Now()}
	for proc := 0; proc < sim.M.N; proc++ {
		mem := perProc[proc]
		if len(mem) == 0 {
			continue
		}
		pi := procImage{Proc: proc}
		for slot := range mem {
			pi.Slots = append(pi.Slots, slot)
		}
		sort.Slice(pi.Slots, func(i, j int) bool { return pi.Slots[i] < pi.Slots[j] })
		for _, slot := range pi.Slots {
			pi.Vals = append(pi.Vals, mem[slot].val)
			pi.TSs = append(pi.TSs, mem[slot].ts)
		}
		img.Procs = append(img.Procs, pi)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		t.Fatal(err)
	}

	sim2 := MustNew(p, Config{})
	if err := sim2.Load(&buf); err != nil {
		t.Fatalf("loading legacy image: %v", err)
	}
	if sim2.Now() != sim.Now() {
		t.Fatalf("clock %d, want %d", sim2.Now(), sim.Now())
	}
	for v, want := range written {
		res, _ := sim2.Step([]Op{{Origin: 0, Var: v}})
		if res[0] != want {
			t.Fatalf("legacy-restored var %d = %d, want %d", v, res[0], want)
		}
	}
}

// TestSnapshotByteDeterminism pins the determinism contract: identical
// logical state yields byte-identical images, whether reached by
// stepping or by a save/load round trip.
func TestSnapshotByteDeterminism(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	run := func() []byte {
		sim := MustNew(p, Config{})
		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 4; step++ {
			vars := rng.Perm(sim.S.Vars())[:25]
			ops := make([]Op, len(vars))
			for i, v := range vars {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: step%2 == 0, Value: Word(v + step)}
			}
			sim.Step(ops)
		}
		var buf bytes.Buffer
		if err := sim.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different snapshot bytes")
	}
	sim := MustNew(p, Config{})
	if err := sim.Load(bytes.NewReader(a)); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := sim.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, again.Bytes()) {
		t.Fatal("save → load → save changed the image bytes")
	}
}
