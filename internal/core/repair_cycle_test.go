package core

import (
	"testing"

	"meshpram/internal/fault"
)

// TestRemapKillReviveKillSpare is the regression test for the remap
// cycle that used to hang resolveProc forever: kill module A (remap
// A→S), revive A, then kill the spare S. spareFor(S) must not pick the
// revived A — A still chains to S, so remap[S]=A would close the cycle
// A→S→A. The timeline must complete, the remap table must stay
// acyclic, and the surviving data must still be readable.
func TestRemapKillReviveKillSpare(t *testing.T) {
	// Phase 1: discover which spare S the scrub picks for host A.
	probe := faultSim(t, nil)
	hosts := moduleHosts(probe, 0)
	A := hosts[0]

	sch1 := fault.NewSchedule(9).At(1, fault.EvKillModule, A)
	s1 := schedSim(t, sch1, RepairEager)
	if _, _, err := s1.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: 7}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.StepChecked([]Op{{Origin: 0, Var: 0}}); err != nil {
		t.Fatal(err)
	}
	S, ok := s1.remap[A]
	if !ok {
		t.Fatalf("no remap established for %d: %v", A, s1.remap)
	}

	// Phase 2: full timeline. kill A @1, revive A @2, kill S @3.
	sch2 := fault.NewSchedule(9).
		At(1, fault.EvKillModule, A).
		At(2, fault.EvReviveModule, A).
		At(3, fault.EvKillModule, S)
	s2 := schedSim(t, sch2, RepairEager)
	var res []Word
	for step := 0; step < 5; step++ {
		op := Op{Origin: 0, Var: 0}
		if step == 0 {
			op.IsWrite, op.Value = true, 7
		}
		var err error
		res, _, err = s2.StepChecked([]Op{op})
		if err != nil {
			t.Fatalf("step %d: %v (remap=%v)", step, err, s2.remap)
		}
	}
	for from := range s2.remap {
		if _, err := s2.resolveProc(from); err != nil {
			t.Fatalf("remap table is cyclic after timeline: %v (%v)", err, s2.remap)
		}
	}
	if sp, ok := s2.remap[S]; ok && sp == A {
		t.Fatalf("spareFor picked the revived origin A=%d for S=%d: cycle %v", A, S, s2.remap)
	}
	if res[0] != 7 {
		t.Fatalf("final read = %d, want 7 (remap=%v, stats=%+v)", res[0], s2.remap, s2.RepairStats())
	}
}

// TestResolveProcCycleErrors pins the backstop beneath the spareFor
// invariant: if a cycle does end up in the table, resolveProc must
// return an error after a bounded walk instead of looping forever, and
// the error must surface through StepChecked.
func TestResolveProcCycleErrors(t *testing.T) {
	s := faultSim(t, fault.NewMap(9))
	// Close a cycle through a module that actually hosts copies of the
	// variable the step touches, so the step's resolution walks it.
	hosts := moduleHosts(s, 0)
	a, b := hosts[0], hosts[1]
	s.remap = map[int]int{a: b, b: a}
	if _, err := s.resolveProc(a); err == nil {
		t.Fatal("resolveProc on a cyclic table returned no error")
	}
	other := 0
	for other == a || other == b {
		other++
	}
	if p, err := s.resolveProc(other); err != nil || p != other {
		t.Fatalf("resolveProc(%d) = %d, %v; want identity, nil (unmapped module must resolve even beside a cycle)", other, p, err)
	}
	// remapReaches must also terminate on the cyclic table (and reject).
	if !s.remapReaches(a, 99) {
		t.Fatal("remapReaches on a cyclic chain must conservatively report true (reject the candidate)")
	}
	if _, _, err := s.StepChecked([]Op{{Origin: 0, Var: 0}}); err == nil {
		t.Fatal("StepChecked with a cyclic remap table returned no error")
	}
}
