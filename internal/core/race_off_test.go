//go:build !race

package core

// raceEnabled: see race_on_test.go.
const raceEnabled = false
