package core

import (
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/hmos"
)

// The slab store's resident footprint must track the touched memory
// (O(M·q^k)), not the mesh: the historical []map store paid one map
// header per processor, which at a million nodes dwarfed the data.

// TestStoreFootprintIndependentOfMeshSide runs the identical workload
// on two meshes of different sides (same memory parameters, so the
// same variables and pages) and requires byte-equal store footprints.
func TestStoreFootprintIndependentOfMeshSide(t *testing.T) {
	footprint := func(side int) int64 {
		sim := MustNew(hmos.Params{Side: side, Q: 3, D: 3, K: 2}, Config{})
		rng := rand.New(rand.NewSource(5))
		vars := rng.Perm(sim.S.Vars())[:40]
		ops := make([]Op, len(vars))
		for i, v := range vars {
			ops[i] = Op{Origin: i, Var: v, IsWrite: true, Value: Word(v)}
		}
		sim.Step(ops)
		return sim.MemReport().Store
	}
	small, big := footprint(9), footprint(27)
	if small != big {
		t.Fatalf("store footprint scales with mesh: %d bytes at side 9, %d at side 27", small, big)
	}
	if small == 0 {
		t.Fatal("store footprint zero after writes")
	}
}

// TestStoreLazyAllocation: an untouched simulator retains no slabs at
// all, and a single write allocates exactly the one page it lands in.
func TestStoreLazyAllocation(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{})
	count := func() int {
		n := 0
		for _, sl := range sim.st.slabs {
			if sl != nil {
				n++
			}
		}
		return n
	}
	if got := count(); got != 0 {
		t.Fatalf("%d slabs allocated before any write", got)
	}
	sim.Step([]Op{{Origin: 0, Var: 3, IsWrite: true, Value: 42}})
	// Allocation is write-driven: every allocated slab must hold a
	// written cell (the write's target set spans at least one page).
	got := count()
	if got == 0 {
		t.Fatal("write allocated no slabs")
	}
	for pg, sl := range sim.st.slabs {
		if sl != nil && !pageTouched(sl) {
			t.Fatalf("slab %d allocated without a written cell", pg)
		}
	}
	// Reads allocate nothing.
	before := count()
	sim.Step([]Op{{Origin: 1, Var: 5}})
	if got := count(); got != before {
		t.Fatalf("a read allocated slabs (%d → %d)", before, got)
	}
}

// TestCompactKeepsIdentity interleaves Compact with steps and demands
// results identical to an untouched twin, with the routing layer's
// retained bytes actually dropping to zero at the compaction point.
func TestCompactKeepsIdentity(t *testing.T) {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	mk := func() *Simulator { return MustNew(p, Config{}) }
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 6; step++ {
		vars := rng.Perm(a.S.Vars())[:30]
		ops := make([]Op, len(vars))
		for i, v := range vars {
			ops[i] = Op{Origin: rng.Intn(a.M.N), Var: v, IsWrite: step%2 == 0, Value: Word(v * step)}
		}
		ra, sa := a.Step(ops)
		rb, sb := b.Step(ops)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("step %d: results diverged after Compact", step)
		}
		if sa.Total() != sb.Total() {
			t.Fatalf("step %d: charged steps diverged (%d vs %d)", step, sa.Total(), sb.Total())
		}
		if step == 2 {
			if a.MemReport().Routing == 0 {
				t.Fatal("routing bytes zero before Compact; nothing to test")
			}
			a.Compact()
			if got := a.MemReport().Routing; got != 0 {
				t.Fatalf("routing bytes %d after Compact, want 0", got)
			}
		}
	}
}
