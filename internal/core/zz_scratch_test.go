package core

import (
	"testing"

	"meshpram/internal/fault"
)

// Scratch reproduction: kill A -> remap A->S; revive A; kill S ->
// spareFor(S) may pick the revived A, creating a remap cycle that
// hangs resolveProc.
func TestScratchRemapCycle(t *testing.T) {
	// Phase 1: discover which spare S the scrub picks for host A.
	probe := faultSim(t, nil)
	hosts := moduleHosts(probe, 0)
	A := hosts[0]

	sch1 := fault.NewSchedule(9).At(1, fault.EvKillModule, A)
	s1 := schedSim(t, sch1, RepairEager)
	if _, _, err := s1.StepChecked([]Op{{Origin: 0, Var: 0, IsWrite: true, Value: 7}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.StepChecked([]Op{{Origin: 0, Var: 0}}); err != nil {
		t.Fatal(err)
	}
	S, ok := s1.remap[A]
	if !ok {
		t.Fatalf("no remap established for %d: %v", A, s1.remap)
	}
	t.Logf("A=%d remapped to S=%d", A, S)

	// Phase 2: full timeline. kill A @1, revive A @2, kill S @3.
	sch2 := fault.NewSchedule(9).
		At(1, fault.EvKillModule, A).
		At(2, fault.EvReviveModule, A).
		At(3, fault.EvKillModule, S)
	s2 := schedSim(t, sch2, RepairEager)
	for step := 0; step < 5; step++ {
		op := Op{Origin: 0, Var: 0}
		if step == 0 {
			op.IsWrite, op.Value = true, 7
		}
		if _, _, err := s2.StepChecked([]Op{op}); err != nil {
			t.Fatal(err)
		}
		t.Logf("step %d done, remap=%v", step, s2.remap)
	}
}
