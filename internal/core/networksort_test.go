package core

import (
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
)

// The round-simulated sorting network and the fast path must be
// indistinguishable end-to-end: identical read results and identical
// charged step counts over a multi-step session.
func TestNetworkSortEquivalence(t *testing.T) {
	run := func(useNetwork bool) ([]Word, int64) {
		sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{UseNetworkSort: useNetwork})
		rng := rand.New(rand.NewSource(99))
		var out []Word
		for step := 0; step < 4; step++ {
			vars := rng.Perm(sim.S.Vars())[:60]
			ops := make([]Op, len(vars))
			for i, v := range vars {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: i%3 != 0, Value: Word(v + step)}
			}
			res, _ := sim.Step(ops)
			out = append(out, res...)
		}
		return out, sim.M.Steps()
	}
	fastRes, fastSteps := run(false)
	netRes, netSteps := run(true)
	if fastSteps != netSteps {
		t.Fatalf("step counts differ: fast %d, network %d", fastSteps, netSteps)
	}
	if len(fastRes) != len(netRes) {
		t.Fatalf("result lengths differ")
	}
	for i := range fastRes {
		if fastRes[i] != netRes[i] {
			t.Fatalf("results differ at %d: %d vs %d", i, fastRes[i], netRes[i])
		}
	}
}
