package core

import (
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
)

// The MV84 read-one/write-all policy must also behave as an ideal
// shared memory (all copies are always current).
func TestReadOneWriteAllConsistency(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Policy: ReadOneWriteAllPolicy})
	rng := rand.New(rand.NewSource(12))
	ideal := map[int]Word{}
	for step := 0; step < 20; step++ {
		vars := rng.Perm(sim.S.Vars())[:30]
		ops := make([]Op, len(vars))
		expect := make([]Word, len(vars))
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				val := Word(rng.Intn(1 << 20))
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: val}
				expect[i] = val
			} else {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v}
				expect[i] = ideal[v]
			}
		}
		res, _ := sim.Step(ops)
		for i := range ops {
			if res[i] != expect[i] {
				t.Fatalf("step %d op %d: got %d want %d", step, i, res[i], expect[i])
			}
			if ops[i].IsWrite {
				ideal[ops[i].Var] = ops[i].Value
			}
		}
	}
}

// Reads under MV84 route one packet per op; writes route q^k.
func TestReadOneWriteAllPacketCounts(t *testing.T) {
	sim := MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, Config{Policy: ReadOneWriteAllPolicy})
	reads := make([]Op, 20)
	for i := range reads {
		reads[i] = Op{Origin: i, Var: i}
	}
	_, st := sim.Step(reads)
	if st.Packets != 20 {
		t.Fatalf("read step routed %d packets, want 20", st.Packets)
	}
	if st.Culling != 0 {
		t.Fatalf("MV84 policy charged culling steps: %d", st.Culling)
	}
	writes := make([]Op, 20)
	for i := range writes {
		writes[i] = Op{Origin: i, Var: i, IsWrite: true, Value: Word(i)}
	}
	_, st = sim.Step(writes)
	if st.Packets != 20*sim.S.Redundant {
		t.Fatalf("write step routed %d packets, want %d", st.Packets, 20*sim.S.Redundant)
	}
}

// The MV84 weakness: a write burst to module-hot variables loads one
// level-1 page with one packet per (variable, copy-in-module) while the
// majority policy's culled selection can avoid the hot module entirely
// for most variables. Compare the measured level-1 page loads.
func TestReadOneWriteAllHotModuleLoads(t *testing.T) {
	params := hmos.Params{Side: 27, Q: 3, D: 4, K: 2}
	mv := MustNew(params, Config{Policy: ReadOneWriteAllPolicy})
	paper := MustNew(params, Config{})

	g := mv.S.Graphs[0]
	hot := 3
	count := g.Degree(hot)
	ops := make([]Op, count)
	for r := 0; r < count; r++ {
		ops[r] = Op{Origin: r, Var: g.InputAtRank(hot, r), IsWrite: true, Value: Word(r)}
	}
	_, stMV := mv.Step(ops)
	_, stP := paper.Step(append([]Op(nil), ops...))
	if stMV.PageLoadMax[1] < count {
		t.Fatalf("MV84 hot page load %d, want ≥ %d (every var writes its copy there)",
			stMV.PageLoadMax[1], count)
	}
	if stP.PageLoadMax[1] > stMV.PageLoadMax[1] {
		t.Fatalf("majority policy page load %d exceeds MV84's %d on MV84's worst case",
			stP.PageLoadMax[1], stMV.PageLoadMax[1])
	}
}
