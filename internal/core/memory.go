package core

import "unsafe"

// Memory accounting and compaction. A long-lived simulator retains
// recycled buffers (the packet arena, the routing engines' slabs and
// queues) sized by its high-water traffic; Compact drops them all, and
// MemReport breaks the resident footprint down by layer so experiments
// can attribute bytes/node to the scheme, the store, the fault sets
// and the gossip log (the SCALE experiment and mosinspect -mem).

// MemReport is a per-layer breakdown of the simulator's resident heap
// bytes. It counts retained capacities, not Go runtime overheads, so
// it is a deterministic lower bound suitable for regression gating.
type MemReport struct {
	Scheme    int64 // HMOS tables: the O(1) implicit memory map
	Store     int64 // shared-memory cells: page slabs + foreign overflow
	FaultSets int64 // fault map bitsets, quarantine, remap/pending/hostIdx
	ViewLog   int64 // gossip state of the local fault view
	Routing   int64 // routing engines and packet arena buffers
}

// Total sums every layer.
func (r MemReport) Total() int64 {
	return r.Scheme + r.Store + r.FaultSets + r.ViewLog + r.Routing
}

// MemReport measures the simulator's current retained footprint.
func (sim *Simulator) MemReport() MemReport {
	var r MemReport
	r.Scheme = sim.S.MemBytes()
	r.Store = sim.st.memBytes()
	if sim.faults != nil {
		r.FaultSets += sim.faults.MemBytes()
	}
	if sim.quar != nil {
		r.FaultSets += sim.quar.MemBytes()
	}
	r.FaultSets += int64(len(sim.remap)) * 24
	r.FaultSets += int64(cap(sim.pending)) * 8
	r.FaultSets += int64(cap(sim.notified)) * int64(unsafe.Sizeof(notifiedDeath{}))
	if sim.hostIdx != nil {
		r.FaultSets += int64(cap(sim.hostIdx)) * 24
		for _, refs := range sim.hostIdx {
			r.FaultSets += int64(cap(refs)) * int64(unsafe.Sizeof(hostRef{}))
		}
	}
	if sim.view != nil {
		r.ViewLog = sim.view.MemBytes()
	}
	r.Routing = sim.eng.MemBytes() + sim.arena.memBytes()
	if sim.reng != nil {
		r.Routing += sim.reng.MemBytes()
	}
	for _, b := range sim.rbuf {
		r.Routing += int64(cap(b)) * int64(unsafe.Sizeof(rpkt{}))
	}
	r.Routing += int64(cap(sim.rbuf)) * 24
	return r
}

// memBytes sums the arena's free-listed buffers (capacities).
func (a *pktArena) memBytes() int64 {
	var b int64
	for _, buf := range a.free {
		b += int64(cap(buf)) * 24
		for _, e := range buf {
			b += int64(cap(e)) * int64(unsafe.Sizeof(pkt{}))
		}
	}
	return b
}

// LegacyStoreMemBytes models the resident bytes the pre-slab store
// layout ([]map[int64]cell, one map header per processor) would hold
// for the current logical state: 8 bytes of pointer-slice per
// processor, and for every module with resident cells a 48-byte map
// header plus 32 bytes per cell (Go map bucket storage for an
// int64→16-byte entry at typical load). The figure is computed, not
// sampled from the allocator, so the SCALE baseline it feeds is
// reproducible run to run.
func (sim *Simulator) LegacyStoreMemBytes() int64 {
	var cells int64
	touched := make(map[int]struct{})
	for pg, sl := range sim.st.slabs {
		for r1, c := range sl {
			if c.ts == 0 {
				continue
			}
			_, _, proc := sim.S.SlotPlace(sim.S.SlotOfPageRank(pg, r1))
			touched[proc] = struct{}{}
			cells++
		}
	}
	for i := range sim.st.foreign {
		if sim.st.foreign[i].ts != 0 {
			touched[int(sim.st.foreign[i].proc)] = struct{}{}
			cells++
		}
	}
	return int64(sim.M.N)*8 + int64(len(touched))*48 + cells*32
}

// Compact drops every recycled buffer the simulator retains — the
// packet arena's free list, the protocol engine's slabs and queues,
// and the repair engine outright — returning the simulator to a
// compact quiescent state. Everything regrows lazily on the next step,
// so Compact is safe between steps and changes no observable behavior;
// call it before checkpointing or measuring resident memory.
func (sim *Simulator) Compact() {
	sim.arena.free = nil
	sim.eng.Release()
	sim.reng = nil
	sim.rbuf = nil
}
