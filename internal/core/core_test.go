package core

import (
	"math/rand"
	"testing"

	"meshpram/internal/hmos"
)

var smallParams = hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
var midParams = hmos.Params{Side: 27, Q: 3, D: 4, K: 2}

func TestWriteThenRead(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	n := sim.M.N
	// Write distinct values to the first n variables.
	writes := make([]Op, n)
	for i := range writes {
		writes[i] = Op{Origin: i, Var: i, IsWrite: true, Value: Word(1000 + i)}
	}
	res, st := sim.Step(writes)
	if st.Total() <= 0 {
		t.Fatal("write step charged no steps")
	}
	for i, v := range res {
		if v != Word(1000+i) {
			t.Fatalf("write %d echoed %d", i, v)
		}
	}
	// Read them back from different origins.
	reads := make([]Op, n)
	for i := range reads {
		reads[i] = Op{Origin: (i + 17) % n, Var: i}
	}
	res, _ = sim.Step(reads)
	for i, v := range res {
		if v != Word(1000+i) {
			t.Fatalf("read of var %d returned %d, want %d", i, v, 1000+i)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	res, _ := sim.Step([]Op{{Origin: 0, Var: 42}, {Origin: 1, Var: 77}})
	for i, v := range res {
		if v != 0 {
			t.Fatalf("unwritten read %d returned %d", i, v)
		}
	}
}

func TestOverwriteVisibility(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	v := 13
	for round := 1; round <= 5; round++ {
		sim.Step([]Op{{Origin: round % sim.M.N, Var: v, IsWrite: true, Value: Word(round * 11)}})
		res, _ := sim.Step([]Op{{Origin: (round * 7) % sim.M.N, Var: v}})
		if res[0] != Word(round*11) {
			t.Fatalf("round %d: read %d, want %d", round, res[0], round*11)
		}
	}
}

// The consistency property test (E11): arbitrary interleaved read/write
// batches must behave exactly like an ideal shared memory.
func TestConsistencyRandomTraffic(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	rng := rand.New(rand.NewSource(77))
	ideal := map[int]Word{}
	n := sim.M.N
	for step := 0; step < 30; step++ {
		batch := rng.Intn(n) + 1
		vars := rng.Perm(sim.S.Vars())[:batch]
		ops := make([]Op, batch)
		expect := make([]Word, batch)
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				val := Word(rng.Intn(1 << 30))
				ops[i] = Op{Origin: rng.Intn(n), Var: v, IsWrite: true, Value: val}
				expect[i] = val
			} else {
				ops[i] = Op{Origin: rng.Intn(n), Var: v}
				expect[i] = ideal[v]
			}
		}
		res, st := sim.Step(ops)
		for i := range ops {
			if res[i] != expect[i] {
				t.Fatalf("step %d op %d (var %d write=%v): got %d want %d",
					step, i, ops[i].Var, ops[i].IsWrite, res[i], expect[i])
			}
			if ops[i].IsWrite {
				ideal[ops[i].Var] = ops[i].Value
			}
		}
		if st.Packets <= 0 {
			t.Fatal("no packets routed")
		}
	}
}

// Consistency must hold in the ablation modes too: they change routing
// and congestion control, not the quorum rule.
func TestConsistencyAblations(t *testing.T) {
	for _, cfg := range []Config{{DisableCulling: true}, {DirectRouting: true}, {DisableCulling: true, DirectRouting: true}} {
		sim := MustNew(smallParams, cfg)
		rng := rand.New(rand.NewSource(5))
		ideal := map[int]Word{}
		for step := 0; step < 10; step++ {
			vars := rng.Perm(sim.S.Vars())[:20]
			ops := make([]Op, len(vars))
			expect := make([]Word, len(vars))
			for i, v := range vars {
				if rng.Intn(2) == 0 {
					val := Word(rng.Intn(1 << 20))
					ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: true, Value: val}
					expect[i] = val
				} else {
					ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v}
					expect[i] = ideal[v]
				}
			}
			res, _ := sim.Step(ops)
			for i := range ops {
				if res[i] != expect[i] {
					t.Fatalf("cfg %+v step %d op %d: got %d want %d", cfg, step, i, res[i], expect[i])
				}
				if ops[i].IsWrite {
					ideal[ops[i].Var] = ops[i].Value
				}
			}
		}
	}
}

func TestStepStatsBreakdown(t *testing.T) {
	sim := MustNew(midParams, Config{})
	rng := rand.New(rand.NewSource(2))
	n := sim.M.N
	ops := make([]Op, n)
	perm := rng.Perm(sim.S.Vars())
	for i := range ops {
		ops[i] = Op{Origin: i, Var: perm[i], IsWrite: i%2 == 0, Value: Word(i)}
	}
	before := sim.M.Steps()
	_, st := sim.Step(ops)
	if st.Culling <= 0 || st.Sort <= 0 || st.Forward <= 0 || st.Access <= 0 || st.Return <= 0 {
		t.Fatalf("incomplete breakdown: %+v", st)
	}
	if sim.M.Steps()-before != st.Total() {
		t.Fatalf("machine charged %d, stats say %d", sim.M.Steps()-before, st.Total())
	}
	// Theorem 3 diagnostics must be populated and within bounds.
	for i := 1; i <= sim.S.K; i++ {
		if st.PageLoadBound[i] <= 0 {
			t.Fatalf("level %d bound missing", i)
		}
		if st.PageLoadMax[i] > st.PageLoadBound[i] {
			t.Fatalf("level %d load %d exceeds bound %d", i, st.PageLoadMax[i], st.PageLoadBound[i])
		}
	}
	// Packets: n ops × minimal plain target set size.
	want := n * hmos.MinTargetSetSize(sim.S.Q, sim.S.K, sim.S.K)
	if st.Packets != want {
		t.Fatalf("packets %d, want %d", st.Packets, want)
	}
	// Deltas measured for each stage.
	for s := 1; s <= sim.S.K+1; s++ {
		if st.Delta[s] <= 0 {
			t.Fatalf("delta for stage %d missing", s)
		}
	}
}

func TestEmptyStep(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	res, st := sim.Step(nil)
	if res != nil || st.Total() != 0 {
		t.Fatal("empty step did something")
	}
}

func TestTooManyOpsPanics(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	ops := make([]Op, sim.M.N+1)
	for i := range ops {
		ops[i] = Op{Origin: i % sim.M.N, Var: i}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch did not panic")
		}
	}()
	sim.Step(ops)
}

// Writes must survive an unrelated flood of writes to other variables
// (quorum intersection across different request sets).
func TestWriteSurvivesFlood(t *testing.T) {
	sim := MustNew(smallParams, Config{})
	sim.Step([]Op{{Origin: 0, Var: 99, IsWrite: true, Value: 4242}})
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 5; round++ {
		vars := rng.Perm(sim.S.Vars())
		ops := make([]Op, 0, sim.M.N)
		for _, v := range vars[:sim.M.N] {
			if v == 99 {
				continue
			}
			ops = append(ops, Op{Origin: len(ops), Var: v, IsWrite: true, Value: Word(v)})
		}
		sim.Step(ops)
	}
	res, _ := sim.Step([]Op{{Origin: 5, Var: 99}})
	if res[0] != 4242 {
		t.Fatalf("flooded read returned %d", res[0])
	}
}

// Parallel engine must give identical results and step counts.
func TestParallelEngineEquivalence(t *testing.T) {
	mk := func(workers int) ([]Word, int64) {
		sim := MustNew(smallParams, Config{Workers: workers})
		rng := rand.New(rand.NewSource(11))
		var last []Word
		for step := 0; step < 5; step++ {
			vars := rng.Perm(sim.S.Vars())[:40]
			ops := make([]Op, len(vars))
			for i, v := range vars {
				ops[i] = Op{Origin: rng.Intn(sim.M.N), Var: v, IsWrite: i%3 == 0, Value: Word(v * 2)}
			}
			last, _ = sim.Step(ops)
		}
		return last, sim.M.Steps()
	}
	seqRes, seqSteps := mk(1)
	parRes, parSteps := mk(8)
	if seqSteps != parSteps {
		t.Fatalf("step counts differ: %d vs %d", seqSteps, parSteps)
	}
	for i := range seqRes {
		if seqRes[i] != parRes[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func BenchmarkStepFullMachine(b *testing.B) {
	sim := MustNew(midParams, Config{})
	rng := rand.New(rand.NewSource(1))
	n := sim.M.N
	perm := rng.Perm(sim.S.Vars())
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Origin: i, Var: perm[i], IsWrite: i%2 == 0, Value: Word(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(ops)
	}
}
