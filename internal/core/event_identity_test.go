package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
	"meshpram/internal/route"
)

// The event-skip routing engine must be invisible at the protocol
// level: a full simulation run under route.ModeEvent produces, step by
// step, the same read results, the same StepStats, the same fault
// reports and — after the run — the same snapshot bytes as the
// cycle-stepped reference. This is the end-to-end half of the
// bit-identity contract (the packet-level half lives in
// internal/route/event_identity_test.go).

// eventMatrixTrace is everything observable from one simulation run.
type eventMatrixTrace struct {
	words    [][]Word
	stats    []*StepStats
	reports  []string
	snapshot []byte
}

// runEventMatrix executes a seeded mixed read/write workload and
// captures every observable output.
func runEventMatrix(t *testing.T, mode route.EngineMode, torus bool, fm *fault.Map, sch *fault.Schedule, workers int) eventMatrixTrace {
	return runViewMatrix(t, mode, faultview.Global, torus, fm, sch, workers)
}

// runViewMatrix is runEventMatrix with an explicit fault-view mode.
func runViewMatrix(t *testing.T, mode route.EngineMode, view faultview.Mode, torus bool, fm *fault.Map, sch *fault.Schedule, workers int) eventMatrixTrace {
	t.Helper()
	cfg := Config{
		Workers:       workers,
		Torus:         torus,
		EngineMode:    mode,
		Schedule:      sch,
		Repair:        RepairEager,
		FaultView:     view,
		FaultViewSeed: 1234,
	}
	if fm != nil {
		cfg.Faults = fm.Clone()
	}
	s, err := New(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nv := s.Scheme().Vars()
	rng := rand.New(rand.NewSource(99))
	var tr eventMatrixTrace
	for step := 0; step < 8; step++ {
		ops := make([]Op, 6)
		vars := rng.Perm(nv)[:len(ops)]
		for i := range ops {
			ops[i] = Op{Origin: rng.Intn(s.M.N), Var: vars[i]}
			if rng.Intn(2) == 0 {
				ops[i].IsWrite = true
				ops[i].Value = Word(rng.Intn(1 << 20))
			}
		}
		words, stats, err := s.StepChecked(ops)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		tr.words = append(tr.words, append([]Word(nil), words...))
		tr.stats = append(tr.stats, stats)
		tr.reports = append(tr.reports, s.LastReport().String())
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	tr.snapshot = buf.Bytes()
	return tr
}

// requireSameTrace compares two runs observable-by-observable so a
// divergence names the first differing step and output kind.
func requireSameTrace(t *testing.T, label string, cyc, evt eventMatrixTrace) {
	t.Helper()
	for i := range cyc.words {
		if !reflect.DeepEqual(cyc.words[i], evt.words[i]) {
			t.Errorf("%s: step %d read results diverge: cycle %v, event %v",
				label, i, cyc.words[i], evt.words[i])
		}
		if !reflect.DeepEqual(cyc.stats[i], evt.stats[i]) {
			t.Errorf("%s: step %d stats diverge:\n cycle %+v\n event %+v",
				label, i, cyc.stats[i], evt.stats[i])
		}
		if cyc.reports[i] != evt.reports[i] {
			t.Errorf("%s: step %d fault report diverges:\n cycle %s\n event %s",
				label, i, cyc.reports[i], evt.reports[i])
		}
	}
	if !bytes.Equal(cyc.snapshot, evt.snapshot) {
		t.Errorf("%s: snapshot bytes diverge (%d vs %d bytes)",
			label, len(cyc.snapshot), len(evt.snapshot))
	}
}

// staticEventFaults is the static-fault corner of the matrix: a dead
// module, a dead link and a slow link, all chosen away from each other.
func staticEventFaults() *fault.Map {
	return fault.NewMap(9).
		KillModule(3*9+4).
		KillLink(5*9+1, 5*9+2).
		SlowLink(1*9+6, 2*9+6, 3)
}

// churnEventSchedule is the dynamic corner: a module dies mid-run, a
// link slows, another dies and later heals.
func churnEventSchedule() *fault.Schedule {
	return fault.NewSchedule(9).
		At(2, fault.EvKillModule, 3*9+4).
		At(3, fault.EvSlowLink, 1*9+6, 2*9+6, 3).
		At(4, fault.EvKillLink, 5*9+1, 5*9+2).
		At(6, fault.EvHealLink, 5*9+1, 5*9+2)
}

// TestEventCycleSimulationIdentity is the acceptance matrix:
// {mesh, torus} × {fault-free, static faults, churn schedule} ×
// workers {1, 4, 8}, asserting identical delivered contents (read
// results), charged cycles (StepStats), lost counts (fault reports)
// and snapshot bytes between route.ModeCycle and route.ModeEvent.
func TestEventCycleSimulationIdentity(t *testing.T) {
	faultCases := []struct {
		name string
		fm   func() *fault.Map
		sch  func() *fault.Schedule
	}{
		{"healthy", nil, nil},
		{"static", staticEventFaults, nil},
		{"churn", nil, churnEventSchedule},
	}
	for _, torus := range []bool{false, true} {
		for _, fc := range faultCases {
			for _, workers := range []int{1, 4, 8} {
				label := fmt.Sprintf("torus=%v/%s/workers=%d", torus, fc.name, workers)
				var fm *fault.Map
				var sch *fault.Schedule
				if fc.fm != nil {
					fm = fc.fm()
				}
				if fc.sch != nil {
					sch = fc.sch()
				}
				cyc := runEventMatrix(t, route.ModeCycle, torus, fm, sch, workers)
				evt := runEventMatrix(t, route.ModeEvent, torus, fm, sch, workers)
				requireSameTrace(t, label, cyc, evt)
			}
		}
	}
}

// TestLocalViewSimulationIdentity is the local-fault-view half of the
// acceptance matrix: under FaultView=Local with a churn schedule, runs
// are bit-identical (read results, StepStats, fault reports, snapshot
// bytes including the gossip view state) across worker widths {1,4,8},
// across double runs of the same width, and between route.ModeCycle
// and route.ModeEvent — for both mesh and torus topologies.
func TestLocalViewSimulationIdentity(t *testing.T) {
	for _, torus := range []bool{false, true} {
		ref := runViewMatrix(t, route.ModeCycle, faultview.Local, torus, nil, churnEventSchedule(), 1)
		if len(ref.snapshot) == 0 {
			t.Fatal("local-view snapshot is empty")
		}
		for _, workers := range []int{1, 4, 8} {
			for run := 0; run < 2; run++ {
				label := fmt.Sprintf("torus=%v/local-churn/workers=%d/run=%d", torus, workers, run)
				got := runViewMatrix(t, route.ModeCycle, faultview.Local, torus, nil, churnEventSchedule(), workers)
				requireSameTrace(t, label, ref, got)
				evt := runViewMatrix(t, route.ModeEvent, faultview.Local, torus, nil, churnEventSchedule(), workers)
				requireSameTrace(t, label+"/event", ref, evt)
			}
		}
		// Static faults are boot knowledge under the local view: beliefs
		// start exact, so the run must match the global view bit for bit
		// — except for the snapshot, which appends the (empty-log) view
		// state in local mode.
		glob := runViewMatrix(t, route.ModeEvent, faultview.Global, torus, staticEventFaults(), nil, 4)
		loc := runViewMatrix(t, route.ModeEvent, faultview.Local, torus, staticEventFaults(), nil, 4)
		label := fmt.Sprintf("torus=%v/local-static-vs-global", torus)
		loc.snapshot = loc.snapshot[:0]
		glob.snapshot = glob.snapshot[:0]
		requireSameTrace(t, label, glob, loc)
	}
}
