package core

// The self-healing layer: dynamic fault schedules evolve the live fault
// map between PRAM steps, module deaths lose the data they hosted, and
// the scrub pass rebuilds every lost copy whose variable still holds a
// live target set — routing the freshest surviving value to a healthy
// replacement slot through the real (fault-aware) router, charged to
// the repair phase of the cost ledger.
//
// Data-loss fiction. A module that dies loses its contents: the store
// is deleted and every copy currently homed there is quarantined. A
// quarantined copy is excluded from availability masks until a scrub
// rebuilds it, so a revived (or remapped) blank module can never
// satisfy a read with a silently stale value — the timestamp rule only
// arbitrates among copies that actually hold data.
//
// Soundness. The scrub rebuilds a copy of variable v only when v's
// live (module-alive, unquarantined) leaves still access the root of
// T_v. In that case the freshest live value is the last value written:
// every write reaches a target set, and any two target sets of T_v
// intersect in a live copy, so the maximum timestamp over the live
// copies belongs to the most recent write. Below that threshold the
// copy stays quarantined (Residual); a later complete write to v
// restores the variable in full, but the scrub alone cannot.

import (
	"fmt"
	"sort"

	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/route"
	"meshpram/internal/trace"
)

// RepairPolicy selects when the simulator runs the scrub pass that
// rebuilds copies lost to module deaths.
type RepairPolicy int

const (
	// RepairOff never scrubs: lost copies stay quarantined and the
	// step-level majority rule alone decides what remains servable.
	RepairOff RepairPolicy = iota
	// RepairEager scrubs immediately after every module death the
	// schedule delivers, before the next step's copy selection.
	RepairEager
	// RepairLazy defers the scrub to the first step whose availability
	// masks actually touch a degraded copy (scrub-on-first-degraded-read).
	RepairLazy
)

func (p RepairPolicy) String() string {
	switch p {
	case RepairOff:
		return "off"
	case RepairEager:
		return "eager"
	case RepairLazy:
		return "lazy"
	}
	return fmt.Sprintf("RepairPolicy(%d)", int(p))
}

// ParseRepairPolicy parses "off", "eager" or "lazy" (empty = off).
func ParseRepairPolicy(s string) (RepairPolicy, error) {
	switch s {
	case "", "off":
		return RepairOff, nil
	case "eager":
		return RepairEager, nil
	case "lazy":
		return RepairLazy, nil
	}
	return RepairOff, fmt.Errorf("core: unknown repair policy %q (want off, eager or lazy)", s)
}

// RepairStats are the accumulated self-healing counters of a simulator.
type RepairStats struct {
	ModuleDeaths int   // module-availability losses delivered by the schedule
	Scrubs       int   // scrub passes run
	Repaired     int   // copies rebuilt from a surviving target set
	Residual     int   // copies still quarantined after the latest scrub
	Remapped     int   // dead modules whose copies were relocated to a spare
	Lost         int   // repair packets lost en route (copies left for the next pass)
	Steps        int64 // mesh steps charged to the repair phase by scrubs

	// Local fault view only (faultview.Local): module deaths become
	// scrub-eligible when their death notice reaches the coordinator,
	// not when they happen. Discovered counts the releases;
	// DiscoverySteps accumulates the PRAM-step lag between each death
	// and its discovery (the repair-delay race of eager/lazy policies).
	Discovered     int
	DiscoverySteps int64
}

// notifiedDeath is a module death waiting for its notice to propagate
// to the scrub coordinator (node 0) under the local fault view.
type notifiedDeath struct {
	host     int   // dead module (post-remap resolution at death time)
	notice   int   // gossip log index of the death notice
	diedStep int64 // sim.now when the death was applied
}

// hostRef locates one copy by (variable, leaf) in the inverted
// home-processor index.
type hostRef struct {
	v, leaf int32
}

// rpkt is a repair packet: the freshest surviving value of a variable
// on its way to a replacement copy slot.
type rpkt struct {
	dest int
	slot int64
	val  Word
	ts   int64
}

// RepairStats returns a copy of the self-healing counters.
func (sim *Simulator) RepairStats() RepairStats { return sim.rstats }

// FaultAware reports whether the simulator tracks a fault world at all
// (static map or schedule). Fault-free simulators pay no repair logic.
func (sim *Simulator) FaultAware() bool { return sim.faults != nil }

// SetHardened toggles hardened copy selection: level-0 (all-Extensive)
// target sets instead of cost-minimal ones, so the access survives
// isolated packet loss on the round trip. The retry path in
// internal/pram turns this on for the re-execution after a rollback.
func (sim *Simulator) SetHardened(on bool) { sim.hardened = on }

// scheduleHorizon bounds the event engine's epoch skips by the fault
// schedule's replay cursor. Schedule events are indexed by PRAM step
// and applied by advanceSchedule before a step's routing begins, so
// within any single routing call the live fault map is frozen and the
// bound is vacuous — unless an event due by now has not been applied
// yet, in which case the source returns 0 and the engine falls back to
// cycle-stepped sweeps rather than jump the event. That defensive zero
// keeps the no-event-jumped invariant inside the engine instead of
// relying on call-site ordering.
type scheduleHorizon struct{ sim *Simulator }

// NextEventIn implements route.HorizonSource.
func (h scheduleHorizon) NextEventIn(int64) int64 {
	if evs, _ := h.sim.cfg.Schedule.EventsBefore(h.sim.schedAt, h.sim.now); len(evs) > 0 {
		return 0
	}
	return 1 << 62
}

// advanceSchedule applies the schedule events due before the current
// step (an event at step t takes effect after t completed steps) to
// the live fault map, reacting to module deaths with the data-loss
// fiction. Under the eager policy it then scrubs at once. An error
// means the remap table violated its acyclicity invariant — the
// simulation state is no longer trustworthy and the step must fail.
func (sim *Simulator) advanceSchedule() error {
	sch := sim.cfg.Schedule
	if sch.Empty() {
		return nil
	}
	evs, cur := sch.EventsBefore(sim.schedAt, sim.now)
	sim.schedAt = cur
	for _, ev := range evs {
		if err := sim.applyEvent(ev); err != nil {
			return err
		}
	}
	if sim.view != nil {
		// One gossip round per step boundary, so notices keep moving even
		// across steps that route nothing; then check whether any death
		// notice has reached the coordinator. The observe-only span
		// records dissemination diagnostics without charging steps.
		sim.view.Tick(sim.faults)
		sim.releaseNotified()
		vs := sim.view.Stats()
		gs := sim.ld.Begin("faultview", trace.PhaseGossip)
		gs.SetAttr("round", vs.Round)
		gs.SetAttr("notices", vs.Notices)
		gs.SetAttr("sent", vs.Sent)
		gs.SetAttr("applied", vs.Applied)
		gs.SetAttr("stale-max", vs.StaleMax)
		for i, h := range vs.Hist {
			if h != 0 {
				gs.SetAttr(fmt.Sprintf("stale-hist-%d", i), h)
			}
		}
		gs.End()
	}
	if sim.cfg.Repair == RepairEager && len(sim.pending) > 0 {
		return sim.scrub()
	}
	return nil
}

// observeEvent lets a witness node create the gossip notice for one
// just-applied schedule event. Returns the notice's log index, or -1
// in global mode or when no live witness saw the event (an unwitnessed
// fault stays unknown until routing probes rediscover it).
func (sim *Simulator) observeEvent(ev fault.Event) int {
	if sim.view == nil {
		return -1
	}
	if idx, ok := sim.view.ObserveEvent(ev, sim.faults); ok {
		return idx
	}
	return -1
}

// releaseNotified moves module deaths whose notice has propagated to
// the scrub coordinator (node 0) onto the pending scrub list, charging
// the discovery lag to the repair statistics.
func (sim *Simulator) releaseNotified() {
	if len(sim.notified) == 0 {
		return
	}
	kept := sim.notified[:0]
	for _, nd := range sim.notified {
		if sim.view.KnownAt(0, nd.notice) {
			sim.pending = append(sim.pending, nd.host)
			sim.rstats.Discovered++
			sim.rstats.DiscoverySteps += sim.now - nd.diedStep
		} else {
			kept = append(kept, nd)
		}
	}
	sim.notified = kept
}

// applyEvent applies one schedule event, watching for the
// module-availability transition (a node death takes its memory module
// down with it) so the stored data is lost exactly once per death.
func (sim *Simulator) applyEvent(ev fault.Event) error {
	f := sim.faults
	switch ev.Kind {
	case fault.EvKillNode, fault.EvKillModule:
		wasDead := f.ModuleDead(ev.P)
		f.Apply(ev)
		idx := sim.observeEvent(ev)
		if !wasDead && f.ModuleDead(ev.P) {
			return sim.moduleDied(ev.P, idx)
		}
	default:
		f.Apply(ev)
		sim.observeEvent(ev)
	}
	return nil
}

// moduleDied records a fresh module death and loses its data. The data
// loss is physics and happens immediately in every fault-view mode;
// under the local view the scrub trigger is deferred until the death
// notice (log index noticeIdx) reaches the coordinator — the pending
// entry moves to the notified queue. A death no live neighbor
// witnessed (noticeIdx < 0) is never discovered: its copies stay
// quarantined until routing probes or a RepairNow intervention find
// the module.
func (sim *Simulator) moduleDied(p int, noticeIdx int) error {
	sim.rstats.ModuleDeaths++
	if err := sim.loseModuleData(p); err != nil {
		return err
	}
	if sim.view != nil {
		sim.pending = sim.pending[:len(sim.pending)-1]
		if noticeIdx >= 0 {
			sim.notified = append(sim.notified, notifiedDeath{host: p, notice: noticeIdx, diedStep: sim.now})
		}
	}
	return nil
}

// loseModuleData implements the data-loss fiction for module p: delete
// the store, quarantine every copy whose current home resolves to p,
// and queue p for the next scrub.
func (sim *Simulator) loseModuleData(p int) error {
	sim.st.clearProc(p)
	sim.ensureHostIdx()
	sim.ensureQuar()
	red := sim.S.Redundant
	for home := 0; home < sim.M.N; home++ {
		if len(sim.hostIdx[home]) == 0 {
			continue
		}
		host, err := sim.resolveProc(home)
		if err != nil {
			return err
		}
		if host != p {
			continue
		}
		for _, hr := range sim.hostIdx[home] {
			sim.quar.Set(int(hr.v)*red+int(hr.leaf), true)
		}
	}
	sim.pending = append(sim.pending, p)
	return nil
}

// ensureHostIdx builds (once) the inverted index from home processor to
// the copies stored there. The copy layout is static, so the index is
// computed from the scheme, not the store.
func (sim *Simulator) ensureHostIdx() {
	if sim.hostIdx != nil {
		return
	}
	sim.hostIdx = make([][]hostRef, sim.M.N)
	var buf []hmos.Copy
	for v := 0; v < sim.S.Vars(); v++ {
		buf = sim.S.Copies(v, buf[:0])
		for leaf, c := range buf {
			sim.hostIdx[c.Proc] = append(sim.hostIdx[c.Proc], hostRef{v: int32(v), leaf: int32(leaf)})
		}
	}
}

// resolveProc follows the remap chain from a copy's original home to
// the module currently hosting it. spareFor keeps chains acyclic, so
// the walk is bounded by the table size; exceeding that bound means the
// invariant broke (a cycle) and the error aborts the step instead of
// looping forever.
func (sim *Simulator) resolveProc(p int) (int, error) {
	start := p
	for hops := 0; ; hops++ {
		q, ok := sim.remap[p]
		if !ok {
			return p, nil
		}
		if hops >= len(sim.remap) {
			return p, fmt.Errorf("core: remap cycle detected resolving module %d (table %v)", start, sim.remap)
		}
		p = q
	}
}

// remapReaches reports whether following the remap chain from `from`
// arrives at `target`. spareFor uses it to reject spare candidates that
// would close a cycle through the table (the chain walk is hop-bounded
// like resolveProc, so a pre-existing cycle cannot hang it).
func (sim *Simulator) remapReaches(from, target int) bool {
	p := from
	for hops := 0; hops <= len(sim.remap); hops++ {
		if p == target {
			return true
		}
		q, ok := sim.remap[p]
		if !ok {
			return false
		}
		p = q
	}
	return true // walk exceeded the table: already cyclic, reject
}

// spareFor picks the replacement module for the dead processor p:
// deterministically the next live processor in snake order of p's
// level-1 submesh (locality keeps relocated copies near their
// tessellation page), falling back to a global scan. Modules already
// claimed as spares are preferred-against but accepted when nothing
// else is alive. A candidate whose remap chain reaches the dead module
// is never accepted — installing it would close a cycle (the
// kill→revive→kill-spare pattern: the revived original looks alive and
// unclaimed, but still chains to the module being replaced). Returns -1
// when no live module remains.
func (sim *Simulator) spareFor(dead int) int {
	f := sim.faults
	claimed := make(map[int]bool, len(sim.remap))
	keys := make([]int, 0, len(sim.remap))
	for k := range sim.remap {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		claimed[sim.remap[k]] = true
	}
	ok := func(p int) bool {
		return p != dead && !f.ModuleDead(p) && !sim.remapReaches(p, dead)
	}
	{
		full := sim.M.Full()
		pg := full.SubRegionIndex(sim.M, sim.S.Q, sim.S.PageCount(1), dead)
		reg := sim.S.PageRegion(1, pg)
		n := reg.Size()
		at := reg.SnakeIndex(sim.M, dead)
		for j := 1; j < n; j++ {
			p := reg.ProcAtSnake(sim.M, (at+j)%n)
			if ok(p) && !claimed[p] {
				return p
			}
		}
	}
	for p := 0; p < sim.M.N; p++ {
		if ok(p) && !claimed[p] {
			return p
		}
	}
	for p := 0; p < sim.M.N; p++ {
		if ok(p) {
			return p
		}
	}
	return -1
}

// scrub runs one repair pass: remap every pending dead module to a
// spare, then rebuild each quarantined copy whose variable still holds
// a live target set by routing the freshest surviving value to the
// copy's (possibly relocated) home. All traffic and the final local
// writes are charged to the repair phase; copies whose repair packet
// is lost en route stay quarantined for the next pass.
func (sim *Simulator) scrub() error {
	if len(sim.pending) == 0 && sim.quarCount() == 0 {
		return nil
	}
	sim.rstats.Scrubs++
	sp := sim.ld.Begin("repair", trace.PhaseRepair)
	defer sp.End()

	for _, p := range sim.pending {
		host, err := sim.resolveProc(p)
		if err != nil {
			return err
		}
		if !sim.faults.ModuleDead(host) {
			continue // revived (or already remapped) before we got here
		}
		if spare := sim.spareFor(host); spare >= 0 {
			if sim.remap == nil {
				sim.remap = make(map[int]int)
			}
			sim.remap[host] = spare
			sim.rstats.Remapped++
		}
	}
	sim.pending = sim.pending[:0]
	if err := sim.repairQuarantined(sp); err != nil {
		return err
	}
	sim.rstats.Residual = sim.quarCount()
	return nil
}

// repairQuarantined rebuilds what the surviving copies can certify.
func (sim *Simulator) repairQuarantined(sp *trace.Span) error {
	if sim.quarCount() == 0 {
		return nil
	}
	s, m := sim.S, sim.M
	red := int64(s.Redundant)
	// Bitset iteration is ascending, i.e. already the sorted slot order
	// the historical map-and-sort produced.
	slots := make([]int64, 0, sim.quarCount())
	sim.quar.ForEach(func(i int) { slots = append(slots, int64(i)) })

	items := make([][]rpkt, m.N)
	var buf []hmos.Copy
	mask := make([]bool, s.Redundant)
	curVar, canRepair, srcProc := -1, false, -1
	var bestVal Word
	var bestTs int64
	npkts := 0
	for _, slot := range slots {
		v := int(slot / red)
		if v != curVar {
			curVar = v
			buf = s.Copies(v, buf[:0])
			canRepair, srcProc, bestVal, bestTs = false, -1, 0, -1
			for l, c := range buf {
				host, err := sim.resolveProc(c.Proc)
				if err != nil {
					return err
				}
				mask[l] = !sim.faults.ModuleDead(host) && !sim.quarantined(c.Slot)
				if !mask[l] {
					continue
				}
				cl := sim.st.get(host, c.Slot)
				if cl.ts > bestTs {
					bestTs, bestVal, srcProc = cl.ts, cl.val, host
				}
			}
			canRepair = srcProc >= 0 && s.AccessedRoot(mask)
		}
		if !canRepair {
			continue
		}
		dst, err := sim.resolveProc(buf[int(slot%red)].Proc)
		if err != nil {
			return err
		}
		if sim.faults.ModuleDead(dst) {
			continue // no spare was available; stays quarantined
		}
		items[srcProc] = append(items[srcProc], rpkt{dest: dst, slot: slot, val: bestVal, ts: bestTs})
		npkts++
	}
	if npkts == 0 {
		return nil
	}
	sp.AddPackets(int64(npkts))
	if sim.reng == nil {
		sim.reng = route.NewEngine[rpkt](m)
		sim.rbuf = make([][]rpkt, m.N)
		if sim.view != nil {
			// Repair traffic routes on the same local knowledge as the
			// protocol: scrub packets detour on beliefs and keep gossip
			// rounds advancing while they travel.
			sim.reng.SetFaultView(sim.view)
		}
	}
	delivered, cycles, lost := sim.reng.RouteFault(
		sim.rbuf, m.Full(), items, func(p rpkt) int { return p.dest })
	sim.rstats.Lost += lost
	maxWrites := 0
	for p := range delivered {
		if len(delivered[p]) == 0 {
			continue
		}
		for _, pk := range delivered[p] {
			sim.st.set(p, pk.slot, cell{val: pk.val, ts: pk.ts})
			sim.quar.Set(int(pk.slot), false)
			sim.rstats.Repaired++
		}
		if len(delivered[p]) > maxWrites {
			maxWrites = len(delivered[p])
		}
		delivered[p] = delivered[p][:0] // keep the scrub buffer reusable
	}
	charge := cycles + int64(maxWrites)
	m.AddSteps(charge)
	sim.rstats.Steps += charge
	return nil
}

// RepairNow runs an unconditional full scrub against the live fault
// map, regardless of the configured policy. The retry path in
// internal/pram calls it after a rollback: the snapshot restored the
// memory and quarantine state of the pre-step world, so the pending
// list is re-derived from what is dead right now — including modules
// whose mid-step deaths the rollback rewound — and their data loss is
// replayed before the scrub rebuilds what the survivors certify. An
// error reports a broken remap invariant (see resolveProc).
func (sim *Simulator) RepairNow() error {
	if sim.faults == nil {
		return nil
	}
	sim.ensureHostIdx()
	sim.pending = sim.pending[:0]
	// A RepairNow is a system-level intervention with global knowledge:
	// it re-derives the dead set from the live map below, so deaths
	// still waiting for their notice to propagate are covered here and
	// must not trigger a second scrub when the notice lands.
	sim.notified = sim.notified[:0]
	seen := make(map[int]bool)
	for home := 0; home < sim.M.N; home++ {
		if len(sim.hostIdx[home]) == 0 {
			continue
		}
		host, err := sim.resolveProc(home)
		if err != nil {
			return err
		}
		if !sim.faults.ModuleDead(host) || seen[host] {
			continue
		}
		seen[host] = true
		if err := sim.loseModuleData(host); err != nil {
			return err
		}
	}
	return sim.scrub()
}
