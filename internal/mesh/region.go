package mesh

import "fmt"

// Region is a rectangular submesh: rows [R0, R0+H), columns [C0, C0+W).
type Region struct {
	R0, C0 int
	H, W   int
}

// Size returns the number of processors in the region.
func (r Region) Size() int { return r.H * r.W }

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%d:%d)x[%d:%d)", r.R0, r.R0+r.H, r.C0, r.C0+r.W)
}

// Contains reports whether processor p of machine m lies in the region.
func (r Region) Contains(m *Machine, p int) bool {
	row, col := m.RowOf(p), m.ColOf(p)
	return row >= r.R0 && row < r.R0+r.H && col >= r.C0 && col < r.C0+r.W
}

// SnakeIndex returns the position of processor p in the region's
// boustrophedon (snake) order: relative row 0 left-to-right, relative
// row 1 right-to-left, and so on. It panics if p is outside the region.
func (r Region) SnakeIndex(m *Machine, p int) int {
	row, col := m.RowOf(p)-r.R0, m.ColOf(p)-r.C0
	if row < 0 || row >= r.H || col < 0 || col >= r.W {
		panic(fmt.Sprintf("mesh: processor %d outside region %v", p, r))
	}
	if row%2 == 0 {
		return row*r.W + col
	}
	return row*r.W + (r.W - 1 - col)
}

// ProcAtSnake is the inverse of SnakeIndex.
func (r Region) ProcAtSnake(m *Machine, i int) int {
	if i < 0 || i >= r.Size() {
		panic(fmt.Sprintf("mesh: snake index %d outside region %v", i, r))
	}
	row := i / r.W
	col := i % r.W
	if row%2 == 1 {
		col = r.W - 1 - col
	}
	return m.IDOf(r.R0+row, r.C0+col)
}

// RowLine returns the processor ids of relative row j of the region, in
// snake direction (left-to-right for even j).
func (r Region) RowLine(m *Machine, j int) []int {
	line := make([]int, r.W)
	for c := 0; c < r.W; c++ {
		line[c] = m.IDOf(r.R0+j, r.C0+c)
	}
	if j%2 == 1 {
		reverse(line)
	}
	return line
}

// ColLine returns the processor ids of relative column c, top to bottom.
func (r Region) ColLine(m *Machine, c int) []int {
	line := make([]int, r.H)
	for j := 0; j < r.H; j++ {
		line[j] = m.IDOf(r.R0+j, r.C0+c)
	}
	return line
}

// SplitQ tessellates the region into `parts` congruent subregions,
// where parts must be a power of q dividing the region exactly. The
// split proceeds recursively, dividing the currently longer side into q
// strips, which keeps the aspect ratio of every subregion at most q
// when the region starts square (the tessellations of §3.3).
//
// Subregions are returned in a canonical order: index i of the result
// is the subregion assigned to page/module index i by the HMOS layout.
func (r Region) SplitQ(q, parts int) ([]Region, error) {
	if parts < 1 {
		return nil, fmt.Errorf("mesh: parts=%d must be ≥ 1", parts)
	}
	if parts == 1 {
		return []Region{r}, nil
	}
	p := parts
	for p > 1 {
		if p%q != 0 {
			return nil, fmt.Errorf("mesh: parts=%d is not a power of q=%d", parts, q)
		}
		p /= q
	}
	cur := []Region{r}
	for f := parts; f > 1; f /= q {
		next := make([]Region, 0, len(cur)*q)
		for _, reg := range cur {
			subs, err := reg.splitOnce(q)
			if err != nil {
				return nil, err
			}
			next = append(next, subs...)
		}
		cur = next
	}
	return cur, nil
}

// splitOnce divides the region into q strips along its longer side.
func (r Region) splitOnce(q int) ([]Region, error) {
	out := make([]Region, 0, q)
	if r.H >= r.W {
		if r.H%q != 0 {
			return nil, fmt.Errorf("mesh: region %v height not divisible by %d", r, q)
		}
		h := r.H / q
		for i := 0; i < q; i++ {
			out = append(out, Region{R0: r.R0 + i*h, C0: r.C0, H: h, W: r.W})
		}
		return out, nil
	}
	if r.W%q != 0 {
		return nil, fmt.Errorf("mesh: region %v width not divisible by %d", r, q)
	}
	w := r.W / q
	for i := 0; i < q; i++ {
		out = append(out, Region{R0: r.R0, C0: r.C0 + i*w, H: r.H, W: w})
	}
	return out, nil
}

// SubRegionIndex returns which subregion of SplitQ(q, parts) contains
// processor p, without materializing the split. It mirrors the
// recursive longest-side-first subdivision.
func (r Region) SubRegionIndex(m *Machine, q, parts, p int) int {
	idx := 0
	reg := r
	for f := parts; f > 1; f /= q {
		var child int
		if reg.H >= reg.W {
			h := reg.H / q
			child = (m.RowOf(p) - reg.R0) / h
			reg = Region{R0: reg.R0 + child*h, C0: reg.C0, H: h, W: reg.W}
		} else {
			w := reg.W / q
			child = (m.ColOf(p) - reg.C0) / w
			reg = Region{R0: reg.R0, C0: reg.C0 + child*w, H: reg.H, W: w}
		}
		idx = idx*q + child
	}
	return idx
}

// SubRegionAt returns subregion idx of SplitQ(q, parts) without
// materializing the split — the inverse of SubRegionIndex. It walks the
// same longest-side-first recursion, peeling one base-q digit of idx
// per level (most significant first, matching SplitQ's enumeration
// order). parts must be a power of q dividing the region exactly, as
// for SplitQ; idx must lie in [0, parts).
func (r Region) SubRegionAt(q, parts, idx int) Region {
	if idx < 0 || idx >= parts {
		panic(fmt.Sprintf("mesh: subregion index %d outside [0,%d)", idx, parts))
	}
	reg := r
	for f := parts; f > 1; f /= q {
		div := f / q
		child := idx / div
		idx %= div
		if reg.H >= reg.W {
			h := reg.H / q
			reg = Region{R0: reg.R0 + child*h, C0: reg.C0, H: h, W: reg.W}
		} else {
			w := reg.W / q
			reg = Region{R0: reg.R0, C0: reg.C0 + child*w, H: reg.H, W: w}
		}
	}
	return reg
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
