// Package mesh models the target machine of the paper: a synchronous
// n-node square mesh where each processor owns a local memory module
// and is connected to at most four neighbors by point-to-point links.
//
// The package provides the machine (step accounting + an optional
// goroutine-parallel execution engine) and the geometry: rectangular
// regions (submeshes), snake-order indexing inside a region, and the
// recursive q-ary tessellations that carry the HMOS levels (§3.3 of the
// paper: "different levels correspond to different tessellations of the
// mesh into disjoint submeshes").
//
// Cost model (see DESIGN.md §6): one step = every processor may do O(1)
// local work and exchange one word with each neighbor. Algorithms in
// internal/route charge their executed rounds to the machine via
// AddSteps; the machine itself never moves data.
//
// Cost ledger: a machine may carry a trace.Ledger. Every AddSteps then
// also charges the ledger's active phase span, so instrumented callers
// (internal/core, internal/baseline, internal/pram) produce one
// hierarchical cost tree whose Total equals the step-counter delta.
// Pure algorithms in internal/route open observe-only spans on the same
// ledger for per-submesh audit detail.
package mesh

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"meshpram/internal/fault"
	"meshpram/internal/trace"
)

// Machine is an s×s mesh of processors identified by id = row*Side+col.
type Machine struct {
	Side int // s
	N    int // s·s

	steps  atomic.Int64
	ledger *trace.Ledger // optional phase-span accounting; nil = counter only
	faults *fault.Map    // optional static fault map; nil = healthy

	workers int // parallel engine width; ≤ 1 means sequential
}

// New creates a mesh with the given side length (s ≥ 1).
func New(side int) (*Machine, error) {
	if side < 1 {
		return nil, fmt.Errorf("mesh: side %d must be ≥ 1", side)
	}
	return &Machine{Side: side, N: side * side, workers: 1}, nil
}

// MustNew is New but panics on error.
func MustNew(side int) *Machine {
	m, err := New(side)
	if err != nil {
		panic(err)
	}
	return m
}

// SetParallel configures the execution engine: workers ≤ 1 selects the
// deterministic sequential engine; workers > 1 runs ForEach supersteps
// on that many goroutines (workers = 0 picks GOMAXPROCS). Step counts
// are identical in both engines; only wall-clock time differs.
func (m *Machine) SetParallel(workers int) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m.workers = workers
}

// Workers returns the configured engine width.
func (m *Machine) Workers() int { return m.workers }

// AttachLedger installs the machine's cost ledger: subsequent AddSteps
// calls also charge the ledger's active span. A nil ledger detaches.
func (m *Machine) AttachLedger(l *trace.Ledger) { m.ledger = l }

// Ledger returns the attached cost ledger (nil when none).
func (m *Machine) Ledger() *trace.Ledger { return m.ledger }

// SetFaults installs a fault map and freezes it: the chainable
// Kill*/Slow* builders refuse afterwards, so a map cannot be mutated
// behind the machine's back (fault.Map.Clone is the copy-on-write
// escape hatch). Dynamic fault timelines go through fault.Schedule +
// fault.Map.Apply, which the core simulator drives between steps — the
// routing and access layers only assume component health is stable
// *within* one routing phase. A nil map (the default) means a healthy
// machine and keeps every fault-aware path on its fault-free fast
// path; panics if the map was built for a different side.
func (m *Machine) SetFaults(f *fault.Map) {
	if f != nil && f.Side() != m.Side {
		panic(fmt.Sprintf("mesh: fault map side %d does not match machine side %d", f.Side(), m.Side))
	}
	m.faults = f.Freeze()
}

// Faults returns the installed fault map (nil when healthy).
func (m *Machine) Faults() *fault.Map { return m.faults }

// NodeUp reports whether processor p is alive (true on a healthy
// machine).
func (m *Machine) NodeUp(p int) bool { return !m.faults.NodeDead(p) }

// LinkUp reports whether the edge p–q can carry packets this
// simulation: both endpoints alive and the link not dead.
func (m *Machine) LinkUp(p, q int) bool { return m.faults.LinkUp(p, q) }

// LinkDelay returns the cycle period of the edge p–q (1 = healthy).
func (m *Machine) LinkDelay(p, q int) int { return m.faults.LinkDelay(p, q) }

// AddSteps charges n machine steps (n ≥ 0) to the step counter and,
// when a ledger is attached, to its active phase span.
func (m *Machine) AddSteps(n int64) {
	if n < 0 {
		panic("mesh: negative step charge")
	}
	m.steps.Add(n)
	m.ledger.Charge(n)
}

// Steps returns the total steps charged so far.
func (m *Machine) Steps() int64 { return m.steps.Load() }

// ResetSteps zeroes the step counter and returns the previous value.
func (m *Machine) ResetSteps() int64 { return m.steps.Swap(0) }

// RowOf returns the row of processor p.
func (m *Machine) RowOf(p int) int { return p / m.Side }

// ColOf returns the column of processor p.
func (m *Machine) ColOf(p int) int { return p % m.Side }

// IDOf returns the processor at (row, col).
func (m *Machine) IDOf(row, col int) int { return row*m.Side + col }

// Dist returns the Manhattan distance between processors p and r.
func (m *Machine) Dist(p, r int) int {
	dr := m.RowOf(p) - m.RowOf(r)
	if dr < 0 {
		dr = -dr
	}
	dc := m.ColOf(p) - m.ColOf(r)
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Full returns the region covering the whole mesh.
func (m *Machine) Full() Region { return Region{R0: 0, C0: 0, H: m.Side, W: m.Side} }

// ForEach runs fn(p) for every processor p in [0, N), using the
// configured engine. fn invocations must touch disjoint per-processor
// state (the superstep discipline); the parallel engine does not order
// them.
func (m *Machine) ForEach(fn func(p int)) {
	m.ForRange(0, m.N, fn)
}

// ForRange runs fn(i) for i in [lo, hi) using the configured engine.
func (m *Machine) ForRange(lo, hi int, fn func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if m.workers <= 1 || n < 256 {
		for i := lo; i < hi; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + m.workers - 1) / m.workers
	for w := 0; w < m.workers; w++ {
		a := lo + w*chunk
		b := a + chunk
		if a >= hi {
			break
		}
		if b > hi {
			b = hi
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			for i := a; i < b; i++ {
				fn(i)
			}
		}(a, b)
	}
	wg.Wait()
}
