package mesh

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("side 0 accepted")
	}
	m := MustNew(9)
	if m.N != 81 || m.Side != 9 {
		t.Fatalf("N=%d Side=%d", m.N, m.Side)
	}
}

func TestCoordinates(t *testing.T) {
	m := MustNew(7)
	for p := 0; p < m.N; p++ {
		if m.IDOf(m.RowOf(p), m.ColOf(p)) != p {
			t.Fatalf("coordinate roundtrip failed at %d", p)
		}
	}
	if m.Dist(0, m.N-1) != 12 {
		t.Fatalf("Dist corner-to-corner = %d, want 12", m.Dist(0, m.N-1))
	}
	if m.Dist(10, 10) != 0 {
		t.Fatal("Dist(p,p) != 0")
	}
}

func TestStepsAccounting(t *testing.T) {
	m := MustNew(3)
	m.AddSteps(5)
	m.AddSteps(7)
	if m.Steps() != 12 {
		t.Fatalf("Steps=%d", m.Steps())
	}
	if prev := m.ResetSteps(); prev != 12 {
		t.Fatalf("ResetSteps returned %d", prev)
	}
	if m.Steps() != 0 {
		t.Fatal("steps not reset")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddSteps did not panic")
		}
	}()
	m.AddSteps(-1)
}

func TestSnakeIndexRoundtrip(t *testing.T) {
	m := MustNew(12)
	regs := []Region{
		m.Full(),
		{R0: 2, C0: 3, H: 4, W: 6},
		{R0: 0, C0: 0, H: 1, W: 12},
		{R0: 5, C0: 5, H: 3, W: 1},
	}
	for _, r := range regs {
		seen := make([]bool, r.Size())
		for row := r.R0; row < r.R0+r.H; row++ {
			for col := r.C0; col < r.C0+r.W; col++ {
				p := m.IDOf(row, col)
				i := r.SnakeIndex(m, p)
				if i < 0 || i >= r.Size() {
					t.Fatalf("region %v: snake index %d out of range", r, i)
				}
				if seen[i] {
					t.Fatalf("region %v: snake index %d repeated", r, i)
				}
				seen[i] = true
				if r.ProcAtSnake(m, i) != p {
					t.Fatalf("region %v: ProcAtSnake(SnakeIndex(%d)) != %d", r, p, p)
				}
			}
		}
	}
}

// Consecutive snake positions must be mesh neighbors (distance 1).
func TestSnakeAdjacent(t *testing.T) {
	m := MustNew(10)
	r := Region{R0: 1, C0: 2, H: 5, W: 4}
	for i := 0; i+1 < r.Size(); i++ {
		p, q := r.ProcAtSnake(m, i), r.ProcAtSnake(m, i+1)
		if m.Dist(p, q) != 1 {
			t.Fatalf("snake positions %d,%d are %d apart", i, i+1, m.Dist(p, q))
		}
	}
}

func TestSplitQCoversDisjoint(t *testing.T) {
	m := MustNew(27)
	full := m.Full()
	for _, parts := range []int{1, 3, 9, 27, 81, 729} {
		subs, err := full.SplitQ(3, parts)
		if err != nil {
			t.Fatalf("SplitQ(3,%d): %v", parts, err)
		}
		if len(subs) != parts {
			t.Fatalf("SplitQ(3,%d) returned %d regions", parts, len(subs))
		}
		owner := make([]int, m.N)
		for i := range owner {
			owner[i] = -1
		}
		for i, s := range subs {
			if s.Size() != m.N/parts {
				t.Fatalf("subregion %d has size %d, want %d", i, s.Size(), m.N/parts)
			}
			// Aspect ratio at most q for square start.
			ar := s.H * 1000 / s.W
			if ar > 3000 || ar < 333 {
				t.Fatalf("subregion %v aspect ratio out of [1/3,3]", s)
			}
			for row := s.R0; row < s.R0+s.H; row++ {
				for col := s.C0; col < s.C0+s.W; col++ {
					p := m.IDOf(row, col)
					if owner[p] != -1 {
						t.Fatalf("processor %d in two subregions", p)
					}
					owner[p] = i
				}
			}
		}
		for p, o := range owner {
			if o == -1 {
				t.Fatalf("processor %d uncovered", p)
			}
			if got := full.SubRegionIndex(m, 3, parts, p); got != o {
				t.Fatalf("SubRegionIndex(%d)=%d, want %d", p, got, o)
			}
		}
	}
}

func TestSubRegionAtMatchesSplitQ(t *testing.T) {
	// SubRegionAt(q, parts, i) must equal SplitQ(q, parts)[i] for every
	// index, including non-square intermediate shapes (side 2·3^2 forces
	// width-first splits at odd levels).
	for _, side := range []int{27, 18, 81} {
		m := MustNew(side)
		full := m.Full()
		for _, parts := range []int{1, 3, 9, 27, 81} {
			subs, err := full.SplitQ(3, parts)
			if err != nil {
				continue
			}
			for i, want := range subs {
				if got := full.SubRegionAt(3, parts, i); got != want {
					t.Fatalf("side %d: SubRegionAt(3,%d,%d)=%v, want %v", side, parts, i, got, want)
				}
			}
		}
	}
	// Also from a non-square root, as the HMOS descends through them.
	root := Region{R0: 0, C0: 0, H: 27, W: 9}
	subs, err := root.SplitQ(3, 27)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range subs {
		if got := root.SubRegionAt(3, 27, i); got != want {
			t.Fatalf("rect root: SubRegionAt(3,27,%d)=%v, want %v", i, got, want)
		}
	}
}

func TestSplitQErrors(t *testing.T) {
	m := MustNew(10)
	if _, err := m.Full().SplitQ(3, 6); err == nil {
		t.Error("non-power parts accepted")
	}
	if _, err := m.Full().SplitQ(3, 9); err == nil {
		t.Error("indivisible region accepted")
	}
	if _, err := m.Full().SplitQ(3, 0); err == nil {
		t.Error("parts=0 accepted")
	}
}

func TestSplitQNested(t *testing.T) {
	// Nested splits must refine: SplitQ(q, a*b) subregion i lies inside
	// SplitQ(q, a) subregion i/b.
	m := MustNew(81)
	full := m.Full()
	outer, err := full.SplitQ(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := full.SplitQ(3, 81)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range inner {
		o := outer[i/9]
		if s.R0 < o.R0 || s.C0 < o.C0 || s.R0+s.H > o.R0+o.H || s.C0+s.W > o.C0+o.W {
			t.Fatalf("inner %d (%v) not inside outer %d (%v)", i, s, i/9, o)
		}
	}
}

func TestRowColLines(t *testing.T) {
	m := MustNew(8)
	r := Region{R0: 2, C0: 1, H: 3, W: 4}
	row0 := r.RowLine(m, 0)
	if len(row0) != 4 || row0[0] != m.IDOf(2, 1) || row0[3] != m.IDOf(2, 4) {
		t.Fatalf("row0 = %v", row0)
	}
	row1 := r.RowLine(m, 1) // reversed
	if row1[0] != m.IDOf(3, 4) || row1[3] != m.IDOf(3, 1) {
		t.Fatalf("row1 = %v", row1)
	}
	col2 := r.ColLine(m, 2)
	if len(col2) != 3 || col2[0] != m.IDOf(2, 3) || col2[2] != m.IDOf(4, 3) {
		t.Fatalf("col2 = %v", col2)
	}
}

func TestForEachEnginesAgree(t *testing.T) {
	m := MustNew(32)
	seq := make([]int64, m.N)
	m.ForEach(func(p int) { seq[p] = int64(p * p) })

	m.SetParallel(8)
	if m.Workers() != 8 {
		t.Fatalf("Workers=%d", m.Workers())
	}
	par := make([]int64, m.N)
	m.ForEach(func(p int) { par[p] = int64(p * p) })
	for p := range seq {
		if seq[p] != par[p] {
			t.Fatalf("engines disagree at %d", p)
		}
	}
}

func TestForEachParallelCoversAll(t *testing.T) {
	m := MustNew(40)
	m.SetParallel(0) // GOMAXPROCS
	var count atomic.Int64
	m.ForEach(func(p int) { count.Add(1) })
	if count.Load() != int64(m.N) {
		t.Fatalf("parallel ForEach invoked %d times, want %d", count.Load(), m.N)
	}
}

func TestQuickSnakeBijection(t *testing.T) {
	m := MustNew(20)
	r := Region{R0: 3, C0: 4, H: 8, W: 12}
	prop := func(raw uint16) bool {
		i := int(raw) % r.Size()
		return r.SnakeIndex(m, r.ProcAtSnake(m, i)) == i
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	m := MustNew(10)
	r := Region{R0: 2, C0: 2, H: 3, W: 3}
	if !r.Contains(m, m.IDOf(2, 2)) || !r.Contains(m, m.IDOf(4, 4)) {
		t.Fatal("corner not contained")
	}
	if r.Contains(m, m.IDOf(1, 2)) || r.Contains(m, m.IDOf(2, 5)) || r.Contains(m, m.IDOf(5, 2)) {
		t.Fatal("outside point contained")
	}
}

func BenchmarkForEachSequential(b *testing.B) {
	m := MustNew(128)
	buf := make([]int64, m.N)
	for i := 0; i < b.N; i++ {
		m.ForEach(func(p int) { buf[p]++ })
	}
}

func BenchmarkForEachParallel(b *testing.B) {
	m := MustNew(128)
	m.SetParallel(0)
	buf := make([]int64, m.N)
	for i := 0; i < b.N; i++ {
		m.ForEach(func(p int) { buf[p]++ })
	}
}
