package bitset

import "testing"

func TestSetGetCount(t *testing.T) {
	s := New(200)
	if s.Len() != 200 || s.Count() != 0 {
		t.Fatalf("fresh set: len %d count %d", s.Len(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		if !s.Set(i, true) {
			t.Fatalf("Set(%d,true) reported no change", i)
		}
		if s.Set(i, true) {
			t.Fatalf("second Set(%d,true) reported change", i)
		}
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("count %d, want 5", s.Count())
	}
	if !s.Set(63, false) || s.Get(63) || s.Count() != 4 {
		t.Fatalf("clearing bit 63 failed")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(300)
	want := []int{2, 64, 65, 128, 255, 299}
	for i := len(want) - 1; i >= 0; i-- {
		s.Set(want[i], true)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	got = s.AppendIndices(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendIndices got %v want %v", got, want)
		}
	}
}

func TestCloneEqualClear(t *testing.T) {
	s := New(100)
	s.Set(3, true)
	s.Set(77, true)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(5, true)
	if s.Equal(c) || s.Get(5) {
		t.Fatal("clone aliases original")
	}
	o := New(100)
	o.CopyFrom(s)
	if !o.Equal(s) {
		t.Fatal("CopyFrom mismatch")
	}
	s.Clear()
	if s.Count() != 0 || s.Get(3) {
		t.Fatal("Clear left bits")
	}
}
