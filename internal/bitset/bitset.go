// Package bitset provides a dense fixed-capacity bitset with
// deterministic ascending iteration — the compact replacement for the
// []bool and map[...]bool component sets the simulator held per node
// (8× to 100× smaller, and iteration order is the index order the
// deterministic protocols already relied on).
package bitset

import "math/bits"

// Set is a dense bitset over [0, n). The zero value is an empty set of
// capacity 0; use New for a sized one. Not safe for concurrent
// mutation.
type Set struct {
	words []uint64
	n     int // capacity in bits
	count int // set bits, maintained exactly
}

// New returns an empty set of capacity n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)>>6), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Count returns the number of set bits.
func (s *Set) Count() int { return s.count }

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	return s.words[i>>6]&(1<<(i&63)) != 0
}

// Set sets bit i to v and reports whether the bit changed.
func (s *Set) Set(i int, v bool) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	old := s.words[w]&m != 0
	if old == v {
		return false
	}
	if v {
		s.words[w] |= m
		s.count++
	} else {
		s.words[w] &^= m
		s.count--
	}
	return true
}

// Clear resets every bit without shrinking the backing array.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// ForEach calls fn for every set bit in ascending index order.
func (s *Set) ForEach(fn func(i int)) {
	for w, word := range s.words {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// AppendIndices appends the set bit indices in ascending order to dst.
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	n := &Set{words: make([]uint64, len(s.words)), n: s.n, count: s.count}
	copy(n.words, s.words)
	return n
}

// CopyFrom overwrites s with o's contents; capacities must match.
func (s *Set) CopyFrom(o *Set) {
	if s.n != o.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, o.words)
	s.count = o.count
}

// Equal reports whether both sets hold exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n || s.count != o.count {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// MemBytes returns the resident heap bytes of the set.
func (s *Set) MemBytes() int64 { return int64(len(s.words))*8 + 40 }
