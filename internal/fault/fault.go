// Package fault models static faults on the mesh machine and the
// degradation bookkeeping the rest of the simulator reports through.
//
// The fault model follows the "static fault" setting of Chlebus,
// Gasieniec and Pelc (Deterministic Computations on a PRAM with Static
// Processor and Memory Faults): a fixed, adversarially chosen set of
// components is faulty before the computation starts and stays faulty
// throughout. Three component classes can fail:
//
//   - a *node* fault kills a processor entirely: it cannot originate
//     requests, relay packets, or serve its memory module;
//   - a *link* fault kills one mesh edge: the greedy router must detour
//     around it (internal/route), paying extra charged cycles;
//   - a *module* fault kills only a processor's memory module: the
//     processor still routes and computes, but every variable copy
//     stored there is unavailable.
//
// Links (and, coarsely, nodes) can also be *slow* instead of dead: a
// slow link carries one packet every `factor` cycles instead of every
// cycle, which the cycle-accurate router charges faithfully.
//
// A Map is immutable once simulation starts: installing it in a
// machine freezes it, and the chainable Kill*/Slow* builders panic on a
// frozen map (Clone yields a fresh mutable copy). Build one directly,
// from a seeded random Model, or from a CLI spec via Parse. Dynamic
// fault timelines are expressed separately as a Schedule of Events
// (see schedule.go); the simulator applies them to a private clone via
// Apply, so a user-held map is never mutated behind the user's back.
// The zero-fault case is first-class: a nil *Map (or an empty one)
// means a healthy machine, and every consumer keeps its fault-free
// accounting bit-identical to the unwired code path.
package fault

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"

	"meshpram/internal/bitset"
)

// linkKey identifies an undirected mesh edge by its endpoint ids,
// normalized so a < b.
type linkKey struct{ a, b int }

func mkLink(p, q int) linkKey {
	if p > q {
		p, q = q, p
	}
	return linkKey{p, q}
}

// Map is a static fault map over a side×side mesh. The zero value of
// every query method on a nil receiver reports a healthy component, so
// fault-free paths never need nil checks.
type Map struct {
	side       int
	deadNode   *bitset.Set // dense: 1 bit per processor
	deadModule *bitset.Set
	deadLink   map[linkKey]bool
	slowLink   map[linkKey]int // delay factor ≥ 2
	faults     int             // total marks, for Empty()
	frozen     bool            // installed in a machine; builders refuse
}

// NewMap creates an all-healthy fault map for a side×side mesh.
func NewMap(side int) *Map {
	if side < 1 {
		panic(fmt.Sprintf("fault: side %d must be ≥ 1", side))
	}
	return &Map{
		side:       side,
		deadNode:   bitset.New(side * side),
		deadModule: bitset.New(side * side),
		deadLink:   make(map[linkKey]bool),
		slowLink:   make(map[linkKey]int),
	}
}

// Side returns the mesh side the map was built for.
func (f *Map) Side() int {
	if f == nil {
		return 0
	}
	return f.side
}

// Empty reports whether the map marks no fault at all (nil-safe).
func (f *Map) Empty() bool { return f == nil || f.faults == 0 }

// Freeze marks the map as installed: the chainable Kill*/Slow*
// builders panic afterwards, catching the build-then-share aliasing
// hazard where a map handed to a simulator is mutated behind its back.
// mesh.Machine.SetFaults freezes automatically; Apply (the simulator's
// dynamic-fault path) still works. Nil-safe; returns the receiver.
func (f *Map) Freeze() *Map {
	if f != nil {
		f.frozen = true
	}
	return f
}

// Frozen reports whether the map has been installed in a machine
// (nil-safe).
func (f *Map) Frozen() bool { return f != nil && f.frozen }

// Clone returns a deep, unfrozen copy of the map (nil yields nil).
// Clone is the copy-on-write escape hatch: to keep marking faults
// after a map was handed to a simulator, clone it and mutate the copy.
func (f *Map) Clone() *Map {
	if f == nil {
		return nil
	}
	n := NewMap(f.side)
	n.deadNode.CopyFrom(f.deadNode)
	n.deadModule.CopyFrom(f.deadModule)
	for k, v := range f.deadLink {
		n.deadLink[k] = v
	}
	for k, v := range f.slowLink {
		n.slowLink[k] = v
	}
	n.faults = f.faults
	return n
}

func (f *Map) mutable(op string) {
	if f.frozen {
		panic(fmt.Sprintf("fault: %s on a frozen map (already installed in a simulator); Clone() it first", op))
	}
}

// adjacent reports whether p and q share a mesh edge, counting the
// torus wrap edges so torus configurations can fault them too.
func (f *Map) adjacent(p, q int) bool { return adjacentIn(f.side, p, q) }

func adjacentIn(s, p, q int) bool {
	pr, pc := p/s, p%s
	qr, qc := q/s, q%s
	dr, dc := pr-qr, pc-qc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	if dr == s-1 && s > 1 {
		dr = 1 // wrap edge along the rows
	}
	if dc == s-1 && s > 1 {
		dc = 1 // wrap edge along the columns
	}
	return dr+dc == 1
}

func (f *Map) checkNode(p string, id int) {
	if id < 0 || id >= f.side*f.side {
		panic(fmt.Sprintf("fault: %s %d out of range [0,%d)", p, id, f.side*f.side))
	}
}

func (f *Map) checkLink(p, q int) {
	f.checkNode("link endpoint", p)
	f.checkNode("link endpoint", q)
	if !f.adjacent(p, q) {
		panic(fmt.Sprintf("fault: %d-%d is not a mesh (or wrap) edge", p, q))
	}
}

// KillNode marks processor p dead: it cannot originate, relay, or
// store. Idempotent; panics on a frozen map.
func (f *Map) KillNode(p int) *Map {
	f.mutable("KillNode")
	f.checkNode("node", p)
	f.setNode(p, true)
	return f
}

// KillModule marks processor p's memory module dead; the processor
// itself keeps routing. Idempotent; panics on a frozen map.
func (f *Map) KillModule(p int) *Map {
	f.mutable("KillModule")
	f.checkNode("module", p)
	f.setModule(p, true)
	return f
}

// KillLink marks the undirected edge p–q dead. Idempotent; panics if
// p and q are not mesh (or wrap) neighbors, or on a frozen map.
func (f *Map) KillLink(p, q int) *Map {
	f.mutable("KillLink")
	f.checkLink(p, q)
	f.setLink(p, q, true)
	return f
}

// SlowLink marks the edge p–q slow: it carries one packet every
// `factor` cycles (factor ≥ 2). A later call overwrites the factor;
// panics on a frozen map.
func (f *Map) SlowLink(p, q, factor int) *Map {
	f.mutable("SlowLink")
	f.checkLink(p, q)
	if factor < 2 {
		panic(fmt.Sprintf("fault: slow factor %d must be ≥ 2", factor))
	}
	f.setSlow(p, q, factor)
	return f
}

// setNode / setModule / setLink / setSlow flip one component's health,
// keeping the fault counter exact. They are the shared lower half of
// the chainable builders and of Apply (which bypasses the freeze: the
// simulator owns a private clone when advancing a Schedule).
func (f *Map) setNode(p int, dead bool) {
	if f.deadNode.Set(p, dead) {
		f.bump(dead)
	}
}

func (f *Map) setModule(p int, dead bool) {
	if f.deadModule.Set(p, dead) {
		f.bump(dead)
	}
}

func (f *Map) setLink(p, q int, dead bool) {
	k := mkLink(p, q)
	if f.deadLink[k] != dead {
		if dead {
			f.deadLink[k] = true
		} else {
			delete(f.deadLink, k)
		}
		f.bump(dead)
	}
}

// setSlow sets the slow factor of edge p–q; factor ≤ 1 restores full
// speed.
func (f *Map) setSlow(p, q, factor int) {
	k := mkLink(p, q)
	_, had := f.slowLink[k]
	if factor <= 1 {
		if had {
			delete(f.slowLink, k)
			f.bump(false)
		}
		return
	}
	if !had {
		f.bump(true)
	}
	f.slowLink[k] = factor
}

func (f *Map) bump(up bool) {
	if up {
		f.faults++
	} else {
		f.faults--
	}
}

// NodeDead reports whether processor p is dead (nil-safe).
func (f *Map) NodeDead(p int) bool { return f != nil && f.deadNode.Get(p) }

// ModuleDead reports whether processor p's memory module is
// unavailable — either the module itself or the whole node is dead.
func (f *Map) ModuleDead(p int) bool {
	return f != nil && (f.deadModule.Get(p) || f.deadNode.Get(p))
}

// LinkUp reports whether the edge p–q can carry packets: both
// endpoints alive and the link itself not dead (nil-safe: always up).
func (f *Map) LinkUp(p, q int) bool {
	if f == nil {
		return true
	}
	if f.deadNode.Get(p) || f.deadNode.Get(q) {
		return false
	}
	return !f.deadLink[mkLink(p, q)]
}

// LinkDelay returns the cycle period of the edge p–q: 1 for a healthy
// link, the slow factor for a slow one. Callers check LinkUp first.
func (f *Map) LinkDelay(p, q int) int {
	if f == nil {
		return 1
	}
	if d, ok := f.slowLink[mkLink(p, q)]; ok {
		return d
	}
	return 1
}

// MaxDelay returns the largest slow-link factor in the map (1 when no
// link is slow; nil-safe). Routers use it to bound how long an idle
// network can still be waiting on a slow link.
func (f *Map) MaxDelay() int {
	d := 1
	if f == nil {
		return d
	}
	//detlint:ignore maprange max over values is order-insensitive
	for _, v := range f.slowLink {
		if v > d {
			d = v
		}
	}
	return d
}

// LinkHazard is one mesh (or wrap) edge a router must not treat as a
// free-running corridor: Delay == 0 means the edge is down (a dead
// link, or an edge incident to a dead node); Delay ≥ 2 is the slow
// factor of a slow link. The event-driven engine consumes these to
// bound its epoch skips (DESIGN.md §11).
type LinkHazard struct {
	A, B  int // endpoints, A < B
	Delay int
}

// AppendLinkHazards appends every hazardous edge to buf (truncated
// first) in ascending (A, B) order: dead links, the (wrap-counting)
// edges incident to each dead node, and slow links. A dead edge
// shadows its slow factor; duplicates are merged. Nil-safe.
func (f *Map) AppendLinkHazards(buf []LinkHazard) []LinkHazard {
	out := buf[:0]
	if f == nil || f.faults == 0 {
		return out
	}
	keys := make([]linkKey, 0, len(f.deadLink)+len(f.slowLink))
	for k := range f.deadLink {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cmpLinkKey)
	for _, k := range keys {
		out = append(out, LinkHazard{A: k.a, B: k.b})
	}
	s := f.side
	if s >= 2 {
		f.deadNode.ForEach(func(p int) {
			pr, pc := p/s, p%s
			nbs := [4]int{
				pr*s + (pc+s-1)%s, pr*s + (pc+1)%s,
				((pr+s-1)%s)*s + pc, ((pr+1)%s)*s + pc,
			}
			for _, q := range nbs {
				a, b := p, q
				if a > b {
					a, b = b, a
				}
				out = append(out, LinkHazard{A: a, B: b})
			}
		})
	}
	keys = keys[:0]
	for k := range f.slowLink {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cmpLinkKey)
	for _, k := range keys {
		out = append(out, LinkHazard{A: k.a, B: k.b, Delay: f.slowLink[k]})
	}
	// Canonical order and dedup: dead (Delay 0) sorts before slow for
	// the same edge, so keeping the first entry per edge lets dead
	// shadow slow.
	slices.SortFunc(out, func(x, y LinkHazard) int {
		if x.A != y.A {
			return x.A - y.A
		}
		if x.B != y.B {
			return x.B - y.B
		}
		return x.Delay - y.Delay
	})
	w := 0
	for i, h := range out {
		if i > 0 && h.A == out[w-1].A && h.B == out[w-1].B {
			continue
		}
		out[w] = h
		w++
	}
	return out[:w]
}

func cmpLinkKey(x, y linkKey) int {
	if x.a != y.a {
		return x.a - y.a
	}
	return x.b - y.b
}

// Counts returns the number of dead nodes, dead links, dead modules
// (module-only faults, not counting dead nodes) and slow links.
func (f *Map) Counts() (nodes, links, modules, slow int) {
	if f == nil {
		return 0, 0, 0, 0
	}
	return f.deadNode.Count(), len(f.deadLink), f.deadModule.Count(), len(f.slowLink)
}

// MemBytes returns the resident heap bytes of the map: two bits per
// processor plus the (usually sparse) link maps. Nil-safe.
func (f *Map) MemBytes() int64 {
	if f == nil {
		return 0
	}
	b := f.deadNode.MemBytes() + f.deadModule.MemBytes()
	b += int64(len(f.deadLink))*24 + int64(len(f.slowLink))*24
	return b
}

// String summarizes the map for CLI output.
func (f *Map) String() string {
	if f.Empty() {
		return "healthy"
	}
	n, l, m, s := f.Counts()
	return fmt.Sprintf("%d dead nodes, %d dead links, %d dead modules, %d slow links", n, l, m, s)
}

// Model is a seeded random static-fault model: each component class
// fails independently with its rate. Building the same model twice
// yields the same Map (deterministic in Seed).
type Model struct {
	NodeRate   float64 // per-processor death probability
	LinkRate   float64 // per-edge death probability
	ModuleRate float64 // per-module death probability (node survives)
	SlowRate   float64 // per-edge slow probability (applied to live links)
	SlowFactor int     // cycle period of slow links (default 4)
	Seed       int64
}

// Build realizes the model on a side×side mesh. Components are visited
// in a fixed order (nodes, then row links, then column links, then
// modules, then slow links), so the map is a pure function of the
// model and the side.
func (mo Model) Build(side int) *Map {
	f := NewMap(side)
	rng := rand.New(rand.NewSource(mo.Seed))
	factor := mo.SlowFactor
	if factor < 2 {
		factor = 4
	}
	n := side * side
	for p := 0; p < n; p++ {
		if mo.NodeRate > 0 && rng.Float64() < mo.NodeRate {
			f.KillNode(p)
		}
	}
	eachEdge(side, func(p, q int) {
		if mo.LinkRate > 0 && rng.Float64() < mo.LinkRate {
			f.KillLink(p, q)
		}
	})
	for p := 0; p < n; p++ {
		if mo.ModuleRate > 0 && rng.Float64() < mo.ModuleRate {
			f.KillModule(p)
		}
	}
	eachEdge(side, func(p, q int) {
		if mo.SlowRate > 0 && rng.Float64() < mo.SlowRate && f.LinkUp(p, q) {
			f.SlowLink(p, q, factor)
		}
	})
	return f
}

// eachEdge visits the non-wrap mesh edges in a fixed order: all
// rightward links row by row, then all downward links.
func eachEdge(side int, fn func(p, q int)) {
	for r := 0; r < side; r++ {
		for c := 0; c+1 < side; c++ {
			fn(r*side+c, r*side+c+1)
		}
	}
	for r := 0; r+1 < side; r++ {
		for c := 0; c < side; c++ {
			fn(r*side+c, (r+1)*side+c)
		}
	}
}

// Parse builds a Map from a CLI spec. The spec is a ';'-separated list
// of segments:
//
//	node:3,17          kill processors 3 and 17
//	module:40          kill processor 40's memory module
//	link:5-6,9-18      kill the edges 5–6 and 9–18
//	slow:7-8x4         make edge 7–8 carry one packet every 4 cycles
//	rand:link=0.05,module=0.02,node=0.01,slow=0.1,factor=4,seed=7
//
// An empty spec yields nil (healthy machine). Segments accumulate into
// one map; rand segments are realized with the given rates and seed.
func Parse(side int, spec string) (*Map, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	f := NewMap(side)
	var model *Model
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		kind, rest, ok := strings.Cut(seg, ":")
		if !ok {
			return nil, fmt.Errorf("fault: segment %q missing ':'", seg)
		}
		switch kind {
		case "node", "module":
			for _, tok := range strings.Split(rest, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || id < 0 || id >= side*side {
					return nil, fmt.Errorf("fault: bad %s id %q (mesh has %d processors)", kind, tok, side*side)
				}
				if kind == "node" {
					f.KillNode(id)
				} else {
					f.KillModule(id)
				}
			}
		case "link", "slow":
			for _, tok := range strings.Split(rest, ",") {
				tok = strings.TrimSpace(tok)
				factor := 0
				if kind == "slow" {
					var fs string
					var ok bool
					tok, fs, ok = strings.Cut(tok, "x")
					if !ok {
						return nil, fmt.Errorf("fault: slow link %q missing xFACTOR", tok)
					}
					v, err := strconv.Atoi(fs)
					if err != nil || v < 2 {
						return nil, fmt.Errorf("fault: bad slow factor %q", fs)
					}
					factor = v
				}
				ps, qs, ok := strings.Cut(tok, "-")
				if !ok {
					return nil, fmt.Errorf("fault: bad link %q (want P-Q)", tok)
				}
				p, err1 := strconv.Atoi(strings.TrimSpace(ps))
				q, err2 := strconv.Atoi(strings.TrimSpace(qs))
				if err1 != nil || err2 != nil || p < 0 || q < 0 || p >= side*side || q >= side*side {
					return nil, fmt.Errorf("fault: bad link %q", tok)
				}
				if !f.adjacent(p, q) {
					return nil, fmt.Errorf("fault: %d-%d is not a mesh edge", p, q)
				}
				if kind == "link" {
					f.KillLink(p, q)
				} else {
					f.SlowLink(p, q, factor)
				}
			}
		case "rand":
			if model == nil {
				model = &Model{}
			}
			for _, kv := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("fault: bad rand entry %q (want key=value)", kv)
				}
				switch key {
				case "seed", "factor":
					v, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("fault: bad rand %s %q", key, val)
					}
					if key == "seed" {
						model.Seed = v
					} else {
						model.SlowFactor = int(v)
					}
				case "node", "link", "module", "slow":
					v, err := strconv.ParseFloat(val, 64)
					if err != nil || v < 0 || v > 1 {
						return nil, fmt.Errorf("fault: bad rand rate %s=%q", key, val)
					}
					switch key {
					case "node":
						model.NodeRate = v
					case "link":
						model.LinkRate = v
					case "module":
						model.ModuleRate = v
					case "slow":
						model.SlowRate = v
					}
				default:
					return nil, fmt.Errorf("fault: unknown rand key %q", key)
				}
			}
		default:
			return nil, fmt.Errorf("fault: unknown segment kind %q", kind)
		}
	}
	if model != nil {
		rm := model.Build(side)
		// Merge the random realization into the explicit marks.
		rm.deadNode.ForEach(func(p int) { f.KillNode(p) })
		rm.deadModule.ForEach(func(p int) { f.KillModule(p) })
		//detlint:ignore maprange set merge into another map is order-insensitive
		for k := range rm.deadLink {
			f.KillLink(k.a, k.b)
		}
		//detlint:ignore maprange set merge into another map is order-insensitive
		for k, v := range rm.slowLink {
			f.SlowLink(k.a, k.b, v)
		}
	}
	if f.Empty() {
		return nil, nil
	}
	return f, nil
}

// StepReport is the per-step degradation report: what the simulation
// could not serve at full fidelity because of faults. A nil report (or
// a zero one) means the step ran exactly as on a healthy machine.
type StepReport struct {
	// Ops is the number of requests the step was asked to serve.
	Ops int
	// DeadOrigins counts ops whose originating processor is dead; they
	// are not served at all.
	DeadOrigins int
	// LostPackets counts copy packets that could not be delivered or
	// returned (dead destination, or the detour budget ran out).
	LostPackets int
	// Unrecoverable lists the ops (by the caller's index space: batch
	// index at the core layer, variable address at the PRAM layer)
	// whose surviving copies no longer grant root access under the
	// majority rule — their results cannot be trusted.
	Unrecoverable []int
}

// Degraded reports whether the step deviated from healthy execution.
func (r *StepReport) Degraded() bool {
	return r != nil && (r.DeadOrigins > 0 || r.LostPackets > 0 || len(r.Unrecoverable) > 0)
}

// Merge folds another report into r (nil o is a no-op).
func (r *StepReport) Merge(o *StepReport) {
	if r == nil || o == nil {
		return
	}
	r.Ops += o.Ops
	r.DeadOrigins += o.DeadOrigins
	r.LostPackets += o.LostPackets
	r.Unrecoverable = append(r.Unrecoverable, o.Unrecoverable...)
}

// String renders the report compactly for CLI output.
func (r *StepReport) String() string {
	if !r.Degraded() {
		return "healthy"
	}
	u := append([]int(nil), r.Unrecoverable...)
	sort.Ints(u)
	return fmt.Sprintf("deadOrigins=%d lostPackets=%d unrecoverable=%v", r.DeadOrigins, r.LostPackets, u)
}
