package fault

import (
	"strings"
	"testing"
)

// FuzzParse drives the static fault-spec parser: any input must either
// return an error or a map that fits the mesh — never panic or hang.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"node:3",
		"link:5-6;module:40",
		"slow:7-8x4",
		"rand:link=0.02,module=0.1,seed=7",
		"node:3,17;link:0-1",
		"node:-1",
		"link:5-6x",
		"rand:link=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(9, spec)
		if err != nil {
			return
		}
		if m == nil {
			if strings.TrimSpace(spec) != "" && spec != ";" {
				// nil is fine: an all-healthy spec stays on the fast path.
			}
			return
		}
		if m.Side() != 9 {
			t.Fatalf("Parse(9, %q) built a map for side %d", spec, m.Side())
		}
		// The counters and queries must be internally consistent.
		nodes, links, modules, slow := m.Counts()
		if nodes < 0 || links < 0 || modules < 0 || slow < 0 {
			t.Fatalf("Parse(9, %q): negative counts %d/%d/%d/%d", spec, nodes, links, modules, slow)
		}
	})
}

// FuzzParseSchedule drives the dynamic-schedule parser: any input must
// either return an error or a schedule whose events all validate
// against the mesh — never panic and never build an unbounded schedule
// from a bounded spec.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"",
		"@0 module:40",
		"@10 node:3,17;@25 revive-node:3",
		"@5 link:5-6;@9 revive-link:5-6",
		"@5 slow:7-8x4;@9 heal:7-8",
		"churn:module=0.01,repair=15,until=100,seed=7",
		"churn:node=0.1,link=0.1,until=64",
		"@x module:1",
		"@0 gremlin:1",
		"churn:until=99999999999",
		// Revive-before-notice orderings: a revive scheduled before (or
		// at the same step as) the death it undoes. The schedule parser
		// must accept these — whether a gossip death notice has reached
		// anyone when the revival lands is the fault view's problem, not
		// the grammar's (internal/faultview last-write-wins by log index).
		"@5 revive-node:3;@9 node:3",
		"@2 revive-module:40;@2 module:40",
		"@1 heal:0-1;@1 slow:0-1x3",
		"@3 revive-link:5-6;@4 link:5-6;@4 revive-link:5-6",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(9, spec)
		if err != nil {
			return
		}
		if s == nil {
			return
		}
		if s.Side() != 9 {
			t.Fatalf("ParseSchedule(9, %q) built side %d", spec, s.Side())
		}
		for _, ev := range s.Events() {
			if verr := validateEvent(9, ev); verr != nil {
				t.Fatalf("ParseSchedule(9, %q) emitted invalid event %v: %v", spec, ev, verr)
			}
		}
		// Applying the whole schedule must not panic.
		m := NewMap(9)
		for _, ev := range s.Events() {
			m.Apply(ev)
		}
	})
}
