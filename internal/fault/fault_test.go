package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestNilMapIsHealthy(t *testing.T) {
	var f *Map
	if !f.Empty() || f.Side() != 0 {
		t.Errorf("nil map: Empty=%v Side=%d", f.Empty(), f.Side())
	}
	if f.NodeDead(3) || f.ModuleDead(3) || !f.LinkUp(0, 1) {
		t.Error("nil map must report every component healthy")
	}
	if f.LinkDelay(0, 1) != 1 || f.MaxDelay() != 1 {
		t.Error("nil map must report delay 1 everywhere")
	}
	n, l, m, s := f.Counts()
	if n+l+m+s != 0 {
		t.Errorf("nil map counts = %d/%d/%d/%d", n, l, m, s)
	}
}

func TestMapQueries(t *testing.T) {
	f := NewMap(3)
	if !f.Empty() {
		t.Error("fresh map not empty")
	}
	f.KillNode(4).KillModule(2).KillLink(0, 1).SlowLink(7, 8, 4)

	if !f.NodeDead(4) || !f.ModuleDead(4) {
		t.Error("dead node must also kill its module")
	}
	if f.LinkUp(4, 5) || f.LinkUp(1, 4) {
		t.Error("links of a dead node must be down")
	}
	if !f.ModuleDead(2) || f.NodeDead(2) {
		t.Error("module fault must leave the node alive")
	}
	if !f.LinkUp(2, 5) {
		t.Error("module fault must not take links down")
	}
	if f.LinkUp(0, 1) || !f.LinkUp(1, 2) {
		t.Error("dead link 0-1 wrongly reported")
	}
	if f.LinkDelay(7, 8) != 4 || f.LinkDelay(8, 7) != 4 || f.MaxDelay() != 4 {
		t.Errorf("slow link delay = %d/%d max %d, want 4", f.LinkDelay(7, 8), f.LinkDelay(8, 7), f.MaxDelay())
	}
	if !f.LinkUp(7, 8) {
		t.Error("slow link must stay up")
	}
	n, l, m, s := f.Counts()
	if n != 1 || l != 1 || m != 1 || s != 1 {
		t.Errorf("counts = %d/%d/%d/%d, want 1/1/1/1", n, l, m, s)
	}
	if f.Empty() {
		t.Error("marked map reported empty")
	}
	if got := f.String(); !strings.Contains(got, "1 dead nodes") {
		t.Errorf("String() = %q", got)
	}

	// Idempotence: re-marking must not inflate the fault count.
	f.KillNode(4).KillModule(2).KillLink(0, 1)
	if n2, l2, m2, _ := f.Counts(); n2 != 1 || l2 != 1 || m2 != 1 {
		t.Error("re-marking inflated counts")
	}
}

func TestMapWrapEdges(t *testing.T) {
	f := NewMap(3)
	// 0 and 2 are row-wrap neighbors on a 3×3 torus; 0 and 6 column-wrap.
	f.KillLink(0, 2)
	f.SlowLink(0, 6, 3)
	if f.LinkUp(0, 2) || f.LinkDelay(0, 6) != 3 {
		t.Error("wrap edges not marked")
	}
}

func TestMapValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(f *Map)
	}{
		{"node out of range", func(f *Map) { f.KillNode(9) }},
		{"module negative", func(f *Map) { f.KillModule(-1) }},
		{"non-adjacent link", func(f *Map) { f.KillLink(0, 4) }},
		{"slow factor 1", func(f *Map) { f.SlowLink(0, 1, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewMap(3))
		})
	}
}

func TestModelDeterministic(t *testing.T) {
	mo := Model{NodeRate: 0.1, LinkRate: 0.2, ModuleRate: 0.1, SlowRate: 0.2, Seed: 7}
	a, b := mo.Build(9), mo.Build(9)
	if !reflect.DeepEqual(a, b) {
		t.Error("same model+seed built different maps")
	}
	mo.Seed = 8
	c := mo.Build(9)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds built identical maps (suspicious)")
	}
	zero := Model{Seed: 3}.Build(9)
	if !zero.Empty() {
		t.Error("all-zero rates must build an empty map")
	}
}

func TestParse(t *testing.T) {
	f, err := Parse(9, "node:3,17;link:5-6;module:40;slow:7-8x4")
	if err != nil {
		t.Fatal(err)
	}
	if !f.NodeDead(3) || !f.NodeDead(17) || f.LinkUp(5, 6) || !f.ModuleDead(40) || f.LinkDelay(7, 8) != 4 {
		t.Errorf("parsed map wrong: %s", f)
	}

	if f, err := Parse(9, ""); err != nil || f != nil {
		t.Errorf("empty spec: map=%v err=%v, want nil/nil", f, err)
	}
	if f, err := Parse(9, "rand:link=0,module=0,seed=5"); err != nil || f != nil {
		t.Errorf("zero-rate rand spec: map=%v err=%v, want nil/nil", f, err)
	}

	r1, err := Parse(9, "rand:link=0.05,module=0.02,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	r2 := Model{LinkRate: 0.05, ModuleRate: 0.02, Seed: 7}.Build(9)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("rand spec and equivalent Model built different maps")
	}

	for _, bad := range []string{
		"nonsense", "node:", "node:99999", "link:0-4", "link:5",
		"slow:7-8", "slow:7-8x1", "rand:link=2", "rand:bogus=1", "rand:link",
	} {
		if _, err := Parse(9, bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestStepReport(t *testing.T) {
	var nilRep *StepReport
	if nilRep.Degraded() {
		t.Error("nil report degraded")
	}
	if got := (&StepReport{Ops: 5}).String(); got != "healthy" {
		t.Errorf("clean report String() = %q", got)
	}
	r := &StepReport{Ops: 4, LostPackets: 2, Unrecoverable: []int{3, 1}}
	if !r.Degraded() {
		t.Error("lossy report not degraded")
	}
	r.Merge(&StepReport{Ops: 2, DeadOrigins: 1, Unrecoverable: []int{0}})
	r.Merge(nil)
	want := &StepReport{Ops: 6, DeadOrigins: 1, LostPackets: 2, Unrecoverable: []int{3, 1, 0}}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("merged = %+v, want %+v", r, want)
	}
	if got := r.String(); !strings.Contains(got, "unrecoverable=[0 1 3]") {
		t.Errorf("String() = %q", got)
	}
}

func TestStepReportMergeEdgeCases(t *testing.T) {
	// A nil receiver is a no-op, mirroring the nil-argument case: the
	// retry loop merges the final attempt unconditionally and must not
	// care whether either side exists.
	var nilRep *StepReport
	nilRep.Merge(&StepReport{Ops: 3, LostPackets: 1})
	if nilRep != nil {
		t.Fatal("nil receiver grew state")
	}

	// Disjoint unrecoverable sets concatenate without loss.
	a := &StepReport{Ops: 1, Unrecoverable: []int{2}}
	a.Merge(&StepReport{Ops: 1, Unrecoverable: []int{7, 9}})
	if want := []int{2, 7, 9}; !reflect.DeepEqual(a.Unrecoverable, want) {
		t.Errorf("disjoint merge = %v, want %v", a.Unrecoverable, want)
	}

	// Overlapping sets keep their duplicates: Merge is a plain
	// accumulator and callers that count failures per round rely on
	// one entry per failed op, not a deduplicated set.
	b := &StepReport{Unrecoverable: []int{4}}
	b.Merge(&StepReport{Unrecoverable: []int{4, 4}})
	if want := []int{4, 4, 4}; !reflect.DeepEqual(b.Unrecoverable, want) {
		t.Errorf("overlapping merge = %v, want %v", b.Unrecoverable, want)
	}

	// Merging an empty report changes nothing but Ops accounting.
	c := &StepReport{Ops: 2, DeadOrigins: 1}
	c.Merge(&StepReport{})
	if want := (&StepReport{Ops: 2, DeadOrigins: 1}); !reflect.DeepEqual(c, want) {
		t.Errorf("empty merge = %+v, want %+v", c, want)
	}
}
