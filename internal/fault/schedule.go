package fault

// Dynamic fault timelines. A Schedule is a deterministic, time-indexed
// list of Events (kill or revive a node, module or link; slow or heal a
// link) that the simulator applies to its live fault map as the step
// clock advances. Time is measured in core protocol steps
// (core.Simulator.Now()): an event at step t is applied after t steps
// have completed, i.e. before the (t+1)-th step executes. Events at
// step 0 are therefore in effect from the very first step, which makes
// a step-0-only schedule equivalent to installing the same marks as a
// static Map.
//
// Schedules are built programmatically (NewSchedule + Add), from a
// textual spec (ParseSchedule), or drawn from a seeded churn model
// (Churn.Build). A Schedule is immutable once handed to a simulator in
// the sense that the simulator only reads it: the per-simulator replay
// cursor lives in the simulator, so one Schedule can drive many runs.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// EventKind classifies a scheduled fault transition.
type EventKind uint8

const (
	EvKillNode EventKind = iota
	EvReviveNode
	EvKillModule
	EvReviveModule
	EvKillLink
	EvReviveLink
	EvSlowLink // link p–q carries one packet every Factor cycles
	EvHealLink // restore full speed on link p–q
)

var eventKindNames = [...]string{
	"kill-node", "revive-node", "kill-module", "revive-module",
	"kill-link", "revive-link", "slow-link", "heal-link",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event is one scheduled fault transition at step Step.
type Event struct {
	Step   int64     // protocol step after which the event takes effect
	Kind   EventKind //
	P, Q   int       // component ids; Q only for link kinds
	Factor int       // slow factor for EvSlowLink (≥ 2)
}

func (ev Event) String() string {
	switch ev.Kind {
	case EvKillLink, EvReviveLink, EvHealLink:
		return fmt.Sprintf("@%d %s %d-%d", ev.Step, ev.Kind, ev.P, ev.Q)
	case EvSlowLink:
		return fmt.Sprintf("@%d %s %d-%dx%d", ev.Step, ev.Kind, ev.P, ev.Q, ev.Factor)
	default:
		return fmt.Sprintf("@%d %s %d", ev.Step, ev.Kind, ev.P)
	}
}

// validateEvent checks an event against a side×side mesh.
func validateEvent(side int, ev Event) error {
	n := side * side
	if ev.Step < 0 {
		return fmt.Errorf("fault: event step %d must be ≥ 0", ev.Step)
	}
	if int(ev.Kind) >= len(eventKindNames) {
		return fmt.Errorf("fault: invalid event kind %d", ev.Kind)
	}
	if ev.P < 0 || ev.P >= n {
		return fmt.Errorf("fault: event %s: id %d out of range [0,%d)", ev.Kind, ev.P, n)
	}
	switch ev.Kind {
	case EvKillLink, EvReviveLink, EvSlowLink, EvHealLink:
		if ev.Q < 0 || ev.Q >= n {
			return fmt.Errorf("fault: event %s: id %d out of range [0,%d)", ev.Kind, ev.Q, n)
		}
		if !adjacentIn(side, ev.P, ev.Q) {
			return fmt.Errorf("fault: event %s: %d-%d is not a mesh (or wrap) edge", ev.Kind, ev.P, ev.Q)
		}
		if ev.Kind == EvSlowLink && ev.Factor < 2 {
			return fmt.Errorf("fault: event %s: factor %d must be ≥ 2", ev.Kind, ev.Factor)
		}
	}
	return nil
}

// Apply executes one event against the map. Unlike the chainable
// Kill*/Slow* builders, Apply works on a frozen map: it is the
// simulator's dynamic-fault mutation point, used while advancing a
// Schedule over the simulator's private clone of the base map. It
// panics on an event that does not fit the map's mesh.
func (f *Map) Apply(ev Event) {
	if err := validateEvent(f.side, ev); err != nil {
		panic(err.Error())
	}
	switch ev.Kind {
	case EvKillNode:
		f.setNode(ev.P, true)
	case EvReviveNode:
		f.setNode(ev.P, false)
	case EvKillModule:
		f.setModule(ev.P, true)
	case EvReviveModule:
		f.setModule(ev.P, false)
	case EvKillLink:
		f.setLink(ev.P, ev.Q, true)
	case EvReviveLink:
		f.setLink(ev.P, ev.Q, false)
	case EvSlowLink:
		f.setSlow(ev.P, ev.Q, ev.Factor)
	case EvHealLink:
		f.setSlow(ev.P, ev.Q, 0)
	}
}

// Schedule is a deterministic, time-indexed fault event list. The zero
// of the type is not usable; construct with NewSchedule, ParseSchedule
// or Churn.Build. All query methods are nil-safe; a nil (or empty)
// Schedule means a static fault world.
type Schedule struct {
	side   int
	events []Event
	sorted bool
}

// NewSchedule creates an empty schedule for a side×side mesh.
func NewSchedule(side int) *Schedule {
	if side < 1 {
		panic(fmt.Sprintf("fault: side %d must be ≥ 1", side))
	}
	return &Schedule{side: side}
}

// Side returns the mesh side the schedule was built for (0 for nil).
func (s *Schedule) Side() int {
	if s == nil {
		return 0
	}
	return s.side
}

// Empty reports whether the schedule holds no event (nil-safe).
func (s *Schedule) Empty() bool { return s == nil || len(s.events) == 0 }

// Len returns the number of events (nil-safe).
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Add appends an event; panics if it does not fit the mesh. Events may
// be added in any time order — replay sorts them stably by step, so
// same-step events apply in insertion order.
func (s *Schedule) Add(ev Event) *Schedule {
	if err := validateEvent(s.side, ev); err != nil {
		panic(err.Error())
	}
	s.events = append(s.events, ev)
	s.sorted = false
	return s
}

// At is shorthand for Add with the step given first.
func (s *Schedule) At(step int64, kind EventKind, ids ...int) *Schedule {
	ev := Event{Step: step, Kind: kind}
	switch len(ids) {
	case 1:
		ev.P = ids[0]
	case 2:
		ev.P, ev.Q = ids[0], ids[1]
	case 3:
		ev.P, ev.Q, ev.Factor = ids[0], ids[1], ids[2]
	default:
		panic(fmt.Sprintf("fault: At(%s) takes 1-3 ids, got %d", kind, len(ids)))
	}
	return s.Add(ev)
}

func (s *Schedule) normalize() {
	if s.sorted {
		return
	}
	sort.SliceStable(s.events, func(a, b int) bool { return s.events[a].Step < s.events[b].Step })
	s.sorted = true
}

// Events returns the events in replay order (a copy; nil-safe).
func (s *Schedule) Events() []Event {
	if s.Empty() {
		return nil
	}
	s.normalize()
	return append([]Event(nil), s.events...)
}

// EventsBefore returns the events with Step < step starting at the
// replay cursor, and the advanced cursor. Replay is monotone: callers
// keep the cursor and pass it back, so each event is applied exactly
// once per simulator even across snapshot rollbacks.
func (s *Schedule) EventsBefore(cursor int, step int64) ([]Event, int) {
	if s.Empty() || cursor >= len(s.events) {
		return nil, cursor
	}
	s.normalize()
	end := cursor
	for end < len(s.events) && s.events[end].Step < step {
		end++
	}
	return s.events[cursor:end], end
}

// MaxStep returns the largest event step (0 when empty; nil-safe).
func (s *Schedule) MaxStep() int64 {
	var mx int64
	if s == nil {
		return 0
	}
	for _, ev := range s.events {
		if ev.Step > mx {
			mx = ev.Step
		}
	}
	return mx
}

// String summarizes the schedule for CLI output.
func (s *Schedule) String() string {
	if s.Empty() {
		return "static"
	}
	return fmt.Sprintf("%d events through step %d", s.Len(), s.MaxStep())
}

// Churn is a seeded random dynamic-fault model: at every step in
// [1, Horizon], each live component of a class dies with its per-step
// rate; a killed component revives after exactly Repair steps (0 =
// never). Build is deterministic in (Seed, side): components are
// visited in a fixed order per step (nodes ascending, then the static
// edge order of eachEdge, then modules ascending), and the generator
// draws only for currently-live components.
type Churn struct {
	NodeRate   float64 // per-step death probability per live node
	LinkRate   float64 // per-step death probability per live edge
	ModuleRate float64 // per-step death probability per live module
	Repair     int64   // steps a killed component stays dead (0 = forever)
	Horizon    int64   // last step at which deaths are drawn
	Seed       int64
}

// Build realizes the churn model on a side×side mesh as a Schedule.
func (c Churn) Build(side int) *Schedule {
	s := NewSchedule(side)
	rng := rand.New(rand.NewSource(c.Seed))
	n := side * side
	nodeUp := make([]int64, n)   // next step at which the node is live again
	moduleUp := make([]int64, n) // (value ≤ t means live at step t)
	linkUp := map[linkKey]int64{}
	kill := func(t int64, kind EventKind, p, q int) {
		ev := Event{Step: t, Kind: kind, P: p, Q: q}
		s.Add(ev)
		if c.Repair > 0 {
			rev := ev
			rev.Step = t + c.Repair
			rev.Kind++ // each kill kind is followed by its revive kind
			s.Add(rev)
		}
	}
	for t := int64(1); t <= c.Horizon; t++ {
		deadUntil := int64(1<<62 - 1)
		if c.Repair > 0 {
			deadUntil = t + c.Repair
		}
		for p := 0; p < n; p++ {
			if c.NodeRate > 0 && nodeUp[p] <= t && rng.Float64() < c.NodeRate {
				kill(t, EvKillNode, p, 0)
				nodeUp[p] = deadUntil
			}
		}
		eachEdge(side, func(p, q int) {
			if c.LinkRate > 0 && linkUp[mkLink(p, q)] <= t && rng.Float64() < c.LinkRate {
				kill(t, EvKillLink, p, q)
				linkUp[mkLink(p, q)] = deadUntil
			}
		})
		for p := 0; p < n; p++ {
			if c.ModuleRate > 0 && moduleUp[p] <= t && rng.Float64() < c.ModuleRate {
				kill(t, EvKillModule, p, 0)
				moduleUp[p] = deadUntil
			}
		}
	}
	return s
}

// ParseSchedule builds a Schedule from a CLI spec: a ';'-separated
// list of timed segments, each reusing the static fault grammar of
// Parse behind an '@STEP' prefix, plus 'revive-'/'heal-' kinds and a
// churn segment:
//
//	@0 module:40            kill module 40 before the first step
//	@10 node:3,17           kill processors 3 and 17 after step 10
//	@25 revive-node:3       revive processor 3 after step 25
//	@5 link:5-6             kill edge 5–6; revive-link:5-6 restores it
//	@5 slow:7-8x4           slow edge 7–8; heal:7-8 restores full speed
//	churn:module=0.01,repair=15,until=100,seed=7
//
// Churn keys: node, link, module (per-step rates in [0,1]), repair
// (revive delay in steps, 0 = never), until (horizon), seed. An empty
// spec yields nil (static world).
func ParseSchedule(side int, spec string) (*Schedule, error) {
	if side < 1 {
		return nil, fmt.Errorf("fault: side %d must be ≥ 1", side)
	}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Schedule{side: side}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(seg, "churn:"); ok {
			ch, err := parseChurn(rest)
			if err != nil {
				return nil, err
			}
			s.events = append(s.events, ch.Build(side).Events()...)
			s.sorted = false
			continue
		}
		if !strings.HasPrefix(seg, "@") {
			return nil, fmt.Errorf("fault: schedule segment %q must start with @STEP (or churn:)", seg)
		}
		fields := strings.Fields(seg[1:])
		if len(fields) != 2 {
			return nil, fmt.Errorf("fault: schedule segment %q: want '@STEP kind:ids'", seg)
		}
		step, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("fault: bad schedule step %q", fields[0])
		}
		kind, rest, ok := strings.Cut(fields[1], ":")
		if !ok {
			return nil, fmt.Errorf("fault: schedule segment %q missing ':'", seg)
		}
		evs, err := parseEventList(side, step, kind, rest)
		if err != nil {
			return nil, err
		}
		s.events = append(s.events, evs...)
		s.sorted = false
	}
	if s.Empty() {
		return nil, nil
	}
	return s, nil
}

// parseEventList expands one timed segment body into events.
func parseEventList(side int, step int64, kind, rest string) ([]Event, error) {
	var base EventKind
	link := false
	factor := false
	switch kind {
	case "node":
		base = EvKillNode
	case "revive-node":
		base = EvReviveNode
	case "module":
		base = EvKillModule
	case "revive-module":
		base = EvReviveModule
	case "link":
		base, link = EvKillLink, true
	case "revive-link":
		base, link = EvReviveLink, true
	case "slow":
		base, link, factor = EvSlowLink, true, true
	case "heal":
		base, link = EvHealLink, true
	default:
		return nil, fmt.Errorf("fault: unknown schedule kind %q", kind)
	}
	var out []Event
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		ev := Event{Step: step, Kind: base}
		if link {
			if factor {
				var fs string
				var ok bool
				tok, fs, ok = strings.Cut(tok, "x")
				if !ok {
					return nil, fmt.Errorf("fault: slow link %q missing xFACTOR", tok)
				}
				v, err := strconv.Atoi(fs)
				if err != nil || v < 2 {
					return nil, fmt.Errorf("fault: bad slow factor %q", fs)
				}
				ev.Factor = v
			}
			ps, qs, ok := strings.Cut(tok, "-")
			if !ok {
				return nil, fmt.Errorf("fault: bad link %q (want P-Q)", tok)
			}
			p, err1 := strconv.Atoi(strings.TrimSpace(ps))
			q, err2 := strconv.Atoi(strings.TrimSpace(qs))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("fault: bad link %q", tok)
			}
			ev.P, ev.Q = p, q
		} else {
			id, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s id %q", kind, tok)
			}
			ev.P = id
		}
		if err := validateEvent(side, ev); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseChurn(rest string) (Churn, error) {
	var ch Churn
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return ch, fmt.Errorf("fault: bad churn entry %q (want key=value)", kv)
		}
		switch key {
		case "node", "link", "module":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				return ch, fmt.Errorf("fault: bad churn rate %s=%q", key, val)
			}
			switch key {
			case "node":
				ch.NodeRate = v
			case "link":
				ch.LinkRate = v
			case "module":
				ch.ModuleRate = v
			}
		case "repair", "until", "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || (v < 0 && key != "seed") {
				return ch, fmt.Errorf("fault: bad churn %s %q", key, val)
			}
			switch key {
			case "repair":
				ch.Repair = v
			case "until":
				ch.Horizon = v
			case "seed":
				ch.Seed = v
			}
		default:
			return ch, fmt.Errorf("fault: unknown churn key %q", key)
		}
	}
	if ch.Horizon <= 0 {
		return ch, fmt.Errorf("fault: churn needs until=HORIZON ≥ 1")
	}
	// Parsed churn is bounded so a hostile spec cannot make the builder
	// loop or allocate without limit (programmatic Churn is unrestricted).
	if ch.Horizon > 4096 {
		return ch, fmt.Errorf("fault: churn until=%d exceeds the spec limit 4096", ch.Horizon)
	}
	return ch, nil
}
