package fault

import (
	"reflect"
	"testing"
)

func TestScheduleReplayCursor(t *testing.T) {
	s := NewSchedule(3)
	// Added out of time order; replay must sort stably by step.
	s.At(5, EvKillModule, 4)
	s.At(0, EvKillNode, 1)
	s.At(5, EvReviveNode, 1)

	evs, cur := s.EventsBefore(0, 1) // step 1 sees step-0 events only
	if len(evs) != 1 || evs[0].Kind != EvKillNode || cur != 1 {
		t.Fatalf("EventsBefore(0,1) = %v cursor %d, want the step-0 kill", evs, cur)
	}
	evs, cur2 := s.EventsBefore(cur, 6) // both step-5 events, insertion order
	if len(evs) != 2 || evs[0].Kind != EvKillModule || evs[1].Kind != EvReviveNode || cur2 != 3 {
		t.Fatalf("EventsBefore(%d,6) = %v cursor %d", cur, evs, cur2)
	}
	if evs, cur3 := s.EventsBefore(cur2, 100); len(evs) != 0 || cur3 != cur2 {
		t.Fatalf("exhausted cursor must stay put, got %v cursor %d", evs, cur3)
	}
	if s.MaxStep() != 5 {
		t.Fatalf("MaxStep = %d, want 5", s.MaxStep())
	}
}

func TestScheduleValidation(t *testing.T) {
	s := NewSchedule(3)
	for _, ev := range []Event{
		{Step: -1, Kind: EvKillNode, P: 0},
		{Step: 0, Kind: EvKillNode, P: 9},
		{Step: 0, Kind: EvKillLink, P: 0, Q: 4}, // not a mesh edge
		{Step: 0, Kind: EvSlowLink, P: 0, Q: 1, Factor: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", ev)
				}
			}()
			s.Add(ev)
		}()
	}
}

func TestApplyWorksOnFrozenMap(t *testing.T) {
	f := NewMap(3).KillNode(0).Freeze()
	if !f.Frozen() {
		t.Fatal("Freeze did not mark the map")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KillNode on a frozen map did not panic")
			}
		}()
		f.KillNode(1)
	}()
	// Apply is the dynamic mutation point: it must work on frozen maps.
	f.Apply(Event{Step: 1, Kind: EvKillModule, P: 4})
	if !f.ModuleDead(4) {
		t.Error("Apply(kill-module) had no effect")
	}
	f.Apply(Event{Step: 2, Kind: EvReviveNode, P: 0})
	if f.NodeDead(0) {
		t.Error("Apply(revive-node) had no effect")
	}
}

func TestCloneIsDeepAndUnfrozen(t *testing.T) {
	f := NewMap(3).KillModule(2).SlowLink(0, 1, 4).Freeze()
	c := f.Clone()
	if c.Frozen() {
		t.Fatal("Clone must be unfrozen")
	}
	c.KillModule(5) // mutable again
	if f.ModuleDead(5) {
		t.Error("mutating the clone leaked into the original")
	}
	if !c.ModuleDead(2) || c.LinkDelay(0, 1) != 4 {
		t.Error("clone lost state of the original")
	}
	if (*Map)(nil).Clone() != nil {
		t.Error("nil.Clone() must stay nil")
	}
}

func TestChurnDeterministicAndRevives(t *testing.T) {
	ch := Churn{ModuleRate: 0.05, NodeRate: 0.02, Repair: 7, Horizon: 50, Seed: 3}
	a, b := ch.Build(5), ch.Build(5)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed must build the identical schedule")
	}
	if a.Empty() {
		t.Fatal("expected some churn at these rates")
	}
	// Every kill is paired with its revive exactly Repair steps later.
	kills, revives := 0, 0
	for _, ev := range a.Events() {
		switch ev.Kind {
		case EvKillNode, EvKillModule:
			kills++
		case EvReviveNode, EvReviveModule:
			revives++
		}
	}
	if kills == 0 || kills != revives {
		t.Fatalf("kills %d, revives %d — want equal and positive", kills, revives)
	}
	for _, ev := range a.Events() {
		if ev.Kind != EvKillNode && ev.Kind != EvKillModule {
			continue
		}
		found := false
		for _, rev := range a.Events() {
			if rev.Kind == ev.Kind+1 && rev.P == ev.P && rev.Step == ev.Step+7 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("kill %v has no matching revive 7 steps later", ev)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule(3, "@0 module:4;@10 node:1,2; @25 revive-node:1 ;@5 slow:0-1x4;@9 heal:0-1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	evs := s.Events()
	if evs[0].Kind != EvKillModule || evs[0].P != 4 || evs[0].Step != 0 {
		t.Fatalf("first event %v", evs[0])
	}
	if evs[len(evs)-1].Kind != EvReviveNode || evs[len(evs)-1].Step != 25 {
		t.Fatalf("last event %v", evs[len(evs)-1])
	}

	if s, err := ParseSchedule(3, ""); err != nil || s != nil {
		t.Fatalf("empty spec: got %v, %v — want nil, nil", s, err)
	}
	if s, err := ParseSchedule(3, " ; "); err != nil || s != nil {
		t.Fatalf("blank segments: got %v, %v — want nil, nil", s, err)
	}

	for _, bad := range []string{
		"module:4",                       // missing @STEP
		"@x module:4",                    // bad step
		"@-1 module:4",                   // negative step
		"@0 gremlin:4",                   // unknown kind
		"@0 module:9",                    // id out of range
		"@0 link:0-4",                    // not an edge
		"@0 slow:0-1",                    // missing factor
		"@0 slow:0-1x1",                  // factor < 2
		"churn:module=2,until=9",         // rate out of range
		"churn:module=0.1",               // missing until
		"churn:module=0.1,until=9999999", // over the spec cap
		"churn:bogus=1,until=9",          // unknown key
	} {
		if _, err := ParseSchedule(3, bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted a bad spec", bad)
		}
	}
}

func TestParseScheduleChurnMatchesBuild(t *testing.T) {
	s, err := ParseSchedule(5, "churn:module=0.05,repair=7,until=50,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Churn{ModuleRate: 0.05, Repair: 7, Horizon: 50, Seed: 3}.Build(5)
	if !reflect.DeepEqual(s.Events(), want.Events()) {
		t.Fatal("parsed churn differs from the programmatic build")
	}
}
