package route

import (
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// Cost is the per-phase step breakdown of a routing operation. Parallel
// submesh phases are already reduced to their maximum.
type Cost struct {
	Sort   int64 // sorting packets by destination (submesh)
	Rank   int64 // ranking / prefix-sum passes
	Coarse int64 // routing to the destination submesh (balanced)
	Fine   int64 // routing within submeshes to the final processor
}

// Total returns the summed step count.
func (c Cost) Total() int64 { return c.Sort + c.Rank + c.Coarse + c.Fine }

// Add accumulates another cost component-wise.
func (c *Cost) Add(o Cost) {
	c.Sort += o.Sort
	c.Rank += o.Rank
	c.Coarse += o.Coarse
	c.Fine += o.Fine
}

// Max accumulates another cost component-wise by maximum (for phases
// that run in parallel across disjoint submeshes).
func (c *Cost) Max(o Cost) {
	c.Sort = max64(c.Sort, o.Sort)
	c.Rank = max64(c.Rank, o.Rank)
	c.Coarse = max64(c.Coarse, o.Coarse)
	c.Fine = max64(c.Fine, o.Fine)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// destPkt pairs an item with a destination processor.
type destPkt[T any] struct {
	val T
	d   int
}

// stagedPkt additionally carries the destination submesh index and the
// balanced intermediate position of the coarse phase.
type stagedPkt[T any] struct {
	val   T
	d     int
	sub   int
	inter int
}

// RouteL1L2 performs general (l1,l2)-routing inside the region: packets
// are first sorted by destination into balanced snake blocks (the
// derandomized substitute for the randomized smoothing phase of [SK93])
// and then routed greedily. Theorem 2 promises √(l1·l2·n) + O(l1·√n);
// experiment E5 checks the measured envelope.
func RouteL1L2[T any](m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, cost Cost) {
	sp := m.Ledger().Begin("l1l2-routing", trace.PhaseForward)
	defer func() {
		sp.Observe(cost.Total())
		sp.End()
	}()
	wrapped := make([][]destPkt[T], m.N)
	forRegion(m, r, func(p int) {
		for _, v := range items[p] {
			wrapped[p] = append(wrapped[p], destPkt[T]{v, dest(v)})
		}
		items[p] = items[p][:0]
	})
	sorted, _, sortSteps := SortSnakeFast(m, r, wrapped, func(p destPkt[T]) uint64 { return uint64(p.d) })
	cost.Sort = sortSteps
	routed, routeSteps := GreedyRoute(m, r, sorted, func(p destPkt[T]) int { return p.d })
	cost.Fine = routeSteps

	delivered = make([][]T, m.N)
	forRegion(m, r, func(p int) {
		for _, pk := range routed[p] {
			delivered[p] = append(delivered[p], pk.val)
		}
	})
	return delivered, cost
}

// RouteStaged performs (l1,l2,δ,m)-routing (§2 of the paper): the
// region is tessellated into `parts` submeshes (parts a power of q);
// packets are sorted and ranked by destination submesh, routed to a
// balanced position inside it (rank mod submesh size), and finally
// routed within each submesh — all submeshes operating in parallel, so
// the fine phase is charged as the maximum over submeshes.
func RouteStaged[T any](m *mesh.Machine, r mesh.Region, q, parts int, items [][]T, dest func(T) int) (delivered [][]T, cost Cost) {
	sp := m.Ledger().BeginPar("staged-routing", trace.PhaseForward)
	defer func() {
		sp.Observe(cost.Total())
		sp.End()
	}()
	subs, err := r.SplitQ(q, parts)
	if err != nil {
		panic(err)
	}
	wrapped := make([][]stagedPkt[T], m.N)
	forRegion(m, r, func(p int) {
		for _, v := range items[p] {
			d := dest(v)
			wrapped[p] = append(wrapped[p], stagedPkt[T]{val: v, d: d, sub: r.SubRegionIndex(m, q, parts, d)})
		}
		items[p] = items[p][:0]
	})

	// Sort by (submesh, destination) so packets for one submesh are
	// contiguous in snake order.
	keyOf := func(p stagedPkt[T]) uint64 { return uint64(p.sub)<<32 | uint64(uint32(p.d)) }
	sorted, _, sortSteps := SortSnakeFast(m, r, wrapped, keyOf)
	cost.Sort = sortSteps

	// Rank within each destination-submesh group (a segmented prefix
	// pass, charged as one snake prefix-sum).
	cost.Rank = 3*int64(r.W-1) + int64(r.H-1)
	rankSp := m.Ledger().Begin("rank", trace.PhaseRank)
	rankSp.Observe(cost.Rank)
	groupSeen := make(map[int]int, parts)
	for i := 0; i < r.Size(); i++ {
		p := r.ProcAtSnake(m, i)
		for j := range sorted[p] {
			pk := &sorted[p][j]
			rank := groupSeen[pk.sub]
			groupSeen[pk.sub] = rank + 1
			sub := subs[pk.sub]
			pk.inter = sub.ProcAtSnake(m, rank%sub.Size())
		}
	}
	rankSp.End()

	// Coarse phase: route to balanced intermediate positions.
	coarse, coarseSteps := GreedyRoute(m, r, sorted, func(p stagedPkt[T]) int { return p.inter })
	cost.Coarse = coarseSteps

	// Fine phase: within each submesh, in parallel; charge the maximum.
	delivered = make([][]T, m.N)
	var maxFine int64
	for _, sub := range subs {
		fine, fineSteps := GreedyRoute(m, sub, coarse, func(p stagedPkt[T]) int { return p.d })
		if fineSteps > maxFine {
			maxFine = fineSteps
		}
		forRegion(m, sub, func(p int) {
			for _, pk := range fine[p] {
				delivered[p] = append(delivered[p], pk.val)
			}
		})
	}
	cost.Fine = maxFine
	return delivered, cost
}

// forRegion invokes fn for every processor id in the region, row-major.
func forRegion(m *mesh.Machine, r mesh.Region, fn func(p int)) {
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			fn(m.IDOf(row, col))
		}
	}
}
