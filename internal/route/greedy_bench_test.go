package route_test

import (
	"fmt"
	"math/rand"
	"testing"

	"meshpram/internal/mesh"
	"meshpram/internal/route"
)

// Benchmark instances for the greedy router. Payload = destination id,
// so the dest extractor is the identity and the measurement isolates
// the router itself.
//
//   - dense: every processor injects 4 packets to uniform random
//     destinations — the shape of a protocol-stage routing.
//   - transpose: processor (r,c) sends one packet to (c,r) — the
//     classic adversarial permutation for dimension-ordered routing.
//   - sparse: one in 16 processors injects a single packet — the shape
//     of a repair scrub or a lightly loaded submesh stage, where sweep
//     cost over empty nodes dominates the naive router.
func makeRouteInstance(kind string, m *mesh.Machine, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	dests := make([][]int, m.N)
	switch kind {
	case "dense":
		for p := 0; p < m.N; p++ {
			for j := 0; j < 4; j++ {
				dests[p] = append(dests[p], rng.Intn(m.N))
			}
		}
	case "transpose":
		for p := 0; p < m.N; p++ {
			dests[p] = append(dests[p], m.IDOf(m.ColOf(p), m.RowOf(p)))
		}
	case "sparse":
		for p := 0; p < m.N; p += 16 {
			dests[p] = append(dests[p], rng.Intn(m.N))
		}
	default:
		panic("unknown instance kind " + kind)
	}
	return dests
}

// benchGreedyRoute measures the hot-loop idiom: a persistent router
// reused across calls, items rebuilt from the instance each iteration,
// delivery buffers truncated and reused.
func benchGreedyRoute(b *testing.B, side int, kind string, workers int) {
	m := mesh.MustNew(side)
	if workers > 1 {
		m.SetParallel(workers)
	}
	dests := makeRouteInstance(kind, m, 1)
	items := make([][]int, m.N)
	dst := make([][]int, m.N)
	ident := func(d int) int { return d }
	eng := route.NewEngine[int](m)
	full := m.Full()
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		for p := range items {
			items[p] = append(items[p][:0], dests[p]...)
		}
		_, steps = eng.Route(dst, full, items, ident)
		for p := range dst {
			dst[p] = dst[p][:0]
		}
	}
	b.StopTimer()
	// CI smoke gate: the event engine may skip cycles but never invent
	// them — executed iterations are bounded by charged cycles on every
	// workload.
	if exec := eng.Executed(); exec > steps {
		b.Fatalf("%s-%d workers=%d: executed %d > charged %d cycles", kind, side, workers, exec, steps)
	}
}

func benchSides(b *testing.B, kind string) {
	for _, side := range []int{27, 81} {
		b.Run(fmt.Sprintf("side=%d", side), func(b *testing.B) {
			benchGreedyRoute(b, side, kind, 1)
		})
	}
	b.Run("side=81-workers=4", func(b *testing.B) {
		benchGreedyRoute(b, 81, kind, 4)
	})
}

func BenchmarkGreedyRouteDense(b *testing.B)     { benchSides(b, "dense") }
func BenchmarkGreedyRouteTranspose(b *testing.B) { benchSides(b, "transpose") }
func BenchmarkGreedyRouteSparse(b *testing.B)    { benchSides(b, "sparse") }
