package route

import (
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// RotateSort (Marberg–Gafni 1988) sorts an m×m mesh in O(m) row and
// column phases — removing the log factor of shearsort and thereby
// tightening the sorting substitution documented in DESIGN.md §2. The
// algorithm partitions the mesh into vertical slices (m×v), horizontal
// slices (v×m) and blocks (v×v) with v = √m, and interleaves column
// sorts with row rotations that spread every value range across many
// columns:
//
//	1. balance every vertical slice     (sort cols, rotate row i by i mod v, sort cols)
//	2. unblock                          (rotate row i by i·v mod m, sort cols)
//	3. balance every horizontal slice   (same, inside the v×m slice)
//	4. unblock
//	5. shear ×3                         (snake row sort + column sort)
//	6. final row sort
//
// The result is row-major ascending; SortSnakeRotate converts to snake
// order with one more (descending) pass over the odd rows. All phases
// run through the same merge-split block machinery as shearsort, so
// items-per-processor blocks of any size are supported; rotations are
// executed by the cycle-accurate greedy router, so their step cost is
// measured, not assumed.
//
// RotateSort requires a square region whose side is a perfect square
// (v = √side an integer); SortSnakeWith falls back to shearsort
// otherwise.

// SortAlgo selects the sorting network used by SortSnakeWith.
type SortAlgo int

const (
	// ShearSort is the O(√n·log n) default used throughout the paper
	// reproduction.
	ShearSort SortAlgo = iota
	// RotateSort is the O(√n) Marberg–Gafni alternative (square regions
	// with integer √side only; falls back to shearsort elsewhere).
	RotateSort
)

// CanRotateSort reports whether RotateSort applies to the region.
func CanRotateSort(r mesh.Region) bool {
	if r.H != r.W {
		return false
	}
	v := isqrt(r.H)
	return v*v == r.H && v >= 2
}

func isqrt(n int) int {
	v := 0
	for (v+1)*(v+1) <= n {
		v++
	}
	return v
}

// rotPkt carries one element of a rotating block to its target column.
type rotPkt[T any] struct {
	e elem[T]
	d int
}

// SortSnakeWith sorts the region into snake order using the selected
// algorithm, with the same contract as SortSnake.
func SortSnakeWith[T any](algo SortAlgo, m *mesh.Machine, r mesh.Region, items [][]T, key Key[T]) (out [][]T, blockLen int, steps int64) {
	if algo == RotateSort && CanRotateSort(r) {
		return sortSnakeRotate(m, r, items, key)
	}
	return SortSnake(m, r, items, key)
}

// sortSnakeRotate runs RotateSort and converts row-major to snake.
func sortSnakeRotate[T any](m *mesh.Machine, r mesh.Region, items [][]T, key Key[T]) (out [][]T, blockLen int, steps int64) {
	sp := m.Ledger().Begin("rotatesort", trace.PhaseSort)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	L := maxLoad(m, r, items)
	if L == 0 {
		return items, 0, 0
	}
	blocks := loadBlocks(m, r, items, key, L)
	side := r.H
	v := isqrt(side)

	rowAsc := func(j int) []int {
		line := make([]int, r.W)
		for c := 0; c < r.W; c++ {
			line[c] = m.IDOf(r.R0+j, r.C0+c)
		}
		return line
	}

	// sortColsBands sorts every column independently within horizontal
	// bands of height h (band b covers rows [b·h, (b+1)·h)). All columns
	// and bands operate in parallel: one charge of h·L.
	sortColsBands := func(h int) {
		for b := 0; b < side/h; b++ {
			for c := 0; c < side; c++ {
				line := make([]int, h)
				for j := 0; j < h; j++ {
					line[j] = m.IDOf(r.R0+b*h+j, r.C0+c)
				}
				oetLine(blocks, line, L)
			}
		}
		steps += int64(h) * int64(L)
	}

	// rotateRowsWindows rotates every row within column windows of
	// width w (window s covers cols [s·w, (s+1)·w)) by shift(row mod h)
	// positions, where h is the row period of the pattern. All rows and
	// windows run in parallel; the cycle-accurate routing cost of the
	// worst row is charged once.
	rotateRowsWindows := func(w, period int, shift func(rel int) int) {
		var maxCost int64
		for j := 0; j < side; j++ {
			s := shift(j%period) % w
			if s == 0 {
				continue
			}
			row := r.R0 + j
			for win := 0; win < side/w; win++ {
				c0 := win * w
				line := mesh.Region{R0: row, C0: r.C0 + c0, H: 1, W: w}
				pkts := make([][]rotPkt[T], m.N)
				for c := 0; c < w; c++ {
					src := m.IDOf(row, r.C0+c0+c)
					dst := m.IDOf(row, r.C0+c0+(c+s)%w)
					for _, e := range blocks[src] {
						pkts[src] = append(pkts[src], rotPkt[T]{e, dst})
					}
				}
				delivered, cost := GreedyRoute(m, line, pkts, func(p rotPkt[T]) int { return p.d })
				if cost > maxCost {
					maxCost = cost
				}
				for c := 0; c < w; c++ {
					p := m.IDOf(row, r.C0+c0+c)
					blk := blocks[p][:0]
					for _, pk := range delivered[p] {
						blk = append(blk, pk.e)
					}
					blocks[p] = blk
				}
			}
		}
		steps += maxCost
	}

	// balanceVertical: every vertical slice (side×v) in parallel.
	balanceVertical := func() {
		sortColsBands(side)
		rotateRowsWindows(v, side, func(rel int) int { return rel % v })
		sortColsBands(side)
	}

	// balanceHorizontal: every horizontal slice (v×side) in parallel;
	// its columns have height v, its rotation pattern repeats per slice.
	balanceHorizontal := func() {
		sortColsBands(v)
		rotateRowsWindows(side, v, func(rel int) int { return rel % side })
		sortColsBands(v)
	}

	unblock := func() {
		rotateRowsWindows(side, side, func(rel int) int { return (rel * v) % side })
		sortColsBands(side)
	}

	shear := func() {
		for j := 0; j < side; j++ {
			line := rowAsc(j)
			if j%2 == 1 {
				rev := make([]int, len(line))
				for i := range line {
					rev[i] = line[len(line)-1-i]
				}
				line = rev
			}
			oetLine(blocks, line, L)
		}
		steps += int64(side) * int64(L)
		sortColsBands(side)
	}

	// 1. balance vertical slices (side×v each, in parallel).
	balanceVertical()
	// 2. unblock.
	unblock()
	// 3. balance horizontal slices (v×side each, in parallel).
	balanceHorizontal()
	// 4. unblock.
	unblock()
	// 5. shear ×3.
	shear()
	shear()
	shear()
	// 6. final row sort ascending (row-major order).
	for j := 0; j < side; j++ {
		oetLine(blocks, rowAsc(j), L)
	}
	steps += int64(side) * int64(L)

	// Convert row-major to snake: odd rows descending.
	for j := 1; j < side; j += 2 {
		line := rowAsc(j)
		rev := make([]int, len(line))
		for i := range line {
			rev[i] = line[len(line)-1-i]
		}
		oetLine(blocks, rev, L)
	}
	steps += int64(side) * int64(L)

	return storeBlocks(m, r, items, blocks), L, steps
}
