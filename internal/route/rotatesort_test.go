package route

import (
	"math/rand"
	"testing"

	"meshpram/internal/mesh"
)

func TestCanRotateSort(t *testing.T) {
	yes := []mesh.Region{{H: 4, W: 4}, {H: 9, W: 9}, {H: 16, W: 16}, {H: 81, W: 81}}
	no := []mesh.Region{{H: 8, W: 8}, {H: 27, W: 27}, {H: 9, W: 4}, {H: 1, W: 1}, {H: 3, W: 3}}
	for _, r := range yes {
		if !CanRotateSort(r) {
			t.Errorf("region %v should support rotatesort", r)
		}
	}
	for _, r := range no {
		if CanRotateSort(r) {
			t.Errorf("region %v should not support rotatesort", r)
		}
	}
}

// RotateSort must sort random inputs on every supported side and block
// size, into exactly the snake layout SortSnake produces.
func TestRotateSortSortsRandom(t *testing.T) {
	for _, side := range []int{4, 9, 16, 25} {
		m := mesh.MustNew(side)
		r := m.Full()
		for _, loadFactor := range []int{1, 2, 4} {
			rng := rand.New(rand.NewSource(int64(side*10 + loadFactor)))
			for trial := 0; trial < 3; trial++ {
				count := loadFactor * m.N
				items := scatterItems(m, r, count, rng)
				out, L, steps := SortSnakeWith(RotateSort, m, r, items, func(v item) uint64 { return v.key })
				if steps <= 0 || L == 0 {
					t.Fatalf("side %d: no work done", side)
				}
				all := collect(m, r, out)
				if len(all) != count {
					t.Fatalf("side %d load %d: %d items after sort, want %d", side, loadFactor, len(all), count)
				}
				for i := 1; i < len(all); i++ {
					if all[i-1].key > all[i].key {
						t.Fatalf("side %d load %d trial %d: not sorted at %d", side, loadFactor, trial, i)
					}
				}
				// Blocked layout: rank j at snake position j/L.
				rank := 0
				for i := 0; i < r.Size(); i++ {
					p := r.ProcAtSnake(m, i)
					for range out[p] {
						if rank/L != i {
							t.Fatalf("side %d: rank %d on snake proc %d, want %d", side, rank, i, rank/L)
						}
						rank++
					}
				}
			}
		}
	}
}

// Adversarial inputs: already sorted, reverse sorted, all-equal,
// few-distinct.
func TestRotateSortAdversarial(t *testing.T) {
	m := mesh.MustNew(9)
	r := m.Full()
	patterns := map[string]func(i int) uint64{
		"sorted":   func(i int) uint64 { return uint64(i) },
		"reversed": func(i int) uint64 { return uint64(1000 - i) },
		"constant": func(i int) uint64 { return 7 },
		"binary":   func(i int) uint64 { return uint64(i % 2) },
		"sawtooth": func(i int) uint64 { return uint64(i % 9) },
	}
	for name, gen := range patterns {
		items := make([][]item, m.N)
		for p := 0; p < m.N; p++ {
			for j := 0; j < 2; j++ {
				items[p] = append(items[p], item{key: gen(p*2 + j)})
			}
		}
		out, _, _ := SortSnakeWith(RotateSort, m, r, items, func(v item) uint64 { return v.key })
		all := collect(m, r, out)
		for i := 1; i < len(all); i++ {
			if all[i-1].key > all[i].key {
				t.Fatalf("%s: not sorted at %d", name, i)
			}
		}
	}
}

// On unsupported regions SortSnakeWith must fall back to shearsort and
// still sort.
func TestRotateSortFallback(t *testing.T) {
	m := mesh.MustNew(8) // 8 is not a perfect square
	rng := rand.New(rand.NewSource(2))
	items := scatterItems(m, m.Full(), 100, rng)
	out, _, steps := SortSnakeWith(RotateSort, m, m.Full(), items, func(v item) uint64 { return v.key })
	all := collect(m, m.Full(), out)
	for i := 1; i < len(all); i++ {
		if all[i-1].key > all[i].key {
			t.Fatal("fallback not sorted")
		}
	}
	if steps != SortCost(m.Full(), 2) && steps <= 0 {
		t.Fatalf("fallback cost %d unexpected", steps)
	}
}

// The headline: on large meshes RotateSort must be cheaper than
// shearsort (O(m) vs O(m·log m) phases).
func TestRotateSortBeatsShearsortAtScale(t *testing.T) {
	for _, side := range []int{16, 25, 81} {
		m := mesh.MustNew(side)
		r := m.Full()
		rng := rand.New(rand.NewSource(9))
		mk := func() [][]item { return scatterItems(m, r, m.N, rng) }
		_, _, shearSteps := SortSnake(m, r, mk(), func(v item) uint64 { return v.key })
		_, _, rotSteps := SortSnakeWith(RotateSort, m, r, mk(), func(v item) uint64 { return v.key })
		if side >= 81 && rotSteps >= shearSteps {
			t.Errorf("side %d: rotatesort (%d) not cheaper than shearsort (%d)", side, rotSteps, shearSteps)
		}
		t.Logf("side %d: shearsort %d steps, rotatesort %d steps", side, shearSteps, rotSteps)
	}
}

func BenchmarkRotateSort81(b *testing.B) {
	m := mesh.MustNew(81)
	r := m.Full()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		items := scatterItems(m, r, m.N, rng)
		SortSnakeWith(RotateSort, m, r, items, func(v item) uint64 { return v.key })
	}
}
