package route

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// The engine's sharded sweep must be bit-identical to the sequential
// one: delivered contents and per-processor order, cycle counts, lost
// accounting and ledger spans. These tests run every instance on a
// workers=1 machine and a workers=4 machine (side 16, so dense
// instances push the worklist past the sharding threshold and the
// parallel path genuinely runs) and require byte-for-byte agreement.

// engineInstance builds a named adversarial or random workload.
func engineInstance(kind string, m *mesh.Machine, seed int64) [][]item {
	rng := rand.New(rand.NewSource(seed))
	items := make([][]item, m.N)
	id := 0
	add := func(p, d int) {
		items[p] = append(items[p], item{key: uint64(id), dest: d, id: id})
		id++
	}
	switch kind {
	case "random":
		for p := 0; p < m.N; p++ {
			for j := 0; j < 3; j++ {
				add(p, rng.Intn(m.N))
			}
		}
	case "transpose":
		for p := 0; p < m.N; p++ {
			add(p, m.IDOf(m.ColOf(p), m.RowOf(p)))
		}
	case "hotspot":
		// Everyone floods one corner plus its mirror: maximal link
		// contention on the column-first paths.
		for p := 0; p < m.N; p++ {
			add(p, 0)
			add(p, m.N-1)
		}
	default:
		panic("unknown instance kind " + kind)
	}
	return items
}

// staticFaults carves a reproducible fault pattern into side-16 meshes:
// a dead interior node, a dead module corridor, severed and slowed
// links along busy columns.
func staticFaults(side int) *fault.Map {
	f := fault.NewMap(side)
	f.KillNode(3*side + 3)
	f.KillLink(5*side+7, 5*side+8)
	f.KillLink(7*side+5, 8*side+5)
	f.SlowLink(2*side+1, 2*side+2, 3)
	f.SlowLink(9*side+9, 10*side+9, 2)
	return f
}

// engineRun holds everything one routing call produced that bit-identity
// quantifies over.
type engineRun struct {
	delivered [][]item
	steps     int64
	lost      int
	observed  int64
	packets   int64
	phases    [trace.NumPhases]int64
	lostAttr  int64
}

// runEngine routes the instance on a fresh machine with the given
// worker width, through a persistent engine, and captures the full
// observable outcome including the ledger span.
func runEngine(t *testing.T, workers int, withFaults, torus, faultPath bool, r func(m *mesh.Machine) mesh.Region, items func(m *mesh.Machine) [][]item) engineRun {
	t.Helper()
	m := mesh.MustNew(16)
	if withFaults {
		m.SetFaults(staticFaults(16))
	}
	if workers != 1 {
		m.SetParallel(workers)
	}
	ld := trace.New()
	m.AttachLedger(ld)
	eng := NewEngine[item](m)
	reg := r(m)
	work := items(m)
	dest := func(v item) int { return v.dest }

	var run engineRun
	switch {
	case faultPath && torus:
		run.delivered, run.steps, run.lost = eng.RouteTorusFault(nil, work, dest)
	case faultPath:
		run.delivered, run.steps, run.lost = eng.RouteFault(nil, reg, work, dest)
	case torus:
		run.delivered, run.steps = eng.RouteTorus(nil, work, dest)
	default:
		run.delivered, run.steps = eng.Route(nil, reg, work, dest)
	}
	sp := ld.Last()
	if sp == nil {
		t.Fatal("routing left no ledger span")
	}
	run.observed = sp.Observed()
	run.packets = sp.TotalPackets()
	run.phases = sp.PhaseTotals()
	run.lostAttr, _ = sp.Attr("lost")
	return run
}

func requireIdentical(t *testing.T, label string, seq, par engineRun) {
	t.Helper()
	if seq.steps != par.steps {
		t.Fatalf("%s: sequential %d cycles, parallel %d", label, seq.steps, par.steps)
	}
	if seq.lost != par.lost {
		t.Fatalf("%s: sequential lost %d, parallel %d", label, seq.lost, par.lost)
	}
	if !reflect.DeepEqual(seq.delivered, par.delivered) {
		t.Fatalf("%s: delivered slices diverged between engines", label)
	}
	if seq.observed != par.observed || seq.packets != par.packets ||
		seq.phases != par.phases || seq.lostAttr != par.lostAttr {
		t.Fatalf("%s: ledger spans diverged (observed %d/%d packets %d/%d lost-attr %d/%d)",
			label, seq.observed, par.observed, seq.packets, par.packets, seq.lostAttr, par.lostAttr)
	}
}

// TestEngineParallelBitIdentity sweeps instance kinds × topology ×
// fault path × worker widths and demands bit-identical outcomes.
func TestEngineParallelBitIdentity(t *testing.T) {
	full := func(m *mesh.Machine) mesh.Region { return m.Full() }
	sub := func(m *mesh.Machine) mesh.Region { return mesh.Region{R0: 1, C0: 2, H: 12, W: 13} }
	subItems := func(m *mesh.Machine) [][]item {
		rng := rand.New(rand.NewSource(23))
		return scatterItems(m, sub(m), 400, rng)
	}
	for _, kind := range []string{"random", "transpose", "hotspot"} {
		kind := kind
		inst := func(m *mesh.Machine) [][]item { return engineInstance(kind, m, 77) }
		for _, tc := range []struct {
			name              string
			withFaults, torus bool
			faultPath         bool
		}{
			{"mesh", false, false, false},
			{"torus", false, true, false},
			{"mesh-faultpath-clean", false, false, true},
			{"mesh-static-faults", true, false, true},
			{"torus-static-faults", true, true, true},
		} {
			t.Run(fmt.Sprintf("%s/%s", kind, tc.name), func(t *testing.T) {
				seq := runEngine(t, 1, tc.withFaults, tc.torus, tc.faultPath, full, inst)
				par := runEngine(t, 4, tc.withFaults, tc.torus, tc.faultPath, full, inst)
				requireIdentical(t, kind+"/"+tc.name, seq, par)
				if tc.name == "mesh-static-faults" && seq.lost == 0 && kind == "random" {
					// The pattern includes a dead node that random traffic
					// hits; losing nothing would mean the faults were not
					// actually exercised.
					t.Fatal("static-fault instance lost no packets; fault path untested")
				}
			})
		}
	}
	t.Run("subregion/random", func(t *testing.T) {
		seq := runEngine(t, 1, false, false, false, sub, subItems)
		par := runEngine(t, 4, false, false, false, sub, subItems)
		requireIdentical(t, "subregion", seq, par)
	})
}

// TestEngineReuseMatchesFresh routes a sequence of different workloads
// (mixed topologies and fault paths, different region shapes) through
// ONE engine and checks every call matches a fresh single-use engine:
// no state may leak across calls through the recycled slab, queues,
// worklist or arrival buffers.
func TestEngineReuseMatchesFresh(t *testing.T) {
	m := mesh.MustNew(16)
	m.SetFaults(staticFaults(16))
	m.AttachLedger(trace.New())
	shared := NewEngine[item](m)
	dest := func(v item) int { return v.dest }
	sub := mesh.Region{R0: 2, C0: 0, H: 9, W: 14}
	rng := rand.New(rand.NewSource(99))
	calls := []struct {
		name  string
		run   func(eng *Engine[item], items [][]item) ([][]item, int64, int)
		items func() [][]item
	}{
		{"mesh-full", func(e *Engine[item], it [][]item) ([][]item, int64, int) {
			d, s := e.Route(nil, m.Full(), it, dest)
			return d, s, 0
		}, func() [][]item { return engineInstance("random", m, 1) }},
		{"fault-sub", func(e *Engine[item], it [][]item) ([][]item, int64, int) {
			return e.RouteFault(nil, sub, it, dest)
		}, func() [][]item { return scatterItems(m, sub, 300, rng) }},
		{"torus-fault", func(e *Engine[item], it [][]item) ([][]item, int64, int) {
			return e.RouteTorusFault(nil, it, dest)
		}, func() [][]item { return engineInstance("transpose", m, 2) }},
		{"mesh-full-again", func(e *Engine[item], it [][]item) ([][]item, int64, int) {
			d, s := e.Route(nil, m.Full(), it, dest)
			return d, s, 0
		}, func() [][]item { return engineInstance("hotspot", m, 3) }},
	}
	for _, c := range calls {
		items := c.items()
		wantD, wantS, wantL := c.run(NewEngine[item](m), cloneItems(items))
		gotD, gotS, gotL := c.run(shared, items)
		if wantS != gotS || wantL != gotL || !reflect.DeepEqual(wantD, gotD) {
			t.Fatalf("%s: reused engine diverged from fresh (cycles %d vs %d, lost %d vs %d)",
				c.name, gotS, wantS, gotL, wantL)
		}
	}
}

// TestEngineReleaseKeepsIdentity interleaves Release with routing calls
// and demands the released-and-regrown engine stays bit-identical to a
// fresh one, while MemBytes reflects the retained footprint.
func TestEngineReleaseKeepsIdentity(t *testing.T) {
	m := mesh.MustNew(16)
	m.SetFaults(staticFaults(16))
	m.AttachLedger(trace.New())
	shared := NewEngine[item](m)
	dest := func(v item) int { return v.dest }
	for round := 0; round < 3; round++ {
		items := engineInstance("random", m, int64(10+round))
		wantD, wantS, wantL := NewEngine[item](m).RouteFault(nil, m.Full(), cloneItems(items), dest)
		gotD, gotS, gotL := shared.RouteFault(nil, m.Full(), items, dest)
		if wantS != gotS || wantL != gotL || !reflect.DeepEqual(wantD, gotD) {
			t.Fatalf("round %d: released engine diverged from fresh (cycles %d vs %d, lost %d vs %d)",
				round, gotS, wantS, gotL, wantL)
		}
		if shared.MemBytes() == 0 {
			t.Fatalf("round %d: MemBytes 0 after routing", round)
		}
		shared.Release()
		if got := shared.MemBytes(); got != 0 {
			t.Fatalf("round %d: MemBytes %d after Release, want 0", round, got)
		}
	}
}
