package route

import (
	"meshpram/internal/mesh"
)

// Fault-aware greedy routing: the same cycle-accurate simulation as
// GreedyRoute, but consulting the machine's static fault map
// (mesh.Machine.Faults):
//
//   - a packet whose preferred dimension-ordered link is dead (or leads
//     to a dead node) detours: the remaining directions are tried in
//     order of resulting distance to the destination (ties by direction
//     index), staying inside the region (wrap links on the torus);
//   - a slow link with factor f carries one packet only on cycles
//     divisible by f;
//   - retries are bounded: a packet still undelivered after the detour
//     budget (16·(H+W) + 4·#packets cycles) is dropped and counted in
//     the returned lost figure, as is a packet whose destination node
//     is dead at injection.
//
// Every cycle spent detouring or waiting is a charged machine step, so
// fault-induced slowdown lands in the ledger exactly like healthy
// routing cost. With a nil (or empty) fault map the router makes
// bit-identical decisions to GreedyRoute: the preferred direction is
// always usable, no packet waits, and the budget never triggers.
//
// These are one-shot conveniences over route.Engine (RouteFault /
// RouteTorusFault); hot loops should hold a persistent Engine.
//
// GreedyRouteFaultInto routes within a region over the plain mesh.
func GreedyRouteFaultInto[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return NewEngine[T](m).RouteFault(dst, r, items, dest)
}

// GreedyRouteTorusFaultInto is GreedyRouteFaultInto on the full machine
// with wrap-around links.
func GreedyRouteTorusFaultInto[T any](dst [][]T, m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return NewEngine[T](m).RouteTorusFault(dst, items, dest)
}
