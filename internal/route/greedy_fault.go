package route

import (
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// Fault-aware greedy routing: the same cycle-accurate simulation as
// greedyRoute, but consulting the machine's static fault map
// (mesh.Machine.Faults):
//
//   - a packet whose preferred dimension-ordered link is dead (or leads
//     to a dead node) detours: the remaining directions are tried in
//     order of resulting distance to the destination (ties by direction
//     index), staying inside the region (wrap links on the torus);
//   - a slow link with factor f carries one packet only on cycles
//     divisible by f;
//   - retries are bounded: a packet still undelivered after the detour
//     budget (16·(H+W) + 4·#packets cycles) is dropped and counted in
//     the returned lost figure, as is a packet whose destination node
//     is dead at injection.
//
// Every cycle spent detouring or waiting is a charged machine step, so
// fault-induced slowdown lands in the ledger exactly like healthy
// routing cost. With a nil (or empty) fault map the router makes
// bit-identical decisions to GreedyRoute: the preferred direction is
// always usable, no packet waits, and the budget never triggers.
//
// GreedyRouteFaultInto routes within a region over the plain mesh.
func GreedyRouteFaultInto[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return greedyRouteFault(dst, m, r, items, dest, meshTopo{m}, false)
}

// GreedyRouteTorusFaultInto is GreedyRouteFaultInto on the full machine
// with wrap-around links.
func GreedyRouteTorusFaultInto[T any](dst [][]T, m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return greedyRouteFault(dst, m, m.Full(), items, dest, torusTopo{m}, true)
}

func greedyRouteFault[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int, topo topology, wrap bool) (delivered [][]T, steps int64, lost int) {
	f := m.Faults()
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		if lost > 0 {
			sp.SetAttr("lost", int64(lost))
		}
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	local := func(p int) int { return (m.RowOf(p)-r.R0)*r.W + (m.ColOf(p) - r.C0) }
	queues := make([][]gpkt[T], r.H*r.W)
	var seq int32
	active := 0
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				d := dest(v)
				if !r.Contains(m, d) {
					panic("route: destination outside region")
				}
				if f.NodeDead(d) {
					lost++ // undeliverable: the destination is dead
					continue
				}
				if d == p {
					delivered[p] = append(delivered[p], v)
					continue
				}
				queues[local(p)] = append(queues[local(p)], gpkt[T]{val: v, dest: d, seq: seq, from: -1})
				seq++
				active++
			}
			items[p] = items[p][:0]
		}
	}
	sp.AddPackets(int64(seq))

	// neighborOf returns the processor one hop in direction dir
	// (0=-col, 1=+col, 2=-row, 3=+row — the healthy router's link ids),
	// or ok=false when the hop leaves the region (wrap allowed on the
	// torus, where the region is the full machine).
	side := m.Side
	neighborOf := func(p, dir int) (int, bool) {
		row, col := m.RowOf(p), m.ColOf(p)
		switch dir {
		case 0:
			col--
		case 1:
			col++
		case 2:
			row--
		default:
			row++
		}
		if wrap {
			return m.IDOf((row+side)%side, (col+side)%side), true
		}
		if row < r.R0 || row >= r.R0+r.H || col < r.C0 || col >= r.C0+r.W {
			return 0, false
		}
		return m.IDOf(row, col), true
	}

	// usable reports whether the p→to link may carry a packet this
	// cycle: alive on both ends, not dead, and — for slow links — on a
	// cycle divisible by the slow factor.
	usable := func(p, to int, cycle int64) bool {
		if !f.LinkUp(p, to) {
			return false
		}
		return cycle%int64(f.LinkDelay(p, to)) == 0
	}

	budget := int64(16*(r.H+r.W) + 4*active)
	maxDelay := int64(f.MaxDelay())

	var arrivals []garrival[T]
	idle := int64(0)
	for active > 0 && steps < budget {
		steps++
		arrivals = arrivals[:0]
		for row := r.R0; row < r.R0+r.H; row++ {
			for col := r.C0; col < r.C0+r.W; col++ {
				p := m.IDOf(row, col)
				lp := local(p)
				q := queues[lp]
				if len(q) == 0 {
					continue
				}
				var best [4]int
				var bestDist [4]int
				for d := range best {
					best[d] = -1
				}
				for i := range q {
					pk := &q[i]
					// Preferred healthy hop first (bit-identical when up),
					// then detour candidates by (distance, direction). The
					// hop that undoes the previous move is a last resort —
					// otherwise a packet blocked broadside ping-pongs
					// between two nodes until the budget kills it.
					dir, to := topo.next(p, pk.dest)
					if !usable(p, to, steps) {
						dir = -1
						bd := 0
						back := -1
						for cand := 0; cand < 4; cand++ {
							to2, ok := neighborOf(p, cand)
							if !ok || !usable(p, to2, steps) {
								continue
							}
							if int32(to2) == pk.from {
								back = cand
								continue
							}
							d2 := topo.dist(to2, pk.dest)
							if dir == -1 || d2 < bd {
								dir, bd = cand, d2
							}
						}
						if dir == -1 {
							dir = back
						}
						if dir == -1 {
							continue // blocked this cycle; wait
						}
					}
					dist := topo.dist(p, pk.dest)
					if best[dir] == -1 || dist > bestDist[dir] ||
						(dist == bestDist[dir] && pk.seq < q[best[dir]].seq) {
						best[dir] = i
						bestDist[dir] = dist
					}
				}
				picked := 0
				for d := 0; d < 4; d++ {
					if best[d] >= 0 {
						to, _ := neighborOf(p, d)
						pk := q[best[d]]
						pk.from = int32(p)
						arrivals = append(arrivals, garrival[T]{to, pk})
						picked++
					}
				}
				if picked > 0 {
					out := q[:0]
					for i := range q {
						if i != best[0] && i != best[1] && i != best[2] && i != best[3] {
							out = append(out, q[i])
						}
					}
					queues[lp] = out
				}
			}
		}
		if len(arrivals) == 0 {
			// Nothing moved. With slow links a packet may be waiting for
			// its cycle; after a full slow period of silence the network
			// is provably wedged and the survivors are lost.
			idle++
			if idle >= maxDelay {
				break
			}
			continue
		}
		idle = 0
		for _, a := range arrivals {
			if a.to == a.pk.dest {
				delivered[a.to] = append(delivered[a.to], a.pk.val)
				active--
			} else {
				queues[local(a.to)] = append(queues[local(a.to)], a.pk)
			}
		}
	}
	lost += active // budget exhausted or wedged: survivors are dropped
	return delivered, steps, lost
}
