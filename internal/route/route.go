// Package route implements the mesh algorithms the simulation scheme is
// built from (paper §2): sorting into snake order, ranking via prefix
// sums, cycle-accurate greedy (dimension-ordered) packet routing, the
// general (l1,l2)-routing, and the submesh-staged (l1,l2,δ,m)-routing
// whose superiority under bounded submesh congestion is the engine of
// the access protocol.
//
// Every algorithm is a pure function over per-processor item slices
// (indexed by absolute processor id) confined to a mesh.Region. It
// returns the number of machine steps the operation takes under the
// cost model of DESIGN.md §6 and does not charge the machine itself;
// callers compose costs (summing sequential phases, taking the maximum
// over submeshes that operate in parallel) and charge the total. When
// the machine carries a trace.Ledger, each algorithm additionally opens
// an observe-only span recording its own rounds and packet counts for
// per-submesh audit — observed steps never enter ledger totals, so the
// charging discipline above is unchanged.
//
// Sorting is shearsort with merge-split blocks — a data-oblivious
// network, so its step count is a function of the region and block size
// only. SortSnake runs the network; SortSnakeFast produces the
// identical result and identical cost without simulating the rounds
// (tests assert the equivalence), and exists because large experiments
// would otherwise spend all their time inside the network simulation.
package route

import (
	"cmp"
	"slices"

	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// MaxKey is reserved for padding; item keys must be strictly smaller.
const MaxKey = ^uint64(0)

// Key extracts a sort key from an item. Keys must be < MaxKey.
type Key[T any] func(T) uint64

// elem wraps an item with its key; pad elements carry key MaxKey.
type elem[T any] struct {
	key uint64
	val T
}

// maxLoad returns the maximum number of items held by a processor of
// the region.
func maxLoad[T any](m *mesh.Machine, r mesh.Region, items [][]T) int {
	L := 0
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			if l := len(items[m.IDOf(row, col)]); l > L {
				L = l
			}
		}
	}
	return L
}

// totalLoad returns the number of items held in the region.
func totalLoad[T any](m *mesh.Machine, r mesh.Region, items [][]T) int {
	t := 0
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			t += len(items[m.IDOf(row, col)])
		}
	}
	return t
}

// shearSortPhases returns the number of (row,col) iterations shearsort
// performs for a region of height h.
func shearSortPhases(h int) int {
	p := 1
	for v := 1; v < h; v *= 2 {
		p++
	}
	return p
}

// SortCost returns the step count of SortSnake on region r with block
// length L (data-oblivious, so cost is exact, not a bound).
func SortCost(r mesh.Region, L int) int64 {
	if L == 0 {
		return 0
	}
	if r.H == 1 {
		return int64(r.W) * int64(L)
	}
	if r.W == 1 {
		return int64(r.H) * int64(L)
	}
	it := shearSortPhases(r.H)
	return int64(it)*(int64(r.W)+int64(r.H))*int64(L) + int64(r.W)*int64(L)
}

// SortSnake sorts all items of the region into snake order by key,
// simulating the shearsort merge-split network round by round. On
// return every processor holds a block of exactly blockLen slots in the
// padded layout with pads stripped, so the item at local index i of the
// processor with snake index s has global rank s·blockLen + i, and the
// items occupying the lowest ranks are the smallest. steps is the exact
// network cost (= SortCost(r, blockLen)).
func SortSnake[T any](m *mesh.Machine, r mesh.Region, items [][]T, key Key[T]) (out [][]T, blockLen int, steps int64) {
	sp := m.Ledger().Begin("sortsnake-net", trace.PhaseSort)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	L := maxLoad(m, r, items)
	if L == 0 {
		return items, 0, 0
	}
	blocks := loadBlocks(m, r, items, key, L)
	if r.H == 1 || r.W == 1 {
		var line []int
		if r.H == 1 {
			line = r.RowLine(m, 0)
		} else {
			line = r.ColLine(m, 0)
		}
		oetLine(blocks, line, L)
	} else {
		it := shearSortPhases(r.H)
		for p := 0; p < it; p++ {
			for j := 0; j < r.H; j++ {
				oetLine(blocks, r.RowLine(m, j), L)
			}
			for c := 0; c < r.W; c++ {
				oetLine(blocks, r.ColLine(m, c), L)
			}
		}
		for j := 0; j < r.H; j++ {
			oetLine(blocks, r.RowLine(m, j), L)
		}
	}
	return storeBlocks(m, r, items, blocks), L, SortCost(r, L)
}

// SortSnakeFast computes the identical result and cost of SortSnake
// without simulating the network: it sorts all items of the region
// globally and redistributes them into snake-ordered blocks of length
// blockLen = max initial load.
func SortSnakeFast[T any](m *mesh.Machine, r mesh.Region, items [][]T, key Key[T]) (out [][]T, blockLen int, steps int64) {
	sp := m.Ledger().Begin("sortsnake", trace.PhaseSort)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	L := maxLoad(m, r, items)
	if L == 0 {
		return items, 0, 0
	}
	all := make([]elem[T], 0, totalLoad(m, r, items))
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				k := key(v)
				if k == MaxKey {
					panic("route: item key equals MaxKey (reserved)")
				}
				all = append(all, elem[T]{k, v})
			}
			items[p] = items[p][:0]
		}
	}
	slices.SortStableFunc(all, func(a, b elem[T]) int { return cmp.Compare(a.key, b.key) })
	out = items
	for rank, e := range all {
		p := r.ProcAtSnake(m, rank/L)
		out[p] = append(out[p], e.val)
	}
	return out, L, SortCost(r, L)
}

// loadBlocks builds padded, locally sorted blocks of exactly L slots.
func loadBlocks[T any](m *mesh.Machine, r mesh.Region, items [][]T, key Key[T], L int) map[int][]elem[T] {
	blocks := make(map[int][]elem[T], r.Size())
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			b := make([]elem[T], 0, L)
			for _, v := range items[p] {
				k := key(v)
				if k == MaxKey {
					panic("route: item key equals MaxKey (reserved)")
				}
				b = append(b, elem[T]{k, v})
			}
			slices.SortStableFunc(b, func(x, y elem[T]) int { return cmp.Compare(x.key, y.key) })
			var zero T
			for len(b) < L {
				b = append(b, elem[T]{MaxKey, zero})
			}
			blocks[p] = b
		}
	}
	return blocks
}

// storeBlocks strips pads and writes blocks back into the items layout.
func storeBlocks[T any](m *mesh.Machine, r mesh.Region, items [][]T, blocks map[int][]elem[T]) [][]T {
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			items[p] = items[p][:0]
			for _, e := range blocks[p] {
				if e.key != MaxKey {
					items[p] = append(items[p], e.val)
				}
			}
		}
	}
	return items
}

// oetLine performs odd-even transposition with merge-split blocks along
// the given line of processors: len(line) rounds, each exchanging and
// splitting neighboring blocks so that the lower-index processor keeps
// the L smallest of the 2L combined items.
func oetLine[T any](blocks map[int][]elem[T], line []int, L int) {
	n := len(line)
	for round := 0; round < n; round++ {
		start := round % 2
		for i := start; i+1 < n; i += 2 {
			mergeSplit(blocks, line[i], line[i+1], L)
		}
	}
}

// mergeSplit merges the sorted blocks at processors lo and hi and
// splits the result, smallest L items to lo.
func mergeSplit[T any](blocks map[int][]elem[T], lo, hi, L int) {
	a, b := blocks[lo], blocks[hi]
	merged := make([]elem[T], 0, 2*L)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].key <= b[j].key {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	copy(a, merged[:L])
	copy(b, merged[L:])
}

// PrefixSumSnake computes, for every processor of the region, the
// exclusive prefix sum of vals in snake order, together with the
// region-wide total. Cost: one directional row pass, a column pass over
// row totals and a broadcast-back pass, 3(W−1) + (H−1) steps.
func PrefixSumSnake(m *mesh.Machine, r mesh.Region, vals []int64) (prefix []int64, total int64, steps int64) {
	sp := m.Ledger().Begin("prefix-sum", trace.PhaseRank)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	prefix = make([]int64, m.N)
	var running int64
	for i := 0; i < r.Size(); i++ {
		p := r.ProcAtSnake(m, i)
		prefix[p] = running
		running += vals[p]
	}
	return prefix, running, 3*int64(r.W-1) + int64(r.H-1)
}

// BroadcastCost is the step count of broadcasting one word from a
// corner to every processor of the region (row pass + column passes).
func BroadcastCost(r mesh.Region) int64 {
	return int64(r.W-1) + int64(r.H-1)
}
