package route

import (
	"math/rand"
	"sort"
	"testing"

	"meshpram/internal/mesh"
)

type item struct {
	key  uint64
	dest int
	id   int
}

func scatterItems(m *mesh.Machine, r mesh.Region, count int, rng *rand.Rand) [][]item {
	items := make([][]item, m.N)
	for i := 0; i < count; i++ {
		p := r.ProcAtSnake(m, rng.Intn(r.Size()))
		d := r.ProcAtSnake(m, rng.Intn(r.Size()))
		items[p] = append(items[p], item{key: rng.Uint64() >> 1, dest: d, id: i})
	}
	return items
}

func collect(m *mesh.Machine, r mesh.Region, items [][]item) []item {
	var all []item
	for i := 0; i < r.Size(); i++ {
		all = append(all, items[r.ProcAtSnake(m, i)]...)
	}
	return all
}

func TestSortSnakeSortsIntoSnakeOrder(t *testing.T) {
	m := mesh.MustNew(8)
	rng := rand.New(rand.NewSource(3))
	for _, r := range []mesh.Region{m.Full(), {R0: 2, C0: 2, H: 4, W: 4}, {R0: 0, C0: 0, H: 1, W: 8}, {R0: 0, C0: 3, H: 8, W: 1}} {
		for _, count := range []int{0, 1, 7, 50, 150} {
			items := scatterItems(m, r, count, rng)
			out, L, steps := SortSnake(m, r, items, func(v item) uint64 { return v.key })
			all := collect(m, r, out)
			if len(all) != count {
				t.Fatalf("region %v count %d: %d items after sort", r, count, len(all))
			}
			for i := 1; i < len(all); i++ {
				if all[i-1].key > all[i].key {
					t.Fatalf("region %v count %d: not sorted at %d", r, count, i)
				}
			}
			if count > 0 {
				if L == 0 {
					t.Fatalf("region %v: zero block length for %d items", r, count)
				}
				if steps != SortCost(r, L) {
					t.Fatalf("region %v: steps=%d, SortCost=%d", r, steps, SortCost(r, L))
				}
				// Item of global rank j sits at snake position j/L.
				rank := 0
				for i := 0; i < r.Size(); i++ {
					p := r.ProcAtSnake(m, i)
					for range out[p] {
						if rank/L != i {
							t.Fatalf("region %v: rank %d on snake proc %d, want %d", r, rank, i, rank/L)
						}
						rank++
					}
				}
			}
		}
	}
}

func TestSortSnakeFastEquivalence(t *testing.T) {
	m := mesh.MustNew(6)
	rng := rand.New(rand.NewSource(11))
	for _, r := range []mesh.Region{m.Full(), {R0: 1, C0: 1, H: 4, W: 2}, {R0: 0, C0: 0, H: 1, W: 6}} {
		for trial := 0; trial < 10; trial++ {
			count := rng.Intn(80)
			items := scatterItems(m, r, count, rng)
			// Unique keys so the orders must agree exactly.
			seen := map[uint64]bool{}
			for p := range items {
				for j := range items[p] {
					for seen[items[p][j].key] {
						items[p][j].key++
					}
					seen[items[p][j].key] = true
				}
			}
			clone := make([][]item, m.N)
			for p := range items {
				clone[p] = append([]item(nil), items[p]...)
			}
			a, la, sa := SortSnake(m, r, items, func(v item) uint64 { return v.key })
			b, lb, sb := SortSnakeFast(m, r, clone, func(v item) uint64 { return v.key })
			if la != lb || sa != sb {
				t.Fatalf("region %v: (L,steps) mismatch network (%d,%d) fast (%d,%d)", r, la, sa, lb, sb)
			}
			for i := 0; i < r.Size(); i++ {
				p := r.ProcAtSnake(m, i)
				if len(a[p]) != len(b[p]) {
					t.Fatalf("region %v proc %d: lengths %d vs %d", r, p, len(a[p]), len(b[p]))
				}
				for j := range a[p] {
					if a[p][j] != b[p][j] {
						t.Fatalf("region %v proc %d slot %d: %v vs %v", r, p, j, a[p][j], b[p][j])
					}
				}
			}
		}
	}
}

func TestSortCostProperties(t *testing.T) {
	r := mesh.Region{H: 16, W: 16}
	if SortCost(r, 0) != 0 {
		t.Fatal("SortCost with L=0 should be 0")
	}
	if SortCost(r, 2) != 2*SortCost(r, 1) {
		t.Fatal("SortCost not linear in L")
	}
	line := mesh.Region{H: 1, W: 16}
	if SortCost(line, 3) != 48 {
		t.Fatalf("line SortCost = %d, want 48", SortCost(line, 3))
	}
}

func TestPrefixSumSnake(t *testing.T) {
	m := mesh.MustNew(5)
	r := mesh.Region{R0: 1, C0: 0, H: 3, W: 5}
	vals := make([]int64, m.N)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < r.Size(); i++ {
		vals[r.ProcAtSnake(m, i)] = int64(rng.Intn(10))
	}
	prefix, total, steps := PrefixSumSnake(m, r, vals)
	var running int64
	for i := 0; i < r.Size(); i++ {
		p := r.ProcAtSnake(m, i)
		if prefix[p] != running {
			t.Fatalf("prefix at snake %d = %d, want %d", i, prefix[p], running)
		}
		running += vals[p]
	}
	if total != running {
		t.Fatalf("total=%d want %d", total, running)
	}
	if want := int64(3*(5-1) + (3 - 1)); steps != want {
		t.Fatalf("steps=%d want %d", steps, want)
	}
}

func TestGreedyRouteDeliversPermutation(t *testing.T) {
	m := mesh.MustNew(8)
	r := m.Full()
	perm := rand.New(rand.NewSource(5)).Perm(m.N)
	items := make([][]item, m.N)
	maxDist := 0
	for p := 0; p < m.N; p++ {
		items[p] = append(items[p], item{dest: perm[p], id: p})
		if d := m.Dist(p, perm[p]); d > maxDist {
			maxDist = d
		}
	}
	delivered, steps := GreedyRoute(m, r, items, func(v item) int { return v.dest })
	for p := 0; p < m.N; p++ {
		if len(delivered[p]) != 1 {
			t.Fatalf("proc %d received %d packets", p, len(delivered[p]))
		}
		if delivered[p][0].dest != p {
			t.Fatalf("proc %d received packet for %d", p, delivered[p][0].dest)
		}
	}
	if steps < int64(maxDist) {
		t.Fatalf("steps=%d < max distance %d", steps, maxDist)
	}
	if steps > int64(8*m.Side) {
		t.Fatalf("steps=%d unreasonably high for a permutation on side %d", steps, m.Side)
	}
}

func TestGreedyRouteAllToOne(t *testing.T) {
	m := mesh.MustNew(6)
	r := m.Full()
	items := make([][]item, m.N)
	for p := 0; p < m.N; p++ {
		items[p] = append(items[p], item{dest: 0, id: p})
	}
	delivered, steps := GreedyRoute(m, r, items, func(v item) int { return v.dest })
	if len(delivered[0]) != m.N {
		t.Fatalf("received %d packets at hotspot, want %d", len(delivered[0]), m.N)
	}
	// All-to-one must take at least n-ish cycles at the receiver links:
	// node 0 has 2 incoming links, so ≥ (n−1)/2 cycles.
	if steps < int64((m.N-1)/2) {
		t.Fatalf("steps=%d below receiver bandwidth bound %d", steps, (m.N-1)/2)
	}
}

func TestGreedyRouteEmptyAndSelf(t *testing.T) {
	m := mesh.MustNew(4)
	r := m.Full()
	items := make([][]item, m.N)
	delivered, steps := GreedyRoute(m, r, items, func(v item) int { return v.dest })
	if steps != 0 {
		t.Fatalf("empty routing took %d steps", steps)
	}
	// Self-delivery is free.
	items[5] = append(items[5], item{dest: 5})
	delivered, steps = GreedyRoute(m, r, items, func(v item) int { return v.dest })
	if steps != 0 || len(delivered[5]) != 1 {
		t.Fatalf("self delivery: steps=%d delivered=%d", steps, len(delivered[5]))
	}
}

func TestGreedyRouteStaysInsideRegion(t *testing.T) {
	// Packets between opposite corners of a subregion; if the router
	// left the region it would panic on map bookkeeping only at
	// destinations, so verify by construction: destinations inside, and
	// a packet whose destination is outside must panic.
	m := mesh.MustNew(6)
	r := mesh.Region{R0: 2, C0: 2, H: 3, W: 3}
	items := make([][]item, m.N)
	items[m.IDOf(2, 2)] = append(items[m.IDOf(2, 2)], item{dest: m.IDOf(4, 4)})
	delivered, _ := GreedyRoute(m, r, items, func(v item) int { return v.dest })
	if len(delivered[m.IDOf(4, 4)]) != 1 {
		t.Fatal("in-region packet not delivered")
	}
	items2 := make([][]item, m.N)
	items2[m.IDOf(2, 2)] = append(items2[m.IDOf(2, 2)], item{dest: m.IDOf(0, 0)})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-region destination did not panic")
		}
	}()
	GreedyRoute(m, r, items2, func(v item) int { return v.dest })
}

func TestRouteL1L2Delivers(t *testing.T) {
	m := mesh.MustNew(8)
	r := m.Full()
	rng := rand.New(rand.NewSource(9))
	items := make([][]item, m.N)
	// (2, 8)-routing: every proc sends 2, destinations concentrated on
	// a quarter of the procs.
	want := map[int]int{}
	for p := 0; p < m.N; p++ {
		for j := 0; j < 2; j++ {
			d := rng.Intn(m.N / 4)
			items[p] = append(items[p], item{dest: d, id: p*2 + j})
			want[d]++
		}
	}
	delivered, cost := RouteL1L2(m, r, items, func(v item) int { return v.dest })
	for p := 0; p < m.N; p++ {
		if len(delivered[p]) != want[p] {
			t.Fatalf("proc %d received %d, want %d", p, len(delivered[p]), want[p])
		}
		for _, v := range delivered[p] {
			if v.dest != p {
				t.Fatalf("proc %d received packet for %d", p, v.dest)
			}
		}
	}
	if cost.Sort <= 0 || cost.Fine <= 0 {
		t.Fatalf("cost breakdown %+v has empty phases", cost)
	}
}

func TestRouteStagedDelivers(t *testing.T) {
	m := mesh.MustNew(9)
	r := m.Full()
	rng := rand.New(rand.NewSource(13))
	items := make([][]item, m.N)
	want := map[int]int{}
	for p := 0; p < m.N; p++ {
		for j := 0; j < 3; j++ {
			d := rng.Intn(m.N)
			items[p] = append(items[p], item{dest: d, id: p*3 + j})
			want[d]++
		}
	}
	delivered, cost := RouteStaged(m, r, 3, 9, items, func(v item) int { return v.dest })
	got := 0
	for p := 0; p < m.N; p++ {
		if len(delivered[p]) != want[p] {
			t.Fatalf("proc %d received %d, want %d", p, len(delivered[p]), want[p])
		}
		for _, v := range delivered[p] {
			if v.dest != p {
				t.Fatalf("proc %d received packet for %d", p, v.dest)
			}
		}
		got += len(delivered[p])
	}
	if got != 3*m.N {
		t.Fatalf("delivered %d packets, want %d", got, 3*m.N)
	}
	if cost.Sort <= 0 || cost.Rank <= 0 || cost.Coarse <= 0 || cost.Fine <= 0 {
		t.Fatalf("cost breakdown %+v has empty phases", cost)
	}
	if cost.Total() != cost.Sort+cost.Rank+cost.Coarse+cost.Fine {
		t.Fatal("Total mismatch")
	}
}

// The staged router must beat plain greedy when l2 is large but per-
// submesh congestion δ is small: l2 = m.N/16 packets to one proc per
// submesh quadrant would violate that; instead spread heavy receivers
// across submeshes.
func TestRouteStagedBeatsDirectOnSkewedReceivers(t *testing.T) {
	m := mesh.MustNew(16)
	r := m.Full()
	rng := rand.New(rand.NewSource(21))
	subs, _ := r.SplitQ(2, 16)
	mk := func() [][]item {
		items := make([][]item, m.N)
		// Each submesh receives exactly its share, but inside the
		// submesh all packets go to one processor: l2 large, δ small.
		id := 0
		for si, sub := range subs {
			hot := sub.ProcAtSnake(m, 0)
			for j := 0; j < 16; j++ {
				src := rng.Intn(m.N)
				items[src] = append(items[src], item{dest: hot, id: id + si*100 + j})
			}
		}
		return items
	}
	_, direct := GreedyRoute(m, r, mk(), func(v item) int { return v.dest })
	_, staged := RouteStaged(m, r, 2, 16, mk(), func(v item) int { return v.dest })
	// Not a strict theorem at this size; assert the staged fine phase is
	// small relative to its total, i.e. congestion was confined.
	if staged.Fine > staged.Total()/2 {
		t.Fatalf("staged fine phase %d dominates total %d", staged.Fine, staged.Total())
	}
	_ = direct
}

func TestCostAddMax(t *testing.T) {
	a := Cost{Sort: 1, Rank: 2, Coarse: 3, Fine: 4}
	b := Cost{Sort: 4, Rank: 1, Coarse: 5, Fine: 2}
	c := a
	c.Add(b)
	if c != (Cost{5, 3, 8, 6}) {
		t.Fatalf("Add: %+v", c)
	}
	d := a
	d.Max(b)
	if d != (Cost{4, 2, 5, 4}) {
		t.Fatalf("Max: %+v", d)
	}
}

func TestSortSnakeDuplicateKeysMultiset(t *testing.T) {
	m := mesh.MustNew(4)
	r := m.Full()
	rng := rand.New(rand.NewSource(17))
	items := make([][]item, m.N)
	var ref []uint64
	for i := 0; i < 40; i++ {
		k := uint64(rng.Intn(5))
		p := rng.Intn(m.N)
		items[p] = append(items[p], item{key: k})
		ref = append(ref, k)
	}
	out, _, _ := SortSnake(m, r, items, func(v item) uint64 { return v.key })
	var got []uint64
	for i := 0; i < r.Size(); i++ {
		for _, v := range out[r.ProcAtSnake(m, i)] {
			got = append(got, v.key)
		}
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if len(got) != len(ref) {
		t.Fatalf("lost items: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}

func TestSortSnakeRejectsMaxKey(t *testing.T) {
	m := mesh.MustNew(2)
	items := make([][]item, m.N)
	items[0] = append(items[0], item{key: MaxKey})
	defer func() {
		if recover() == nil {
			t.Fatal("MaxKey item did not panic")
		}
	}()
	SortSnake(m, m.Full(), items, func(v item) uint64 { return v.key })
}

func BenchmarkGreedyRoutePermutation(b *testing.B) {
	m := mesh.MustNew(32)
	r := m.Full()
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(m.N)
	for i := 0; i < b.N; i++ {
		items := make([][]item, m.N)
		for p := 0; p < m.N; p++ {
			items[p] = append(items[p], item{dest: perm[p]})
		}
		GreedyRoute(m, r, items, func(v item) int { return v.dest })
	}
}

func BenchmarkSortSnakeNetwork(b *testing.B) {
	m := mesh.MustNew(16)
	r := m.Full()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		items := scatterItems(m, r, 2*m.N, rng)
		SortSnake(m, r, items, func(v item) uint64 { return v.key })
	}
}

func BenchmarkSortSnakeFast(b *testing.B) {
	m := mesh.MustNew(16)
	r := m.Full()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		items := scatterItems(m, r, 2*m.N, rng)
		SortSnakeFast(m, r, items, func(v item) uint64 { return v.key })
	}
}
