package route

import (
	"fmt"

	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// gpkt is a packet in flight inside the greedy router.
type gpkt[T any] struct {
	val  T
	dest int
	seq  int32 // injection order, deterministic tie-break
	from int32 // previous hop (-1 at injection); only the fault-aware
	// router reads it, to demote the detour that undoes the last move
}

// garrival is a packet crossing into a new processor this cycle.
type garrival[T any] struct {
	to int
	pk gpkt[T]
}

// topology abstracts the link structure the greedy router moves packets
// over: the plain mesh (dimension-ordered XY inside a region) or the
// torus (wrap-around links, shorter-way-first per axis).
type topology interface {
	// next returns the outgoing direction (0..3, unique per link) and
	// the neighbor it leads to, en route from p to dest.
	next(p, dest int) (dir, to int)
	// dist is the remaining hop distance from p to dest.
	dist(p, dest int) int
}

// meshTopo routes column-first inside a rectangular region.
type meshTopo struct{ m *mesh.Machine }

func (t meshTopo) next(p, dest int) (dir, to int) {
	m := t.m
	pc, dc := m.ColOf(p), m.ColOf(dest)
	switch {
	case pc > dc:
		return 0, p - 1
	case pc < dc:
		return 1, p + 1
	}
	if m.RowOf(p) > m.RowOf(dest) {
		return 2, p - m.Side
	}
	return 3, p + m.Side
}

func (t meshTopo) dist(p, dest int) int { return t.m.Dist(p, dest) }

// torusTopo routes column-first over the full mesh with wrap-around
// links, taking the shorter way around each axis (ties: the non-wrap
// direction).
type torusTopo struct{ m *mesh.Machine }

func (t torusTopo) axis(cur, dst, size int) (step, hops int) {
	// Returns the signed unit step (−1, +1, or 0 if aligned) taking the
	// shorter way around the ring, and the hop count that way.
	if cur == dst {
		return 0, 0
	}
	fwd := (dst - cur + size) % size  // steps going +1
	back := (cur - dst + size) % size // steps going -1
	if fwd <= back {
		return 1, fwd
	}
	return -1, back
}

func (t torusTopo) next(p, dest int) (dir, to int) {
	m := t.m
	s := m.Side
	pc, dc := m.ColOf(p), m.ColOf(dest)
	if step, _ := t.axis(pc, dc, s); step != 0 {
		nc := (pc + step + s) % s
		if step < 0 {
			return 0, m.IDOf(m.RowOf(p), nc)
		}
		return 1, m.IDOf(m.RowOf(p), nc)
	}
	pr, dr := m.RowOf(p), m.RowOf(dest)
	step, _ := t.axis(pr, dr, s)
	nr := (pr + step + s) % s
	if step < 0 {
		return 2, m.IDOf(nr, m.ColOf(p))
	}
	return 3, m.IDOf(nr, m.ColOf(p))
}

func (t torusTopo) dist(p, dest int) int {
	s := t.m.Side
	_, dc := t.axis(t.m.ColOf(p), t.m.ColOf(dest), s)
	_, dr := t.axis(t.m.RowOf(p), t.m.RowOf(dest), s)
	return dc + dr
}

// GreedyRoute delivers every item to its destination processor using
// dimension-ordered (column-first) greedy routing, simulated cycle by
// cycle: in each cycle every directed link carries at most one packet,
// chosen by farthest-remaining-distance first (ties broken by injection
// order). Buffers are unbounded (store-and-forward). Destinations must
// lie inside the region; the XY path then stays inside it.
//
// It returns the delivered items per processor and the number of cycles
// (= machine steps) the routing took.
func GreedyRoute[T any](m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return greedyRoute(nil, m, r, items, dest, meshTopo{m})
}

// GreedyRouteInto is GreedyRoute delivering into a caller-provided
// buffer of per-processor slices (len m.N, region entries empty) so hot
// loops can reuse arena memory instead of reallocating; dst may be nil,
// which allocates as GreedyRoute does.
func GreedyRouteInto[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return greedyRoute(dst, m, r, items, dest, meshTopo{m})
}

// GreedyRouteTorus is GreedyRoute on the full machine with wrap-around
// links (the torus extension; experiment E16). The region is always the
// whole mesh — wrap paths cannot be confined to a submesh.
func GreedyRouteTorus[T any](m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return greedyRoute(nil, m, m.Full(), items, dest, torusTopo{m})
}

// GreedyRouteTorusInto is GreedyRouteTorus with a reusable delivery
// buffer (see GreedyRouteInto).
func GreedyRouteTorusInto[T any](dst [][]T, m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return greedyRoute(dst, m, m.Full(), items, dest, torusTopo{m})
}

func greedyRoute[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int, topo topology) (delivered [][]T, steps int64) {
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	// Queues are indexed region-locally so a routing call inside a small
	// submesh allocates proportional to the submesh, not the machine.
	local := func(p int) int { return (m.RowOf(p)-r.R0)*r.W + (m.ColOf(p) - r.C0) }
	queues := make([][]gpkt[T], r.H*r.W)
	var seq int32
	active := 0
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				d := dest(v)
				if !r.Contains(m, d) {
					panic(fmt.Sprintf("route: destination %d outside region %v", d, r))
				}
				if d == p {
					delivered[p] = append(delivered[p], v)
					continue
				}
				queues[local(p)] = append(queues[local(p)], gpkt[T]{val: v, dest: d, seq: seq})
				seq++
				active++
			}
			items[p] = items[p][:0]
		}
	}
	sp.AddPackets(int64(seq))

	// arrivals is reused across cycles to avoid per-cycle allocation;
	// the selection sweep compacts each queue in place immediately (a
	// packet arriving this cycle is only appended after the sweep, so
	// simultaneity is preserved).
	var arrivals []garrival[T]
	for active > 0 {
		steps++
		arrivals = arrivals[:0]
		for row := r.R0; row < r.R0+r.H; row++ {
			for col := r.C0; col < r.C0+r.W; col++ {
				p := m.IDOf(row, col)
				lp := local(p)
				q := queues[lp]
				if len(q) == 0 {
					continue
				}
				// best[dir] = queue index of chosen packet, -1 none.
				var best [4]int
				var bestDist [4]int
				for d := range best {
					best[d] = -1
				}
				for i := range q {
					pk := &q[i]
					dir, _ := topo.next(p, pk.dest)
					dist := topo.dist(p, pk.dest)
					if best[dir] == -1 || dist > bestDist[dir] ||
						(dist == bestDist[dir] && pk.seq < q[best[dir]].seq) {
						best[dir] = i
						bestDist[dir] = dist
					}
				}
				picked := 0
				for d := 0; d < 4; d++ {
					if best[d] >= 0 {
						_, to := topo.next(p, q[best[d]].dest)
						arrivals = append(arrivals, garrival[T]{to, q[best[d]]})
						picked++
					}
				}
				if picked > 0 {
					// Compact in place, dropping the selected indexes.
					out := q[:0]
					for i := range q {
						if i != best[0] && i != best[1] && i != best[2] && i != best[3] {
							out = append(out, q[i])
						}
					}
					queues[lp] = out
				}
			}
		}
		if len(arrivals) == 0 {
			panic("route: greedy router stalled with active packets")
		}
		for _, a := range arrivals {
			if a.to == a.pk.dest {
				delivered[a.to] = append(delivered[a.to], a.pk.val)
				active--
			} else {
				queues[local(a.to)] = append(queues[local(a.to)], a.pk)
			}
		}
	}
	return delivered, steps
}

// nextHop keeps the historical package-internal entry point used by the
// actor engine (plain mesh topology).
func nextHop(m *mesh.Machine, p, dest int) (dir, to int) {
	return meshTopo{m}.next(p, dest)
}
