package route

import (
	"meshpram/internal/mesh"
)

// gpkt is a packet in flight inside the actor-model router. (The
// cycle-accurate greedy router itself stores packets in the Engine's
// struct-of-arrays slab; see engine.go.)
type gpkt[T any] struct {
	val  T
	dest int
	seq  int32 // injection order, deterministic tie-break
	from int32 // previous hop (-1 at injection)
}

// topology abstracts the link structure the greedy router moves packets
// over: the plain mesh (dimension-ordered XY inside a region) or the
// torus (wrap-around links, shorter-way-first per axis).
type topology interface {
	// next returns the outgoing direction (0..3, unique per link) and
	// the neighbor it leads to, en route from p to dest.
	next(p, dest int) (dir, to int)
	// dist is the remaining hop distance from p to dest.
	dist(p, dest int) int
}

// meshTopo routes column-first inside a rectangular region.
type meshTopo struct{ m *mesh.Machine }

func (t meshTopo) next(p, dest int) (dir, to int) {
	m := t.m
	pc, dc := m.ColOf(p), m.ColOf(dest)
	switch {
	case pc > dc:
		return 0, p - 1
	case pc < dc:
		return 1, p + 1
	}
	if m.RowOf(p) > m.RowOf(dest) {
		return 2, p - m.Side
	}
	return 3, p + m.Side
}

func (t meshTopo) dist(p, dest int) int { return t.m.Dist(p, dest) }

// torusTopo routes column-first over the full mesh with wrap-around
// links, taking the shorter way around each axis (ties: the non-wrap
// direction).
type torusTopo struct{ m *mesh.Machine }

func (t torusTopo) axis(cur, dst, size int) (step, hops int) {
	// Returns the signed unit step (−1, +1, or 0 if aligned) taking the
	// shorter way around the ring, and the hop count that way.
	if cur == dst {
		return 0, 0
	}
	fwd := (dst - cur + size) % size  // steps going +1
	back := (cur - dst + size) % size // steps going -1
	if fwd <= back {
		return 1, fwd
	}
	return -1, back
}

func (t torusTopo) next(p, dest int) (dir, to int) {
	m := t.m
	s := m.Side
	pc, dc := m.ColOf(p), m.ColOf(dest)
	if step, _ := t.axis(pc, dc, s); step != 0 {
		nc := (pc + step + s) % s
		if step < 0 {
			return 0, m.IDOf(m.RowOf(p), nc)
		}
		return 1, m.IDOf(m.RowOf(p), nc)
	}
	pr, dr := m.RowOf(p), m.RowOf(dest)
	step, _ := t.axis(pr, dr, s)
	nr := (pr + step + s) % s
	if step < 0 {
		return 2, m.IDOf(nr, m.ColOf(p))
	}
	return 3, m.IDOf(nr, m.ColOf(p))
}

func (t torusTopo) dist(p, dest int) int {
	s := t.m.Side
	_, dc := t.axis(t.m.ColOf(p), t.m.ColOf(dest), s)
	_, dr := t.axis(t.m.RowOf(p), t.m.RowOf(dest), s)
	return dc + dr
}

// GreedyRoute delivers every item to its destination processor using
// dimension-ordered (column-first) greedy routing, simulated cycle by
// cycle: in each cycle every directed link carries at most one packet,
// chosen by farthest-remaining-distance first (ties broken by injection
// order). Buffers are unbounded (store-and-forward). Destinations must
// lie inside the region; the XY path then stays inside it.
//
// It returns the delivered items per processor and the number of cycles
// (= machine steps) the routing took.
//
// GreedyRoute and the other package-level entry points below are
// one-shot conveniences over route.Engine; hot loops should hold a
// persistent Engine instead so queue and arrival storage is reused
// across calls.
func GreedyRoute[T any](m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return NewEngine[T](m).Route(nil, r, items, dest)
}

// GreedyRouteInto is GreedyRoute delivering into a caller-provided
// buffer of per-processor slices (len m.N, region entries empty) so hot
// loops can reuse arena memory instead of reallocating; dst may be nil,
// which allocates as GreedyRoute does.
func GreedyRouteInto[T any](dst [][]T, m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return NewEngine[T](m).Route(dst, r, items, dest)
}

// GreedyRouteTorus is GreedyRoute on the full machine with wrap-around
// links (the torus extension; experiment E16). The region is always the
// whole mesh — wrap paths cannot be confined to a submesh.
func GreedyRouteTorus[T any](m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return NewEngine[T](m).RouteTorus(nil, items, dest)
}

// GreedyRouteTorusInto is GreedyRouteTorus with a reusable delivery
// buffer (see GreedyRouteInto).
func GreedyRouteTorusInto[T any](dst [][]T, m *mesh.Machine, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return NewEngine[T](m).RouteTorus(dst, items, dest)
}

// nextHop keeps the historical package-internal entry point used by the
// actor engine (plain mesh topology).
func nextHop(m *mesh.Machine, p, dest int) (dir, to int) {
	return meshTopo{m}.next(p, dest)
}
