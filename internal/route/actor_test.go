package route

import (
	"math/rand"
	"testing"

	"meshpram/internal/mesh"
)

// The actor router must reproduce the sequential cycle simulation
// exactly: same deliveries in the same per-processor order and the same
// cycle count.
func TestActorRouterMatchesSequential(t *testing.T) {
	m := mesh.MustNew(8)
	rng := rand.New(rand.NewSource(31))
	regions := []mesh.Region{m.Full(), {R0: 1, C0: 2, H: 5, W: 4}, {R0: 0, C0: 0, H: 1, W: 8}}
	for _, r := range regions {
		for trial := 0; trial < 8; trial++ {
			count := rng.Intn(4 * r.Size())
			mk := func(seed int64) [][]item {
				lr := rand.New(rand.NewSource(seed))
				items := make([][]item, m.N)
				for i := 0; i < count; i++ {
					src := r.ProcAtSnake(m, lr.Intn(r.Size()))
					dst := r.ProcAtSnake(m, lr.Intn(r.Size()))
					items[src] = append(items[src], item{dest: dst, id: i})
				}
				return items
			}
			seed := rng.Int63()
			seqDel, seqCycles := GreedyRoute(m, r, mk(seed), func(v item) int { return v.dest })
			actDel, actCycles := GreedyRouteActors(m, r, mk(seed), func(v item) int { return v.dest })
			if seqCycles != actCycles {
				t.Fatalf("region %v count %d: cycles %d (seq) vs %d (actors)", r, count, seqCycles, actCycles)
			}
			for p := 0; p < m.N; p++ {
				if len(seqDel[p]) != len(actDel[p]) {
					t.Fatalf("region %v proc %d: %d vs %d deliveries", r, p, len(seqDel[p]), len(actDel[p]))
				}
				for j := range seqDel[p] {
					if seqDel[p][j] != actDel[p][j] {
						t.Fatalf("region %v proc %d slot %d: %+v vs %+v", r, p, j, seqDel[p][j], actDel[p][j])
					}
				}
			}
		}
	}
}

func TestActorRouterEmptyAndSelf(t *testing.T) {
	m := mesh.MustNew(4)
	items := make([][]item, m.N)
	_, cycles := GreedyRouteActors(m, m.Full(), items, func(v item) int { return v.dest })
	if cycles != 0 {
		t.Fatalf("empty routing took %d cycles", cycles)
	}
	items[3] = append(items[3], item{dest: 3})
	del, cycles := GreedyRouteActors(m, m.Full(), items, func(v item) int { return v.dest })
	if cycles != 0 || len(del[3]) != 1 {
		t.Fatalf("self delivery: cycles=%d", cycles)
	}
}

func TestActorRouterAllToOne(t *testing.T) {
	m := mesh.MustNew(6)
	mk := func() [][]item {
		items := make([][]item, m.N)
		for p := 0; p < m.N; p++ {
			items[p] = append(items[p], item{dest: 0, id: p})
		}
		return items
	}
	seqDel, seqCycles := GreedyRoute(m, m.Full(), mk(), func(v item) int { return v.dest })
	actDel, actCycles := GreedyRouteActors(m, m.Full(), mk(), func(v item) int { return v.dest })
	if seqCycles != actCycles || len(seqDel[0]) != len(actDel[0]) {
		t.Fatalf("hotspot mismatch: %d/%d vs %d/%d", seqCycles, len(seqDel[0]), actCycles, len(actDel[0]))
	}
}

func TestBarrier(t *testing.T) {
	b := newBarrier(4)
	var phase [4]int
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func(i int) {
			for round := 0; round < 100; round++ {
				phase[i] = round
				b.wait()
				// After the barrier, everyone must be at the same round.
				for j := 0; j < 4; j++ {
					if phase[j] < round {
						panic("barrier leaked a laggard")
					}
				}
				b.wait()
			}
			done <- true
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func BenchmarkActorRouterPermutation(b *testing.B) {
	m := mesh.MustNew(16)
	perm := rand.New(rand.NewSource(1)).Perm(m.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([][]item, m.N)
		for p := 0; p < m.N; p++ {
			items[p] = append(items[p], item{dest: perm[p]})
		}
		GreedyRouteActors(m, m.Full(), items, func(v item) int { return v.dest })
	}
}
