package route

import (
	"sync"
	"sync/atomic"

	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// GreedyRouteActors is a distributed execution of GreedyRoute: one
// goroutine per processor of the region, communicating over per-link
// channels, synchronized by a cyclic barrier per routing cycle — the
// "goroutines map to processors" realization of the mesh. Semantics,
// delivered packet order, and the returned cycle count are exactly
// those of the sequential GreedyRoute (asserted by tests); it exists
// both as a validation of the cycle simulation and as the
// shared-nothing reference implementation.
func GreedyRouteActors[T any](m *mesh.Machine, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	sp := m.Ledger().Begin("greedy-actors", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	delivered = make([][]T, m.N)
	var active atomic.Int64
	var seq int32
	queues := make([][]gpkt[T], m.N)
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				d := dest(v)
				if !r.Contains(m, d) {
					panic("route: destination outside region")
				}
				if d == p {
					delivered[p] = append(delivered[p], v)
					continue
				}
				queues[p] = append(queues[p], gpkt[T]{val: v, dest: d, seq: seq})
				seq++
				active.Add(1)
			}
			items[p] = items[p][:0]
		}
	}
	sp.AddPackets(int64(seq))
	if active.Load() == 0 {
		return delivered, 0
	}

	// links[p][dir] carries the packet processor p sends in direction
	// dir this cycle (capacity 1: one packet per directed link/cycle).
	links := make([][4]chan gpkt[T], m.N)
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for d := 0; d < 4; d++ {
				links[p][d] = make(chan gpkt[T], 1)
			}
		}
	}

	size := r.Size()
	bar := newBarrier(size)
	var cycles int64
	var wg sync.WaitGroup
	wg.Add(size)
	for i := 0; i < size; i++ {
		p := r.ProcAtSnake(m, i)
		go func(p int, first bool) {
			defer wg.Done()
			for {
				// Send phase: pick at most one packet per direction.
				q := queues[p]
				var best [4]int
				var bestDist [4]int
				for d := range best {
					best[d] = -1
				}
				for i, pk := range q {
					dir, _ := nextHop(m, p, pk.dest)
					dist := m.Dist(p, pk.dest)
					if best[dir] == -1 || dist > bestDist[dir] ||
						(dist == bestDist[dir] && pk.seq < q[best[dir]].seq) {
						best[dir] = i
						bestDist[dir] = dist
					}
				}
				sent := map[int]bool{}
				for d := 0; d < 4; d++ {
					if best[d] >= 0 {
						links[p][d] <- q[best[d]]
						sent[best[d]] = true
					}
				}
				if len(sent) > 0 {
					out := q[:0]
					for i, pk := range q {
						if !sent[i] {
							out = append(out, pk)
						}
					}
					queues[p] = out
				}
				bar.wait()

				// Receive phase: drain incoming links in the order the
				// sequential router appends arrivals (sources in
				// row-major order: north, west, east, south neighbor).
				recv := func(src, dir int) {
					select {
					case pk := <-links[src][dir]:
						if pk.dest == p {
							delivered[p] = append(delivered[p], pk.val)
							active.Add(-1)
						} else {
							queues[p] = append(queues[p], pk)
						}
					default:
					}
				}
				if m.RowOf(p) > r.R0 {
					recv(p-m.Side, 3) // from north neighbor, sent south
				}
				if m.ColOf(p) > r.C0 {
					recv(p-1, 1) // from west neighbor, sent east
				}
				if m.ColOf(p) < r.C0+r.W-1 {
					recv(p+1, 0) // from east neighbor, sent west
				}
				if m.RowOf(p) < r.R0+r.H-1 {
					recv(p+m.Side, 2) // from south neighbor, sent north
				}
				if first {
					//detlint:ignore goroutineshare single writer: only the first actor increments, and bar.wait() orders the write against every read
					cycles++
				}
				bar.wait()
				if active.Load() == 0 {
					return
				}
			}
		}(p, i == 0)
	}
	wg.Wait()
	return delivered, cycles
}

// barrier is a reusable cyclic barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for this generation.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
