package route

import (
	"fmt"
	"math/rand"
	"testing"

	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// The event engine must be a perfect discrete-event simulation of the
// cycle-stepped machine: everything the cycle engine produces —
// delivered contents and per-processor order, charged cycles, lost
// counts, ledger spans — must be byte-identical in event mode, at
// every worker width, on every topology, with and without faults. The
// only permitted difference is the executed-iteration count, which may
// only ever be ≤ the charged cycle count.

// runEngineMode is runEngine with an explicit execution mode and an
// optional horizon source; it additionally reports the executed
// iteration count of the call.
func runEngineMode(t *testing.T, mode EngineMode, hsrc HorizonSource, workers int, withFaults, torus, faultPath bool, items func(m *mesh.Machine) [][]item) (engineRun, int64) {
	t.Helper()
	m := mesh.MustNew(16)
	if withFaults {
		m.SetFaults(staticFaults(16))
	}
	if workers != 1 {
		m.SetParallel(workers)
	}
	ld := trace.New()
	m.AttachLedger(ld)
	eng := NewEngine[item](m)
	eng.SetMode(mode)
	eng.SetHorizonSource(hsrc)
	work := items(m)
	dest := func(v item) int { return v.dest }

	var run engineRun
	switch {
	case faultPath && torus:
		run.delivered, run.steps, run.lost = eng.RouteTorusFault(nil, work, dest)
	case faultPath:
		run.delivered, run.steps, run.lost = eng.RouteFault(nil, m.Full(), work, dest)
	case torus:
		run.delivered, run.steps = eng.RouteTorus(nil, work, dest)
	default:
		run.delivered, run.steps = eng.Route(nil, m.Full(), work, dest)
	}
	sp := ld.Last()
	if sp == nil {
		t.Fatal("routing left no ledger span")
	}
	run.observed = sp.Observed()
	run.packets = sp.TotalPackets()
	run.phases = sp.PhaseTotals()
	run.lostAttr, _ = sp.Attr("lost")
	return run, eng.Executed()
}

// TestEventCycleBitIdentity is the seeded event-vs-cycle matrix:
// instance kinds × {mesh, torus} × {healthy, static faults (dead
// node, dead links, slow links)} × worker widths {1, 4, 8}. Every
// observable output must match; executed iterations must be ≤ charged
// cycles in event mode and equal in cycle mode.
func TestEventCycleBitIdentity(t *testing.T) {
	for _, kind := range []string{"random", "transpose", "hotspot"} {
		for _, torus := range []bool{false, true} {
			for _, faults := range []bool{false, true} {
				for _, workers := range []int{1, 4, 8} {
					label := fmt.Sprintf("%s/torus=%v/faults=%v/workers=%d",
						kind, torus, faults, workers)
					items := func(m *mesh.Machine) [][]item {
						return engineInstance(kind, m, 42)
					}
					// The fault path also covers the healthy map (it is
					// bit-identical to the fast path by contract), so use
					// it whenever faults are installed.
					cyc, cycExec := runEngineMode(t, ModeCycle, nil, workers, faults, torus, faults, items)
					evt, evtExec := runEngineMode(t, ModeEvent, nil, workers, faults, torus, faults, items)
					requireIdentical(t, label, cyc, evt)
					if cycExec != cyc.steps {
						t.Errorf("%s: cycle mode executed %d of %d charged cycles",
							label, cycExec, cyc.steps)
					}
					if evtExec > evt.steps {
						t.Errorf("%s: event mode executed %d > %d charged cycles",
							label, evtExec, evt.steps)
					}
				}
			}
		}
	}
}

// TestEventFixedHorizonCap pins the HorizonSource contract: an
// external cap bounds every skip without changing any observable
// output, and a non-positive cap disables batching entirely (executed
// equals charged — the engine degrades to the cycle loop).
func TestEventFixedHorizonCap(t *testing.T) {
	items := func(m *mesh.Machine) [][]item { return engineInstance("random", m, 7) }

	ref, refExec := runEngineMode(t, ModeCycle, nil, 1, false, false, false, items)
	free, freeExec := runEngineMode(t, ModeEvent, nil, 1, false, false, false, items)
	capped, cappedExec := runEngineMode(t, ModeEvent, FixedHorizon(7), 1, false, false, false, items)
	off, offExec := runEngineMode(t, ModeEvent, FixedHorizon(0), 1, false, false, false, items)

	requireIdentical(t, "uncapped", ref, free)
	requireIdentical(t, "capped-7", ref, capped)
	requireIdentical(t, "capped-0", ref, off)
	if freeExec > cappedExec || cappedExec > offExec {
		t.Errorf("executed iterations not monotone in the cap: free %d, cap-7 %d, cap-0 %d",
			freeExec, cappedExec, offExec)
	}
	if offExec != ref.steps || refExec != ref.steps {
		t.Errorf("zero horizon must execute every charged cycle: got %d (cycle %d) of %d",
			offExec, refExec, ref.steps)
	}
}

// TestEventExecutedBounded asserts the executed ≤ charged invariant on
// the benchmark workloads (the same instances BENCH_ROUTE pins), at
// both benchmark sides.
func TestEventExecutedBounded(t *testing.T) {
	for _, kind := range []string{"dense", "transpose", "sparse"} {
		for _, side := range []int{27, 81} {
			m := mesh.MustNew(side)
			rng := rand.New(rand.NewSource(1))
			items := make([][]int, m.N)
			switch kind {
			case "dense":
				for p := 0; p < m.N; p++ {
					for j := 0; j < 4; j++ {
						items[p] = append(items[p], rng.Intn(m.N))
					}
				}
			case "transpose":
				for p := 0; p < m.N; p++ {
					items[p] = append(items[p], m.IDOf(m.ColOf(p), m.RowOf(p)))
				}
			case "sparse":
				for p := 0; p < m.N; p += 16 {
					items[p] = append(items[p], rng.Intn(m.N))
				}
			}
			eng := NewEngine[int](m)
			_, steps := eng.Route(nil, m.Full(), items, func(d int) int { return d })
			if exec := eng.Executed(); exec > steps || exec <= 0 {
				t.Errorf("%s-%d: executed %d outside (0, charged=%d]", kind, side, exec, steps)
			}
		}
	}
}
