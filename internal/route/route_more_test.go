package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meshpram/internal/mesh"
)

// Sorting must work on strongly rectangular regions (aspect ratio q
// arises from odd tessellation depths).
func TestSortSnakeRectangularRegions(t *testing.T) {
	m := mesh.MustNew(12)
	rng := rand.New(rand.NewSource(23))
	for _, r := range []mesh.Region{
		{R0: 0, C0: 0, H: 3, W: 12},
		{R0: 2, C0: 0, H: 4, W: 12},
		{R0: 0, C0: 3, H: 12, W: 3},
		{R0: 5, C0: 5, H: 2, W: 6},
	} {
		items := scatterItems(m, r, 3*r.Size(), rng)
		out, _, _ := SortSnake(m, r, items, func(v item) uint64 { return v.key })
		all := collect(m, r, out)
		for i := 1; i < len(all); i++ {
			if all[i-1].key > all[i].key {
				t.Fatalf("region %v not sorted", r)
			}
		}
	}
}

// RouteStaged with parts=1 degenerates to sort + route in one region.
func TestRouteStagedSinglePart(t *testing.T) {
	m := mesh.MustNew(6)
	rng := rand.New(rand.NewSource(29))
	items := scatterItems(m, m.Full(), 40, rng)
	want := map[int]int{}
	for p := range items {
		for _, it := range items[p] {
			want[it.dest]++
		}
	}
	delivered, cost := RouteStaged(m, m.Full(), 3, 1, items, func(v item) int { return v.dest })
	for p := 0; p < m.N; p++ {
		if len(delivered[p]) != want[p] {
			t.Fatalf("proc %d: %d vs %d", p, len(delivered[p]), want[p])
		}
	}
	if cost.Total() <= 0 {
		t.Fatal("no cost charged")
	}
}

// Property: GreedyRoute delivers every packet exactly once, regardless
// of load distribution.
func TestQuickGreedyRouteConservation(t *testing.T) {
	m := mesh.MustNew(6)
	r := m.Full()
	prop := func(seed int64, loadRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		load := int(loadRaw)%80 + 1
		items := make([][]item, m.N)
		want := map[int]int{}
		for i := 0; i < load; i++ {
			src := rng.Intn(m.N)
			dst := rng.Intn(m.N)
			items[src] = append(items[src], item{dest: dst, id: i})
			want[dst]++
		}
		delivered, _ := GreedyRoute(m, r, items, func(v item) int { return v.dest })
		got := 0
		for p := range delivered {
			for _, v := range delivered[p] {
				if v.dest != p {
					return false
				}
			}
			got += len(delivered[p])
			if len(delivered[p]) != want[p] {
				return false
			}
		}
		return got == load
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Greedy routing is deterministic: identical inputs give identical step
// counts and deliveries.
func TestGreedyRouteDeterministic(t *testing.T) {
	m := mesh.MustNew(8)
	rng := rand.New(rand.NewSource(41))
	mk := func() [][]item {
		lr := rand.New(rand.NewSource(7))
		items := make([][]item, m.N)
		for i := 0; i < 100; i++ {
			items[lr.Intn(m.N)] = append(items[lr.Intn(m.N)], item{dest: lr.Intn(m.N), id: i})
		}
		return items
	}
	_ = rng
	d1, s1 := GreedyRoute(m, m.Full(), mk(), func(v item) int { return v.dest })
	d2, s2 := GreedyRoute(m, m.Full(), mk(), func(v item) int { return v.dest })
	if s1 != s2 {
		t.Fatalf("steps %d vs %d", s1, s2)
	}
	for p := range d1 {
		if len(d1[p]) != len(d2[p]) {
			t.Fatalf("proc %d: %d vs %d", p, len(d1[p]), len(d2[p]))
		}
		for j := range d1[p] {
			if d1[p][j] != d2[p][j] {
				t.Fatalf("proc %d slot %d differs", p, j)
			}
		}
	}
}

// A permutation's routing time is near the distance bound: for a plain
// permutation, greedy XY needs at most ~2·side + queueing.
func TestGreedyRoutePermutationEfficiency(t *testing.T) {
	m := mesh.MustNew(16)
	for seed := int64(0); seed < 5; seed++ {
		perm := rand.New(rand.NewSource(seed)).Perm(m.N)
		items := make([][]item, m.N)
		for p := 0; p < m.N; p++ {
			items[p] = append(items[p], item{dest: perm[p], id: p})
		}
		_, steps := GreedyRoute(m, m.Full(), items, func(v item) int { return v.dest })
		// Greedy on random permutations is known to finish in
		// 2·side + o(side) with overwhelming probability; allow 4×.
		if steps > int64(4*2*m.Side) {
			t.Fatalf("seed %d: permutation took %d steps (side %d)", seed, steps, m.Side)
		}
	}
}

// The staged router must keep all phase costs non-negative and the
// delivered multiset intact on a rectangular region.
func TestRouteStagedRectangularRegion(t *testing.T) {
	m := mesh.MustNew(12)
	r := mesh.Region{R0: 0, C0: 0, H: 6, W: 12} // aspect 2
	rng := rand.New(rand.NewSource(3))
	items := make([][]item, m.N)
	count := 50
	for i := 0; i < count; i++ {
		src := r.ProcAtSnake(m, rng.Intn(r.Size()))
		dst := r.ProcAtSnake(m, rng.Intn(r.Size()))
		items[src] = append(items[src], item{dest: dst, id: i})
	}
	delivered, cost := RouteStaged(m, r, 2, 4, items, func(v item) int { return v.dest })
	got := 0
	for p := range delivered {
		got += len(delivered[p])
	}
	if got != count {
		t.Fatalf("delivered %d of %d", got, count)
	}
	if cost.Sort < 0 || cost.Rank < 0 || cost.Coarse < 0 || cost.Fine < 0 {
		t.Fatalf("negative phase in %+v", cost)
	}
}
