package route

import (
	"math/rand"
	"testing"

	"meshpram/internal/mesh"
)

func TestTorusDist(t *testing.T) {
	m := mesh.MustNew(8)
	topo := torusTopo{m}
	cases := []struct {
		a, b, want int
	}{
		{m.IDOf(0, 0), m.IDOf(0, 7), 1},  // wrap column
		{m.IDOf(0, 0), m.IDOf(7, 0), 1},  // wrap row
		{m.IDOf(0, 0), m.IDOf(4, 4), 8},  // antipodal: 4+4 either way
		{m.IDOf(0, 0), m.IDOf(0, 3), 3},  // no wrap shorter
		{m.IDOf(2, 2), m.IDOf(2, 2), 0},  // self
		{m.IDOf(1, 1), m.IDOf(6, 6), 10}, // 5+5 wrap? fwd 5 back 3 → 3+3=6
	}
	cases[5].want = 6
	for _, c := range cases {
		if got := topo.dist(c.a, c.b); got != c.want {
			t.Errorf("torus dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		// Torus distance never exceeds mesh distance.
		if topo.dist(c.a, c.b) > m.Dist(c.a, c.b) {
			t.Errorf("torus dist exceeds mesh dist for (%d,%d)", c.a, c.b)
		}
	}
}

// Following next() hops from any source must reach the destination in
// exactly dist() steps.
func TestTorusNextConvergesAlongShortestPath(t *testing.T) {
	m := mesh.MustNew(6)
	topo := torusTopo{m}
	for a := 0; a < m.N; a++ {
		for b := 0; b < m.N; b++ {
			p := a
			steps := 0
			for p != b {
				_, to := topo.next(p, b)
				if m.Dist(p, to) != 1 && !isWrapNeighbor(m, p, to) {
					t.Fatalf("next(%d,%d) jumped from %d to non-neighbor %d", a, b, p, to)
				}
				if topo.dist(to, b) != topo.dist(p, b)-1 {
					t.Fatalf("next(%d→%d) at %d did not reduce distance", a, b, p)
				}
				p = to
				steps++
				if steps > 2*m.Side {
					t.Fatalf("path %d→%d did not converge", a, b)
				}
			}
			if steps != topo.dist(a, b) {
				t.Fatalf("path %d→%d took %d hops, dist says %d", a, b, steps, topo.dist(a, b))
			}
		}
	}
}

func isWrapNeighbor(m *mesh.Machine, p, q int) bool {
	pr, pc := m.RowOf(p), m.ColOf(p)
	qr, qc := m.RowOf(q), m.ColOf(q)
	s := m.Side
	sameRow := pr == qr && (pc == 0 && qc == s-1 || pc == s-1 && qc == 0)
	sameCol := pc == qc && (pr == 0 && qr == s-1 || pr == s-1 && qr == 0)
	return sameRow || sameCol
}

func TestGreedyRouteTorusDelivers(t *testing.T) {
	m := mesh.MustNew(8)
	rng := rand.New(rand.NewSource(19))
	items := make([][]item, m.N)
	want := map[int]int{}
	for p := 0; p < m.N; p++ {
		for j := 0; j < 2; j++ {
			d := rng.Intn(m.N)
			items[p] = append(items[p], item{dest: d, id: p*2 + j})
			want[d]++
		}
	}
	delivered, steps := GreedyRouteTorus(m, items, func(v item) int { return v.dest })
	for p := 0; p < m.N; p++ {
		if len(delivered[p]) != want[p] {
			t.Fatalf("proc %d received %d, want %d", p, len(delivered[p]), want[p])
		}
	}
	if steps <= 0 {
		t.Fatal("zero steps for nontrivial routing")
	}
}

// The torus must beat the mesh on corner-to-corner traffic (diameter
// halves per axis).
func TestTorusBeatsMeshOnLongHaul(t *testing.T) {
	m := mesh.MustNew(16)
	mk := func() [][]item {
		items := make([][]item, m.N)
		// Shift by 12 per axis: mesh distance 12+12, torus distance 4+4
		// (the wrap way is shorter).
		for p := 0; p < m.N; p++ {
			r := (m.RowOf(p) + 12) % 16
			c := (m.ColOf(p) + 12) % 16
			items[p] = append(items[p], item{dest: m.IDOf(r, c), id: p})
		}
		return items
	}
	_, meshSteps := GreedyRoute(m, m.Full(), mk(), func(v item) int { return v.dest })
	_, torusSteps := GreedyRouteTorus(m, mk(), func(v item) int { return v.dest })
	if torusSteps >= meshSteps {
		t.Fatalf("torus (%d) not faster than mesh (%d) on antipodal traffic", torusSteps, meshSteps)
	}
}
