package route

import (
	"math/rand"
	"reflect"
	"testing"

	"meshpram/internal/fault"
	"meshpram/internal/mesh"
)

// cloneItems deep-copies a per-processor item scatter so the same
// workload can be routed twice.
func cloneItems(items [][]item) [][]item {
	out := make([][]item, len(items))
	for p := range items {
		out[p] = append([]item(nil), items[p]...)
	}
	return out
}

// TestFaultRouterEmptyMapIdentity pins the rate-0 guarantee at the
// router level: with a non-nil empty fault map, the fault-aware router
// must make bit-identical decisions to the healthy one — same
// delivered multisets per processor (in order) and the same cycle
// count, on both the mesh and the torus.
func TestFaultRouterEmptyMapIdentity(t *testing.T) {
	m1, m2 := mesh.MustNew(6), mesh.MustNew(6)
	m2.SetFaults(fault.NewMap(6))
	rng := rand.New(rand.NewSource(5))
	for _, r := range []mesh.Region{m1.Full(), {R0: 1, C0: 1, H: 4, W: 3}} {
		for trial := 0; trial < 8; trial++ {
			items := scatterItems(m1, r, 60, rng)
			healthy, hSteps := GreedyRoute(m1, r, cloneItems(items), func(v item) int { return v.dest })
			faulty, fSteps, lost := GreedyRouteFaultInto(nil, m2, r, cloneItems(items), func(v item) int { return v.dest })
			if lost != 0 {
				t.Fatalf("region %v: empty map lost %d packets", r, lost)
			}
			if hSteps != fSteps {
				t.Fatalf("region %v: healthy %d cycles, fault path %d", r, hSteps, fSteps)
			}
			if !reflect.DeepEqual(healthy, faulty) {
				t.Fatalf("region %v: delivery order diverged on empty fault map", r)
			}
		}
	}
	// Torus flavor.
	items := scatterItems(m1, m1.Full(), 80, rng)
	healthy, hSteps := GreedyRouteTorus(m1, cloneItems(items), func(v item) int { return v.dest })
	faulty, fSteps, lost := GreedyRouteTorusFaultInto(nil, m2, cloneItems(items), func(v item) int { return v.dest })
	if lost != 0 || hSteps != fSteps || !reflect.DeepEqual(healthy, faulty) {
		t.Fatalf("torus: empty-map identity broken (lost=%d, %d vs %d cycles)", lost, hSteps, fSteps)
	}
}

// TestFaultRouterDetour kills a link on the preferred dimension-ordered
// path and checks the packet still arrives (no loss), with the extra
// cycles charged. Without backtrack demotion this exact cut livelocks:
// the blocked packet's best detour undoes its last hop and it ping-pongs
// until the budget drops it.
func TestFaultRouterDetour(t *testing.T) {
	m := mesh.MustNew(5)
	f := fault.NewMap(5)
	// The packet 0→4 prefers the top row; sever it at 1-2.
	f.KillLink(1, 2)
	m.SetFaults(f)
	items := make([][]item, m.N)
	items[0] = []item{{dest: 4, id: 1}}
	delivered, steps, lost := GreedyRouteFaultInto(nil, m, m.Full(), items, func(v item) int { return v.dest })
	if lost != 0 {
		t.Fatalf("lost %d packets around a detourable cut", lost)
	}
	if len(delivered[4]) != 1 || delivered[4][0].id != 1 {
		t.Fatalf("packet not delivered: %v", delivered[4])
	}
	if steps < 5 {
		t.Errorf("detour charged %d cycles, want ≥ 5 (healthy distance is 4)", steps)
	}
}

// TestFaultRouterDoubleCutDrops documents the limitation of local greedy
// detouring: with the top row severed twice (1-2 and 6-7) the packet
// 0→4 would have to plan around both cuts at once, which a one-hop
// lookahead cannot do. The requirement is bounded failure — the packet
// is dropped and counted once the retry budget runs out, not routed
// forever.
func TestFaultRouterDoubleCutDrops(t *testing.T) {
	m := mesh.MustNew(5)
	f := fault.NewMap(5)
	f.KillLink(1, 2)
	f.KillLink(6, 7)
	m.SetFaults(f)
	items := make([][]item, m.N)
	items[0] = []item{{dest: 4, id: 1}}
	delivered, steps, lost := GreedyRouteFaultInto(nil, m, m.Full(), items, func(v item) int { return v.dest })
	if lost != 1 {
		t.Errorf("lost = %d, want 1 (double cut defeats local detouring)", lost)
	}
	if len(delivered[4]) != 0 {
		t.Errorf("unexpected delivery through a double cut: %v", delivered[4])
	}
	if budget := int64(16*(5+5) + 4*1); steps > budget {
		t.Errorf("dropped after %d cycles, budget is %d — retry not bounded", steps, budget)
	}
}

// TestFaultRouterDeadDestination: packets to dead nodes are lost at
// injection, everything else still flows.
func TestFaultRouterDeadDestination(t *testing.T) {
	m := mesh.MustNew(4)
	f := fault.NewMap(4)
	f.KillNode(15)
	m.SetFaults(f)
	items := make([][]item, m.N)
	items[0] = []item{{dest: 15, id: 1}, {dest: 5, id: 2}}
	delivered, _, lost := GreedyRouteFaultInto(nil, m, m.Full(), items, func(v item) int { return v.dest })
	if lost != 1 {
		t.Errorf("lost = %d, want 1 (the dead-destination packet)", lost)
	}
	if len(delivered[5]) != 1 || delivered[5][0].id != 2 {
		t.Errorf("live packet not delivered: %v", delivered[5])
	}
}

// TestFaultRouterSlowLink: a slow link stretches the cycle count but
// loses nothing.
func TestFaultRouterSlowLink(t *testing.T) {
	m := mesh.MustNew(4)
	healthyItems := func() [][]item {
		items := make([][]item, m.N)
		items[0] = []item{{dest: 3, id: 1}}
		return items
	}
	_, base, lost0 := GreedyRouteFaultInto(nil, m, m.Full(), healthyItems(), func(v item) int { return v.dest })
	if lost0 != 0 {
		t.Fatal("healthy run lost packets")
	}
	f := fault.NewMap(4)
	f.SlowLink(1, 2, 4)
	m.SetFaults(f)
	delivered, slow, lost := GreedyRouteFaultInto(nil, m, m.Full(), healthyItems(), func(v item) int { return v.dest })
	m.SetFaults(nil)
	if lost != 0 || len(delivered[3]) != 1 {
		t.Fatalf("slow link lost the packet (lost=%d)", lost)
	}
	if slow <= base {
		t.Errorf("slow-link route took %d cycles, healthy %d — no slowdown charged", slow, base)
	}
}

// TestFaultRouterWalledIn: a node with every link dead cannot be
// reached; its packets are dropped once the budget or the idle break
// triggers, not spun forever.
func TestFaultRouterWalledIn(t *testing.T) {
	m := mesh.MustNew(4)
	f := fault.NewMap(4)
	// Isolate processor 5 (links to 1, 4, 6, 9) without killing it.
	f.KillLink(5, 1)
	f.KillLink(5, 4)
	f.KillLink(5, 6)
	f.KillLink(5, 9)
	m.SetFaults(f)
	items := make([][]item, m.N)
	items[0] = []item{{dest: 5, id: 1}, {dest: 10, id: 2}}
	delivered, _, lost := GreedyRouteFaultInto(nil, m, m.Full(), items, func(v item) int { return v.dest })
	if lost != 1 {
		t.Errorf("lost = %d, want 1 (the walled-in destination)", lost)
	}
	if len(delivered[10]) != 1 {
		t.Errorf("reachable packet not delivered")
	}
}
