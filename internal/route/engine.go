package route

import (
	"fmt"
	"slices"
	"sync"

	"meshpram/internal/fault"
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// Engine is a persistent, allocation-lean greedy router. It simulates
// the same cycle-accurate dimension-ordered routing as GreedyRoute —
// bit-identically: delivered contents, per-processor delivery order,
// cycle counts and ledger spans all match the historical per-call
// router — but keeps every buffer it needs across Route calls, so a
// hot loop (a protocol stage per PRAM step, a baseline batch, a repair
// scrub) routes without rebuilding queue or arrival storage.
//
// Layout and algorithm:
//
//   - packets live in a flat struct-of-arrays slab (value, destination,
//     remaining distance, outgoing direction, previous hop), indexed by
//     slot id; slot ids are assigned in injection order, so the slot id
//     doubles as the deterministic tie-break key;
//   - per-node queues hold slot ids and keep their capacity across
//     calls (the free-list: the slab and all queues are truncated, not
//     freed, when a call completes);
//   - an active-node worklist holds exactly the occupied nodes, sorted
//     into region row-major order each cycle, so a cycle costs
//     O(occupied nodes + queued packets) instead of O(region);
//   - each packet caches its (direction, remaining distance): the
//     distance decreases by one per hop and the direction is only
//     recomputed when the packet crosses its destination column (or,
//     after a fault detour, from scratch at the new position) — the
//     per-cycle topology interface calls of the old router are gone;
//   - with mesh workers > 1 the selection sweep runs sharded: the
//     sorted worklist is cut into contiguous row-ordered strips, one
//     worker each, and the per-worker arrival buffers are concatenated
//     in strip order. Selection is node-local and the strip order
//     equals the sequential sweep order, so the parallel sweep is
//     bit-identical to the sequential one by construction (DESIGN.md
//     §10).
//
// An Engine is not safe for concurrent use; give each goroutine its
// own. The zero value is not usable — construct with NewEngine.
type Engine[T any] struct {
	m *mesh.Machine

	// Struct-of-arrays packet slab, truncated (capacity kept) per call.
	// Slot i was the i-th routed packet injected, so slot order is the
	// historical seq order.
	val   []T
	dests []int32
	dist  []int32
	dir   []int8
	from  []int32 // previous hop (-1 at injection); fault path only

	queues  [][]int32 // region-local node id → queued slot ids
	inQ     []bool    // region-local node id → on the worklist
	active  []int32   // worklist: occupied region-local node ids
	scratch []int32   // worklist double-buffer for the rebuild pass

	arr [][]engArrival // per-shard arrival buffers, merged in shard order
}

// engArrival is one packet crossing into a new processor this cycle.
type engArrival struct {
	to    int32 // absolute destination processor of the hop
	slot  int32
	fromP int32 // node that sent it (fault path: backtrack demotion)
	// detour marks a hop off the preferred dimension-ordered direction;
	// the merge then recomputes the packet's cached (dir, dist) from
	// scratch instead of updating incrementally.
	detour bool
}

// engShardMin is the minimum worklist length per parallel shard; below
// it the sweep stays sequential (shard overhead would dominate).
const engShardMin = 64

// NewEngine creates a reusable greedy router for the machine.
func NewEngine[T any](m *mesh.Machine) *Engine[T] {
	return &Engine[T]{m: m}
}

// Route delivers every item to its destination processor inside region
// r over plain mesh links, exactly like GreedyRoute, into dst (nil
// allocates). It returns the delivered items per processor and the
// cycle count.
func (e *Engine[T]) Route(dst [][]T, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return e.route(dst, r, items, dest, meshTopo{e.m}, false)
}

// RouteTorus is Route on the full machine with wrap-around links.
func (e *Engine[T]) RouteTorus(dst [][]T, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return e.route(dst, e.m.Full(), items, dest, torusTopo{e.m}, true)
}

// RouteFault is the fault-aware routing of GreedyRouteFaultInto on the
// engine: detours around dead links/nodes with backtrack demotion,
// slow-link waiting, a bounded retry budget, and lost-packet
// accounting, all bit-identical to the per-call router.
func (e *Engine[T]) RouteFault(dst [][]T, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return e.routeFault(dst, r, items, dest, meshTopo{e.m}, false)
}

// RouteTorusFault is RouteFault on the full machine with wrap-around
// links.
func (e *Engine[T]) RouteTorusFault(dst [][]T, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return e.routeFault(dst, e.m.Full(), items, dest, torusTopo{e.m}, true)
}

// ensure sizes the per-node state for region r and truncates the slab.
func (e *Engine[T]) ensure(r mesh.Region) {
	nl := r.H * r.W
	if nl > len(e.queues) {
		if nl <= cap(e.queues) {
			e.queues = e.queues[:nl]
		} else {
			nq := make([][]int32, nl)
			copy(nq, e.queues)
			e.queues = nq
		}
	}
	if nl > len(e.inQ) {
		e.inQ = make([]bool, nl) // all-false at rest by invariant
	}
	e.val = e.val[:0]
	e.dests = e.dests[:0]
	e.dist = e.dist[:0]
	e.dir = e.dir[:0]
	e.from = e.from[:0]
}

// cleanup truncates every touched queue and clears the worklist, so the
// engine is back to its at-rest invariant (all queues empty, all inQ
// false) whatever state the routing loop ended in.
func (e *Engine[T]) cleanup() {
	for _, lp := range e.active {
		e.queues[lp] = e.queues[lp][:0]
		e.inQ[lp] = false
	}
	e.active = e.active[:0]
}

// localOf maps an absolute processor id to its region-local index.
func (e *Engine[T]) localOf(p int, r mesh.Region) int {
	return (e.m.RowOf(p)-r.R0)*r.W + (e.m.ColOf(p) - r.C0)
}

// absOf maps a region-local index back to the absolute processor id.
func (e *Engine[T]) absOf(lp int, r mesh.Region) int {
	return e.m.IDOf(r.R0+lp/r.W, r.C0+lp%r.W)
}

// stepTo returns the neighbor one hop in direction dir (0=-col, 1=+col,
// 2=-row, 3=+row), wrapping on the torus. The caller guarantees the hop
// stays inside the region (preferred dimension-ordered hops always do).
func (e *Engine[T]) stepTo(p, dir int, wrap bool) int {
	m := e.m
	if !wrap {
		switch dir {
		case 0:
			return p - 1
		case 1:
			return p + 1
		case 2:
			return p - m.Side
		default:
			return p + m.Side
		}
	}
	s := m.Side
	row, col := m.RowOf(p), m.ColOf(p)
	switch dir {
	case 0:
		col = (col - 1 + s) % s
	case 1:
		col = (col + 1) % s
	case 2:
		row = (row - 1 + s) % s
	default:
		row = (row + 1) % s
	}
	return m.IDOf(row, col)
}

// stepBounded is stepTo with region bounds: ok=false when the hop
// leaves the region (wrap allowed on the torus, where the region is the
// full machine). It is the engine port of the fault router's neighborOf.
func (e *Engine[T]) stepBounded(p, dir int, r mesh.Region, wrap bool) (int, bool) {
	m := e.m
	row, col := m.RowOf(p), m.ColOf(p)
	switch dir {
	case 0:
		col--
	case 1:
		col++
	case 2:
		row--
	default:
		row++
	}
	if wrap {
		s := m.Side
		return m.IDOf((row+s)%s, (col+s)%s), true
	}
	if row < r.R0 || row >= r.R0+r.H || col < r.C0 || col >= r.C0+r.W {
		return 0, false
	}
	return m.IDOf(row, col), true
}

// rowDirAfterCol returns the cached direction for a packet that just
// reached its destination column: the row direction topo.next would
// choose at p.
func rowDirAfterCol(m *mesh.Machine, p, dest int, wrap bool) int8 {
	if !wrap {
		if m.RowOf(p) > m.RowOf(dest) {
			return 2
		}
		return 3
	}
	step, _ := torusTopo{m}.axis(m.RowOf(p), m.RowOf(dest), m.Side)
	if step < 0 {
		return 2
	}
	return 3
}

// enqueue appends slot to node lp's queue, adding lp to the worklist
// being built when it was not occupied.
func (e *Engine[T]) enqueue(lp int, slot int32, wl []int32) []int32 {
	e.queues[lp] = append(e.queues[lp], slot)
	if !e.inQ[lp] {
		e.inQ[lp] = true
		wl = append(wl, int32(lp))
	}
	return wl
}

// inject drains items into the slab and queues. Packets already at
// their destination are delivered immediately; with a fault map f
// (fault path only — the healthy path passes nil even on a faulted
// machine, like GreedyRoute always did), packets to dead nodes are
// lost at injection. Returns the number of routed (queued) packets,
// which is also the slab length, and the injection losses.
func (e *Engine[T]) inject(delivered [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, f *fault.Map) (active, lost int) {
	m := e.m
	wl := e.active
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				d := dest(v)
				if !r.Contains(m, d) {
					panic(fmt.Sprintf("route: destination %d outside region %v", d, r))
				}
				if f.NodeDead(d) {
					lost++ // undeliverable: the destination is dead
					continue
				}
				if d == p {
					delivered[p] = append(delivered[p], v)
					continue
				}
				slot := int32(len(e.val))
				dr, _ := topo.next(p, d)
				e.val = append(e.val, v)
				e.dests = append(e.dests, int32(d))
				e.dist = append(e.dist, int32(topo.dist(p, d)))
				e.dir = append(e.dir, int8(dr))
				e.from = append(e.from, -1)
				wl = e.enqueue(e.localOf(p, r), slot, wl)
				active++
			}
			items[p] = items[p][:0]
		}
	}
	e.active = wl
	return active, lost
}

// shardPlan returns how many parallel shards this cycle's sweep uses:
// 1 (sequential) unless the machine's engine width and the worklist
// length both warrant sharding.
func (e *Engine[T]) shardPlan() int {
	wk := e.m.Workers()
	if wk <= 1 {
		return 1
	}
	s := len(e.active) / engShardMin
	if s > wk {
		s = wk
	}
	if s < 2 {
		return 1
	}
	return s
}

// sweep runs one selection sweep over the sorted worklist — sequential
// or sharded per shardPlan — filling e.arr[0:shards]. The sweep only
// reads packet state and fault/topology data and only writes its own
// shard's queues and arrival buffer, so shards race on nothing; the
// concatenation of the shard buffers equals the sequential arrival
// order because the worklist is sorted and shards are contiguous.
// Returns (shards, total arrivals).
func (e *Engine[T]) sweep(r mesh.Region, topo topology, wrap, faulty bool, cycle int64) (int, int) {
	shards := e.shardPlan()
	for len(e.arr) < shards {
		e.arr = append(e.arr, nil)
	}
	n := len(e.active)
	if shards == 1 {
		e.sweepRange(0, 0, n, r, topo, wrap, faulty, cycle)
		return 1, len(e.arr[0])
	}
	var wg sync.WaitGroup
	chunk := (n + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			e.arr[w] = e.arr[w][:0]
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			e.sweepRange(w, lo, hi, r, topo, wrap, faulty, cycle)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for w := 0; w < shards; w++ {
		total += len(e.arr[w])
	}
	return shards, total
}

// sweepRange performs the selection sweep for worklist[lo:hi] into
// arrival buffer w: per occupied node, pick at most one packet per
// outgoing direction by farthest-remaining-distance first (ties by
// injection order = slot id), then compact the queue in place.
func (e *Engine[T]) sweepRange(w, lo, hi int, r mesh.Region, topo topology, wrap, faulty bool, cycle int64) {
	f := e.m.Faults()
	arr := e.arr[w][:0]
	for _, lpp := range e.active[lo:hi] {
		lp := int(lpp)
		q := e.queues[lp]
		if len(q) == 0 {
			continue
		}
		p := e.absOf(lp, r)
		// best[dir] = queue index of chosen packet, -1 none.
		var best [4]int
		var bestDist [4]int32
		best[0], best[1], best[2], best[3] = -1, -1, -1, -1
		for qi, slot := range q {
			d := int(e.dir[slot])
			if faulty {
				// Preferred healthy hop first (bit-identical when up),
				// then detour candidates by (distance, direction). The
				// hop that undoes the previous move is a last resort —
				// otherwise a packet blocked broadside ping-pongs
				// between two nodes until the budget kills it.
				if !usableLink(f, p, e.stepTo(p, d, wrap), cycle) {
					d = -1
					var bd int32
					back := -1
					for cand := 0; cand < 4; cand++ {
						to2, ok := e.stepBounded(p, cand, r, wrap)
						if !ok || !usableLink(f, p, to2, cycle) {
							continue
						}
						if int32(to2) == e.from[slot] {
							back = cand
							continue
						}
						d2 := int32(topo.dist(to2, int(e.dests[slot])))
						if d == -1 || d2 < bd {
							d, bd = cand, d2
						}
					}
					if d == -1 {
						d = back
					}
					if d == -1 {
						continue // blocked this cycle; wait
					}
				}
			}
			dd := e.dist[slot]
			if b := best[d]; b == -1 || dd > bestDist[d] ||
				(dd == bestDist[d] && slot < q[b]) {
				best[d] = qi
				bestDist[d] = dd
			}
		}
		picked := 0
		for d := 0; d < 4; d++ {
			if best[d] >= 0 {
				slot := q[best[d]]
				var to int
				if faulty {
					to, _ = e.stepBounded(p, d, r, wrap)
				} else {
					to = e.stepTo(p, d, wrap)
				}
				arr = append(arr, engArrival{
					to: int32(to), slot: slot, fromP: int32(p),
					detour: int8(d) != e.dir[slot],
				})
				picked++
			}
		}
		if picked > 0 {
			// Compact in place, dropping the selected indexes.
			out := q[:0]
			for qi := range q {
				if qi != best[0] && qi != best[1] && qi != best[2] && qi != best[3] {
					out = append(out, q[qi])
				}
			}
			e.queues[lp] = out
		}
	}
	e.arr[w] = arr
}

// usableLink reports whether the p→to link may carry a packet this
// cycle: alive on both ends, not dead, and — for slow links — on a
// cycle divisible by the slow factor.
func usableLink(f *fault.Map, p, to int, cycle int64) bool {
	if !f.LinkUp(p, to) {
		return false
	}
	return cycle%int64(f.LinkDelay(p, to)) == 0
}

// merge applies one cycle's arrivals in deterministic shard order:
// deliver packets that reached their destination, update each mover's
// cached (dir, dist) — incrementally after a preferred hop, from
// scratch after a detour — re-queue the rest, and rebuild the worklist
// (prune emptied nodes, add newly occupied ones). The worklist is kept
// sorted incrementally: pruning preserves order, and the tail of newly
// occupied nodes is sorted on its own and merged back in, so no cycle
// ever sorts the whole worklist. Returns the number of packets
// delivered this cycle.
func (e *Engine[T]) merge(delivered [][]T, r mesh.Region, topo topology, wrap, faulty bool, shards int) int {
	m := e.m
	done := 0
	// Prune first: a node emptied by the sweep leaves the worklist
	// unless an arrival below re-occupies it.
	wl := e.scratch[:0]
	for _, lp := range e.active {
		if len(e.queues[lp]) > 0 {
			wl = append(wl, lp)
		} else {
			e.inQ[lp] = false
		}
	}
	sorted := len(wl) // prune preserved order; enqueue appends after here
	for w := 0; w < shards; w++ {
		for _, a := range e.arr[w] {
			slot := a.slot
			to := int(a.to)
			if faulty {
				e.from[slot] = a.fromP
				if a.detour {
					d := int(e.dests[slot])
					if to == d {
						delivered[to] = append(delivered[to], e.val[slot])
						done++
						continue
					}
					dr, _ := topo.next(to, d)
					e.dir[slot] = int8(dr)
					e.dist[slot] = int32(topo.dist(to, d))
					wl = e.enqueue(e.localOf(to, r), slot, wl)
					continue
				}
			}
			nd := e.dist[slot] - 1
			if nd == 0 {
				delivered[to] = append(delivered[to], e.val[slot])
				done++
				continue
			}
			e.dist[slot] = nd
			if e.dir[slot] <= 1 {
				d := int(e.dests[slot])
				if m.ColOf(to) == m.ColOf(d) {
					e.dir[slot] = rowDirAfterCol(m, to, d, wrap)
				}
			}
			wl = e.enqueue(e.localOf(to, r), slot, wl)
		}
	}
	if tail := wl[sorted:]; len(tail) > 0 {
		slices.Sort(tail)
		if sorted > 0 {
			// Two-pointer merge of the sorted runs into the retired
			// worklist buffer (disjoint backing, and the runs share no
			// value: tail nodes were unoccupied when appended).
			out := e.active[:0]
			head := wl[:sorted]
			i, j := 0, 0
			for i < len(head) && j < len(tail) {
				if head[i] < tail[j] {
					out = append(out, head[i])
					i++
				} else {
					out = append(out, tail[j])
					j++
				}
			}
			out = append(out, head[i:]...)
			out = append(out, tail[j:]...)
			e.scratch = wl[:0]
			e.active = out
			return done
		}
	}
	e.scratch = e.active[:0]
	e.active = wl
	return done
}

// route is the healthy cycle loop shared by Route and RouteTorus.
func (e *Engine[T]) route(dst [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, wrap bool) (delivered [][]T, steps int64) {
	m := e.m
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	e.ensure(r)
	//detlint:ignore checkederr healthy path injects with a nil fault map, so the lost count is structurally zero
	active, _ := e.inject(delivered, r, items, dest, topo, nil)
	sp.AddPackets(int64(len(e.val)))
	for active > 0 {
		steps++
		shards, total := e.sweep(r, topo, wrap, false, steps)
		if total == 0 {
			panic("route: greedy router stalled with active packets")
		}
		active -= e.merge(delivered, r, topo, wrap, false, shards)
	}
	e.cleanup()
	return delivered, steps
}

// routeFault is the fault-aware cycle loop shared by RouteFault and
// RouteTorusFault: identical to route but consulting the machine's
// fault map — detours, slow-link waits, the bounded retry budget
// (16·(H+W) + 4·#packets cycles) and the wedge break after a full slow
// period of silence. Every cycle spent detouring or waiting is a
// charged machine step. With a nil (or empty) fault map it makes
// bit-identical decisions to route.
func (e *Engine[T]) routeFault(dst [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, wrap bool) (delivered [][]T, steps int64, lost int) {
	m := e.m
	f := m.Faults()
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		if lost > 0 {
			sp.SetAttr("lost", int64(lost))
		}
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	e.ensure(r)
	active, lost := e.inject(delivered, r, items, dest, topo, f)
	sp.AddPackets(int64(len(e.val)))

	budget := int64(16*(r.H+r.W) + 4*active)
	maxDelay := int64(f.MaxDelay())
	idle := int64(0)
	for active > 0 && steps < budget {
		steps++
		shards, total := e.sweep(r, topo, wrap, true, steps)
		if total == 0 {
			// Nothing moved. With slow links a packet may be waiting for
			// its cycle; after a full slow period of silence the network
			// is provably wedged and the survivors are lost.
			idle++
			if idle >= maxDelay {
				break
			}
			continue
		}
		idle = 0
		active -= e.merge(delivered, r, topo, wrap, true, shards)
	}
	lost += active // budget exhausted or wedged: survivors are dropped
	e.cleanup()
	return delivered, steps, lost
}
