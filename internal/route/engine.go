package route

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"unsafe"

	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/mesh"
	"meshpram/internal/trace"
)

// Engine is a persistent, allocation-lean greedy router. It simulates
// the same cycle-accurate dimension-ordered routing as GreedyRoute —
// bit-identically: delivered contents, per-processor delivery order,
// cycle counts and ledger spans all match the historical per-call
// router — but keeps every buffer it needs across Route calls, so a
// hot loop (a protocol stage per PRAM step, a baseline batch, a repair
// scrub) routes without rebuilding queue or arrival storage.
//
// Layout and algorithm:
//
//   - packets live in a flat struct-of-arrays slab (value, destination,
//     remaining distance, outgoing direction, previous hop), indexed by
//     slot id; slot ids are assigned in injection order, so the slot id
//     doubles as the deterministic tie-break key;
//   - per-node queues hold slot ids and keep their capacity across
//     calls (the free-list: the slab and all queues are truncated, not
//     freed, when a call completes);
//   - an active-node worklist holds exactly the occupied nodes, sorted
//     into region row-major order each cycle, so a cycle costs
//     O(occupied nodes + queued packets) instead of O(region);
//   - each packet caches its (direction, remaining distance): the
//     distance decreases by one per hop and the direction is only
//     recomputed when the packet crosses its destination column (or,
//     after a fault detour, from scratch at the new position) — the
//     per-cycle topology interface calls of the old router are gone;
//   - with mesh workers > 1 the selection sweep runs sharded: the
//     sorted worklist is cut into contiguous row-ordered strips of
//     roughly equal queued-packet counts, dispatched to a persistent
//     worker pool, and the per-worker arrival buffers are concatenated
//     in strip order. Selection is node-local and the strip order
//     equals the sequential sweep order, so the parallel sweep is
//     bit-identical to the sequential one by construction (DESIGN.md
//     §10).
//
// In the default ModeEvent the engine is a discrete-event simulator of
// that cycle machine (DESIGN.md §11): whenever the last sweep saw no
// contention it computes the next-event horizon — the earliest future
// cycle at which any packet could change another packet's behaviour
// (a phase collision on a shared corridor, a fault hazard, an external
// schedule event, the retry budget) — and fast-forwards every in-flight
// packet along its cached (dir, dist) trajectory by k hops in one
// batch, charging k cycles at once. Charged cycles, delivered contents
// and delivery order are bit-identical to ModeCycle; only the executed
// iteration count (Executed, and the ledger's Exec counter) differs.
//
// An Engine is not safe for concurrent use; give each goroutine its
// own. The zero value is not usable — construct with NewEngine.
type Engine[T any] struct {
	m *mesh.Machine

	// Struct-of-arrays packet slab, truncated (capacity kept) per call.
	// Slot i was the i-th routed packet injected, so slot order is the
	// historical seq order.
	val   []T
	dests []int32
	dcol  []int32 // cached destination column of each slot
	dist  []int32
	dir   []int8
	from  []int32 // previous hop (-1 at injection); fault path only

	queues  [][]int32 // region-local node id → queued slot ids
	inQ     []bool    // region-local node id → on the worklist
	active  []int32   // worklist: occupied region-local node ids
	scratch []int32   // worklist double-buffer for the rebuild pass

	arr  [][]engArrival // per-shard arrival buffers, merged in shard order
	csd  []bool         // per-shard contested flag for the last sweep
	cuts []int32        // shard boundaries (worklist indexes) of the last plan

	mode                       EngineMode
	hsrc                       HorizonSource
	vbkt                       [][]uint64  // per-line packed trajectory-segment buckets (2·side lines)
	vtouch                     []int32     // lines touched by the current horizon attempt
	trjH                       []int32     // per-slot horizontal hops, cached by skipHorizon
	trjV                       []int8      // per-slot vertical direction, cached by skipHorizon
	delq                       []engDel    // batched deliveries, sorted into cycle order
	haz                        []engHazard // fault hazards of the current routeFault call
	hbuf                       []fault.LinkHazard
	execs                      int64 // executed iterations (sweeps + batches) of the last call
	dbgBatch, dbgSweep, dbgTry int64

	lastContested bool
	// wlUnsorted marks a worklist left in first-occurrence order by a
	// batch advance. Only the selection sweep observes worklist order
	// (sweep order and arrival concatenation); batches read values,
	// never order, so sorting is deferred until the next sweep.
	wlUnsorted bool

	// Local-knowledge fault dissemination (nil view = global knowledge,
	// the historical bit-identical behavior). Per-slot probe state is
	// written only by the shard owning the packet's node; discoveries,
	// drops and wait counts are collected shard-locally and folded in at
	// a sequential point after each sweep, so the local mode stays
	// bit-identical at every worker width (DESIGN.md §13).
	view    *faultview.View
	ptry    []int8                  // per-slot failed-probe count
	pwait   []int64                 // per-slot earliest next probe cycle
	disc    [][]faultview.Discovery // per-shard in-flight discoveries
	dropq   [][]engDrop             // per-shard probe-budget drops
	wcnt    []int32                 // per-shard count of backoff-waiting slots
	discAll []faultview.Discovery   // sequential integration buffer
	hazLog  int                     // notice count e.haz was built against

	jobs   chan engJob[T] // persistent sweep worker pool
	pooled int
	wg     sync.WaitGroup
}

// EngineMode selects how the engine spends wall-clock iterations; both
// modes simulate the identical cycle machine.
type EngineMode uint8

const (
	// ModeEvent (the default) fast-forwards contention-free stretches:
	// executed iterations ≤ charged cycles, results bit-identical.
	ModeEvent EngineMode = iota
	// ModeCycle executes every charged cycle as one worklist sweep —
	// the reference semantics the event mode is validated against.
	ModeCycle
)

// HorizonSource bounds the event engine's epoch skips with external
// events the engine cannot see (e.g. a fault-schedule cursor).
type HorizonSource interface {
	// NextEventIn returns how many further cycles may safely be batched
	// before the next external event, given the cycles already charged
	// in the current routing call. Non-positive disables batching for
	// the current attempt; the engine then advances cycle by cycle and
	// asks again.
	NextEventIn(elapsed int64) int64
}

// FixedHorizon is a HorizonSource capping every skip at a constant
// number of cycles (tests and diagnostics).
type FixedHorizon int64

// NextEventIn implements HorizonSource.
func (h FixedHorizon) NextEventIn(int64) int64 { return int64(h) }

// SetMode selects the execution mode for subsequent calls.
func (e *Engine[T]) SetMode(m EngineMode) { e.mode = m }

// Mode returns the engine's execution mode.
func (e *Engine[T]) Mode() EngineMode { return e.mode }

// SetHorizonSource installs an external bound on epoch skips (nil
// removes it). The source is consulted on every batch attempt.
func (e *Engine[T]) SetHorizonSource(h HorizonSource) { e.hsrc = h }

// SetFaultView installs a local-knowledge fault view: the fault-aware
// routing paths then consult each node's gossip-updated belief instead
// of the machine's global fault map, with stale-view detours, bounded
// rediscovery probes and propagation-latency losses. Nil restores the
// global (omniscient) behavior. The view is shared between engines of
// one simulator and advances one gossip round per charged fault-routing
// cycle.
func (e *Engine[T]) SetFaultView(v *faultview.View) { e.view = v }

// FaultView returns the installed local-knowledge view (nil = global).
func (e *Engine[T]) FaultView() *faultview.View { return e.view }

// Executed returns the physically executed iterations (sweeps plus
// epoch-skip batches) of the most recent routing call. It is ≤ the
// call's charged cycle count, with equality in ModeCycle.
func (e *Engine[T]) Executed() int64 { return e.execs }

// engArrival is one packet crossing into a new processor this cycle.
type engArrival struct {
	to    int32 // absolute destination processor of the hop
	slot  int32
	fromP int32 // node that sent it (fault path: backtrack demotion)
	// detour marks a hop off the preferred dimension-ordered direction;
	// the merge then recomputes the packet's cached (dir, dist) from
	// scratch instead of updating incrementally.
	detour bool
}

// A trajectory segment is one straight stretch of a packet's remaining
// path. Segments are bucketed per corridor line (column × vertical
// direction) and keyed within a line by phase (position ∓ time), so
// two segments share a (line, key) exactly when their packets would
// occupy the same node at the same time moving in the same direction
// (the phase argument of DESIGN.md §11). A segment is packed into one
// uint64 — phase<<24 | entry<<12 | exit — so sorting a line's bucket
// into (phase, entry) order is a comparator-free slices.Sort. The
// 12-bit offset fields bound the mesh side at engMaxEventSide.
const engMaxEventSide = 1 << 11

func engSeg(key uint64, entry, exit int32) uint64 {
	return key<<24 | uint64(entry)<<12 | uint64(exit)
}

// engDel is one delivery inside an epoch-skip batch, sorted into the
// exact order the cycle-stepped engine would append it: by arrival
// cycle, then sender worklist position, then the sender's outgoing
// direction, then slot id.
type engDel struct {
	t      int32 // arrival offset within the batch
	sender int32 // region-local id of the final hop's sender
	slot   int32
	fdir   int8 // direction of the final hop
}

// engHazard is a fault.LinkHazard with pre-split coordinates.
type engHazard struct {
	ar, ac, br, bc int32
	delay          int32 // 0 = dead edge
}

// engDrop is one packet whose rediscovery budget ran out, recorded by
// the shard that owns its node and removed at the sequential point.
type engDrop struct {
	lp   int32 // region-local node holding the packet
	slot int32
}

// engProbeBudget is how many failed physical probes a packet tolerates
// (with exponential backoff between them) before it is charged as lost.
const engProbeBudget = 8

// engJob is one sweep strip dispatched to the persistent worker pool.
// It carries the engine pointer so pool goroutines hold only the job
// channel between sweeps — an abandoned engine stays collectible and
// its finalizer retires the pool.
type engJob[T any] struct {
	e            *Engine[T]
	w, lo, hi    int
	r            mesh.Region
	topo         topology
	wrap, faulty bool
	cycle        int64
	wg           *sync.WaitGroup
}

func engWorker[T any](jobs <-chan engJob[T]) {
	//detlint:ignore chanorder job intake only: each job writes its own worker arena slot and the caller merges arenas in shard-index order after the barrier
	for j := range jobs {
		j.e.sweepRange(j.w, j.lo, j.hi, j.r, j.topo, j.wrap, j.faulty, j.cycle)
		j.wg.Done()
	}
}

// engShardPackets is the minimum queued-packet count per parallel
// shard; below it the sweep stays sequential (dispatch overhead would
// dominate the node-local selection work).
const engShardPackets = 192

// NewEngine creates a reusable greedy router for the machine, in the
// event-driven execution mode.
func NewEngine[T any](m *mesh.Machine) *Engine[T] {
	return &Engine[T]{m: m}
}

// Route delivers every item to its destination processor inside region
// r over plain mesh links, exactly like GreedyRoute, into dst (nil
// allocates). It returns the delivered items per processor and the
// cycle count.
func (e *Engine[T]) Route(dst [][]T, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return e.route(dst, r, items, dest, meshTopo{e.m}, false)
}

// RouteTorus is Route on the full machine with wrap-around links.
func (e *Engine[T]) RouteTorus(dst [][]T, items [][]T, dest func(T) int) (delivered [][]T, steps int64) {
	return e.route(dst, e.m.Full(), items, dest, torusTopo{e.m}, true)
}

// RouteFault is the fault-aware routing of GreedyRouteFaultInto on the
// engine: detours around dead links/nodes with backtrack demotion,
// slow-link waiting, a bounded retry budget, and lost-packet
// accounting, all bit-identical to the per-call router.
func (e *Engine[T]) RouteFault(dst [][]T, r mesh.Region, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return e.routeFault(dst, r, items, dest, meshTopo{e.m}, false)
}

// RouteTorusFault is RouteFault on the full machine with wrap-around
// links.
func (e *Engine[T]) RouteTorusFault(dst [][]T, items [][]T, dest func(T) int) (delivered [][]T, steps int64, lost int) {
	return e.routeFault(dst, e.m.Full(), items, dest, torusTopo{e.m}, true)
}

// ensure sizes the per-node state for region r and truncates the slab.
func (e *Engine[T]) ensure(r mesh.Region) {
	nl := r.H * r.W
	if nl > len(e.queues) {
		if nl <= cap(e.queues) {
			e.queues = e.queues[:nl]
		} else {
			nq := make([][]int32, nl)
			copy(nq, e.queues)
			e.queues = nq
		}
	}
	if nl > len(e.inQ) {
		e.inQ = make([]bool, nl) // all-false at rest by invariant
	}
	e.val = e.val[:0]
	e.dests = e.dests[:0]
	e.dcol = e.dcol[:0]
	e.dist = e.dist[:0]
	e.dir = e.dir[:0]
	e.from = e.from[:0]
	e.execs = 0
	e.wlUnsorted = false
}

// cleanup truncates every touched queue and clears the worklist, so the
// engine is back to its at-rest invariant (all queues empty, all inQ
// false) whatever state the routing loop ended in.
func (e *Engine[T]) cleanup() {
	for _, lp := range e.active {
		e.queues[lp] = e.queues[lp][:0]
		e.inQ[lp] = false
	}
	e.active = e.active[:0]
}

// Release drops every retained buffer of the engine — the packet slab,
// per-node queues, shard arenas, trajectory buckets and hazard caches —
// returning it to its just-constructed footprint. The engine stays
// fully usable: every buffer is lazily regrown by the next routing
// call. Call it only between routing calls (the at-rest invariant of
// cleanup must hold); it exists so a long-lived simulator can reach a
// compact quiescent state for snapshots and memory accounting.
func (e *Engine[T]) Release() {
	e.val, e.dests, e.dcol, e.dist, e.dir, e.from = nil, nil, nil, nil, nil, nil
	e.queues, e.inQ, e.active, e.scratch = nil, nil, nil, nil
	e.arr, e.csd, e.cuts = nil, nil, nil
	e.vbkt, e.vtouch, e.trjH, e.trjV, e.delq = nil, nil, nil, nil, nil
	e.haz, e.hbuf = nil, nil
	e.ptry, e.pwait, e.disc, e.dropq, e.wcnt, e.discAll = nil, nil, nil, nil, nil, nil
	e.hazLog = -1 // the hazard union must be rebuilt from the view
}

// MemBytes returns the resident heap bytes retained by the engine's
// buffers (capacities, not lengths — the free-list keeps capacity
// across calls). The shared machine, fault view and worker pool are
// not counted.
func (e *Engine[T]) MemBytes() int64 {
	var sz int64
	sz += int64(cap(e.val)) * int64(unsafe.Sizeof(*new(T)))
	sz += int64(cap(e.dests)+cap(e.dcol)+cap(e.dist)+cap(e.from)) * 4
	sz += int64(cap(e.dir)) * 1
	sz += int64(cap(e.queues)) * 24
	for _, q := range e.queues {
		sz += int64(cap(q)) * 4
	}
	sz += int64(cap(e.inQ))
	sz += int64(cap(e.active)+cap(e.scratch)+cap(e.cuts)) * 4
	sz += int64(cap(e.arr)) * 24
	for _, a := range e.arr {
		sz += int64(cap(a)) * int64(unsafe.Sizeof(engArrival{}))
	}
	sz += int64(cap(e.csd))
	sz += int64(cap(e.vbkt)) * 24
	for _, b := range e.vbkt {
		sz += int64(cap(b)) * 8
	}
	sz += int64(cap(e.vtouch))*4 + int64(cap(e.trjH))*4 + int64(cap(e.trjV))
	sz += int64(cap(e.delq)) * int64(unsafe.Sizeof(engDel{}))
	sz += int64(cap(e.haz)) * int64(unsafe.Sizeof(engHazard{}))
	sz += int64(cap(e.hbuf)) * int64(unsafe.Sizeof(fault.LinkHazard{}))
	sz += int64(cap(e.ptry)) + int64(cap(e.pwait))*8
	sz += int64(cap(e.disc)) * 24
	for _, d := range e.disc {
		sz += int64(cap(d)) * int64(unsafe.Sizeof(faultview.Discovery{}))
	}
	sz += int64(cap(e.dropq)) * 24
	for _, d := range e.dropq {
		sz += int64(cap(d)) * int64(unsafe.Sizeof(engDrop{}))
	}
	sz += int64(cap(e.wcnt)) * 4
	sz += int64(cap(e.discAll)) * int64(unsafe.Sizeof(faultview.Discovery{}))
	return sz
}

// localOf maps an absolute processor id to its region-local index.
func (e *Engine[T]) localOf(p int, r mesh.Region) int {
	return (e.m.RowOf(p)-r.R0)*r.W + (e.m.ColOf(p) - r.C0)
}

// absOf maps a region-local index back to the absolute processor id.
func (e *Engine[T]) absOf(lp int, r mesh.Region) int {
	return e.m.IDOf(r.R0+lp/r.W, r.C0+lp%r.W)
}

// stepTo returns the neighbor one hop in direction dir (0=-col, 1=+col,
// 2=-row, 3=+row), wrapping on the torus. The caller guarantees the hop
// stays inside the region (preferred dimension-ordered hops always do).
func (e *Engine[T]) stepTo(p, dir int, wrap bool) int {
	m := e.m
	if !wrap {
		switch dir {
		case 0:
			return p - 1
		case 1:
			return p + 1
		case 2:
			return p - m.Side
		default:
			return p + m.Side
		}
	}
	s := m.Side
	row, col := m.RowOf(p), m.ColOf(p)
	switch dir {
	case 0:
		col = (col - 1 + s) % s
	case 1:
		col = (col + 1) % s
	case 2:
		row = (row - 1 + s) % s
	default:
		row = (row + 1) % s
	}
	return m.IDOf(row, col)
}

// stepBounded is stepTo with region bounds: ok=false when the hop
// leaves the region (wrap allowed on the torus, where the region is the
// full machine). It is the engine port of the fault router's neighborOf.
func (e *Engine[T]) stepBounded(p, dir int, r mesh.Region, wrap bool) (int, bool) {
	m := e.m
	row, col := m.RowOf(p), m.ColOf(p)
	switch dir {
	case 0:
		col--
	case 1:
		col++
	case 2:
		row--
	default:
		row++
	}
	if wrap {
		s := m.Side
		return m.IDOf((row+s)%s, (col+s)%s), true
	}
	if row < r.R0 || row >= r.R0+r.H || col < r.C0 || col >= r.C0+r.W {
		return 0, false
	}
	return m.IDOf(row, col), true
}

// rowDirAfterCol returns the cached direction for a packet that just
// reached its destination column: the row direction topo.next would
// choose at p.
func rowDirAfterCol(m *mesh.Machine, p, dest int, wrap bool) int8 {
	if !wrap {
		if m.RowOf(p) > m.RowOf(dest) {
			return 2
		}
		return 3
	}
	step, _ := torusTopo{m}.axis(m.RowOf(p), m.RowOf(dest), m.Side)
	if step < 0 {
		return 2
	}
	return 3
}

// enqueue appends slot to node lp's queue, adding lp to the worklist
// being built when it was not occupied.
func (e *Engine[T]) enqueue(lp int, slot int32, wl []int32) []int32 {
	e.queues[lp] = append(e.queues[lp], slot)
	if !e.inQ[lp] {
		e.inQ[lp] = true
		wl = append(wl, int32(lp))
	}
	return wl
}

// inject drains items into the slab and queues. Packets already at
// their destination are delivered immediately; with a fault map f
// (fault path only — the healthy path passes nil even on a faulted
// machine, like GreedyRoute always did), packets to dead nodes are
// lost at injection. Returns the number of routed (queued) packets,
// which is also the slab length, and the injection losses.
func (e *Engine[T]) inject(delivered [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, f *fault.Map) (active, lost int) {
	m := e.m
	wl := e.active
	for row := r.R0; row < r.R0+r.H; row++ {
		for col := r.C0; col < r.C0+r.W; col++ {
			p := m.IDOf(row, col)
			for _, v := range items[p] {
				d := dest(v)
				if !r.Contains(m, d) {
					panic(fmt.Sprintf("route: destination %d outside region %v", d, r))
				}
				if f != nil && e.view != nil {
					// Local knowledge: the origin refuses the send only if
					// *it believes* the destination is dead. A stale-alive
					// belief injects the packet toward a dead node (it is
					// lost in flight, discovering the death); a stale-dead
					// belief drops a deliverable packet — both are the
					// propagation-latency losses of DESIGN.md §13.
					if e.view.BeliefAt(p).NodeDead(d) {
						lost++
						continue
					}
				} else if f.NodeDead(d) {
					lost++ // undeliverable: the destination is dead
					continue
				}
				if d == p {
					delivered[p] = append(delivered[p], v)
					continue
				}
				slot := int32(len(e.val))
				dr, _ := topo.next(p, d)
				e.val = append(e.val, v)
				e.dests = append(e.dests, int32(d))
				e.dcol = append(e.dcol, int32(m.ColOf(d)))
				e.dist = append(e.dist, int32(topo.dist(p, d)))
				e.dir = append(e.dir, int8(dr))
				e.from = append(e.from, -1)
				wl = e.enqueue(e.localOf(p, r), slot, wl)
				active++
			}
			items[p] = items[p][:0]
		}
	}
	e.active = wl
	return active, lost
}

// shardPlan returns how many parallel shards this cycle's sweep uses:
// 1 (sequential) unless the machine's engine width and the queued
// packet count both warrant sharding.
func (e *Engine[T]) shardPlan(queued int) int {
	wk := e.m.Workers()
	if wk <= 1 {
		return 1
	}
	s := queued / engShardPackets
	if s > wk {
		s = wk
	}
	if s > len(e.active) {
		s = len(e.active)
	}
	if s < 2 {
		return 1
	}
	return s
}

// ensurePool grows the persistent sweep worker pool to n goroutines.
// Workers hold only the job channel, never the engine, so an abandoned
// engine remains collectible; its finalizer closes the channel and the
// workers exit.
func (e *Engine[T]) ensurePool(n int) {
	if e.jobs == nil {
		e.jobs = make(chan engJob[T], 64)
		runtime.SetFinalizer(e, func(ee *Engine[T]) { close(ee.jobs) })
	}
	for e.pooled < n {
		go engWorker(e.jobs)
		e.pooled++
	}
}

// sweep runs one selection sweep over the sorted worklist — sequential
// or sharded per shardPlan — filling e.arr[0:shards]. The sweep only
// reads packet state and fault/topology data and only writes its own
// shard's queues and arrival buffer, so shards race on nothing; the
// concatenation of the shard buffers equals the sequential arrival
// order because the worklist is sorted and shards are contiguous.
// Shard boundaries are cut at roughly equal cumulative queue lengths
// (not node counts), so skewed loads (hotspots) still balance. Shards
// ≥ 1 run on the persistent pool; shard 0 runs on the caller.
// Returns (shards, total arrivals) and records the contested flag.
func (e *Engine[T]) sweep(r mesh.Region, topo topology, wrap, faulty bool, cycle int64, queued int) (int, int) {
	if e.wlUnsorted {
		e.sortWorklist(r)
		e.wlUnsorted = false
	}
	shards := e.shardPlan(queued)
	for len(e.arr) < shards {
		e.arr = append(e.arr, nil)
	}
	for len(e.csd) < shards {
		e.csd = append(e.csd, false)
	}
	if e.view != nil {
		for len(e.disc) < shards {
			e.disc = append(e.disc, nil)
		}
		for len(e.dropq) < shards {
			e.dropq = append(e.dropq, nil)
		}
		for len(e.wcnt) < shards {
			e.wcnt = append(e.wcnt, 0)
		}
	}
	n := len(e.active)
	if shards == 1 {
		e.sweepRange(0, 0, n, r, topo, wrap, faulty, cycle)
		e.lastContested = e.csd[0]
		return 1, len(e.arr[0])
	}
	cuts := e.cuts[:0]
	cuts = append(cuts, 0)
	cum, next := 0, 1
	for i, lp := range e.active {
		cum += len(e.queues[lp])
		if next < shards && cum >= next*queued/shards {
			cuts = append(cuts, int32(i+1))
			next++
		}
	}
	for len(cuts) < shards+1 {
		cuts = append(cuts, int32(n))
	}
	cuts[shards] = int32(n)
	e.cuts = cuts
	e.ensurePool(shards - 1)
	wg := &e.wg
	for w := 1; w < shards; w++ {
		lo, hi := int(cuts[w]), int(cuts[w+1])
		if lo >= hi {
			e.arr[w] = e.arr[w][:0]
			e.csd[w] = false
			continue
		}
		wg.Add(1)
		e.jobs <- engJob[T]{e: e, w: w, lo: lo, hi: hi, r: r, topo: topo,
			wrap: wrap, faulty: faulty, cycle: cycle, wg: wg}
	}
	e.sweepRange(0, 0, int(cuts[1]), r, topo, wrap, faulty, cycle)
	wg.Wait()
	total := 0
	contested := false
	for w := 0; w < shards; w++ {
		total += len(e.arr[w])
		contested = contested || e.csd[w]
	}
	e.lastContested = contested
	return shards, total
}

// sweepRange performs the selection sweep for worklist[lo:hi] into
// arrival buffer w: per occupied node, pick at most one packet per
// outgoing direction by farthest-remaining-distance first (ties by
// injection order = slot id), then compact the queue in place. It
// records in e.csd[w] whether the strip saw contention — a packet left
// behind, or any blocked/slow fault hop — which gates the event mode's
// next horizon attempt.
func (e *Engine[T]) sweepRange(w, lo, hi int, r mesh.Region, topo topology, wrap, faulty bool, cycle int64) {
	f := e.m.Faults()
	arr := e.arr[w][:0]
	cst := false
	local := faulty && e.view != nil
	if local {
		e.disc[w] = e.disc[w][:0]
		e.dropq[w] = e.dropq[w][:0]
		e.wcnt[w] = 0
	}
	for _, lpp := range e.active[lo:hi] {
		lp := int(lpp)
		q := e.queues[lp]
		if len(q) == 0 {
			continue
		}
		p := e.absOf(lp, r)
		if !faulty && len(q) == 1 {
			// Lone packet on a healthy mesh: it wins its out-link
			// unopposed — skip the per-direction selection scan.
			slot := q[0]
			arr = append(arr, engArrival{
				to:    int32(e.stepTo(p, int(e.dir[slot]), wrap)),
				slot:  slot,
				fromP: int32(p),
			})
			e.queues[lp] = q[:0]
			continue
		}
		// best[dir] = queue index of chosen packet, -1 none.
		var best [4]int
		var bestDist [4]int32
		best[0], best[1], best[2], best[3] = -1, -1, -1, -1
		for qi, slot := range q {
			d := int(e.dir[slot])
			if local {
				d = e.localDir(w, slot, p, r, topo, wrap, cycle, f, &cst)
				if d == -1 {
					continue // waiting, blocked, or freshly dropped
				}
			} else if faulty {
				// Preferred healthy hop first (bit-identical when up),
				// then detour candidates by (distance, direction). The
				// hop that undoes the previous move is a last resort —
				// otherwise a packet blocked broadside ping-pongs
				// between two nodes until the budget kills it.
				if !usableLink(f, p, e.stepTo(p, d, wrap), cycle) {
					cst = true
					d = -1
					var bd int32
					back := -1
					for cand := 0; cand < 4; cand++ {
						to2, ok := e.stepBounded(p, cand, r, wrap)
						if !ok || !usableLink(f, p, to2, cycle) {
							continue
						}
						if int32(to2) == e.from[slot] {
							back = cand
							continue
						}
						d2 := int32(topo.dist(to2, int(e.dests[slot])))
						if d == -1 || d2 < bd {
							d, bd = cand, d2
						}
					}
					if d == -1 {
						d = back
					}
					if d == -1 {
						continue // blocked this cycle; wait
					}
				}
			}
			dd := e.dist[slot]
			if b := best[d]; b == -1 || dd > bestDist[d] ||
				(dd == bestDist[d] && slot < q[b]) {
				best[d] = qi
				bestDist[d] = dd
			}
		}
		picked := 0
		for d := 0; d < 4; d++ {
			if best[d] >= 0 {
				slot := q[best[d]]
				var to int
				if faulty {
					to, _ = e.stepBounded(p, d, r, wrap)
				} else {
					to = e.stepTo(p, d, wrap)
				}
				arr = append(arr, engArrival{
					to: int32(to), slot: slot, fromP: int32(p),
					detour: int8(d) != e.dir[slot],
				})
				picked++
			}
		}
		if picked > 0 {
			// Compact in place, dropping the selected indexes.
			out := q[:0]
			for qi := range q {
				if qi != best[0] && qi != best[1] && qi != best[2] && qi != best[3] {
					out = append(out, q[qi])
				}
			}
			e.queues[lp] = out
			if len(out) > 0 {
				cst = true // somebody lost a (node, dir) selection
			}
		}
	}
	e.arr[w] = arr
	e.csd[w] = cst
}

// usableLink reports whether the p→to link may carry a packet this
// cycle: alive on both ends, not dead, and — for slow links — on a
// cycle divisible by the slow factor.
func usableLink(f *fault.Map, p, to int, cycle int64) bool {
	if !f.LinkUp(p, to) {
		return false
	}
	return cycle%int64(f.LinkDelay(p, to)) == 0
}

// localDir is the local-knowledge replacement for the global detour
// scan: the packet at node p picks its hop against p's *belief* (the
// gossip view), then the chosen hop is checked against the physical
// truth. A physically blocked hop the belief allowed — or a probe of a
// believed-dead link — is a discovery: the mismatch is recorded for
// Integrate, the packet backs off exponentially, and after
// engProbeBudget failed probes it is dropped (charged lost). Returns
// the chosen direction, or -1 when the packet does not move this
// cycle. Writes only shard-local buffers and the per-slot probe state
// of packets this shard owns.
func (e *Engine[T]) localDir(w int, slot int32, p int, r mesh.Region, topo topology, wrap bool, cycle int64, f *fault.Map, cst *bool) int {
	if e.pwait[slot] > cycle {
		*cst = true
		e.wcnt[w]++
		return -1 // backing off until the next probe window
	}
	bel := e.view.BeliefAt(p)
	d := int(e.dir[slot])
	probe := false
	if !usableLink(bel, p, e.stepTo(p, d, wrap), cycle) {
		// Stale-view detour: mirror the global candidate scan, but
		// against the local belief.
		*cst = true
		nd := -1
		var bd int32
		back := -1
		for cand := 0; cand < 4; cand++ {
			to2, ok := e.stepBounded(p, cand, r, wrap)
			if !ok || !usableLink(bel, p, to2, cycle) {
				continue
			}
			if int32(to2) == e.from[slot] {
				back = cand
				continue
			}
			d2 := int32(topo.dist(to2, int(e.dests[slot])))
			if nd == -1 || d2 < bd {
				nd, bd = cand, d2
			}
		}
		if nd == -1 {
			nd = back
		}
		if nd == -1 {
			// Nothing believed usable: probe the preferred link anyway —
			// the bounded rediscovery that corrects stale-dead beliefs.
			probe = true
			nd = d
		}
		d = nd
	}
	to, ok := e.stepBounded(p, d, r, wrap)
	if !ok {
		*cst = true
		return -1 // probe of a region edge: nowhere to go this cycle
	}
	if !usableLink(f, p, to, cycle) {
		// The belief allowed a hop the physics refuses (or the probe
		// found the component still down): discover, back off, and give
		// up after the budget.
		*cst = true
		e.discover(w, p, to, f)
		e.ptry[slot]++
		if e.ptry[slot] >= engProbeBudget {
			e.dropq[w] = append(e.dropq[w], engDrop{lp: int32(e.localOf(p, r)), slot: slot})
			e.pwait[slot] = 1 << 60 // off the board until flushed
		} else {
			b := e.ptry[slot]
			if b > 4 {
				b = 4
			}
			e.pwait[slot] = cycle + int64(1)<<b
		}
		return -1
	}
	if probe {
		// The probe went through: the belief was stale-dead (or wrong
		// about the slow factor). Record the correction.
		e.discoverRevive(w, p, to, f, bel)
	}
	return d
}

// discover records the physical fault that blocked a hop the belief
// allowed, witnessed by the node holding the packet.
func (e *Engine[T]) discover(w, p, to int, f *fault.Map) {
	d := faultview.Discovery{Witness: p}
	switch {
	case f.NodeDead(to):
		d.Kind, d.P = fault.EvKillNode, to
	case !f.LinkUp(p, to):
		d.Kind, d.P, d.Q = fault.EvKillLink, p, to
	default:
		d.Kind, d.P, d.Q, d.Factor = fault.EvSlowLink, p, to, f.LinkDelay(p, to)
	}
	e.disc[w] = append(e.disc[w], d)
}

// discoverRevive records the correction when a probe of a
// believed-unusable link physically succeeded.
func (e *Engine[T]) discoverRevive(w, p, to int, f, bel *fault.Map) {
	d := faultview.Discovery{Witness: p}
	switch {
	case bel.NodeDead(to):
		d.Kind, d.P = fault.EvReviveNode, to
	case !bel.LinkUp(p, to):
		d.Kind, d.P, d.Q = fault.EvReviveLink, p, to
	default:
		// The believed slow factor blocked this cycle but the link
		// carried the probe: correct the factor.
		if td := f.LinkDelay(p, to); td == 1 {
			d.Kind, d.P, d.Q = fault.EvHealLink, p, to
		} else {
			d.Kind, d.P, d.Q, d.Factor = fault.EvSlowLink, p, to, td
		}
	}
	e.disc[w] = append(e.disc[w], d)
}

// flushLocal is the sequential point after each local-mode cycle: it
// removes the packets whose probe budget ran out (charged lost),
// integrates the sweep's discoveries into the gossip log, and advances
// one gossip round. shards is the sweep's shard count (0 when no sweep
// ran this cycle). Returns (packets dropped, backoff-waiting packets).
func (e *Engine[T]) flushLocal(shards int, f *fault.Map) (dropped, waiting int) {
	drops := 0
	for w := 0; w < shards; w++ {
		drops += len(e.dropq[w])
		waiting += int(e.wcnt[w])
	}
	if drops > 0 {
		// Collect and order the drops so removal is width-independent,
		// then delete each slot from its queue. Emptied nodes stay on
		// the worklist (sweeps skip them; the next merge prunes them).
		all := make([]engDrop, 0, drops)
		for w := 0; w < shards; w++ {
			all = append(all, e.dropq[w]...)
			e.dropq[w] = e.dropq[w][:0]
		}
		slices.SortFunc(all, func(a, b engDrop) int {
			if a.lp != b.lp {
				return int(a.lp - b.lp)
			}
			return int(a.slot - b.slot)
		})
		for _, dr := range all {
			q := e.queues[dr.lp]
			out := q[:0]
			for _, s := range q {
				if s != dr.slot {
					out = append(out, s)
				}
			}
			e.queues[dr.lp] = out
		}
		dropped = drops
	}
	n := 0
	for w := 0; w < shards; w++ {
		n += len(e.disc[w])
	}
	if n > 0 {
		e.discAll = e.discAll[:0]
		for w := 0; w < shards; w++ {
			e.discAll = append(e.discAll, e.disc[w]...)
			e.disc[w] = e.disc[w][:0]
		}
		e.view.Integrate(e.discAll, f)
	}
	e.view.Tick(f)
	return dropped, waiting
}

// localHazards rebuilds e.haz as the union of the physical hazards and
// the quiet-state belief hazards whenever the notice log grew. The
// union is what makes local-mode epoch skips sound: within the skip
// window no packet crosses an edge that either the truth or any live
// belief treats as down or slow, so every in-window hop is the
// preferred dimension-ordered one and probes, detours and discoveries
// cannot occur.
func (e *Engine[T]) localHazards(f *fault.Map) {
	m := e.m
	if e.hazLog == e.view.NoticeCount() {
		return
	}
	e.hazLog = e.view.NoticeCount()
	e.haz = e.haz[:0]
	e.hbuf = f.AppendLinkHazards(e.hbuf)
	for _, hz := range e.hbuf {
		e.haz = append(e.haz, engHazard{
			ar: int32(m.RowOf(hz.A)), ac: int32(m.ColOf(hz.A)),
			br: int32(m.RowOf(hz.B)), bc: int32(m.ColOf(hz.B)),
			delay: int32(hz.Delay),
		})
	}
	e.hbuf = e.view.AppendBeliefHazards(e.hbuf)
	for _, hz := range e.hbuf {
		e.haz = append(e.haz, engHazard{
			ar: int32(m.RowOf(hz.A)), ac: int32(m.ColOf(hz.A)),
			br: int32(m.RowOf(hz.B)), bc: int32(m.ColOf(hz.B)),
			delay: int32(hz.Delay),
		})
	}
}

// merge applies one cycle's arrivals in deterministic shard order:
// deliver packets that reached their destination, update each mover's
// cached (dir, dist) — incrementally after a preferred hop, from
// scratch after a detour — re-queue the rest, and rebuild the worklist
// (prune emptied nodes, add newly occupied ones). The worklist is kept
// sorted incrementally: pruning preserves order, and the tail of newly
// occupied nodes is sorted on its own and merged back in, so no cycle
// ever sorts the whole worklist. Returns the number of packets
// delivered this cycle.
func (e *Engine[T]) merge(delivered [][]T, r mesh.Region, topo topology, wrap, faulty bool, shards int) int {
	m := e.m
	done := 0
	// Prune first: a node emptied by the sweep leaves the worklist
	// unless an arrival below re-occupies it.
	wl := e.scratch[:0]
	for _, lp := range e.active {
		if len(e.queues[lp]) > 0 {
			wl = append(wl, lp)
		} else {
			e.inQ[lp] = false
		}
	}
	sorted := len(wl) // prune preserved order; enqueue appends after here
	for w := 0; w < shards; w++ {
		for _, a := range e.arr[w] {
			slot := a.slot
			to := int(a.to)
			if faulty {
				e.from[slot] = a.fromP
				if e.view != nil && e.ptry[slot] != 0 {
					// The packet moved: its rediscovery budget refills.
					e.ptry[slot] = 0
					e.pwait[slot] = 0
				}
				if a.detour {
					d := int(e.dests[slot])
					if to == d {
						delivered[to] = append(delivered[to], e.val[slot])
						done++
						continue
					}
					dr, _ := topo.next(to, d)
					e.dir[slot] = int8(dr)
					e.dist[slot] = int32(topo.dist(to, d))
					wl = e.enqueue(e.localOf(to, r), slot, wl)
					continue
				}
			}
			nd := e.dist[slot] - 1
			if nd == 0 {
				delivered[to] = append(delivered[to], e.val[slot])
				done++
				continue
			}
			e.dist[slot] = nd
			if e.dir[slot] <= 1 {
				d := int(e.dests[slot])
				if m.ColOf(to) == int(e.dcol[slot]) {
					e.dir[slot] = rowDirAfterCol(m, to, d, wrap)
				}
			}
			wl = e.enqueue(e.localOf(to, r), slot, wl)
		}
	}
	if tail := wl[sorted:]; len(tail) > 0 {
		if sorted == 0 {
			// Full rebuild (every node drained and re-occupied): defer
			// the sort. Only a selection sweep observes worklist order,
			// and in event mode the next iteration is often a batch.
			e.scratch = e.active[:0]
			e.active = wl
			e.wlUnsorted = true
			return done
		}
		slices.Sort(tail)
		// Two-pointer merge of the sorted runs into the retired
		// worklist buffer (disjoint backing, and the runs share no
		// value: tail nodes were unoccupied when appended).
		out := e.active[:0]
		head := wl[:sorted]
		i, j := 0, 0
		for i < len(head) && j < len(tail) {
			if head[i] < tail[j] {
				out = append(out, head[i])
				i++
			} else {
				out = append(out, tail[j])
				j++
			}
		}
		out = append(out, head[i:]...)
		out = append(out, tail[j:]...)
		e.scratch = wl[:0]
		e.active = out
		return done
	}
	e.scratch = e.active[:0]
	e.active = wl
	return done
}

// trajPos returns the node a free-running packet occupies t cycles from
// now and its cached direction there. The packet sits at (row, col)
// with cached direction d, h horizontal hops remaining toward
// destination column dc, and vertical direction vd (valid whenever the
// trajectory has a vertical leg, i.e. whenever t ≥ h is reachable).
// 0 ≤ t ≤ dist; positions beyond the horizontal turn follow the
// dimension-ordered column corridor exactly as merge would compute
// them one hop at a time.
func (e *Engine[T]) trajPos(row, col, dc int, d, vd int8, h, t int32, wrap bool) (int, int8) {
	m := e.m
	s := m.Side
	if t < h {
		if d == 1 {
			col += int(t)
			if wrap {
				col %= s
			}
		} else {
			col -= int(t)
			if wrap {
				col = (col%s + s) % s
			}
		}
		return m.IDOf(row, col), d
	}
	u := int(t - h)
	if vd == 3 {
		row += u
		if wrap {
			row %= s
		}
	} else {
		row -= u
		if wrap {
			row = (row%s + s) % s
		}
	}
	return m.IDOf(row, dc), vd
}

const engInf = int32(1) << 30

// skipHorizon computes the epoch-skip width available from the current
// state: the largest k such that every queued packet can free-run k
// hops along its cached (dir, dist) trajectory with no two packets
// ever competing for the same (node, out-direction) and no fault
// hazard crossed off-beat, capped by the external horizon source and
// the remaining retry budget. Two packets on the same line moving the
// same direction at unit speed collide iff they share a phase
// (position ∓ time), so the earliest collision is found by bucketing
// trajectory segments on (axis, line, direction, phase) and scanning
// each bucket for overlapping occupancy windows — O(P log P), no
// pairwise scan. The boolean reports whether the cap was semantic
// (collision or hazard) — if so the caller must sweep cycle by cycle
// until contention clears before attempting another skip.
// sortWorklist restores region-row-major worklist order after a batch
// or a full-rebuild merge deferred it. Event mode re-sorts the
// worklist before almost every sweep, so this is an LSD radix sort —
// byte-wise counting passes over node ids, stable and deterministic —
// rather than a comparison sort; small worklists fall back to
// slices.Sort.
func (e *Engine[T]) sortWorklist(r mesh.Region) {
	a := e.active
	if len(a) < 64 {
		slices.Sort(a)
		return
	}
	if cap(e.scratch) < len(a) {
		e.scratch = make([]int32, len(a), cap(e.active))
	}
	b := e.scratch[:len(a)]
	var cnt [256]int32
	for shift := uint(0); (r.H*r.W-1)>>shift > 0; shift += 8 {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, v := range a {
			cnt[uint8(v>>shift)]++
		}
		pos := int32(0)
		for i, c := range cnt {
			cnt[i] = pos
			pos += c
		}
		for _, v := range a {
			b[cnt[uint8(v>>shift)]] = v
			cnt[uint8(v>>shift)]++
		}
		a, b = b, a
	}
	if &a[0] != &e.active[0] {
		e.active, e.scratch = a, b[:0]
	}
}

// resetLines clears the corridor-line buckets touched by an aborted
// horizon attempt.
func (e *Engine[T]) resetLines() {
	for _, ln := range e.vtouch {
		e.vbkt[ln] = e.vbkt[ln][:0]
	}
	e.vtouch = e.vtouch[:0]
}

func (e *Engine[T]) skipHorizon(r mesh.Region, wrap, faulty bool, charged, budgetRem int64) (int32, bool) {
	m := e.m
	s := m.Side
	var maxDist int32
	semCap := engInf
	haz := e.haz
	if n := len(e.val); cap(e.trjH) < n {
		e.trjH = make([]int32, n)
		e.trjV = make([]int8, n)
	} else {
		e.trjH = e.trjH[:n]
		e.trjV = e.trjV[:n]
	}
	if len(e.vbkt) < 2*s {
		e.vbkt = make([][]uint64, 2*s)
	}
	for _, lpp := range e.active {
		lp := int(lpp)
		q := e.queues[lp]
		rr, c := r.R0+lp/r.W, r.C0+lp%r.W
		if len(q) > 1 {
			// Two packets queued at one node with the same cached
			// direction contend for that out-link now — a t=0 conflict,
			// no skip possible. This check also covers every possible
			// horizontal-corridor collision: same-direction unit-speed
			// packets share a phase only when co-located, and a
			// horizontal leg always starts now, so two horizontal
			// segments share a bucket key exactly when their packets
			// share a node. Only vertical segments (whose entry times
			// differ) need the bucket scan below.
			var seen [4]bool
			for _, slot := range q {
				d := e.dir[slot]
				if seen[d] {
					e.resetLines()
					return 0, true
				}
				seen[d] = true
			}
		}
		for _, slot := range q {
			if faulty && e.view != nil && e.pwait[slot] > charged {
				// A backoff-waiting packet does not free-run: its next
				// cycles deviate from the cached trajectory, so no skip.
				e.resetLines()
				return 0, true
			}
			d := e.dir[slot]
			dist := e.dist[slot]
			dest := int(e.dests[slot])
			dc := int(e.dcol[slot])
			var h int32
			if d <= 1 {
				if d == 1 {
					if wrap {
						h = int32((dc - c + s) % s)
					} else {
						h = int32(dc - c)
					}
				} else {
					if wrap {
						h = int32((c - dc + s) % s)
					} else {
						h = int32(c - dc)
					}
				}
			}
			v := dist - h
			var vd int8
			if d >= 2 {
				vd = d
			} else if v > 0 {
				vd = rowDirAfterCol(m, m.IDOf(rr, dc), dest, wrap)
			}
			e.trjH[slot], e.trjV[slot] = h, vd
			if dist > maxDist {
				maxDist = dist
			}
			if v > 0 {
				// Vertical corridor: entered at offset h in column dc
				// at row rr; phase = row ∓ entry time.
				var idx int
				if vd == 3 {
					if wrap {
						idx = ((rr-int(h))%s + s) % s
					} else {
						idx = rr - int(h) + s
					}
				} else {
					if wrap {
						idx = (rr + int(h)) % s
					} else {
						idx = rr + int(h)
					}
				}
				line := dc
				if vd == 3 {
					line += s
				}
				b := e.vbkt[line]
				if len(b) == 0 {
					e.vtouch = append(e.vtouch, int32(line))
				}
				e.vbkt[line] = append(b, engSeg(uint64(idx), h, dist-1))
			}
			if faulty && len(haz) > 0 {
				if t := e.hazardCap(haz, rr, c, dc, d, vd, h, dist, charged, wrap); t < semCap {
					semCap = t
				}
			}
		}
	}
	for _, ln := range e.vtouch {
		b := e.vbkt[ln]
		e.vbkt[ln] = b[:0]
		if len(b) < 2 {
			continue
		}
		// Sort the line's segments into (phase, entry) order and scan
		// each phase group for overlapping occupancy windows. Lines hold
		// a handful of segments each, so the sorts stay tiny.
		slices.Sort(b)
		var maxExit int32
		for i, sg := range b {
			entry, exit := int32(sg>>12&0xfff), int32(sg&0xfff)
			if i == 0 || sg>>24 != b[i-1]>>24 {
				maxExit = exit
				continue
			}
			if entry <= maxExit && entry < semCap {
				semCap = entry
			}
			if exit > maxExit {
				maxExit = exit
			}
		}
	}
	e.vtouch = e.vtouch[:0]
	k := maxDist
	if semCap < k {
		k = semCap
	}
	if e.hsrc != nil {
		if c := e.hsrc.NextEventIn(charged); c < int64(k) {
			if c < 0 {
				c = 0
			}
			k = int32(c)
		}
	}
	if budgetRem < int64(k) {
		k = int32(budgetRem)
	}
	return k, semCap <= k
}

func cmpDel(a, b engDel) int {
	if a.t != b.t {
		return int(a.t - b.t)
	}
	if a.sender != b.sender {
		return int(a.sender - b.sender)
	}
	if a.fdir != b.fdir {
		return int(a.fdir - b.fdir)
	}
	return int(a.slot - b.slot)
}

// hazardCap returns the earliest cycle offset at which the packet's
// free-running trajectory would cross a hazardous edge that blocks it:
// a dead edge at any offset, or a slow edge whose duty cycle misses
// the crossing (an on-beat slow crossing costs nothing extra and does
// not cap the skip). engInf when the trajectory clears every hazard.
// The modular crossing-time arithmetic is shared between mesh and
// torus: on the mesh, a wrap edge solves to an offset beyond the
// segment length, so it never caps.
func (e *Engine[T]) hazardCap(haz []engHazard, rr, c, dc int, d, vd int8, h, dist int32, charged int64, wrap bool) int32 {
	s := e.m.Side
	v := dist - h
	cap32 := engInf
	consider := func(t int32, delay int32) {
		if t >= cap32 {
			return
		}
		if delay == 0 || (charged+int64(t)+1)%int64(delay) != 0 {
			cap32 = t
		}
	}
	for _, hz := range haz {
		if h > 0 && int(hz.ar) == rr && int(hz.br) == rr {
			// Horizontal leg in row rr: does it cross edge (ac, bc)?
			sd := 1
			if d == 0 {
				sd = -1
			}
			for o := 0; o < 2; o++ {
				x, y := int(hz.ac), int(hz.bc)
				if o == 1 {
					x, y = y, x
				}
				if ((x+sd)%s+s)%s != y {
					continue
				}
				var t int32
				if sd > 0 {
					t = int32(((x-c)%s + s) % s)
				} else {
					t = int32(((c-x)%s + s) % s)
				}
				if t < h {
					consider(t, hz.delay)
				}
			}
		}
		if v > 0 && int(hz.ac) == dc && int(hz.bc) == dc {
			// Vertical leg in column dc, entered at offset h from row rr.
			sd := 1
			if vd == 2 {
				sd = -1
			}
			for o := 0; o < 2; o++ {
				x, y := int(hz.ar), int(hz.br)
				if o == 1 {
					x, y = y, x
				}
				if ((x+sd)%s+s)%s != y {
					continue
				}
				var tv int32
				if sd > 0 {
					tv = int32(((x-rr)%s + s) % s)
				} else {
					tv = int32(((rr-x)%s + s) % s)
				}
				if tv < v {
					consider(h+tv, hz.delay)
				}
			}
		}
	}
	return cap32
}

// batchAdvance fast-forwards every queued packet k hops along its
// cached trajectory in one executed iteration, charging k cycles.
// Packets with dist ≤ k are delivered in the exact order the
// cycle-stepped engine would have appended them: sorted by arrival
// cycle, then by the final hop's sender in worklist order, then by the
// sender's outgoing direction (the per-node emission order of the
// sweep), then by slot. Survivors land at their offset-k position with
// dist reduced by k; on the fault path their backtrack pointer is set
// to the offset-(k-1) position, exactly as k single hops would have
// left it. Queues and the worklist are rebuilt (sorted); queue-internal
// order is unobservable — selection depends only on (dist, slot).
// Returns the number of packets delivered.
func (e *Engine[T]) batchAdvance(delivered [][]T, r mesh.Region, wrap, faulty bool, k int32) int {
	if len(e.arr) == 0 {
		e.arr = append(e.arr, nil)
	}
	stage := e.arr[0][:0]
	dq := e.delq[:0]
	for _, lpp := range e.active {
		lp := int(lpp)
		q := e.queues[lp]
		rr, c := r.R0+lp/r.W, r.C0+lp%r.W
		for _, slot := range q {
			d := e.dir[slot]
			dist := e.dist[slot]
			dc := int(e.dcol[slot])
			// (h, vd) were cached by the skipHorizon call that computed
			// this batch's width; the state is unchanged in between.
			h, vd := e.trjH[slot], e.trjV[slot]
			if dist <= k {
				sender, sdir := e.trajPos(rr, c, dc, d, vd, h, dist-1, wrap)
				dq = append(dq, engDel{t: dist, sender: int32(e.localOf(sender, r)),
					slot: slot, fdir: sdir})
				continue
			}
			np, ndir := e.trajPos(rr, c, dc, d, vd, h, k, wrap)
			if faulty {
				fp, _ := e.trajPos(rr, c, dc, d, vd, h, k-1, wrap)
				e.from[slot] = int32(fp)
			}
			e.dir[slot] = ndir
			e.dist[slot] = dist - k
			stage = append(stage, engArrival{to: int32(np), slot: slot})
		}
		e.queues[lp] = q[:0]
		e.inQ[lp] = false
	}
	slices.SortFunc(dq, cmpDel)
	for _, dd := range dq {
		dest := int(e.dests[dd.slot])
		delivered[dest] = append(delivered[dest], e.val[dd.slot])
	}
	wl := e.active[:0]
	for _, a := range stage {
		wl = e.enqueue(e.localOf(int(a.to), r), a.slot, wl)
	}
	e.active = wl
	e.wlUnsorted = len(wl) > 0 // sorted lazily by the next sweep
	e.arr[0] = stage[:0]
	e.delq = dq[:0]
	return len(dq)
}

// route is the healthy loop shared by Route and RouteTorus: in
// ModeEvent it alternates epoch-skip batches with contention-resolving
// sweeps; in ModeCycle it sweeps every charged cycle.
func (e *Engine[T]) route(dst [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, wrap bool) (delivered [][]T, steps int64) {
	m := e.m
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		sp.Exec(e.execs)
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	e.ensure(r)
	//detlint:ignore checkederr healthy path injects with a nil fault map, so the lost count is structurally zero
	active, _ := e.inject(delivered, r, items, dest, topo, nil)
	sp.AddPackets(int64(len(e.val)))
	e.haz = e.haz[:0]
	useEvent := e.mode == ModeEvent && m.Side < engMaxEventSide
	contested := false
	for active > 0 {
		if useEvent && !contested {
			if k, sem := e.skipHorizon(r, wrap, false, steps, 1<<62); k > 0 {
				e.execs++
				steps += int64(k)
				active -= e.batchAdvance(delivered, r, wrap, false, k)
				contested = sem
				continue
			}
			contested = true
		}
		steps++
		e.execs++
		shards, total := e.sweep(r, topo, wrap, false, steps, active)
		if total == 0 {
			panic("route: greedy router stalled with active packets")
		}
		active -= e.merge(delivered, r, topo, wrap, false, shards)
		// A contested sweep does not gate the next horizon attempt: the
		// loser of a selection is often alone next cycle, and a doomed
		// attempt exits early on its t=0 dup-direction check (a zero
		// horizon always has a co-located same-direction pair), so the
		// optimistic retry costs little and converts whole tails of
		// contention episodes into batches.
		contested = false
	}
	e.cleanup()
	return delivered, steps
}

// routeFault is the fault-aware loop shared by RouteFault and
// RouteTorusFault: identical to route but consulting the machine's
// fault map — detours, slow-link waits, the bounded retry budget
// (16·(H+W) + 4·#packets cycles) and the wedge break after a full slow
// period of silence. Every cycle spent detouring or waiting is a
// charged machine step. With a nil (or empty) fault map it makes
// bit-identical decisions to route. In ModeEvent, epoch skips are
// additionally capped at the first off-beat hazard crossing and at the
// remaining budget, so blocked, waiting and detouring cycles run one
// by one exactly as in ModeCycle.
func (e *Engine[T]) routeFault(dst [][]T, r mesh.Region, items [][]T, dest func(T) int, topo topology, wrap bool) (delivered [][]T, steps int64, lost int) {
	m := e.m
	f := m.Faults()
	sp := m.Ledger().Begin("greedy", trace.PhaseForward)
	defer func() {
		sp.Observe(steps)
		sp.Exec(e.execs)
		if lost > 0 {
			sp.SetAttr("lost", int64(lost))
		}
		sp.End()
	}()
	if dst == nil {
		dst = make([][]T, m.N)
	}
	delivered = dst
	e.ensure(r)
	active, lost := e.inject(delivered, r, items, dest, topo, f)
	sp.AddPackets(int64(len(e.val)))
	e.hbuf = f.AppendLinkHazards(e.hbuf)
	e.haz = e.haz[:0]
	for _, hz := range e.hbuf {
		e.haz = append(e.haz, engHazard{
			ar: int32(m.RowOf(hz.A)), ac: int32(m.ColOf(hz.A)),
			br: int32(m.RowOf(hz.B)), bc: int32(m.ColOf(hz.B)),
			delay: int32(hz.Delay),
		})
	}

	if e.view != nil {
		// Per-slot probe state for this call's slab, zeroed.
		n := len(e.val)
		if cap(e.ptry) < n {
			e.ptry = make([]int8, n)
			e.pwait = make([]int64, n)
		} else {
			e.ptry = e.ptry[:n]
			e.pwait = e.pwait[:n]
			for i := range e.ptry {
				e.ptry[i] = 0
				e.pwait[i] = 0
			}
		}
		e.hazLog = -1 // truth changed since last call: rebuild the union
	}

	budget := int64(16*(r.H+r.W) + 4*active)
	maxDelay := int64(f.MaxDelay())
	idle := int64(0)
	useEvent := e.mode == ModeEvent && m.Side < engMaxEventSide
	contested := false
	for active > 0 && steps < budget {
		// Local knowledge gates epoch skips on a quiet view: while a
		// notice is still spreading, beliefs change every round, so the
		// engine steps cycle by cycle (one gossip round per charged
		// cycle). Once quiet, live beliefs are frozen at the full log and
		// the truth∪belief hazard union makes free-running sound; the
		// skipped rounds are provably no-op exchanges (AdvanceRounds).
		if useEvent && !contested && (e.view == nil || e.view.Quiet()) {
			if e.view != nil {
				e.localHazards(f)
			}
			if k, sem := e.skipHorizon(r, wrap, true, steps, budget-steps); k > 0 {
				e.execs++
				steps += int64(k)
				active -= e.batchAdvance(delivered, r, wrap, true, k)
				if e.view != nil {
					e.view.AdvanceRounds(int64(k))
				}
				contested = sem
				idle = 0
				continue
			}
			contested = true
		}
		steps++
		e.execs++
		shards, total := e.sweep(r, topo, wrap, true, steps, active)
		if total == 0 {
			// Nothing moved. With slow links a packet may be waiting for
			// its cycle; after a full slow period of silence the network
			// is provably wedged and the survivors are lost.
			if e.view != nil {
				dropped, waiting := e.flushLocal(shards, f)
				lost += dropped
				active -= dropped
				if waiting > 0 {
					// Backoff windows (up to 16 cycles) outlast the slow
					// period; the retry budget still bounds the loop.
					idle = -1
				}
			}
			idle++
			if idle >= maxDelay {
				break
			}
			contested = e.lastContested
			continue
		}
		idle = 0
		active -= e.merge(delivered, r, topo, wrap, true, shards)
		if e.view != nil {
			dropped, _ := e.flushLocal(shards, f)
			lost += dropped
			active -= dropped
		}
		contested = e.lastContested
	}
	lost += active // budget exhausted or wedged: survivors are dropped
	e.cleanup()
	return delivered, steps, lost
}
