package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	l := New()
	root := l.Begin("step", PhaseOther)
	if l.Active() != root {
		t.Fatal("root not active")
	}
	sort := l.Begin("sort", PhaseSort)
	sort.Charge(10)
	sort.End()
	if l.Active() != root {
		t.Fatal("active did not pop to root")
	}
	fwd := l.Begin("forward", PhaseForward)
	fwd.Charge(5)
	inner := l.Begin("greedy", PhaseForward)
	inner.Observe(7)
	inner.End()
	fwd.End()
	root.Charge(1)
	root.End()

	if got := root.Total(); got != 16 {
		t.Fatalf("Total = %d, want 16 (observed must not count)", got)
	}
	pt := root.PhaseTotals()
	if pt[PhaseSort] != 10 || pt[PhaseForward] != 5 || pt[PhaseOther] != 1 {
		t.Fatalf("phase totals %v", pt)
	}
	if l.Last() != root {
		t.Fatal("Last() should return the completed root")
	}
	if f := root.Find("greedy"); f == nil || f.Observed() != 7 {
		t.Fatalf("Find(greedy) = %v", f)
	}
}

func TestNilSafety(t *testing.T) {
	var l *Ledger
	sp := l.Begin("x", PhaseSort)
	if sp != nil {
		t.Fatal("nil ledger must return nil span")
	}
	sp.Charge(3)
	sp.Observe(3)
	sp.AddPackets(1)
	sp.SetAttr("k", 1)
	sp.End()
	l.Charge(5)
	if sp.Total() != 0 || l.Last() != nil || l.Active() != nil {
		t.Fatal("nil receivers must be no-ops")
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := New()
	l.Begin("x", PhaseOther).Charge(-1)
}

func TestAttrs(t *testing.T) {
	l := New()
	sp := l.Begin("stage", PhaseOther)
	sp.SetAttr("delta", 4)
	sp.SetAttr("delta", 9) // last wins
	sp.SetAttr("stage", 2)
	sp.End()
	if v, ok := sp.Attr("delta"); !ok || v != 9 {
		t.Fatalf("Attr(delta) = %d, %v", v, ok)
	}
	if _, ok := sp.Attr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
	if len(sp.Attrs()) != 3 {
		t.Fatalf("attrs %v", sp.Attrs())
	}
}

func TestLedgerChargeGoesToActive(t *testing.T) {
	l := New()
	root := l.Begin("op", PhaseOther)
	child := l.Begin("access", PhaseAccess)
	l.Charge(11)
	child.End()
	l.Charge(2)
	root.End()
	if child.Charged() != 11 || root.Charged() != 2 {
		t.Fatalf("charged root=%d child=%d", root.Charged(), child.Charged())
	}
	// Charges with no active span are dropped, not panicking.
	l.Charge(100)
	if root.Total() != 13 {
		t.Fatalf("total %d", root.Total())
	}
}

func TestConcurrentCharges(t *testing.T) {
	l := New()
	sp := l.Begin("par", PhaseAccess)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				sp.Charge(1)
				sp.AddPackets(1)
				sp.Observe(1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	if sp.Charged() != 8000 || sp.Packets() != 8000 || sp.Observed() != 8000 {
		t.Fatalf("charged=%d packets=%d observed=%d", sp.Charged(), sp.Packets(), sp.Observed())
	}
}

func TestSinksReceiveRoots(t *testing.T) {
	var collect CollectSink
	var buf bytes.Buffer
	l := New(WithSink(&collect), WithSink(JSONSink{&buf}))
	for i := 0; i < 3; i++ {
		r := l.Begin("step", PhaseOther)
		l.Begin("sort", PhaseSort).End()
		r.End()
	}
	if len(collect.Roots) != 3 {
		t.Fatalf("collected %d roots", len(collect.Roots))
	}
	dec := json.NewDecoder(&buf)
	for i := 0; i < 3; i++ {
		var n Node
		if err := dec.Decode(&n); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if n.Name != "step" || len(n.Children) != 1 || n.Children[0].Phase != "sort" {
			t.Fatalf("doc %d: %+v", i, n)
		}
	}
}

func TestExportAndCSV(t *testing.T) {
	l := New()
	root := l.Begin("step", PhaseOther)
	s := l.BeginPar("stage-2", PhaseOther)
	sub := l.Begin("submesh-0", PhaseForward)
	sub.Observe(9)
	sub.AddPackets(4)
	sub.End()
	lf := l.Begin("forward", PhaseForward)
	lf.Charge(9)
	lf.End()
	s.SetAttr("delta", 3)
	s.End()
	root.End()

	n := Export(root)
	if n.Children[0].Attrs["delta"] != 3 || !n.Children[0].Parallel {
		t.Fatalf("export %+v", n.Children[0])
	}
	if n.Children[0].Children[0].Observed != 9 {
		t.Fatal("observed lost in export")
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, root); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "step/stage-2/forward,forward,9,0,0") {
		t.Fatalf("csv:\n%s", out)
	}
	if !strings.HasPrefix(out, "depth,path,phase,charged,observed,packets,wall_ns\n") {
		t.Fatalf("csv header:\n%s", out)
	}
}

func TestWithAllocs(t *testing.T) {
	l := New(WithAllocs())
	sp := l.Begin("alloc", PhaseOther)
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 128)
	}
	_ = sink
	sp.End()
	if sp.Allocs() == 0 {
		t.Fatal("expected a nonzero allocation delta")
	}
}

func TestPhaseStrings(t *testing.T) {
	want := []string{"other", "culling", "sort", "rank", "forward", "access", "return"}
	for i, w := range want {
		if Phase(i).String() != w {
			t.Fatalf("phase %d = %q", i, Phase(i).String())
		}
	}
	if Phase(250).String() != "invalid" {
		t.Fatal("out-of-range phase")
	}
}
