// Package trace is the unified cost-accounting and tracing layer of the
// repository: every execution path (the staged protocol of internal/core
// and its direct-routing ablation, the baselines, the MPC, and the PRAM
// backends) reports its charged mesh steps through one hierarchy of
// phase spans, and every consumer (internal/stats, cmd/experiments,
// cmd/pramsim) reads the same schema back.
//
// The model mirrors the paper's step accounting (DESIGN.md §6):
//
//   - a Span is one phase of an operation (a protocol stage, a sort, a
//     routing leg, the access round). Spans nest; the tree of one
//     PRAM-step simulation is the cost breakdown of Theorems 1–4.
//   - Charge records steps the machine actually pays. A span's Total is
//     its own charges plus its children's — by construction it equals
//     the step-counter delta of the operation it covers.
//   - Observe records steps a phase executed that are charged elsewhere:
//     phases running in disjoint submeshes in parallel are charged the
//     maximum over the submeshes, so each submesh's span observes its
//     own rounds while the parent charges the max. Observed steps never
//     enter totals; they exist for audit and per-submesh diagnostics.
//
// Spans also carry packet counts, wall-clock time, optional allocation
// deltas, and ordered integer attributes (the δ_i loads, Theorem-3 page
// loads, …). Completed root spans are handed to pluggable sinks; the
// ledger itself retains only the most recent root, so long simulations
// do not accumulate trace memory.
package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies a span for cost-breakdown views. The six non-Other
// phases are exactly the terms of the paper's step decomposition
// (sort / rank / route / access / return plus the CULLING preamble).
type Phase uint8

const (
	PhaseOther   Phase = iota // structural spans (steps, stages, legs)
	PhaseCulling              // copy selection (equation 2 shape)
	PhaseSort                 // destination sorting
	PhaseRank                 // ranking / prefix-sum passes
	PhaseForward              // origin→copy routing cycles
	PhaseAccess               // local memory accesses
	PhaseReturn               // copy→origin routing cycles
	PhaseRepair               // self-healing scrub traffic and retry backoff
	PhaseGossip               // fault-view dissemination diagnostics (observe-only)
)

var phaseNames = [...]string{"other", "culling", "sort", "rank", "forward", "access", "return", "repair", "gossip"}

// NumPhases is the number of distinct Phase values.
const NumPhases = len(phaseNames)

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "invalid"
}

// Attr is one ordered key→value diagnostic on a span.
type Attr struct {
	Key string
	Val int64
}

// Span is one node of a ledger tree. All step/packet mutators are safe
// for concurrent use; tree structure (Begin/End) is owned by the
// ledger's lock. A nil *Span is a valid no-op receiver everywhere, so
// uninstrumented callers never need nil checks.
type Span struct {
	name  string
	phase Phase
	par   bool // children ran in parallel submeshes; parent charges the max

	charged  atomic.Int64
	observed atomic.Int64
	executed atomic.Int64
	packets  atomic.Int64

	start   time.Time
	wallNs  int64
	allocs0 uint64
	allocs  uint64 // End−Begin malloc count, when the ledger captures allocs

	attrs    []Attr
	children []*Span
	parent   *Span
	ledger   *Ledger
}

// Name returns the span's label.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Phase returns the span's cost-breakdown classification.
func (s *Span) Phase() Phase {
	if s == nil {
		return PhaseOther
	}
	return s.phase
}

// Parallel reports whether the span's children ran in disjoint
// submeshes in parallel (so the charged steps are the max, carried by
// sibling leaf spans, while each child merely observes its own rounds).
func (s *Span) Parallel() bool { return s != nil && s.par }

// Charge records n machine steps paid at this span (n ≥ 0).
func (s *Span) Charge(n int64) {
	if s == nil || n == 0 {
		return
	}
	if n < 0 {
		panic("trace: negative step charge")
	}
	s.charged.Add(n)
}

// Observe records n executed-but-charged-elsewhere steps (see package
// doc: the parallel-submesh maximum rule).
func (s *Span) Observe(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.observed.Add(n)
}

// Exec records n physically executed engine iterations (sweeps plus
// epoch-skip batches). Executed iterations are an implementation
// diagnostic beside the semantic axes: charged and observed cycles are
// bit-identical between the event-driven and cycle-stepped engines,
// while executed exposes the skip ratio (executed ≤ observed cycles,
// with equality in cycle mode). Like wall time and alloc counts,
// executed never enters totals or deterministic renderings.
func (s *Span) Exec(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.executed.Add(n)
}

// AddPackets records n packets handled by this span.
func (s *Span) AddPackets(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.packets.Add(n)
}

// SetAttr appends a diagnostic attribute (duplicate keys allowed; the
// last value wins on lookup).
func (s *Span) SetAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, val})
}

// Attr returns the last value recorded for key.
func (s *Span) Attr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Val, true
		}
	}
	return 0, false
}

// Attrs returns the span's attributes in recording order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Charged returns the steps charged directly at this span.
func (s *Span) Charged() int64 {
	if s == nil {
		return 0
	}
	return s.charged.Load()
}

// Observed returns the steps observed (charged elsewhere) at this span.
func (s *Span) Observed() int64 {
	if s == nil {
		return 0
	}
	return s.observed.Load()
}

// Executed returns the physically executed engine iterations recorded
// at this span (0 when the phase ran cycle-stepped or predates the
// event engine).
func (s *Span) Executed() int64 {
	if s == nil {
		return 0
	}
	return s.executed.Load()
}

// Packets returns the packets recorded at this span.
func (s *Span) Packets() int64 {
	if s == nil {
		return 0
	}
	return s.packets.Load()
}

// WallNs returns the wall-clock duration, valid after End.
func (s *Span) WallNs() int64 {
	if s == nil {
		return 0
	}
	return s.wallNs
}

// Allocs returns the heap allocations performed between Begin and End,
// when the ledger was created WithAllocs (0 otherwise).
func (s *Span) Allocs() uint64 {
	if s == nil {
		return 0
	}
	return s.allocs
}

// Total returns the charged steps of the whole subtree: this span's own
// charges plus the sum of its children's totals. For an operation that
// charges every step through its spans, Total equals the machine
// step-counter delta.
func (s *Span) Total() int64 {
	if s == nil {
		return 0
	}
	t := s.charged.Load()
	for _, c := range s.children {
		t += c.Total()
	}
	return t
}

// TotalPackets returns the packets of the whole subtree.
func (s *Span) TotalPackets() int64 {
	if s == nil {
		return 0
	}
	t := s.packets.Load()
	for _, c := range s.children {
		t += c.TotalPackets()
	}
	return t
}

// PhaseTotals sums the charged steps of the subtree by phase.
func (s *Span) PhaseTotals() [NumPhases]int64 {
	var out [NumPhases]int64
	s.phaseTotalsInto(&out)
	return out
}

func (s *Span) phaseTotalsInto(out *[NumPhases]int64) {
	if s == nil {
		return
	}
	out[s.phase] += s.charged.Load()
	for _, c := range s.children {
		c.phaseTotalsInto(out)
	}
}

// Find returns the first span of the subtree (pre-order) with the given
// name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// End closes the span: records wall time (and the allocation delta when
// enabled), pops it from the ledger's active chain, and — if it was a
// root — emits it to the sinks and retains it as the ledger's last
// completed tree.
func (s *Span) End() {
	if s == nil {
		return
	}
	//detlint:ignore wallclock span wall time is a diagnostic; it never enters charged totals
	s.wallNs = time.Since(s.start).Nanoseconds()
	l := s.ledger
	if l == nil {
		return
	}
	if l.captureAllocs {
		s.allocs = mallocCount() - s.allocs0
	}
	l.mu.Lock()
	if l.active == s {
		l.active = s.parent
	}
	root := s.parent == nil
	if root {
		l.last = s
	}
	sinks := l.sinks
	l.mu.Unlock()
	if root {
		for _, sink := range sinks {
			sink.Emit(s)
		}
	}
}

// Sink consumes completed root spans (e.g. writes them to a file).
type Sink interface {
	Emit(root *Span)
}

// Ledger is the accounting spine one machine (or one standalone
// simulator) charges through. A nil *Ledger is a valid no-op receiver.
type Ledger struct {
	mu            sync.Mutex
	active        *Span
	last          *Span
	sinks         []Sink
	captureAllocs bool
}

// Option configures a Ledger.
type Option func(*Ledger)

// WithSink registers a sink receiving every completed root span.
func WithSink(s Sink) Option { return func(l *Ledger) { l.sinks = append(l.sinks, s) } }

// WithAllocs enables per-span heap-allocation deltas. It reads
// runtime.MemStats at every Begin/End, which is expensive — use for
// profiling sessions, not steady-state accounting.
func WithAllocs() Option { return func(l *Ledger) { l.captureAllocs = true } }

// New creates a ledger.
func New(opts ...Option) *Ledger {
	l := &Ledger{}
	for _, o := range opts {
		o(l)
	}
	return l
}

// AddSink registers a sink on an existing ledger — the
// post-construction form of WithSink, for builders that wire sinks
// after the ledger is already owned by a machine or simulator.
func (l *Ledger) AddSink(s Sink) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	l.sinks = append(l.sinks, s)
	l.mu.Unlock()
}

// Begin opens a span nested under the currently active span (a new root
// when none is active) and makes it active.
func (l *Ledger) Begin(name string, phase Phase) *Span {
	return l.begin(name, phase, false)
}

// BeginPar is Begin for a phase whose children run in parallel across
// disjoint submeshes: child spans observe their own rounds while the
// caller charges the maximum (the paper's cost rule).
func (l *Ledger) BeginPar(name string, phase Phase) *Span {
	return l.begin(name, phase, true)
}

func (l *Ledger) begin(name string, phase Phase, par bool) *Span {
	if l == nil {
		return nil
	}
	//detlint:ignore wallclock span wall time is a diagnostic; it never enters charged totals
	s := &Span{name: name, phase: phase, par: par, ledger: l, start: time.Now()}
	if l.captureAllocs {
		s.allocs0 = mallocCount()
	}
	l.mu.Lock()
	s.parent = l.active
	if s.parent != nil {
		s.parent.children = append(s.parent.children, s)
	}
	l.active = s
	l.mu.Unlock()
	return s
}

// Active returns the currently open span, or nil.
func (l *Ledger) Active() *Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// Charge adds n steps to the active span; charges outside any span are
// dropped (the machine counter still records them).
func (l *Ledger) Charge(n int64) {
	if l == nil {
		return
	}
	l.Active().Charge(n)
}

// Last returns the most recently completed root span, or nil. The
// ledger retains only this one tree; use a Sink to keep history.
func (l *Ledger) Last() *Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
