package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Node is the serialization-friendly snapshot of a Span subtree: the
// one schema every execution path exports (cmd/experiments -json,
// sinks, tests).
type Node struct {
	Name     string           `json:"name"`
	Phase    string           `json:"phase"`
	Parallel bool             `json:"parallel,omitempty"`
	Charged  int64            `json:"charged"`
	Observed int64            `json:"observed,omitempty"`
	Executed int64            `json:"executed,omitempty"`
	Packets  int64            `json:"packets,omitempty"`
	WallNs   int64            `json:"wall_ns"`
	Allocs   uint64           `json:"allocs,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*Node          `json:"children,omitempty"`
}

// Export snapshots a span subtree into Nodes. Safe once the span has
// ended (the tree is no longer mutated).
func Export(s *Span) *Node {
	if s == nil {
		return nil
	}
	n := &Node{
		Name:     s.Name(),
		Phase:    s.Phase().String(),
		Parallel: s.Parallel(),
		Charged:  s.Charged(),
		Observed: s.Observed(),
		Executed: s.Executed(),
		Packets:  s.Packets(),
		WallNs:   s.WallNs(),
		Allocs:   s.Allocs(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		n.Attrs = make(map[string]int64, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.Children() {
		n.Children = append(n.Children, Export(c))
	}
	return n
}

// WriteJSON writes the subtree as indented JSON.
func WriteJSON(w io.Writer, s *Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Export(s))
}

// WriteCSV writes the subtree as flat CSV rows
// (depth,path,phase,charged,observed,packets,wall_ns).
func WriteCSV(w io.Writer, s *Span) error {
	if _, err := fmt.Fprintln(w, "depth,path,phase,charged,observed,packets,wall_ns"); err != nil {
		return err
	}
	return writeCSVNode(w, s, "", 0)
}

func writeCSVNode(w io.Writer, s *Span, prefix string, depth int) error {
	if s == nil {
		return nil
	}
	path := s.Name()
	if prefix != "" {
		path = prefix + "/" + s.Name()
	}
	if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%d\n",
		depth, path, s.Phase(), s.Charged(), s.Observed(), s.Packets(), s.WallNs()); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeCSVNode(w, c, path, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// JSONSink writes every completed root span as one indented JSON
// document to the underlying writer.
type JSONSink struct{ W io.Writer }

// Emit implements Sink. The Sink interface has no error channel; a
// failed diagnostics write must not abort the simulation it observes.
//
//detlint:ignore checkederr best-effort diagnostics sink; Sink has no error channel
func (s JSONSink) Emit(root *Span) { _ = WriteJSON(s.W, root) }

// CSVSink writes every completed root span as CSV rows (with a header
// per tree) to the underlying writer.
type CSVSink struct{ W io.Writer }

// Emit implements Sink.
//
//detlint:ignore checkederr best-effort diagnostics sink; Sink has no error channel
func (s CSVSink) Emit(root *Span) { _ = WriteCSV(s.W, root) }

// CollectSink retains every completed root span in memory (tests,
// short sessions).
type CollectSink struct{ Roots []*Span }

// Emit implements Sink.
func (s *CollectSink) Emit(root *Span) { s.Roots = append(s.Roots, root) }
