package faultview

import "testing"

// FuzzParseNotice drives the notice wire grammar: any input must parse
// or error without panicking, and an accepted notice must re-render and
// re-parse to itself (String ∘ ParseNotice is the identity on the
// accepted language).
func FuzzParseNotice(f *testing.F) {
	for _, s := range []string{
		"#0@40+12 kill-node:39",
		"#2@5+30 slow-link:5-6x4",
		"#1@7+9 revive-node:7",
		"#3@0+0 kill-link:0-1",
		"#4@80+7 heal-link:79-80",
		"#5@8+1 revive-module:8",
		"#0@1+2 kill-module:1",
		"#9@2+3 revive-link:2-3",
		"#0@0+0 kill-node:0",
		"#0@1+2 melt-node:3",
		"#0@1+2 slow-link:0-1x1",
		"not a notice",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		const side = 9
		nt, err := ParseNotice(side, s)
		if err != nil {
			return
		}
		again, err := ParseNotice(side, nt.String())
		if err != nil {
			t.Fatalf("accepted notice %q re-rendered to unparseable %q: %v", s, nt.String(), err)
		}
		if again != nt {
			t.Fatalf("round trip drift: %q → %+v → %q → %+v", s, nt, nt.String(), again)
		}
	})
}
