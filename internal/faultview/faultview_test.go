package faultview

import (
	"fmt"
	"testing"

	"meshpram/internal/fault"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", Global, false},
		{"global", Global, false},
		{"local", Local, false},
		{"LOCAL", 0, true},
		{"omniscient", 0, true},
	} {
		got, err := ParseMode(tc.in)
		if tc.err != (err != nil) {
			t.Fatalf("ParseMode(%q) err = %v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Global.String() != "global" || Local.String() != "local" {
		t.Fatalf("Mode strings: %q %q", Global, Local)
	}
}

// TestNoticeKinds pins the wire spellings to fault.EventKind.String, so
// the two grammars (schedule specs and notices) can never drift apart.
func TestNoticeKinds(t *testing.T) {
	kinds := []fault.EventKind{
		fault.EvKillNode, fault.EvReviveNode, fault.EvKillModule, fault.EvReviveModule,
		fault.EvKillLink, fault.EvReviveLink, fault.EvSlowLink, fault.EvHealLink,
	}
	if len(kindByName) != len(kinds) {
		t.Fatalf("kindByName has %d entries, want %d", len(kindByName), len(kinds))
	}
	for _, k := range kinds {
		got, ok := kindByName[k.String()]
		if !ok || got != k {
			t.Fatalf("kindByName[%q] = %v, %v; want %v", k.String(), got, ok, k)
		}
	}
}

func TestNoticeRoundTrip(t *testing.T) {
	const side = 5
	for _, nt := range []Notice{
		{Seq: 0, Origin: 11, Round: 12, Kind: fault.EvKillNode, P: 12},
		{Seq: 3, Origin: 7, Round: 0, Kind: fault.EvReviveNode, P: 7},
		{Seq: 1, Origin: 4, Round: 9, Kind: fault.EvKillModule, P: 4},
		{Seq: 2, Origin: 4, Round: 10, Kind: fault.EvReviveModule, P: 4},
		{Seq: 0, Origin: 6, Round: 30, Kind: fault.EvKillLink, P: 6, Q: 7},
		{Seq: 1, Origin: 6, Round: 31, Kind: fault.EvReviveLink, P: 6, Q: 7},
		{Seq: 5, Origin: 5, Round: 8, Kind: fault.EvSlowLink, P: 5, Q: 6, Factor: 4},
		{Seq: 6, Origin: 5, Round: 8, Kind: fault.EvHealLink, P: 5, Q: 6},
	} {
		got, err := ParseNotice(side, nt.String())
		if err != nil {
			t.Fatalf("ParseNotice(%q): %v", nt.String(), err)
		}
		if got != nt {
			t.Fatalf("round trip %q: got %+v, want %+v", nt.String(), got, nt)
		}
	}
}

func TestParseNoticeRejects(t *testing.T) {
	const side = 5
	for _, s := range []string{
		"",
		"0@1+2 kill-node:3",        // missing '#'
		"#0@1+2",                   // missing body
		"#x@1+2 kill-node:3",       // bad seq
		"#-1@1+2 kill-node:3",      // negative seq
		"#0@99+2 kill-node:3",      // origin out of range
		"#0@1+z kill-node:3",       // bad round
		"#0@1+2 melt-node:3",       // unknown kind
		"#0@1+2 kill-node:25",      // id out of range
		"#0@1+2 kill-link:0-7",     // not an edge
		"#0@1+2 slow-link:0-1",     // missing factor
		"#0@1+2 slow-link:0-1x1",   // factor < 2
		"#0@1+2 kill-link:0",       // missing Q
		"#0@1+2 revive-node:0-1",   // node kind with link body
		"#0@1+2 kill-link:0-1-2x3", // trailing junk
	} {
		if nt, err := ParseNotice(side, s); err == nil {
			t.Fatalf("ParseNotice(%q) = %+v, want error", s, nt)
		}
	}
}

// killNode applies a node death to a fresh truth map.
func killNode(t *testing.T, side, p int) *fault.Map {
	t.Helper()
	m := fault.NewMap(side)
	m.Apply(fault.Event{Kind: fault.EvKillNode, P: p})
	return m
}

func TestObserveWitnessRules(t *testing.T) {
	const side = 5
	truth := killNode(t, side, 12)
	v := New(side, false, nil, 42)

	idx, ok := v.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 12}, truth)
	if !ok {
		t.Fatal("kill-node with live neighbors must be witnessed")
	}
	nt := v.Log()[idx]
	switch nt.Origin {
	case 7, 11, 13, 17: // the alive mesh neighbors of 12
	default:
		t.Fatalf("witness %d is not a neighbor of 12", nt.Origin)
	}
	if !v.KnownAt(nt.Origin, idx) || v.KnownAt(12, idx) {
		t.Fatal("witness must know its own notice; the dead node must not")
	}

	// Revival is announced by the node itself.
	truth.Apply(fault.Event{Kind: fault.EvReviveNode, P: 12})
	idx2, ok := v.ObserveEvent(fault.Event{Kind: fault.EvReviveNode, P: 12}, truth)
	if !ok || v.Log()[idx2].Origin != 12 {
		t.Fatalf("revive-node witness = %+v, want origin 12", v.Log()[idx2])
	}

	// A fault with no live witness goes unnoticed: kill node 0 after
	// killing both of its neighbors.
	truth2 := fault.NewMap(side)
	for _, p := range []int{1, 5, 0} {
		truth2.Apply(fault.Event{Kind: fault.EvKillNode, P: p})
	}
	v2 := New(side, false, nil, 1)
	if _, ok := v2.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 0}, truth2); ok {
		t.Fatal("corner death with dead neighbors must go unwitnessed")
	}
}

func TestTickPropagation(t *testing.T) {
	const side = 5
	truth := killNode(t, side, 0)
	v := New(side, false, nil, 7)
	idx, ok := v.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 0}, truth)
	if !ok {
		t.Fatal("death of node 0 must be witnessed")
	}
	if v.Quiet() {
		t.Fatal("a fresh unpropagated notice must clear Quiet")
	}
	// One hop per round: the far corner (node 24) is ≤ 8 hops from any
	// witness; everything alive must know the notice within the mesh
	// diameter, at which point the view is quiet again.
	rounds := 0
	for !v.Quiet() {
		v.Tick(truth)
		rounds++
		if rounds > 2*side {
			t.Fatal("notice did not propagate within the diameter bound")
		}
	}
	for p := 1; p < side*side; p++ {
		if !v.KnownAt(p, idx) {
			t.Fatalf("live node %d missed the notice", p)
		}
		if !v.BeliefAt(p).NodeDead(0) {
			t.Fatalf("node %d's belief does not record the death", p)
		}
	}
	if v.KnownAt(0, idx) {
		t.Fatal("the dead node must not learn its own death notice")
	}
	st := v.Stats()
	if st.Notices != 1 || st.Applied < int64(side*side-2) || st.StaleMax == 0 {
		t.Fatalf("stats = %+v, want 1 notice applied everywhere with nonzero staleness", st)
	}
	hsum := int64(0)
	for _, h := range st.Hist {
		hsum += h
	}
	if hsum == 0 {
		t.Fatalf("staleness histogram is empty: %+v", st.Hist)
	}
}

func TestDeadNodeFrozenUntilRevival(t *testing.T) {
	const side = 3
	truth := killNode(t, side, 4) // center
	v := New(side, false, nil, 3)
	idx, _ := v.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 4}, truth)
	for i := 0; i < 2*side; i++ {
		v.Tick(truth)
	}
	if v.KnownAt(4, idx) {
		t.Fatal("dead node must not receive gossip")
	}
	if !v.Quiet() {
		t.Fatal("view must be quiet once all live nodes know the log")
	}
	// Revival: the node announces itself and catches up by gossip.
	truth.Apply(fault.Event{Kind: fault.EvReviveNode, P: 4})
	v.ObserveEvent(fault.Event{Kind: fault.EvReviveNode, P: 4}, truth)
	for i := 0; i < 2*side; i++ {
		v.Tick(truth)
	}
	if !v.KnownAt(4, idx) {
		t.Fatal("revived node must learn the old death notice")
	}
	if !v.Quiet() {
		t.Fatal("view must requiesce after revival")
	}
}

func TestIntegrateDedupesAndFilters(t *testing.T) {
	const side = 5
	truth := killNode(t, side, 12)
	v := New(side, false, nil, 9)
	// Three shards observed the same discovery; one witness is dead;
	// one discovery is already believed (node 12's death after we seed
	// the belief via a first Integrate).
	d := Discovery{Witness: 7, Kind: fault.EvKillNode, P: 12}
	if got := v.Integrate([]Discovery{d, d, d}, truth); got != 1 {
		t.Fatalf("Integrate(dup×3) created %d notices, want 1", got)
	}
	if got := v.Integrate([]Discovery{d}, truth); got != 0 {
		t.Fatalf("re-Integrate of a believed discovery created %d notices, want 0", got)
	}
	dead := Discovery{Witness: 12, Kind: fault.EvKillLink, P: 12, Q: 13}
	if got := v.Integrate([]Discovery{dead}, truth); got != 0 {
		t.Fatalf("dead witness created %d notices, want 0", got)
	}
	// A different witness with a different observation still lands.
	d2 := Discovery{Witness: 17, Kind: fault.EvKillNode, P: 12}
	if got := v.Integrate([]Discovery{d2}, truth); got != 1 {
		t.Fatalf("fresh witness created %d notices, want 1", got)
	}
}

func TestLastWriteWinsByLogIndex(t *testing.T) {
	const side = 3
	truth := fault.NewMap(side)
	v := New(side, false, nil, 5)
	// Kill then revive node 2; node 6 (far corner) learns both notices
	// in one Tick batch and must converge to the newest state.
	truth.Apply(fault.Event{Kind: fault.EvKillNode, P: 2})
	v.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 2}, truth)
	truth.Apply(fault.Event{Kind: fault.EvReviveNode, P: 2})
	v.ObserveEvent(fault.Event{Kind: fault.EvReviveNode, P: 2}, truth)
	for i := 0; i < 3*side; i++ {
		v.Tick(truth)
	}
	if !v.Quiet() {
		t.Fatal("view must requiesce")
	}
	for p := 0; p < side*side; p++ {
		if v.BeliefAt(p).NodeDead(2) {
			t.Fatalf("node %d believes 2 dead after kill→revive", p)
		}
	}
}

func TestImageRestoreRoundTrip(t *testing.T) {
	const side = 5
	truth := killNode(t, side, 12)
	truth.Apply(fault.Event{Kind: fault.EvSlowLink, P: 5, Q: 6, Factor: 4})
	v := New(side, false, nil, 11)
	v.ObserveEvent(fault.Event{Kind: fault.EvKillNode, P: 12}, truth)
	v.ObserveEvent(fault.Event{Kind: fault.EvSlowLink, P: 5, Q: 6, Factor: 4}, truth)
	v.Tick(truth)
	v.Tick(truth)

	img := v.Image()
	w := New(side, false, nil, 11)
	if err := w.Restore(img, truth); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if w.Round() != v.Round() || w.Quiet() != v.Quiet() || w.NoticeCount() != v.NoticeCount() {
		t.Fatalf("restored view differs: round %d/%d quiet %v/%v notices %d/%d",
			w.Round(), v.Round(), w.Quiet(), v.Quiet(), w.NoticeCount(), v.NoticeCount())
	}
	if fmt.Sprintf("%+v", w.Stats()) != fmt.Sprintf("%+v", v.Stats()) {
		t.Fatalf("restored stats %+v != %+v", w.Stats(), v.Stats())
	}
	for p := 0; p < side*side; p++ {
		for i := 0; i < v.NoticeCount(); i++ {
			if w.KnownAt(p, i) != v.KnownAt(p, i) {
				t.Fatalf("knowledge of notice %d at node %d differs after restore", i, p)
			}
		}
		bw, bv := w.BeliefAt(p), v.BeliefAt(p)
		if bw.NodeDead(12) != bv.NodeDead(12) || bw.LinkDelay(5, 6) != bv.LinkDelay(5, 6) {
			t.Fatalf("belief at node %d differs after restore", p)
		}
	}
	// Restored views continue deterministically: one more tick each.
	v.Tick(truth)
	w.Tick(truth)
	if fmt.Sprintf("%+v", w.Stats()) != fmt.Sprintf("%+v", v.Stats()) {
		t.Fatalf("post-restore tick diverged: %+v != %+v", w.Stats(), v.Stats())
	}

	// Mismatched shapes are rejected.
	if err := New(3, false, nil, 0).Restore(img, truth); err == nil {
		t.Fatal("Restore with wrong node count must fail")
	}
}
