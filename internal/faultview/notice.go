package faultview

// Notice wire grammar. A notice is one versioned fault observation
// created at a witness node and disseminated by gossip:
//
//	#SEQ@ORIGIN+ROUND kind:P[-Q][xFACTOR]
//
//	#0@40+12 kill-node:39        origin 40's notice 0, created at round 12
//	#2@5+30 slow-link:5-6x4      edge 5–6 observed slow by factor 4
//	#1@7+9 revive-node:7         node 7 announcing its own revival
//
// SEQ is the origin's monotone per-origin sequence number, ROUND the
// gossip round the notice was created at, and the body reuses the
// fault-schedule event kinds (fault.EventKind spellings). ParseNotice
// and Notice.String round-trip exactly; the grammar is fuzzed by
// FuzzParseNotice.

import (
	"fmt"
	"strconv"
	"strings"

	"meshpram/internal/fault"
)

// Notice is one versioned fault observation in the gossip log.
type Notice struct {
	Seq    int   // per-origin monotone sequence number
	Origin int   // witness node that created the notice
	Round  int64 // gossip round at creation (staleness baseline)

	Kind   fault.EventKind
	P, Q   int // component ids; Q only for link kinds
	Factor int // slow factor for slow-link (≥ 2)
}

// Event converts the notice body back into the fault event it reports.
func (nt Notice) Event() fault.Event {
	return fault.Event{Kind: nt.Kind, P: nt.P, Q: nt.Q, Factor: nt.Factor}
}

// String renders the notice in wire form.
func (nt Notice) String() string {
	var body string
	switch nt.Kind {
	case fault.EvKillLink, fault.EvReviveLink, fault.EvHealLink:
		body = fmt.Sprintf("%s:%d-%d", nt.Kind, nt.P, nt.Q)
	case fault.EvSlowLink:
		body = fmt.Sprintf("%s:%d-%dx%d", nt.Kind, nt.P, nt.Q, nt.Factor)
	default:
		body = fmt.Sprintf("%s:%d", nt.Kind, nt.P)
	}
	return fmt.Sprintf("#%d@%d+%d %s", nt.Seq, nt.Origin, nt.Round, body)
}

// kindByName maps the wire spellings back to event kinds. The
// spellings are pinned to fault.EventKind.String by TestNoticeKinds.
var kindByName = map[string]fault.EventKind{
	"kill-node":     fault.EvKillNode,
	"revive-node":   fault.EvReviveNode,
	"kill-module":   fault.EvKillModule,
	"revive-module": fault.EvReviveModule,
	"kill-link":     fault.EvKillLink,
	"revive-link":   fault.EvReviveLink,
	"slow-link":     fault.EvSlowLink,
	"heal-link":     fault.EvHealLink,
}

func isLinkKind(k fault.EventKind) bool {
	switch k {
	case fault.EvKillLink, fault.EvReviveLink, fault.EvSlowLink, fault.EvHealLink:
		return true
	}
	return false
}

// adjacent reports whether p and q share a mesh edge on a side×side
// mesh, counting torus wrap edges (mirrors fault's adjacency rule).
func adjacent(side, p, q int) bool {
	pr, pc := p/side, p%side
	qr, qc := q/side, q%side
	dr, dc := pr-qr, pc-qc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	if dr == side-1 && side > 1 {
		dr = 1
	}
	if dc == side-1 && side > 1 {
		dc = 1
	}
	return dr+dc == 1
}

// ParseNotice parses the wire form of a notice against a side×side
// mesh, validating ranges and link adjacency.
func ParseNotice(side int, s string) (Notice, error) {
	var nt Notice
	if side < 1 {
		return nt, fmt.Errorf("faultview: side %d must be ≥ 1", side)
	}
	n := side * side
	s = strings.TrimSpace(s)
	rest, ok := strings.CutPrefix(s, "#")
	if !ok {
		return nt, fmt.Errorf("faultview: notice %q missing '#SEQ' prefix", s)
	}
	head, body, ok := strings.Cut(rest, " ")
	if !ok {
		return nt, fmt.Errorf("faultview: notice %q: want '#SEQ@ORIGIN+ROUND kind:ids'", s)
	}
	seqs, tail, ok := strings.Cut(head, "@")
	if !ok {
		return nt, fmt.Errorf("faultview: notice %q missing '@ORIGIN'", s)
	}
	origins, rounds, ok := strings.Cut(tail, "+")
	if !ok {
		return nt, fmt.Errorf("faultview: notice %q missing '+ROUND'", s)
	}
	seq, err := strconv.Atoi(seqs)
	if err != nil || seq < 0 {
		return nt, fmt.Errorf("faultview: bad notice seq %q", seqs)
	}
	origin, err := strconv.Atoi(origins)
	if err != nil || origin < 0 || origin >= n {
		return nt, fmt.Errorf("faultview: bad notice origin %q (mesh has %d nodes)", origins, n)
	}
	round, err := strconv.ParseInt(rounds, 10, 64)
	if err != nil || round < 0 {
		return nt, fmt.Errorf("faultview: bad notice round %q", rounds)
	}
	kinds, ids, ok := strings.Cut(strings.TrimSpace(body), ":")
	if !ok {
		return nt, fmt.Errorf("faultview: notice body %q missing ':'", body)
	}
	kind, ok := kindByName[kinds]
	if !ok {
		return nt, fmt.Errorf("faultview: unknown notice kind %q", kinds)
	}
	nt = Notice{Seq: seq, Origin: origin, Round: round, Kind: kind}
	if isLinkKind(kind) {
		if kind == fault.EvSlowLink {
			var fs string
			ids, fs, ok = strings.Cut(ids, "x")
			if !ok {
				return Notice{}, fmt.Errorf("faultview: slow-link notice %q missing xFACTOR", body)
			}
			v, err := strconv.Atoi(fs)
			if err != nil || v < 2 {
				return Notice{}, fmt.Errorf("faultview: bad slow factor %q", fs)
			}
			nt.Factor = v
		}
		ps, qs, ok := strings.Cut(ids, "-")
		if !ok {
			return Notice{}, fmt.Errorf("faultview: bad link %q (want P-Q)", ids)
		}
		p, err1 := strconv.Atoi(ps)
		q, err2 := strconv.Atoi(qs)
		if err1 != nil || err2 != nil || p < 0 || q < 0 || p >= n || q >= n {
			return Notice{}, fmt.Errorf("faultview: bad link %q", ids)
		}
		if !adjacent(side, p, q) {
			return Notice{}, fmt.Errorf("faultview: %d-%d is not a mesh (or wrap) edge", p, q)
		}
		nt.P, nt.Q = p, q
	} else {
		id, err := strconv.Atoi(ids)
		if err != nil || id < 0 || id >= n {
			return Notice{}, fmt.Errorf("faultview: bad %s id %q", kinds, ids)
		}
		nt.P = id
	}
	return nt, nil
}
