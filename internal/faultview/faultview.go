// Package faultview gives every mesh node a *local* fault view updated
// only by deterministic hop-neighbor gossip, replacing the omniscient
// global fault map the routers consulted before.
//
// The world state (the live fault.Map the schedule mutates) stays the
// single source of physical truth: links fail and packets are lost
// according to it. What changes is *knowledge*: a fault transition is
// witnessed by one node (the component itself on revival, a seeded
// adjacent survivor on death), packaged as a versioned Notice with a
// per-origin monotone sequence number, and flooded one hop per gossip
// round — one round per charged routing cycle plus one per protocol
// step boundary. Until the notice reaches a node, that node routes,
// injects and repairs against its stale belief: packets are sent into
// dead components (charged as losses), detours are planned around
// links that already healed, and the scrub coordinator cannot start a
// repair it has not heard about.
//
// Determinism: rounds are synchronous and double-buffered (each node
// merges the *previous* round's neighbor knowledge, so exchange order
// is irrelevant), peers are visited in sorted order, witness ties are
// broken by a seeded splitmix64 hash, and in-flight discoveries are
// integrated at a sequential point in sorted, deduplicated order. The
// result is bit-identical across worker widths and double runs; the
// identity matrices in internal/route and internal/core pin it.
package faultview

import (
	"fmt"
	"math/bits"
	"sort"

	"meshpram/internal/fault"
)

// Mode selects how routers and the repair coordinator learn about
// faults.
type Mode uint8

const (
	// Global is the historical behavior: every component consults the
	// live fault map directly, with zero propagation latency.
	Global Mode = iota
	// Local gives each node a gossip-updated local view; knowledge
	// propagates one hop per round and decisions may be stale.
	Local
)

func (m Mode) String() string {
	switch m {
	case Global:
		return "global"
	case Local:
		return "local"
	}
	return "invalid"
}

// ParseMode parses the CLI/scenario spelling of a Mode ("" = global).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "global":
		return Global, nil
	case "local":
		return Local, nil
	}
	return 0, fmt.Errorf("unknown fault view %q (want global or local)", s)
}

// Discovery is an in-flight observation made by the router: a packet at
// node Witness probed a component and found its physical state to
// disagree with the witness's belief. Discoveries are collected during
// the (possibly parallel) selection sweep and handed to Integrate at a
// sequential point; Integrate sorts and deduplicates them, so the
// notice log is independent of worker width.
type Discovery struct {
	Witness int // node that made the observation
	Kind    fault.EventKind
	P, Q    int // component ids; Q only for link kinds
	Factor  int // slow factor for slow-link discoveries
}

// Stats is the observability snapshot of a view for ledgers and the
// GOSSIP experiment.
type Stats struct {
	Round    int64    // gossip rounds elapsed
	Notices  int64    // notices created (schedule witnesses + discoveries)
	Sent     int64    // notice receptions over gossip edges
	Applied  int64    // notice applications to local beliefs
	StaleMax int64    // largest observed staleness (rounds from creation to application)
	Hist     [8]int64 // staleness histogram, bucket i holds staleness in [2^i-1, 2^(i+1)-1)
	Quiet    bool     // every live node knows the full log
}

// Image is the serializable state of a View for snapshots. Beliefs are
// not stored: they are a pure function of (base map, log, known sets)
// and are rebuilt on Restore.
type Image struct {
	Log      []Notice
	Seq      []int
	Known    [][]uint64
	Round    int64
	Created  int64
	Sent     int64
	Applied  int64
	StaleMax int64
	Hist     [8]int64
}

// View holds every node's local fault belief plus the shared notice
// log and per-node knowledge bitsets. One View is shared by the main
// and repair routing engines of a simulator; all methods are called
// from sequential points (never from inside the parallel sweep).
type View struct {
	side, n int
	wrap    bool
	seed    int64

	base *fault.Map // shared knowledge at round 0 (static pre-step faults)
	full *fault.Map // base + every notice applied (the quiet-state belief)

	log   []Notice
	seq   []int      // per-node next sequence number
	known [][]uint64 // per-node bitset over log indices
	next  [][]uint64 // double buffer for Tick
	count []int      // popcount of known[p]
	words int        // uint64 words per bitset row

	// belief[p] is node p's materialized belief (base + known notices
	// in log order), or nil when it is shared copy-on-write: a node
	// that knows nothing believes `base`, a node that knows the whole
	// log believes `full`. When the log grows past a set of fully
	// caught-up nodes, they are pointed at one shared prefix clone
	// (owned[p] = false) instead of each cloning the map. Only the
	// gossip wavefront ever owns a clone, which keeps resident belief
	// state O(wavefront) instead of the old O(n²) of n full clones.
	belief []*fault.Map
	owned  []bool // belief[p] is p's private clone (safe to mutate)

	nbs [][]int // sorted gossip neighbors per node

	round int64
	quiet bool

	created, sent, applied int64
	staleMax               int64
	hist                   [8]int64
}

// New builds a view for a side×side mesh. base is the static fault map
// in effect before the first step — modeled as knowledge every node
// starts with (the machine was assembled around those faults). wrap
// adds the torus wrap edges to the gossip topology. seed drives
// witness tie-breaks only.
func New(side int, wrap bool, base *fault.Map, seed int64) *View {
	if side < 1 {
		panic(fmt.Sprintf("faultview: side %d must be ≥ 1", side))
	}
	n := side * side
	v := &View{
		side: side, n: n, wrap: wrap, seed: seed,
		base:   base.Clone(),
		seq:    make([]int, n),
		known:  make([][]uint64, n),
		next:   make([][]uint64, n),
		count:  make([]int, n),
		belief: make([]*fault.Map, n),
		owned:  make([]bool, n),
		nbs:    make([][]int, n),
		quiet:  true,
	}
	if v.base == nil {
		v.base = fault.NewMap(side)
	}
	v.full = v.base.Clone()
	for p := 0; p < n; p++ {
		v.nbs[p] = neighbors(side, wrap, p)
	}
	return v
}

// neighbors returns the sorted, deduplicated gossip peers of p.
func neighbors(side int, wrap bool, p int) []int {
	r, c := p/side, p%side
	var out []int
	add := func(q int) {
		for _, x := range out {
			if x == q {
				return
			}
		}
		out = append(out, q)
	}
	if wrap && side > 1 {
		add(r*side + (c+side-1)%side)
		add(r*side + (c+1)%side)
		add(((r+side-1)%side)*side + c)
		add(((r+1)%side)*side + c)
	} else {
		if c > 0 {
			add(p - 1)
		}
		if c+1 < side {
			add(p + 1)
		}
		if r > 0 {
			add(p - side)
		}
		if r+1 < side {
			add(p + side)
		}
	}
	sort.Ints(out)
	return out
}

// Side returns the mesh side the view was built for.
func (v *View) Side() int { return v.side }

// Round returns the current gossip round.
func (v *View) Round() int64 { return v.round }

// Quiet reports whether every node the truth map considers alive knows
// the complete notice log — the condition under which all live beliefs
// coincide and the event engine may free-run past gossip rounds.
func (v *View) Quiet() bool { return v.quiet }

// BeliefAt returns node p's current local belief. The returned map is
// owned by the view (and may be shared between nodes with identical
// knowledge); callers must not mutate it.
func (v *View) BeliefAt(p int) *fault.Map {
	if b := v.belief[p]; b != nil {
		return b
	}
	if v.count[p] == len(v.log) {
		return v.full
	}
	return v.base
}

// materialize gives node p an owned belief clone, seeded from whichever
// shared map its knowledge currently equals. Callers mutate the result.
func (v *View) materialize(p int) *fault.Map {
	if v.belief[p] == nil {
		if v.count[p] == len(v.log) {
			v.belief[p] = v.full.Clone()
		} else {
			v.belief[p] = v.base.Clone()
		}
	} else if !v.owned[p] {
		v.belief[p] = v.belief[p].Clone()
	}
	v.owned[p] = true
	return v.belief[p]
}

// setShared points node p at a shared belief map it must not mutate.
func (v *View) setShared(p int, bel *fault.Map) {
	v.belief[p] = bel
	v.owned[p] = false
}

// KnownAt reports whether node p has learned notice idx of the log.
func (v *View) KnownAt(p, idx int) bool {
	if idx < 0 || idx >= len(v.log) {
		return false
	}
	return v.known[p][idx>>6]&(1<<(idx&63)) != 0
}

// Log returns the notice log (a copy).
func (v *View) Log() []Notice { return append([]Notice(nil), v.log...) }

// NoticeCount returns the length of the notice log — a cheap version
// counter for caches keyed on the log (nil-safe would be pointless:
// callers hold a non-nil view by construction).
func (v *View) NoticeCount() int { return len(v.log) }

// Stats returns the observability counters.
func (v *View) Stats() Stats {
	return Stats{
		Round: v.round, Notices: v.created, Sent: v.sent, Applied: v.applied,
		StaleMax: v.staleMax, Hist: v.hist, Quiet: v.quiet,
	}
}

// splitmix64 is the seeded tie-break hash (no package-level rand: the
// view must be a pure function of its inputs).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pick selects one candidate by the seeded hash of the salt.
func (v *View) pick(cands []int, salt uint64) int {
	h := splitmix64(uint64(v.seed) ^ salt)
	return cands[h%uint64(len(cands))]
}

// ObserveEvent routes a schedule event to its witness node and creates
// the corresponding notice. The rules model local observability:
//
//   - a node death is witnessed by a seeded pick among its truth-alive
//     neighbors (the dead node cannot announce itself);
//   - a node revival is announced by the revived node;
//   - a module transition is witnessed by its own node if alive, else a
//     seeded alive neighbor;
//   - a link transition is witnessed by an alive endpoint (seeded pick
//     when both are alive).
//
// truth is the live map *after* the event was applied. When no live
// witness exists the event goes unnoticed — permanent staleness the
// callers must tolerate (documented in DESIGN.md §13). Returns the log
// index of the new notice and whether one was created.
func (v *View) ObserveEvent(ev fault.Event, truth *fault.Map) (int, bool) {
	var cands []int
	switch ev.Kind {
	case fault.EvKillNode:
		cands = v.aliveNeighbors(ev.P, truth)
	case fault.EvReviveNode:
		cands = []int{ev.P}
	case fault.EvKillModule, fault.EvReviveModule:
		if !truth.NodeDead(ev.P) {
			cands = []int{ev.P}
		} else {
			cands = v.aliveNeighbors(ev.P, truth)
		}
	case fault.EvKillLink, fault.EvReviveLink, fault.EvSlowLink, fault.EvHealLink:
		if !truth.NodeDead(ev.P) {
			cands = append(cands, ev.P)
		}
		if !truth.NodeDead(ev.Q) {
			cands = append(cands, ev.Q)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	salt := uint64(ev.Kind)<<40 ^ uint64(ev.P)<<20 ^ uint64(ev.Q) ^ uint64(v.round)<<48
	w := v.pick(cands, salt)
	idx := v.createNotice(w, ev.Kind, ev.P, ev.Q, ev.Factor, truth)
	return idx, true
}

func (v *View) aliveNeighbors(p int, truth *fault.Map) []int {
	var out []int
	for _, q := range v.nbs[p] {
		if !truth.NodeDead(q) {
			out = append(out, q)
		}
	}
	return out
}

// Integrate folds the sweep's in-flight discoveries into the log at a
// sequential point. Discoveries are sorted and deduplicated first, and
// one is dropped when the witness's belief already agrees with it —
// together this makes the resulting log independent of worker width
// and of how many packets probed the same component. Returns the
// number of notices created.
func (v *View) Integrate(discs []Discovery, truth *fault.Map) int {
	if len(discs) == 0 {
		return 0
	}
	sort.Slice(discs, func(i, j int) bool {
		a, b := discs[i], discs[j]
		if a.Witness != b.Witness {
			return a.Witness < b.Witness
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.P != b.P {
			return a.P < b.P
		}
		if a.Q != b.Q {
			return a.Q < b.Q
		}
		return a.Factor < b.Factor
	})
	made := 0
	for i, d := range discs {
		if i > 0 && d == discs[i-1] {
			continue
		}
		if truth.NodeDead(d.Witness) {
			continue
		}
		if !v.wouldChange(v.BeliefAt(d.Witness), d) {
			continue
		}
		v.createNotice(d.Witness, d.Kind, d.P, d.Q, d.Factor, truth)
		made++
	}
	return made
}

// wouldChange reports whether applying the discovery to the belief
// changes any routing-visible state — the idempotence guard that keeps
// repeated probes of the same dead component from flooding the log.
func (v *View) wouldChange(bel *fault.Map, d Discovery) bool {
	switch d.Kind {
	case fault.EvKillNode:
		return !bel.NodeDead(d.P)
	case fault.EvReviveNode:
		return bel.NodeDead(d.P)
	case fault.EvKillModule:
		return !bel.ModuleDead(d.P)
	case fault.EvReviveModule:
		return bel.ModuleDead(d.P) && !bel.NodeDead(d.P)
	case fault.EvKillLink:
		return bel.LinkUp(d.P, d.Q)
	case fault.EvReviveLink:
		return !bel.LinkUp(d.P, d.Q) && !bel.NodeDead(d.P) && !bel.NodeDead(d.Q)
	case fault.EvSlowLink:
		return bel.LinkDelay(d.P, d.Q) != d.Factor
	case fault.EvHealLink:
		return bel.LinkDelay(d.P, d.Q) != 1
	}
	return false
}

// createNotice appends a notice witnessed by node w and applies it to
// w's belief immediately (the witness learns what it saw).
func (v *View) createNotice(w int, kind fault.EventKind, p, q, factor int, truth *fault.Map) int {
	// The log is about to grow: nodes that share `full` because they
	// know the complete current log would silently regress to `base`.
	// They all hold the same knowledge (the old log as a prefix), so
	// pin them to one shared snapshot of the pre-notice quiet belief.
	oldLen := len(v.log)
	if oldLen > 0 {
		var prefix *fault.Map
		for p := 0; p < v.n; p++ {
			if v.belief[p] == nil && v.count[p] == oldLen {
				if prefix == nil {
					prefix = v.full.Clone()
				}
				v.setShared(p, prefix)
			}
		}
	}
	// Materialize before the log grows: the clone must reflect w's
	// pre-notice knowledge (count relative to the old log length).
	bel := v.materialize(w)
	nt := Notice{Seq: v.seq[w], Origin: w, Round: v.round, Kind: kind, P: p, Q: q, Factor: factor}
	v.seq[w]++
	idx := len(v.log)
	v.log = append(v.log, nt)
	v.growBitsets()
	v.known[w][idx>>6] |= 1 << (idx & 63)
	v.count[w]++
	v.created++
	v.applied++
	bel.Apply(nt.Event())
	v.full.Apply(nt.Event())
	// The witness now knows the whole log again — fold its clone back
	// into the shared quiet-state belief.
	if v.count[w] == len(v.log) {
		v.setShared(w, nil)
	}
	v.recomputeQuiet(truth)
	return idx
}

// growBitsets widens every knowledge row to cover the log.
func (v *View) growBitsets() {
	need := (len(v.log) + 63) >> 6
	if need <= v.words {
		return
	}
	for p := 0; p < v.n; p++ {
		v.known[p] = append(v.known[p], make([]uint64, need-v.words)...)
		v.next[p] = append(v.next[p], make([]uint64, need-v.words)...)
	}
	v.words = need
}

// Tick runs one synchronous gossip round: every truth-alive node merges
// the previous round's knowledge of each truth-alive neighbor reachable
// over a truth-up link. Double buffering makes the merge order
// irrelevant; dead nodes neither send nor receive (their knowledge is
// frozen until revival); slow links carry gossip every round (notices
// are tiny control words, documented in DESIGN.md §13).
func (v *View) Tick(truth *fault.Map) {
	v.round++
	if len(v.log) == 0 {
		return
	}
	for p := 0; p < v.n; p++ {
		copy(v.next[p], v.known[p])
		if truth.NodeDead(p) {
			continue
		}
		for _, q := range v.nbs[p] {
			if truth.NodeDead(q) || !truth.LinkUp(p, q) {
				continue
			}
			src, dst := v.known[q], v.next[p]
			for i := range dst {
				dst[i] |= src[i]
			}
		}
	}
	v.known, v.next = v.next, v.known
	// Account newly learned notices (old knowledge now sits in next).
	for p := 0; p < v.n; p++ {
		learned := false
		for w := 0; w < v.words; w++ {
			diff := v.known[p][w] &^ v.next[p][w]
			for diff != 0 {
				idx := w<<6 + bits.TrailingZeros64(diff)
				diff &= diff - 1
				v.learn(p, idx)
				learned = true
			}
		}
		if learned {
			v.rebuildBelief(p)
		}
	}
	v.recomputeQuiet(truth)
}

// AdvanceRounds advances the round clock by k without exchanging —
// the event engine's epoch-skip path, valid only while the view is
// quiet (no notice left to spread, so every round is a no-op).
func (v *View) AdvanceRounds(k int64) { v.round += k }

func (v *View) learn(p, idx int) {
	v.count[p]++
	v.sent++
	v.applied++
	stale := v.round - v.log[idx].Round
	if stale > v.staleMax {
		v.staleMax = stale
	}
	b := bits.Len64(uint64(stale))
	if b >= len(v.hist) {
		b = len(v.hist) - 1
	}
	v.hist[b]++
}

// rebuildBelief recomputes node p's belief from the base map and p's
// known notices in log order — last-write-wins by log index, so a node
// that learns an old kill after a newer revive still converges to the
// newest state. Nodes whose knowledge is empty or complete share the
// base/full maps instead of owning a clone.
func (v *View) rebuildBelief(p int) {
	if v.count[p] == 0 || v.count[p] == len(v.log) {
		v.setShared(p, nil)
		return
	}
	bel := v.base.Clone()
	row := v.known[p]
	for i, nt := range v.log {
		if row[i>>6]&(1<<(i&63)) != 0 {
			bel.Apply(nt.Event())
		}
	}
	v.belief[p] = bel
	v.owned[p] = true
}

func (v *View) recomputeQuiet(truth *fault.Map) {
	total := len(v.log)
	for p := 0; p < v.n; p++ {
		if truth.NodeDead(p) {
			continue
		}
		if v.count[p] != total {
			v.quiet = false
			return
		}
	}
	v.quiet = true
}

// MemBytes returns the resident heap bytes of the view's per-node
// state: the notice log, knowledge bitsets and double buffer, gossip
// topology, and every distinct materialized belief map (shared prefix
// clones are counted once).
func (v *View) MemBytes() int64 {
	b := int64(len(v.log)) * 56 // Notice records
	b += int64(v.n) * int64(v.words) * 16
	b += int64(v.n) * (8 + 8 + 1 + 8 + 24*3)
	for _, nb := range v.nbs {
		b += int64(len(nb)) * 8
	}
	b += v.base.MemBytes() + v.full.MemBytes()
	seen := make(map[*fault.Map]bool, 8)
	for _, bel := range v.belief {
		if bel != nil && !seen[bel] {
			seen[bel] = true
			b += bel.MemBytes()
		}
	}
	return b
}

// AppendBeliefHazards appends the hazards of the quiet-state shared
// belief (base + full log) to buf. Only meaningful while Quiet():
// every live node's belief then equals this map, so the event engine
// can union these with the truth hazards to bound its skip horizon.
func (v *View) AppendBeliefHazards(buf []fault.LinkHazard) []fault.LinkHazard {
	return v.full.AppendLinkHazards(buf)
}

// Image captures the serializable view state for snapshots.
func (v *View) Image() Image {
	img := Image{
		Log:     append([]Notice(nil), v.log...),
		Seq:     append([]int(nil), v.seq...),
		Known:   make([][]uint64, v.n),
		Round:   v.round,
		Created: v.created, Sent: v.sent, Applied: v.applied,
		StaleMax: v.staleMax, Hist: v.hist,
	}
	for p := 0; p < v.n; p++ {
		img.Known[p] = append([]uint64(nil), v.known[p][:v.words]...)
	}
	return img
}

// Restore replaces the view state with a snapshot image; beliefs and
// derived state are rebuilt by replay. truth is the live fault map at
// restore time (the Quiet flag depends on which nodes are alive).
func (v *View) Restore(img Image, truth *fault.Map) error {
	if len(img.Seq) != v.n || len(img.Known) != v.n {
		return fmt.Errorf("faultview: snapshot for %d nodes, view has %d", len(img.Seq), v.n)
	}
	words := (len(img.Log) + 63) >> 6
	for p := 0; p < v.n; p++ {
		if len(img.Known[p]) != words {
			return fmt.Errorf("faultview: snapshot knowledge row %d has %d words, want %d", p, len(img.Known[p]), words)
		}
	}
	v.log = append(v.log[:0], img.Log...)
	v.seq = append(v.seq[:0], img.Seq...)
	v.words = words
	v.round = img.Round
	v.created, v.sent, v.applied = img.Created, img.Sent, img.Applied
	v.staleMax, v.hist = img.StaleMax, img.Hist
	v.full = v.base.Clone()
	for _, nt := range v.log {
		v.full.Apply(nt.Event())
	}
	for p := 0; p < v.n; p++ {
		v.known[p] = append(v.known[p][:0], img.Known[p]...)
		v.next[p] = make([]uint64, words)
		c := 0
		for _, w := range v.known[p] {
			c += bits.OnesCount64(w)
		}
		v.count[p] = c
		v.rebuildBelief(p)
	}
	v.recomputeQuiet(truth)
	return nil
}
