package sim

import (
	"strings"
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/trace"
)

func TestNewDefaults(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params
	if p.Side != 9 || p.Q != 3 || p.D != 3 || p.K != 2 {
		t.Errorf("default params = %+v", p)
	}
	if c.Core.Faults != nil {
		t.Error("default config carries a fault map")
	}
	v, err := c.Vars()
	if err != nil || v <= 0 {
		t.Errorf("Vars() = %d, %v", v, err)
	}
	if s, err := c.Scheme(); err != nil || s == nil {
		t.Errorf("Scheme() = %v, %v", s, err)
	}
}

func TestOptionsApply(t *testing.T) {
	c := MustNew(
		Side(27), Q(3), D(5), K(2),
		Policy(core.ReadOneWriteAllPolicy), DisableCulling(), Torus(),
		Workers(3), IdealMemory(4096),
		Combine(func(vals []int64) int64 { return vals[0] }),
	)
	if c.Params.Side != 27 || c.Params.D != 5 {
		t.Errorf("params = %+v", c.Params)
	}
	if c.Core.Policy != core.ReadOneWriteAllPolicy || !c.Core.DisableCulling || !c.Core.Torus {
		t.Errorf("core config = %+v", c.Core)
	}
	if c.Core.Workers != 3 || c.IdealMemory != 4096 || c.Combine == nil {
		t.Error("workers / ideal memory / combine not applied")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Side(10)); err == nil {
		t.Error("invalid HMOS side accepted")
	}
	if _, err := New(IdealMemory(-1)); err == nil {
		t.Error("negative ideal memory accepted")
	}
	if _, err := New(FaultSpec("node:")); err == nil {
		t.Error("malformed fault spec accepted")
	}
	// An explicit map for the wrong side must be rejected against the
	// final side, whatever the option order.
	if _, err := New(Faults(fault.NewMap(9).KillNode(0)), Side(27)); err == nil {
		t.Error("fault map side mismatch accepted")
	}
}

func TestFaultResolution(t *testing.T) {
	// FaultSpec resolves against the final side, even when given first.
	c := MustNew(FaultSpec("node:700"), Side(27))
	if c.Core.Faults == nil || !c.Core.Faults.NodeDead(700) {
		t.Fatalf("spec not resolved: %v", c.Core.Faults)
	}
	if c.Core.Faults.Side() != 27 {
		t.Errorf("map built for side %d", c.Core.Faults.Side())
	}

	// Empty spec and all-healthy model leave the fast path (nil map).
	if c := MustNew(FaultSpec("")); c.Core.Faults != nil {
		t.Error("empty spec produced a map")
	}
	if c := MustNew(FaultModel(fault.Model{Seed: 3})); c.Core.Faults != nil {
		t.Error("zero-rate model produced a map")
	}

	if c := MustNew(FaultModel(fault.Model{LinkRate: 0.5, Seed: 7})); c.Core.Faults.Empty() {
		t.Error("lossy model built an empty map")
	}

	// An explicit map wins over both spec and model.
	f := fault.NewMap(9).KillModule(11)
	c = MustNew(FaultSpec("node:1"), FaultModel(fault.Model{LinkRate: 0.5, Seed: 1}), Faults(f))
	if c.Core.Faults != f {
		t.Error("explicit Faults map did not take precedence")
	}
}

type recordingSink struct{ names []string }

func (r *recordingSink) Emit(root *trace.Span) { r.names = append(r.names, root.Name()) }

func TestNewSimulatorWiresSinks(t *testing.T) {
	rec := &recordingSink{}
	c := MustNew(Workers(1), TraceSink(rec), TraceSink(nil))
	if len(c.Sinks) != 1 {
		t.Fatalf("%d sinks registered, want 1 (nil dropped)", len(c.Sinks))
	}
	s, err := c.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	s.Step([]core.Op{{Origin: 0, Var: 1, IsWrite: true, Value: 5}})
	if len(rec.names) == 0 || !strings.Contains(rec.names[0], "step") {
		t.Fatalf("sink saw %v, want the step root span", rec.names)
	}
}
