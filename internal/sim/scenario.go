package sim

// Scenario is the wire-format twin of the functional-options builder:
// a flat, JSON-round-trippable description of one simulation run
// covering the full option surface of New plus the run-level knobs
// (program, size, seed, backend) the CLIs and the scenario service
// need. Options remain the Go-native construction path; Scenario is
// the serialization, comparison and cache-key path. FromScenario
// bridges a Scenario onto the options, so both spell exactly the same
// configuration space.
//
// Determinism contract: Canonical returns a byte-deterministic
// encoding (fixed key order, no maps, quoted strings) of the
// normalized scenario, and Key hashes it — identical scenarios always
// produce identical keys, which is what makes results of the
// deterministic simulation perfectly cacheable.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
	"meshpram/internal/route"
)

// Enum spellings shared by the CLI flags, the JSON wire format and the
// canonical encoding. The zero string of every enum field normalizes
// to the explicit default, so omitted JSON fields and spelled-out
// defaults produce the same canonical bytes.
const (
	// Backends (BackendBoth runs ideal and mesh and reports slowdown).
	BackendBoth  = "both"
	BackendIdeal = "ideal"
	BackendMesh  = "mesh"
)

// Programs lists the PRAM programs a Scenario can name, in canonical
// order. pram.BuildProgram accepts exactly these names (pinned by
// TestScenarioProgramsBuildable).
var Programs = []string{"compact", "listrank", "matvec", "oddevensort", "prefixsum", "reduce"}

// Scenario is one serializable simulation request. The zero value is
// not runnable; start from DefaultScenario or normalize with
// Normalized. All fields are value types — a Scenario can be compared,
// copied and hashed freely.
type Scenario struct {
	// Machine shape (hmos.Params).
	Side int `json:"side"` // mesh side; n = side²
	Q    int `json:"q"`    // copies per replication step (prime power ≥ 3)
	D    int `json:"d"`    // memory dimension: M = f(q, d) variables
	K    int `json:"k"`    // HMOS levels

	// Workload.
	Program string `json:"program"` // one of Programs
	Size    int    `json:"size"`    // problem size (processors used)
	Seed    int64  `json:"seed"`    // input seed

	// Run shape.
	Backend string `json:"backend,omitempty"` // both | ideal | mesh ("" = both)

	// Protocol variants and ablations.
	Policy         string `json:"policy,omitempty"` // majority | rowa ("" = majority)
	Torus          bool   `json:"torus,omitempty"`
	Sort           string `json:"sort,omitempty"` // shear | rotate ("" = shear)
	DisableCulling bool   `json:"disable_culling,omitempty"`
	DirectRouting  bool   `json:"direct_routing,omitempty"`
	NetworkSort    bool   `json:"network_sort,omitempty"`

	// Faults and self-healing.
	Faults        string `json:"faults,omitempty"`         // static spec (fault.Parse)
	FaultSchedule string `json:"fault_schedule,omitempty"` // dynamic timeline (fault.ParseSchedule)
	FaultView     string `json:"fault_view,omitempty"`     // global | local ("" = global)
	Repair        string `json:"repair,omitempty"`         // off | eager | lazy ("" = off)
	Retry         int    `json:"retry,omitempty"`          // checkpointed-retry budget

	// Engine.
	Engine  string `json:"engine,omitempty"` // event | cycle ("" = event)
	Workers int    `json:"workers,omitempty"`

	// Backend details.
	IdealMemory int `json:"ideal_memory,omitempty"` // ideal backend words (0 = scheme M)

	// Trace requests the rendered cost-ledger tree of the last PRAM
	// step in the result. Part of the scenario (and therefore the cache
	// key) so response bodies stay byte-identical per key.
	Trace bool `json:"trace,omitempty"`
}

// DefaultScenario is the smallest two-level instance running prefix
// sums — the same defaults the pramsim CLI has always had.
func DefaultScenario() Scenario {
	return Scenario{
		Side: 9, Q: 3, D: 3, K: 2,
		Program: "prefixsum", Size: 64, Seed: 1,
		Backend: BackendBoth,
		Policy:  "majority", Sort: "shear",
		FaultView: "global",
		Repair:    "off", Engine: "event",
		Workers:     1,
		IdealMemory: 1 << 20,
	}
}

// Normalized returns a copy with every empty enum field replaced by
// its explicit default spelling, so semantically equal scenarios have
// equal canonical encodings.
func (sc Scenario) Normalized() Scenario {
	if sc.Backend == "" {
		sc.Backend = BackendBoth
	}
	if sc.Policy == "" {
		sc.Policy = "majority"
	}
	if sc.Sort == "" {
		sc.Sort = "shear"
	}
	if sc.FaultView == "" {
		sc.FaultView = "global"
	}
	if sc.Repair == "" {
		sc.Repair = "off"
	}
	if sc.Engine == "" {
		sc.Engine = "event"
	}
	return sc
}

// fieldError is a Validate failure attributed to one Scenario field,
// named by its JSON key.
type fieldError struct {
	Field string
	Err   error
}

func (e *fieldError) Error() string { return fmt.Sprintf("scenario: %s: %v", e.Field, e.Err) }
func (e *fieldError) Unwrap() error { return e.Err }

func fieldErrf(field, format string, args ...any) error {
	return &fieldError{Field: field, Err: fmt.Errorf(format, args...)}
}

// Validate checks the scenario without constructing a machine: enum
// spellings, structural parameter bounds, and the fault specs (parsed
// against the mesh side). Errors name the offending JSON field.
// Parameter combinations that only the full HMOS construction can
// judge (prime powers, tessellation divisibility) surface from
// FromScenario.
func (sc Scenario) Validate() error {
	sc = sc.Normalized()
	if sc.Side < 1 {
		return fieldErrf("side", "mesh side %d must be ≥ 1", sc.Side)
	}
	if sc.Q < 3 {
		return fieldErrf("q", "replication arity %d must be ≥ 3 (majority quorum needs ⌊q/2⌋+2 ≤ q)", sc.Q)
	}
	if sc.D < 2 {
		return fieldErrf("d", "memory dimension %d must be ≥ 2", sc.D)
	}
	if sc.K < 1 {
		return fieldErrf("k", "level count %d must be ≥ 1", sc.K)
	}
	if !knownProgram(sc.Program) {
		return fieldErrf("program", "unknown program %q (want one of %s)", sc.Program, strings.Join(Programs, ", "))
	}
	if sc.Size < 1 {
		return fieldErrf("size", "problem size %d must be ≥ 1", sc.Size)
	}
	if sc.Backend != BackendBoth && sc.Backend != BackendIdeal && sc.Backend != BackendMesh {
		return fieldErrf("backend", "unknown backend %q (want both, ideal or mesh)", sc.Backend)
	}
	if sc.Backend != BackendIdeal && sc.Size > sc.Side*sc.Side {
		return fieldErrf("size", "problem size %d exceeds the %d mesh processors (side %d)", sc.Size, sc.Side*sc.Side, sc.Side)
	}
	if _, err := parsePolicy(sc.Policy); err != nil {
		return &fieldError{Field: "policy", Err: err}
	}
	if _, err := parseSortAlgo(sc.Sort); err != nil {
		return &fieldError{Field: "sort", Err: err}
	}
	if _, err := faultview.ParseMode(sc.FaultView); err != nil {
		return &fieldError{Field: "fault_view", Err: err}
	}
	if _, err := core.ParseRepairPolicy(sc.Repair); err != nil {
		return &fieldError{Field: "repair", Err: err}
	}
	if _, err := parseEngineMode(sc.Engine); err != nil {
		return &fieldError{Field: "engine", Err: err}
	}
	if sc.Retry < 0 {
		return fieldErrf("retry", "retry budget %d must be ≥ 0", sc.Retry)
	}
	if sc.Workers < 0 {
		return fieldErrf("workers", "worker count %d must be ≥ 0", sc.Workers)
	}
	if sc.IdealMemory < 0 {
		return fieldErrf("ideal_memory", "ideal memory %d words must be ≥ 0", sc.IdealMemory)
	}
	if sc.Faults != "" {
		if _, err := fault.Parse(sc.Side, sc.Faults); err != nil {
			return &fieldError{Field: "faults", Err: err}
		}
	}
	if sc.FaultSchedule != "" {
		if _, err := fault.ParseSchedule(sc.Side, sc.FaultSchedule); err != nil {
			return &fieldError{Field: "fault_schedule", Err: err}
		}
	}
	return nil
}

func knownProgram(name string) bool {
	for _, p := range Programs {
		if p == name {
			return true
		}
	}
	return false
}

// Canonical returns the byte-deterministic encoding of the scenario:
// the normalized field set as sorted `key=value` lines, strings
// quoted, no maps anywhere. Two runs over the same Scenario — or over
// two Scenarios that normalize equal — produce identical bytes, so
// the encoding doubles as the result-cache key material.
func (sc Scenario) Canonical() []byte {
	sc = sc.Normalized()
	var b strings.Builder
	// Keys in sorted order; keep this list alphabetical when adding
	// fields (TestScenarioCanonicalCoversFields pins coverage).
	put := func(key, val string) {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	put("backend", strconv.Quote(sc.Backend))
	put("d", strconv.Itoa(sc.D))
	put("direct_routing", strconv.FormatBool(sc.DirectRouting))
	put("disable_culling", strconv.FormatBool(sc.DisableCulling))
	put("engine", strconv.Quote(sc.Engine))
	put("fault_schedule", strconv.Quote(sc.FaultSchedule))
	put("fault_view", strconv.Quote(sc.FaultView))
	put("faults", strconv.Quote(sc.Faults))
	put("ideal_memory", strconv.Itoa(sc.IdealMemory))
	put("k", strconv.Itoa(sc.K))
	put("network_sort", strconv.FormatBool(sc.NetworkSort))
	put("policy", strconv.Quote(sc.Policy))
	put("program", strconv.Quote(sc.Program))
	put("q", strconv.Itoa(sc.Q))
	put("repair", strconv.Quote(sc.Repair))
	put("retry", strconv.Itoa(sc.Retry))
	put("seed", strconv.FormatInt(sc.Seed, 10))
	put("side", strconv.Itoa(sc.Side))
	put("size", strconv.Itoa(sc.Size))
	put("sort", strconv.Quote(sc.Sort))
	put("torus", strconv.FormatBool(sc.Torus))
	put("trace", strconv.FormatBool(sc.Trace))
	put("workers", strconv.Itoa(sc.Workers))
	return []byte(b.String())
}

// Key returns the hex SHA-256 of Canonical — the result-cache key of
// the scenario.
func (sc Scenario) Key() string {
	sum := sha256.Sum256(sc.Canonical())
	return hex.EncodeToString(sum[:])
}

// Params returns the HMOS parameters of the scenario.
func (sc Scenario) Params() hmos.Params {
	return hmos.Params{Side: sc.Side, Q: sc.Q, D: sc.D, K: sc.K}
}

// FromScenario bridges a Scenario onto the functional options and
// builds the validated Config. The run-level fields (program, size,
// seed, backend, trace) are not part of a Config — callers execute
// them through pram.BuildProgram and pram.NewBackend. Extra options
// are applied after the scenario's (e.g. UseScheme to reuse a cached
// scheme, TraceSink to attach a ledger sink).
func FromScenario(sc Scenario, extra ...Option) (Config, error) {
	sc = sc.Normalized()
	if err := sc.Validate(); err != nil {
		return Config{}, err
	}
	policy, err := parsePolicy(sc.Policy)
	if err != nil {
		return Config{}, &fieldError{Field: "policy", Err: err}
	}
	algo, err := parseSortAlgo(sc.Sort)
	if err != nil {
		return Config{}, &fieldError{Field: "sort", Err: err}
	}
	repair, err := core.ParseRepairPolicy(sc.Repair)
	if err != nil {
		return Config{}, &fieldError{Field: "repair", Err: err}
	}
	mode, err := parseEngineMode(sc.Engine)
	if err != nil {
		return Config{}, &fieldError{Field: "engine", Err: err}
	}
	view, err := faultview.ParseMode(sc.FaultView)
	if err != nil {
		return Config{}, &fieldError{Field: "fault_view", Err: err}
	}
	opts := []Option{
		Side(sc.Side), Q(sc.Q), D(sc.D), K(sc.K),
		Policy(policy), SortAlgo(algo), Repair(repair), EngineMode(mode),
		Workers(sc.Workers), Retry(sc.Retry),
		FaultSpec(sc.Faults), FaultScheduleSpec(sc.FaultSchedule),
		// The local view's witness tie-breaks reuse the scenario seed, so
		// one Scenario pins the whole timeline.
		FaultView(view), FaultViewSeed(sc.Seed),
		IdealMemory(sc.IdealMemory),
	}
	if sc.Torus {
		opts = append(opts, Torus())
	}
	if sc.DisableCulling {
		opts = append(opts, DisableCulling())
	}
	if sc.DirectRouting {
		opts = append(opts, DirectRouting())
	}
	if sc.NetworkSort {
		opts = append(opts, NetworkSort())
	}
	opts = append(opts, extra...)
	return New(opts...)
}

func parsePolicy(s string) (core.AccessPolicy, error) {
	switch s {
	case "", "majority":
		return core.MajorityPolicy, nil
	case "rowa":
		return core.ReadOneWriteAllPolicy, nil
	}
	return 0, fmt.Errorf("unknown access policy %q (want majority or rowa)", s)
}

func parseSortAlgo(s string) (route.SortAlgo, error) {
	switch s {
	case "", "shear":
		return route.ShearSort, nil
	case "rotate":
		return route.RotateSort, nil
	}
	return 0, fmt.Errorf("unknown sort algorithm %q (want shear or rotate)", s)
}

func parseEngineMode(s string) (route.EngineMode, error) {
	switch s {
	case "", "event":
		return route.ModeEvent, nil
	case "cycle":
		return route.ModeCycle, nil
	}
	return 0, fmt.Errorf("unknown engine mode %q (want event or cycle)", s)
}
