package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// goldenCanonical pins the canonical encoding of DefaultScenario. Any
// change to the field set, key order, or value formatting breaks every
// cached result key in the wild — change it deliberately or not at all.
const goldenCanonical = `backend="both"
d=3
direct_routing=false
disable_culling=false
engine="event"
fault_schedule=""
fault_view="global"
faults=""
ideal_memory=1048576
k=2
network_sort=false
policy="majority"
program="prefixsum"
q=3
repair="off"
retry=0
seed=1
side=9
size=64
sort="shear"
torus=false
trace=false
workers=1
`

// goldenKey = hex(sha256(goldenCanonical)).
const goldenKey = "2309d42e1e6dd334de458c33934f00e1136ec02b2dc6bf84931d67877716e8d3"

func TestCanonicalGolden(t *testing.T) {
	sc := DefaultScenario()
	if got := string(sc.Canonical()); got != goldenCanonical {
		t.Errorf("Canonical() drifted:\ngot:\n%s\nwant:\n%s", got, goldenCanonical)
	}
	if got := sc.Key(); got != goldenKey {
		t.Errorf("Key() = %s, want %s", got, goldenKey)
	}
}

func TestCanonicalStable(t *testing.T) {
	sc := DefaultScenario()
	sc.Faults = `link:5-6;rand:module=0.02,seed=7`
	sc.FaultSchedule = "@3 module:40"
	sc.Trace = true
	a := sc.Canonical()
	for i := 0; i < 100; i++ {
		if b := sc.Canonical(); !bytes.Equal(a, b) {
			t.Fatalf("Canonical() not stable on run %d:\n%s\nvs\n%s", i, a, b)
		}
	}
	if sc.Key() != sc.Key() {
		t.Fatal("Key() not stable")
	}
}

// TestCanonicalCoversFields pins that every Scenario field appears in
// the canonical encoding under its JSON name — adding a field without
// extending Canonical would silently alias distinct scenarios to one
// cache key.
func TestCanonicalCoversFields(t *testing.T) {
	lines := strings.Split(strings.TrimRight(goldenCanonical, "\n"), "\n")
	keys := make(map[string]bool, len(lines))
	prev := ""
	for _, l := range lines {
		k, _, ok := strings.Cut(l, "=")
		if !ok {
			t.Fatalf("malformed canonical line %q", l)
		}
		if k <= prev {
			t.Errorf("canonical keys out of order: %q after %q", k, prev)
		}
		prev = k
		keys[k] = true
	}
	rt := reflect.TypeOf(Scenario{})
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Errorf("field %s has no JSON tag", rt.Field(i).Name)
			continue
		}
		if !keys[tag] {
			t.Errorf("field %s (json %q) missing from Canonical()", rt.Field(i).Name, tag)
		}
		delete(keys, tag)
	}
	for k := range keys {
		t.Errorf("canonical key %q has no Scenario field", k)
	}
}

func TestNormalizedEquivalence(t *testing.T) {
	// Omitted enums and spelled-out defaults must produce the same key.
	implicit := Scenario{Side: 9, Q: 3, D: 3, K: 2, Program: "prefixsum", Size: 64, Seed: 1, Workers: 1, IdealMemory: 1 << 20}
	explicit := DefaultScenario()
	if implicit.Key() != explicit.Key() {
		t.Errorf("implicit defaults key %s != explicit defaults key %s", implicit.Key(), explicit.Key())
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := DefaultScenario()
	sc.Program = "matvec"
	sc.Size = 8
	sc.Faults = "module:40"
	sc.FaultSchedule = "@3 module:41;@7 revive-module:41"
	sc.Repair = "eager"
	sc.Retry = 2
	sc.Torus = true
	sc.NetworkSort = true
	sc.Trace = true

	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != sc {
		t.Errorf("round trip changed the scenario:\n%+v\nvs\n%+v", back, sc)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-marshal not byte-stable:\n%s\nvs\n%s", data, data2)
	}
	if back.Key() != sc.Key() {
		t.Errorf("round trip changed the key: %s vs %s", back.Key(), sc.Key())
	}
}

func TestValidateRejections(t *testing.T) {
	mod := func(f func(*Scenario)) Scenario {
		sc := DefaultScenario()
		f(&sc)
		return sc
	}
	cases := []struct {
		name  string
		sc    Scenario
		field string // must appear in the error
	}{
		{"q too small", mod(func(s *Scenario) { s.Q = 2 }), "q"},
		{"side zero", mod(func(s *Scenario) { s.Side = 0 }), "side"},
		{"d too small", mod(func(s *Scenario) { s.D = 1 }), "d"},
		{"k zero", mod(func(s *Scenario) { s.K = 0 }), "k"},
		{"unknown program", mod(func(s *Scenario) { s.Program = "quicksort" }), "program"},
		{"size zero", mod(func(s *Scenario) { s.Size = 0 }), "size"},
		{"size exceeds mesh", mod(func(s *Scenario) { s.Size = 100 }), "size"},
		{"bad backend", mod(func(s *Scenario) { s.Backend = "gpu" }), "backend"},
		{"bad policy", mod(func(s *Scenario) { s.Policy = "quorumish" }), "policy"},
		{"bad sort", mod(func(s *Scenario) { s.Sort = "bubble" }), "sort"},
		{"bad repair", mod(func(s *Scenario) { s.Repair = "eventually" }), "repair"},
		{"bad fault view", mod(func(s *Scenario) { s.FaultView = "psychic" }), "fault_view"},
		{"bad engine", mod(func(s *Scenario) { s.Engine = "warp" }), "engine"},
		{"negative retry", mod(func(s *Scenario) { s.Retry = -1 }), "retry"},
		{"negative workers", mod(func(s *Scenario) { s.Workers = -1 }), "workers"},
		{"negative ideal memory", mod(func(s *Scenario) { s.IdealMemory = -1 }), "ideal_memory"},
		{"malformed faults", mod(func(s *Scenario) { s.Faults = "link:banana" }), "faults"},
		{"malformed fault schedule", mod(func(s *Scenario) { s.FaultSchedule = "@x module:40" }), "fault_schedule"},
		{"fault schedule out of range", mod(func(s *Scenario) { s.FaultSchedule = "@3 module:999" }), "fault_schedule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.sc)
			}
			var fe *fieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a fieldError", err)
			}
			if fe.Field != tc.field {
				t.Errorf("error attributed to field %q, want %q (%v)", fe.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not surface field name %q", err, tc.field)
			}
		})
	}
	// "size exceeds mesh" is relaxed for the ideal backend.
	sc := DefaultScenario()
	sc.Backend = BackendIdeal
	sc.Size = 100
	if err := sc.Validate(); err != nil {
		t.Errorf("ideal backend should allow size > side²: %v", err)
	}
}

func TestFromScenarioBridges(t *testing.T) {
	sc := DefaultScenario()
	sc.Policy = "rowa"
	sc.Sort = "rotate"
	sc.Engine = "cycle"
	sc.Repair = "lazy"
	sc.Retry = 3
	sc.Workers = 2
	sc.Torus = true
	sc.DisableCulling = true
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Params; got != sc.Params() {
		t.Errorf("params %+v, want %+v", got, sc.Params())
	}
	if cfg.Retry != 3 {
		t.Errorf("retry %d, want 3", cfg.Retry)
	}
	if !cfg.Core.Torus {
		t.Error("torus not bridged")
	}
	if !cfg.Core.DisableCulling {
		t.Error("disable_culling not bridged")
	}
	if cfg.Core.Workers != 2 {
		t.Errorf("workers %d, want 2", cfg.Core.Workers)
	}

	bad := DefaultScenario()
	bad.Q = 2
	if _, err := FromScenario(bad); err == nil {
		t.Error("FromScenario accepted q=2")
	}
}

func TestUseSchemeParamMismatch(t *testing.T) {
	cfg, err := New(Side(9), Q(3), D(3), K(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cfg.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Side(9), Q(3), D(3), K(1), UseScheme(s)); err == nil {
		t.Error("New accepted a scheme built for different params")
	}
	if _, err := New(Side(9), Q(3), D(3), K(2), UseScheme(s)); err != nil {
		t.Errorf("New rejected a matching scheme: %v", err)
	}
	if _, err := New(UseScheme(nil)); err == nil {
		t.Error("New accepted a nil scheme")
	}
}

func TestProgramsSorted(t *testing.T) {
	if !sort.StringsAreSorted(Programs) {
		t.Errorf("Programs not sorted: %v", Programs)
	}
}
