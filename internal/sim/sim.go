// Package sim is the single front door for constructing simulations:
// a functional-options builder that assembles and validates the HMOS
// parameters (internal/hmos), the protocol configuration
// (internal/core), the combining policy, the static fault model
// (internal/fault) and the trace sinks (internal/trace) into one
// Config. Backends consume the Config through pram.NewBackend; code
// that drives the core simulator directly builds it with
// Config.NewSimulator. Both CLIs construct exclusively through this
// package, so every knob has exactly one spelling.
//
//	cfg, err := sim.New(sim.Side(27), sim.K(2), sim.Workers(0),
//	        sim.FaultSpec("rand:link=0.02,seed=7"))
//	backend, err := pram.NewBackend(pram.BackendMesh, cfg)
//
// sim deliberately does not import internal/pram (pram imports sim),
// so the Config carries the combining policy as a plain
// func([]int64) int64 — identical in underlying type to
// pram.CombinePolicy.
package sim

import (
	"fmt"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/hmos"
	"meshpram/internal/route"
	"meshpram/internal/trace"
)

// Config is a validated simulation configuration. Obtain one through
// New; the zero value is not usable.
type Config struct {
	// Params are the HMOS parameters (mesh side, q, d, k).
	Params hmos.Params
	// Core is the protocol configuration handed to core.New, including
	// the fault map resolved from Faults/FaultSpec/FaultModel options.
	Core core.Config
	// Combine reduces concurrent writes to one value (nil = arbitrary,
	// the lowest-pid winner). Underlying type of pram.CombinePolicy.
	Combine func(vals []int64) int64
	// Sinks receive every completed root span of the simulator's
	// ledger.
	Sinks []trace.Sink
	// IdealMemory overrides the ideal backend's memory size in words
	// (0 = the scheme's variable count M).
	IdealMemory int
	// Retry is the checkpointed-retry budget of the mesh backend: a
	// PRAM step ending with unrecoverable variables is rolled back and
	// re-executed up to Retry times (0 = off; see pram.Mesh.SetRetryBudget).
	Retry int

	scheme       *hmos.Scheme
	faultSpec    string
	faultRand    *fault.Model
	scheduleSpec string
}

// Option configures one aspect of a simulation.
type Option func(*Config) error

// Side sets the mesh side length (n = side² processors).
func Side(s int) Option {
	return func(c *Config) error { c.Params.Side = s; return nil }
}

// Q sets the replication arity (prime power ≥ 3).
func Q(q int) Option {
	return func(c *Config) error { c.Params.Q = q; return nil }
}

// D sets the memory dimension: M = f(q, d) shared variables.
func D(d int) Option {
	return func(c *Config) error { c.Params.D = d; return nil }
}

// K sets the number of HMOS levels (q^k copies per variable).
func K(k int) Option {
	return func(c *Config) error { c.Params.K = k; return nil }
}

// Policy selects the copy-access discipline (default core.MajorityPolicy).
func Policy(p core.AccessPolicy) Option {
	return func(c *Config) error { c.Core.Policy = p; return nil }
}

// DisableCulling selects minimal target sets without congestion
// control (the E2/E12 ablation).
func DisableCulling() Option {
	return func(c *Config) error { c.Core.DisableCulling = true; return nil }
}

// DirectRouting bypasses the staged protocol (the E12 ablation).
func DirectRouting() Option {
	return func(c *Config) error { c.Core.DirectRouting = true; return nil }
}

// NetworkSort runs the sorting network round by round instead of the
// result-equivalent fast path.
func NetworkSort() Option {
	return func(c *Config) error { c.Core.UseNetworkSort = true; return nil }
}

// Torus adds wrap-around links to machine-spanning routing phases.
func Torus() Option {
	return func(c *Config) error { c.Core.Torus = true; return nil }
}

// SortAlgo selects the sorting network (route.ShearSort default).
func SortAlgo(a route.SortAlgo) Option {
	return func(c *Config) error { c.Core.Sort = a; return nil }
}

// Workers sets the mesh engine parallelism (0 = GOMAXPROCS, ≤1
// sequential). The greedy routing engine shards its selection sweep
// across the same width; delivered traffic is bit-identical at every
// width, so this is a throughput knob only.
func Workers(n int) Option {
	return func(c *Config) error { c.Core.Workers = n; return nil }
}

// EngineMode selects the routing engine's execution strategy:
// route.ModeEvent (default) fast-forwards contention-free stretches,
// route.ModeCycle forces the cycle-stepped reference loop. Both are
// bit-identical on every observable output.
func EngineMode(m route.EngineMode) Option {
	return func(c *Config) error { c.Core.EngineMode = m; return nil }
}

// Combine sets the concurrent-write combining policy. The argument's
// underlying type matches pram.CombinePolicy, so pram.MaxWrite and
// friends can be passed directly.
func Combine(fn func(vals []int64) int64) Option {
	return func(c *Config) error { c.Combine = fn; return nil }
}

// Faults installs an explicit static fault map. Overrides FaultSpec
// and FaultModel.
func Faults(f *fault.Map) Option {
	return func(c *Config) error { c.Core.Faults = f; return nil }
}

// FaultSpec installs the fault map described by a textual spec (see
// fault.Parse), resolved against the final mesh side once all options
// are applied. The empty spec is a no-op, so a CLI can pass its
// -faults flag value unconditionally.
func FaultSpec(spec string) Option {
	return func(c *Config) error { c.faultSpec = spec; return nil }
}

// FaultModel installs the fault map drawn by a seeded random model
// (see fault.Model), built against the final mesh side once all
// options are applied.
func FaultModel(m fault.Model) Option {
	return func(c *Config) error { c.faultRand = &m; return nil }
}

// FaultSchedule installs a dynamic fault schedule: a deterministic,
// time-indexed event list the simulator applies to its live fault map
// as the step clock advances (see fault.Schedule and core.Config).
func FaultSchedule(s *fault.Schedule) Option {
	return func(c *Config) error { c.Core.Schedule = s; return nil }
}

// FaultScheduleSpec installs the dynamic fault schedule described by a
// textual spec (see fault.ParseSchedule), resolved against the final
// mesh side once all options are applied. The empty spec is a no-op,
// so a CLI can pass its -fault-schedule flag value unconditionally.
func FaultScheduleSpec(spec string) Option {
	return func(c *Config) error { c.scheduleSpec = spec; return nil }
}

// Repair selects the self-healing policy of the mesh backend (default
// core.RepairOff; see core.RepairPolicy).
func Repair(p core.RepairPolicy) Option {
	return func(c *Config) error { c.Core.Repair = p; return nil }
}

// FaultView selects how routers and the repair trigger learn about
// faults: faultview.Global (default) consults the live fault map with
// zero latency; faultview.Local gives each node a gossip-updated view
// with simulated propagation latency, stale-view detours and
// notice-gated repair (see core.Config.FaultView).
func FaultView(m faultview.Mode) Option {
	return func(c *Config) error { c.Core.FaultView = m; return nil }
}

// FaultViewSeed seeds the local fault view's witness tie-breaks
// (meaningful only with FaultView(faultview.Local)).
func FaultViewSeed(seed int64) Option {
	return func(c *Config) error { c.Core.FaultViewSeed = seed; return nil }
}

// Retry sets the checkpointed-retry budget of the mesh backend: how
// many times a PRAM step ending with unrecoverable variables is rolled
// back, repaired and re-executed (0 = off).
func Retry(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("sim: retry budget %d must be ≥ 0", n)
		}
		c.Retry = n
		return nil
	}
}

// TraceSink registers a sink receiving every completed root span of
// the simulator's cost ledger. May be given multiple times.
func TraceSink(s trace.Sink) Option {
	return func(c *Config) error {
		if s != nil {
			c.Sinks = append(c.Sinks, s)
		}
		return nil
	}
}

// UseScheme installs a pre-constructed HMOS scheme, skipping the
// (expensive, deterministic) hmos.New construction in New. The
// scheme's parameters must match the configured Side/Q/D/K exactly —
// a mismatch is a construction error, never a silent rebuild. Schemes
// are immutable after construction, so a warm pool (internal/serve)
// can reuse one across many simulator builds.
func UseScheme(s *hmos.Scheme) Option {
	return func(c *Config) error {
		if s == nil {
			return fmt.Errorf("sim: UseScheme requires a non-nil scheme")
		}
		c.scheme = s
		return nil
	}
}

// IdealMemory sets the ideal backend's memory size in words; the mesh
// backend ignores it. Use when a program's address space exceeds the
// scheme's M on ideal-only runs.
func IdealMemory(words int) Option {
	return func(c *Config) error {
		if words < 0 {
			return fmt.Errorf("sim: ideal memory %d words must be ≥ 0", words)
		}
		c.IdealMemory = words
		return nil
	}
}

// New applies the options over the default configuration (side 9,
// q 3, d 3, k 2 — the smallest two-level instance) and validates the
// result: the HMOS parameters must construct, and the fault map (from
// whichever of Faults/FaultSpec/FaultModel is present) must match the
// mesh side.
func New(opts ...Option) (Config, error) {
	c := Config{Params: hmos.Params{Side: 9, Q: 3, D: 3, K: 2}}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return Config{}, err
		}
	}
	if c.Core.Faults == nil {
		switch {
		case c.faultSpec != "":
			f, err := fault.Parse(c.Params.Side, c.faultSpec)
			if err != nil {
				return Config{}, fmt.Errorf("sim: %w", err)
			}
			c.Core.Faults = f
		case c.faultRand != nil:
			// A draw that hits nothing stays on the nil fast path, like
			// fault.Parse on an all-healthy spec.
			if f := c.faultRand.Build(c.Params.Side); !f.Empty() {
				c.Core.Faults = f
			}
		}
	}
	if c.Core.Schedule == nil && c.scheduleSpec != "" {
		sch, err := fault.ParseSchedule(c.Params.Side, c.scheduleSpec)
		if err != nil {
			return Config{}, fmt.Errorf("sim: %w", err)
		}
		c.Core.Schedule = sch
	}
	if c.scheme != nil {
		if c.scheme.Params != c.Params {
			return Config{}, fmt.Errorf("sim: UseScheme params %+v do not match configured params %+v",
				c.scheme.Params, c.Params)
		}
	} else {
		s, err := hmos.New(c.Params)
		if err != nil {
			return Config{}, fmt.Errorf("sim: %w", err)
		}
		c.scheme = s
	}
	if f := c.Core.Faults; f != nil && f.Side() != c.Params.Side {
		return Config{}, fmt.Errorf("sim: fault map side %d does not match mesh side %d",
			f.Side(), c.Params.Side)
	}
	if sch := c.Core.Schedule; !sch.Empty() && sch.Side() != c.Params.Side {
		return Config{}, fmt.Errorf("sim: fault schedule side %d does not match mesh side %d",
			sch.Side(), c.Params.Side)
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(opts ...Option) Config {
	c, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Vars returns the shared-memory size M of the configured scheme.
func (c Config) Vars() (int, error) {
	s, err := c.schemeOf()
	if err != nil {
		return 0, err
	}
	return s.Vars(), nil
}

// Scheme returns the configured HMOS scheme (constructed during New,
// or on demand for hand-assembled Configs).
func (c Config) Scheme() (*hmos.Scheme, error) { return c.schemeOf() }

func (c Config) schemeOf() (*hmos.Scheme, error) {
	if c.scheme != nil {
		return c.scheme, nil
	}
	return hmos.New(c.Params)
}

// NewSimulator builds the core protocol simulator for this
// configuration and wires the registered trace sinks onto its ledger.
// The scheme constructed (or installed via UseScheme) during New is
// reused, so repeated simulator builds from one Config — or from
// Configs sharing a UseScheme scheme — skip the HMOS construction.
func (c Config) NewSimulator() (*core.Simulator, error) {
	scheme, err := c.schemeOf()
	if err != nil {
		return nil, err
	}
	s, err := core.NewWithScheme(scheme, c.Core)
	if err != nil {
		return nil, err
	}
	for _, sink := range c.Sinks {
		s.Ledger().AddSink(sink)
	}
	return s, nil
}
