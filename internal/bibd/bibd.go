// Package bibd implements the explicit (q^d, q)-Balanced Incomplete
// Block Design of Pietracaprina–Preparata [PP93a] and the balanced
// subgraph selection from the Appendix of the paper.
//
// The design is a bipartite graph G = (W, U; E):
//
//   - U (the "outputs") is the set of d-dimensional vectors over GF(q),
//     |U| = q^d, encoded as integers whose base-q digits are the vector
//     coordinates;
//   - W (the "inputs") is the set of pairs of vectors
//     (a_{d-2}, …, a_h, 0, a_{h-1}, …, a_0)
//     (0, …, 0, 1, b_{h-1}, …, b_0)
//     denoted Φ(h, A, B) with h ∈ [0,d), A ∈ [0, q^{d-1}), B ∈ [0, q^h);
//     |W| = f(d) = q^{d-1}·(q^d−1)/(q−1);
//   - Φ(h, A, B) is adjacent to the q outputs
//     (a_{d-2}, …, a_h, x, a_{h-1}+x·b_{h-1}, …, a_0+x·b_0),  x ∈ GF(q).
//
// Definition 1 of the paper holds: every input has degree q and any two
// outputs share exactly one input (λ = 1). The balanced subgraph keeps
// the first m inputs in a canonical order (the V1 ∪ V2 ∪ V3 selection)
// so that every output keeps degree ⌊qm/q^d⌋ or ⌈qm/q^d⌉ (Theorem 5).
//
// Adjacency is implicit: input→outputs and (output, rank)→input are
// O(d) integer arithmetic, so a processor can hold the entire memory
// map in O(1) words — the constructivity claim that distinguishes this
// scheme from existence-only expander-based schemes.
package bibd

import (
	"fmt"

	"meshpram/internal/gf"
)

// Design is a balanced subgraph of a (q^d, q)-BIBD with M inputs kept.
// When M = f(d) it is the full BIBD. The zero value is not usable;
// construct with New or NewSub.
type Design struct {
	F *gf.Field
	Q int // field order (= input degree)
	D int // output vectors have D coordinates; |U| = Q^D

	M int // number of inputs kept, 1 ≤ M ≤ f(D)

	// Appendix decomposition m = q^{d-1}·((q^l−1)/(q−1) + w) + z.
	L, W, Z int

	qPowers []int // qPowers[i] = Q^i, i ≤ D
}

// F computes f(s) = q^{s-1}·(q^s−1)/(q−1), the input count of a full
// (q^s, q)-BIBD. It panics on overflow of int.
func F(q, s int) int {
	if s <= 0 {
		return 0
	}
	num := ipow(q, s-1)
	geo := (ipow(q, s) - 1) / (q - 1)
	return mulCheck(num, geo)
}

// New constructs the full (q^d, q)-BIBD over the given field.
func New(f *gf.Field, d int) (*Design, error) {
	return NewSub(f, d, F(f.Order(), d))
}

// NewSub constructs the balanced subgraph keeping the first m inputs
// (canonical order: blocks of increasing h; within a block, B-major,
// A-minor). This realizes the V1 ∪ V2 ∪ V3 selection of the Appendix.
func NewSub(f *gf.Field, d, m int) (*Design, error) {
	q := f.Order()
	if q < 2 {
		return nil, fmt.Errorf("bibd: field order %d too small", q)
	}
	if d < 1 {
		return nil, fmt.Errorf("bibd: dimension d=%d must be ≥ 1", d)
	}
	fd := F(q, d)
	if m < 1 || m > fd {
		return nil, fmt.Errorf("bibd: m=%d out of range [1, f(d)=%d]", m, fd)
	}
	g := &Design{F: f, Q: q, D: d, M: m}
	g.qPowers = make([]int, d+1)
	g.qPowers[0] = 1
	for i := 1; i <= d; i++ {
		g.qPowers[i] = g.qPowers[i-1] * q
	}
	// Decompose m = q^{d-1}·((q^l−1)/(q−1) + w) + z  with 0 ≤ w < q^l,
	// 0 ≤ z < q^{d-1}. l = d, w = z = 0 encodes the full design.
	qd1 := g.qPowers[d-1]
	rest := m
	l := 0
	for l < d && rest >= qd1*g.qPowers[l] {
		rest -= qd1 * g.qPowers[l]
		l++
	}
	g.L = l
	g.W = rest / qd1
	g.Z = rest % qd1
	return g, nil
}

// MustNew is New but panics on error.
func MustNew(f *gf.Field, d int) *Design {
	g, err := New(f, d)
	if err != nil {
		panic(err)
	}
	return g
}

// MustNewSub is NewSub but panics on error.
func MustNewSub(f *gf.Field, d, m int) *Design {
	g, err := NewSub(f, d, m)
	if err != nil {
		panic(err)
	}
	return g
}

// Inputs returns the number of inputs kept (m).
func (g *Design) Inputs() int { return g.M }

// Outputs returns |U| = q^d.
func (g *Design) Outputs() int { return g.qPowers[g.D] }

// InputDegree returns q: every input is adjacent to q outputs.
func (g *Design) InputDegree() int { return g.Q }

// blockOffset returns the index of the first input with the given h:
// q^{d-1}·(q^h−1)/(q−1).
func (g *Design) blockOffset(h int) int {
	return g.qPowers[g.D-1] * ((g.qPowers[h] - 1) / (g.Q - 1))
}

// Split decomposes an input index into its Φ(h, A, B) components.
func (g *Design) Split(input int) (h, a, b int) {
	if input < 0 || input >= g.M {
		panic(fmt.Sprintf("bibd: input %d out of range [0,%d)", input, g.M))
	}
	qd1 := g.qPowers[g.D-1]
	for h = 0; h < g.D; h++ {
		block := qd1 * g.qPowers[h]
		if input < block {
			break
		}
		input -= block
	}
	b = input / qd1
	a = input % qd1
	return h, a, b
}

// Join is the inverse of Split: index of Φ(h, A, B) in canonical order.
func (g *Design) Join(h, a, b int) int {
	return g.blockOffset(h) + b*g.qPowers[g.D-1] + a
}

// OutputAt returns the output adjacent to input Φ(h,a,b) along edge
// x ∈ GF(q): the vector (a_{d-2},…,a_h, x, a_{h-1}+x·b_{h-1},…,a_0+x·b_0).
func (g *Design) OutputAt(h, a, b, x int) int {
	f, q := g.F, g.Q
	u := 0
	// Digits j > h come from a's upper digits, shifted down by one.
	ahi := a / g.qPowers[h] // digits a_{d-2}..a_h
	u += ahi * g.qPowers[h+1]
	u += x * g.qPowers[h]
	// Digits j < h: a_j + x·b_j.
	alo := a % g.qPowers[h]
	for j := 0; j < h; j++ {
		aj := (alo / g.qPowers[j]) % q
		bj := (b / g.qPowers[j]) % q
		u += f.Add(aj, f.Mul(x, bj)) * g.qPowers[j]
	}
	return u
}

// OutputsOf returns the q outputs adjacent to the given input, in
// x-order (x = 0..q−1). The result is appended to dst, which may be nil.
func (g *Design) OutputsOf(input int, dst []int) []int {
	h, a, b := g.Split(input)
	for x := 0; x < g.Q; x++ {
		dst = append(dst, g.OutputAt(h, a, b, x))
	}
	return dst
}

// inputAt computes the unique A such that Φ(h, A, B) is adjacent to
// output u, for the given h and B (Theorem 5 proof), and returns the
// input's canonical index (which may be ≥ M, i.e. not selected).
func (g *Design) inputAt(u, h, b int) int {
	f, q := g.F, g.Q
	x := (u / g.qPowers[h]) % q
	// Upper digits of A: u_j for j > h, shifted up.
	ahi := u / g.qPowers[h+1]
	a := ahi * g.qPowers[h]
	// Lower digits: a_j = u_j − x·b_j.
	for j := 0; j < h; j++ {
		uj := (u / g.qPowers[j]) % q
		bj := (b / g.qPowers[j]) % q
		a += f.Sub(uj, f.Mul(x, bj)) * g.qPowers[j]
	}
	return g.Join(h, a, b)
}

// Degree returns the number of selected inputs adjacent to output u.
// By Theorem 5 this is ⌊qm/q^d⌋ or ⌈qm/q^d⌉.
func (g *Design) Degree(u int) int {
	deg := (g.qPowers[g.L] - 1) / (g.Q - 1) // V1 contribution
	deg += g.W                              // V2 contribution
	if g.Z > 0 && g.L < g.D && g.inputAt(u, g.L, g.W) < g.M {
		deg++ // V3 contribution
	}
	return deg
}

// InputAtRank returns the input of rank r (0-based) among the selected
// inputs adjacent to output u, ordered by (h, B) lexicographically.
func (g *Design) InputAtRank(u, r int) int {
	if r < 0 || r >= g.Degree(u) {
		panic(fmt.Sprintf("bibd: rank %d out of range [0,%d) for output %d", r, g.Degree(u), u))
	}
	// Find h: largest with (q^h−1)/(q−1) ≤ r.
	h := 0
	for h+1 <= g.D-1 && (g.qPowers[h+1]-1)/(g.Q-1) <= r {
		h++
	}
	b := r - (g.qPowers[h]-1)/(g.Q-1)
	return g.inputAt(u, h, b)
}

// RankOfInput returns the rank of a selected input v among the selected
// inputs adjacent to output u. It panics if v is not adjacent to u or
// not selected.
func (g *Design) RankOfInput(u, v int) int {
	h, a, b := g.Split(v)
	if g.inputAt(u, h, b) != v {
		panic(fmt.Sprintf("bibd: input %d not adjacent to output %d", v, u))
	}
	_ = a
	return (g.qPowers[h]-1)/(g.Q-1) + b
}

// EdgeIndex returns the x ∈ GF(q) such that OutputAt(Split(v), x) == u,
// or −1 if v is not adjacent to u.
func (g *Design) EdgeIndex(v, u int) int {
	h, a, b := g.Split(v)
	x := (u / g.qPowers[h]) % g.Q
	if g.OutputAt(h, a, b, x) == u {
		return x
	}
	return -1
}

// CommonInputs returns the selected inputs adjacent to both outputs u1
// and u2 (u1 ≠ u2). In the full BIBD there is exactly one (λ = 1); the
// balanced subgraph has at most one. Intended for verification.
func (g *Design) CommonInputs(u1, u2 int) []int {
	if u1 == u2 {
		panic("bibd: CommonInputs requires distinct outputs")
	}
	var out []int
	deg := g.Degree(u1)
	buf := make([]int, 0, g.Q)
	for r := 0; r < deg; r++ {
		v := g.InputAtRank(u1, r)
		buf = g.OutputsOf(v, buf[:0])
		for _, u := range buf {
			if u == u2 {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r = mulCheck(r, b)
	}
	return r
}

func mulCheck(a, b int) int {
	r := a * b
	if a != 0 && r/a != b {
		panic("bibd: integer overflow")
	}
	return r
}
