package bibd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"meshpram/internal/gf"
)

func TestFCounts(t *testing.T) {
	cases := []struct{ q, s, want int }{
		{3, 1, 1}, {3, 2, 12}, {3, 3, 117}, {3, 4, 1080},
		{4, 2, 20}, {5, 2, 30}, {2, 3, 28},
	}
	for _, c := range cases {
		if got := F(c.q, c.s); got != c.want {
			t.Errorf("F(%d,%d) = %d, want %d", c.q, c.s, got, c.want)
		}
	}
}

func TestNewSubValidation(t *testing.T) {
	f := gf.MustNew(3)
	if _, err := NewSub(f, 2, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewSub(f, 2, F(3, 2)+1); err == nil {
		t.Error("m>f(d) accepted")
	}
	if _, err := NewSub(f, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestSplitJoinRoundtrip(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}, {5, 2}, {9, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		for v := 0; v < g.Inputs(); v++ {
			h, a, b := g.Split(v)
			if h < 0 || h >= qd.d {
				t.Fatalf("q=%d d=%d: Split(%d) h=%d out of range", qd.q, qd.d, v, h)
			}
			if b >= g.qPowers[h] {
				t.Fatalf("q=%d d=%d: Split(%d) b=%d ≥ q^h", qd.q, qd.d, v, b)
			}
			if got := g.Join(h, a, b); got != v {
				t.Fatalf("q=%d d=%d: Join(Split(%d)) = %d", qd.q, qd.d, v, got)
			}
		}
	}
}

// Definition 1: every input has degree q with q distinct neighbors.
func TestInputDegree(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}, {5, 2}, {8, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		var buf []int
		for v := 0; v < g.Inputs(); v++ {
			buf = g.OutputsOf(v, buf[:0])
			if len(buf) != qd.q {
				t.Fatalf("input %d has %d outputs", v, len(buf))
			}
			seen := map[int]bool{}
			for _, u := range buf {
				if u < 0 || u >= g.Outputs() {
					t.Fatalf("input %d: output %d out of range", v, u)
				}
				if seen[u] {
					t.Fatalf("input %d adjacent to output %d twice", v, u)
				}
				seen[u] = true
			}
		}
	}
}

// Definition 1: any two outputs share exactly one input (λ = 1).
// Exhaustive on full designs small enough to enumerate.
func TestLambdaOneExhaustive(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		n := g.Outputs()
		for u1 := 0; u1 < n; u1++ {
			for u2 := u1 + 1; u2 < n; u2++ {
				common := g.CommonInputs(u1, u2)
				if len(common) != 1 {
					t.Fatalf("q=%d d=%d: outputs %d,%d share %d inputs, want 1",
						qd.q, qd.d, u1, u2, len(common))
				}
			}
		}
	}
}

// λ = 1 spot checks on a larger design.
func TestLambdaOneRandomLarge(t *testing.T) {
	g := MustNew(gf.MustNew(3), 5) // 243 outputs, f(5)=9801 inputs
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		u1 := rng.Intn(g.Outputs())
		u2 := rng.Intn(g.Outputs())
		if u1 == u2 {
			continue
		}
		if c := g.CommonInputs(u1, u2); len(c) != 1 {
			t.Fatalf("outputs %d,%d share %d inputs", u1, u2, len(c))
		}
	}
}

// Output degree of the full design is (q^d−1)/(q−1).
func TestFullOutputDegree(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {3, 4}, {4, 2}, {5, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		want := (g.qPowers[qd.d] - 1) / (qd.q - 1)
		for u := 0; u < g.Outputs(); u++ {
			if got := g.Degree(u); got != want {
				t.Fatalf("q=%d d=%d: Degree(%d)=%d want %d", qd.q, qd.d, u, got, want)
			}
		}
	}
}

// Theorem 5: for every m the balanced subgraph has output degrees in
// {⌊qm/q^d⌋, ⌈qm/q^d⌉}, and the degrees sum to q·m (edge conservation).
func TestTheorem5BalanceExhaustive(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}} {
		f := gf.MustNew(qd.q)
		fd := F(qd.q, qd.d)
		for m := 1; m <= fd; m++ {
			g := MustNewSub(f, qd.d, m)
			lo := qd.q * m / g.Outputs()
			hi := lo
			if qd.q*m%g.Outputs() != 0 {
				hi++
			}
			sum := 0
			for u := 0; u < g.Outputs(); u++ {
				deg := g.Degree(u)
				if deg != lo && deg != hi {
					t.Fatalf("q=%d d=%d m=%d: Degree(%d)=%d not in {%d,%d}",
						qd.q, qd.d, m, u, deg, lo, hi)
				}
				sum += deg
			}
			if sum != qd.q*m {
				t.Fatalf("q=%d d=%d m=%d: degree sum %d != q·m = %d", qd.q, qd.d, m, sum, qd.q*m)
			}
		}
	}
}

// Degree must agree with brute-force adjacency counting.
func TestDegreeMatchesBruteForce(t *testing.T) {
	for _, m := range []int{1, 5, 12, 40, 77, 117} {
		g := MustNewSub(gf.MustNew(3), 3, m)
		counts := make([]int, g.Outputs())
		var buf []int
		for v := 0; v < m; v++ {
			buf = g.OutputsOf(v, buf[:0])
			for _, u := range buf {
				counts[u]++
			}
		}
		for u := 0; u < g.Outputs(); u++ {
			if g.Degree(u) != counts[u] {
				t.Fatalf("m=%d: Degree(%d)=%d, brute force %d", m, u, g.Degree(u), counts[u])
			}
		}
	}
}

// InputAtRank must enumerate exactly the selected neighbors, each once,
// and RankOfInput must invert it.
func TestRankEnumeration(t *testing.T) {
	for _, m := range []int{1, 7, 12, 50, 117} {
		g := MustNewSub(gf.MustNew(3), 3, m)
		for u := 0; u < g.Outputs(); u++ {
			deg := g.Degree(u)
			seen := map[int]bool{}
			var buf []int
			for r := 0; r < deg; r++ {
				v := g.InputAtRank(u, r)
				if v < 0 || v >= m {
					t.Fatalf("m=%d u=%d r=%d: input %d not selected", m, u, r, v)
				}
				if seen[v] {
					t.Fatalf("m=%d u=%d: input %d enumerated twice", m, u, v)
				}
				seen[v] = true
				// v must actually be adjacent to u.
				buf = g.OutputsOf(v, buf[:0])
				adj := false
				for _, x := range buf {
					if x == u {
						adj = true
					}
				}
				if !adj {
					t.Fatalf("m=%d u=%d r=%d: input %d not adjacent", m, u, r, v)
				}
				if rr := g.RankOfInput(u, v); rr != r {
					t.Fatalf("m=%d u=%d: RankOfInput(%d)=%d want %d", m, u, v, rr, r)
				}
			}
		}
	}
}

func TestEdgeIndex(t *testing.T) {
	g := MustNew(gf.MustNew(4), 2)
	var buf []int
	for v := 0; v < g.Inputs(); v++ {
		buf = g.OutputsOf(v, buf[:0])
		for x, u := range buf {
			if got := g.EdgeIndex(v, u); got != x {
				t.Fatalf("EdgeIndex(%d,%d)=%d want %d", v, u, got, x)
			}
		}
	}
	// Non-adjacent pair.
	u := buf[0]
	for v := 0; v < g.Inputs(); v++ {
		adj := false
		for _, w := range g.OutputsOf(v, nil) {
			if w == u {
				adj = true
			}
		}
		if !adj {
			if g.EdgeIndex(v, u) != -1 {
				t.Fatalf("EdgeIndex(%d,%d) should be -1", v, u)
			}
			break
		}
	}
}

// Lemma 1 (strong expansion): take a set S of inputs all adjacent to a
// fixed output u; for each, fix k ≤ q outgoing edges including the edge
// to u; the reached set has size exactly (k−1)|S| + 1.
func TestLemma1StrongExpansion(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {5, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 50; trial++ {
			u := rng.Intn(g.Outputs())
			deg := g.Degree(u)
			// Random subset S of u's neighbors.
			var S []int
			for r := 0; r < deg; r++ {
				if rng.Intn(2) == 0 {
					S = append(S, g.InputAtRank(u, r))
				}
			}
			if len(S) == 0 {
				continue
			}
			for k := 1; k <= qd.q; k++ {
				reached := map[int]bool{}
				var buf []int
				for _, w := range S {
					buf = g.OutputsOf(w, buf[:0])
					// Fix k edges including the one to u: u first, then
					// k−1 others chosen deterministically.
					reached[u] = true
					cnt := 1
					for _, out := range buf {
						if cnt == k {
							break
						}
						if out != u {
							reached[out] = true
							cnt++
						}
					}
				}
				want := (k-1)*len(S) + 1
				if len(reached) != want {
					t.Fatalf("q=%d d=%d u=%d |S|=%d k=%d: |Γ|=%d want %d",
						qd.q, qd.d, u, len(S), k, len(reached), want)
				}
			}
		}
	}
}

// Edge count of the full design: f(d)·q edges, and output degrees
// partition them.
func TestEdgeConservationFull(t *testing.T) {
	for _, qd := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}, {7, 2}} {
		g := MustNew(gf.MustNew(qd.q), qd.d)
		sum := 0
		for u := 0; u < g.Outputs(); u++ {
			sum += g.Degree(u)
		}
		if sum != g.Inputs()*qd.q {
			t.Fatalf("q=%d d=%d: edge sum %d want %d", qd.q, qd.d, sum, g.Inputs()*qd.q)
		}
	}
}

// Property: for random (input, x), the adjacency is consistent both ways.
func TestQuickAdjacencyConsistency(t *testing.T) {
	g := MustNew(gf.MustNew(9), 2)
	prop := func(rv, rx uint16) bool {
		v := int(rv) % g.Inputs()
		x := int(rx) % g.Q
		h, a, b := g.Split(v)
		u := g.OutputAt(h, a, b, x)
		if g.EdgeIndex(v, u) != x {
			return false
		}
		r := g.RankOfInput(u, v)
		return g.InputAtRank(u, r) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// d = 1 degenerate design: one input adjacent to all q outputs.
func TestDegenerateD1(t *testing.T) {
	g := MustNew(gf.MustNew(5), 1)
	if g.Inputs() != 1 || g.Outputs() != 5 {
		t.Fatalf("d=1: inputs=%d outputs=%d", g.Inputs(), g.Outputs())
	}
	outs := g.OutputsOf(0, nil)
	if len(outs) != 5 {
		t.Fatalf("d=1: %d outputs", len(outs))
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 1 {
			t.Fatalf("d=1: Degree(%d)=%d", u, g.Degree(u))
		}
		if g.InputAtRank(u, 0) != 0 {
			t.Fatalf("d=1: InputAtRank(%d,0)!=0", u)
		}
	}
}

func BenchmarkOutputsOf(b *testing.B) {
	g := MustNew(gf.MustNew(3), 7)
	buf := make([]int, 0, 3)
	for i := 0; i < b.N; i++ {
		buf = g.OutputsOf(i%g.Inputs(), buf[:0])
	}
}

func BenchmarkInputAtRank(b *testing.B) {
	g := MustNew(gf.MustNew(3), 7)
	deg := g.Degree(0)
	for i := 0; i < b.N; i++ {
		g.InputAtRank(i%g.Outputs(), i%deg)
	}
}
