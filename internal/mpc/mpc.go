// Package mpc implements the Module Parallel Computer — the idealized
// complete-interconnection machine of [MV84] and [PP93a] on which the
// paper's memory organization was first developed, and against which
// the mesh result must be read: on the MPC only *memory contention*
// costs time (routing is free), so the MPC simulation isolates the
// contention component that the mesh protocol pays on top of its
// routing. [PP93a] achieves O(√n) worst-case access time for a shared
// memory of n² variables with constant redundancy; this package
// reproduces that scheme's structure (the same (q^d, q)-BIBD memory
// map, majority quorums, timestamps) with a greedy least-loaded copy
// selection, and measures the resulting module congestion.
//
// Machine model: n processors, each owning one memory module, fully
// connected. In one step every processor may send one request and every
// module may serve one request; a batch of requests therefore costs
// max-over-modules of the number of requests addressed to the module
// (plus one round-trip), which is the quantity [PP93a] bounds by
// O(√n).
package mpc

import (
	"fmt"

	"meshpram/internal/bibd"
	"meshpram/internal/gf"
	"meshpram/internal/trace"
)

// Word is the machine word.
type Word = int64

// Op is one processor's request (mirrors core.Op).
type Op struct {
	Origin  int
	Var     int
	IsWrite bool
	Value   Word
}

// Machine is an n-processor MPC with a BIBD-replicated shared memory.
type Machine struct {
	N int // processors = modules
	Q int // copies per variable
	D int // modules m = q^d must equal N

	G *bibd.Design // variables → modules (full BIBD)

	ld    *trace.Ledger // standalone cost ledger (the MPC has no mesh)
	store []map[int64]cell
	now   int64
}

type cell struct {
	val Word
	ts  int64
}

// StepStats reports the cost decomposition of one MPC step.
type StepStats struct {
	Requests   int   // copy requests issued
	MaxLoad    int   // max requests on one module = serving rounds
	SqrtNBound int   // c·√n reference line of [PP93a]
	Steps      int64 // charged: MaxLoad + 2 (request + reply round)
}

// New creates an MPC with n = q^d modules and a shared memory of
// f(q, d) variables replicated q-fold by the [PP93a] BIBD.
func New(q, d int) (*Machine, error) {
	if q < 3 {
		return nil, fmt.Errorf("mpc: q=%d must be ≥ 3 for majority quorums", q)
	}
	f, err := gf.New(q)
	if err != nil {
		return nil, err
	}
	g, err := bibd.New(f, d)
	if err != nil {
		return nil, err
	}
	m := &Machine{N: g.Outputs(), Q: q, D: d, G: g, ld: trace.New()}
	m.store = make([]map[int64]cell, m.N)
	return m, nil
}

// Ledger returns the machine's cost ledger; Ledger().Last() is the span
// tree of the most recent Step.
func (m *Machine) Ledger() *trace.Ledger { return m.ld }

// Vars returns the number of shared variables, f(q, d) ∈ Θ(n²).
func (m *Machine) Vars() int { return m.G.Inputs() }

// Majority returns the quorum size ⌊q/2⌋+1.
func (m *Machine) Majority() int { return m.Q/2 + 1 }

// Step executes one batch of distinct-variable requests: each selects a
// majority of its q copies by greedy least-loaded module assignment
// (the balancing step of [PP93a]); modules serve one request per round;
// reads return the copy with the newest timestamp. It returns results
// aligned with ops and the step statistics.
func (m *Machine) Step(ops []Op) ([]Word, *StepStats) {
	m.now++
	st := &StepStats{}
	step := m.ld.Begin("step", trace.PhaseOther)
	selSp := m.ld.Begin("select", trace.PhaseCulling)
	load := make([]int, m.N)
	type sel struct {
		module int
		slot   int64
	}
	chosen := make([][]sel, len(ops))
	seen := make(map[int]bool, len(ops))
	var mods []int
	for i, op := range ops {
		if op.Var < 0 || op.Var >= m.Vars() {
			panic(fmt.Sprintf("mpc: variable %d out of range", op.Var))
		}
		if seen[op.Var] {
			panic(fmt.Sprintf("mpc: duplicate variable %d", op.Var))
		}
		seen[op.Var] = true
		mods = m.G.OutputsOf(op.Var, mods[:0])
		// Greedy: pick the majority of copies with the lightest
		// current loads (ties by module id for determinism).
		maj := m.Majority()
		pick := make([]int, 0, maj)
		used := make(map[int]bool, maj)
		for len(pick) < maj {
			best := -1
			for _, u := range mods {
				if used[u] {
					continue
				}
				if best == -1 || load[u] < load[best] || (load[u] == load[best] && u < best) {
					best = u
				}
			}
			used[best] = true
			pick = append(pick, best)
		}
		for _, u := range pick {
			x := m.G.EdgeIndex(op.Var, u)
			chosen[i] = append(chosen[i], sel{module: u, slot: int64(op.Var)*int64(m.Q) + int64(x)})
			load[u]++
			st.Requests++
		}
	}
	for _, l := range load {
		if l > st.MaxLoad {
			st.MaxLoad = l
		}
	}
	st.SqrtNBound = isqrtCeil(m.N)
	selSp.SetAttr("requests", int64(st.Requests))
	selSp.SetAttr("max-load", int64(st.MaxLoad))
	selSp.SetAttr("sqrt-n-bound", int64(st.SqrtNBound))
	selSp.End()
	step.AddPackets(int64(st.Requests))

	// Serve: writes stamp, reads gather newest. A module serves one
	// request per round (MaxLoad rounds), plus one request and one reply
	// round — the only costs on the fully connected MPC.
	serve := m.ld.Begin("serve", trace.PhaseAccess)
	serve.Charge(int64(st.MaxLoad))
	serve.End()
	rt := m.ld.Begin("roundtrip", trace.PhaseForward)
	rt.Charge(2)
	rt.End()

	res := make([]Word, len(ops))
	for i, op := range ops {
		if op.IsWrite {
			for _, s := range chosen[i] {
				if m.store[s.module] == nil {
					m.store[s.module] = make(map[int64]cell)
				}
				m.store[s.module][s.slot] = cell{val: op.Value, ts: m.now}
			}
			res[i] = op.Value
			continue
		}
		var best cell
		bestTS := int64(-1)
		for _, s := range chosen[i] {
			var c cell
			if m.store[s.module] != nil {
				c = m.store[s.module][s.slot]
			}
			if c.ts > bestTS {
				bestTS = c.ts
				best = c
			}
		}
		res[i] = best.val
	}
	step.End()
	st.Steps = step.Total()
	return res, st
}

func isqrtCeil(n int) int {
	v := 0
	for v*v < n {
		v++
	}
	return v
}
