package mpc

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 3); err == nil {
		t.Error("q=2 accepted")
	}
	if _, err := New(6, 2); err == nil {
		t.Error("q=6 accepted")
	}
	m, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 81 || m.Vars() != 1080 {
		t.Fatalf("n=%d vars=%d", m.N, m.Vars())
	}
	if m.Majority() != 2 {
		t.Fatalf("majority %d", m.Majority())
	}
}

func TestConsistency(t *testing.T) {
	m, _ := New(3, 4)
	rng := rand.New(rand.NewSource(3))
	ideal := map[int]Word{}
	for step := 0; step < 30; step++ {
		batch := rng.Intn(m.N) + 1
		vars := rng.Perm(m.Vars())[:batch]
		ops := make([]Op, batch)
		expect := make([]Word, batch)
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				val := Word(rng.Intn(1 << 20))
				ops[i] = Op{Origin: rng.Intn(m.N), Var: v, IsWrite: true, Value: val}
				expect[i] = val
			} else {
				ops[i] = Op{Origin: rng.Intn(m.N), Var: v}
				expect[i] = ideal[v]
			}
		}
		res, st := m.Step(ops)
		for i := range ops {
			if res[i] != expect[i] {
				t.Fatalf("step %d op %d: got %d want %d", step, i, res[i], expect[i])
			}
			if ops[i].IsWrite {
				ideal[ops[i].Var] = ops[i].Value
			}
		}
		if st.Requests != batch*m.Majority() {
			t.Fatalf("requests %d, want %d", st.Requests, batch*m.Majority())
		}
		if st.MaxLoad < 1 || st.Steps != int64(st.MaxLoad)+2 {
			t.Fatalf("stats %+v inconsistent", st)
		}
	}
}

// The [PP93a] guarantee shape: greedy majority selection keeps the
// max module load within a small multiple of √n even on adversarial
// (module-hot) request sets.
func TestContentionBound(t *testing.T) {
	m, _ := New(3, 4) // n = 81, √n = 9
	full := func() []Op {
		ops := make([]Op, m.N)
		perm := rand.New(rand.NewSource(7)).Perm(m.Vars())
		for i := range ops {
			ops[i] = Op{Origin: i, Var: perm[i]}
		}
		return ops
	}
	_, stRandom := m.Step(full())
	if stRandom.MaxLoad > 6*stRandom.SqrtNBound {
		t.Fatalf("random: max load %d far above √n = %d", stRandom.MaxLoad, stRandom.SqrtNBound)
	}

	// Module-hot: every requested variable holds a copy in module 0.
	deg := m.G.Degree(0)
	count := deg
	if count > m.N {
		count = m.N
	}
	ops := make([]Op, count)
	for r := 0; r < count; r++ {
		ops[r] = Op{Origin: r, Var: m.G.InputAtRank(0, r)}
	}
	_, stHot := m.Step(ops)
	if stHot.MaxLoad > 6*stHot.SqrtNBound {
		t.Fatalf("module-hot: max load %d far above √n = %d", stHot.MaxLoad, stHot.SqrtNBound)
	}
	t.Logf("n=81: random max load %d, module-hot max load %d, √n = %d",
		stRandom.MaxLoad, stHot.MaxLoad, stHot.SqrtNBound)
}

// Greedy balancing must beat fixed selection (always the first maj
// copies) on the adversarial set.
func TestGreedyBeatsFixedSelection(t *testing.T) {
	m, _ := New(3, 4)
	deg := m.G.Degree(5)
	count := min(deg, m.N)
	// Fixed selection would put `count` requests in module 5 whenever
	// module 5 is among the chosen majority; greedy must spread them.
	ops := make([]Op, count)
	for r := 0; r < count; r++ {
		ops[r] = Op{Origin: r, Var: m.G.InputAtRank(5, r)}
	}
	_, st := m.Step(ops)
	if st.MaxLoad >= count {
		t.Fatalf("greedy did not spread the hot module: load %d of %d", st.MaxLoad, count)
	}
}

func TestDuplicatePanics(t *testing.T) {
	m, _ := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate")
		}
	}()
	m.Step([]Op{{Origin: 0, Var: 1}, {Origin: 1, Var: 1}})
}

func TestWriteQuorumsIntersectReadQuorums(t *testing.T) {
	// Force different quorum choices by interleaving load, then verify
	// the read still finds the newest value.
	m, _ := New(3, 3)
	m.Step([]Op{{Origin: 0, Var: 10, IsWrite: true, Value: 1}})
	// Saturate the modules of variable 10 with other traffic so the
	// next quorum for 10 differs.
	other := make([]Op, 0)
	mods := m.G.OutputsOf(10, nil)
	for v := 0; v < m.Vars() && len(other) < 40; v++ {
		if v == 10 {
			continue
		}
		for _, u := range m.G.OutputsOf(v, nil) {
			if u == mods[0] {
				other = append(other, Op{Origin: len(other), Var: v})
				break
			}
		}
	}
	m.Step(other)
	m.Step([]Op{{Origin: 3, Var: 10, IsWrite: true, Value: 2}})
	res, _ := m.Step([]Op{{Origin: 5, Var: 10}})
	if res[0] != 2 {
		t.Fatalf("read %d, want 2", res[0])
	}
}

func BenchmarkMPCStep(b *testing.B) {
	m, _ := New(3, 6) // n = 729
	perm := rand.New(rand.NewSource(1)).Perm(m.Vars())
	ops := make([]Op, m.N)
	for i := range ops {
		ops[i] = Op{Origin: i, Var: perm[i], IsWrite: i%2 == 0, Value: Word(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(ops)
	}
}
