// Package gf implements arithmetic in finite fields GF(p^e) for small
// prime powers. It is the algebraic substrate for the BIBD construction
// of Pietracaprina–Preparata used by the hierarchical memory
// organization scheme: every HMOS level graph is defined by linear
// expressions a_j + x·b_j evaluated in GF(q).
//
// Field elements are represented as integers in [0, q). For prime q the
// representation is the residue itself; for q = p^e the base-p digits of
// the integer are the coefficients of a polynomial over GF(p), reduced
// modulo a monic irreducible polynomial of degree e that the package
// finds by exhaustive search. Add and Mul are table-driven, so all
// operations are O(1) after construction; a field with q ≤ 512 costs at
// most q² table entries.
package gf

import (
	"fmt"
)

// Field is a finite field GF(q) with q = p^e elements.
// The zero value is not usable; construct with New.
type Field struct {
	q, p, e int
	irred   []int // monic irreducible polynomial, coefficients irred[0..e], irred[e]=1
	add     []int // add[a*q+b] = a+b
	mul     []int // mul[a*q+b] = a*b
	inv     []int // inv[a] = a^-1 (inv[0] unused)
	neg     []int // neg[a] = -a
}

// New constructs GF(q). It returns an error unless q is a prime power
// with 2 ≤ q ≤ 512.
func New(q int) (*Field, error) {
	if q < 2 || q > 512 {
		return nil, fmt.Errorf("gf: order %d out of supported range [2,512]", q)
	}
	p, e, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: order %d is not a prime power", q)
	}
	f := &Field{q: q, p: p, e: e}
	if e == 1 {
		f.irred = []int{0, 1} // x (unused for prime fields)
	} else {
		f.irred = findIrreducible(p, e)
		if f.irred == nil {
			return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", e, p)
		}
	}
	f.buildTables()
	return f, nil
}

// MustNew is New but panics on error; for use with constant parameters.
func MustNew(q int) *Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// Order returns q, the number of elements.
func (f *Field) Order() int { return f.q }

// Char returns the characteristic p.
func (f *Field) Char() int { return f.p }

// Degree returns e where q = p^e.
func (f *Field) Degree() int { return f.e }

// Irreducible returns a copy of the reduction polynomial used for
// extension fields (nil semantics for prime fields: returns x).
func (f *Field) Irreducible() []int {
	out := make([]int, len(f.irred))
	copy(out, f.irred)
	return out
}

// Add returns a+b in the field.
func (f *Field) Add(a, b int) int { return f.add[a*f.q+b] }

// Sub returns a-b in the field.
func (f *Field) Sub(a, b int) int { return f.add[a*f.q+f.neg[b]] }

// Neg returns -a in the field.
func (f *Field) Neg(a int) int { return f.neg[a] }

// Mul returns a·b in the field.
func (f *Field) Mul(a, b int) int { return f.mul[a*f.q+b] }

// Inv returns a⁻¹. It panics if a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.inv[a]
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Exp returns a^n for n ≥ 0 (with 0^0 = 1).
func (f *Field) Exp(a, n int) int {
	r := 1
	base := a
	for n > 0 {
		if n&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
		n >>= 1
	}
	return r
}

// buildTables materializes the add/mul/neg/inv tables.
func (f *Field) buildTables() {
	q, p, e := f.q, f.p, f.e
	f.add = make([]int, q*q)
	f.mul = make([]int, q*q)
	f.neg = make([]int, q)
	f.inv = make([]int, q)
	if e == 1 {
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				f.add[a*q+b] = (a + b) % q
				f.mul[a*q+b] = (a * b) % q
			}
			f.neg[a] = (q - a) % q
		}
	} else {
		for a := 0; a < q; a++ {
			pa := intToPoly(a, p, e)
			for b := 0; b < q; b++ {
				pb := intToPoly(b, p, e)
				f.add[a*q+b] = polyToInt(polyAdd(pa, pb, p), p)
				f.mul[a*q+b] = polyToInt(polyMulMod(pa, pb, f.irred, p), p)
			}
			f.neg[a] = polyToInt(polyNeg(pa, p), p)
		}
	}
	// Inverses by exhaustive search (q ≤ 512 so this is at most 512² probes).
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a*q+b] == 1 {
				f.inv[a] = b
				break
			}
		}
	}
}

// primePower reports whether n = p^e for a prime p, returning p and e.
func primePower(n int) (p, e int, ok bool) {
	if n < 2 {
		return 0, 0, false
	}
	m := n
	for d := 2; d*d <= m; d++ {
		if m%d == 0 {
			p = d
			for m%d == 0 {
				m /= d
				e++
			}
			if m != 1 {
				return 0, 0, false
			}
			return p, e, true
		}
	}
	return n, 1, true // n itself prime
}

// IsPrimePower reports whether n is a prime power (n ≥ 2).
func IsPrimePower(n int) bool {
	_, _, ok := primePower(n)
	return ok
}

// --- polynomial helpers over GF(p), coefficient slices little-endian ---

func intToPoly(v, p, e int) []int {
	c := make([]int, e)
	for i := 0; i < e; i++ {
		c[i] = v % p
		v /= p
	}
	return c
}

func polyToInt(c []int, p int) int {
	v := 0
	for i := len(c) - 1; i >= 0; i-- {
		v = v*p + c[i]
	}
	return v
}

func polyAdd(a, b []int, p int) []int {
	n := max(len(a), len(b))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		var x, y int
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = (x + y) % p
	}
	return out
}

func polyNeg(a []int, p int) []int {
	out := make([]int, len(a))
	for i, c := range a {
		out[i] = (p - c) % p
	}
	return out
}

func polyDeg(a []int) int {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != 0 {
			return i
		}
	}
	return -1
}

// polyMulMod multiplies a·b and reduces modulo the monic polynomial m.
func polyMulMod(a, b, m []int, p int) []int {
	prod := make([]int, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			prod[i+j] = (prod[i+j] + x*y) % p
		}
	}
	return polyMod(prod, m, p)
}

// polyMod reduces a modulo the monic polynomial m over GF(p).
func polyMod(a, m []int, p int) []int {
	dm := polyDeg(m)
	out := make([]int, len(a))
	copy(out, a)
	for d := polyDeg(out); d >= dm; d = polyDeg(out) {
		// out -= out[d] * x^(d-dm) * m
		c := out[d]
		for i := 0; i <= dm; i++ {
			out[d-dm+i] = ((out[d-dm+i]-c*m[i])%p + p*p) % p
		}
	}
	if len(out) > dm {
		out = out[:dm]
	}
	return out
}

// findIrreducible returns a monic irreducible polynomial of degree e
// over GF(p) by exhaustive search, or nil if none exists (cannot happen
// mathematically, but the caller checks).
func findIrreducible(p, e int) []int {
	total := 1
	for i := 0; i < e; i++ {
		total *= p
	}
	// Candidate = x^e + (lower-degree part encoded by v).
	for v := 0; v < total; v++ {
		cand := intToPoly(v, p, e)
		cand = append(cand, 1) // monic of degree e
		if polyIrreducible(cand, p) {
			return cand
		}
	}
	return nil
}

// polyIrreducible tests irreducibility by trial division by every monic
// polynomial of degree 1..e/2. Fine for the tiny fields this package
// supports.
func polyIrreducible(f []int, p int) bool {
	e := polyDeg(f)
	if e <= 0 {
		return false
	}
	if e == 1 {
		return true
	}
	for d := 1; d <= e/2; d++ {
		total := 1
		for i := 0; i < d; i++ {
			total *= p
		}
		for v := 0; v < total; v++ {
			g := intToPoly(v, p, d)
			g = append(g, 1) // monic degree d
			if polyDeg(polyModPoly(f, g, p)) < 0 {
				return false
			}
		}
	}
	return true
}

// polyModPoly returns f mod g for monic g (general-degree variant of
// polyMod, kept separate for clarity in the irreducibility test).
func polyModPoly(f, g []int, p int) []int {
	return polyMod(append([]int(nil), f...), g, p)
}
