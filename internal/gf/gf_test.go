package gf

import (
	"testing"
	"testing/quick"
)

var testOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32, 49, 64, 81, 121, 125, 128, 243, 256}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 24, 100, 513, 1000} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) succeeded; want error", q)
		}
	}
}

func TestPrimePower(t *testing.T) {
	cases := []struct {
		n, p, e int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {8, 2, 3, true},
		{9, 3, 2, true}, {27, 3, 3, true}, {81, 3, 4, true}, {6, 0, 0, false},
		{1, 0, 0, false}, {12, 0, 0, false}, {125, 5, 3, true}, {343, 7, 3, true},
	}
	for _, c := range cases {
		p, e, ok := primePower(c.n)
		if ok != c.ok || (ok && (p != c.p || e != c.e)) {
			t.Errorf("primePower(%d) = (%d,%d,%v), want (%d,%d,%v)", c.n, p, e, ok, c.p, c.e, c.ok)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range testOrders {
		f := MustNew(q)
		if f.Order() != q {
			t.Fatalf("GF(%d): Order=%d", q, f.Order())
		}
		for a := 0; a < q; a++ {
			if f.Add(a, 0) != a {
				t.Fatalf("GF(%d): %d+0 != %d", q, a, a)
			}
			if f.Mul(a, 1) != a {
				t.Fatalf("GF(%d): %d*1 != %d", q, a, a)
			}
			if f.Add(a, f.Neg(a)) != 0 {
				t.Fatalf("GF(%d): %d + (-%d) != 0", q, a, a)
			}
			if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
				t.Fatalf("GF(%d): %d * inv(%d) != 1", q, a, a)
			}
			if f.Mul(a, 0) != 0 {
				t.Fatalf("GF(%d): %d*0 != 0", q, a)
			}
		}
	}
}

func TestFieldCommutativityAssociativityDistributivity(t *testing.T) {
	// Exhaustive on the small fields where q^3 is cheap.
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 16, 25, 27} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("GF(%d): add not commutative at (%d,%d)", q, a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("GF(%d): mul not commutative at (%d,%d)", q, a, b)
				}
				for c := 0; c < q; c++ {
					if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
						t.Fatalf("GF(%d): add not associative", q)
					}
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("GF(%d): mul not associative", q)
					}
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("GF(%d): not distributive", q)
					}
				}
			}
		}
	}
}

func TestMulHasNoZeroDivisors(t *testing.T) {
	for _, q := range testOrders {
		f := MustNew(q)
		for a := 1; a < q; a++ {
			for b := 1; b < q; b++ {
				if f.Mul(a, b) == 0 {
					t.Fatalf("GF(%d): zero divisor %d*%d", q, a, b)
				}
			}
		}
	}
}

func TestAddMulAreLatinSquares(t *testing.T) {
	for _, q := range testOrders {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			seen := make([]bool, q)
			for b := 0; b < q; b++ {
				s := f.Add(a, b)
				if seen[s] {
					t.Fatalf("GF(%d): row %d of addition not a permutation", q, a)
				}
				seen[s] = true
			}
		}
		for a := 1; a < q; a++ {
			seen := make([]bool, q)
			for b := 0; b < q; b++ {
				s := f.Mul(a, b)
				if seen[s] {
					t.Fatalf("GF(%d): row %d of multiplication not a permutation", q, a)
				}
				seen[s] = true
			}
		}
	}
}

func TestSubDiv(t *testing.T) {
	for _, q := range []int{3, 4, 9, 27} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Add(f.Sub(a, b), b) != a {
					t.Fatalf("GF(%d): (a-b)+b != a at (%d,%d)", q, a, b)
				}
				if b != 0 && f.Mul(f.Div(a, b), b) != a {
					t.Fatalf("GF(%d): (a/b)*b != a at (%d,%d)", q, a, b)
				}
			}
		}
	}
}

func TestExp(t *testing.T) {
	for _, q := range []int{3, 4, 5, 8, 9, 27} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			want := 1
			for n := 0; n <= 2*q; n++ {
				if got := f.Exp(a, n); got != want {
					t.Fatalf("GF(%d): %d^%d = %d, want %d", q, a, n, got, want)
				}
				want = f.Mul(want, a)
			}
		}
		// Fermat: a^(q-1) = 1 for a != 0.
		for a := 1; a < q; a++ {
			if f.Exp(a, q-1) != 1 {
				t.Fatalf("GF(%d): %d^(q-1) != 1", q, a)
			}
		}
	}
}

func TestFrobeniusIsAdditive(t *testing.T) {
	// (a+b)^p = a^p + b^p in characteristic p.
	for _, q := range []int{4, 8, 9, 16, 25, 27, 49} {
		f := MustNew(q)
		p := f.Char()
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Exp(f.Add(a, b), p) != f.Add(f.Exp(a, p), f.Exp(b, p)) {
					t.Fatalf("GF(%d): Frobenius not additive at (%d,%d)", q, a, b)
				}
			}
		}
	}
}

func TestInverseUnique(t *testing.T) {
	f := MustNew(27)
	if f.Char() != 3 || f.Degree() != 3 {
		t.Fatalf("GF(27): p=%d e=%d", f.Char(), f.Degree())
	}
	for a := 1; a < 27; a++ {
		count := 0
		for b := 1; b < 27; b++ {
			if f.Mul(a, b) == 1 {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("GF(27): element %d has %d inverses", a, count)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := MustNew(9)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestIrreduciblePolynomialProperties(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 27, 32, 64, 81, 125} {
		f := MustNew(q)
		ir := f.Irreducible()
		if len(ir) != f.Degree()+1 {
			t.Fatalf("GF(%d): irreducible has length %d, want %d", q, len(ir), f.Degree()+1)
		}
		if ir[f.Degree()] != 1 {
			t.Fatalf("GF(%d): irreducible not monic", q)
		}
		// No roots in GF(p).
		p := f.Char()
		for x := 0; x < p; x++ {
			v, xp := 0, 1
			for _, c := range ir {
				v = (v + c*xp) % p
				xp = (xp * x) % p
			}
			if v == 0 {
				t.Fatalf("GF(%d): irreducible has root %d in GF(%d)", q, x, p)
			}
		}
	}
}

func TestQuickFieldIdentities(t *testing.T) {
	f := MustNew(81)
	q := f.Order()
	// Property: (a·b)·c == a·(b·c) and a·(b+c) == a·b + a·c for random triples.
	prop := func(ra, rb, rc uint16) bool {
		a, b, c := int(ra)%q, int(rb)%q, int(rc)%q
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHelpers(t *testing.T) {
	// (x+1)(x+2) = x² + 3x + 2 = x² + 2 over GF(3) reduced mod x²+1 → 2x²... sanity:
	p := 3
	a := []int{1, 1} // 1 + x
	b := []int{2, 1} // 2 + x
	m := []int{1, 0, 1}
	got := polyMulMod(a, b, m, p)
	// (1+x)(2+x) = 2 + 3x + x² = 2 + x² ; mod (x²+1): 2 + (x²+1) - 1 = ... x² ≡ -1 ≡ 2, so 2+2 = 4 ≡ 1.
	if polyToInt(got, p) != 1 {
		t.Fatalf("polyMulMod = %v (int %d), want 1", got, polyToInt(got, p))
	}
	if polyDeg([]int{0, 0, 0}) != -1 {
		t.Fatal("polyDeg of zero poly should be -1")
	}
	if v := polyToInt(intToPoly(17, 3, 4), 3); v != 17 {
		t.Fatalf("roundtrip intToPoly/polyToInt = %d", v)
	}
}

func BenchmarkMulGF27(b *testing.B) {
	f := MustNew(27)
	s := 0
	for i := 0; i < b.N; i++ {
		s += f.Mul(i%27, (i+7)%27)
	}
	_ = s
}

func BenchmarkNewGF256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustNew(256)
	}
}
