package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/baseline"
	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/stats"
	"meshpram/internal/workload"
)

// RunE14 demonstrates the deterministic-vs-randomized distinction the
// introduction draws: a Carter–Wegman hashed single-copy organization
// is excellent on random request sets (its expected contention is
// O(log n / log log n)-ish) but, for every fixed hash function, an
// adversary who knows h can build a request set that serializes one
// module. The paper's scheme gives the same worst-case guarantee for
// every set.
func RunE14(w io.Writer, cfg Config) error {
	p := hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
	sim, err := core.New(p, core.Config{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	n := sim.Mesh().N
	vars := sim.Scheme().Vars()

	var tb stats.Table
	tb.Add("scheme", "request set", "max module contention", "total steps")

	var randomConts, advConts []float64
	for seed := int64(0); seed < 5; seed++ {
		nr, err := baseline.NewNoReplicationCW(p.Side, n*n, cfg.Seed+seed)
		if err != nil {
			return err
		}
		// Random request set: expected contention is low.
		rv := workload.RandomDistinct(n*n, n, cfg.Seed+100+seed)
		ops := make([]baseline.Op, len(rv))
		for i, v := range rv {
			ops[i] = baseline.Op{Origin: i, Var: v}
		}
		_, c1 := nr.Step(ops)
		randomConts = append(randomConts, float64(c1.Access))

		// Adversarial set for THIS hash: all requests homed together.
		hot := nr.VarsOnProc(nr.Home(0), n)
		ops2 := make([]baseline.Op, len(hot))
		for i, v := range hot {
			ops2[i] = baseline.Op{Origin: i % n, Var: v}
		}
		_, c2 := nr.Step(ops2)
		advConts = append(advConts, float64(c2.Access))
	}
	tb.Add("CW-hashed single copy", "random (5 hash draws, mean)", int64(stats.GeoMean(randomConts)), "-")
	tb.Add("CW-hashed single copy", "adversarial vs known h (mean)", int64(stats.GeoMean(advConts)), "-")

	// The deterministic scheme's measured worst case over the same
	// adversarial idea (module-hot) and its guarantee.
	hot := workload.ModuleHot(sim.Scheme(), 1, n)
	_, st := sim.Step(hot.Reads())
	tb.Add("HMOS (paper, deterministic)", "module-hot (its worst stress)", st.Delta[0], st.Total())
	rv := workload.RandomDistinct(vars, n, cfg.Seed)
	_, st2 := sim.Step(rv.Reads())
	tb.Add("HMOS (paper, deterministic)", "random", st2.Delta[0], st2.Total())

	tb.Render(w)
	fmt.Fprintln(w, "\n  2-universal hashing [CW79] gives low contention in expectation, but a")
	fmt.Fprintln(w, "  fixed h always admits a Θ(n/(M/n·n))·n-sized colliding set — here the")
	fmt.Fprintln(w, "  adversary serializes ~n accesses in one module. The deterministic")
	fmt.Fprintln(w, "  scheme's contention is bounded for every request set, which is the")
	fmt.Fprintln(w, "  paper's reason to pay redundancy + culling.")
	return nil
}
