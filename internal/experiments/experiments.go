// Package experiments implements the reproduction harness: one
// experiment per theorem/claim of the paper (see DESIGN.md §4). Each
// experiment generates its workload, runs the relevant machinery, and
// renders a table (and, where meaningful, an ASCII figure) comparing
// the measured quantity against the paper's bound or the theoretical
// shape. cmd/experiments runs them all; the root bench_test.go exposes
// one testing.B benchmark per experiment.
package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/trace"
)

// Config tunes harness scale.
type Config struct {
	// Big includes the largest (slow) machine sizes.
	Big bool
	// Workers configures mesh-engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives all workload generation.
	Seed int64
	// Report, when non-nil, collects machine-readable results as the
	// experiment runs (cmd/experiments -json). Experiments record into
	// it through the nil-safe setters below, so the hot path needs no
	// guards.
	Report *Report
}

// Report is the machine-readable result of one experiment run;
// cmd/experiments -json serializes one per experiment as
// BENCH_<id>.json. Steps and Phases describe the experiment's headline
// measurement; Traces holds one exported cost-ledger tree per
// execution path the experiment exercised, in the shared trace.Node
// schema.
type Report struct {
	ID     string                 `json:"id"`
	Claim  string                 `json:"claim"`
	WallNs int64                  `json:"wall_ns"`
	Steps  int64                  `json:"steps,omitempty"`
	Phases map[string]int64       `json:"phases,omitempty"`
	Traces map[string]*trace.Node `json:"traces,omitempty"`
}

// SetSteps records the headline charged-step count. Nil-safe.
func (r *Report) SetSteps(n int64) {
	if r != nil {
		r.Steps = n
	}
}

// SetPhase records one entry of the phase breakdown. Nil-safe.
func (r *Report) SetPhase(name string, v int64) {
	if r == nil {
		return
	}
	if r.Phases == nil {
		r.Phases = make(map[string]int64)
	}
	r.Phases[name] = v
}

// AddTrace attaches an exported ledger tree under the given path name.
// Nil-safe in both arguments.
func (r *Report) AddTrace(name string, n *trace.Node) {
	if r == nil || n == nil {
		return
	}
	if r.Traces == nil {
		r.Traces = make(map[string]*trace.Node)
	}
	r.Traces[name] = n
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID    string
	Claim string // the paper statement it checks
	Run   func(w io.Writer, cfg Config) error
}

// All lists the experiments in DESIGN.md order.
var All = []Experiment{
	{"E1", "Thm 1/4: simulation slowdown T(n) ≈ n^(1/2+o(1)) — and figure F1", RunE1},
	{"E2", "Thm 3: level-i page load ≤ 4q^k·n^(1−1/2^i) after culling — and figure F2", RunE2},
	{"E3", "Def 1 + Lemma 1: BIBD λ=1 and strong expansion", RunE3},
	{"E4", "Thm 5: balanced subgraph output degrees within ±1 of q·m/q^d", RunE4},
	{"E5", "Thm 2: (l1,l2)-routing within the √(l1·l2·n) envelope", RunE5},
	{"E6", "§2: staged (l1,l2,δ,m)-routing beats direct when δ ≪ l2 — and figure F3", RunE6},
	{"E7", "Eq 2: culling cost grows like k·q^k·√n", RunE7},
	{"E8", "Replication absorbs adversarial module-hot sets; single-copy serializes", RunE8},
	{"E9", "Thm 4 trade-off: redundancy q^k vs slowdown", RunE9},
	{"E10", "Constructive memory map is O(1) words; random-graph map is Θ(M·c)", RunE10},
	{"E11", "Consistency: every read returns the last value written", RunE11},
	{"E12", "Ablation: staged protocol + culling vs direct routing", RunE12},
	{"E13", "Majority discipline vs MV84 read-one/write-all", RunE13},
	{"E14", "Randomized hashing [CW79]: great on average, adversarially serializable", RunE14},
	{"E15", "Application-level slowdown: whole PRAM programs, ideal vs mesh", RunE15},
	{"E16", "Extension: torus (wrap-around) links vs the plain mesh", RunE16},
	{"E17", "Sorting substitution ablation: shearsort vs RotateSort", RunE17},
	{"E18", "Lineage: [PP93a] on the MPC (contention only) vs this paper on the mesh", RunE18},
	{"FAULT", "Extension: graceful degradation — slowdown and unrecoverable variables vs static fault rate", RunFault},
	{"RECOVER", "Extension: self-healing — churn rate vs repaired copies, residual loss and repair cost", RunRecover},
	{"GOSSIP", "Extension: local fault knowledge — discovery latency, notice staleness and extra loss vs the omniscient baseline", RunGossip},
	{"ROUTE", "Infrastructure: allocation-lean greedy routing engine — ns/op, allocs/op and cycles vs the pre-engine baseline", RunRoute},
	{"SCALE", "Infrastructure: million-node meshes — bytes/node and ns/cycle vs n against the pre-slab layout baseline", RunScale},
}

// RunAll executes every experiment, writing a section per experiment.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All {
		fmt.Fprintf(w, "\n== %s: %s ==\n\n", e.ID, e.Claim)
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
