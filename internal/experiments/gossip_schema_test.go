package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGossipReportSchema runs the GOSSIP experiment at the small size
// and diffs the schema of its BENCH_GOSSIP.json against the checked-in
// golden, mirroring TestFaultReportSchema: the golden pins the emitted
// key set (one discovery/staleness/loss group per churn rate), not the
// measurements. Update testdata/BENCH_GOSSIP.schema.golden deliberately
// when the sweep or the per-rate keys change. It also pins the
// experiment's headline claim: on a churn timeline the local view
// reports nonzero discovery latency where the omniscient baseline
// reports identically zero.
func TestGossipReportSchema(t *testing.T) {
	e, ok := Lookup("GOSSIP")
	if !ok {
		t.Fatal("GOSSIP experiment not registered")
	}
	rep := &Report{ID: e.ID, Claim: e.Claim}
	cfg := Config{Seed: 1, Workers: 1, Report: rep}
	if err := e.Run(io.Discard, cfg); err != nil {
		t.Fatalf("RunGossip: %v", err)
	}
	rep.WallNs = 1 // always set by cmd/experiments; pin its presence
	got := reportSchema(t, rep)

	goldenPath := filepath.Join("testdata", "BENCH_GOSSIP.schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	wantLines := strings.Fields(strings.TrimSpace(string(want)))
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("BENCH_GOSSIP.json schema drifted from %s\n got:\n  %s\nwant:\n  %s",
			goldenPath, strings.Join(got, "\n  "), strings.Join(wantLines, "\n  "))
	}

	// The acceptance claim, on the measurements themselves: some churn
	// rate shows nonzero local discovery latency and staleness while
	// every global baseline is zero.
	var localLatency, stale int64
	for _, rate := range gossipRates {
		key := churnKey(rate)
		if v := rep.Phases["disclatency-global@"+key]; v != 0 {
			t.Errorf("global baseline reports discovery latency %d at churn %s, want 0", v, key)
		}
		localLatency += rep.Phases["disclatency@"+key]
		stale += rep.Phases["stalemax@"+key]
	}
	if localLatency == 0 {
		t.Error("local view reports zero discovery latency across the whole sweep")
	}
	if stale == 0 {
		t.Error("local view reports zero notice staleness across the whole sweep")
	}
}
