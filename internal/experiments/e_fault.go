package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// faultRates is the sweep of the FAULT experiment: link and module
// fault probabilities. Rate 0 runs with a non-nil (empty) fault map,
// pinning the fault-aware code path to the healthy accounting; the
// "none" baseline row runs with no map at all.
var faultRates = []float64{0, 0.02, 0.05, 0.10, 0.20}

// faultRateKey renders a rate as the stable key used in BENCH_FAULT
// phase names ("steps@0.05", …).
func faultRateKey(r float64) string { return fmt.Sprintf("%.2f", r) }

// RunFault measures graceful degradation under static faults: charged
// steps (detours and waits land in the same ledger as healthy routing
// cost), lost packets, and variables whose surviving copies no longer
// hold a plain target set, as the fault rate grows past the majority
// threshold. A second part kills the modules hosting one variable's
// copies one by one and reports how many deaths the majority rule
// absorbed before the variable became unrecoverable.
func RunFault(w io.Writer, cfg Config) error {
	opts := []sim.Option{sim.Side(9), sim.Q(3), sim.D(3), sim.K(2), sim.Workers(cfg.Workers)}
	if cfg.Big {
		opts = []sim.Option{sim.Side(27), sim.Q(3), sim.D(5), sim.K(2), sim.Workers(cfg.Workers)}
	}
	reps := 2

	// Healthy baseline: no fault map installed at all.
	base, err := runFaultCell(opts, nil, cfg, reps)
	if err != nil {
		return err
	}
	cfg.Report.SetSteps(base.steps)

	var tb stats.Table
	tb.Add("rate", "faults (nd/ln/md)", "T steps", "vs healthy", "lost pkts", "unrecoverable")
	tb.Add("none", "-", base.steps, 1.0, "-", "-")

	var lastTree *trace.Node
	for _, rate := range faultRates {
		model := &fault.Model{LinkRate: rate, ModuleRate: rate, Seed: cfg.Seed}
		cell, err := runFaultCell(opts, model, cfg, reps)
		if err != nil {
			return err
		}
		key := faultRateKey(rate)
		tb.Add(key, fmt.Sprintf("%d/%d/%d", cell.deadNodes, cell.deadLinks, cell.deadModules),
			cell.steps, float64(cell.steps)/float64(base.steps), cell.lost, cell.unrecoverable)
		cfg.Report.SetPhase("steps@"+key, cell.steps)
		cfg.Report.SetPhase("lost@"+key, int64(cell.lost))
		cfg.Report.SetPhase("unrecoverable@"+key, int64(cell.unrecoverable))
		lastTree = cell.tree
	}
	tb.Render(w)
	cfg.Report.AddTrace("fault-step", lastTree)
	fmt.Fprintln(w, "\n  Rate 0 runs the fault-aware path with an empty map and must match the")
	fmt.Fprintln(w, "  healthy baseline exactly (also pinned by TestFaultFreeInvariance).")

	// Targeted deaths: how many of one variable's host modules can die
	// before its live copies hold no plain target set.
	cfgSim, err := sim.New(opts...)
	if err != nil {
		return err
	}
	scheme, err := cfgSim.Scheme()
	if err != nil {
		return err
	}
	copies := scheme.Copies(0, nil)
	hosts := make([]int, 0, len(copies))
	seen := map[int]bool{}
	for _, c := range copies {
		if !seen[c.Proc] {
			seen[c.Proc] = true
			hosts = append(hosts, c.Proc)
		}
	}
	// The builder map stays private and mutable; each simulator gets its
	// own clone, since installation freezes the installed map.
	survived := 0
	f := fault.NewMap(cfgSim.Params.Side)
	for i, h := range hosts {
		f.KillModule(h)
		killed, err := sim.New(append(opts, sim.Faults(f.Clone()))...)
		if err != nil {
			return err
		}
		s, err := killed.NewSimulator()
		if err != nil {
			return err
		}
		if _, _, err := s.StepChecked([]core.Op{{Origin: 0, Var: 0}}); err != nil {
			return err
		}
		if len(s.LastReport().Unrecoverable) > 0 {
			break
		}
		survived = i + 1
	}
	cfg.Report.SetPhase("targeted-survived", int64(survived))
	fmt.Fprintf(w, "\n  Targeted deaths: variable 0 (%d copies on %d modules) stayed readable\n",
		len(copies), len(hosts))
	fmt.Fprintf(w, "  through %d module deaths; death %d broke the majority threshold.\n",
		survived, survived+1)
	return nil
}

// faultCell is one measured sweep point.
type faultCell struct {
	steps         int64
	lost          int
	unrecoverable int
	deadNodes     int
	deadLinks     int
	deadModules   int
	tree          *trace.Node
}

// runFaultCell runs `reps` full-machine mixed batches under the given
// fault model (nil = healthy, no map) and sums the measurements.
func runFaultCell(opts []sim.Option, model *fault.Model, cfg Config, reps int) (faultCell, error) {
	if model != nil {
		opts = append(append([]sim.Option(nil), opts...), sim.FaultModel(*model))
	}
	c, err := sim.New(opts...)
	if err != nil {
		return faultCell{}, err
	}
	s, err := c.NewSimulator()
	if err != nil {
		return faultCell{}, err
	}
	var cell faultCell
	if f := c.Core.Faults; f != nil {
		cell.deadNodes, cell.deadLinks, cell.deadModules, _ = f.Counts()
	}
	n := s.Mesh().N
	for r := 0; r < reps; r++ {
		vars := workload.RandomDistinct(s.Scheme().Vars(), n, cfg.Seed+int64(r))
		_, st, err := s.StepChecked(vars.Mixed(1000))
		if err != nil {
			return faultCell{}, err
		}
		cell.steps += st.Total()
		if rep := s.LastReport(); rep != nil {
			cell.lost += rep.LostPackets
			cell.unrecoverable += len(rep.Unrecoverable)
		}
	}
	cell.steps /= int64(reps)
	cell.tree = trace.Export(s.Ledger().Last())
	return cell, nil
}
