package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The memory-budget gate. Two committed artifacts anchor it:
//
//   - BENCH_SCALE.json — the current layout's figures (a -big run, so
//     it includes the million-node side-1458 point);
//   - BENCH_SCALE.baseline.json — the modeled pre-slab layout on the
//     identical workload.
//
// The gate (a) re-measures bytes/node at the largest non-Big side and
// fails on a >10% regression against the committed figure (MemReport
// counts capacities, so the measurement is deterministic — any drift is
// a real layout change someone must re-commit deliberately), and (b)
// requires the committed million-node point to sit at least 4× below
// the baseline.

func loadBenchPhases(t *testing.T, name string) map[string]int64 {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("read committed %s: %v", name, err)
	}
	var rep struct {
		Phases map[string]int64 `json:"phases"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	if len(rep.Phases) == 0 {
		t.Fatalf("%s has no phases", name)
	}
	return rep.Phases
}

func TestScaleMemoryBudgetGate(t *testing.T) {
	committed := loadBenchPhases(t, "BENCH_SCALE.json")
	side := scaleSides[len(scaleSides)-1]
	key := "scale-486-bytes-node-milli"
	want, ok := committed[key]
	if !ok || want <= 0 {
		t.Fatalf("committed BENCH_SCALE.json lacks %s", key)
	}
	cell, err := measureScale(side, 1, 1)
	if err != nil {
		t.Fatalf("measureScale side=%d: %v", side, err)
	}
	if cell.bytesNodeMilli*10 > want*11 {
		t.Errorf("bytes/node regression at side %d: measured %d milli, committed %d milli (>10%% over budget)",
			side, cell.bytesNodeMilli, want)
	}
}

func TestScaleMillionNodeVsBaseline(t *testing.T) {
	committed := loadBenchPhases(t, "BENCH_SCALE.json")
	baseline := loadBenchPhases(t, "BENCH_SCALE.baseline.json")
	const key = "scale-1458-bytes-node-milli"
	cur, ok := committed[key]
	if !ok || cur <= 0 {
		t.Fatalf("committed BENCH_SCALE.json lacks the million-node point %s — regenerate with -big", key)
	}
	base, ok := baseline[key]
	if !ok || base <= 0 {
		t.Fatalf("BENCH_SCALE.baseline.json lacks %s", key)
	}
	if n := committed["scale-1458-n"]; n < 1_000_000 {
		t.Fatalf("largest committed point has n=%d, want ≥ 10^6", n)
	}
	if base < 4*cur {
		t.Errorf("million-node bytes/node %d milli is not ≥4× below the pre-slab baseline %d milli", cur, base)
	}
}
