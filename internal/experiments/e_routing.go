package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/stats"
)

// rpkt is the routing experiment packet.
type rpkt struct {
	dest int
	id   int32
}

// makeL1L2 builds an (l1,l2)-routing instance: every processor sends l1
// packets; destinations are drawn so no processor receives more than
// l2, biased to saturate the l2 cap on a subset of receivers.
func makeL1L2(m *mesh.Machine, l1, l2 int, rng *rand.Rand) [][]rpkt {
	items := make([][]rpkt, m.N)
	recv := make([]int, m.N)
	// Heavy receivers: the first n·l1/l2 processors take l2 each.
	heavy := m.N * l1 / l2
	if heavy < 1 {
		heavy = 1
	}
	var id int32
	for p := 0; p < m.N; p++ {
		for j := 0; j < l1; j++ {
			d := rng.Intn(heavy)
			for recv[d] >= l2 {
				d = rng.Intn(m.N)
			}
			recv[d]++
			items[p] = append(items[p], rpkt{dest: d, id: id})
			id++
		}
	}
	return items
}

// RunE5 measures general (l1,l2)-routing against the Theorem 2
// envelope √(l1·l2·n) + O(l1·√n).
func RunE5(w io.Writer, cfg Config) error {
	sides := []int{16, 32}
	if cfg.Big {
		sides = append(sides, 64)
	}
	combos := []struct{ l1, l2 int }{
		{1, 1}, {1, 4}, {1, 16}, {2, 8}, {4, 4}, {1, 64}, {4, 16},
	}
	var tb stats.Table
	tb.Add("n", "l1", "l2", "measured steps", "sqrt(l1*l2*n)", "ratio")
	for _, side := range sides {
		m := mesh.MustNew(side)
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, c := range combos {
			if c.l2 > m.N {
				continue
			}
			items := makeL1L2(m, c.l1, c.l2, rng)
			_, cost := route.RouteL1L2(m, m.Full(), items, func(p rpkt) int { return p.dest })
			envelope := sqrtf(float64(c.l1) * float64(c.l2) * float64(m.N))
			tb.Add(m.N, c.l1, c.l2, cost.Total(), int64(envelope), float64(cost.Total())/envelope)
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  Ratios should sit in a bounded band across the sweep: the measured")
	fmt.Fprintln(w, "  time scales with sqrt(l1*l2*n) plus the O(l1*sqrt(n) log n) sort term.")
	return nil
}

// makeSubmeshBounded builds an (l1,l2,δ,m)-instance on the given
// tessellation: every submesh receives exactly δ·msub packets but all
// of them target `hotPerSub` processors inside it, so l2 = δ·msub /
// hotPerSub is large while δ stays small.
func makeSubmeshBounded(m *mesh.Machine, parts, q int, delta, hotPerSub int, rng *rand.Rand) [][]rpkt {
	subs, err := m.Full().SplitQ(q, parts)
	if err != nil {
		panic(err)
	}
	items := make([][]rpkt, m.N)
	var id int32
	for _, sub := range subs {
		load := delta * sub.Size()
		for j := 0; j < load; j++ {
			src := rng.Intn(m.N)
			dst := sub.ProcAtSnake(m, j%hotPerSub)
			items[src] = append(items[src], rpkt{dest: dst, id: id})
			id++
		}
	}
	return items
}

// RunE6 compares the staged (l1,l2,δ,m)-routing of §2 against direct
// sorted-greedy routing on submesh-bounded instances, locating the
// crossover; figure F3 plots the two costs as receiver skew grows.
func RunE6(w io.Writer, cfg Config) error {
	side := 27
	q, parts := 3, 27
	m := mesh.MustNew(side)
	delta := 6
	var tb stats.Table
	tb.Add("hot/submesh", "l2", "greedy only", "direct sort+route", "(route part)", "staged total", "(route part)", "staged/direct route")
	var fx, fg, fd, fs []float64
	for _, hot := range []int{1, 2, 4, 9, 27} {
		mk := func() [][]rpkt {
			rng := rand.New(rand.NewSource(cfg.Seed))
			return makeSubmeshBounded(m, parts, q, delta, hot, rng)
		}
		_, greedyOnly := route.GreedyRoute(m, m.Full(), mk(), func(p rpkt) int { return p.dest })
		_, dc := route.RouteL1L2(m, m.Full(), mk(), func(p rpkt) int { return p.dest })
		_, sc := route.RouteStaged(m, m.Full(), q, parts, mk(), func(p rpkt) int { return p.dest })
		dRoute := dc.Coarse + dc.Fine
		sRoute := sc.Coarse + sc.Fine
		l2 := delta * (m.N / parts) / hot
		tb.Add(hot, l2, greedyOnly, dc.Total(), dRoute, sc.Total(), sRoute,
			float64(sRoute)/float64(dRoute))
		fx = append(fx, float64(l2))
		fg = append(fg, float64(greedyOnly))
		fd = append(fd, float64(dRoute))
		fs = append(fs, float64(sRoute))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  §2's condition: the staged route phase wins when l1, δ ∈ o(l2) — the")
	fmt.Fprintln(w, "  skewed (large l2) end — and loses its edge as l2 → δ. The shared sort")
	fmt.Fprintln(w, "  term is identical in both algorithms and shown only for scale.")
	fmt.Fprintln(w, "\n  F3: routing steps vs per-receiver load l2")
	stats.Plot(w, 55, 12,
		stats.Series{Name: "greedy only", X: fx, Y: fg},
		stats.Series{Name: "direct route", X: fx, Y: fd},
		stats.Series{Name: "staged route", X: fx, Y: fs})
	return nil
}
