package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/stats"
	"meshpram/internal/workload"
)

// RunE16 measures the torus extension: wrap-around links halve per-axis
// distances on machine-spanning routes, so both raw greedy routing and
// the protocol's global stage speed up; submesh-confined stages are
// topology-independent.
func RunE16(w io.Writer, cfg Config) error {
	// Part A: raw routing, random permutations and shifted patterns.
	m := mesh.MustNew(16)
	var tb stats.Table
	tb.Add("traffic", "mesh cycles", "torus cycles", "torus/mesh")
	type pattern struct {
		name string
		mk   func() [][]int
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(m.N)
	patterns := []pattern{
		{"random permutation", func() [][]int {
			items := make([][]int, m.N)
			for p := 0; p < m.N; p++ {
				items[p] = append(items[p], perm[p])
			}
			return items
		}},
		{"shift by (12,12)", func() [][]int {
			items := make([][]int, m.N)
			for p := 0; p < m.N; p++ {
				items[p] = append(items[p], m.IDOf((m.RowOf(p)+12)%16, (m.ColOf(p)+12)%16))
			}
			return items
		}},
		{"transpose", func() [][]int {
			items := make([][]int, m.N)
			for p := 0; p < m.N; p++ {
				items[p] = append(items[p], m.IDOf(m.ColOf(p), m.RowOf(p)))
			}
			return items
		}},
	}
	id := func(d int) int { return d }
	for _, pat := range patterns {
		_, meshCycles := route.GreedyRoute(m, m.Full(), pat.mk(), id)
		_, torusCycles := route.GreedyRouteTorus(m, pat.mk(), id)
		tb.Add(pat.name, meshCycles, torusCycles, float64(torusCycles)/float64(meshCycles))
	}
	tb.Render(w)

	// Part B: the full protocol with and without wrap links.
	p := hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
	var tb2 stats.Table
	tb2.Add("machine", "global route fwd", "return", "total steps")
	for _, v := range []struct {
		name  string
		torus bool
	}{{"mesh (paper)", false}, {"torus (extension)", true}} {
		sim, err := core.New(p, core.Config{Torus: v.torus, Workers: cfg.Workers})
		if err != nil {
			return err
		}
		vars := workload.RandomDistinct(sim.Scheme().Vars(), sim.Mesh().N, cfg.Seed)
		_, st := sim.Step(vars.Mixed(1))
		tb2.Add(v.name, st.StageForward[sim.Scheme().K+1], st.Return, st.Total())
	}
	fmt.Fprintln(w)
	tb2.Render(w)
	fmt.Fprintln(w, "\n  Wrap links shorten only the machine-spanning phases (the k+1-th stage")
	fmt.Fprintln(w, "  and the last return leg); sorting and the submesh stages are unchanged,")
	fmt.Fprintln(w, "  so the end-to-end gain is bounded by their share of the total.")
	return nil
}
