package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"meshpram/internal/bibd"
	"meshpram/internal/gf"
	"meshpram/internal/stats"
)

// RunE3 verifies Definition 1 (λ = 1, degrees) exhaustively on small
// designs and by sampling on large ones, plus Lemma 1 (strong
// expansion) on random neighbor subsets.
func RunE3(w io.Writer, cfg Config) error {
	var tb stats.Table
	tb.Add("q", "d", "inputs f(d)", "outputs q^d", "pairs checked", "lambda=1", "expansion trials", "Lemma 1 holds")
	cases := []struct {
		q, d       int
		exhaustive bool
	}{
		{3, 2, true}, {3, 3, true}, {4, 2, true}, {5, 2, true},
		{3, 5, false}, {9, 2, false},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, c := range cases {
		g := bibd.MustNew(gf.MustNew(c.q), c.d)
		pairs, lambdaOK := 0, true
		if c.exhaustive {
			for u1 := 0; u1 < g.Outputs(); u1++ {
				for u2 := u1 + 1; u2 < g.Outputs(); u2++ {
					pairs++
					if len(g.CommonInputs(u1, u2)) != 1 {
						lambdaOK = false
					}
				}
			}
		} else {
			for t := 0; t < 300; t++ {
				u1, u2 := rng.Intn(g.Outputs()), rng.Intn(g.Outputs())
				if u1 == u2 {
					continue
				}
				pairs++
				if len(g.CommonInputs(u1, u2)) != 1 {
					lambdaOK = false
				}
			}
		}
		// Lemma 1: |Γ_k(S)| = (k−1)|S| + 1.
		trials, expansionOK := 0, true
		for t := 0; t < 50; t++ {
			u := rng.Intn(g.Outputs())
			deg := g.Degree(u)
			var S []int
			for r := 0; r < deg; r++ {
				if rng.Intn(2) == 0 {
					S = append(S, g.InputAtRank(u, r))
				}
			}
			if len(S) == 0 {
				continue
			}
			k := 1 + rng.Intn(c.q)
			trials++
			reached := map[int]bool{u: true}
			var buf []int
			for _, v := range S {
				buf = g.OutputsOf(v, buf[:0])
				cnt := 1
				for _, out := range buf {
					if cnt == k {
						break
					}
					if out != u {
						reached[out] = true
						cnt++
					}
				}
			}
			if len(reached) != (k-1)*len(S)+1 {
				expansionOK = false
			}
		}
		tb.Add(c.q, c.d, g.Inputs(), g.Outputs(), pairs, lambdaOK, trials, expansionOK)
	}
	tb.Render(w)
	return nil
}

// RunE4 verifies Theorem 5: for every subgraph size m the output
// degrees of the balanced selection stay within ⌊qm/q^d⌋..⌈qm/q^d⌉.
func RunE4(w io.Writer, cfg Config) error {
	var tb stats.Table
	tb.Add("q", "d", "m sweep", "degree spread observed", "within Thm 5 band", "edge sum = q*m")
	for _, c := range []struct{ q, d int }{{3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		f := gf.MustNew(c.q)
		fd := bibd.F(c.q, c.d)
		ok, sumOK := true, true
		maxSpread := 0
		for m := 1; m <= fd; m++ {
			g := bibd.MustNewSub(f, c.d, m)
			lo, hi := 1<<30, 0
			sum := 0
			for u := 0; u < g.Outputs(); u++ {
				deg := g.Degree(u)
				sum += deg
				if deg < lo {
					lo = deg
				}
				if deg > hi {
					hi = deg
				}
			}
			if sum != c.q*m {
				sumOK = false
			}
			floor := c.q * m / g.Outputs()
			ceil := floor
			if c.q*m%g.Outputs() != 0 {
				ceil++
			}
			if lo < floor || hi > ceil {
				ok = false
			}
			if hi-lo > maxSpread {
				maxSpread = hi - lo
			}
		}
		tb.Add(c.q, c.d, fmt.Sprintf("1..%d", fd), maxSpread, ok, sumOK)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  Spread ≤ 1 for every m: the Appendix selection V1 ∪ V2 ∪ V3 balances")
	fmt.Fprintln(w, "  page counts exactly as Theorem 5 claims.")
	return nil
}
