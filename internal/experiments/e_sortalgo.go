package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/stats"
	"meshpram/internal/workload"
)

// RunE17 measures the sorting-substitution ablation: DESIGN.md §2
// replaces the paper's cited O(√n) mesh sorts with shearsort
// (O(√n·log n)); the Marberg–Gafni RotateSort implementation closes
// most of that gap. Part A compares the raw sorts; part B runs the full
// protocol with each sort on its global stage.
func RunE17(w io.Writer, cfg Config) error {
	// Part A: raw sort cost across sides.
	var tb stats.Table
	tb.Add("side", "items/proc", "shearsort steps", "rotatesort steps", "rotate/shear")
	type it struct{ key uint64 }
	for _, side := range []int{9, 16, 25, 49, 81} {
		m := mesh.MustNew(side)
		r := m.Full()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, load := range []int{1, 4} {
			mk := func() [][]it {
				items := make([][]it, m.N)
				for p := 0; p < m.N; p++ {
					for j := 0; j < load; j++ {
						items[p] = append(items[p], it{rng.Uint64() >> 1})
					}
				}
				return items
			}
			_, _, shear := route.SortSnake(m, r, mk(), func(v it) uint64 { return v.key })
			_, _, rot := route.SortSnakeWith(route.RotateSort, m, r, mk(), func(v it) uint64 { return v.key })
			tb.Add(side, load, shear, rot, float64(rot)/float64(shear))
		}
	}
	tb.Render(w)

	// Part B: the protocol's global stage with each sort (side 81,
	// where rotatesort applies to the full mesh; submesh stages and
	// culling keep shearsort accounting in both rows).
	p := hmos.Params{Side: 81, Q: 3, D: 7, K: 2}
	var tb2 stats.Table
	tb2.Add("protocol sort", "sort steps", "total steps")
	for _, v := range []struct {
		name string
		algo route.SortAlgo
	}{{"shearsort (paper reproduction default)", route.ShearSort}, {"rotatesort (E17 extension)", route.RotateSort}} {
		sim, err := core.New(p, core.Config{Sort: v.algo, Workers: cfg.Workers})
		if err != nil {
			return err
		}
		vars := workload.RandomDistinct(sim.Scheme().Vars(), sim.Mesh().N, cfg.Seed)
		_, st := sim.Step(vars.Reads())
		tb2.Add(v.name, st.Sort, st.Total())
	}
	fmt.Fprintln(w)
	tb2.Render(w)
	fmt.Fprintln(w, "\n  RotateSort's O(√n) phase count overtakes shearsort's O(√n·log n)")
	fmt.Fprintln(w, "  around side 25–81; with the paper's cited [KSS94/Kun93] sorts the")
	fmt.Fprintln(w, "  log factor would vanish from every sorting term of T(n).")
	return nil
}
