package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/culling"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/stats"
	"meshpram/internal/workload"
)

// RunE2 verifies Theorem 3: after culling, the number of selected
// copies in any level-i page stays below 4q^k·n^{1−1/2^i}; it also
// reports the uncontrolled loads of the no-culling ablation, and draws
// figure F2 (per-level congestion profile).
func RunE2(w io.Writer, cfg Config) error {
	params := []hmos.Params{
		{Side: 27, Q: 3, D: 5, K: 2},
		{Side: 27, Q: 3, D: 4, K: 3},
	}
	if cfg.Big {
		params = append(params, hmos.Params{Side: 81, Q: 3, D: 7, K: 2})
	}
	var tb stats.Table
	tb.Add("machine", "workload", "level", "max load (culled)", "bound 4q^k n^(1-1/2^i)", "ratio", "max load (no culling)")
	var fx, fy, fb []float64
	for _, p := range params {
		s, err := hmos.New(p)
		if err != nil {
			return err
		}
		m := mesh.MustNew(p.Side)
		workloads := map[string]workload.Vars{
			"random":    workload.RandomDistinct(s.Vars(), m.N, cfg.Seed),
			"dense":     workload.Stride(s.Vars(), m.N, 1),
			"modulehot": workload.ModuleHot(s, 0, m.N),
		}
		for _, name := range []string{"random", "dense", "modulehot"} {
			vars := workloads[name]
			reqs := make([]culling.Request, len(vars))
			for i, v := range vars {
				reqs[i] = culling.Request{Origin: i % m.N, Var: v}
			}
			culled := culling.Run(s, m, reqs)
			raw := culling.SelectWithoutCulling(s, m, reqs)
			for i := 1; i <= p.K; i++ {
				load, bound := culled.MaxLoad(i)
				rawLoad, _ := raw.MaxLoad(i)
				tb.Add(fmt.Sprintf("n=%d d=%d k=%d", m.N, p.D, p.K), name, i,
					load, bound, float64(load)/float64(bound), rawLoad)
				if name == "random" && p.K == 2 {
					fx = append(fx, float64(i))
					fy = append(fy, float64(load))
					fb = append(fb, float64(bound))
				}
			}
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  F2: level-i congestion, measured vs Theorem 3 bound (random workload)")
	stats.Plot(w, 50, 10,
		stats.Series{Name: "measured", X: fx, Y: fy},
		stats.Series{Name: "bound", X: fx, Y: fb})
	return nil
}

// RunE7 checks the culling cost shape of equation (2): steps ≈
// c·k·q^k·√n with a machine-independent constant.
func RunE7(w io.Writer, cfg Config) error {
	params := []hmos.Params{
		{Side: 9, Q: 3, D: 3, K: 2},
		{Side: 27, Q: 3, D: 4, K: 2},
		{Side: 27, Q: 3, D: 4, K: 3},
		{Side: 27, Q: 3, D: 5, K: 1},
		{Side: 27, Q: 3, D: 5, K: 2},
		{Side: 16, Q: 4, D: 3, K: 2},
	}
	if cfg.Big {
		params = append(params, hmos.Params{Side: 81, Q: 3, D: 7, K: 2})
	}
	var tb stats.Table
	tb.Add("n", "q", "k", "culling steps", "k*q^k*sqrt(n)", "constant")
	for _, p := range params {
		s, err := hmos.New(p)
		if err != nil {
			return err
		}
		m := mesh.MustNew(p.Side)
		vars := workload.RandomDistinct(s.Vars(), m.N, cfg.Seed)
		reqs := make([]culling.Request, len(vars))
		for i, v := range vars {
			reqs[i] = culling.Request{Origin: i % m.N, Var: v}
		}
		res := culling.Run(s, m, reqs)
		shape := float64(p.K) * float64(s.Redundant) * sqrtf(float64(m.N))
		tb.Add(m.N, p.Q, p.K, res.Steps, int64(shape), float64(res.Steps)/shape)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  The 'constant' column should stay within a small band (the shearsort")
	fmt.Fprintln(w, "  log n factor makes it drift up slowly with n; see DESIGN.md §2).")
	return nil
}
