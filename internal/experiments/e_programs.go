package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/hmos"
	"meshpram/internal/pram"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
)

// RunE15 measures the slowdown at the application level: whole PRAM
// programs (prefix sums, tree reduction, odd-even sort) run unchanged
// on the ideal PRAM and on the mesh; the per-PRAM-step cost should
// follow the per-step figures of E1 — the end-to-end form of
// Theorem 1's statement that "one computational step can be simulated
// in time T(n)".
func RunE15(w io.Writer, cfg Config) error {
	machines := []hmos.Params{
		{Side: 9, Q: 3, D: 3, K: 2},
		{Side: 27, Q: 3, D: 4, K: 2},
	}
	mkPrograms := func(n int) []struct {
		name string
		prog pram.Program
	} {
		in := make([]pram.Word, n)
		for i := range in {
			in[i] = pram.Word((i*37 + 11) % 97)
		}
		return []struct {
			name string
			prog pram.Program
		}{
			{"prefix-sum", &pram.PrefixSum{In: in}},
			{"reduce", &pram.Reduce{In: in}},
			{"odd-even sort", &pram.OddEvenSort{In: in}},
		}
	}

	var tb stats.Table
	tb.Add("machine n", "program", "PRAM steps", "mesh steps", "mesh steps / PRAM step", "per-step / sqrt(n)")
	for _, p := range machines {
		n := p.Side * p.Side
		size := n / 2
		for _, pg := range mkPrograms(size) {
			scfg, err := sim.New(sim.Side(p.Side), sim.Q(p.Q), sim.D(p.D), sim.K(p.K),
				sim.Workers(cfg.Workers))
			if err != nil {
				return err
			}
			b, err := pram.NewBackend(pram.BackendMesh, scfg)
			if err != nil {
				return err
			}
			mb := b.(*pram.Mesh)
			steps, err := pram.Run(pg.prog, mb)
			if err != nil {
				return err
			}
			perStep := float64(mb.Steps()) / float64(steps)
			tb.Add(n, pg.name, steps, mb.Steps(), int64(perStep), perStep/sqrtf(float64(n)))
			cfg.Report.AddTrace("pram-mesh", trace.Export(mb.Sim.Ledger().Last()))
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  Per-PRAM-step cost normalized by sqrt(n) stays in the same band as the")
	fmt.Fprintln(w, "  batch measurements of E1 — the simulation's overhead is workload-")
	fmt.Fprintln(w, "  independent, as a worst-case deterministic guarantee must be.")
	return nil
}
