package experiments

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// reportSchema flattens a marshaled Report into its sorted key paths:
// the top-level JSON keys plus one "phases.<k>" / "traces.<k>" entry
// per map key. Values are deliberately excluded — the golden pins the
// shape of BENCH_FAULT.json, not the measurements.
func reportSchema(t *testing.T, r *Report) []string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	var keys []string
	for k, v := range m {
		keys = append(keys, k)
		if k == "phases" || k == "traces" {
			var sub map[string]json.RawMessage
			if err := json.Unmarshal(v, &sub); err != nil {
				t.Fatalf("unmarshal %s: %v", k, err)
			}
			for sk := range sub {
				keys = append(keys, k+"."+sk)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// TestFaultReportSchema runs the FAULT experiment at the small size and
// diffs the schema of its BENCH_FAULT.json against the checked-in
// golden. A mismatch means the emitted benchmark format changed:
// update testdata/BENCH_FAULT.schema.golden deliberately (and any
// downstream consumers) rather than silently shifting the schema.
func TestFaultReportSchema(t *testing.T) {
	e, ok := Lookup("FAULT")
	if !ok {
		t.Fatal("FAULT experiment not registered")
	}
	rep := &Report{ID: e.ID, Claim: e.Claim}
	cfg := Config{Seed: 1, Workers: 1, Report: rep}
	if err := e.Run(io.Discard, cfg); err != nil {
		t.Fatalf("RunFault: %v", err)
	}
	rep.WallNs = 1 // always set by cmd/experiments; pin its presence
	got := reportSchema(t, rep)

	goldenPath := filepath.Join("testdata", "BENCH_FAULT.schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	wantLines := strings.Fields(strings.TrimSpace(string(want)))
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("BENCH_FAULT.json schema drifted from %s\n got:\n  %s\nwant:\n  %s",
			goldenPath, strings.Join(got, "\n  "), strings.Join(wantLines, "\n  "))
	}
}
