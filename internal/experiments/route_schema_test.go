package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRouteReportSchema runs the ROUTE experiment and diffs the schema
// of its BENCH_ROUTE.json against the checked-in golden, mirroring
// TestFaultReportSchema: the golden pins the emitted key set (one
// ns-op / allocs-op / cycles triple per instance×side×workers row),
// not the measurements. Update testdata/BENCH_ROUTE.schema.golden
// deliberately when the row set changes.
func TestRouteReportSchema(t *testing.T) {
	e, ok := Lookup("ROUTE")
	if !ok {
		t.Fatal("ROUTE experiment not registered")
	}
	rep := &Report{ID: e.ID, Claim: e.Claim}
	cfg := Config{Seed: 1, Workers: 1, Report: rep}
	if err := e.Run(io.Discard, cfg); err != nil {
		t.Fatalf("RunRoute: %v", err)
	}
	rep.WallNs = 1 // always set by cmd/experiments; pin its presence
	got := reportSchema(t, rep)

	goldenPath := filepath.Join("testdata", "BENCH_ROUTE.schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	wantLines := strings.Fields(strings.TrimSpace(string(want)))
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("BENCH_ROUTE.json schema drifted from %s\n got:\n  %s\nwant:\n  %s",
			goldenPath, strings.Join(got, "\n  "), strings.Join(wantLines, "\n  "))
	}
}
