package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// churnRates is the RECOVER sweep: per-step module death probability.
var churnRates = []float64{0.001, 0.002, 0.005, 0.010}

// churnKey renders a churn rate as the stable key used in BENCH_RECOVER
// phase names ("deaths@0.005", …).
func churnKey(r float64) string { return fmt.Sprintf("%.3f", r) }

// RunRecover measures the self-healing layer under deterministic churn:
// seeded schedules kill (and later revive) modules while a full-machine
// mixed workload runs. For each churn rate the same timeline is played
// twice — once with the eager majority-scrub repair and once with
// repair off — and the sweep reports module deaths, copies rebuilt
// from the surviving majority, residual (unrebuildable) copies, the
// mesh steps charged to the repair phase (the recovery cost), and the
// unrecoverable-variable counts that show what repair buys: the eager
// run absorbs deaths the unrepaired run cannot.
func RunRecover(w io.Writer, cfg Config) error {
	side, d, steps := 9, 3, 40
	if cfg.Big {
		side, d, steps = 27, 5, 80
	}
	// Killed modules come back after repairAfter steps — long enough
	// that an unscrubbed death is observed, short enough that churn does
	// not simply eat the whole machine at the top rate.
	const repairAfter = 12

	var tb stats.Table
	tb.Add("churn", "deaths", "scrubs", "repaired", "residual", "repair steps", "unrec eager", "unrec off")
	var lastTree *trace.Node
	for i, rate := range churnRates {
		sch := fault.Churn{
			ModuleRate: rate,
			Repair:     repairAfter,
			Horizon:    int64(steps),
			Seed:       cfg.Seed,
		}.Build(side)
		eager, err := runRecoverCell(side, d, cfg, sch, core.RepairEager, steps)
		if err != nil {
			return err
		}
		off, err := runRecoverCell(side, d, cfg, sch, core.RepairOff, steps)
		if err != nil {
			return err
		}
		rs := eager.repair
		key := churnKey(rate)
		tb.Add(key, rs.ModuleDeaths, rs.Scrubs, rs.Repaired, rs.Residual, rs.Steps,
			eager.unrecoverable, off.unrecoverable)
		cfg.Report.SetPhase("deaths@"+key, int64(rs.ModuleDeaths))
		cfg.Report.SetPhase("repaired@"+key, int64(rs.Repaired))
		cfg.Report.SetPhase("residual@"+key, int64(rs.Residual))
		cfg.Report.SetPhase("repairsteps@"+key, rs.Steps)
		cfg.Report.SetPhase("unrec-eager@"+key, int64(eager.unrecoverable))
		cfg.Report.SetPhase("unrec-off@"+key, int64(off.unrecoverable))
		if i == 0 {
			cfg.Report.SetSteps(eager.steps)
		}
		lastTree = eager.tree
	}
	tb.Render(w)
	cfg.Report.AddTrace("recover-step", lastTree)
	fmt.Fprintln(w, "\n  Both columns replay the identical seeded death timeline; the only")
	fmt.Fprintln(w, "  difference is the scrub. Repaired copies were rebuilt from a surviving")
	fmt.Fprintln(w, "  target set and routed to spares through the fault-aware router, charged")
	fmt.Fprintln(w, "  to the repair phase (\"repair steps\"). Residual copies lacked a live")
	fmt.Fprintln(w, "  majority at scrub time and stay quarantined until a fresh write.")
	return nil
}

// recoverCell is one measured (schedule, policy) run.
type recoverCell struct {
	steps         int64
	unrecoverable int
	repair        core.RepairStats
	tree          *trace.Node
}

// runRecoverCell plays `steps` full-machine mixed batches against the
// given schedule under the given repair policy and sums the
// measurements.
func runRecoverCell(side, d int, cfg Config, sch *fault.Schedule, policy core.RepairPolicy, steps int) (recoverCell, error) {
	c, err := sim.New(
		sim.Side(side), sim.Q(3), sim.D(d), sim.K(2), sim.Workers(cfg.Workers),
		sim.FaultSchedule(sch), sim.Repair(policy),
	)
	if err != nil {
		return recoverCell{}, err
	}
	s, err := c.NewSimulator()
	if err != nil {
		return recoverCell{}, err
	}
	var cell recoverCell
	n := s.Mesh().N
	for r := 0; r < steps; r++ {
		vars := workload.RandomDistinct(s.Scheme().Vars(), n, cfg.Seed+int64(r))
		_, st, err := s.StepChecked(vars.Mixed(1000))
		if err != nil {
			return recoverCell{}, err
		}
		cell.steps += st.Total()
		if rep := s.LastReport(); rep != nil {
			cell.unrecoverable += len(rep.Unrecoverable)
		}
	}
	cell.repair = s.RepairStats()
	cell.tree = trace.Export(s.Ledger().Last())
	return cell, nil
}
