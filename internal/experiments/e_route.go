package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/stats"
)

// routeKinds are the router micro-benchmark workloads, mirroring
// BenchmarkGreedyRoute{Dense,Transpose,Sparse} in internal/route:
// dense protocol-stage traffic, the adversarial transpose permutation,
// and the sparse shape of a repair scrub.
var routeKinds = []string{"dense", "transpose", "sparse"}

// routeInstance rebuilds one benchmark workload (see the route package
// benchmarks for the shapes).
func routeInstance(kind string, m *mesh.Machine, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	dests := make([][]int, m.N)
	switch kind {
	case "dense":
		for p := 0; p < m.N; p++ {
			for j := 0; j < 4; j++ {
				dests[p] = append(dests[p], rng.Intn(m.N))
			}
		}
	case "transpose":
		for p := 0; p < m.N; p++ {
			dests[p] = append(dests[p], m.IDOf(m.ColOf(p), m.RowOf(p)))
		}
	case "sparse":
		for p := 0; p < m.N; p += 16 {
			dests[p] = append(dests[p], rng.Intn(m.N))
		}
	default:
		panic("unknown route instance " + kind)
	}
	return dests
}

// routeCell is one measured (kind, side, workers) configuration.
type routeCell struct {
	nsOp     int64
	allocsOp int64
	cycles   int64 // charged mesh cycles (mode-invariant)
	executed int64 // physically executed iterations (≤ cycles)
}

// measureRoute times iters steady-state calls of a persistent engine on
// the instance (one untimed warm-up call populates the engine's and the
// delivery buffer's capacity, so the figure reflects the reuse path a
// hot loop sees).
func measureRoute(kind string, side, workers, iters int, seed int64) routeCell {
	m := mesh.MustNew(side)
	if workers > 1 {
		m.SetParallel(workers)
	}
	dests := routeInstance(kind, m, seed)
	items := make([][]int, m.N)
	dst := make([][]int, m.N)
	ident := func(d int) int { return d }
	eng := route.NewEngine[int](m)
	full := m.Full()
	var cell routeCell
	var ms0, ms1 runtime.MemStats
	for it := -1; it < iters; it++ {
		for p := range items {
			items[p] = append(items[p][:0], dests[p]...)
		}
		if it == 0 {
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		_, cycles := eng.Route(dst, full, items, ident)
		if it >= 0 {
			cell.nsOp += time.Since(start).Nanoseconds()
			cell.cycles = cycles
			cell.executed = eng.Executed()
		}
		for p := range dst {
			dst[p] = dst[p][:0]
		}
	}
	runtime.ReadMemStats(&ms1)
	cell.nsOp /= int64(iters)
	cell.allocsOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(iters)
	return cell
}

// RunRoute is the ROUTE entry: the allocation-lean greedy routing
// engine's micro-benchmark, the committed counterpart of the
// pre-engine BENCH_ROUTE.baseline.json. It measures ns/op, allocs/op
// and the cycle count for dense, transpose and sparse instances at
// sides 27 and 81, plus the workers=4 sharded sweep at side 81.
// Delivered traffic is bit-identical across worker widths (pinned by
// the route package's equivalence tests), so the workers rows measure
// overhead/speedup only. Note: on a single-core host the sharded sweep
// cannot beat the sequential one; compare the workers rows against
// runtime.NumCPU when reading the figures.
func RunRoute(w io.Writer, cfg Config) error {
	type rowKey struct {
		kind    string
		side    int
		workers int
	}
	rows := []rowKey{}
	for _, kind := range routeKinds {
		rows = append(rows,
			rowKey{kind, 27, 1},
			rowKey{kind, 81, 1},
			rowKey{kind, 81, 4},
		)
	}
	var tb stats.Table
	tb.Add("instance", "side", "workers", "ns/op", "allocs/op", "cycles charged", "cycles executed")
	for _, rk := range rows {
		iters := 3
		if rk.side >= 81 {
			iters = 2
		}
		cell := measureRoute(rk.kind, rk.side, rk.workers, iters, cfg.Seed)
		if cell.executed > cell.cycles {
			return fmt.Errorf("route %s side=%d workers=%d: executed %d > charged %d cycles",
				rk.kind, rk.side, rk.workers, cell.executed, cell.cycles)
		}
		tb.Add(rk.kind, rk.side, rk.workers, cell.nsOp, cell.allocsOp, cell.cycles, cell.executed)
		key := fmt.Sprintf("%s-%d", rk.kind, rk.side)
		if rk.workers > 1 {
			key = fmt.Sprintf("%s-workers%d", key, rk.workers)
		}
		cfg.Report.SetPhase(key+"-ns-op", cell.nsOp)
		cfg.Report.SetPhase(key+"-allocs-op", cell.allocsOp)
		cfg.Report.SetPhase(key+"-cycles", cell.cycles)
		cfg.Report.SetPhase(key+"-cycles-executed", cell.executed)
		if rk.kind == "dense" && rk.side == 81 && rk.workers == 1 {
			cfg.Report.SetSteps(cell.cycles)
		}
	}
	tb.Render(w)
	fmt.Fprintf(w, "\nhost cores: %d (workers rows show sharding overhead when cores=1)\n", runtime.NumCPU())
	fmt.Fprintf(w, "compare against the committed pre-engine BENCH_ROUTE.baseline.json\n")
	return nil
}
