package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/faultview"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// gossipRates is the GOSSIP sweep: per-step module death probability of
// the seeded churn timeline each knowledge model replays.
var gossipRates = []float64{0.002, 0.005, 0.010}

// RunGossip measures what local fault knowledge costs: for each churn
// rate the identical seeded timeline is played twice under eager
// repair — once with the omniscient global fault view and once with the
// gossip-propagated local view — and the sweep reports the discovery
// latency (steps from a module death to its notice reaching the scrub
// coordinator; zero by construction in global mode, where the scrub
// sees every death instantly), the staleness of applied notices, and
// the price of acting on stale beliefs: extra charged mesh steps
// (detours, probes, delayed repair) and extra lost packets relative to
// the global baseline.
func RunGossip(w io.Writer, cfg Config) error {
	side, d, steps := 9, 3, 40
	if cfg.Big {
		side, d, steps = 27, 5, 80
	}
	const repairAfter = 12

	var tb stats.Table
	tb.Add("churn", "deaths", "discovered", "disc steps", "stale max", "steps glob", "steps local", "lost g/l", "unrec g/l")
	var lastTree *trace.Node
	for i, rate := range gossipRates {
		key := churnKey(rate)
		sch := fault.Churn{
			ModuleRate: rate,
			Repair:     repairAfter,
			Horizon:    int64(steps),
			Seed:       cfg.Seed,
		}.Build(side)
		glob, err := runGossipCell(side, d, cfg, sch, faultview.Global, steps)
		if err != nil {
			return err
		}
		loc, err := runGossipCell(side, d, cfg, sch, faultview.Local, steps)
		if err != nil {
			return err
		}
		tb.Add(key, glob.repair.ModuleDeaths,
			loc.repair.Discovered, loc.repair.DiscoverySteps, loc.view.StaleMax,
			glob.steps, loc.steps,
			fmt.Sprintf("%d/%d", glob.lost, loc.lost),
			fmt.Sprintf("%d/%d", glob.unrecoverable, loc.unrecoverable))
		cfg.Report.SetPhase("deaths@"+key, int64(glob.repair.ModuleDeaths))
		cfg.Report.SetPhase("discovered@"+key, int64(loc.repair.Discovered))
		cfg.Report.SetPhase("disclatency@"+key, loc.repair.DiscoverySteps)
		cfg.Report.SetPhase("disclatency-global@"+key, glob.repair.DiscoverySteps)
		cfg.Report.SetPhase("stalemax@"+key, loc.view.StaleMax)
		cfg.Report.SetPhase("notices@"+key, loc.view.Notices)
		cfg.Report.SetPhase("steps-global@"+key, glob.steps)
		cfg.Report.SetPhase("steps-local@"+key, loc.steps)
		cfg.Report.SetPhase("lost-global@"+key, int64(glob.lost))
		cfg.Report.SetPhase("lost-local@"+key, int64(loc.lost))
		cfg.Report.SetPhase("unrec-global@"+key, int64(glob.unrecoverable))
		cfg.Report.SetPhase("unrec-local@"+key, int64(loc.unrecoverable))
		if i == 0 {
			cfg.Report.SetSteps(loc.steps)
		}
		lastTree = loc.tree
	}
	tb.Render(w)
	cfg.Report.AddTrace("gossip-step", lastTree)
	fmt.Fprintln(w, "\n  Both columns replay the identical seeded death timeline; the only")
	fmt.Fprintln(w, "  difference is who knows about the faults. The global baseline repairs")
	fmt.Fprintln(w, "  every death the step it happens (discovery latency identically zero);")
	fmt.Fprintln(w, "  the local view waits for a hop-by-hop death notice to gossip its way to")
	fmt.Fprintln(w, "  the scrub coordinator (\"disc steps\" = summed steps from death to")
	fmt.Fprintln(w, "  notice arrival) and routes on possibly stale beliefs in the meantime")
	fmt.Fprintln(w, "  (\"stale max\" = oldest notice ever applied, in gossip rounds). A death")
	fmt.Fprintln(w, "  whose neighbors are all dead is never witnessed: \"discovered\" can lag")
	fmt.Fprintln(w, "  \"deaths\" permanently, and those copies are only rebuilt by a later")
	fmt.Fprintln(w, "  write. Deferred and forgone scrubs can even make the local run cheaper")
	fmt.Fprintln(w, "  in charged steps — the real price is the window of degraded majorities")
	fmt.Fprintln(w, "  (extra lost packets / unrecoverable reads) while notices are in flight.")
	return nil
}

// gossipCell is one measured (schedule, knowledge model) run.
type gossipCell struct {
	steps         int64
	lost          int
	unrecoverable int
	repair        core.RepairStats
	view          faultview.Stats
	tree          *trace.Node
}

// runGossipCell plays `steps` full-machine mixed batches against the
// given schedule under eager repair and the given fault-knowledge
// model, summing the measurements.
func runGossipCell(side, d int, cfg Config, sch *fault.Schedule, view faultview.Mode, steps int) (gossipCell, error) {
	c, err := sim.New(
		sim.Side(side), sim.Q(3), sim.D(d), sim.K(2), sim.Workers(cfg.Workers),
		sim.FaultSchedule(sch), sim.Repair(core.RepairEager),
		sim.FaultView(view), sim.FaultViewSeed(cfg.Seed),
	)
	if err != nil {
		return gossipCell{}, err
	}
	s, err := c.NewSimulator()
	if err != nil {
		return gossipCell{}, err
	}
	var cell gossipCell
	n := s.Mesh().N
	for r := 0; r < steps; r++ {
		vars := workload.RandomDistinct(s.Scheme().Vars(), n, cfg.Seed+int64(r))
		_, st, err := s.StepChecked(vars.Mixed(1000))
		if err != nil {
			return gossipCell{}, err
		}
		cell.steps += st.Total()
		if rep := s.LastReport(); rep != nil {
			cell.lost += rep.LostPackets
			cell.unrecoverable += len(rep.Unrecoverable)
		}
	}
	cell.repair = s.RepairStats()
	if v := s.FaultView(); v != nil {
		cell.view = v.Stats()
	}
	cell.tree = trace.Export(s.Ledger().Last())
	return cell, nil
}
