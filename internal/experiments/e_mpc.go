package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/mpc"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// RunE18 places the paper in its lineage: the same BIBD memory
// organization on the MPC (complete interconnection; [PP93a], where
// only module contention costs time) versus on the mesh (this paper,
// where routing costs too). The MPC column isolates the contention
// component; the difference is the price of a realistic bounded-degree
// network — the gap the paper's staged protocol is engineered to keep
// within n^{1/2+ε}.
func RunE18(w io.Writer, cfg Config) error {
	var tb stats.Table
	tb.Add("n", "workload", "MPC max module load", "MPC steps", "mesh steps", "mesh/MPC")
	for _, d := range []int{4, 6} {
		m, err := mpc.New(3, d)
		if err != nil {
			return err
		}
		var meshParams hmos.Params
		switch d {
		case 4:
			meshParams = hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
		case 6:
			meshParams = hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
		}
		sim, err := core.New(meshParams, core.Config{Workers: cfg.Workers})
		if err != nil {
			return err
		}
		n := m.N
		// Random batch (note: MPC memory is Θ(n²), mesh memory n^α at
		// the largest feasible d — a structural difference reported as
		// is; both serve n distinct requests).
		rvMPC := workload.RandomDistinct(m.Vars(), n, cfg.Seed)
		rvMesh := workload.RandomDistinct(sim.Scheme().Vars(), n, cfg.Seed)
		opsMPC := make([]mpc.Op, len(rvMPC))
		for i, v := range rvMPC {
			opsMPC[i] = mpc.Op{Origin: i, Var: v}
		}
		_, stMPC := m.Step(opsMPC)
		cfg.Report.AddTrace("mpc", trace.Export(m.Ledger().Last()))
		_, stMesh := sim.Step(rvMesh.Reads())
		tb.Add(n, "random", stMPC.MaxLoad, stMPC.Steps, stMesh.Total(),
			float64(stMesh.Total())/float64(stMPC.Steps))

		// Module-hot adversary on both machines.
		deg := m.G.Degree(0)
		count := min(deg, n)
		hotMPC := make([]mpc.Op, count)
		for r := 0; r < count; r++ {
			hotMPC[r] = mpc.Op{Origin: r, Var: m.G.InputAtRank(0, r)}
		}
		_, stMPC2 := m.Step(hotMPC)
		hotMesh := workload.ModuleHot(sim.Scheme(), 0, n)
		_, stMesh2 := sim.Step(hotMesh.Reads())
		tb.Add(n, "module-hot", stMPC2.MaxLoad, stMPC2.Steps, stMesh2.Total(),
			float64(stMesh2.Total())/float64(stMPC2.Steps))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  On the MPC the BIBD's λ=1 property lets greedy majority selection")
	fmt.Fprintln(w, "  spread even module-hot sets to O(√n) contention ([PP93a]); the mesh")
	fmt.Fprintln(w, "  pays the same contention plus sorting and routing — the multiplier in")
	fmt.Fprintln(w, "  the last column is the cost of realism the paper's theorem bounds.")
	return nil
}
