package experiments

import (
	"fmt"
	"io"
	"math"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// slowdownPoint measures the full protocol on one machine size.
type slowdownPoint struct {
	p        hmos.Params
	n        int
	alpha    float64
	steps    float64 // mean steps per PRAM step (full batch of n requests)
	perPhase core.StepStats
	tree     *trace.Node // ledger tree of the last rep
}

// measureSlowdown runs `reps` full-machine mixed batches and averages
// the charged steps.
func measureSlowdown(p hmos.Params, cfg Config, reps int) (slowdownPoint, error) {
	sim, err := core.New(p, core.Config{Workers: cfg.Workers})
	if err != nil {
		return slowdownPoint{}, err
	}
	n := sim.Mesh().N
	var total int64
	var acc core.StepStats
	for r := 0; r < reps; r++ {
		vars := workload.RandomDistinct(sim.Scheme().Vars(), n, cfg.Seed+int64(r))
		_, st := sim.Step(vars.Mixed(1000))
		total += st.Total()
		acc.Culling += st.Culling
		acc.Sort += st.Sort
		acc.Rank += st.Rank
		acc.Forward += st.Forward
		acc.Access += st.Access
		acc.Return += st.Return
	}
	return slowdownPoint{
		p: p, n: n, alpha: sim.Scheme().Alpha(),
		steps:    float64(total) / float64(reps),
		perPhase: acc,
		tree:     trace.Export(sim.Ledger().Last()),
	}, nil
}

// e1Params returns the (side, d) ladder at q=3, k=2 with the largest
// feasible memory per machine (α grows with n; reported per row).
func e1Params(big bool) []hmos.Params {
	ps := []hmos.Params{
		{Side: 9, Q: 3, D: 3, K: 2},  // n=81,   M=117
		{Side: 27, Q: 3, D: 5, K: 2}, // n=729,  M=9801
		{Side: 81, Q: 3, D: 7, K: 2}, // n=6561, M=796797
	}
	if big {
		ps = append(ps, hmos.Params{Side: 243, Q: 3, D: 9, K: 2}) // n=59049
	}
	return ps
}

// RunE1 measures the headline slowdown curve (Theorems 1/4) and renders
// figure F1 (T(n)/√n against n).
func RunE1(w io.Writer, cfg Config) error {
	var tb stats.Table
	tb.Add("n", "side", "d", "alpha", "T(n) steps", "T/sqrt(n)", "culling", "sort", "route fwd", "return")
	var xs, ys []float64
	var norm []float64
	for _, p := range e1Params(cfg.Big) {
		reps := 3
		if p.Side >= 243 {
			reps = 1 // the n = 59049 machine costs minutes per step
		}
		pt, err := measureSlowdown(p, cfg, reps)
		if err != nil {
			return err
		}
		sq := sqrtf(float64(pt.n))
		tb.Add(pt.n, p.Side, p.D, pt.alpha, int64(pt.steps), pt.steps/sq,
			pt.perPhase.Culling/int64(reps), pt.perPhase.Sort/int64(reps),
			pt.perPhase.Forward/int64(reps), pt.perPhase.Return/int64(reps))
		xs = append(xs, float64(pt.n))
		ys = append(ys, pt.steps)
		norm = append(norm, pt.steps/sq)
		// Last ladder point wins: the report describes the largest machine.
		cfg.Report.SetSteps(int64(pt.steps))
		cfg.Report.SetPhase("culling", pt.perPhase.Culling/int64(reps))
		cfg.Report.SetPhase("sort", pt.perPhase.Sort/int64(reps))
		cfg.Report.SetPhase("rank", pt.perPhase.Rank/int64(reps))
		cfg.Report.SetPhase("forward", pt.perPhase.Forward/int64(reps))
		cfg.Report.SetPhase("access", pt.perPhase.Access/int64(reps))
		cfg.Report.SetPhase("return", pt.perPhase.Return/int64(reps))
		cfg.Report.AddTrace("core-staged", pt.tree)
	}
	tb.Render(w)
	exp, _ := stats.PowerFit(xs, ys)
	fmt.Fprintf(w, "\n  measured exponent of T(n): %.3f  (theory: 1/2 + (alpha-1)/8 with the\n", exp)
	fmt.Fprintf(w, "  shearsort log factor on top; the Ω(√n) diameter bound is 0.5)\n")
	fmt.Fprintln(w, "\n  F1: T(n)/sqrt(n) vs n")
	stats.Plot(w, 60, 12, stats.Series{Name: "T/sqrt(n)", X: xs, Y: norm})

	// Workload independence: a worst-case deterministic bound must show
	// (near-)identical cost on structured access patterns.
	fmt.Fprintln(w, "\n  T(n) per access pattern at n = 729 (worst-case determinism check):")
	p := hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
	sim, err := core.New(p, core.Config{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	n := sim.Mesh().N
	vars := sim.Scheme().Vars()
	tp, err := workload.Transpose(vars, 27)
	if err != nil {
		return err
	}
	br, err := workload.BitReverse(vars, 9)
	if err != nil {
		return err
	}
	patterns := []struct {
		name string
		vs   workload.Vars
	}{
		{"random", workload.RandomDistinct(vars, n, cfg.Seed)},
		{"dense (stride 1)", workload.Stride(vars, n, 1)},
		{"transpose 27x27", tp},
		{"bit-reverse 2^9", br},
		{"module-hot", workload.ModuleHot(sim.Scheme(), 2, n)},
	}
	var tb2 stats.Table
	tb2.Add("pattern", "requests", "T steps", "T/sqrt(n) per full batch")
	for _, pat := range patterns {
		_, st := sim.Step(pat.vs.Reads())
		tb2.Add(pat.name, len(pat.vs), st.Total(), float64(st.Total())/sqrtf(float64(n)))
	}
	tb2.Render(w)
	return nil
}

// RunE9 measures the redundancy/time trade-off of the Theorem 4 proof:
// same machine and (where possible) same memory, varying (q, k).
func RunE9(w io.Writer, cfg Config) error {
	rows := []hmos.Params{
		{Side: 27, Q: 3, D: 5, K: 1}, // redundancy 3, M=9801
		{Side: 27, Q: 3, D: 5, K: 2}, // redundancy 9, M=9801
		{Side: 27, Q: 3, D: 4, K: 2}, // redundancy 9, M=1080
		{Side: 27, Q: 3, D: 4, K: 3}, // redundancy 27, M=1080
		{Side: 27, Q: 3, D: 3, K: 4}, // redundancy 81: the toy image of the polylog regime
		{Side: 16, Q: 4, D: 3, K: 2}, // q=4
		{Side: 25, Q: 5, D: 3, K: 2}, // q=5
	}
	var tb stats.Table
	tb.Add("side", "q", "k", "d", "M", "alpha", "copies/var", "accessed/var", "T(n)", "T/sqrt(n)")
	for _, p := range rows {
		pt, err := measureSlowdown(p, cfg, 2)
		if err != nil {
			return err
		}
		s := hmos.MustNew(p)
		tb.Add(p.Side, p.Q, p.K, p.D, s.Vars(), pt.alpha, s.CopiesPerVar(),
			hmos.MinTargetSetSize(p.Q, p.K, p.K), int64(pt.steps), pt.steps/sqrtf(float64(pt.n)))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  Theorem 4 shape: higher redundancy buys lower congestion exponents;")
	fmt.Fprintln(w, "  at fixed memory the k=1 scheme routes fewer packets but concentrates")
	fmt.Fprintln(w, "  them in Θ(n^(α/2)) modules, while k≥2 spreads load across tessellations.")
	return nil
}

func sqrtf(x float64) float64 { return math.Sqrt(x) }
