package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/stats"
)

// SCALE measures how the simulator's cost per node behaves as the mesh
// grows: wall-clock ns per charged cycle per node (throughput of the
// discrete-event engine) and quiescent resident bytes per node (the
// compact slot state). The footprint figure is the point of the slab
// store and the implicit memory map — a sparse workload touches O(M·q^k)
// cells, so bytes/node must *fall* as n grows, where the historical
// layout paid a map header per processor and O(n) engine state forever.
//
// Every side is a multiple of 27 so the q=3, d=4, k=2 scheme splits
// evenly; the Big side 1458 is the million-node point (n = 2,125,764).
var scaleSides = []int{27, 81, 243, 486}

// scaleBigSide is included with -big: n = 1458² ≥ 10^6.
const scaleBigSide = 1458

// scaleParams is the memory scheme shared by every SCALE point: 1080
// variables, 1080 modules, 9 copies per variable.
func scaleParams(side int) hmos.Params {
	return hmos.Params{Side: side, Q: 3, D: 4, K: 2}
}

// scaleCell is one measured mesh size.
type scaleCell struct {
	n              int   // processors
	nsOp           int64 // wall ns per PRAM step (steady state)
	cycles         int64 // charged mesh cycles per step
	bytesTotal     int64 // quiescent resident bytes (after Compact)
	bytesScheme    int64
	bytesStore     int64
	bytesRouting   int64 // retained routing bytes after Compact (0)
	heapBytes      int64 // whole-process HeapAlloc after GC (ReadMemStats)
	legacyBytes    int64 // modeled pre-slab resident bytes at quiescence
	bytesNodeMilli int64 // bytesTotal·1000/n
	legacyNodeMil  int64 // legacyBytes·1000/n
}

// measureScale runs a sparse PRAM workload (every variable touched,
// origins scattered) on one mesh side: a warm-up step populates every
// lazily-grown buffer, two timed steps give the steady-state ns/step,
// then Compact returns the simulator to quiescence and the per-layer
// footprint is read off MemReport. The legacy figure adds what the
// pre-slab layout would retain for the same logical state: the
// per-processor map store (LegacyStoreMemBytes) plus the routing
// buffers a Release-less engine kept forever (measured just before
// Compact).
func measureScale(side, workers int, seed int64) (scaleCell, error) {
	sim, err := core.New(scaleParams(side), core.Config{Workers: workers})
	if err != nil {
		return scaleCell{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	vars := sim.S.Vars()
	ops := make([]core.Op, 0, vars)
	step := func(write bool) int64 {
		ops = ops[:0]
		for _, v := range rng.Perm(vars) {
			ops = append(ops, core.Op{
				Origin:  rng.Intn(sim.M.N),
				Var:     v,
				IsWrite: write,
				Value:   core.Word(v),
			})
			if len(ops) == sim.M.N { // origins ≥ vars everywhere but tiny meshes
				break
			}
		}
		_, st := sim.Step(ops)
		return st.Total()
	}
	var cell scaleCell
	cell.n = sim.M.N
	step(true) // warm-up: allocates every slab and engine buffer
	const iters = 2
	start := time.Now()
	for it := 0; it < iters; it++ {
		cell.cycles = step(it%2 == 0)
	}
	cell.nsOp = time.Since(start).Nanoseconds() / iters

	// The pre-slab simulator had no Compact: its engines and arena kept
	// their high-water buffers for the life of the run.
	legacyRetained := sim.MemReport().Routing
	sim.Compact()
	// Whole-process heap ceiling alongside the deterministic capacity
	// walk: the MemReport figures are what the gate compares; HeapAlloc
	// is the allocator's view, reported for cross-checking only.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cell.heapBytes = int64(ms.HeapAlloc)
	rep := sim.MemReport()
	cell.bytesTotal = rep.Total()
	cell.bytesScheme = rep.Scheme
	cell.bytesStore = rep.Store
	cell.bytesRouting = rep.Routing
	cell.legacyBytes = sim.LegacyStoreMemBytes() + legacyRetained + rep.Scheme
	cell.bytesNodeMilli = cell.bytesTotal * 1000 / int64(cell.n)
	cell.legacyNodeMil = cell.legacyBytes * 1000 / int64(cell.n)
	return cell, nil
}

// RunScale is the SCALE entry: bytes/node and ns/cycle/node versus n,
// with the modeled pre-slab footprint alongside. The committed
// BENCH_SCALE.baseline.json holds the legacy bytes/node column; the
// memory-budget gate (scale_budget_test.go) re-measures the largest
// non-Big point and fails on a >10% bytes/node regression against the
// committed BENCH_SCALE.json, and requires the million-node point to
// stay ≥4× below the baseline.
func RunScale(w io.Writer, cfg Config) error {
	sides := scaleSides
	if cfg.Big {
		sides = append(append([]int{}, sides...), scaleBigSide)
	}
	var tb stats.Table
	tb.Add("side", "n", "ns/step", "cycles", "ns/cycle", "bytes/node", "legacy bytes/node", "ratio")
	for _, side := range sides {
		cell, err := measureScale(side, cfg.Workers, cfg.Seed)
		if err != nil {
			return fmt.Errorf("scale side=%d: %w", side, err)
		}
		nsCycle := int64(0)
		if cell.cycles > 0 {
			nsCycle = cell.nsOp / cell.cycles
		}
		ratio := float64(cell.legacyBytes) / float64(cell.bytesTotal)
		tb.Add(side, cell.n, cell.nsOp, cell.cycles, nsCycle,
			fmt.Sprintf("%.3f", float64(cell.bytesNodeMilli)/1000),
			fmt.Sprintf("%.3f", float64(cell.legacyNodeMil)/1000),
			fmt.Sprintf("%.1fx", ratio))
		key := fmt.Sprintf("scale-%d", side)
		cfg.Report.SetPhase(key+"-n", int64(cell.n))
		cfg.Report.SetPhase(key+"-ns-op", cell.nsOp)
		cfg.Report.SetPhase(key+"-cycles", cell.cycles)
		cfg.Report.SetPhase(key+"-bytes", cell.bytesTotal)
		cfg.Report.SetPhase(key+"-bytes-scheme", cell.bytesScheme)
		cfg.Report.SetPhase(key+"-bytes-store", cell.bytesStore)
		cfg.Report.SetPhase(key+"-bytes-node-milli", cell.bytesNodeMilli)
		cfg.Report.SetPhase(key+"-heap-bytes", cell.heapBytes)
		cfg.Report.SetPhase(key+"-legacy-bytes", cell.legacyBytes)
		cfg.Report.SetPhase(key+"-legacy-bytes-node-milli", cell.legacyNodeMil)
		cfg.Report.SetSteps(cell.cycles)
		if cell.bytesRouting != 0 {
			return fmt.Errorf("scale side=%d: %d routing bytes retained after Compact", side, cell.bytesRouting)
		}
	}
	tb.Render(w)
	fmt.Fprintf(w, "\nhost cores: %d; Big (side %d, n=%d) included: %v\n",
		runtime.NumCPU(), scaleBigSide, scaleBigSide*scaleBigSide, cfg.Big)
	fmt.Fprintf(w, "legacy column models the pre-slab layout (per-processor map store + permanently retained routing buffers)\n")
	return nil
}
