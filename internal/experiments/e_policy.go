package experiments

import (
	"fmt"
	"io"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/stats"
	"meshpram/internal/workload"
)

// RunE13 compares the paper's hierarchical-majority discipline against
// the Mehlhorn–Vishkin read-one/write-all discipline [MV84] the
// introduction contrasts it with: MV84 reads are cheap (one packet),
// MV84 writes route q^k packets and admit an O(c·n)-type worst case on
// module-hot write bursts, while the majority scheme treats reads and
// writes symmetrically with culling-bounded congestion.
func RunE13(w io.Writer, cfg Config) error {
	p := hmos.Params{Side: 27, Q: 3, D: 4, K: 2}
	var tb stats.Table
	tb.Add("policy", "workload", "packets", "hot page load", "route fwd", "total steps")

	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"majority (paper)", core.Config{Workers: cfg.Workers}},
		{"read-1/write-all (MV84)", core.Config{Policy: core.ReadOneWriteAllPolicy, Workers: cfg.Workers}},
	}
	for _, v := range variants {
		sim, err := core.New(p, v.cfg)
		if err != nil {
			return err
		}
		n := sim.Mesh().N
		rv := workload.RandomDistinct(sim.Scheme().Vars(), n, cfg.Seed)
		hot := workload.ModuleHot(sim.Scheme(), 3, n)

		for _, wl := range []struct {
			name string
			ops  []core.Op
		}{
			{"random reads", rv.Reads()},
			{"random writes", rv.Writes(1)},
			{"module-hot writes", hot.Writes(1)},
		} {
			_, st := sim.Step(wl.ops)
			tb.Add(v.name, wl.name, st.Packets, st.PageLoadMax[1], st.Forward, st.Total())
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  MV84 reads route 1 packet/op (vs 4 for the majority set) but its")
	fmt.Fprintln(w, "  write bursts put one packet in the hot module for EVERY variable —")
	fmt.Fprintln(w, "  the Θ(c·n) worst case [MV84] concedes — while the majority policy's")
	fmt.Fprintln(w, "  culled selection keeps page loads below the Theorem 3 bound either way.")
	return nil
}
