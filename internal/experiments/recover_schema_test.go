package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecoverReportSchema runs the RECOVER experiment at the small size
// and diffs the schema of its BENCH_RECOVER.json against the checked-in
// golden, exactly like TestFaultReportSchema does for FAULT: update
// testdata/BENCH_RECOVER.schema.golden deliberately rather than
// silently shifting the emitted benchmark format.
func TestRecoverReportSchema(t *testing.T) {
	e, ok := Lookup("RECOVER")
	if !ok {
		t.Fatal("RECOVER experiment not registered")
	}
	rep := &Report{ID: e.ID, Claim: e.Claim}
	cfg := Config{Seed: 1, Workers: 1, Report: rep}
	if err := e.Run(io.Discard, cfg); err != nil {
		t.Fatalf("RunRecover: %v", err)
	}
	rep.WallNs = 1 // always set by cmd/experiments; pin its presence
	got := reportSchema(t, rep)

	goldenPath := filepath.Join("testdata", "BENCH_RECOVER.schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	wantLines := strings.Fields(strings.TrimSpace(string(want)))
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("BENCH_RECOVER.json schema drifted from %s\n got:\n  %s\nwant:\n  %s",
			goldenPath, strings.Join(got, "\n  "), strings.Join(wantLines, "\n  "))
	}
}
