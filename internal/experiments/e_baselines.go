package experiments

import (
	"fmt"
	"io"
	"math"

	"meshpram/internal/baseline"
	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
	"meshpram/internal/workload"
)

// RunE8 pits the HMOS scheme against the single-copy baseline on the
// adversarial workload replication exists for: all requests homed on
// one module/processor.
func RunE8(w io.Writer, cfg Config) error {
	p := hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
	sim, err := core.New(p, core.Config{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	n := sim.Mesh().N
	nr, err := baseline.NewNoReplication(p.Side, sim.Scheme().Vars())
	if err != nil {
		return err
	}

	var tb stats.Table
	tb.Add("workload", "scheme", "steps", "access phase (serialization)")

	// Part A — the asymptotic driver. Give the single-copy scheme the
	// paper's largest memory, M = n², and request n variables all homed
	// on one processor: the access phase serializes the whole batch
	// (Θ(n)), while the HMOS access phase is bounded by
	// δ_0 = O(q^k·min(√n, n^{α−1})) regardless of the request set.
	nrBig, err := baseline.NewNoReplication(p.Side, n*n)
	if err != nil {
		return err
	}
	hotVars := nrBig.VarsOnProc(nrBig.Home(0), n)
	opsA := make([]baseline.Op, len(hotVars))
	for i, v := range hotVars {
		opsA[i] = baseline.Op{Origin: i % n, Var: v}
	}
	_, nrCostA := nrBig.Step(opsA)
	tb.Add(fmt.Sprintf("proc-hot, M=n² (%d reqs)", len(hotVars)), "single-copy", nrCostA.Total(), nrCostA.Access)
	delta0 := sim.Scheme().CopiesPerVar() * minInt(p.Side, powInt(n, sim.Scheme().Alpha()-1))
	tb.Add(fmt.Sprintf("proc-hot, M=n² (%d reqs)", len(hotVars)),
		fmt.Sprintf("HMOS guarantee: access ≤ δ0 ≈ %d", delta0), "-", "-")

	// Part B — same memory (M = n^α), worst sets each scheme admits.
	// Adversarial for the logical modules: all requests share a level-1
	// module of the HMOS.
	modVars := workload.ModuleHot(sim.Scheme(), 1, n)
	ops2 := make([]baseline.Op, len(modVars))
	cops2 := make([]core.Op, len(modVars))
	for i, v := range modVars {
		ops2[i] = baseline.Op{Origin: i % n, Var: v}
		cops2[i] = core.Op{Origin: i % n, Var: v}
	}
	_, nrCost2 := nr.Step(ops2)
	_, hmCost2 := sim.Step(cops2)
	tb.Add("module-hot (HMOS stress)", "single-copy", nrCost2.Total(), nrCost2.Access)
	tb.Add("module-hot (HMOS stress)", "HMOS (paper)", hmCost2.Total(), hmCost2.Access)

	// Uniform random, for scale.
	rv := workload.RandomDistinct(sim.Scheme().Vars(), n, cfg.Seed)
	ops3 := make([]baseline.Op, len(rv))
	for i, v := range rv {
		ops3[i] = baseline.Op{Origin: i % n, Var: v}
	}
	_, nrCost3 := nr.Step(ops3)
	_, hmCost3 := sim.Step(rv.Reads())
	tb.Add("uniform random", "single-copy", nrCost3.Total(), nrCost3.Access)
	tb.Add("uniform random", "HMOS (paper)", hmCost3.Total(), hmCost3.Access)
	cfg.Report.AddTrace("baseline-norep", trace.Export(nr.M.Ledger().Last()))

	tb.Render(w)
	fmt.Fprintln(w, "\n  On its worst case (part A) the single-copy scheme serializes the whole")
	fmt.Fprintln(w, "  batch in one module — Θ(n) no matter how good the routing — which is the")
	fmt.Fprintln(w, "  lower-bound argument motivating replication. The HMOS access phase is")
	fmt.Fprintln(w, "  bounded by δ_0 for EVERY request set (part B shows its own worst case);")
	fmt.Fprintln(w, "  its larger totals at these small n are the k·q^k·√n·log n sorting fee,")
	fmt.Fprintln(w, "  which the adversary cannot inflate.")
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func powInt(n int, e float64) int {
	return int(math.Pow(float64(n), e))
}

// RunE10 compares memory-map storage: the constructive scheme stores a
// handful of integers per processor, the random-graph organization a
// Θ(M·(2c−1)) placement table (Herley's space-inefficiency critique).
func RunE10(w io.Writer, cfg Config) error {
	rows := []hmos.Params{
		{Side: 27, Q: 3, D: 4, K: 2},
		{Side: 27, Q: 3, D: 5, K: 2},
		{Side: 81, Q: 3, D: 7, K: 2},
	}
	var tb stats.Table
	tb.Add("M (vars)", "n", "scheme", "map bytes total", "bytes/processor")
	for _, p := range rows {
		s, err := hmos.New(p)
		if err != nil {
			return err
		}
		hb := s.MapBytes()
		tb.Add(s.Vars(), s.N, fmt.Sprintf("HMOS q=%d k=%d (implicit)", p.Q, p.K), hb*int64(s.N), hb)
		rm, err := baseline.NewRandomMOS(p.Side, s.Vars(), 2, cfg.Seed)
		if err != nil {
			return err
		}
		tb.Add(s.Vars(), s.N, "random MOS c=2 (explicit table)", rm.MapBytes(), rm.MapBytes()/int64(s.N))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  The constructive map is O(q^k + k) words per processor regardless of M;")
	fmt.Fprintln(w, "  the random-graph map grows linearly with the shared memory.")
	if cfg.Report != nil {
		// A small extra batch (not part of the table above, which only
		// compares map sizes) so the random-MOS execution path also
		// contributes a ledger tree to the JSON report.
		rm, err := baseline.NewRandomMOS(9, 500, 2, cfg.Seed)
		if err != nil {
			return err
		}
		rv := workload.RandomDistinct(500, 81, cfg.Seed)
		ops := make([]baseline.Op, len(rv))
		for i, v := range rv {
			ops[i] = baseline.Op{Origin: i % 81, Var: v, IsWrite: i%2 == 0, Value: int64(i)}
		}
		rm.Step(ops)
		cfg.Report.AddTrace("baseline-randmos", trace.Export(rm.M.Ledger().Last()))
	}
	return nil
}

// RunE11 replays a random read/write trace against an ideal shared
// memory and reports whether the mesh simulation ever diverged.
func RunE11(w io.Writer, cfg Config) error {
	p := hmos.Params{Side: 9, Q: 3, D: 3, K: 2}
	sim, err := core.New(p, core.Config{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	ideal := map[int]core.Word{}
	checks, failures := 0, 0
	for step := 0; step < 40; step++ {
		vars := workload.RandomDistinct(sim.Scheme().Vars(), 40, cfg.Seed+int64(step))
		ops := vars.Mixed(core.Word(step * 1000))
		res, _ := sim.Step(ops)
		for i, op := range ops {
			if !op.IsWrite {
				checks++
				if res[i] != ideal[op.Var] {
					failures++
				}
			}
		}
		for _, op := range ops {
			if op.IsWrite {
				ideal[op.Var] = op.Value
			}
		}
	}
	fmt.Fprintf(w, "  %d reads checked against an ideal PRAM, %d divergences\n", checks, failures)
	if failures > 0 {
		return fmt.Errorf("consistency violated %d times", failures)
	}
	fmt.Fprintln(w, "  PASS: the hierarchical majority rule always returned the last write.")
	return nil
}

// RunE12 ablates the two design choices of the access path: culling and
// staged routing.
func RunE12(w io.Writer, cfg Config) error {
	p := hmos.Params{Side: 27, Q: 3, D: 5, K: 2}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"paper (culling + staged)", core.Config{Workers: cfg.Workers}},
		{"no culling", core.Config{DisableCulling: true, Workers: cfg.Workers}},
		{"direct routing", core.Config{DirectRouting: true, Workers: cfg.Workers}},
		{"no culling + direct", core.Config{DisableCulling: true, DirectRouting: true, Workers: cfg.Workers}},
	}
	var tb stats.Table
	tb.Add("variant", "workload", "culling", "sort", "forward", "return", "access", "total")
	for _, v := range variants {
		sim, err := core.New(p, v.cfg)
		if err != nil {
			return err
		}
		n := sim.Mesh().N
		for _, wl := range []struct {
			name string
			vars workload.Vars
		}{
			{"random", workload.RandomDistinct(sim.Scheme().Vars(), n, cfg.Seed)},
			{"modulehot", workload.ModuleHot(sim.Scheme(), 2, n)},
		} {
			_, st := sim.Step(wl.vars.Reads())
			tb.Add(v.name, wl.name, st.Culling, st.Sort, st.Forward, st.Return, st.Access, st.Total())
		}
		if v.cfg.DirectRouting && !v.cfg.DisableCulling {
			cfg.Report.AddTrace("core-direct", trace.Export(sim.Ledger().Last()))
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\n  Culling pays a fixed k·q^k·sqrt(n) fee that buys bounded page loads;")
	fmt.Fprintln(w, "  staged routing converts receiver congestion into balanced submesh hops.")
	return nil
}
