package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScaleReportSchema runs the SCALE experiment (non-Big sides) and
// diffs the schema of its BENCH_SCALE.json against the checked-in
// golden, mirroring TestRouteReportSchema: the golden pins the emitted
// key set (n, ns-op, cycles and the bytes breakdown per side), not the
// measurements. The committed repo-root BENCH_SCALE.json is a -big run,
// so it carries the extra scale-1458-* keys on top of this set. Update
// testdata/BENCH_SCALE.schema.golden deliberately when the row set
// changes.
func TestScaleReportSchema(t *testing.T) {
	e, ok := Lookup("SCALE")
	if !ok {
		t.Fatal("SCALE experiment not registered")
	}
	rep := &Report{ID: e.ID, Claim: e.Claim}
	cfg := Config{Seed: 1, Workers: 1, Report: rep}
	if err := e.Run(io.Discard, cfg); err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	rep.WallNs = 1 // always set by cmd/experiments; pin its presence
	got := reportSchema(t, rep)

	goldenPath := filepath.Join("testdata", "BENCH_SCALE.schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	wantLines := strings.Fields(strings.TrimSpace(string(want)))
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("BENCH_SCALE.json schema drifted from %s\n got:\n  %s\nwant:\n  %s",
			goldenPath, strings.Join(got, "\n  "), strings.Join(wantLines, "\n  "))
	}
}
