package experiments

import (
	"strings"
	"testing"
)

func smallCfg() Config { return Config{Big: false, Workers: 1, Seed: 1} }

// Every experiment must run to completion and produce a table.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && (e.ID == "E1" || e.ID == "E9" || e.ID == "E15" || e.ID == "E17") {
				t.Skip("slow experiment skipped in -short mode")
			}
			var sb strings.Builder
			if err := e.Run(&sb, smallCfg()); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(sb.String()) < 50 {
				t.Fatalf("%s produced no meaningful output", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("E99 found")
	}
}

func TestIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Claim == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(All) != 23 {
		t.Fatalf("%d experiments, want 23 (DESIGN.md §4 plus FAULT, RECOVER, GOSSIP, ROUTE and SCALE)", len(All))
	}
}

func TestMeasureSlowdownSmall(t *testing.T) {
	pt, err := measureSlowdown(e1Params(false)[0], smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.steps <= 0 || pt.alpha <= 1 {
		t.Fatalf("point %+v", pt)
	}
}
