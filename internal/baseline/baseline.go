// Package baseline implements the comparison schemes the experiments
// measure the paper's simulation against:
//
//   - NoReplication: one copy per variable placed by a fixed hash — the
//     classic single-copy organization whose deterministic worst case
//     (all n requests in one module) is the reason replication exists
//     (experiment E8);
//   - RandomMOS: an Upfal–Wigderson-style memory organization with
//     2c−1 copies per variable placed by a random function and accessed
//     through timestamped majority quorums of size c. It matches the
//     paper's consistency machinery but needs an explicit Θ(M·(2c−1))
//     memory map, the space cost the constructive scheme avoids
//     (experiment E10).
//
// Both run on the same mesh substrate and cost model as internal/core:
// requests are routed with a sorted greedy (l1,l2)-routing and return
// to their origins, and every charged step comes from the same
// primitives in internal/route. Each Step builds one span tree on the
// machine's cost ledger (sort/forward/access/return charged leaves plus
// the route layer's observe detail); StepCost is the phase-total view
// of that tree.
package baseline

import (
	"fmt"
	"math/rand"

	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/trace"
)

// Word mirrors core.Word.
type Word = int64

// Op mirrors core.Op to avoid an import cycle in callers that use both.
type Op struct {
	Origin  int
	Var     int
	IsWrite bool
	Value   Word
}

// StepCost is the charged breakdown of a baseline step.
type StepCost struct {
	Sort    int64
	Forward int64
	Access  int64
	Return  int64
}

// Total returns the summed steps.
func (c StepCost) Total() int64 { return c.Sort + c.Forward + c.Access + c.Return }

// --- NoReplication ------------------------------------------------------

// NoReplication stores each variable once, on processor hash(v).
type NoReplication struct {
	M    *mesh.Machine
	Vars int

	store []map[int]Word
	mult  uint64
	cw    *CWHash // non-nil: Carter–Wegman placement (see universal.go)

	// Persistent router and per-step buffers: a batch loop routes
	// without reallocating queue or delivery storage (entries are
	// truncated, never freed, between steps).
	eng  *route.Engine[nrPkt]
	pkts [][]nrPkt // injection / post-sort layout
	fwd  [][]nrPkt // forward-route deliveries
	ret  [][]nrPkt // return-route deliveries
}

// NewNoReplication creates the single-copy baseline.
func NewNoReplication(side, vars int) (*NoReplication, error) {
	m, err := mesh.New(side)
	if err != nil {
		return nil, err
	}
	m.AttachLedger(trace.New())
	return &NoReplication{
		M:     m,
		Vars:  vars,
		store: make([]map[int]Word, m.N),
		mult:  0x9e3779b97f4a7c15,
		eng:   route.NewEngine[nrPkt](m),
		pkts:  make([][]nrPkt, m.N),
		fwd:   make([][]nrPkt, m.N),
		ret:   make([][]nrPkt, m.N),
	}, nil
}

// SetEngineMode selects the routing engine's execution strategy
// (route.ModeEvent default; route.ModeCycle forces the cycle-stepped
// reference loop). Results are bit-identical in both modes.
func (b *NoReplication) SetEngineMode(m route.EngineMode) { b.eng.SetMode(m) }

// Home returns the processor storing variable v.
func (b *NoReplication) Home(v int) int {
	if b.cw != nil {
		return b.cw.Apply(v)
	}
	return int((uint64(v) * b.mult >> 17) % uint64(b.M.N))
}

// VarsOnProc returns up to max variables homed on processor p — the
// adversarial request set of experiment E8.
func (b *NoReplication) VarsOnProc(p, max int) []int {
	var out []int
	for v := 0; v < b.Vars && len(out) < max; v++ {
		if b.Home(v) == p {
			out = append(out, v)
		}
	}
	return out
}

// MapBytes returns the memory-map state a processor must hold: the hash
// multiplier only.
func (b *NoReplication) MapBytes() int64 { return 8 }

type nrPkt struct {
	op     int32
	origin int
	dest   int
	v      int
	isW    bool
	val    Word
}

// Step executes one batch of distinct-variable requests and returns
// read results aligned with ops plus the cost breakdown.
func (b *NoReplication) Step(ops []Op) ([]Word, StepCost) {
	m := b.M
	ld := m.Ledger()
	step := ld.Begin("step", trace.PhaseOther)
	pkts := b.pkts // empty entries: drained by the previous step's routing
	seen := make(map[int]bool, len(ops))
	for i, op := range ops {
		if op.Var < 0 || op.Var >= b.Vars {
			panic(fmt.Sprintf("baseline: variable %d out of range", op.Var))
		}
		if seen[op.Var] {
			panic(fmt.Sprintf("baseline: duplicate variable %d", op.Var))
		}
		seen[op.Var] = true
		pkts[op.Origin] = append(pkts[op.Origin], nrPkt{
			op: int32(i), origin: op.Origin, dest: b.Home(op.Var),
			v: op.Var, isW: op.IsWrite, val: op.Value,
		})
	}
	step.AddPackets(int64(len(ops)))
	full := m.Full()
	sorted, _, sortSteps := route.SortSnakeFast(m, full, pkts, func(p nrPkt) uint64 { return uint64(p.dest) })
	lf := ld.Begin("sort", trace.PhaseSort)
	m.AddSteps(sortSteps)
	lf.End()
	delivered, cycles := b.eng.Route(b.fwd, full, sorted, func(p nrPkt) int { return p.dest })
	lf = ld.Begin("forward", trace.PhaseForward)
	m.AddSteps(cycles)
	lf.End()

	maxPer := 0
	for p := range delivered {
		if len(delivered[p]) > maxPer {
			maxPer = len(delivered[p])
		}
		for j := range delivered[p] {
			pk := &delivered[p][j]
			if pk.isW {
				if b.store[p] == nil {
					b.store[p] = make(map[int]Word)
				}
				b.store[p][pk.v] = pk.val
			} else if b.store[p] != nil {
				pk.val = b.store[p][pk.v]
			} else {
				pk.val = 0
			}
		}
	}
	lf = ld.Begin("access", trace.PhaseAccess)
	m.AddSteps(int64(maxPer))
	lf.End()

	home, back := b.eng.Route(b.ret, full, delivered, func(p nrPkt) int { return p.origin })
	lf = ld.Begin("return", trace.PhaseReturn)
	m.AddSteps(back)
	lf.End()

	res := make([]Word, len(ops))
	for p := range home {
		for _, pk := range home[p] {
			if !pk.isW {
				res[pk.op] = pk.val
			}
		}
		home[p] = home[p][:0] // leave the return buffer empty for reuse
	}
	for i, op := range ops {
		if op.IsWrite {
			res[i] = op.Value
		}
	}
	step.End()
	return res, costFromSpan(step)
}

// costFromSpan is the StepCost view of one baseline step tree.
func costFromSpan(step *trace.Span) StepCost {
	pt := step.PhaseTotals()
	return StepCost{
		Sort:    pt[trace.PhaseSort],
		Forward: pt[trace.PhaseForward],
		Access:  pt[trace.PhaseAccess],
		Return:  pt[trace.PhaseReturn],
	}
}

// --- RandomMOS ----------------------------------------------------------

// RandomMOS replicates every variable into 2c−1 copies on random
// processors and accesses majority quorums of c timestamped copies.
type RandomMOS struct {
	M *mesh.Machine
	C int // quorum size; 2C−1 copies per variable

	vars  int
	place [][]int32 // place[v] = the 2c−1 processors holding v's copies
	store []map[int64]tsCell
	now   int64

	// Persistent router and per-step buffers (see NoReplication).
	eng  *route.Engine[rmPkt]
	pkts [][]rmPkt
	fwd  [][]rmPkt
	ret  [][]rmPkt
}

// SetEngineMode selects the routing engine's execution strategy
// (route.ModeEvent default; route.ModeCycle forces the cycle-stepped
// reference loop). Results are bit-identical in both modes.
func (b *RandomMOS) SetEngineMode(m route.EngineMode) { b.eng.SetMode(m) }

type tsCell struct {
	val Word
	ts  int64
}

// NewRandomMOS builds the random memory organization with the given
// quorum size c ≥ 2 (redundancy 2c−1) and seed.
func NewRandomMOS(side, vars, c int, seed int64) (*RandomMOS, error) {
	if c < 2 {
		return nil, fmt.Errorf("baseline: quorum c=%d must be ≥ 2", c)
	}
	m, err := mesh.New(side)
	if err != nil {
		return nil, err
	}
	m.AttachLedger(trace.New())
	rng := rand.New(rand.NewSource(seed))
	b := &RandomMOS{
		M: m, C: c, vars: vars,
		place: make([][]int32, vars),
		store: make([]map[int64]tsCell, m.N),
		eng:   route.NewEngine[rmPkt](m),
		pkts:  make([][]rmPkt, m.N),
		fwd:   make([][]rmPkt, m.N),
		ret:   make([][]rmPkt, m.N),
	}
	for v := range b.place {
		procs := make([]int32, 2*c-1)
		used := map[int32]bool{}
		for j := range procs {
			p := int32(rng.Intn(m.N))
			for used[p] {
				p = int32(rng.Intn(m.N))
			}
			used[p] = true
			procs[j] = p
		}
		b.place[v] = procs
	}
	return b, nil
}

// MapBytes returns the explicit memory-map storage: 4 bytes per copy
// placement (the whole table must be replicated or partitioned among
// processors; we report the total).
func (b *RandomMOS) MapBytes() int64 { return int64(b.vars) * int64(2*b.C-1) * 4 }

type rmPkt struct {
	op     int32
	origin int
	dest   int
	slot   int64
	isW    bool
	val    Word
	ts     int64
}

// Step executes one batch of distinct-variable requests: for each, c of
// its 2c−1 copies (round-robin rotation per step for load spreading)
// are accessed; reads return the most recent timestamp.
func (b *RandomMOS) Step(ops []Op) ([]Word, StepCost) {
	m := b.M
	ld := m.Ledger()
	step := ld.Begin("step", trace.PhaseOther)
	b.now++
	pkts := b.pkts // empty entries: drained by the previous step's routing
	seen := make(map[int]bool, len(ops))
	for i, op := range ops {
		if op.Var < 0 || op.Var >= b.vars {
			panic(fmt.Sprintf("baseline: variable %d out of range", op.Var))
		}
		if seen[op.Var] {
			panic(fmt.Sprintf("baseline: duplicate variable %d", op.Var))
		}
		seen[op.Var] = true
		procs := b.place[op.Var]
		rot := int(b.now) % len(procs)
		for j := 0; j < b.C; j++ {
			k := (rot + j) % len(procs)
			pkts[op.Origin] = append(pkts[op.Origin], rmPkt{
				op: int32(i), origin: op.Origin, dest: int(procs[k]),
				slot: int64(op.Var)*int64(len(procs)) + int64(k),
				isW:  op.IsWrite, val: op.Value,
			})
		}
	}
	step.AddPackets(int64(len(ops) * b.C))
	full := m.Full()
	sorted, _, sortSteps := route.SortSnakeFast(m, full, pkts, func(p rmPkt) uint64 { return uint64(p.dest) })
	lf := ld.Begin("sort", trace.PhaseSort)
	m.AddSteps(sortSteps)
	lf.End()
	delivered, cycles := b.eng.Route(b.fwd, full, sorted, func(p rmPkt) int { return p.dest })
	lf = ld.Begin("forward", trace.PhaseForward)
	m.AddSteps(cycles)
	lf.End()

	maxPer := 0
	for p := range delivered {
		if len(delivered[p]) > maxPer {
			maxPer = len(delivered[p])
		}
		for j := range delivered[p] {
			pk := &delivered[p][j]
			if pk.isW {
				if b.store[p] == nil {
					b.store[p] = make(map[int64]tsCell)
				}
				b.store[p][pk.slot] = tsCell{val: pk.val, ts: b.now}
				pk.ts = b.now
			} else if b.store[p] != nil {
				c := b.store[p][pk.slot]
				pk.val, pk.ts = c.val, c.ts
			}
		}
	}
	lf = ld.Begin("access", trace.PhaseAccess)
	m.AddSteps(int64(maxPer))
	lf.End()

	home, back := b.eng.Route(b.ret, full, delivered, func(p rmPkt) int { return p.origin })
	lf = ld.Begin("return", trace.PhaseReturn)
	m.AddSteps(back)
	lf.End()

	res := make([]Word, len(ops))
	best := make([]int64, len(ops))
	for i := range best {
		best[i] = -1
	}
	for p := range home {
		for _, pk := range home[p] {
			if pk.ts > best[pk.op] {
				best[pk.op] = pk.ts
				res[pk.op] = pk.val
			}
		}
		home[p] = home[p][:0] // leave the return buffer empty for reuse
	}
	for i, op := range ops {
		if op.IsWrite {
			res[i] = op.Value
		}
	}
	step.End()
	return res, costFromSpan(step)
}
