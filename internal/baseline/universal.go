package baseline

import (
	"fmt"
	"math/rand"
)

// Carter–Wegman universal hashing [CW79], the memory-distribution
// mechanism of the randomized simulation literature the paper contrasts
// itself with ([MV84, KU88, Ran91, …]): h_{a,b}(x) = ((a·x + b) mod p)
// mod n with p prime and a ∈ [1,p), b ∈ [0,p) drawn at random. The
// class is 2-universal: Pr[h(x) = h(y)] ≤ 1/n for x ≠ y, which gives
// good *expected* module contention — but any fixed h admits a bad
// request set (experiment E14), which is exactly why the deterministic
// scheme replicates.

// CWHash is one member of the Carter–Wegman class.
type CWHash struct {
	P, A, B uint64
	N       uint64
}

// NewCWHash draws a hash function for the given universe and range from
// the seeded generator.
func NewCWHash(universe, n int, seed int64) (CWHash, error) {
	if universe < 1 || n < 1 {
		return CWHash{}, fmt.Errorf("baseline: bad CW parameters universe=%d n=%d", universe, n)
	}
	p := nextPrime(uint64(universe))
	rng := rand.New(rand.NewSource(seed))
	return CWHash{
		P: p,
		A: 1 + uint64(rng.Int63n(int64(p-1))),
		B: uint64(rng.Int63n(int64(p))),
		N: uint64(n),
	}, nil
}

// Apply evaluates the hash.
func (h CWHash) Apply(x int) int {
	return int((h.A*uint64(x) + h.B) % h.P % h.N)
}

// nextPrime returns the smallest prime ≥ max(v+1, 3).
func nextPrime(v uint64) uint64 {
	c := v + 1
	if c < 3 {
		c = 3
	}
	if c%2 == 0 {
		c++
	}
	for !isPrime(c) {
		c += 2
	}
	return c
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NewNoReplicationCW creates the single-copy baseline with a freshly
// drawn Carter–Wegman placement instead of the fixed multiplicative
// hash — the randomized competitor of experiment E14.
func NewNoReplicationCW(side, vars int, seed int64) (*NoReplication, error) {
	b, err := NewNoReplication(side, vars)
	if err != nil {
		return nil, err
	}
	h, err := NewCWHash(vars, b.M.N, seed)
	if err != nil {
		return nil, err
	}
	b.cw = &h
	return b, nil
}
