package baseline

import (
	"testing"
)

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 3}, {1, 3}, {2, 3}, {3, 5}, {10, 11}, {100, 101}, {9800, 9803},
	}
	for _, c := range cases {
		if got := nextPrime(c.in); got != c.want {
			t.Errorf("nextPrime(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 101, 9803}
	composites := []uint64{0, 1, 4, 9, 100, 9801}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("%d should be composite", c)
		}
	}
}

func TestCWHashRange(t *testing.T) {
	h, err := NewCWHash(10000, 81, 3)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 10000; x++ {
		v := h.Apply(x)
		if v < 0 || v >= 81 {
			t.Fatalf("h(%d) = %d out of range", x, v)
		}
	}
}

// 2-universality: over random draws of h, the empirical collision rate
// of fixed pairs must be near 1/n.
func TestCWHashUniversality(t *testing.T) {
	const universe, n, draws = 5000, 81, 400
	pairs := [][2]int{{0, 1}, {17, 3000}, {4999, 2500}, {123, 321}}
	for _, pair := range pairs {
		collisions := 0
		for s := int64(0); s < draws; s++ {
			h, err := NewCWHash(universe, n, s)
			if err != nil {
				t.Fatal(err)
			}
			if h.Apply(pair[0]) == h.Apply(pair[1]) {
				collisions++
			}
		}
		rate := float64(collisions) / draws
		// Expect ≈ 1/81 ≈ 0.0123; allow generous sampling slack.
		if rate > 4.0/float64(n) {
			t.Errorf("pair %v: collision rate %.4f far above 1/n = %.4f", pair, rate, 1.0/float64(n))
		}
	}
}

// Distribution balance: a random CW hash spreads the universe within a
// constant factor of uniform.
func TestCWHashBalance(t *testing.T) {
	h, err := NewCWHash(9801, 729, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 729)
	for x := 0; x < 9801; x++ {
		counts[h.Apply(x)]++
	}
	avg := 9801.0 / 729.0
	for p, c := range counts {
		if float64(c) > 6*avg {
			t.Fatalf("processor %d holds %d vars (avg %.1f)", p, c, avg)
		}
	}
}

func TestNoReplicationCWConsistency(t *testing.T) {
	b, err := NewNoReplicationCW(9, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Origin: 0, Var: 10, IsWrite: true, Value: 5},
		{Origin: 1, Var: 20, IsWrite: true, Value: 6},
	}
	b.Step(ops)
	res, _ := b.Step([]Op{{Origin: 3, Var: 10}, {Origin: 4, Var: 20}})
	if res[0] != 5 || res[1] != 6 {
		t.Fatalf("reads %v", res)
	}
	// Home must agree with the CW placement, not the multiplicative one.
	if b.Home(10) != b.cw.Apply(10) {
		t.Fatal("Home ignores the CW hash")
	}
}

func TestNewCWHashValidation(t *testing.T) {
	if _, err := NewCWHash(0, 10, 1); err == nil {
		t.Error("universe 0 accepted")
	}
	if _, err := NewCWHash(10, 0, 1); err == nil {
		t.Error("range 0 accepted")
	}
}
