package baseline

import (
	"math/rand"
	"testing"
)

func TestNoReplicationReadWrite(t *testing.T) {
	b, err := NewNoReplication(9, 500)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 50)
	for i := range ops {
		ops[i] = Op{Origin: i, Var: i * 7 % 500, IsWrite: true, Value: Word(100 + i)}
	}
	// Ensure distinct vars.
	seen := map[int]bool{}
	for i := range ops {
		for seen[ops[i].Var] {
			ops[i].Var = (ops[i].Var + 1) % 500
		}
		seen[ops[i].Var] = true
	}
	res, cost := b.Step(ops)
	if cost.Total() <= 0 {
		t.Fatal("free step")
	}
	for i := range ops {
		if res[i] != ops[i].Value {
			t.Fatalf("write echo %d", i)
		}
	}
	reads := make([]Op, len(ops))
	for i := range reads {
		reads[i] = Op{Origin: (i + 3) % b.M.N, Var: ops[i].Var}
	}
	res, _ = b.Step(reads)
	for i := range reads {
		if res[i] != ops[i].Value {
			t.Fatalf("read %d got %d want %d", i, res[i], ops[i].Value)
		}
	}
}

func TestNoReplicationUnwrittenZero(t *testing.T) {
	b, _ := NewNoReplication(9, 100)
	res, _ := b.Step([]Op{{Origin: 0, Var: 5}})
	if res[0] != 0 {
		t.Fatalf("unwritten read %d", res[0])
	}
}

func TestNoReplicationAdversarialHotspot(t *testing.T) {
	b, _ := NewNoReplication(9, 20000)
	hot := b.Home(0)
	vars := b.VarsOnProc(hot, 64)
	if len(vars) < 32 {
		t.Skipf("only %d vars on hotspot", len(vars))
	}
	ops := make([]Op, len(vars))
	for i, v := range vars {
		ops[i] = Op{Origin: i, Var: v}
	}
	_, hotCost := b.Step(ops)

	// Same number of random distinct vars for comparison.
	rng := rand.New(rand.NewSource(1))
	rops := make([]Op, len(vars))
	seen := map[int]bool{}
	for i := range rops {
		v := rng.Intn(20000)
		for seen[v] {
			v = rng.Intn(20000)
		}
		seen[v] = true
		rops[i] = Op{Origin: i, Var: v}
	}
	_, rndCost := b.Step(rops)
	if hotCost.Total() <= rndCost.Total() {
		t.Fatalf("hotspot (%d) not slower than random (%d)", hotCost.Total(), rndCost.Total())
	}
	// The access phase alone must serialize: |vars| accesses at one proc.
	if hotCost.Access != int64(len(vars)) {
		t.Fatalf("hotspot access %d, want %d", hotCost.Access, len(vars))
	}
}

func TestNoReplicationPanics(t *testing.T) {
	b, _ := NewNoReplication(3, 10)
	mustPanic := func(ops []Op) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		b.Step(ops)
	}
	mustPanic([]Op{{Origin: 0, Var: 10}})
	mustPanic([]Op{{Origin: 0, Var: 1}, {Origin: 1, Var: 1}})
}

func TestRandomMOSConsistency(t *testing.T) {
	b, err := NewRandomMOS(9, 300, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	ideal := map[int]Word{}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 25; step++ {
		batch := rng.Intn(40) + 1
		vars := rng.Perm(300)[:batch]
		ops := make([]Op, batch)
		expect := make([]Word, batch)
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				val := Word(rng.Intn(1 << 20))
				ops[i] = Op{Origin: rng.Intn(b.M.N), Var: v, IsWrite: true, Value: val}
				expect[i] = val
			} else {
				ops[i] = Op{Origin: rng.Intn(b.M.N), Var: v}
				expect[i] = ideal[v]
			}
		}
		res, _ := b.Step(ops)
		for i := range ops {
			if res[i] != expect[i] {
				t.Fatalf("step %d op %d: got %d want %d", step, i, res[i], expect[i])
			}
			if ops[i].IsWrite {
				ideal[ops[i].Var] = ops[i].Value
			}
		}
	}
}

func TestRandomMOSValidation(t *testing.T) {
	if _, err := NewRandomMOS(9, 10, 1, 0); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := NewRandomMOS(0, 10, 2, 0); err == nil {
		t.Error("side 0 accepted")
	}
}

func TestRandomMOSPlacementDistinct(t *testing.T) {
	b, _ := NewRandomMOS(9, 200, 3, 11)
	for v, procs := range b.place {
		if len(procs) != 5 {
			t.Fatalf("var %d has %d copies", v, len(procs))
		}
		seen := map[int32]bool{}
		for _, p := range procs {
			if seen[p] {
				t.Fatalf("var %d placed twice on proc %d", v, p)
			}
			seen[p] = true
		}
	}
}

func TestMapBytes(t *testing.T) {
	nr, _ := NewNoReplication(9, 1000)
	if nr.MapBytes() != 8 {
		t.Fatalf("no-replication map %d bytes", nr.MapBytes())
	}
	rm, _ := NewRandomMOS(9, 1000, 2, 1)
	if rm.MapBytes() != 1000*3*4 {
		t.Fatalf("random MOS map %d bytes", rm.MapBytes())
	}
}

func BenchmarkNoReplicationStep(b *testing.B) {
	nr, _ := NewNoReplication(27, 100000)
	ops := make([]Op, nr.M.N)
	for i := range ops {
		ops[i] = Op{Origin: i, Var: i, IsWrite: i%2 == 0, Value: Word(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nr.Step(ops)
	}
}
