package hmos

import (
	"math/rand"
	"testing"

	"meshpram/internal/bibd"
)

// Small but nondegenerate instances used across the tests.
var testParams = []Params{
	{Side: 9, Q: 3, D: 3, K: 2},
	{Side: 9, Q: 3, D: 4, K: 1},
	{Side: 27, Q: 3, D: 4, K: 2},
	{Side: 27, Q: 3, D: 5, K: 2},
	{Side: 27, Q: 3, D: 4, K: 3},
	{Side: 16, Q: 4, D: 3, K: 2},
	{Side: 25, Q: 5, D: 3, K: 2},
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{Side: 9, Q: 3, D: 3, K: 0},  // k too small
		{Side: 9, Q: 3, D: 1, K: 1},  // d too small
		{Side: 9, Q: 2, D: 3, K: 1},  // q too small for quorum
		{Side: 9, Q: 6, D: 3, K: 1},  // q not a prime power
		{Side: 10, Q: 3, D: 3, K: 2}, // mesh not divisible by 3^4
		{Side: 9, Q: 3, D: 5, K: 2},  // 3^6 pages > 81 processors
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("params %+v accepted, want error", p)
		}
	}
}

func TestStructuralCounts(t *testing.T) {
	for _, p := range testParams {
		s := MustNew(p)
		if s.M != bibd.F(p.Q, p.D) {
			t.Fatalf("%+v: M=%d want f(d)=%d", p, s.M, bibd.F(p.Q, p.D))
		}
		if s.ModCount[0] != s.M {
			t.Fatalf("%+v: m_0=%d", p, s.ModCount[0])
		}
		for i := 1; i <= p.K; i++ {
			if s.ModCount[i] != ipow(p.Q, s.Ds[i-1]) {
				t.Fatalf("%+v: m_%d=%d want q^%d", p, i, s.ModCount[i], s.Ds[i-1])
			}
			// Equation (3): p_i = q·m_{i-1}/m_i exactly (uniform).
			if s.PagesPer[i] != p.Q*s.ModCount[i-1]/s.ModCount[i] {
				t.Fatalf("%+v: p_%d=%d", p, i, s.PagesPer[i])
			}
			// Tessellation count: m_i · q^(K-i) level-i pages.
			wantPages := s.ModCount[i] * ipow(p.Q, p.K-i)
			if s.PageCount(i) != wantPages {
				t.Fatalf("%+v: %d level-%d regions, want %d", p, s.PageCount(i), i, wantPages)
			}
			if s.T[i]*wantPages != s.N {
				t.Fatalf("%+v: t_%d=%d does not tile n", p, i, s.T[i])
			}
			for pg := 0; pg < wantPages; pg++ {
				if r := s.PageRegion(i, pg); r.Size() != s.T[i] {
					t.Fatalf("%+v: level-%d region size %d != t_i %d", p, i, r.Size(), s.T[i])
				}
			}
		}
		if s.Redundant != ipow(p.Q, p.K) {
			t.Fatalf("%+v: redundancy %d", p, s.Redundant)
		}
		if a := s.Alpha(); a <= 0 {
			t.Fatalf("%+v: alpha %f", p, a)
		}
	}
}

// d_{i+1} = ceil(d_i/2)+1 per the paper.
func TestLevelDimensionRecurrence(t *testing.T) {
	s := MustNew(Params{Side: 27, Q: 3, D: 4, K: 3})
	want := []int{4, 3, 3}
	for i, d := range want {
		if s.Ds[i] != d {
			t.Fatalf("Ds=%v want %v", s.Ds, want)
		}
	}
}

func TestCopyEnumeration(t *testing.T) {
	for _, p := range testParams {
		s := MustNew(p)
		slots := map[int64]bool{}
		perProc := make([]int, s.N)
		var buf []Copy
		for v := 0; v < s.M; v++ {
			buf = s.Copies(v, buf[:0])
			if len(buf) != s.Redundant {
				t.Fatalf("%+v: var %d has %d copies", p, v, len(buf))
			}
			for _, c := range buf {
				if slots[c.Slot] {
					t.Fatalf("%+v: duplicate slot %d", p, c.Slot)
				}
				slots[c.Slot] = true
				perProc[c.Proc]++
				// Path adjacency: path[i] adjacent to path[i-1] in Graphs[i].
				prev := v
				for i := 0; i < p.K; i++ {
					if s.Graphs[i].EdgeIndex(prev, c.Path[i]) == -1 {
						t.Fatalf("%+v: var %d leaf %d: path level %d not adjacent", p, v, c.Leaf, i)
					}
					prev = c.Path[i]
				}
				// Processor must lie inside every level's page region.
				for lev := 1; lev <= p.K; lev++ {
					reg := s.PageRegion(lev, s.PageIndex(lev, c.Path))
					if !reg.Contains(s.Mesh(), c.Proc) {
						t.Fatalf("%+v: var %d leaf %d: proc %d outside level-%d page region %v",
							p, v, c.Leaf, c.Proc, lev, reg)
					}
				}
			}
		}
		// Every processor stores a balanced share of copies.
		total := 0
		lo, hi := 1<<30, 0
		for _, cnt := range perProc {
			total += cnt
			if cnt < lo {
				lo = cnt
			}
			if cnt > hi {
				hi = cnt
			}
		}
		if total != s.M*s.Redundant {
			t.Fatalf("%+v: %d copies placed, want %d", p, total, s.M*s.Redundant)
		}
		// Copies per level-1 page = p_1, spread over t_1 processors.
		wantHi := (s.PagesPer[1] + s.T[1] - 1) / s.T[1]
		wantLo := s.PagesPer[1] / s.T[1]
		if lo < wantLo || hi > wantHi {
			t.Fatalf("%+v: per-proc copy counts in [%d,%d], want within [%d,%d]",
				p, lo, hi, wantLo, wantHi)
		}
	}
}

// The implicit tessellation must reproduce the materialized one: for
// every level, PageRegion(level, i) equals SplitQ(q, pageCount)[i].
func TestPageRegionMatchesSplitQ(t *testing.T) {
	for _, p := range testParams {
		s := MustNew(p)
		full := s.Mesh().Full()
		for lev := 1; lev <= p.K; lev++ {
			regs, err := full.SplitQ(p.Q, s.PageCount(lev))
			if err != nil {
				t.Fatalf("%+v: SplitQ level %d: %v", p, lev, err)
			}
			for i, want := range regs {
				if got := s.PageRegion(lev, i); got != want {
					t.Fatalf("%+v: PageRegion(%d,%d)=%v, want %v", p, lev, i, got, want)
				}
			}
		}
	}
}

// SlotPlace must agree with CopyAt, and SlotOfPageRank must invert it.
func TestSlotPlaceRoundtrip(t *testing.T) {
	for _, p := range testParams {
		s := MustNew(p)
		for v := 0; v < s.M; v++ {
			for leaf := 0; leaf < s.Redundant; leaf++ {
				c := s.CopyAt(v, leaf)
				page, r1, proc := s.SlotPlace(c.Slot)
				if proc != c.Proc {
					t.Fatalf("%+v: slot %d placed at proc %d, CopyAt says %d", p, c.Slot, proc, c.Proc)
				}
				if want := s.PageIndex(1, c.Path); page != want {
					t.Fatalf("%+v: slot %d page %d, want %d", p, c.Slot, page, want)
				}
				if wr1, _ := s.SlotWithinPage(v, c.Path); r1 != wr1 {
					t.Fatalf("%+v: slot %d rank %d, want %d", p, c.Slot, r1, wr1)
				}
				if got := s.SlotOfPageRank(page, r1); got != c.Slot {
					t.Fatalf("%+v: SlotOfPageRank(%d,%d)=%d, want %d", p, page, r1, got, c.Slot)
				}
			}
		}
	}
}

func TestLeafDigitsRoundtrip(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	for leaf := 0; leaf < s.Redundant; leaf++ {
		if got := s.LeafOf(s.DigitsOf(leaf)); got != leaf {
			t.Fatalf("LeafOf(DigitsOf(%d)) = %d", leaf, got)
		}
	}
}

// Copies of a variable must live in q distinct level-1 modules (the
// BIBD neighbors), and the level-i page regions must nest.
func TestPageNesting(t *testing.T) {
	s := MustNew(Params{Side: 27, Q: 3, D: 4, K: 2})
	var buf []Copy
	for v := 0; v < 50; v++ {
		buf = s.Copies(v, buf[:0])
		for _, c := range buf {
			inner := s.PageRegion(1, s.PageIndex(1, c.Path))
			outer := s.PageRegion(2, s.PageIndex(2, c.Path))
			if inner.R0 < outer.R0 || inner.C0 < outer.C0 ||
				inner.R0+inner.H > outer.R0+outer.H || inner.C0+inner.W > outer.C0+outer.W {
				t.Fatalf("var %d leaf %d: level-1 region %v not inside level-2 region %v",
					v, c.Leaf, inner, outer)
			}
		}
	}
}

func TestMinTargetSetSize(t *testing.T) {
	cases := []struct{ q, k, i, want int }{
		{3, 2, 0, 9}, {3, 2, 1, 6}, {3, 2, 2, 4},
		{3, 3, 0, 27}, {3, 3, 3, 8},
		{4, 2, 2, 9}, {5, 2, 2, 9}, {5, 2, 0, 16},
	}
	for _, c := range cases {
		if got := MinTargetSetSize(c.q, c.k, c.i); got != c.want {
			t.Errorf("MinTargetSetSize(%d,%d,%d)=%d want %d", c.q, c.k, c.i, got, c.want)
		}
	}
}

func TestSelectTargetSetFullAvail(t *testing.T) {
	for _, p := range testParams {
		s := MustNew(p)
		avail := make([]bool, s.Redundant)
		for i := range avail {
			avail[i] = true
		}
		for i := 0; i <= p.K; i++ {
			sel, ok := s.SelectTargetSet(i, avail, nil)
			if !ok {
				t.Fatalf("%+v: no level-%d target set in full leaf set", p, i)
			}
			if !s.IsTargetSet(i, sel) {
				t.Fatalf("%+v: selected set is not a level-%d target set", p, i)
			}
			size := popcount(sel)
			if size != MinTargetSetSize(p.Q, p.K, i) {
				t.Fatalf("%+v: level-%d set size %d, want %d", p, i, size, MinTargetSetSize(p.Q, p.K, i))
			}
			// Minimality: removing any selected leaf must break it.
			for l := range sel {
				if !sel[l] {
					continue
				}
				sel[l] = false
				if s.IsTargetSet(i, sel) {
					t.Fatalf("%+v: level-%d set not minimal (leaf %d removable)", p, i, l)
				}
				sel[l] = true
			}
		}
	}
}

func TestSelectTargetSetRespectsAvailability(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		avail := make([]bool, s.Redundant)
		for i := range avail {
			avail[i] = rng.Intn(3) > 0
		}
		for lvl := 0; lvl <= s.K; lvl++ {
			sel, ok := s.SelectTargetSet(lvl, avail, nil)
			if ok != s.IsTargetSet(lvl, avail) {
				t.Fatalf("ok=%v but avail target-set=%v", ok, s.IsTargetSet(lvl, avail))
			}
			if !ok {
				continue
			}
			for l := range sel {
				if sel[l] && !avail[l] {
					t.Fatal("selected unavailable leaf")
				}
			}
			if !s.IsTargetSet(lvl, sel) {
				t.Fatal("selected mask not a target set")
			}
		}
	}
}

func TestSelectTargetSetPrefersMarked(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	avail := make([]bool, s.Redundant)
	for i := range avail {
		avail[i] = true
	}
	// Mark a full minimal plain target set as preferred: the selection
	// must then use preferred leaves only.
	pref, ok := s.SelectTargetSet(s.K, avail, nil)
	if !ok {
		t.Fatal("setup failed")
	}
	sel, ok := s.SelectTargetSet(s.K, avail, pref)
	if !ok {
		t.Fatal("selection failed")
	}
	for l := range sel {
		if sel[l] && !pref[l] {
			t.Fatalf("leaf %d selected despite a fully-preferred target set existing", l)
		}
	}
}

// The consistency keystone: any two plain target sets intersect.
func TestTargetSetsIntersect(t *testing.T) {
	for _, p := range []Params{{Side: 9, Q: 3, D: 3, K: 2}, {Side: 16, Q: 4, D: 3, K: 2}, {Side: 25, Q: 5, D: 3, K: 2}} {
		s := MustNew(p)
		rng := rand.New(rand.NewSource(int64(p.Q)))
		for trial := 0; trial < 300; trial++ {
			// Two random minimal target sets, biased differently.
			prefA := make([]bool, s.Redundant)
			prefB := make([]bool, s.Redundant)
			avail := make([]bool, s.Redundant)
			for i := range avail {
				avail[i] = true
				prefA[i] = rng.Intn(2) == 0
				prefB[i] = rng.Intn(2) == 0
			}
			a, _ := s.SelectTargetSet(s.K, avail, prefA)
			b, _ := s.SelectTargetSet(s.K, avail, prefB)
			inter := false
			for l := range a {
				if a[l] && b[l] {
					inter = true
					break
				}
			}
			if !inter {
				t.Fatalf("%+v trial %d: disjoint target sets", p, trial)
			}
		}
	}
}

// A minimal level-i target set contains a plain target set (§3.2).
func TestLevelTargetContainsPlainTarget(t *testing.T) {
	s := MustNew(Params{Side: 27, Q: 3, D: 4, K: 3})
	avail := make([]bool, s.Redundant)
	for i := range avail {
		avail[i] = true
	}
	for lvl := 0; lvl <= s.K; lvl++ {
		sel, ok := s.SelectTargetSet(lvl, avail, nil)
		if !ok {
			t.Fatalf("level %d: no set", lvl)
		}
		if !s.AccessedRoot(sel) {
			t.Fatalf("level-%d target set does not access the root", lvl)
		}
	}
}

// Level-i target sets are nested in strength: a level-i set is also a
// level-j target set for every j ≥ i.
func TestTargetSetMonotonicity(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		avail := make([]bool, s.Redundant)
		for i := range avail {
			avail[i] = rng.Intn(2) == 0
		}
		for i := 0; i <= s.K; i++ {
			if !s.IsTargetSet(i, avail) {
				continue
			}
			for j := i; j <= s.K; j++ {
				if !s.IsTargetSet(j, avail) {
					t.Fatalf("mask is level-%d but not level-%d target set", i, j)
				}
			}
		}
	}
}

func TestPageIndexDistribution(t *testing.T) {
	// Every level-1 page must receive exactly p_1 copies overall.
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	counts := make([]int, s.PageCount(1))
	var buf []Copy
	for v := 0; v < s.M; v++ {
		buf = s.Copies(v, buf[:0])
		for _, c := range buf {
			counts[s.PageIndex(1, c.Path)]++
		}
	}
	for i, c := range counts {
		if c != s.PagesPer[1] {
			t.Fatalf("level-1 page %d holds %d copies, want p_1=%d", i, c, s.PagesPer[1])
		}
	}
}

func popcount(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func BenchmarkCopyAt(b *testing.B) {
	s := MustNew(Params{Side: 27, Q: 3, D: 5, K: 2})
	for i := 0; i < b.N; i++ {
		s.CopyAt(i%s.M, i%s.Redundant)
	}
}

func BenchmarkSelectTargetSet(b *testing.B) {
	s := MustNew(Params{Side: 27, Q: 3, D: 4, K: 3})
	avail := make([]bool, s.Redundant)
	for i := range avail {
		avail[i] = true
	}
	for i := 0; i < b.N; i++ {
		s.SelectTargetSet(i%(s.K+1), avail, nil)
	}
}
