// Package hmos implements the Hierarchical Memory Organization Scheme
// of §3.1: k levels of logical modules connected by BIBD subgraphs,
// the q-ary copy trees T_v, the level-i page identities, and the
// physical mapping of pages onto nested submesh tessellations (§3.3).
//
// Sizes follow the paper exactly: the shared memory has
// M = f(d) = q^{d-1}(q^d−1)/(q−1) variables (the level-0 modules),
// |U_i| = q^{d_i} level-i modules with d_1 = d and
// d_{i+1} = ⌈d_i/2⌉ + 1, and each level-(i−1) module is replicated into
// q pages stored in distinct level-i modules according to a balanced
// subgraph of a (q^{d_i}, q)-BIBD. Every variable therefore has q^k
// copies, the leaves of its copy tree T_v, addressed by the vector of
// edge indices (x_1, …, x_k) ∈ GF(q)^k.
//
// Because level 1 uses the full BIBD (|U_0| = f(d_1) exactly) and for
// i ≥ 2 the ratio q·m_{i−1}/m_i = q^{d_{i−1}−d_i+1} is a power of q,
// every module of a level has exactly the same number of pages, so the
// tessellations of the mesh are exact and all page submeshes of a level
// are congruent.
//
// The memory map is implicit: locating any copy is O(k) arithmetic on
// the BIBD adjacency (see internal/bibd), which realizes the paper's
// claim of constant internal storage per processor.
package hmos

import (
	"fmt"
	"math"

	"meshpram/internal/bibd"
	"meshpram/internal/gf"
	"meshpram/internal/mesh"
)

// Params selects an HMOS instance.
type Params struct {
	Side int // mesh side; n = Side²
	Q    int // prime power ≥ 3 (copies per replication step)
	D    int // d_1: memory size is f(Q, D) variables
	K    int // number of levels, ≥ 1
}

// Scheme is a constructed HMOS bound to a mesh geometry.
type Scheme struct {
	Params
	F    *gf.Field
	N    int // processors
	mach *mesh.Machine

	M  int   // number of variables = f(Q, D)
	Ds []int // Ds[i] = d_{i+1} for i = 0..K-1 (Ds[0] = D)

	// Graphs[i] is the bipartite graph between U_i and U_{i+1}
	// (i = 0..K-1): a balanced subgraph of a (q^{d_{i+1}}, q)-BIBD with
	// ModCount[i] inputs.
	Graphs []*bibd.Design

	ModCount  []int // ModCount[i] = m_i = |U_i|, i = 0..K
	PagesPer  []int // PagesPer[i] = p_i for i = 1..K (index 0 unused): level-(i-1) pages per level-i module
	Redundant int   // q^K copies per variable

	// pageCount[i], i = 1..K, is the number of level-i pages — the
	// tessellations themselves are implicit: PageRegion recomputes any
	// page's submesh arithmetically from topTess, the only cached level
	// (the level-K tessellation, ModCount[K] regions).
	pageCount []int
	topTess   []mesh.Region

	// T[i] = processors per level-i submesh (paper's t_i), i = 1..K.
	T []int

	qPowK []int // q^0..q^K
}

// New constructs and validates an HMOS instance over the given mesh.
func New(p Params) (*Scheme, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("hmos: k=%d must be ≥ 1", p.K)
	}
	if p.D < 2 {
		return nil, fmt.Errorf("hmos: d=%d must be ≥ 2", p.D)
	}
	if p.Q < 3 {
		return nil, fmt.Errorf("hmos: q=%d must be ≥ 3 (majority quorum needs ⌊q/2⌋+2 ≤ q)", p.Q)
	}
	f, err := gf.New(p.Q)
	if err != nil {
		return nil, fmt.Errorf("hmos: %w", err)
	}
	m, err := mesh.New(p.Side)
	if err != nil {
		return nil, fmt.Errorf("hmos: %w", err)
	}
	s := &Scheme{Params: p, F: f, N: m.N, mach: m}

	// Level dimensions d_1..d_k and module counts m_0..m_k.
	s.Ds = make([]int, p.K)
	s.Ds[0] = p.D
	for i := 1; i < p.K; i++ {
		s.Ds[i] = (s.Ds[i-1]+1)/2 + 1
	}
	s.M = bibd.F(p.Q, p.D)
	s.ModCount = make([]int, p.K+1)
	s.ModCount[0] = s.M
	for i := 1; i <= p.K; i++ {
		s.ModCount[i] = ipow(p.Q, s.Ds[i-1])
	}

	// Inter-level graphs.
	s.Graphs = make([]*bibd.Design, p.K)
	for i := 0; i < p.K; i++ {
		g, err := bibd.NewSub(f, s.Ds[i], s.ModCount[i])
		if err != nil {
			return nil, fmt.Errorf("hmos: level %d graph: %w", i+1, err)
		}
		s.Graphs[i] = g
	}

	// Pages per module. Uniform by construction; verify.
	s.PagesPer = make([]int, p.K+1)
	for i := 1; i <= p.K; i++ {
		lo := p.Q * s.ModCount[i-1] / s.ModCount[i]
		if p.Q*s.ModCount[i-1]%s.ModCount[i] != 0 {
			return nil, fmt.Errorf("hmos: level %d pages per module %d/%d not integral",
				i, p.Q*s.ModCount[i-1], s.ModCount[i])
		}
		s.PagesPer[i] = lo
	}

	// Tessellations. The level-i page count must be a power of q
	// dividing the mesh; only the level-K regions are materialized
	// (topTess), every lower level is recomputed on demand by
	// PageRegion.
	s.pageCount = make([]int, p.K+1)
	s.T = make([]int, p.K+1)
	full := m.Full()
	parts := 1
	for i := p.K; i >= 1; i-- {
		if i == p.K {
			parts = s.ModCount[p.K]
		} else {
			parts *= s.PagesPer[i+1]
		}
		if err := splitCheck(full.H, full.W, p.Q, parts); err != nil {
			return nil, fmt.Errorf("hmos: level-%d tessellation (%d parts on %d×%d mesh): %w",
				i, parts, p.Side, p.Side, err)
		}
		if s.N%parts != 0 {
			return nil, fmt.Errorf("hmos: %d level-%d pages do not divide n=%d", parts, i, s.N)
		}
		s.pageCount[i] = parts
		s.T[i] = s.N / parts
	}
	topTess, err := full.SplitQ(p.Q, s.ModCount[p.K])
	if err != nil {
		return nil, fmt.Errorf("hmos: level-%d tessellation: %w", p.K, err)
	}
	s.topTess = topTess
	if s.T[1] < 1 {
		return nil, fmt.Errorf("hmos: t_1 = %d < 1 (memory too large for this mesh: α > 2(1-(k-1)/log_q n))", s.T[1])
	}

	s.qPowK = make([]int, p.K+1)
	s.qPowK[0] = 1
	for i := 1; i <= p.K; i++ {
		s.qPowK[i] = s.qPowK[i-1] * p.Q
	}
	s.Redundant = s.qPowK[p.K]
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(p Params) *Scheme {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Vars returns the number of shared-memory variables M.
func (s *Scheme) Vars() int { return s.M }

// Alpha returns log(M)/log(n), the memory-size exponent.
func (s *Scheme) Alpha() float64 {
	return logf(float64(s.M)) / logf(float64(s.N))
}

// CopiesPerVar returns q^k.
func (s *Scheme) CopiesPerVar() int { return s.Redundant }

// CopiesPerLevel1Page returns p_1, the number of variable copies stored
// in one level-1 page.
func (s *Scheme) CopiesPerLevel1Page() int { return s.PagesPer[1] }

// MapBytes returns the storage a processor needs to evaluate the whole
// memory map: the scheme parameters plus four integers per level
// (d_i, m_i, p_i, t_i) — independent of the memory size M, which is the
// constructivity pay-off measured by experiment E10.
func (s *Scheme) MapBytes() int64 { return int64(8 * (6 + 4*s.K)) }

// Copy identifies one replica of a variable, fully located.
type Copy struct {
	Var  int // variable index
	Leaf int // leaf index in T_v: Σ x_j · q^{k-j}, x_1 most significant

	// Path[i] = l_{i+1}: the level-(i+1) module on the leaf-to-root
	// path, i = 0..K-1.
	Path []int

	Proc int   // processor storing the copy
	Slot int64 // globally unique copy id: Var·q^k + Leaf
}

// LeafOf composes a leaf index from edge digits x (x[0] = x_1 taken at
// the root).
func (s *Scheme) LeafOf(x []int) int {
	leaf := 0
	for _, xi := range x {
		leaf = leaf*s.Q + xi
	}
	return leaf
}

// DigitsOf decomposes a leaf index into edge digits (inverse of LeafOf).
func (s *Scheme) DigitsOf(leaf int) []int {
	x := make([]int, s.K)
	for j := s.K - 1; j >= 0; j-- {
		x[j] = leaf % s.Q
		leaf /= s.Q
	}
	return x
}

// CopyAt locates the copy of variable v at the given leaf of T_v.
func (s *Scheme) CopyAt(v, leaf int) Copy {
	if v < 0 || v >= s.M {
		panic(fmt.Sprintf("hmos: variable %d out of range [0,%d)", v, s.M))
	}
	if leaf < 0 || leaf >= s.Redundant {
		panic(fmt.Sprintf("hmos: leaf %d out of range [0,%d)", leaf, s.Redundant))
	}
	x := s.DigitsOf(leaf)
	path := make([]int, s.K)
	cur := v
	for i := 0; i < s.K; i++ {
		h, a, b := s.Graphs[i].Split(cur)
		cur = s.Graphs[i].OutputAt(h, a, b, x[i])
		path[i] = cur
	}
	c := Copy{Var: v, Leaf: leaf, Path: path, Slot: int64(v)*int64(s.Redundant) + int64(leaf)}
	c.Proc = s.procOf(v, path)
	return c
}

// Copies returns all q^k copies of variable v, appended to dst.
func (s *Scheme) Copies(v int, dst []Copy) []Copy {
	for leaf := 0; leaf < s.Redundant; leaf++ {
		dst = append(dst, s.CopyAt(v, leaf))
	}
	return dst
}

// PageIndex returns the index (into the level-`level` tessellation) of
// the page holding a copy with the given path, for 1 ≤ level ≤ K. The
// index composes the canonical SplitQ child digits: the level-k module
// id first, then, at each level lev below k, the rank of module
// path[lev-1] among the inputs of its parent path[lev] in the
// inter-level graph Graphs[lev] — exactly the order in which SplitQ
// enumerates nested subregions, so PageRegion(level,
// PageIndex(level, path)) is the page's submesh.
func (s *Scheme) PageIndex(level int, path []int) int {
	if level < 1 || level > s.K {
		panic(fmt.Sprintf("hmos: level %d out of range [1,%d]", level, s.K))
	}
	idx := path[s.K-1] // level-k module id
	for lev := s.K - 1; lev >= level; lev-- {
		child := s.Graphs[lev].RankOfInput(path[lev], path[lev-1])
		idx = idx*s.PagesPer[lev+1] + child
	}
	return idx
}

// PageCount returns the number of level-`level` pages, 1 ≤ level ≤ K.
func (s *Scheme) PageCount(level int) int {
	if level < 1 || level > s.K {
		panic(fmt.Sprintf("hmos: level %d out of range [1,%d]", level, s.K))
	}
	return s.pageCount[level]
}

// PageRegion returns the submesh of level-`level` page idx without
// materializing the tessellation: the page index's leading digits pick
// a cached level-K region (topTess), the remaining digits descend into
// it by SubRegionAt. Nested SplitQ tessellations refine digit by
// digit, so this equals SplitQ(q, PageCount(level))[idx].
func (s *Scheme) PageRegion(level, idx int) mesh.Region {
	if level < 1 || level > s.K {
		panic(fmt.Sprintf("hmos: level %d out of range [1,%d]", level, s.K))
	}
	per := s.pageCount[level] / s.ModCount[s.K]
	return s.topTess[idx/per].SubRegionAt(s.Q, per, idx%per)
}

// Mesh returns the machine geometry the scheme is bound to. The
// returned machine is shared; callers should not charge steps to it
// (create their own mesh.Machine for accounting).
func (s *Scheme) Mesh() *mesh.Machine { return s.mach }

// procOf computes the processor storing the copy of v with the given
// path: descend the tessellations to the level-1 page region, then
// place copy slot r_1 = rank of v among the page's p_1 copies at snake
// position r_1 mod t_1 (copies evenly distributed over the page's
// processors, §3.3).
func (s *Scheme) procOf(v int, path []int) int {
	reg1 := s.PageRegion(1, s.PageIndex(1, path))
	r1 := s.Graphs[0].RankOfInput(path[0], v)
	return reg1.ProcAtSnake(s.mach, r1%s.T[1])
}

// SlotPlace locates copy slot id (= Var·q^k + Leaf) without building a
// Copy: the level-1 page holding it, its rank r1 among the page's p_1
// copies, and the storing processor — O(k) arithmetic, no allocation
// for k ≤ 8.
func (s *Scheme) SlotPlace(slot int64) (page, r1, proc int) {
	v := int(slot / int64(s.Redundant))
	leaf := int(slot % int64(s.Redundant))
	var pbuf [8]int
	path := pbuf[:]
	if s.K > len(pbuf) {
		path = make([]int, s.K)
	}
	cur := v
	for i := 0; i < s.K; i++ {
		h, a, b := s.Graphs[i].Split(cur)
		xi := (leaf / s.qPowK[s.K-1-i]) % s.Q
		cur = s.Graphs[i].OutputAt(h, a, b, xi)
		path[i] = cur
	}
	page = s.PageIndex(1, path[:s.K])
	r1 = s.Graphs[0].RankOfInput(path[0], v)
	proc = s.PageRegion(1, page).ProcAtSnake(s.mach, r1%s.T[1])
	return page, r1, proc
}

// SlotOfPageRank is the inverse of SlotPlace's (page, r1) pair: it
// recovers the slot id of the copy at rank r1 of level-1 page `page`.
// The page digits are decoded bottom-up into the leaf-to-root module
// path (InputAtRank inverts RankOfInput level by level), r1 then names
// the variable among the page's copies, and the leaf index is re-read
// off the path's edge digits.
func (s *Scheme) SlotOfPageRank(page, r1 int) int64 {
	var pbuf, cbuf [8]int
	path, children := pbuf[:], cbuf[:]
	if s.K > len(pbuf) {
		path = make([]int, s.K)
		children = make([]int, s.K)
	}
	rest := page
	for lev := 1; lev < s.K; lev++ {
		children[lev] = rest % s.PagesPer[lev+1]
		rest /= s.PagesPer[lev+1]
	}
	path[s.K-1] = rest
	for lev := s.K - 1; lev >= 1; lev-- {
		path[lev-1] = s.Graphs[lev].InputAtRank(path[lev], children[lev])
	}
	v := s.Graphs[0].InputAtRank(path[0], r1)
	leaf := 0
	cur := v
	for i := 0; i < s.K; i++ {
		leaf = leaf*s.Q + s.Graphs[i].EdgeIndex(cur, path[i])
		cur = path[i]
	}
	return int64(v)*int64(s.Redundant) + int64(leaf)
}

// MemBytes returns the resident heap bytes of the scheme's tables —
// all O(1) in n (the constructivity pay-off): the cached level-K
// tessellation plus the per-level parameter slices. The shared mesh
// machine is excluded (it is O(1) itself and owned by the caller).
func (s *Scheme) MemBytes() int64 {
	b := int64(len(s.topTess)) * int64(4*8) // 4 ints per Region
	for _, sl := range [][]int{s.Ds, s.ModCount, s.PagesPer, s.pageCount, s.T, s.qPowK} {
		b += int64(len(sl)) * 8
	}
	b += int64(len(s.Graphs)) * int64(8*8) // Design headers (qPowers ≤ D+1 ints)
	return b
}

// SlotWithinPage returns the slot of variable v's copy inside its
// level-1 page (its rank among the page's p_1 copies) and the local
// index on the processor.
func (s *Scheme) SlotWithinPage(v int, path []int) (slot, local int) {
	r1 := s.Graphs[0].RankOfInput(path[0], v)
	return r1, r1 / s.T[1]
}

// splitCheck mirrors SplitQ's validation on dimensions alone: parts
// must be a power of q, and the longest-side-first recursion must
// divide exactly at every level. All children of one split are
// congruent, so checking a single descent chain checks the whole
// tessellation.
func splitCheck(h, w, q, parts int) error {
	if parts < 1 {
		return fmt.Errorf("mesh: parts=%d must be ≥ 1", parts)
	}
	for f := parts; f > 1; f /= q {
		if f%q != 0 {
			return fmt.Errorf("mesh: parts=%d is not a power of q=%d", parts, q)
		}
		if h >= w {
			if h%q != 0 {
				return fmt.Errorf("mesh: region height %d not divisible by %d", h, q)
			}
			h /= q
		} else {
			if w%q != 0 {
				return fmt.Errorf("mesh: region width %d not divisible by %d", w, q)
			}
			w /= q
		}
	}
	return nil
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func logf(x float64) float64 { return math.Log(x) }
