package hmos

import "fmt"

// Copy-tree quorum logic (Definition 2 and §3.2).
//
// The copies of a variable form a complete q-ary tree T_v of k+1
// levels: the root (level 0) is the variable, leaves (level k) are the
// copies. A leaf is accessed when its copy is reached; an internal node
// is accessed when a majority (⌊q/2⌋+1) of its children is accessed.
// CULLING works with the stronger notion of *extensive access at level
// i*: internal nodes at tree levels ≥ i require ⌊q/2⌋+2 accessed
// children, nodes at levels < i the plain majority. A level-i target
// set is a leaf set granting the root extensive access at level i; a
// level-k target set is a plain target set.
//
// Any two plain target sets intersect (2(⌊q/2⌋+1) > q at every node, by
// induction), which is what makes timestamped majority reads see the
// latest write.

// Majority returns ⌊q/2⌋+1.
func Majority(q int) int { return q/2 + 1 }

// Extensive returns ⌊q/2⌋+2 (requires q ≥ 3 to be ≤ q).
func Extensive(q int) int { return q/2 + 2 }

// threshold returns the child quorum of an internal node at tree level
// j for level-i target sets.
func threshold(q, i, j int) int {
	if j < i {
		return Majority(q)
	}
	return Extensive(q)
}

// MinTargetSetSize returns the size of a minimal level-i target set:
// Majority^i · Extensive^(k−i) leaves.
func MinTargetSetSize(q, k, i int) int {
	n := 1
	for j := 0; j < k; j++ {
		n *= threshold(q, i, j)
	}
	return n
}

const inf = int64(1) << 60

// SelectTargetSet extracts a minimal level-i target set for a variable
// from the available leaves, preferring the leaves marked preferred
// (CULLING's M_v^i): among all minimal level-i target sets contained in
// avail it selects one using the fewest non-preferred leaves, via a
// bottom-up cost DP over T_v. preferred may be nil (no preference). It
// returns nil, false if avail contains no level-i target set.
//
// avail and preferred are indexed by leaf (length q^k); the result is a
// fresh leaf mask.
func (s *Scheme) SelectTargetSet(i int, avail, preferred []bool) ([]bool, bool) {
	q, k := s.Q, s.K
	if len(avail) != s.Redundant {
		panic(fmt.Sprintf("hmos: avail mask has length %d, want %d", len(avail), s.Redundant))
	}
	var costFn func(j, base int) int64
	costFn = func(j, base int) int64 {
		if j == k {
			if !avail[base] {
				return inf
			}
			if preferred != nil && preferred[base] {
				return 0
			}
			return 1
		}
		span := s.qPowK[k-j-1]
		t := threshold(q, i, j)
		costs := make([]int64, q)
		for c := 0; c < q; c++ {
			costs[c] = costFn(j+1, base+c*span)
		}
		return sumSmallest(costs, t)
	}
	if costFn(0, 0) >= inf {
		return nil, false
	}
	sel := make([]bool, s.Redundant)
	var pick func(j, base int)
	pick = func(j, base int) {
		if j == k {
			sel[base] = true
			return
		}
		span := s.qPowK[k-j-1]
		t := threshold(q, i, j)
		type cc struct {
			c    int
			cost int64
		}
		cs := make([]cc, q)
		for c := 0; c < q; c++ {
			cs[c] = cc{c, costFn(j+1, base+c*span)}
		}
		// Stable selection of the t cheapest children (ties by index).
		for picked := 0; picked < t; picked++ {
			best := -1
			for c := 0; c < q; c++ {
				if cs[c].cost >= inf || cs[c].c < 0 {
					continue
				}
				if best == -1 || cs[c].cost < cs[best].cost {
					best = c
				}
			}
			pick(j+1, base+cs[best].c*span)
			cs[best].c = -1 // consumed
		}
	}
	pick(0, 0)
	return sel, true
}

// IsTargetSet reports whether the leaf mask grants the root extensive
// access at level i (i = K for a plain target set).
func (s *Scheme) IsTargetSet(i int, sel []bool) bool {
	q, k := s.Q, s.K
	var ok func(j, base int) bool
	ok = func(j, base int) bool {
		if j == k {
			return sel[base]
		}
		span := s.qPowK[k-j-1]
		cnt := 0
		for c := 0; c < q; c++ {
			if ok(j+1, base+c*span) {
				cnt++
			}
		}
		return cnt >= threshold(q, i, j)
	}
	return ok(0, 0)
}

// AccessedRoot reports whether the leaf mask accesses the root under
// the plain majority rule of Definition 2 (equivalent to IsTargetSet
// with i = K).
func (s *Scheme) AccessedRoot(sel []bool) bool { return s.IsTargetSet(s.K, sel) }

// sumSmallest returns the sum of the t smallest values, or inf if fewer
// than t are finite.
func sumSmallest(costs []int64, t int) int64 {
	// Insertion-select for tiny q.
	tmp := append([]int64(nil), costs...)
	for i := 0; i < len(tmp); i++ {
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[i] {
				tmp[i], tmp[j] = tmp[j], tmp[i]
			}
		}
	}
	var sum int64
	for i := 0; i < t; i++ {
		if tmp[i] >= inf {
			return inf
		}
		sum += tmp[i]
	}
	return sum
}
