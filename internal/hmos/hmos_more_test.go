package hmos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Larger field orders: q = 7 on a 49-side mesh and q = 9 on an 81-side
// mesh (q = p^e extension field).
func TestLargerFieldSchemes(t *testing.T) {
	for _, p := range []Params{
		{Side: 49, Q: 7, D: 2, K: 2},
		{Side: 81, Q: 9, D: 2, K: 2},
	} {
		s := MustNew(p)
		if s.Redundant != p.Q*p.Q {
			t.Fatalf("q=%d: redundancy %d", p.Q, s.Redundant)
		}
		// Spot-check copy placement over all variables.
		perProc := make(map[int]int)
		var buf []Copy
		for v := 0; v < s.Vars(); v++ {
			buf = s.Copies(v, buf[:0])
			seen := map[int]bool{}
			for _, c := range buf {
				if seen[c.Leaf] {
					t.Fatalf("q=%d: duplicate leaf", p.Q)
				}
				seen[c.Leaf] = true
				perProc[c.Proc]++
			}
		}
		total := 0
		for _, c := range perProc {
			total += c
		}
		if total != s.Vars()*s.Redundant {
			t.Fatalf("q=%d: %d copies placed", p.Q, total)
		}
		// Quorum arithmetic: ⌊q/2⌋+2 ≤ q.
		if Extensive(p.Q) > p.Q {
			t.Fatalf("q=%d: extensive quorum %d exceeds q", p.Q, Extensive(p.Q))
		}
	}
}

// Deep hierarchy: K = 4 at q = 3 (the toy polylog-redundancy regime).
func TestDeepHierarchyK4(t *testing.T) {
	s := MustNew(Params{Side: 27, Q: 3, D: 3, K: 4})
	if s.Redundant != 81 {
		t.Fatalf("redundancy %d", s.Redundant)
	}
	if got, want := MinTargetSetSize(3, 4, 4), 16; got != want {
		t.Fatalf("minimal target set %d, want %d", got, want)
	}
	// All four tessellations must nest: the level-1 region of any copy
	// sits inside its level-2 region, and so on.
	var buf []Copy
	for v := 0; v < 50; v++ {
		buf = s.Copies(v, buf[:0])
		for _, c := range buf {
			for lvl := 1; lvl < s.K; lvl++ {
				in := s.PageRegion(lvl, s.PageIndex(lvl, c.Path))
				out := s.PageRegion(lvl+1, s.PageIndex(lvl+1, c.Path))
				if in.R0 < out.R0 || in.C0 < out.C0 ||
					in.R0+in.H > out.R0+out.H || in.C0+in.W > out.C0+out.W {
					t.Fatalf("var %d leaf %d: level %d not nested in %d", v, c.Leaf, lvl, lvl+1)
				}
			}
		}
	}
}

// Property: for random (variable, leaf) pairs the copy's processor is
// stable and within range, and PageIndex(K) equals the level-k module.
func TestQuickCopyPlacement(t *testing.T) {
	s := MustNew(Params{Side: 27, Q: 3, D: 4, K: 2})
	prop := func(rv, rl uint16) bool {
		v := int(rv) % s.Vars()
		leaf := int(rl) % s.Redundant
		c := s.CopyAt(v, leaf)
		if c.Proc < 0 || c.Proc >= s.N {
			return false
		}
		if s.PageIndex(s.K, c.Path) != c.Path[s.K-1] {
			return false
		}
		// Idempotent.
		c2 := s.CopyAt(v, leaf)
		return c.Proc == c2.Proc && c.Slot == c2.Slot
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// SlotWithinPage must be a bijection onto [0, p_1) within each page.
func TestSlotWithinPageBijection(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	// For each level-1 page, collect the slots of the copies in it.
	slots := map[int]map[int]bool{}
	var buf []Copy
	for v := 0; v < s.Vars(); v++ {
		buf = s.Copies(v, buf[:0])
		for _, c := range buf {
			page := s.PageIndex(1, c.Path)
			slot, local := s.SlotWithinPage(v, c.Path)
			if slot < 0 || slot >= s.PagesPer[1] {
				t.Fatalf("slot %d out of range", slot)
			}
			if local != slot/s.T[1] {
				t.Fatalf("local %d inconsistent with slot %d", local, slot)
			}
			if slots[page] == nil {
				slots[page] = map[int]bool{}
			}
			if slots[page][slot] {
				t.Fatalf("page %d slot %d assigned twice", page, slot)
			}
			slots[page][slot] = true
		}
	}
	for page, set := range slots {
		if len(set) != s.PagesPer[1] {
			t.Fatalf("page %d has %d slots, want %d", page, len(set), s.PagesPer[1])
		}
	}
}

// MapBytes is independent of memory size (the constructivity claim).
func TestMapBytesIndependentOfM(t *testing.T) {
	a := MustNew(Params{Side: 27, Q: 3, D: 4, K: 2})
	b := MustNew(Params{Side: 27, Q: 3, D: 5, K: 2})
	if a.MapBytes() != b.MapBytes() {
		t.Fatalf("map bytes depend on M: %d vs %d", a.MapBytes(), b.MapBytes())
	}
	c := MustNew(Params{Side: 27, Q: 3, D: 4, K: 3})
	if c.MapBytes() <= a.MapBytes() {
		t.Fatal("map bytes should grow with K")
	}
}

// Random subsets that ARE target sets must be found by SelectTargetSet
// with any preference mask.
func TestQuickSelectWithRandomPreference(t *testing.T) {
	s := MustNew(Params{Side: 9, Q: 3, D: 3, K: 2})
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		avail := make([]bool, s.Redundant)
		pref := make([]bool, s.Redundant)
		for i := range avail {
			avail[i] = rng.Intn(4) > 0
			pref[i] = rng.Intn(2) == 0
		}
		sel, ok := s.SelectTargetSet(s.K, avail, pref)
		if ok != s.IsTargetSet(s.K, avail) {
			t.Fatal("ok inconsistent with availability")
		}
		if ok && !s.IsTargetSet(s.K, sel) {
			t.Fatal("selection is not a target set")
		}
	}
}
