// Package workload generates the request sets the experiments feed the
// simulators: uniform random permutations (the paper's generic "any set
// of n distinct variables"), structured patterns (transpose,
// bit-reversal) that are classic congestion stressors, module-hot
// adversarial sets that defeat single-copy organizations, and skewed
// sets. All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math/rand"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
)

// Vars is a request set: a list of distinct variable indexes.
type Vars []int

// RandomDistinct returns count distinct variables drawn uniformly from
// [0, vars).
func RandomDistinct(vars, count int, seed int64) Vars {
	if count > vars {
		count = vars
	}
	rng := rand.New(rand.NewSource(seed))
	return Vars(rng.Perm(vars)[:count])
}

// Stride returns count variables spaced by the given stride (mod vars):
// contiguous for stride 1 — the "dense" pattern that packs requests
// into few BIBD h-blocks.
func Stride(vars, count, stride int) Vars {
	if count > vars {
		count = vars
	}
	out := make(Vars, 0, count)
	seen := make(map[int]bool, count)
	v := 0
	for len(out) < count {
		// When the stride orbit closes before yielding count distinct
		// variables (gcd(stride, vars) > 1), escape to the next unseen
		// one; count ≤ vars guarantees termination.
		for seen[v] {
			v = (v + 1) % vars
		}
		seen[v] = true
		out = append(out, v)
		v = (v + stride) % vars
	}
	return out
}

// Transpose returns the requests of a matrix-transpose step: processor
// (i, j) of a side×side grid requests element (j, i) of a row-major
// side² matrix stored in the first side² variables.
func Transpose(vars, side int) (Vars, error) {
	if side*side > vars {
		return nil, fmt.Errorf("workload: transpose needs %d vars, have %d", side*side, vars)
	}
	out := make(Vars, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			out[i*side+j] = j*side + i
		}
	}
	return out, nil
}

// BitReverse returns the bit-reversal permutation pattern on 2^bits
// requests (a classic worst case for oblivious routing).
func BitReverse(vars, bits int) (Vars, error) {
	n := 1 << bits
	if n > vars {
		return nil, fmt.Errorf("workload: bit-reverse needs %d vars, have %d", n, vars)
	}
	out := make(Vars, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		out[i] = r
	}
	return out, nil
}

// ModuleHot returns up to count distinct variables that all keep a copy
// in the same level-1 module of the scheme — the adversarial set that
// maximizes memory contention on one logical module. For the HMOS this
// is exactly the situation culling plus replication must absorb.
func ModuleHot(s *hmos.Scheme, module, count int) Vars {
	g := s.Graphs[0]
	deg := g.Degree(module)
	if count > deg {
		count = deg
	}
	out := make(Vars, count)
	for r := 0; r < count; r++ {
		out[r] = g.InputAtRank(module, r)
	}
	return out
}

// Reads converts a request set into read ops, one per origin 0..len-1.
func (v Vars) Reads() []core.Op {
	ops := make([]core.Op, len(v))
	for i, vv := range v {
		ops[i] = core.Op{Origin: i, Var: vv}
	}
	return ops
}

// Writes converts a request set into write ops with the given base
// value.
func (v Vars) Writes(base core.Word) []core.Op {
	ops := make([]core.Op, len(v))
	for i, vv := range v {
		ops[i] = core.Op{Origin: i, Var: vv, IsWrite: true, Value: base + core.Word(i)}
	}
	return ops
}

// Mixed converts a request set into alternating read/write ops.
func (v Vars) Mixed(base core.Word) []core.Op {
	ops := make([]core.Op, len(v))
	for i, vv := range v {
		ops[i] = core.Op{Origin: i, Var: vv, IsWrite: i%2 == 0, Value: base + core.Word(i)}
	}
	return ops
}
