package workload

import (
	"testing"

	"meshpram/internal/hmos"
)

func TestRandomDistinct(t *testing.T) {
	v := RandomDistinct(100, 50, 1)
	if len(v) != 50 {
		t.Fatalf("len %d", len(v))
	}
	seen := map[int]bool{}
	for _, x := range v {
		if x < 0 || x >= 100 || seen[x] {
			t.Fatalf("bad or repeated var %d", x)
		}
		seen[x] = true
	}
	// Deterministic per seed.
	v2 := RandomDistinct(100, 50, 1)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("not deterministic")
		}
	}
	if len(RandomDistinct(10, 50, 1)) != 10 {
		t.Fatal("count not clamped to vars")
	}
}

func TestStride(t *testing.T) {
	v := Stride(100, 10, 7)
	if len(v) != 10 {
		t.Fatalf("len %d", len(v))
	}
	for i, x := range v {
		if x != (i*7)%100 {
			t.Fatalf("v[%d]=%d", i, x)
		}
	}
	// Stride sharing a factor with vars must still produce distinct vars.
	v = Stride(100, 60, 10)
	seen := map[int]bool{}
	for _, x := range v {
		if seen[x] {
			t.Fatalf("repeat %d", x)
		}
		seen[x] = true
	}
}

func TestTranspose(t *testing.T) {
	v, err := Transpose(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 16 {
		t.Fatalf("len %d", len(v))
	}
	// (i,j) requests (j,i): involution check.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if v[v[i*4+j]] != i*4+j {
				t.Fatal("transpose not an involution")
			}
		}
	}
	if _, err := Transpose(10, 4); err == nil {
		t.Fatal("oversized transpose accepted")
	}
}

func TestBitReverse(t *testing.T) {
	v, err := BitReverse(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[1] != 8 || v[8] != 1 || v[0] != 0 || v[15] != 15 {
		t.Fatalf("bit reverse wrong: %v", v)
	}
	if _, err := BitReverse(4, 4); err == nil {
		t.Fatal("oversized bit-reverse accepted")
	}
}

func TestModuleHot(t *testing.T) {
	s := hmos.MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2})
	v := ModuleHot(s, 5, 10)
	if len(v) == 0 {
		t.Fatal("empty hot set")
	}
	// Every variable must have module 5 among its level-1 neighbors.
	for _, vv := range v {
		found := false
		for _, u := range s.Graphs[0].OutputsOf(vv, nil) {
			if u == 5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("var %d not adjacent to module 5", vv)
		}
	}
	// Distinct.
	seen := map[int]bool{}
	for _, vv := range v {
		if seen[vv] {
			t.Fatalf("repeat %d", vv)
		}
		seen[vv] = true
	}
}

func TestOpsConversion(t *testing.T) {
	v := Vars{3, 1, 4}
	r := v.Reads()
	if len(r) != 3 || r[1].Var != 1 || r[1].IsWrite {
		t.Fatalf("reads: %+v", r)
	}
	w := v.Writes(100)
	if !w[2].IsWrite || w[2].Value != 102 {
		t.Fatalf("writes: %+v", w)
	}
	m := v.Mixed(10)
	if !m[0].IsWrite || m[1].IsWrite {
		t.Fatalf("mixed: %+v", m)
	}
}
