// Command pramserve runs the simulation as a long-lived HTTP/JSON
// service (internal/serve): scenario submissions are validated, queued
// behind token-bucket admission control, executed on a pool of warm
// workers, and cached by the scenario's canonical key — determinism
// makes every result perfectly cacheable, so a hit returns bytes
// identical to recomputation.
//
// Usage:
//
//	pramserve [-addr :8080] [-pool N] [-queue 64] [-rate R] [-burst B]
//	          [-cache-entries 1024] [-cache-bytes N] [-timeout 60s] [-pprof]
//
// Endpoints:
//
//	POST /v1/simulate   run a sim.Scenario (JSON body), wait for the result
//	POST /v1/jobs       enqueue a scenario, returns {"id": "j-1", ...}
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /v1/healthz    liveness and drain state
//	GET  /v1/stats      queue depth, cache hit rate, pool utilization,
//	                    per-scenario cycle totals
//
// On SIGINT/SIGTERM the server stops admitting work, drains the queue
// and the in-flight jobs, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"meshpram/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "worker pool width (warm engines)")
	queue := flag.Int("queue", 64, "job queue depth (full queue → 429)")
	rate := flag.Float64("rate", 0, "admission rate in submissions/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "admission burst (default: pool width)")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache entries (-1 disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte bound (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "sync request timeout")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/ (opt-in; do not enable on untrusted networks)")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:        *pool,
		QueueDepth:     *queue,
		Rate:           *rate,
		Burst:          *burst,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		RequestTimeout: *timeout,
	})

	// Profiling lives strictly in this transport layer: the serve
	// package's Handler and the workers are untouched, so enabling it
	// cannot perturb simulation results. Handlers are mounted on our own
	// mux (not DefaultServeMux), so nothing is exposed unless -pprof.
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Sync requests may legitimately wait the full computation
		// timeout; leave WriteTimeout above it.
		WriteTimeout: *timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pramserve: listening on %s (pool=%d queue=%d)\n", *addr, *pool, *queue)

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting connections, then run every
		// queued job to completion before exiting.
		fmt.Fprintln(os.Stderr, "pramserve: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pramserve: shutdown: %v\n", err)
		}
		srv.Drain()
		fmt.Fprintln(os.Stderr, "pramserve: drained")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "pramserve: %v\n", err)
			os.Exit(1)
		}
	}
}
