// Command experiments regenerates the full evaluation of the
// reproduction: one experiment per theorem/claim of the paper (see
// DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-only E5] [-big] [-workers N] [-seed S] [-json]
//
// -big adds the largest machine sizes (minutes instead of seconds);
// -workers runs the mesh engine on N goroutines (0 = GOMAXPROCS);
// -json additionally writes one BENCH_<ID>.json per experiment
// (charged steps, phase breakdown, wall time, and the cost-ledger
// trees of the exercised execution paths) into the -out directory, or
// the working directory when -out is unset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"meshpram/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E5)")
	big := flag.Bool("big", false, "include the largest machine sizes")
	workers := flag.Int("workers", 1, "mesh engine and router goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<ID>.txt")
	jsonOut := flag.Bool("json", false, "write BENCH_<ID>.json per experiment (to -out dir, or .)")
	flag.Parse()

	cfg := experiments.Config{Big: *big, Workers: *workers, Seed: *seed}
	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}
	jsonDir := *outDir
	if jsonDir == "" {
		jsonDir = "."
	}
	runOne := func(e experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		fmt.Fprintf(w, "\n== %s: %s ==\n\n", e.ID, e.Claim)
		cfg := cfg
		if *jsonOut {
			cfg.Report = &experiments.Report{ID: e.ID, Claim: e.Claim}
		}
		start := time.Now()
		if err := e.Run(w, cfg); err != nil {
			return err
		}
		if cfg.Report != nil {
			cfg.Report.WallNs = time.Since(start).Nanoseconds()
			buf, err := json.MarshalIndent(cfg.Report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(jsonDir, "BENCH_"+e.ID+".json"), append(buf, '\n'), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *only != "" {
		e, ok := experiments.Lookup(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", *only)
			os.Exit(2)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range experiments.All {
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
