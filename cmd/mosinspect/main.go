// Command mosinspect constructs a Hierarchical Memory Organization
// Scheme, prints its structure (levels, module counts, tessellations,
// redundancy, memory-map size), and optionally verifies the underlying
// BIBD properties and copy-placement balance.
//
// Usage:
//
//	mosinspect [-side 27] [-q 3] [-d 4] [-k 2] [-verify] [-var 42] [-mem]
package main

import (
	"flag"
	"fmt"
	"os"

	"meshpram/internal/bibd"
	"meshpram/internal/core"
	"meshpram/internal/gf"
	"meshpram/internal/hmos"
)

func main() {
	side := flag.Int("side", 27, "mesh side")
	q := flag.Int("q", 3, "prime power ≥ 3")
	d := flag.Int("d", 4, "memory dimension")
	k := flag.Int("k", 2, "levels")
	verify := flag.Bool("verify", false, "verify BIBD λ=1 and placement balance")
	showVar := flag.Int("var", -1, "print the copy tree of this variable")
	mem := flag.Bool("mem", false, "print the per-layer resident bytes/node breakdown of a fully populated simulator")
	flag.Parse()

	s, err := hmos.New(hmos.Params{Side: *side, Q: *q, D: *d, K: *k})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosinspect: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mesh:        %d x %d = %d processors\n", *side, *side, s.N)
	fmt.Printf("memory:      M = f(%d,%d) = %d variables (alpha = %.4f)\n", *q, *d, s.Vars(), s.Alpha())
	fmt.Printf("redundancy:  q^k = %d copies per variable; minimal target set %d; level-0 set %d\n",
		s.CopiesPerVar(), hmos.MinTargetSetSize(*q, *k, *k), hmos.MinTargetSetSize(*q, *k, 0))
	fmt.Printf("memory map:  %d bytes per processor (implicit, independent of M)\n\n", s.MapBytes())

	fmt.Println("level  d_i  modules m_i  pages/module p_i  pages total  submesh t_i")
	for i := 1; i <= *k; i++ {
		fmt.Printf("%5d  %3d  %11d  %16d  %11d  %11d\n",
			i, s.Ds[i-1], s.ModCount[i], s.PagesPer[i], s.PageCount(i), s.T[i])
	}

	if *showVar >= 0 {
		if *showVar >= s.Vars() {
			fmt.Fprintf(os.Stderr, "mosinspect: variable %d out of range [0,%d)\n", *showVar, s.Vars())
			os.Exit(1)
		}
		fmt.Printf("\ncopies of variable %d (leaf: path l_1..l_k -> processor):\n", *showVar)
		for _, c := range s.Copies(*showVar, nil) {
			fmt.Printf("  leaf %2d: path %v -> proc %d (page %d of tessellation 1)\n",
				c.Leaf, c.Path, c.Proc, s.PageIndex(1, c.Path))
		}
	}

	if *mem {
		if err := printMem(s); err != nil {
			fmt.Fprintf(os.Stderr, "mosinspect: %v\n", err)
			os.Exit(1)
		}
	}

	if *verify {
		fmt.Println("\nverifying the inter-level designs...")
		for i, g := range s.Graphs {
			fmt.Printf("  level %d->%d: (%d^%d,%d)-BIBD subgraph with %d inputs\n",
				i, i+1, *q, s.Ds[i], *q, g.Inputs())
			lo, hi := 1<<30, 0
			for u := 0; u < g.Outputs(); u++ {
				deg := g.Degree(u)
				if deg < lo {
					lo = deg
				}
				if deg > hi {
					hi = deg
				}
			}
			fmt.Printf("    output degrees in [%d,%d] (Theorem 5 band)\n", lo, hi)
			if hi-lo > 1 {
				fmt.Fprintln(os.Stderr, "mosinspect: FAIL degree spread > 1")
				os.Exit(1)
			}
		}
		// Full-design λ=1 check on the first level when small enough.
		g0 := bibd.MustNew(gf.MustNew(*q), s.Ds[0])
		if g0.Outputs() <= 256 {
			for u1 := 0; u1 < g0.Outputs(); u1++ {
				for u2 := u1 + 1; u2 < g0.Outputs(); u2++ {
					if len(g0.CommonInputs(u1, u2)) != 1 {
						fmt.Fprintf(os.Stderr, "mosinspect: FAIL lambda != 1 at (%d,%d)\n", u1, u2)
						os.Exit(1)
					}
				}
			}
			fmt.Printf("  lambda = 1 verified exhaustively on %d output pairs\n",
				g0.Outputs()*(g0.Outputs()-1)/2)
		}
		fmt.Println("verification PASSED")
	}
}

// printMem populates a simulator of this scheme (every variable
// written once — the worst-case resident store) and prints the
// per-layer quiescent footprint from core.MemReport, in bytes and in
// bytes per processor. Routing buffers are compacted first, so the
// figures are the floor a long-lived checkpointable simulator holds.
func printMem(s *hmos.Scheme) error {
	sim, err := core.NewWithScheme(s, core.Config{})
	if err != nil {
		return err
	}
	ops := make([]core.Op, 0, s.Vars())
	for v := 0; v < s.Vars(); v++ {
		ops = append(ops, core.Op{Origin: v % s.N, Var: v, IsWrite: true, Value: core.Word(v)})
		if len(ops) == s.N {
			sim.Step(ops)
			ops = ops[:0]
		}
	}
	if len(ops) > 0 {
		sim.Step(ops)
	}
	sim.Compact()
	rep := sim.MemReport()
	n := float64(s.N)
	fmt.Printf("\nresident memory, all %d variables written, quiescent (Compact'ed):\n\n", s.Vars())
	fmt.Println("layer        bytes        bytes/node")
	row := func(name string, b int64) {
		fmt.Printf("%-10s  %10d  %14.3f\n", name, b, float64(b)/n)
	}
	row("scheme", rep.Scheme)
	row("store", rep.Store)
	row("fault-sets", rep.FaultSets)
	row("view-log", rep.ViewLog)
	row("routing", rep.Routing)
	row("total", rep.Total())
	return nil
}
