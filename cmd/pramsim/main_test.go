package main

import (
	"flag"
	"reflect"
	"strings"
	"testing"

	"meshpram/internal/sim"
)

// TestFlagsCoverScenario pins the ISSUE's "one config surface"
// guarantee: every pramsim flag maps to exactly one sim.Scenario JSON
// field, and every Scenario field is reachable from a flag. Adding a
// Scenario field without a flag (or vice versa) fails here.
func TestFlagsCoverScenario(t *testing.T) {
	sc := sim.DefaultScenario()
	fs := flag.NewFlagSet("pramsim", flag.ContinueOnError)
	mapping := scenarioFlags(fs, &sc)

	// Every registered flag appears in the mapping and vice versa.
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })
	for name := range mapping {
		if !registered[name] {
			t.Errorf("mapping names flag -%s, but scenarioFlags never registers it", name)
		}
	}
	for name := range registered {
		if _, ok := mapping[name]; !ok {
			t.Errorf("flag -%s registered but missing from the flag → field mapping", name)
		}
	}

	// Every Scenario JSON field is covered by exactly one flag.
	fields := map[string]bool{}
	rt := reflect.TypeOf(sim.Scenario{})
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Fatalf("Scenario field %s has no JSON tag", rt.Field(i).Name)
		}
		fields[tag] = true
	}
	seen := map[string]string{}
	for flagName, field := range mapping {
		if !fields[field] {
			t.Errorf("flag -%s maps to %q, which is not a Scenario JSON field", flagName, field)
		}
		if prev, dup := seen[field]; dup {
			t.Errorf("Scenario field %q mapped by both -%s and -%s", field, prev, flagName)
		}
		seen[field] = flagName
	}
	for field := range fields {
		if _, ok := seen[field]; !ok {
			t.Errorf("Scenario field %q has no pramsim flag", field)
		}
	}
}

// TestFlagsOverrideScenarioFile checks the overlay semantics: flags
// registered after loading carry the file's values as defaults, so
// only explicitly-passed flags override.
func TestFlagsOverrideScenarioFile(t *testing.T) {
	sc := sim.DefaultScenario()
	sc.Program = "matvec" // as if loaded from -scenario
	sc.Size = 8
	fs := flag.NewFlagSet("pramsim", flag.ContinueOnError)
	scenarioFlags(fs, &sc)
	if err := fs.Parse([]string{"-n", "4"}); err != nil {
		t.Fatal(err)
	}
	if sc.Program != "matvec" {
		t.Errorf("untouched field overwritten: program = %q", sc.Program)
	}
	if sc.Size != 4 {
		t.Errorf("flag override lost: size = %d, want 4", sc.Size)
	}
}

func TestScanScenarioPath(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", "a.json"}, "a.json"},
		{[]string{"-scenario=a.json"}, "a.json"},
		{[]string{"--scenario", "a.json", "-n", "4"}, "a.json"},
		{[]string{"-n", "4", "--scenario=b.json"}, "b.json"},
		{[]string{"-n", "4"}, ""},
		{[]string{"--", "-scenario", "a.json"}, ""},
	}
	for _, tc := range cases {
		if got := scanScenarioPath(tc.args); got != tc.want {
			t.Errorf("scanScenarioPath(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}
}
