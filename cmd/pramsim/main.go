// Command pramsim runs a PRAM program on either the ideal PRAM or the
// paper's mesh simulation and reports the step counts and the measured
// slowdown.
//
// Usage:
//
//	pramsim [-scenario file.json] [-program prefixsum|listrank|matvec|...]
//	        [-side 9] [-q 3] [-d 3] [-k 2] [-n 64] [-seed 1]
//	        [-backend both|ideal|mesh] [-workers N] [-policy majority|rowa]
//	        [-sort shear|rotate] [-torus] [-no-culling] [-direct-routing]
//	        [-network-sort] [-faults SPEC] [-fault-schedule SPEC]
//	        [-fault-view global|local] [-repair off|eager|lazy]
//	        [-retry N] [-engine event|cycle]
//	        [-ideal-memory WORDS] [-trace]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// The flag set is an overlay onto a sim.Scenario — the same
// serializable configuration surface the pramserve service accepts.
// -scenario loads a JSON scenario file first; explicitly given flags
// then override individual fields, so a file can carry the experiment
// and the command line the variation. Every flag maps to exactly one
// Scenario field (pinned by TestFlagsCoverScenario), so CLI and
// service provably share one configuration space.
//
// Execution goes through the same serve.Runner the service workers
// use: identical scenario, identical result — the printed numbers
// match a `POST /v1/simulate` of the same JSON byte for byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"meshpram/internal/serve"
	"meshpram/internal/sim"
)

// scenarioFlags registers one flag per sim.Scenario field on fs, bound
// directly to sc (current values become defaults, so loading a
// scenario file before registration makes flags override its fields).
// It returns the flag-name → JSON-field mapping, which
// TestFlagsCoverScenario pins against the Scenario struct.
func scenarioFlags(fs *flag.FlagSet, sc *sim.Scenario) map[string]string {
	fs.IntVar(&sc.Side, "side", sc.Side, "mesh side (n = side²)")
	fs.IntVar(&sc.Q, "q", sc.Q, "copies per replication step (prime power ≥ 3)")
	fs.IntVar(&sc.D, "d", sc.D, "memory dimension: M = f(q, d) variables")
	fs.IntVar(&sc.K, "k", sc.K, "HMOS levels")
	fs.StringVar(&sc.Program, "program", sc.Program, "prefixsum | listrank | matvec | reduce | oddevensort | compact")
	fs.IntVar(&sc.Size, "n", sc.Size, "problem size")
	fs.Int64Var(&sc.Seed, "seed", sc.Seed, "input seed")
	fs.StringVar(&sc.Backend, "backend", sc.Backend, "both | ideal | mesh")
	fs.StringVar(&sc.Policy, "policy", sc.Policy, "copy-access discipline: majority | rowa")
	fs.BoolVar(&sc.Torus, "torus", sc.Torus, "wrap-around links on machine-spanning phases")
	fs.StringVar(&sc.Sort, "sort", sc.Sort, "sorting network: shear | rotate")
	fs.BoolVar(&sc.DisableCulling, "no-culling", sc.DisableCulling, "minimal target sets without congestion control (ablation)")
	fs.BoolVar(&sc.DirectRouting, "direct-routing", sc.DirectRouting, "bypass the staged protocol (ablation)")
	fs.BoolVar(&sc.NetworkSort, "network-sort", sc.NetworkSort, "run the sorting network round by round")
	fs.StringVar(&sc.Faults, "faults", sc.Faults, "static fault spec (e.g. \"link:5-6;rand:module=0.02,seed=7\")")
	fs.StringVar(&sc.FaultSchedule, "fault-schedule", sc.FaultSchedule, "dynamic fault timeline (e.g. \"@3 module:40;@7 revive-module:40\")")
	fs.StringVar(&sc.FaultView, "fault-view", sc.FaultView, "fault knowledge model: global (omniscient) | local (gossip-propagated, stale-view detours)")
	fs.StringVar(&sc.Repair, "repair", sc.Repair, "self-healing scrub policy: off | eager | lazy")
	fs.IntVar(&sc.Retry, "retry", sc.Retry, "checkpointed-retry budget per PRAM step (0 = off)")
	fs.StringVar(&sc.Engine, "engine", sc.Engine, "routing engine: event (epoch-skip) | cycle (reference); results are bit-identical")
	fs.IntVar(&sc.Workers, "workers", sc.Workers, "mesh engine and router goroutines (0 = GOMAXPROCS); results are width-invariant")
	fs.IntVar(&sc.IdealMemory, "ideal-memory", sc.IdealMemory, "ideal backend memory in words (0 = the scheme's M)")
	fs.BoolVar(&sc.Trace, "trace", sc.Trace, "print the cost-ledger tree of the last PRAM step")
	return map[string]string{
		"side": "side", "q": "q", "d": "d", "k": "k",
		"program": "program", "n": "size", "seed": "seed",
		"backend": "backend", "policy": "policy", "torus": "torus",
		"sort": "sort", "no-culling": "disable_culling",
		"direct-routing": "direct_routing", "network-sort": "network_sort",
		"faults": "faults", "fault-schedule": "fault_schedule",
		"fault-view": "fault_view",
		"repair":     "repair", "retry": "retry", "engine": "engine",
		"workers": "workers", "ideal-memory": "ideal_memory",
		"trace": "trace",
	}
}

// scanScenarioPath extracts the -scenario flag value from args before
// the real FlagSet exists: the file must be loaded first so its fields
// become the defaults the other flags override.
func scanScenarioPath(args []string) string {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			return ""
		}
		name, val, eq := "", "", false
		switch {
		case len(a) > 2 && a[:2] == "--":
			name = a[2:]
		case len(a) > 1 && a[0] == '-':
			name = a[1:]
		default:
			continue
		}
		if j := indexByte(name, '='); j >= 0 {
			name, val, eq = name[:j], name[j+1:], true
		}
		if name != "scenario" {
			continue
		}
		if eq {
			return val
		}
		if i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// loadScenario reads a JSON scenario file over the defaults.
func loadScenario(path string, sc *sim.Scenario) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, sc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func main() {
	sc := sim.DefaultScenario()
	if path := scanScenarioPath(os.Args[1:]); path != "" {
		fatalIf(loadScenario(path, &sc))
	}
	fs := flag.NewFlagSet("pramsim", flag.ExitOnError)
	fs.String("scenario", "", "JSON scenario file; explicit flags override its fields")
	// Profiling flags are deliberately NOT Scenario fields: they shape
	// the process, not the experiment, so they stay out of the
	// serializable configuration surface (TestFlagsCoverScenario pins
	// the scenario flag set; these live outside scenarioFlags).
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file after the run")
	scenarioFlags(fs, &sc)
	fatalIf(fs.Parse(os.Args[1:]))

	sc = sc.Normalized()
	fatalIf(sc.Validate())

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	res, err := serve.NewRunner().Run(sc)
	fatalIf(err)
	render(os.Stdout, res)
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fatalIf(err)
		runtime.GC() // report reachable bytes, not garbage
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
	}
}

// render prints a Result in pramsim's traditional report format.
func render(w *os.File, res *serve.Result) {
	sc := res.Scenario
	if id := res.Ideal; id != nil {
		fmt.Fprintf(w, "ideal PRAM:  %d PRAM steps, cost %d\n", id.PRAMSteps, id.Cost)
	}
	if m := res.Mesh; m != nil {
		fmt.Fprintf(w, "mesh:        side=%d n=%d M=%d (alpha=%.3f) q=%d k=%d redundancy=%d\n",
			sc.Side, m.Scheme.N, m.Scheme.Vars, m.Scheme.Alpha, sc.Q, sc.K, m.Scheme.Redundancy)
		fmt.Fprintf(w, "mesh:        %d PRAM steps simulated in %d mesh steps\n", m.PRAMSteps, m.MeshSteps)
		if d := m.Degradation; d != nil {
			fmt.Fprintf(w, "degradation: %d/%d ops degraded: %d dead origins, %d lost packets, %d unrecoverable\n",
				d.DeadOrigins+len(d.Unrecoverable), d.Ops, d.DeadOrigins, d.LostPackets, len(d.Unrecoverable))
		}
		if rs := m.Repair; rs != nil {
			fmt.Fprintf(w, "repair:      %d module deaths, %d scrubs, %d copies rebuilt, %d residual, %d remapped, %d repair steps\n",
				rs.ModuleDeaths, rs.Scrubs, rs.Repaired, rs.Residual, rs.Remapped, rs.Steps)
			if sc.FaultView == "local" {
				fmt.Fprintf(w, "gossip:      %d/%d deaths discovered by notice, %d steps death-to-discovery\n",
					rs.Discovered, rs.ModuleDeaths, rs.DiscoverySteps)
			}
		}
		if rec := m.Recovery; rec != nil {
			fmt.Fprintf(w, "retry:       %d retries, %d steps recovered, %d exhausted, %d capped, %d backoff steps\n",
				rec.Retries, rec.Recovered, rec.Exhausted, rec.Capped, rec.Backoff)
		}
		fmt.Fprintf(w, "verdict:     %s\n", m.Verdict)
		if m.Trace != "" {
			fmt.Fprintf(w, "\ncost ledger of the last PRAM step:\n%s", m.Trace)
		}
	}
	if res.Slowdown > 0 {
		fmt.Fprintf(w, "slowdown:    %.1f mesh steps per PRAM step (n=%d, sqrt(n)=%d)\n",
			res.Slowdown, sc.Side*sc.Side, sc.Side)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pramsim: %v\n", err)
		os.Exit(1)
	}
}
