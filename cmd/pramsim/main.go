// Command pramsim runs a PRAM program on either the ideal PRAM or the
// paper's mesh simulation and reports the step counts and the measured
// slowdown.
//
// Usage:
//
//	pramsim -program prefixsum|listrank|matvec [-side 9] [-q 3] [-d 3]
//	        [-k 2] [-n 64] [-backend both|ideal|mesh] [-workers N]
//	        [-faults SPEC] [-fault-schedule SPEC] [-repair off|eager|lazy]
//	        [-retry N] [-trace]
//
// -trace prints the cost-ledger tree of the last simulated PRAM step.
// -faults injects a static fault map (see internal/fault.Parse), e.g.
// "link:5-6;module:40" or "rand:link=0.02,seed=7"; the run then prints
// the accumulated degradation report.
// -fault-schedule injects a dynamic fault timeline (see
// fault.ParseSchedule), e.g. "@3 module:40;@7 revive-module:40" or
// "churn:module=0.001,repair=10,until=200,seed=7"; -repair selects the
// self-healing scrub policy and -retry the checkpointed-retry budget
// per PRAM step. The verdict then includes repair and retry counters.
//
// Both backends are constructed through the internal/sim builder —
// the single validated configuration surface of the repository.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"meshpram/internal/core"
	"meshpram/internal/pram"
	"meshpram/internal/route"
	"meshpram/internal/sim"
	"meshpram/internal/stats"
	"meshpram/internal/trace"
)

func main() {
	prog := flag.String("program", "prefixsum", "prefixsum | listrank | matvec")
	side := flag.Int("side", 9, "mesh side (n = side²)")
	q := flag.Int("q", 3, "copies per replication step (prime power ≥ 3)")
	d := flag.Int("d", 3, "memory dimension: M = f(q, d) variables")
	k := flag.Int("k", 2, "HMOS levels")
	size := flag.Int("n", 64, "problem size")
	backend := flag.String("backend", "both", "both | ideal | mesh")
	workers := flag.Int("workers", 1, "mesh engine and router goroutines (0 = GOMAXPROCS); results are width-invariant")
	faults := flag.String("faults", "", "static fault spec (e.g. \"link:5-6;rand:module=0.02,seed=7\")")
	schedule := flag.String("fault-schedule", "", "dynamic fault timeline (e.g. \"@3 module:40;@7 revive-module:40\")")
	repairFlag := flag.String("repair", "off", "self-healing scrub policy: off | eager | lazy")
	retry := flag.Int("retry", 0, "checkpointed-retry budget per PRAM step (0 = off)")
	engine := flag.String("engine", "event", "routing engine: event (epoch-skip) | cycle (reference); results are bit-identical")
	showTrace := flag.Bool("trace", false, "print the cost-ledger tree of the last PRAM step")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	repair, err := core.ParseRepairPolicy(*repairFlag)
	fatalIf(err)

	build := func() pram.Program {
		rng := rand.New(rand.NewSource(*seed))
		switch *prog {
		case "prefixsum":
			in := make([]pram.Word, *size)
			for i := range in {
				in[i] = pram.Word(rng.Intn(100))
			}
			return &pram.PrefixSum{In: in}
		case "listrank":
			order := rng.Perm(*size)
			next := make([]int, *size)
			for i := 0; i+1 < *size; i++ {
				next[order[i]] = order[i+1]
			}
			next[order[*size-1]] = order[*size-1]
			return &pram.ListRank{Succ: next, NextBase: 0, RankBase: *size}
		case "matvec":
			r := *size
			A := make([][]pram.Word, r)
			for i := range A {
				A[i] = make([]pram.Word, r)
				for j := range A[i] {
					A[i][j] = pram.Word(rng.Intn(10))
				}
			}
			x := make([]pram.Word, r)
			for j := range x {
				x[j] = pram.Word(rng.Intn(10))
			}
			return &pram.MatVec{A: A, X: x, ABase: 0, XBase: r * r, YBase: r*r + r}
		default:
			fmt.Fprintf(os.Stderr, "pramsim: unknown program %q\n", *prog)
			os.Exit(2)
			return nil
		}
	}

	var mode route.EngineMode
	switch *engine {
	case "event":
		mode = route.ModeEvent
	case "cycle":
		mode = route.ModeCycle
	default:
		fmt.Fprintf(os.Stderr, "pramsim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	cfg, err := sim.New(
		sim.Side(*side), sim.Q(*q), sim.D(*d), sim.K(*k),
		sim.Workers(*workers),
		sim.EngineMode(mode),
		sim.FaultSpec(*faults),
		sim.FaultScheduleSpec(*schedule),
		sim.Repair(repair),
		sim.Retry(*retry),
		sim.IdealMemory(1<<20),
	)
	fatalIf(err)

	var idealSteps, pramSteps int
	var meshSteps int64
	if *backend == "both" || *backend == "ideal" {
		id, err := pram.NewBackend(pram.BackendIdeal, cfg)
		fatalIf(err)
		steps, err := pram.Run(build(), id)
		fatalIf(err)
		idealSteps = steps
		fmt.Printf("ideal PRAM:  %d PRAM steps, cost %d\n", steps, id.Steps())
	}
	if *backend == "both" || *backend == "mesh" {
		b, err := pram.NewBackend(pram.BackendMesh, cfg)
		fatalIf(err)
		mb := b.(*pram.Mesh)
		s := mb.Sim.Scheme()
		fmt.Printf("mesh:        side=%d n=%d M=%d (alpha=%.3f) q=%d k=%d redundancy=%d\n",
			*side, s.N, s.Vars(), s.Alpha(), *q, *k, s.CopiesPerVar())
		steps, err := pram.Run(build(), mb)
		fatalIf(err)
		pramSteps = steps
		meshSteps = mb.Steps()
		fmt.Printf("mesh:        %d PRAM steps simulated in %d mesh steps\n", steps, meshSteps)
		if rep := mb.TotalReport(); rep != nil {
			fmt.Printf("degradation: %s\n", rep)
		}
		if rs := mb.RepairStats(); rs.Scrubs > 0 || rs.ModuleDeaths > 0 {
			fmt.Printf("repair:      %d module deaths, %d scrubs, %d copies rebuilt, %d residual, %d remapped, %d repair steps\n",
				rs.ModuleDeaths, rs.Scrubs, rs.Repaired, rs.Residual, rs.Remapped, rs.Steps)
		}
		if rec := mb.Recovery(); rec.Retries > 0 {
			fmt.Printf("retry:       %d retries, %d steps recovered, %d exhausted, %d backoff steps\n",
				rec.Retries, rec.Recovered, rec.Exhausted, rec.Backoff)
		}
		if *showTrace {
			fmt.Printf("\ncost ledger of the last PRAM step:\n")
			stats.RenderTrace(os.Stdout, trace.Export(mb.Sim.Ledger().Last()))
		}
	}
	if *backend == "both" && pramSteps > 0 {
		fmt.Printf("slowdown:    %.1f mesh steps per PRAM step (n=%d, sqrt(n)=%d)\n",
			float64(meshSteps)/float64(pramSteps), (*side)*(*side), *side)
		_ = idealSteps
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pramsim: %v\n", err)
		os.Exit(1)
	}
}
