// Command detlint runs the repository's determinism lint suite
// (internal/detlint) over package patterns and reports findings with
// file:line positions. It exits 0 when the tree is clean, 1 on
// findings, 2 on load/usage errors — so `go run ./cmd/detlint ./...`
// is a CI gate.
//
// Usage:
//
//	detlint [-checks list] [pattern ...]
//
// Patterns are directories relative to the working directory; a
// trailing /... walks the subtree (default "./..."). Only non-test Go
// files are analyzed. See DESIGN.md §9 for the check list and the
// //detlint:ignore suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meshpram/internal/detlint"
)

func main() {
	os.Exit(run())
}

func run() int {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	analyzers := detlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := map[string]*detlint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	loader, err := detlint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	dirs, err := detlint.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	var pkgs []*detlint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}

	findings := detlint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "detlint: ok (%d packages, %d checks)\n", len(pkgs), len(analyzers))
	return 0
}
