// Command detlint runs the repository's determinism lint suite
// (internal/detlint) over package patterns and reports findings with
// file:line positions. It exits 0 when the tree is clean, 1 on
// findings, 2 on load/usage errors — so `go run ./cmd/detlint ./...`
// is a CI gate.
//
// Usage:
//
//	detlint [-checks list] [-format text|json] [-baseline file] [pattern ...]
//
// Patterns are directories relative to the working directory; a
// trailing /... walks the subtree (default "./..."). Only non-test Go
// files are analyzed.
//
// -format json emits a stable machine-readable report with a
// fingerprint per finding (sha256 of module-relative path, check,
// message and occurrence index — line-independent, so unrelated edits
// do not churn identities). -baseline names a JSON allowlist
// ({"version":1,"fingerprints":[...]}); baselined findings are still
// reported (marked "baselined" in JSON, omitted in text) but do not
// fail the run. The exit code gates on NEW findings only.
//
// See DESIGN.md §9 and §14 for the check list and the
// //detlint:ignore suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meshpram/internal/detlint"
)

func main() {
	os.Exit(run())
}

func run() int {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	format := flag.String("format", "text", "output format: text or json")
	baselinePath := flag.String("baseline", "", "JSON baseline file of accepted finding fingerprints")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "detlint: unknown format %q (want text or json)\n", *format)
		return 2
	}

	analyzers := detlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := map[string]*detlint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	loader, err := detlint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	dirs, err := detlint.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	var pkgs []*detlint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}

	baseline, err := detlint.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}

	findings := detlint.Run(pkgs, analyzers)
	report := detlint.NewReport(loader.ModRoot, findings, baseline)

	if *format == "json" {
		if err := report.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
	} else {
		for _, f := range report.Findings {
			if f.Baselined {
				continue
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Check, f.Msg)
		}
	}
	if n := report.NewCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d new finding(s) in %d package(s)\n", n, len(pkgs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "detlint: ok (%d packages, %d checks)\n", len(pkgs), len(analyzers))
	return 0
}
