// Package meshpram_test hosts the benchmark harness: one testing.B
// benchmark per experiment of DESIGN.md §4 (tables E1–E18 and figures
// F1–F3 share their generators; E11 is a test, not a bench), so
// `go test -bench=.` regenerates the quantities EXPERIMENTS.md reports. Each benchmark iteration performs
// the full measured operation of its experiment at the default
// (non -big) scale.
package meshpram_test

import (
	"io"
	"math/rand"
	"testing"

	"meshpram/internal/baseline"
	"meshpram/internal/bibd"
	"meshpram/internal/core"
	"meshpram/internal/culling"
	"meshpram/internal/experiments"
	"meshpram/internal/gf"
	"meshpram/internal/hmos"
	"meshpram/internal/mesh"
	"meshpram/internal/route"
	"meshpram/internal/workload"
)

var benchCfg = experiments.Config{Workers: 1, Seed: 1}

// run executes an experiment once per iteration with output discarded.
func run(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Slowdown regenerates Table E1 / Figure F1 (Theorems 1/4).
func BenchmarkE1Slowdown(b *testing.B) { run(b, "E1") }

// BenchmarkE2Culling regenerates Table E2 / Figure F2 (Theorem 3).
func BenchmarkE2Culling(b *testing.B) { run(b, "E2") }

// BenchmarkE3BIBD regenerates Table E3 (Definition 1, Lemma 1).
func BenchmarkE3BIBD(b *testing.B) { run(b, "E3") }

// BenchmarkE4Balance regenerates Table E4 (Theorem 5).
func BenchmarkE4Balance(b *testing.B) { run(b, "E4") }

// BenchmarkE5Routing regenerates Table E5 (Theorem 2).
func BenchmarkE5Routing(b *testing.B) { run(b, "E5") }

// BenchmarkE6Staged regenerates Table E6 / Figure F3 (§2 crossover).
func BenchmarkE6Staged(b *testing.B) { run(b, "E6") }

// BenchmarkE7CullingTime regenerates Table E7 (equation 2).
func BenchmarkE7CullingTime(b *testing.B) { run(b, "E7") }

// BenchmarkE8Adversarial regenerates Table E8.
func BenchmarkE8Adversarial(b *testing.B) { run(b, "E8") }

// BenchmarkE9Redundancy regenerates Table E9 (Theorem 4 trade-off).
func BenchmarkE9Redundancy(b *testing.B) { run(b, "E9") }

// BenchmarkE10MapSize regenerates Table E10.
func BenchmarkE10MapSize(b *testing.B) { run(b, "E10") }

// BenchmarkE12Ablation regenerates Table E12.
func BenchmarkE12Ablation(b *testing.B) { run(b, "E12") }

// BenchmarkE13Policies regenerates Table E13 (majority vs MV84).
func BenchmarkE13Policies(b *testing.B) { run(b, "E13") }

// BenchmarkE14Hashing regenerates Table E14 (deterministic vs CW79).
func BenchmarkE14Hashing(b *testing.B) { run(b, "E14") }

// BenchmarkE15Programs regenerates Table E15 (application-level slowdown).
func BenchmarkE15Programs(b *testing.B) { run(b, "E15") }

// BenchmarkE16Torus regenerates Table E16 (torus extension).
func BenchmarkE16Torus(b *testing.B) { run(b, "E16") }

// BenchmarkE17SortAlgo regenerates Table E17 (sorting substitution).
func BenchmarkE17SortAlgo(b *testing.B) { run(b, "E17") }

// BenchmarkE18MPC regenerates Table E18 (MPC vs mesh lineage).
func BenchmarkE18MPC(b *testing.B) { run(b, "E18") }

// --- micro-benchmarks of the building blocks ---------------------------

// BenchmarkStepRandom729 is one full protocol step: 729 mixed requests
// on a 27×27 mesh with M = 9801.
func BenchmarkStepRandom729(b *testing.B) {
	sim := core.MustNew(hmos.Params{Side: 27, Q: 3, D: 5, K: 2}, core.Config{})
	n := sim.Mesh().N
	vars := workload.RandomDistinct(sim.Scheme().Vars(), n, 1)
	ops := vars.Mixed(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(ops)
	}
}

// BenchmarkStepRandom6561 is the side-81 machine (M = 796797).
func BenchmarkStepRandom6561(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	sim := core.MustNew(hmos.Params{Side: 81, Q: 3, D: 7, K: 2}, core.Config{})
	n := sim.Mesh().N
	vars := workload.RandomDistinct(sim.Scheme().Vars(), n, 1)
	ops := vars.Mixed(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(ops)
	}
}

// BenchmarkStepParallelEngine measures the goroutine execution engine.
func BenchmarkStepParallelEngine(b *testing.B) {
	sim := core.MustNew(hmos.Params{Side: 27, Q: 3, D: 5, K: 2}, core.Config{Workers: 0})
	n := sim.Mesh().N
	vars := workload.RandomDistinct(sim.Scheme().Vars(), n, 1)
	ops := vars.Mixed(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(ops)
	}
}

// BenchmarkCulling729 isolates the copy-selection stage.
func BenchmarkCulling729(b *testing.B) {
	s := hmos.MustNew(hmos.Params{Side: 27, Q: 3, D: 5, K: 2})
	m := mesh.MustNew(27)
	vars := workload.RandomDistinct(s.Vars(), m.N, 1)
	reqs := make([]culling.Request, len(vars))
	for i, v := range vars {
		reqs[i] = culling.Request{Origin: i, Var: v}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		culling.Run(s, m, reqs)
	}
}

// BenchmarkGreedyRouter isolates the cycle-accurate router on a random
// permutation at 32×32.
func BenchmarkGreedyRouter(b *testing.B) {
	m := mesh.MustNew(32)
	perm := rand.New(rand.NewSource(1)).Perm(m.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([][]int, m.N)
		for p := 0; p < m.N; p++ {
			items[p] = append(items[p], perm[p])
		}
		route.GreedyRoute(m, m.Full(), items, func(d int) int { return d })
	}
}

// BenchmarkBIBDLocate measures the implicit memory-map arithmetic: one
// copy location in a 796797-variable scheme.
func BenchmarkBIBDLocate(b *testing.B) {
	s := hmos.MustNew(hmos.Params{Side: 81, Q: 3, D: 7, K: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CopyAt(i%s.Vars(), i%s.Redundant)
	}
}

// BenchmarkBaselineNoReplication is the single-copy competitor's step.
func BenchmarkBaselineNoReplication(b *testing.B) {
	nr, err := baseline.NewNoReplication(27, 9801)
	if err != nil {
		b.Fatal(err)
	}
	vars := workload.RandomDistinct(9801, nr.M.N, 1)
	ops := make([]baseline.Op, len(vars))
	for i, v := range vars {
		ops[i] = baseline.Op{Origin: i, Var: v, IsWrite: i%2 == 0, Value: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nr.Step(ops)
	}
}

// BenchmarkBaselineRandomMOS is the random-graph majority competitor.
func BenchmarkBaselineRandomMOS(b *testing.B) {
	rm, err := baseline.NewRandomMOS(27, 9801, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	vars := workload.RandomDistinct(9801, rm.M.N, 1)
	ops := make([]baseline.Op, len(vars))
	for i, v := range vars {
		ops[i] = baseline.Op{Origin: i, Var: v, IsWrite: i%2 == 0, Value: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.Step(ops)
	}
}

// BenchmarkFullBIBDConstruction builds the largest first-level design
// used by the experiments.
func BenchmarkFullBIBDConstruction(b *testing.B) {
	f := gf.MustNew(3)
	for i := 0; i < b.N; i++ {
		bibd.MustNew(f, 7)
	}
}
