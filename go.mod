module meshpram

go 1.22
