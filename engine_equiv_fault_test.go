package meshpram_test

import (
	"reflect"
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/workload"
)

// TestEngineEquivalenceUnderFaults is TestEngineEquivalence with a live
// fault schedule and eager repair: a sequential engine and a 4-worker
// one replay the identical churn timeline and must produce identical
// verdicts — read results, degradation reports (dead origins, lost
// packets, unrecoverable ops), repair counters — and identical
// accounting (machine steps, ledger totals, phase totals). Worker-count
// independence is what makes the fault path's determinism claims mean
// something; under -race this also exercises the repair traffic for
// data races.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("n=729 machine is slow in -short mode")
	}
	p := hmos.Params{Side: 27, Q: 3, D: 4, K: 2}
	churn := fault.Churn{ModuleRate: 0.004, Repair: 2, Horizon: 3, Seed: 11}
	mk := func(workers int) *core.Simulator {
		return core.MustNew(p, core.Config{
			Workers:  workers,
			Schedule: churn.Build(p.Side),
			Repair:   core.RepairEager,
		})
	}
	seq, par := mk(1), mk(4)
	n := seq.Mesh().N
	sawDeath := false
	for step := 0; step < 3; step++ {
		vars := workload.RandomDistinct(seq.Scheme().Vars(), n, 42+int64(step))
		ops := vars.Mixed(1000)
		resSeq, stSeq, errSeq := seq.StepChecked(ops)
		resPar, stPar, errPar := par.StepChecked(ops)
		if errSeq != nil || errPar != nil {
			t.Fatalf("step%d: errors seq=%v par=%v", step, errSeq, errPar)
		}
		if !reflect.DeepEqual(resSeq, resPar) {
			t.Fatalf("step%d: results differ between sequential and 4-worker engines", step)
		}
		if !reflect.DeepEqual(stSeq, stPar) {
			t.Errorf("step%d: stats differ:\nseq %+v\npar %+v", step, stSeq, stPar)
		}
		if !reflect.DeepEqual(seq.LastReport(), par.LastReport()) {
			t.Errorf("step%d: degradation verdicts differ:\nseq %+v\npar %+v",
				step, seq.LastReport(), par.LastReport())
		}
		if a, b := seq.Mesh().Steps(), par.Mesh().Steps(); a != b {
			t.Errorf("step%d: mesh steps %d (seq) != %d (par)", step, a, b)
		}
		rootSeq, rootPar := seq.Ledger().Last(), par.Ledger().Last()
		if rootSeq == nil || rootPar == nil {
			t.Fatalf("step%d: missing ledger tree", step)
		}
		if a, b := rootSeq.Total(), rootPar.Total(); a != b {
			t.Errorf("step%d: ledger totals %d (seq) != %d (par)", step, a, b)
		}
		if a, b := rootSeq.PhaseTotals(), rootPar.PhaseTotals(); a != b {
			t.Errorf("step%d: ledger phase totals %v (seq) != %v (par)", step, a, b)
		}
		if seq.RepairStats().ModuleDeaths > 0 {
			sawDeath = true
		}
	}
	if a, b := seq.RepairStats(), par.RepairStats(); a != b {
		t.Errorf("repair stats differ:\nseq %+v\npar %+v", a, b)
	}
	if !sawDeath {
		t.Fatal("timeline delivered no module deaths; the fixture is vacuous")
	}
}
