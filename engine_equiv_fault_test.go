package meshpram_test

import (
	"reflect"
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/fault"
	"meshpram/internal/hmos"
	"meshpram/internal/workload"
)

// TestEngineEquivalenceUnderFaults is TestEngineEquivalence with a live
// fault schedule and eager repair: a sequential engine, a 4-worker one
// and an 8-worker one replay the identical churn timeline and must
// produce identical verdicts — read results, degradation reports (dead
// origins, lost packets, unrecoverable ops), repair counters — and
// identical accounting (machine steps, ledger totals, phase totals).
// Worker-count independence is what makes the fault path's determinism
// claims mean something. Since the route.Engine shards its selection
// sweep by the same worker width, the multi-worker runs drive the
// parallel router (n=729 keeps the worklist above the sharding
// threshold), and the two distinct widths exercise two different shard
// partitions of every cycle; under -race this also exercises the
// repair and router traffic for data races.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("n=729 machine is slow in -short mode")
	}
	p := hmos.Params{Side: 27, Q: 3, D: 4, K: 2}
	churn := fault.Churn{ModuleRate: 0.004, Repair: 2, Horizon: 3, Seed: 11}
	mk := func(workers int) *core.Simulator {
		return core.MustNew(p, core.Config{
			Workers:  workers,
			Schedule: churn.Build(p.Side),
			Repair:   core.RepairEager,
		})
	}
	seq := mk(1)
	pars := map[string]*core.Simulator{"par4": mk(4), "par8": mk(8)}
	n := seq.Mesh().N
	sawDeath := false
	for step := 0; step < 3; step++ {
		vars := workload.RandomDistinct(seq.Scheme().Vars(), n, 42+int64(step))
		ops := vars.Mixed(1000)
		resSeq, stSeq, errSeq := seq.StepChecked(ops)
		if errSeq != nil {
			t.Fatalf("step%d: sequential error %v", step, errSeq)
		}
		rootSeq := seq.Ledger().Last()
		if rootSeq == nil {
			t.Fatalf("step%d: missing sequential ledger tree", step)
		}
		for _, name := range []string{"par4", "par8"} {
			par := pars[name]
			resPar, stPar, errPar := par.StepChecked(ops)
			if errPar != nil {
				t.Fatalf("step%d/%s: error %v", step, name, errPar)
			}
			if !reflect.DeepEqual(resSeq, resPar) {
				t.Fatalf("step%d/%s: results differ from sequential engine", step, name)
			}
			if !reflect.DeepEqual(stSeq, stPar) {
				t.Errorf("step%d/%s: stats differ:\nseq %+v\npar %+v", step, name, stSeq, stPar)
			}
			if !reflect.DeepEqual(seq.LastReport(), par.LastReport()) {
				t.Errorf("step%d/%s: degradation verdicts differ:\nseq %+v\npar %+v",
					step, name, seq.LastReport(), par.LastReport())
			}
			if a, b := seq.Mesh().Steps(), par.Mesh().Steps(); a != b {
				t.Errorf("step%d/%s: mesh steps %d (seq) != %d (par)", step, name, a, b)
			}
			rootPar := par.Ledger().Last()
			if rootPar == nil {
				t.Fatalf("step%d/%s: missing ledger tree", step, name)
			}
			if a, b := rootSeq.Total(), rootPar.Total(); a != b {
				t.Errorf("step%d/%s: ledger totals %d (seq) != %d (par)", step, name, a, b)
			}
			if a, b := rootSeq.PhaseTotals(), rootPar.PhaseTotals(); a != b {
				t.Errorf("step%d/%s: ledger phase totals %v (seq) != %v (par)", step, name, a, b)
			}
		}
		if seq.RepairStats().ModuleDeaths > 0 {
			sawDeath = true
		}
	}
	for _, name := range []string{"par4", "par8"} {
		if a, b := seq.RepairStats(), pars[name].RepairStats(); a != b {
			t.Errorf("%s: repair stats differ:\nseq %+v\npar %+v", name, a, b)
		}
	}
	if !sawDeath {
		t.Fatal("timeline delivered no module deaths; the fixture is vacuous")
	}
}
