package meshpram_test

import (
	"math/rand"
	"sort"
	"testing"

	"meshpram/internal/core"
	"meshpram/internal/hmos"
	"meshpram/internal/mpc"
	"meshpram/internal/pram"
	"meshpram/internal/workload"
)

// Integration tests: the example flows end-to-end, plus cross-system
// agreement checks (mesh vs ideal vs MPC) on the same traffic.

func TestIntegrationQuickstartFlow(t *testing.T) {
	sim := core.MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{})
	n := sim.Mesh().N
	writes := make([]core.Op, n)
	for i := range writes {
		writes[i] = core.Op{Origin: i, Var: i, IsWrite: true, Value: core.Word(i * i)}
	}
	_, wst := sim.Step(writes)
	if wst.Packets != n*4 {
		t.Fatalf("write packets %d", wst.Packets)
	}
	reads := make([]core.Op, n)
	for i := range reads {
		reads[i] = core.Op{Origin: i, Var: (i + 1) % n}
	}
	vals, _ := sim.Step(reads)
	for i := range reads {
		want := core.Word(((i + 1) % n) * ((i + 1) % n))
		if vals[i] != want {
			t.Fatalf("read %d = %d, want %d", i, vals[i], want)
		}
	}
}

func TestIntegrationAllProgramsOnMesh(t *testing.T) {
	mb, err := pram.NewMesh(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(50))

	// Prefix sums.
	in := make([]pram.Word, 30)
	for i := range in {
		in[i] = pram.Word(rng.Intn(50))
	}
	if _, err := pram.Run(&pram.PrefixSum{In: in}, mb); err != nil {
		t.Fatal(err)
	}
	var want pram.Word
	for i, v := range in {
		want += v
		res, _ := mb.ExecStep([]pram.Op{{Kind: pram.Read, Addr: i}})
		if res[0] != want {
			t.Fatalf("prefix[%d] = %d, want %d", i, res[0], want)
		}
	}

	// Sorting (fresh backend: address space reuse).
	mb2, _ := pram.NewMesh(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{}, nil)
	keys := make([]pram.Word, 24)
	for i := range keys {
		keys[i] = pram.Word(rng.Intn(100))
	}
	sorted := append([]pram.Word(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if _, err := pram.Run(&pram.OddEvenSort{In: keys}, mb2); err != nil {
		t.Fatal(err)
	}
	for i, wv := range sorted {
		res, _ := mb2.ExecStep([]pram.Op{{Kind: pram.Read, Addr: i}})
		if res[0] != wv {
			t.Fatalf("sorted[%d] = %d, want %d", i, res[0], wv)
		}
	}
}

// The same random traffic must produce identical values on the mesh
// simulation, the ideal PRAM, and the MPC — three machines, one memory
// semantics.
func TestIntegrationThreeMachinesAgree(t *testing.T) {
	meshSim := core.MustNew(hmos.Params{Side: 9, Q: 3, D: 3, K: 2}, core.Config{})
	mpcSim, err := mpc.New(3, 3) // 27 modules, f(3,3)=117 vars — same M
	if err != nil {
		t.Fatal(err)
	}
	ideal := map[int]core.Word{}
	rng := rand.New(rand.NewSource(60))
	vars := meshSim.Scheme().Vars()
	if mpcSim.Vars() != vars {
		t.Fatalf("memory sizes differ: mesh %d, mpc %d", vars, mpcSim.Vars())
	}
	for step := 0; step < 15; step++ {
		batch := rng.Intn(25) + 1
		vs := rng.Perm(vars)[:batch]
		meshOps := make([]core.Op, batch)
		mpcOps := make([]mpc.Op, batch)
		expect := make([]core.Word, batch)
		for i, v := range vs {
			w := rng.Intn(2) == 0
			val := core.Word(rng.Intn(1 << 16))
			meshOps[i] = core.Op{Origin: rng.Intn(meshSim.Mesh().N), Var: v, IsWrite: w, Value: val}
			mpcOps[i] = mpc.Op{Origin: rng.Intn(mpcSim.N), Var: v, IsWrite: w, Value: val}
			if w {
				expect[i] = val
			} else {
				expect[i] = ideal[v]
			}
		}
		meshRes, _ := meshSim.Step(meshOps)
		mpcRes, _ := mpcSim.Step(mpcOps)
		for i := range vs {
			if meshRes[i] != expect[i] {
				t.Fatalf("mesh diverged at step %d op %d", step, i)
			}
			if mpcRes[i] != expect[i] {
				t.Fatalf("mpc diverged at step %d op %d", step, i)
			}
			if meshOps[i].IsWrite {
				ideal[meshOps[i].Var] = meshOps[i].Value
			}
		}
	}
}

// Workload generators must be directly usable with the simulator.
func TestIntegrationWorkloadsRun(t *testing.T) {
	sim := core.MustNew(hmos.Params{Side: 9, Q: 3, D: 4, K: 1}, core.Config{})
	n := sim.Mesh().N
	vars := sim.Scheme().Vars()
	tp, err := workload.Transpose(vars, 9)
	if err != nil {
		t.Fatal(err)
	}
	br, err := workload.BitReverse(vars, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range []workload.Vars{
		workload.RandomDistinct(vars, n, 5),
		workload.Stride(vars, n, 13),
		tp, br,
		workload.ModuleHot(sim.Scheme(), 1, n),
	} {
		_, st := sim.Step(vs.Mixed(3))
		if st.Total() <= 0 {
			t.Fatal("free step")
		}
	}
}
